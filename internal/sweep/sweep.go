// Package sweep turns a declarative experiment grid — graph spec
// templates × size ladder × schedulers × protocols × drop rates — into a
// batch of deterministic trials for internal/runner, and its outcomes
// into internal/results records.
//
// A spec is either assembled from CLI flags (cmd/sweep) or parsed from a
// JSON file:
//
//	{
//	  "name": "table1-smoke",
//	  "seed": 42,
//	  "trials": 5,
//	  "graphs": ["clique:N", "cycle:N", "torus:NxN"],
//	  "sizes": [16, 32],
//	  "schedulers": ["uniform", "weighted:exp", "churn:64:16"],
//	  "protocols": ["six-state", "identifier", "fast"],
//	  "drop_rates": [0, 0.25]
//	}
//
// Graph templates use the popgraph.ParseGraph grammar with the literal
// letter N standing for a rung of the size ladder ("torus:NxN" becomes
// "torus:16x16"); templates without an N are fixed graphs, used once.
// Schedulers use the popgraph.ParseScheduler grammar; omitting the axis
// means the paper's uniform scheduler. Every trial's seed is derived
// from the spec seed, the cell's position in the grid and the trial
// index, so results are independent of worker count and identical
// across runs.
package sweep

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"popgraph"
	"popgraph/internal/graph"
	"popgraph/internal/results"
	"popgraph/internal/runner"
	"popgraph/internal/sim"
	"popgraph/internal/telemetry"
	"popgraph/internal/xrand"
)

// Spec is a declarative sweep: the cross product of graphs (templates ×
// sizes), protocols and drop rates, each cell run Trials times.
type Spec struct {
	// Name labels the sweep in tables and logs.
	Name string `json:"name,omitempty"`
	// Seed is the base seed every per-trial seed derives from.
	Seed uint64 `json:"seed"`
	// Trials is the number of independent runs per grid cell.
	Trials int `json:"trials"`
	// Graphs are ParseGraph spec templates; the letter N is replaced by
	// each value of Sizes.
	Graphs []string `json:"graphs"`
	// Sizes is the size ladder substituted into templates containing N.
	Sizes []int `json:"sizes,omitempty"`
	// Schedulers are ParseScheduler specs; empty means the single
	// uniform scheduler.
	Schedulers []string `json:"schedulers,omitempty"`
	// Protocols are ParseProtocol specs.
	Protocols []string `json:"protocols"`
	// DropRates are interaction-failure probabilities in [0, 1); empty
	// means the single rate 0.
	DropRates []float64 `json:"drop_rates,omitempty"`
	// MaxSteps caps each trial; 0 means the engine default.
	MaxSteps int64 `json:"max_steps,omitempty"`
	// Batch is the lockstep batch width: up to Batch replicate trials of
	// one cell execute as a single structure-of-arrays unit
	// (runner.Pool.StreamBatched). 0 or 1 runs every trial solo. Batching
	// never changes a record's bytes — trials keep their grid-derived
	// seeds — so the knob trades nothing but scheduling granularity for
	// throughput.
	Batch int `json:"batch,omitempty"`
}

// ParseJSON decodes and validates a spec from JSON. Unknown top-level
// keys are rejected with an error naming the key (catching typos like
// "grahps" in hand-written spec files), as is trailing content after
// the spec object.
func ParseJSON(data []byte) (Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		// The stdlib reports unknown fields as `json: unknown field "x"`;
		// rewrap with the valid key set so the typo is obvious.
		if key, ok := strings.CutPrefix(err.Error(), `json: unknown field `); ok {
			return Spec{}, fmt.Errorf(
				"sweep: spec has unknown key %s (valid keys: name, seed, trials, graphs, sizes, schedulers, protocols, drop_rates, max_steps, batch)",
				key)
		}
		return Spec{}, fmt.Errorf("sweep: parsing spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("sweep: trailing content after the spec object")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Validate checks the spec for structural errors.
func (s Spec) Validate() error {
	if s.Trials < 1 {
		return fmt.Errorf("sweep: trials must be >= 1 (got %d)", s.Trials)
	}
	if len(s.Graphs) == 0 {
		return fmt.Errorf("sweep: no graphs")
	}
	if len(s.Protocols) == 0 {
		return fmt.Errorf("sweep: no protocols")
	}
	needSizes := false
	for _, t := range s.Graphs {
		if templateHasN(t) {
			needSizes = true
			break
		}
	}
	if needSizes && len(s.Sizes) == 0 {
		return fmt.Errorf("sweep: graph templates use N but no sizes given")
	}
	for _, n := range s.Sizes {
		if n < 2 {
			return fmt.Errorf("sweep: size %d too small", n)
		}
	}
	for _, q := range s.DropRates {
		if q < 0 || q >= 1 {
			return fmt.Errorf("sweep: drop rate %v outside [0, 1)", q)
		}
	}
	for _, spec := range s.Schedulers {
		if strings.TrimSpace(spec) == "" {
			return fmt.Errorf("sweep: empty scheduler spec")
		}
	}
	if s.MaxSteps < 0 {
		return fmt.Errorf("sweep: negative max_steps")
	}
	if s.Batch < 0 {
		return fmt.Errorf("sweep: negative batch")
	}
	return nil
}

// GraphSpecs expands the graph templates against the size ladder,
// template-major: each template with an N yields one spec per size,
// templates without an N yield themselves once. Snapshot templates
// (file:/mmap:) are always fixed graphs — their payload is a filesystem
// path, where a literal N must survive untouched.
func (s Spec) GraphSpecs() []string {
	var out []string
	for _, t := range s.Graphs {
		if !templateHasN(t) {
			out = append(out, t)
			continue
		}
		for _, n := range s.Sizes {
			out = append(out, strings.ReplaceAll(t, "N", strconv.Itoa(n)))
		}
	}
	return out
}

// templateHasN reports whether a graph template takes the size ladder:
// it contains the substitution letter and is not a snapshot path spec.
func templateHasN(t string) bool {
	if strings.HasPrefix(t, "file:") || strings.HasPrefix(t, "mmap:") {
		return false
	}
	return strings.Contains(t, "N")
}

// GraphBuildSeed returns the construction seed Build hands ParseGraph
// for the gi-th expanded graph spec of a sweep seeded specSeed. It is
// exported for cmd/preprocess: a snapshot built with this seed holds
// the exact graph instance the sweep cell would generate, which is
// what makes a file:-spec sweep byte-identical to its generator-spec
// twin (the preprocess-roundtrip CI gate).
func GraphBuildSeed(specSeed uint64, gi int) uint64 { return mix(specSeed, gi) }

// dropRates returns the drop-rate axis, defaulting to {0}.
func (s Spec) dropRates() []float64 {
	if len(s.DropRates) == 0 {
		return []float64{0}
	}
	return s.DropRates
}

// schedulers returns the scheduler axis, defaulting to {"uniform"}.
func (s Spec) schedulers() []string {
	if len(s.Schedulers) == 0 {
		return []string{"uniform"}
	}
	return s.Schedulers
}

// Task is one grid cell: a fixed graph, scheduler, protocol and drop
// rate with its per-trial jobs (seeds already derived).
type Task struct {
	// GraphSpec is the expanded ParseGraph spec the graph was built from.
	GraphSpec string
	Graph     graph.Graph
	// SchedSpec is the ParseScheduler spec; Scheduler is the instance's
	// display name (they differ for shorthands like "weighted").
	SchedSpec string
	Scheduler string
	// ProtoSpec is the ParseProtocol spec; Protocol is the instance's
	// display name.
	ProtoSpec string
	Protocol  string
	DropRate  float64
	Jobs      []runner.Job
}

// mix derives the i-th child seed from base via a splitmix64 finalizer,
// keeping grid-cell streams disjoint from the golden-ratio trial streams
// layered on top by runner.SeedFor.
func mix(base uint64, i int) uint64 {
	x := base + 0x9e3779b97f4a7c15*uint64(i+1)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Build materializes the grid: graphs are constructed once per expanded
// spec and schedulers once per graph × scheduler spec (random families
// and random edge rates draw from a seed derived from the grid
// position, so every protocol and drop rate sees the same instance),
// and each cell gets Trials jobs with deterministic seeds.
func (s Spec) Build() ([]Task, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	specs := s.GraphSpecs()
	graphs := make([]graph.Graph, len(specs))
	for gi, spec := range specs {
		g, err := popgraph.ParseGraph(spec, xrand.New(mix(s.Seed, gi)))
		if err != nil {
			return nil, err
		}
		graphs[gi] = g
	}
	scheds := s.schedulers()
	var tasks []Task
	cell := 0
	for gi, g := range graphs {
		for si, schedSpec := range scheds {
			sched, err := popgraph.ParseScheduler(schedSpec, g,
				xrand.New(mix(s.Seed^0x5eedca11, gi*len(scheds)+si)))
			if err != nil {
				return nil, err
			}
			for _, proto := range s.Protocols {
				factory, err := popgraph.ProtocolFactory(proto, g,
					xrand.New(mix(s.Seed^0x5ca1ab1e, gi)))
				if err != nil {
					return nil, err
				}
				name := factory().Name()
				for _, q := range s.dropRates() {
					opts := sim.Options{MaxSteps: s.MaxSteps, DropRate: q, Scheduler: sched}
					tasks = append(tasks, Task{
						GraphSpec: specs[gi],
						Graph:     g,
						SchedSpec: schedSpec,
						Scheduler: sched.Name(),
						ProtoSpec: proto,
						Protocol:  name,
						DropRate:  q,
						Jobs:      runner.TrialJobs(g, factory, mix(s.Seed, cell+len(specs)), s.Trials, opts),
					})
					cell++
				}
			}
		}
	}
	return tasks, nil
}

// AttachTrajectories wires a telemetry.Trajectory observer into every
// trial job that does not already carry an observer, and returns the
// trajectories in grid order — trajectory i belongs to record i of a
// subsequent Execute, with Trial set to that flat index. Jobs with their
// own observer keep it and get a nil slot. Sampling rides the engine's
// Observe cadence: jobs without an explicit ObserveEvery sample every
// n steps (n = graph nodes), keeping observation cost O(steps/n) scans.
// Observer boundaries never perturb the random stream, so attaching
// trajectories leaves every record byte-identical.
func AttachTrajectories(tasks []Task, maxSamples int) []*telemetry.Trajectory {
	var out []*telemetry.Trajectory
	for ti := range tasks {
		t := &tasks[ti]
		for ji := range t.Jobs {
			j := &t.Jobs[ji]
			if j.Opts.Observer != nil {
				out = append(out, nil)
				continue
			}
			tr := telemetry.NewTrajectory(len(out), maxSamples)
			j.Opts.Observer = tr
			if j.Opts.ObserveEvery <= 0 {
				j.Opts.ObserveEvery = int64(t.Graph.N())
			}
			out = append(out, tr)
		}
	}
	return out
}

// Trials returns the total number of trials across all tasks.
func Trials(tasks []Task) int {
	total := 0
	for _, t := range tasks {
		total += len(t.Jobs)
	}
	return total
}

// CellCount returns the number of grid cells — tasks the spec's Build
// would materialize — without constructing any graph or scheduler. The
// trial grid a shard planner partitions has CellCount()·Trials entries.
func (s Spec) CellCount() int {
	return len(s.GraphSpecs()) * len(s.schedulers()) * len(s.Protocols) * len(s.dropRates())
}

// TrialRecord converts one trial's outcome into its results record. The
// record is a pure function of (task, trial, outcome) — apart from the
// two trailing wall-time fields, the records' only host-dependent
// content, which determinism comparisons normalize out — so a trial
// produces the same record bytes whether it ran in a solo sweep or on a
// remote shard.
func TrialRecord(t Task, trial int, o runner.Outcome) results.Record {
	return results.Record{
		Graph:       t.Graph.Name(),
		N:           t.Graph.N(),
		M:           t.Graph.M(),
		Scheduler:   t.Scheduler,
		Protocol:    t.Protocol,
		Trial:       trial,
		Seed:        t.Jobs[trial].Seed,
		DropRate:    t.DropRate,
		Steps:       o.Result.Steps,
		Stabilized:  o.Result.Stabilized,
		Leader:      o.Result.Leader,
		Backup:      o.Backup,
		Error:       o.Err,
		ElapsedNs:   o.ElapsedNs,
		QueueWaitNs: o.QueueWaitNs,
	}
}

// Execute runs every task's trials through one shared pool (so the whole
// grid saturates the workers, not one cell at a time) and returns one
// record per trial in grid order — deterministic for any worker count.
func Execute(tasks []Task, pool runner.Pool) []results.Record {
	recs := make([]results.Record, 0, Trials(tasks))
	ExecuteStream(tasks, pool, func(rec results.Record) {
		recs = append(recs, rec)
	})
	return recs
}

// ExecuteStream runs the grid like Execute but delivers each record to
// emit — on a single goroutine, in grid order, as soon as the trial and
// all its predecessors finish — instead of collecting them. Streaming
// consumers (the JSONL writer, the aggregate accumulator, shard
// checkpoints) see the exact record sequence Execute would return
// without anyone holding the whole batch in memory.
func ExecuteStream(tasks []Task, pool runner.Pool, emit func(results.Record)) {
	ExecuteStreamBatched(tasks, pool, 0, emit)
}

// ExecuteStreamBatched is ExecuteStream with lockstep batching: up to
// batch replicate trials of one task run as a single
// structure-of-arrays unit (runner.Pool.StreamBatched; batch <= 1 runs
// every trial solo). Units never span tasks — a task's jobs are the
// replicate family — and every record keeps the bytes its solo run
// would produce, so batching is invisible downstream of the pool.
func ExecuteStreamBatched(tasks []Task, pool runner.Pool, batch int, emit func(results.Record)) {
	var jobs []runner.Job
	// taskOf/trialOf map the flat job index back to its grid cell.
	var taskOf, trialOf []int
	for ti := range tasks {
		for trial := range tasks[ti].Jobs {
			jobs = append(jobs, tasks[ti].Jobs[trial])
			taskOf = append(taskOf, ti)
			trialOf = append(trialOf, trial)
		}
	}
	pool.StreamBatched(jobs, batch, func(i int) int { return taskOf[i] }, func(i int, o runner.Outcome) {
		emit(TrialRecord(tasks[taskOf[i]], trialOf[i], o))
	})
}
