package sweep

import (
	"bytes"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"popgraph/internal/results"
	"popgraph/internal/runner"
	"popgraph/internal/telemetry"
)

func smokeSpec() Spec {
	return Spec{
		Name:      "smoke",
		Seed:      42,
		Trials:    3,
		Graphs:    []string{"clique:N", "cycle:N", "star:12"},
		Sizes:     []int{8, 16},
		Protocols: []string{"six-state"},
	}
}

func TestParseJSON(t *testing.T) {
	spec, err := ParseJSON([]byte(`{
		"name": "demo", "seed": 7, "trials": 2,
		"graphs": ["clique:N", "torus:NxN"], "sizes": [8],
		"protocols": ["six-state", "fast"], "drop_rates": [0, 0.5],
		"max_steps": 100000, "batch": 8
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "demo" || spec.Seed != 7 || spec.Trials != 2 ||
		len(spec.Graphs) != 2 || len(spec.Protocols) != 2 ||
		len(spec.DropRates) != 2 || spec.MaxSteps != 100000 || spec.Batch != 8 {
		t.Fatalf("parsed spec %+v", spec)
	}
}

func TestParseJSONRejectsUnknownFields(t *testing.T) {
	_, err := ParseJSON([]byte(`{"seed": 1, "trials": 1, "graphs": ["clique:8"], "protocols": ["six-state"], "grahps": []}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	// The error must name the offending key and the valid key set, so a
	// typo in a hand-written spec is a one-glance fix.
	for _, want := range []string{`"grahps"`, "graphs", "schedulers"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
}

func TestParseJSONRejectsTrailingContent(t *testing.T) {
	_, err := ParseJSON([]byte(`{"seed": 1, "trials": 1, "graphs": ["clique:8"], "protocols": ["six-state"]}{"seed": 2}`))
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing content: %v", err)
	}
}

func TestParseJSONSchedulers(t *testing.T) {
	spec, err := ParseJSON([]byte(`{"seed": 1, "trials": 1, "graphs": ["clique:8"],
		"schedulers": ["uniform", "weighted:exp"], "protocols": ["six-state"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Schedulers) != 2 {
		t.Fatalf("schedulers %v", spec.Schedulers)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Spec)
	}{
		{"no trials", func(s *Spec) { s.Trials = 0 }},
		{"no graphs", func(s *Spec) { s.Graphs = nil }},
		{"no protocols", func(s *Spec) { s.Protocols = nil }},
		{"N without sizes", func(s *Spec) { s.Sizes = nil }},
		{"tiny size", func(s *Spec) { s.Sizes = []int{1} }},
		{"bad drop", func(s *Spec) { s.DropRates = []float64{1} }},
		{"negative cap", func(s *Spec) { s.MaxSteps = -1 }},
		{"negative batch", func(s *Spec) { s.Batch = -1 }},
		{"blank scheduler", func(s *Spec) { s.Schedulers = []string{"uniform", " "} }},
	}
	for _, c := range cases {
		s := smokeSpec()
		c.edit(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validation passed", c.name)
		}
	}
	if err := smokeSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestGraphSpecsExpansion(t *testing.T) {
	got := smokeSpec().GraphSpecs()
	want := []string{"clique:8", "clique:16", "cycle:8", "cycle:16", "star:12"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GraphSpecs() = %v, want %v", got, want)
	}
	s := Spec{Graphs: []string{"torus:NxN"}, Sizes: []int{4}}
	if got := s.GraphSpecs(); got[0] != "torus:4x4" {
		t.Fatalf("multi-substitution got %v", got)
	}
}

func TestBuildGrid(t *testing.T) {
	s := smokeSpec()
	s.DropRates = []float64{0, 0.25}
	tasks, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 5 graphs × 1 protocol × 2 drop rates.
	if len(tasks) != 10 {
		t.Fatalf("built %d tasks, want 10", len(tasks))
	}
	if got := Trials(tasks); got != 30 {
		t.Fatalf("total trials %d, want 30", got)
	}
	seen := make(map[uint64]bool)
	for _, task := range tasks {
		if len(task.Jobs) != 3 {
			t.Fatalf("task %+v has %d jobs", task.GraphSpec, len(task.Jobs))
		}
		if task.Protocol == "" {
			t.Fatal("task lacks a protocol display name")
		}
		for _, j := range task.Jobs {
			if seen[j.Seed] {
				t.Fatalf("duplicate trial seed %d", j.Seed)
			}
			seen[j.Seed] = true
		}
	}
}

func TestBuildSharesRandomGraphsAcrossProtocols(t *testing.T) {
	s := Spec{
		Seed:      5,
		Trials:    1,
		Graphs:    []string{"gnp:24:0.3"},
		Protocols: []string{"six-state", "identifier"},
	}
	tasks, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 {
		t.Fatalf("built %d tasks, want 2", len(tasks))
	}
	if tasks[0].Graph != tasks[1].Graph {
		t.Fatal("protocols got different instances of the same random graph")
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	s := smokeSpec()
	s.Graphs = []string{"noSuchFamily:8"}
	if _, err := s.Build(); err == nil {
		t.Fatal("bad graph family accepted")
	}
	s = smokeSpec()
	s.Protocols = []string{"no-such-protocol"}
	if _, err := s.Build(); err == nil {
		t.Fatal("bad protocol accepted")
	}
	s = smokeSpec()
	s.Schedulers = []string{"no-such-scheduler"}
	if _, err := s.Build(); err == nil {
		t.Fatal("bad scheduler accepted")
	}
}

// TestBuildSchedulerAxis — the scheduler axis multiplies the grid, every
// task carries its scheduler's display name, and the weighted
// scheduler's random edge rates are constructed once per graph ×
// scheduler cell (deterministically), not once per trial.
func TestBuildSchedulerAxis(t *testing.T) {
	s := Spec{
		Seed:   3,
		Trials: 2,
		Graphs: []string{"cycle:12"},
		Schedulers: []string{
			"uniform", "weighted:exp", "node-clock", "churn:8:2",
		},
		Protocols: []string{"six-state"},
	}
	tasks, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 4 {
		t.Fatalf("built %d tasks, want 4", len(tasks))
	}
	wantNames := []string{"uniform", "weighted:exp", "node-clock", "churn:8:2"}
	for i, task := range tasks {
		if task.Scheduler != wantNames[i] {
			t.Fatalf("task %d scheduler %q, want %q", i, task.Scheduler, wantNames[i])
		}
		if task.SchedSpec != s.Schedulers[i] {
			t.Fatalf("task %d spec %q", i, task.SchedSpec)
		}
		for _, j := range task.Jobs {
			if j.Opts.Scheduler == nil {
				t.Fatalf("task %d jobs lack the scheduler option", i)
			}
		}
	}
	// Rebuilding yields the same weighted instance behaviourally: same
	// seeds, same scheduler names, same job count.
	again, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := range tasks {
		if tasks[i].Scheduler != again[i].Scheduler ||
			tasks[i].Jobs[0].Seed != again[i].Jobs[0].Seed {
			t.Fatalf("rebuild diverged at task %d", i)
		}
	}
}

// TestExecuteByteIdenticalAcrossWorkerCounts is the subsystem's core
// guarantee: the JSONL log is byte-identical at one worker and at
// NumCPU workers for the same spec and seed — including over every
// scheduler (stateful churn sources and random weighted rates must not
// leak scheduling order into results).
func TestExecuteByteIdenticalAcrossWorkerCounts(t *testing.T) {
	s := Spec{
		Seed:   2022,
		Trials: 4,
		Graphs: []string{"clique:N", "cycle:N", "star:N"},
		Sizes:  []int{8, 12},
		Schedulers: []string{
			"uniform", "weighted:exp", "weighted:degprod", "node-clock", "churn:8:2",
		},
		Protocols: []string{"six-state"},
		DropRates: []float64{0, 0.25},
	}
	encode := func(workers int) []byte {
		tasks, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		recs := Execute(tasks, runner.Pool{Workers: workers})
		// The two wall-time fields are the records' only host-dependent
		// content; zero them so the comparison covers exactly the
		// deterministic part of the log.
		for i := range recs {
			recs[i].ElapsedNs, recs[i].QueueWaitNs = 0, 0
		}
		var buf bytes.Buffer
		if err := results.Write(&buf, recs); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := encode(1)
	parallel := encode(runtime.NumCPU())
	if !bytes.Equal(serial, parallel) {
		t.Fatal("JSONL output differs between -workers=1 and -workers=NumCPU")
	}
	if len(serial) == 0 {
		t.Fatal("no output produced")
	}
	recs, err := results.Read(bytes.NewReader(serial))
	if err != nil {
		t.Fatal(err)
	}
	// 6 graphs × 5 schedulers × 2 drop rates × 4 trials.
	if len(recs) != 6*5*2*4 {
		t.Fatalf("decoded %d records, want %d", len(recs), 6*5*2*4)
	}
	for i := range recs {
		if recs[i].Scheduler == "" {
			t.Fatalf("record %d lacks a scheduler name", i)
		}
	}
	if got := len(results.Aggregate(recs)); got != 6*5*2 {
		t.Fatalf("aggregated into %d groups, want %d", got, 6*5*2)
	}
}

// TestExecuteStreamBatchedByteIdentical — the batch knob must be
// invisible in the records: for any batch width (dividing Trials or
// not, wider than a task or not) the streamed records equal the solo
// grid's byte for byte, across the full scheduler axis (lockstep cells
// and fallback cells alike, crashed star trials included).
func TestExecuteStreamBatchedByteIdentical(t *testing.T) {
	s := Spec{
		Seed:   7,
		Trials: 5,
		Graphs: []string{"clique:N", "star:N"},
		Sizes:  []int{8},
		Schedulers: []string{
			"uniform", "weighted:exp", "node-clock",
		},
		Protocols: []string{"six-state", "star"},
		DropRates: []float64{0, 0.25},
	}
	encode := func(batch int) []byte {
		tasks, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		var recs []results.Record
		ExecuteStreamBatched(tasks, runner.Pool{Workers: 3}, batch, func(rec results.Record) {
			recs = append(recs, rec)
		})
		for i := range recs {
			recs[i].ElapsedNs, recs[i].QueueWaitNs = 0, 0
		}
		var buf bytes.Buffer
		if err := results.Write(&buf, recs); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := encode(0)
	if len(want) == 0 {
		t.Fatal("no output produced")
	}
	for _, batch := range []int{2, 3, 5, 16} {
		if got := encode(batch); !bytes.Equal(got, want) {
			t.Fatalf("batch=%d records differ from the solo grid", batch)
		}
	}
}

// TestExecuteMeterMatchesRecords is the flight recorder's accounting
// identity: a pool-level meter's steps_executed equals the sum of the
// per-trial steps in the results log, exactly, and the trial count
// matches the grid.
func TestExecuteMeterMatchesRecords(t *testing.T) {
	s := Spec{
		Seed:      9,
		Trials:    3,
		Graphs:    []string{"clique:N", "cycle:N"},
		Sizes:     []int{8, 12},
		Protocols: []string{"six-state"},
		DropRates: []float64{0, 0.25},
	}
	tasks, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	meter := new(telemetry.Counters)
	recs := Execute(tasks, runner.Pool{Workers: 4, Meter: meter})
	snap := meter.Snapshot()
	var wantSteps int64
	for _, r := range recs {
		wantSteps += r.Steps
	}
	if snap.StepsExecuted != wantSteps {
		t.Fatalf("meter steps %d, records sum %d", snap.StepsExecuted, wantSteps)
	}
	if int(snap.TrialsRun) != len(recs) {
		t.Fatalf("meter trials %d, records %d", snap.TrialsRun, len(recs))
	}
	for _, r := range recs {
		if r.ElapsedNs < 0 || r.QueueWaitNs < 0 {
			t.Fatalf("negative timing in record %+v", r)
		}
	}
}

// TestAttachTrajectories — one trajectory per trial in grid order, each
// closing with a terminal sample that agrees with the trial's record
// (step count, and a single leader for stabilized trials) — and the
// records themselves stay byte-identical to an unobserved run.
func TestAttachTrajectories(t *testing.T) {
	s := Spec{
		Seed:      17,
		Trials:    2,
		Graphs:    []string{"clique:8", "cycle:12"},
		Protocols: []string{"six-state"},
	}
	build := func() []Task {
		tasks, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		return tasks
	}
	bare := Execute(build(), runner.Pool{Workers: 2})
	tasks := build()
	trajs := AttachTrajectories(tasks, 64)
	if want := Trials(tasks); len(trajs) != want {
		t.Fatalf("%d trajectories, want %d", len(trajs), want)
	}
	recs := Execute(tasks, runner.Pool{Workers: 2})
	for i, r := range recs {
		if r.Steps != bare[i].Steps || r.Leader != bare[i].Leader {
			t.Fatalf("record %d diverged with trajectories attached: %+v vs %+v",
				i, r, bare[i])
		}
		tr := trajs[i]
		if tr == nil {
			t.Fatalf("trajectory %d missing", i)
		}
		samples := tr.Samples()
		if len(samples) == 0 {
			t.Fatalf("trajectory %d empty", i)
		}
		last := samples[len(samples)-1]
		if !last.Final || last.Trial != i || last.Step != r.Steps {
			t.Fatalf("trajectory %d terminal sample %+v, record steps %d",
				i, last, r.Steps)
		}
		if r.Stabilized && last.Leaders != 1 {
			t.Fatalf("trajectory %d terminal leaders %d for stabilized trial",
				i, last.Leaders)
		}
	}
	// A job with its own observer is left alone: nil slot, observer kept.
	tasks = build()
	obs := &countingObserver{}
	tasks[0].Jobs[0].Opts.Observer = obs
	trajs = AttachTrajectories(tasks, 64)
	if trajs[0] != nil {
		t.Fatal("pre-observed job was reassigned a trajectory")
	}
	if tasks[0].Jobs[0].Opts.Observer != obs {
		t.Fatal("pre-existing observer clobbered")
	}
	for i := 1; i < len(trajs); i++ {
		if trajs[i] == nil {
			t.Fatalf("trajectory %d missing", i)
		}
	}
}

type countingObserver struct{ n int }

func (c *countingObserver) Observe(int64) { c.n++ }
