package sweep

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"popgraph/internal/results"
	"popgraph/internal/runner"
)

func smokeSpec() Spec {
	return Spec{
		Name:      "smoke",
		Seed:      42,
		Trials:    3,
		Graphs:    []string{"clique:N", "cycle:N", "star:12"},
		Sizes:     []int{8, 16},
		Protocols: []string{"six-state"},
	}
}

func TestParseJSON(t *testing.T) {
	spec, err := ParseJSON([]byte(`{
		"name": "demo", "seed": 7, "trials": 2,
		"graphs": ["clique:N", "torus:NxN"], "sizes": [8],
		"protocols": ["six-state", "fast"], "drop_rates": [0, 0.5],
		"max_steps": 100000
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "demo" || spec.Seed != 7 || spec.Trials != 2 ||
		len(spec.Graphs) != 2 || len(spec.Protocols) != 2 ||
		len(spec.DropRates) != 2 || spec.MaxSteps != 100000 {
		t.Fatalf("parsed spec %+v", spec)
	}
}

func TestParseJSONRejectsUnknownFields(t *testing.T) {
	_, err := ParseJSON([]byte(`{"seed": 1, "trials": 1, "graphs": ["clique:8"], "protocols": ["six-state"], "grahps": []}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Spec)
	}{
		{"no trials", func(s *Spec) { s.Trials = 0 }},
		{"no graphs", func(s *Spec) { s.Graphs = nil }},
		{"no protocols", func(s *Spec) { s.Protocols = nil }},
		{"N without sizes", func(s *Spec) { s.Sizes = nil }},
		{"tiny size", func(s *Spec) { s.Sizes = []int{1} }},
		{"bad drop", func(s *Spec) { s.DropRates = []float64{1} }},
		{"negative cap", func(s *Spec) { s.MaxSteps = -1 }},
	}
	for _, c := range cases {
		s := smokeSpec()
		c.edit(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validation passed", c.name)
		}
	}
	if err := smokeSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestGraphSpecsExpansion(t *testing.T) {
	got := smokeSpec().GraphSpecs()
	want := []string{"clique:8", "clique:16", "cycle:8", "cycle:16", "star:12"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GraphSpecs() = %v, want %v", got, want)
	}
	s := Spec{Graphs: []string{"torus:NxN"}, Sizes: []int{4}}
	if got := s.GraphSpecs(); got[0] != "torus:4x4" {
		t.Fatalf("multi-substitution got %v", got)
	}
}

func TestBuildGrid(t *testing.T) {
	s := smokeSpec()
	s.DropRates = []float64{0, 0.25}
	tasks, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 5 graphs × 1 protocol × 2 drop rates.
	if len(tasks) != 10 {
		t.Fatalf("built %d tasks, want 10", len(tasks))
	}
	if got := Trials(tasks); got != 30 {
		t.Fatalf("total trials %d, want 30", got)
	}
	seen := make(map[uint64]bool)
	for _, task := range tasks {
		if len(task.Jobs) != 3 {
			t.Fatalf("task %+v has %d jobs", task.GraphSpec, len(task.Jobs))
		}
		if task.Protocol == "" {
			t.Fatal("task lacks a protocol display name")
		}
		for _, j := range task.Jobs {
			if seen[j.Seed] {
				t.Fatalf("duplicate trial seed %d", j.Seed)
			}
			seen[j.Seed] = true
		}
	}
}

func TestBuildSharesRandomGraphsAcrossProtocols(t *testing.T) {
	s := Spec{
		Seed:      5,
		Trials:    1,
		Graphs:    []string{"gnp:24:0.3"},
		Protocols: []string{"six-state", "identifier"},
	}
	tasks, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 {
		t.Fatalf("built %d tasks, want 2", len(tasks))
	}
	if tasks[0].Graph != tasks[1].Graph {
		t.Fatal("protocols got different instances of the same random graph")
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	s := smokeSpec()
	s.Graphs = []string{"noSuchFamily:8"}
	if _, err := s.Build(); err == nil {
		t.Fatal("bad graph family accepted")
	}
	s = smokeSpec()
	s.Protocols = []string{"no-such-protocol"}
	if _, err := s.Build(); err == nil {
		t.Fatal("bad protocol accepted")
	}
}

// TestExecuteByteIdenticalAcrossWorkerCounts is the subsystem's core
// guarantee: the JSONL log is byte-identical at one worker and at
// NumCPU workers for the same spec and seed.
func TestExecuteByteIdenticalAcrossWorkerCounts(t *testing.T) {
	s := Spec{
		Seed:      2022,
		Trials:    4,
		Graphs:    []string{"clique:N", "cycle:N", "star:N"},
		Sizes:     []int{8, 12},
		Protocols: []string{"six-state"},
		DropRates: []float64{0, 0.25},
	}
	encode := func(workers int) []byte {
		tasks, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		recs := Execute(tasks, runner.Pool{Workers: workers})
		var buf bytes.Buffer
		if err := results.Write(&buf, recs); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := encode(1)
	parallel := encode(runtime.NumCPU())
	if !bytes.Equal(serial, parallel) {
		t.Fatal("JSONL output differs between -workers=1 and -workers=NumCPU")
	}
	if len(serial) == 0 {
		t.Fatal("no output produced")
	}
	recs, err := results.Read(bytes.NewReader(serial))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3*2*2*4 {
		t.Fatalf("decoded %d records, want 48", len(recs))
	}
	if got := len(results.Aggregate(recs)); got != 12 {
		t.Fatalf("aggregated into %d groups, want 12", got)
	}
}
