package graph

import (
	"fmt"
	"math"

	"popgraph/internal/xrand"
)

// Cycle returns the n-cycle C_n (n >= 3).
func Cycle(n int) *Dense {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n >= 3, got %d", n))
	}
	packed := make([]int64, 0, n)
	for v := 0; v < n-1; v++ {
		packed = append(packed, pack(v, v+1))
	}
	packed = append(packed, pack(0, n-1))
	return newDenseUnchecked(n, sortPacked(packed), fmt.Sprintf("cycle-%d", n)).setDiam(n / 2)
}

// Path returns the path P_n on n >= 2 nodes.
func Path(n int) *Dense {
	if n < 2 {
		panic(fmt.Sprintf("graph: path needs n >= 2, got %d", n))
	}
	packed := make([]int64, 0, n-1)
	for v := 0; v < n-1; v++ {
		packed = append(packed, pack(v, v+1))
	}
	return newDenseUnchecked(n, packed, fmt.Sprintf("path-%d", n)).setDiam(n - 1)
}

// Star returns the star K_{1,n-1} with node 0 as the center (n >= 2).
func Star(n int) *Dense {
	if n < 2 {
		panic(fmt.Sprintf("graph: star needs n >= 2, got %d", n))
	}
	packed := make([]int64, 0, n-1)
	for v := 1; v < n; v++ {
		packed = append(packed, pack(0, v))
	}
	d := 2
	if n == 2 {
		d = 1
	}
	return newDenseUnchecked(n, packed, fmt.Sprintf("star-%d", n)).setDiam(d)
}

// CompleteBipartite returns K_{a,b}: parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *Dense {
	if a < 1 || b < 1 || a+b < 2 {
		panic(fmt.Sprintf("graph: K_{%d,%d} invalid", a, b))
	}
	packed := make([]int64, 0, a*b)
	for u := 0; u < a; u++ {
		for w := a; w < a+b; w++ {
			packed = append(packed, pack(u, w))
		}
	}
	d := 2
	if a == 1 && b == 1 {
		d = 1
	}
	return newDenseUnchecked(a+b, packed, fmt.Sprintf("bipartite-%d-%d", a, b)).setDiam(d)
}

// Torus2D returns the rows×cols 2-dimensional torus (wraparound grid).
// Both dimensions must be >= 3 so the graph stays simple. It is 4-regular.
func Torus2D(rows, cols int) *Dense {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("graph: torus needs dims >= 3, got %dx%d", rows, cols))
	}
	n := rows * cols
	packed := make([]int64, 0, 2*n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			packed = append(packed, pack(id(r, c), id(r, (c+1)%cols)))
			packed = append(packed, pack(id(r, c), id((r+1)%rows, c)))
		}
	}
	return newDenseUnchecked(n, sortPacked(packed),
		fmt.Sprintf("torus-%dx%d", rows, cols)).setDiam(rows/2 + cols/2)
}

// TorusK returns the k-dimensional torus with the given side lengths
// (each >= 3): nodes are mixed-radix tuples, adjacent when they differ by
// ±1 (mod side) in exactly one coordinate. 2k-regular; Section 6.2 notes
// these graphs are Ω(n^{1+1/k})-renitent.
func TorusK(dims ...int) *Dense {
	if len(dims) < 1 {
		panic("graph: TorusK needs at least one dimension")
	}
	n := 1
	diam := 0
	for _, d := range dims {
		if d < 3 {
			panic(fmt.Sprintf("graph: TorusK dims must be >= 3, got %v", dims))
		}
		if n > 1<<26/d {
			panic(fmt.Sprintf("graph: TorusK %v too large", dims))
		}
		n *= d
		diam += d / 2
	}
	// Mixed-radix strides: coordinate i changes in steps of stride[i].
	stride := make([]int, len(dims))
	stride[len(dims)-1] = 1
	for i := len(dims) - 2; i >= 0; i-- {
		stride[i] = stride[i+1] * dims[i+1]
	}
	packed := make([]int64, 0, n*len(dims))
	coord := make([]int, len(dims))
	for v := 0; v < n; v++ {
		for i, d := range dims {
			next := v + stride[i]
			if coord[i] == d-1 {
				next = v - (d-1)*stride[i] // wrap around
			}
			packed = append(packed, pack(v, next))
		}
		// Increment the mixed-radix counter.
		for i := len(dims) - 1; i >= 0; i-- {
			coord[i]++
			if coord[i] < dims[i] {
				break
			}
			coord[i] = 0
		}
	}
	name := "torusk"
	for _, d := range dims {
		name += fmt.Sprintf("-%d", d)
	}
	return newDenseUnchecked(n, sortPacked(packed), name).setDiam(diam)
}

// Grid2D returns the rows×cols grid without wraparound (dims >= 2).
func Grid2D(rows, cols int) *Dense {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic(fmt.Sprintf("graph: grid %dx%d invalid", rows, cols))
	}
	n := rows * cols
	packed := make([]int64, 0, 2*n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				packed = append(packed, pack(id(r, c), id(r, c+1)))
			}
			if r+1 < rows {
				packed = append(packed, pack(id(r, c), id(r+1, c)))
			}
		}
	}
	return newDenseUnchecked(n, sortPacked(packed),
		fmt.Sprintf("grid-%dx%d", rows, cols)).setDiam(rows + cols - 2)
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes (dim >= 1).
func Hypercube(dim int) *Dense {
	if dim < 1 || dim > 24 {
		panic(fmt.Sprintf("graph: hypercube dim %d out of range [1,24]", dim))
	}
	n := 1 << dim
	packed := make([]int64, 0, n*dim/2)
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			w := v ^ (1 << b)
			if v < w {
				packed = append(packed, pack(v, w))
			}
		}
	}
	return newDenseUnchecked(n, sortPacked(packed), fmt.Sprintf("hypercube-%d", dim)).setDiam(dim)
}

// BinaryTree returns the complete binary tree of the given depth
// (depth 0 is a single edge... no: depth d has 2^(d+1)-1 nodes; depth >= 1).
func BinaryTree(depth int) *Dense {
	if depth < 1 || depth > 24 {
		panic(fmt.Sprintf("graph: binary tree depth %d out of range [1,24]", depth))
	}
	n := 1<<(depth+1) - 1
	packed := make([]int64, 0, n-1)
	for v := 1; v < n; v++ {
		packed = append(packed, pack((v-1)/2, v))
	}
	return newDenseUnchecked(n, packed, fmt.Sprintf("bintree-%d", depth)).setDiam(2 * depth)
}

// Lollipop returns a clique on k nodes with a path of pathLen extra nodes
// attached to clique node 0 (k >= 2, pathLen >= 1). A classic
// high-hitting-time graph: H(G) = Θ(k²·pathLen) when k ≈ pathLen.
func Lollipop(k, pathLen int) *Dense {
	if k < 2 || pathLen < 1 {
		panic(fmt.Sprintf("graph: lollipop(%d,%d) invalid", k, pathLen))
	}
	n := k + pathLen
	packed := make([]int64, 0, k*(k-1)/2+pathLen)
	for u := 0; u < k; u++ {
		for w := u + 1; w < k; w++ {
			packed = append(packed, pack(u, w))
		}
	}
	packed = append(packed, pack(0, k))
	for v := k; v < n-1; v++ {
		packed = append(packed, pack(v, v+1))
	}
	d := pathLen + 1
	if k == 2 {
		d = pathLen + 1 // path end to the far clique node
	}
	return newDenseUnchecked(n, sortPacked(packed),
		fmt.Sprintf("lollipop-%d-%d", k, pathLen)).setDiam(d)
}

// Barbell returns two k-cliques joined by a path of pathLen intermediate
// nodes (k >= 2, pathLen >= 0). With pathLen = 0 the two cliques share one
// edge between node 0 and node k.
func Barbell(k, pathLen int) *Dense {
	if k < 2 || pathLen < 0 {
		panic(fmt.Sprintf("graph: barbell(%d,%d) invalid", k, pathLen))
	}
	n := 2*k + pathLen
	packed := make([]int64, 0, k*(k-1)+pathLen+1)
	for u := 0; u < k; u++ {
		for w := u + 1; w < k; w++ {
			packed = append(packed, pack(u, w))
			packed = append(packed, pack(k+u, k+w))
		}
	}
	// Chain: clique-A node 0 — path nodes 2k..2k+pathLen-1 — clique-B node k.
	prev := 0
	for i := 0; i < pathLen; i++ {
		packed = append(packed, pack(prev, 2*k+i))
		prev = 2*k + i
	}
	packed = append(packed, pack(prev, k))
	return newDenseUnchecked(n, sortPacked(packed),
		fmt.Sprintf("barbell-%d-%d", k, pathLen)).setDiam(pathLen + 3)
}

// Gnp samples an Erdős–Rényi random graph G(n, p) conditioned on being
// connected (the conditioning used throughout Sections 4 and 7). It retries
// up to 1000 draws and returns ErrDisconnected if none is connected.
func Gnp(n int, p float64, r *xrand.Rand) (*Dense, error) {
	if n < 2 || p <= 0 || p > 1 {
		return nil, fmt.Errorf("graph: Gnp(%d, %v): %w", n, p, ErrInvalidEdge)
	}
	for try := 0; try < 1000; try++ {
		packed := gnpEdges(n, p, r)
		g := newDenseUnchecked(n, packed, fmt.Sprintf("gnp-%d-p%.2f", n, p))
		if connected(g) {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: Gnp(%d, %v) stayed disconnected after 1000 draws: %w",
		n, p, ErrDisconnected)
}

// gnpEdges samples the edge set of G(n,p) with geometric skipping, so the
// cost is O(n + pn²) rather than O(n²) for sparse p.
func gnpEdges(n int, p float64, r *xrand.Rand) []int64 {
	total := int64(n) * int64(n-1) / 2
	packed := make([]int64, 0, int(float64(total)*p*1.1)+8)
	if p == 1 {
		for u := 0; u < n; u++ {
			for w := u + 1; w < n; w++ {
				packed = append(packed, pack(u, w))
			}
		}
		return packed
	}
	// Enumerate pair indices 0..total-1 lexicographically and skip ahead
	// by Geom(p) each time.
	idx := int64(-1)
	for {
		idx += r.Geometric(p)
		if idx >= total {
			return packed
		}
		u, w := unrankPair(idx, n)
		packed = append(packed, pack(u, w))
	}
}

// unrankPair maps a lexicographic rank to the pair (u, w), u < w, where
// rank 0 = (0,1), 1 = (0,2), ..., n-2 = (0,n-1), n-1 = (1,2), ...
func unrankPair(rank int64, n int) (int, int) {
	u := 0
	rowLen := int64(n - 1)
	for rank >= rowLen {
		rank -= rowLen
		rowLen--
		u++
	}
	return u, u + 1 + int(rank)
}

// WattsStrogatz samples a Watts–Strogatz small-world graph: a ring
// lattice on n nodes with k neighbors per node (k/2 on each side, k
// even), each lattice edge rewired with probability beta to a uniformly
// random non-duplicate endpoint. beta = 0 is the pure lattice, beta = 1
// approaches G(n, k/(n-1)); small beta gives the small-world regime —
// lattice-scale clustering with random-graph-scale diameter, hence
// broadcast time B(G) far below the lattice's. The edge count is always
// n·k/2 (rewiring moves edges, never adds or removes them). The sample
// is conditioned on connectivity with up to 1000 retries.
func WattsStrogatz(n, k int, beta float64, r *xrand.Rand) (*Dense, error) {
	if n < 3 || k < 2 || k%2 != 0 || k >= n || math.IsNaN(beta) || beta < 0 || beta > 1 {
		return nil, fmt.Errorf("graph: WattsStrogatz(%d, %d, %v): need n >= 3, even 2 <= k < n, beta in [0,1]: %w",
			n, k, beta, ErrInvalidEdge)
	}
	name := fmt.Sprintf("ws-%d-k%d-b%g", n, k, beta)
	for try := 0; try < 1000; try++ {
		g := newDenseUnchecked(n, sortPacked(wsEdges(n, k, beta, r)), name)
		if connected(g) {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: WattsStrogatz(%d, %d, %v) stayed disconnected after 1000 draws: %w",
		n, k, beta, ErrDisconnected)
}

// wsEdges builds one rewired ring lattice. The edge set is tracked in a
// map so rewiring never creates duplicates or self-loops; an edge whose
// rewiring target collides keeps its lattice endpoint.
func wsEdges(n, k int, beta float64, r *xrand.Rand) []int64 {
	seen := make(map[int64]struct{}, n*k/2)
	order := make([]int64, 0, n*k/2)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			key := pack(u, (u+j)%n)
			seen[key] = struct{}{}
			order = append(order, key)
		}
	}
	packed := make([]int64, 0, len(order))
	for _, key := range order {
		u := int(key >> 32)
		if beta > 0 && r.Float64() < beta {
			// Rewire the far endpoint; keep the lattice edge when the node
			// is saturated or a bounded number of draws keeps colliding.
			for attempt := 0; attempt < 32; attempt++ {
				w := r.Intn(n)
				cand := pack(u, w)
				if w == u {
					continue
				}
				if _, dup := seen[cand]; dup {
					continue
				}
				delete(seen, key)
				seen[cand] = struct{}{}
				key = cand
				break
			}
		}
		packed = append(packed, key)
	}
	return packed
}

// BarabasiAlbert samples a Barabási–Albert preferential-attachment
// graph: a seed clique on m+1 nodes, then each new node attaches m
// edges to distinct existing nodes with probability proportional to
// their current degree, yielding a power-law degree distribution —
// heavy hubs, the opposite extreme from regular graphs for
// degree-sensitive scheduler dynamics. Connected by construction.
// Requires 1 <= m < n.
func BarabasiAlbert(n, m int, r *xrand.Rand) (*Dense, error) {
	if m < 1 || m >= n {
		return nil, fmt.Errorf("graph: BarabasiAlbert(%d, %d): need 1 <= m < n: %w",
			n, m, ErrInvalidEdge)
	}
	mEdges := m * (m + 1) / 2 // seed clique
	packed := make([]int64, 0, mEdges+(n-m-1)*m)
	// targets lists each edge endpoint once, so uniform draws from it are
	// degree-proportional ("repeated nodes" construction).
	targets := make([]int32, 0, 2*cap(packed))
	for u := 0; u <= m; u++ {
		for w := u + 1; w <= m; w++ {
			packed = append(packed, pack(u, w))
			targets = append(targets, int32(u), int32(w))
		}
	}
	// picked is a slice, not a set: map iteration order would leak
	// nondeterminism into the edge stream and break seed reproducibility.
	picked := make([]int32, 0, m)
	for v := m + 1; v < n; v++ {
		picked = picked[:0]
		for len(picked) < m {
			w := targets[r.Intn(len(targets))]
			dup := false
			for _, c := range picked {
				if c == w {
					dup = true
					break
				}
			}
			if !dup {
				picked = append(picked, w)
			}
		}
		for _, w := range picked {
			packed = append(packed, pack(v, int(w)))
			targets = append(targets, int32(v), w)
		}
	}
	return newDenseUnchecked(n, sortPacked(packed), fmt.Sprintf("ba-%d-m%d", n, m)), nil
}

// RandomRegular samples a uniform-ish random d-regular graph on n nodes via
// the Steger–Wormald pairing procedure, restarting on dead ends, and
// conditions on connectivity. Requires 3 <= d < n and n·d even.
func RandomRegular(n, d int, r *xrand.Rand) (*Dense, error) {
	if d < 3 || d >= n || n*d%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular(%d, %d): need 3 <= d < n, n·d even: %w",
			n, d, ErrInvalidEdge)
	}
	for try := 0; try < 1000; try++ {
		packed, ok := pairingAttempt(n, d, r)
		if !ok {
			continue
		}
		g := newDenseUnchecked(n, sortPacked(packed), fmt.Sprintf("regular-%d-d%d", n, d))
		if connected(g) {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: RandomRegular(%d, %d) failed after 1000 attempts: %w",
		n, d, ErrDisconnected)
}

// pairingAttempt runs one Steger–Wormald round: repeatedly pick two random
// free stubs whose pairing creates neither a loop nor a duplicate edge.
// Reports failure when only unusable stub pairs remain.
func pairingAttempt(n, d int, r *xrand.Rand) ([]int64, bool) {
	stubs := make([]int32, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	seen := make(map[int64]struct{}, n*d/2)
	packed := make([]int64, 0, n*d/2)
	for len(stubs) > 0 {
		placed := false
		// A bounded number of rejection-sampling attempts; if the remaining
		// stubs are few, fall back to exhaustively scanning for any valid pair.
		for attempt := 0; attempt < 64; attempt++ {
			i := r.Intn(len(stubs))
			j := r.Intn(len(stubs) - 1)
			if j >= i {
				j++
			}
			u, w := stubs[i], stubs[j]
			if u == w {
				continue
			}
			key := pack(int(min32(u, w)), int(max32(u, w)))
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			packed = append(packed, key)
			// Remove the two stubs (order: larger index first).
			if i < j {
				i, j = j, i
			}
			stubs[i] = stubs[len(stubs)-1]
			stubs = stubs[:len(stubs)-1]
			stubs[j] = stubs[len(stubs)-1]
			stubs = stubs[:len(stubs)-1]
			placed = true
			break
		}
		if !placed {
			return nil, false
		}
	}
	return packed, true
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func pack(u, w int) int64 {
	if u > w {
		u, w = w, u
	}
	return int64(u)<<32 | int64(w)
}

func sortPacked(packed []int64) []int64 {
	// Insertion of generator output is nearly sorted; stdlib sort is fine.
	sortInt64s(packed)
	return packed
}

func sortInt64s(a []int64) {
	// Simple pdq via sort.Slice to avoid reflect-heavy sort.Sort plumbing.
	if len(a) < 2 {
		return
	}
	quicksortInt64(a)
}

func quicksortInt64(a []int64) {
	for len(a) > 12 {
		p := medianOfThree(a)
		lo, hi := 0, len(a)-1
		for lo <= hi {
			for a[lo] < p {
				lo++
			}
			for a[hi] > p {
				hi--
			}
			if lo <= hi {
				a[lo], a[hi] = a[hi], a[lo]
				lo++
				hi--
			}
		}
		if hi < len(a)-lo {
			quicksortInt64(a[:hi+1])
			a = a[lo:]
		} else {
			quicksortInt64(a[lo:])
			a = a[:hi+1]
		}
	}
	// Insertion sort for small slices.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func medianOfThree(a []int64) int64 {
	lo, mid, hi := a[0], a[len(a)/2], a[len(a)-1]
	if lo > mid {
		lo, mid = mid, lo
	}
	if mid > hi {
		mid = hi
	}
	if lo > mid {
		mid = lo
	}
	return mid
}
