// Package graph provides the interaction-graph substrate for the population
// protocol simulator: a compact adjacency representation, generators for the
// graph families studied in the paper (cliques, cycles, stars, tori, random
// graphs, renitent constructions, ...), and structural properties (BFS
// distances, diameter, degrees, boundaries).
//
// Graphs are connected, simple and undirected, with nodes 0..n-1. The
// scheduler of the population model samples an ordered pair of adjacent
// nodes uniformly among all 2m such pairs; SampleEdge implements exactly
// that distribution.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"popgraph/internal/xrand"
)

// Graph is the read-only interface the simulator, the measurement code and
// the protocols use. Implementations must describe a connected simple
// undirected graph with nodes 0..N()-1.
type Graph interface {
	// N returns the number of nodes.
	N() int
	// M returns the number of (undirected) edges.
	M() int
	// Degree returns the number of edges incident to v.
	Degree(v int) int
	// NeighborAt returns the i-th neighbour of v, for 0 <= i < Degree(v).
	// The ordering is arbitrary but fixed.
	NeighborAt(v, i int) int
	// ForEachEdge calls fn once per undirected edge {u, w}, with u < w.
	ForEachEdge(fn func(u, w int))
	// SampleEdge returns an ordered pair (u, w) of adjacent nodes sampled
	// uniformly among all 2·M() ordered pairs; u is the initiator.
	SampleEdge(r *xrand.Rand) (u, w int)
	// Name returns a short human-readable description, e.g. "cycle-1024".
	Name() string
}

// DiameterKnower is an optional interface for graphs whose diameter is
// known analytically; Diameter consults it before running BFS.
type DiameterKnower interface {
	KnownDiameter() int
}

// Dense is the concrete adjacency-list (CSR) implementation of Graph used
// for every family except cliques (which have an implicit representation).
type Dense struct {
	n       int
	offsets []int32 // len n+1
	adj     []int32 // len 2m, neighbours of v at offsets[v]:offsets[v+1]
	edges   []int64 // len m, packed u<<32|w with u < w, for edge sampling
	name    string
	diam    int // known diameter, -1 if unknown
	aux     any // loader-attached artifacts; see SetAux
}

var _ Graph = (*Dense)(nil)
var _ DiameterKnower = (*Dense)(nil)

// Edge is an undirected edge {U, W}; constructors normalize U < W.
type Edge struct {
	U, W int32
}

// errors returned by constructors.
var (
	ErrDisconnected = errors.New("graph: not connected")
	ErrInvalidEdge  = errors.New("graph: invalid edge")
)

// NewDense builds a Dense graph on n nodes from the given undirected edge
// list. It rejects self-loops, out-of-range endpoints, duplicate edges and
// disconnected graphs.
func NewDense(n int, edges []Edge, name string) (*Dense, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph %q: n must be positive, got %d: %w", name, n, ErrInvalidEdge)
	}
	norm := make([]int64, 0, len(edges))
	for _, e := range edges {
		u, w := e.U, e.W
		if u == w {
			return nil, fmt.Errorf("graph %q: self-loop at %d: %w", name, u, ErrInvalidEdge)
		}
		if u < 0 || w < 0 || int(u) >= n || int(w) >= n {
			return nil, fmt.Errorf("graph %q: edge (%d,%d) out of range [0,%d): %w", name, u, w, n, ErrInvalidEdge)
		}
		if u > w {
			u, w = w, u
		}
		norm = append(norm, int64(u)<<32|int64(w))
	}
	sort.Slice(norm, func(i, j int) bool { return norm[i] < norm[j] })
	for i := 1; i < len(norm); i++ {
		if norm[i] == norm[i-1] {
			return nil, fmt.Errorf("graph %q: duplicate edge (%d,%d): %w",
				name, norm[i]>>32, norm[i]&0xffffffff, ErrInvalidEdge)
		}
	}
	g := newDenseUnchecked(n, norm, name)
	if !connected(g) {
		return nil, fmt.Errorf("graph %q (n=%d, m=%d): %w", name, n, len(norm), ErrDisconnected)
	}
	return g, nil
}

// NewDenseFromCSR rebuilds a Dense graph directly from its three CSR
// arrays — the exact slices CSR and PackedEdges expose — so a decoded
// binary snapshot becomes a first-class *Dense (and keeps the
// type-specialized kernels engaged) without re-deriving anything. The
// slices are adopted, not copied; callers transfer ownership and must
// not mutate them afterwards.
//
// Validation runs in two tiers. The shape tier is O(n): offsets must
// start at 0, be nondecreasing and end at 2m, lengths must agree with
// n and m, and diam must lie in [-1, n). The content tier, VerifyCSR,
// is O(m): every adjacency entry must be a valid node, the packed edge
// list must be strictly ascending (which implies u < w, no duplicates)
// with in-range endpoints, and adj must be exactly the adjacency
// newDenseUnchecked would derive from that edge list (checked by
// replaying the cursor fill), so the triple is internally consistent,
// not merely plausible. NewDenseFromCSR runs both tiers. Connectivity
// is NOT re-verified — callers vouch for it (a snapshot records the
// encoder's BFS result under its checksum); diam is the known diameter
// or -1.
func NewDenseFromCSR(n int, offsets, adj []int32, packed []int64, name string, diam int) (*Dense, error) {
	g, err := NewDenseFromCSRTrusted(n, offsets, adj, packed, name, diam)
	if err != nil {
		return nil, err
	}
	if err := g.VerifyCSR(); err != nil {
		return nil, err
	}
	return g, nil
}

// NewDenseFromCSRTrusted is NewDenseFromCSR minus the O(m) content
// tier: it runs only the O(n) shape checks and adopts the arrays as
// given. It exists for callers whose data integrity is already
// established — a checksummed snapshot carries the same bytes its
// encoder verified with VerifyCSR, so revalidating every element on
// load would spend more time than the load itself (on a
// memory-bandwidth-bound machine each O(m) scan costs as much as the
// checksum pass). The trade is explicit: a crafted file with valid
// checksums but inconsistent content is caught by VerifyCSR, not here;
// until then, out-of-range adjacency surfaces as an index-range panic
// in the kernels, never as memory corruption.
func NewDenseFromCSRTrusted(n int, offsets, adj []int32, packed []int64, name string, diam int) (*Dense, error) {
	if n <= 0 || n > 1<<31-1 {
		return nil, fmt.Errorf("graph %q: CSR node count %d out of range: %w", name, n, ErrInvalidEdge)
	}
	m := len(packed)
	if len(offsets) != n+1 {
		return nil, fmt.Errorf("graph %q: CSR offsets length %d, want n+1 = %d: %w", name, len(offsets), n+1, ErrInvalidEdge)
	}
	if len(adj) != 2*m {
		return nil, fmt.Errorf("graph %q: CSR adjacency length %d, want 2m = %d: %w", name, len(adj), 2*m, ErrInvalidEdge)
	}
	if offsets[0] != 0 || int(offsets[n]) != 2*m {
		return nil, fmt.Errorf("graph %q: CSR offsets span [%d, %d], want [0, %d]: %w", name, offsets[0], offsets[n], 2*m, ErrInvalidEdge)
	}
	if !csrOffsetsMonotone(offsets) {
		return nil, fmt.Errorf("graph %q: CSR offsets not nondecreasing: %w", name, ErrInvalidEdge)
	}
	if diam < -1 || diam >= n {
		return nil, fmt.Errorf("graph %q: known diameter %d out of range [-1, %d): %w", name, diam, n, ErrInvalidEdge)
	}
	return &Dense{n: n, offsets: offsets, adj: adj, edges: packed, name: name, diam: diam}, nil
}

// VerifyCSR runs the O(m) content tier of the CSR validation (see
// NewDenseFromCSR): adjacency entries in range, packed edges strictly
// ascending with valid endpoints, and the adjacency array exactly the
// cursor fill of the edge list. It is the deep check
// NewDenseFromCSRTrusted defers; snapshot encoders run it once after
// writing so loaders don't have to on every start.
func (g *Dense) VerifyCSR() error {
	n, name, offsets, adj, packed := g.n, g.name, g.offsets, g.adj, g.edges
	if i := csrAdjOutOfRange(adj, int32(n)); i >= 0 {
		return fmt.Errorf("graph %q: CSR adjacency entry %d is %d, outside [0,%d): %w", name, i, adj[i], n, ErrInvalidEdge)
	}
	if i := csrEdgesUnsorted(packed, n); i >= 0 {
		return fmt.Errorf("graph %q: packed edge %d (%d,%d) out of order or out of range: %w",
			name, i, packed[i]>>32, packed[i]&0xffffffff, ErrInvalidEdge)
	}
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	if i := csrAdjMatchesEdges(offsets, adj, cursor, packed); i >= 0 {
		return fmt.Errorf("graph %q: CSR adjacency disagrees with packed edge %d (%d,%d): %w",
			name, i, packed[i]>>32, packed[i]&0xffffffff, ErrInvalidEdge)
	}
	for v := 0; v < n; v++ {
		if cursor[v] != offsets[v+1] {
			return fmt.Errorf("graph %q: CSR degree of node %d is %d, edge list implies %d: %w",
				name, v, offsets[v+1]-offsets[v], cursor[v]-offsets[v], ErrInvalidEdge)
		}
	}
	return nil
}

// csrOffsetsMonotone reports whether offsets is nondecreasing.
//
//popcheck:kernel
func csrOffsetsMonotone(offsets []int32) bool {
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return false
		}
	}
	return true
}

// csrAdjOutOfRange returns the index of the first adjacency entry
// outside [0, n), or -1.
//
//popcheck:kernel
func csrAdjOutOfRange(adj []int32, n int32) int {
	for i, v := range adj {
		if v < 0 || v >= n {
			return i
		}
	}
	return -1
}

// csrEdgesUnsorted returns the index of the first packed edge that is
// not strictly greater than its predecessor or whose endpoints are not
// 0 <= u < w < n, or -1. Strict ascent of the packed encoding implies
// sortedness and no duplicates in one comparison per edge.
//
//popcheck:kernel
func csrEdgesUnsorted(packed []int64, n int) int {
	prev := int64(-1)
	for i, e := range packed {
		u, w := e>>32, e&0xffffffff
		if e <= prev || u < 0 || u >= w || w >= int64(n) {
			return i
		}
		prev = e
	}
	return -1
}

// csrAdjMatchesEdges replays the cursor fill newDenseUnchecked uses to
// derive adjacency from the sorted packed edge list, comparing against
// adj entry by entry; it returns the index of the first disagreeing
// edge, or -1. cursor must be a copy of offsets[:n]; on success every
// cursor lands on its node's end offset, which the caller checks to
// close the degree accounting.
//
//popcheck:kernel
func csrAdjMatchesEdges(offsets, adj, cursor []int32, packed []int64) int {
	for i, e := range packed {
		u, w := int32(e>>32), int32(e&0xffffffff)
		cu, cw := cursor[u], cursor[w]
		if cu >= offsets[u+1] || adj[cu] != w || cw >= offsets[w+1] || adj[cw] != u {
			return i
		}
		cursor[u] = cu + 1
		cursor[w] = cw + 1
	}
	return -1
}

// CSR exposes the graph's offset and adjacency arrays — together with
// PackedEdges, the complete serializable representation NewDenseFromCSR
// rebuilds from. Callers must treat both as read-only.
func (g *Dense) CSR() (offsets, adj []int32) { return g.offsets, g.adj }

// SetAux attaches an auxiliary artifact to the graph — the seam loaders
// use to carry prebuilt companion data (a decoded snapshot with alias
// tables and compiled transition tables) alongside the graph without
// the graph package knowing the concrete type. One value; a second call
// replaces the first.
func (g *Dense) SetAux(v any) { g.aux = v }

// Aux returns the artifact attached by SetAux, or nil.
func (g *Dense) Aux() any { return g.aux }

// newDenseUnchecked builds the CSR structures from a deduplicated,
// normalized (u < w) packed edge list. Callers guarantee validity.
func newDenseUnchecked(n int, packed []int64, name string) *Dense {
	g := &Dense{
		n:       n,
		offsets: make([]int32, n+1),
		adj:     make([]int32, 2*len(packed)),
		edges:   packed,
		name:    name,
		diam:    -1,
	}
	deg := make([]int32, n)
	for _, e := range packed {
		deg[e>>32]++
		deg[e&0xffffffff]++
	}
	for v := 0; v < n; v++ {
		g.offsets[v+1] = g.offsets[v] + deg[v]
	}
	cursor := make([]int32, n)
	copy(cursor, g.offsets[:n])
	for _, e := range packed {
		u, w := int32(e>>32), int32(e&0xffffffff)
		g.adj[cursor[u]] = w
		cursor[u]++
		g.adj[cursor[w]] = u
		cursor[w]++
	}
	return g
}

// N returns the number of nodes.
func (g *Dense) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Dense) M() int { return len(g.edges) }

// Degree returns the degree of v.
func (g *Dense) Degree(v int) int { return int(g.offsets[v+1] - g.offsets[v]) }

// NeighborAt returns the i-th neighbour of v.
func (g *Dense) NeighborAt(v, i int) int { return int(g.adj[int(g.offsets[v])+i]) }

// Neighbors returns a read-only view of v's neighbours.
func (g *Dense) Neighbors(v int) []int32 { return g.adj[g.offsets[v]:g.offsets[v+1]] }

// ForEachEdge calls fn once per undirected edge with u < w.
func (g *Dense) ForEachEdge(fn func(u, w int)) {
	for _, e := range g.edges {
		fn(int(e>>32), int(e&0xffffffff))
	}
}

// SampleEdge returns a uniform ordered pair of adjacent nodes.
func (g *Dense) SampleEdge(r *xrand.Rand) (int, int) {
	return g.OrderedPair(r.Uintn(uint64(2 * len(g.edges))))
}

// OrderedPair maps t, uniform in [0, 2·M()), to the ordered adjacent pair
// SampleEdge would return for that draw: undirected edge t>>1, reversed
// when t is odd. The simulator's specialized hot loop reduces its own
// randomness and calls this directly, bypassing the EdgeSampler interface.
func (g *Dense) OrderedPair(t uint64) (int, int) {
	e := g.edges[t>>1]
	u, w := int(e>>32), int(e&0xffffffff)
	if t&1 == 1 {
		return w, u
	}
	return u, w
}

// PackedEdges returns the graph's edge list as packed uint64 values
// u<<32|w with u < w, sorted ascending — the raw array OrderedPair
// indexes. Callers must treat it as read-only; the simulator hot loop
// uses it to unpack pairs branch-free without a method call per step.
func (g *Dense) PackedEdges() []int64 { return g.edges }

// Name returns the graph's description.
func (g *Dense) Name() string { return g.name }

// KnownDiameter returns the analytically known diameter, or -1.
func (g *Dense) KnownDiameter() int { return g.diam }

// setDiam is used by generators whose diameter is known in closed form.
func (g *Dense) setDiam(d int) *Dense { g.diam = d; return g }

// Clique is an implicit complete graph on n >= 2 nodes. It avoids
// materializing the Θ(n²) edge list, so million-edge cliques stay cheap.
type Clique struct {
	n int
}

var _ Graph = Clique{}
var _ DiameterKnower = Clique{}

// NewClique returns the complete graph K_n. It panics if n < 2.
func NewClique(n int) Clique {
	if n < 2 {
		panic(fmt.Sprintf("graph: clique needs n >= 2, got %d", n))
	}
	return Clique{n: n}
}

// N returns the number of nodes.
func (c Clique) N() int { return c.n }

// M returns n(n-1)/2.
func (c Clique) M() int { return c.n * (c.n - 1) / 2 }

// Degree returns n-1 for every node.
func (c Clique) Degree(int) int { return c.n - 1 }

// NeighborAt enumerates all nodes except v.
func (c Clique) NeighborAt(v, i int) int {
	if i >= v {
		return i + 1
	}
	return i
}

// ForEachEdge enumerates all pairs u < w.
func (c Clique) ForEachEdge(fn func(u, w int)) {
	for u := 0; u < c.n; u++ {
		for w := u + 1; w < c.n; w++ {
			fn(u, w)
		}
	}
}

// SampleEdge returns a uniform ordered pair of distinct nodes.
func (c Clique) SampleEdge(r *xrand.Rand) (int, int) {
	u := r.Intn(c.n)
	w := r.Intn(c.n - 1)
	if w >= u {
		w++
	}
	return u, w
}

// Name returns "clique-n".
func (c Clique) Name() string { return fmt.Sprintf("clique-%d", c.n) }

// KnownDiameter returns 1.
func (c Clique) KnownDiameter() int { return 1 }
