package graph

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"popgraph/internal/xrand"
)

// checkInvariants validates the structural invariants every Graph must
// satisfy: consistent degrees, symmetric adjacency, edge count, simplicity.
func checkInvariants(t *testing.T, g Graph) {
	t.Helper()
	n, m := g.N(), g.M()
	if n <= 0 {
		t.Fatalf("%s: nonpositive n", g.Name())
	}
	degSum := 0
	for v := 0; v < n; v++ {
		degSum += g.Degree(v)
	}
	if degSum != 2*m {
		t.Fatalf("%s: degree sum %d != 2m = %d", g.Name(), degSum, 2*m)
	}
	// Adjacency symmetry + no self loops + no duplicate neighbours.
	type key struct{ u, w int }
	seen := make(map[key]bool, 2*m)
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		local := make(map[int]bool, deg)
		for i := 0; i < deg; i++ {
			w := g.NeighborAt(v, i)
			if w == v {
				t.Fatalf("%s: self loop at %d", g.Name(), v)
			}
			if w < 0 || w >= n {
				t.Fatalf("%s: neighbour %d of %d out of range", g.Name(), w, v)
			}
			if local[w] {
				t.Fatalf("%s: duplicate neighbour %d of %d", g.Name(), w, v)
			}
			local[w] = true
			seen[key{v, w}] = true
		}
	}
	for k := range seen {
		if !seen[key{k.w, k.u}] {
			t.Fatalf("%s: asymmetric adjacency %v", g.Name(), k)
		}
	}
	// ForEachEdge agrees with adjacency.
	count := 0
	g.ForEachEdge(func(u, w int) {
		if u >= w {
			t.Fatalf("%s: ForEachEdge gave u >= w: (%d,%d)", g.Name(), u, w)
		}
		if !seen[key{u, w}] || !seen[key{w, u}] {
			t.Fatalf("%s: ForEachEdge edge (%d,%d) not in adjacency", g.Name(), u, w)
		}
		count++
	})
	if count != m {
		t.Fatalf("%s: ForEachEdge yielded %d edges, M() = %d", g.Name(), count, m)
	}
	if !Connected(g) {
		t.Fatalf("%s: not connected", g.Name())
	}
}

func TestNewDenseValidation(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
		err   error
	}{
		{"self-loop", 3, []Edge{{0, 0}, {0, 1}, {1, 2}}, ErrInvalidEdge},
		{"out-of-range", 3, []Edge{{0, 1}, {1, 3}}, ErrInvalidEdge},
		{"negative", 3, []Edge{{-1, 1}, {1, 2}}, ErrInvalidEdge},
		{"duplicate", 3, []Edge{{0, 1}, {1, 0}, {1, 2}}, ErrInvalidEdge},
		{"disconnected", 4, []Edge{{0, 1}, {2, 3}}, ErrDisconnected},
		{"zero-n", 0, nil, ErrInvalidEdge},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewDense(c.n, c.edges, c.name)
			if !errors.Is(err, c.err) {
				t.Fatalf("got %v, want %v", err, c.err)
			}
		})
	}
}

func TestNewDenseValid(t *testing.T) {
	g, err := NewDense(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, "square")
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, g)
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < 4; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("degree of %d is %d", v, g.Degree(v))
		}
	}
}

func TestGeneratorsInvariantsAndCounts(t *testing.T) {
	r := xrand.New(1)
	gnp, err := Gnp(60, 0.2, r)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := RandomRegular(50, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		g       Graph
		n, m, d int // expected; d = diameter, -1 to skip
	}{
		{NewClique(8), 8, 28, 1},
		{Cycle(9), 9, 9, 4},
		{Cycle(10), 10, 10, 5},
		{Path(7), 7, 6, 6},
		{Star(12), 12, 11, 2},
		{Star(2), 2, 1, 1},
		{CompleteBipartite(3, 4), 7, 12, 2},
		{Torus2D(4, 5), 20, 40, 4},
		{TorusK(4, 5), 20, 40, 4},
		{TorusK(3, 3, 3), 27, 81, 3},
		{TorusK(5), 5, 5, 2},
		{Grid2D(3, 4), 12, 17, 5},
		{Hypercube(4), 16, 32, 4},
		{BinaryTree(3), 15, 14, 6},
		{Lollipop(5, 3), 8, 13, 4},
		{Barbell(4, 2), 10, 15, 5},
		{gnp, 60, gnp.M(), -1},
		{reg, 50, 100, -1},
	}
	for _, c := range cases {
		t.Run(c.g.Name(), func(t *testing.T) {
			checkInvariants(t, c.g)
			if c.g.N() != c.n {
				t.Errorf("n = %d, want %d", c.g.N(), c.n)
			}
			if c.g.M() != c.m {
				t.Errorf("m = %d, want %d", c.g.M(), c.m)
			}
			if c.d >= 0 {
				if got := Diameter(c.g); got != c.d {
					t.Errorf("diameter = %d, want %d", got, c.d)
				}
				// Known diameters must match exact BFS computation.
				if got := diameterExact(c.g); got != c.d {
					t.Errorf("exact diameter = %d, want %d", got, c.d)
				}
			}
		})
	}
}

func TestWattsStrogatz(t *testing.T) {
	r := xrand.New(3)
	for _, beta := range []float64{0, 0.1, 1} {
		g, err := WattsStrogatz(40, 4, beta, r)
		if err != nil {
			t.Fatalf("beta %v: %v", beta, err)
		}
		checkInvariants(t, g)
		// Rewiring moves edges, never adds or removes: m = n·k/2 always.
		if g.N() != 40 || g.M() != 80 {
			t.Fatalf("beta %v: n=%d m=%d, want 40, 80", beta, g.N(), g.M())
		}
	}
	// beta = 0 is exactly the ring lattice: deterministic, diameter n/k·…
	// — node 0's neighbours are ±1, ±2 around the ring.
	g, err := WattsStrogatz(10, 4, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{1: true, 2: true, 8: true, 9: true}
	for i := 0; i < g.Degree(0); i++ {
		if !want[g.NeighborAt(0, i)] {
			t.Fatalf("lattice neighbour %d of node 0 unexpected", g.NeighborAt(0, i))
		}
	}
}

func TestWattsStrogatzValidation(t *testing.T) {
	r := xrand.New(1)
	cases := []struct {
		name string
		n, k int
		beta float64
	}{
		{"odd-k", 10, 3, 0.1},
		{"zero-k", 10, 0, 0.1},
		{"k-too-big", 8, 8, 0.1},
		{"tiny-n", 2, 2, 0.1},
		{"beta-negative", 10, 4, -0.1},
		{"beta-above-one", 10, 4, 1.5},
		{"beta-nan", 10, 4, math.NaN()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := WattsStrogatz(c.n, c.k, c.beta, r); !errors.Is(err, ErrInvalidEdge) {
				t.Fatalf("got %v, want ErrInvalidEdge", err)
			}
		})
	}
}

func TestWattsStrogatzDeterministic(t *testing.T) {
	build := func() *Dense {
		g, err := WattsStrogatz(30, 4, 0.3, xrand.New(9))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a.PackedEdges(), b.PackedEdges()) {
		t.Fatal("same seed produced different Watts–Strogatz graphs")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	r := xrand.New(4)
	g, err := BarabasiAlbert(50, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, g)
	// Seed clique on m+1 nodes plus m edges per later node.
	wantM := 3*4/2 + (50-4)*3
	if g.N() != 50 || g.M() != wantM {
		t.Fatalf("n=%d m=%d, want 50, %d", g.N(), g.M(), wantM)
	}
	// Preferential attachment produces hubs: the max degree must clearly
	// exceed the minimum possible degree m.
	if MaxDegree(g) < 3*3 {
		t.Fatalf("max degree %d suspiciously flat for preferential attachment", MaxDegree(g))
	}
	if MinDegree(g) < 3 {
		t.Fatalf("min degree %d below attachment count", MinDegree(g))
	}
	// m = n-1 edge case: every new node attaches to all predecessors.
	k, err := BarabasiAlbert(5, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	if k.M() != 10 {
		t.Fatalf("ba(5,4) m=%d, want complete graph's 10", k.M())
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	r := xrand.New(1)
	for _, c := range [][2]int{{10, 0}, {5, 5}, {5, 6}, {1, 1}} {
		if _, err := BarabasiAlbert(c[0], c[1], r); !errors.Is(err, ErrInvalidEdge) {
			t.Fatalf("BarabasiAlbert(%d, %d): got %v, want ErrInvalidEdge", c[0], c[1], err)
		}
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	build := func() *Dense {
		g, err := BarabasiAlbert(40, 2, xrand.New(17))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a.PackedEdges(), b.PackedEdges()) {
		t.Fatal("same seed produced different Barabási–Albert graphs")
	}
}

func TestTorusKMatchesTorus2D(t *testing.T) {
	// Same node indexing (row-major), so the edge sets must coincide.
	a, b := Torus2D(4, 6), TorusK(4, 6)
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", a.N(), a.M(), b.N(), b.M())
	}
	type key struct{ u, w int }
	edges := map[key]bool{}
	a.ForEachEdge(func(u, w int) { edges[key{u, w}] = true })
	b.ForEachEdge(func(u, w int) {
		if !edges[key{u, w}] {
			t.Fatalf("TorusK edge (%d,%d) not in Torus2D", u, w)
		}
	})
}

func TestTorusKRegularity(t *testing.T) {
	g := TorusK(4, 4, 4)
	if !IsRegular(g) || g.Degree(0) != 6 {
		t.Fatalf("3-d torus must be 6-regular, degree(0) = %d", g.Degree(0))
	}
	checkInvariants(t, g)
}

func TestTorusKValidation(t *testing.T) {
	for _, f := range []func(){
		func() { TorusK() },
		func() { TorusK(2, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRandomRegularDegrees(t *testing.T) {
	r := xrand.New(7)
	for _, c := range []struct{ n, d int }{{20, 3}, {40, 4}, {30, 6}, {64, 8}} {
		if c.n*c.d%2 != 0 {
			continue
		}
		g, err := RandomRegular(c.n, c.d, r)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", c.n, c.d, err)
		}
		for v := 0; v < c.n; v++ {
			if g.Degree(v) != c.d {
				t.Fatalf("RandomRegular(%d,%d): degree(%d) = %d", c.n, c.d, v, g.Degree(v))
			}
		}
		if !IsRegular(g) {
			t.Fatalf("IsRegular false for regular graph")
		}
	}
}

func TestRandomRegularRejectsInvalid(t *testing.T) {
	r := xrand.New(1)
	for _, c := range []struct{ n, d int }{{10, 2}, {5, 5}, {7, 3}} {
		if _, err := RandomRegular(c.n, c.d, r); err == nil {
			t.Errorf("RandomRegular(%d,%d) should fail", c.n, c.d)
		}
	}
}

func TestGnpEdgeDensity(t *testing.T) {
	r := xrand.New(5)
	const n, p = 200, 0.1
	total := 0.0
	const trials = 20
	for i := 0; i < trials; i++ {
		g, err := Gnp(n, p, r)
		if err != nil {
			t.Fatal(err)
		}
		total += float64(g.M())
	}
	mean := total / trials
	want := p * float64(n) * float64(n-1) / 2
	if mean < 0.9*want || mean > 1.1*want {
		t.Fatalf("Gnp mean edges %v, want ~%v", mean, want)
	}
}

func TestUnrankPair(t *testing.T) {
	n := 6
	rank := int64(0)
	for u := 0; u < n; u++ {
		for w := u + 1; w < n; w++ {
			gu, gw := unrankPair(rank, n)
			if gu != u || gw != w {
				t.Fatalf("unrankPair(%d) = (%d,%d), want (%d,%d)", rank, gu, gw, u, w)
			}
			rank++
		}
	}
}

func TestSampleEdgeUniform(t *testing.T) {
	// On a path 0-1-2, ordered pairs are (0,1),(1,0),(1,2),(2,1) each w.p. 1/4.
	g := Path(3)
	r := xrand.New(3)
	counts := map[[2]int]int{}
	const trials = 40000
	for i := 0; i < trials; i++ {
		u, w := g.SampleEdge(r)
		counts[[2]int{u, w}]++
	}
	if len(counts) != 4 {
		t.Fatalf("expected 4 ordered pairs, got %v", counts)
	}
	for pair, c := range counts {
		if c < trials/4-600 || c > trials/4+600 {
			t.Errorf("pair %v count %d far from %d", pair, c, trials/4)
		}
	}
}

func TestCliqueSampleEdgeValid(t *testing.T) {
	g := NewClique(5)
	r := xrand.New(9)
	for i := 0; i < 10000; i++ {
		u, w := g.SampleEdge(r)
		if u == w || u < 0 || w < 0 || u >= 5 || w >= 5 {
			t.Fatalf("bad sample (%d,%d)", u, w)
		}
	}
}

func TestBFSDistancesOnCycle(t *testing.T) {
	g := Cycle(8)
	dist := BFSDistances(g, 0)
	want := []int32{0, 1, 2, 3, 4, 3, 2, 1}
	for v, d := range dist {
		if d != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, d, want[v])
		}
	}
}

func TestDegreeStats(t *testing.T) {
	g := Star(10)
	if MaxDegree(g) != 9 || MinDegree(g) != 1 {
		t.Fatalf("star degrees: max %d min %d", MaxDegree(g), MinDegree(g))
	}
	if IsRegular(g) {
		t.Fatal("star is not regular")
	}
	if !IsRegular(Cycle(5)) {
		t.Fatal("cycle is regular")
	}
}

func TestEdgeBoundaryAndCuts(t *testing.T) {
	g := Cycle(8)
	inS := make([]bool, 8)
	for v := 0; v < 4; v++ {
		inS[v] = true // contiguous arc: boundary 2
	}
	if b := EdgeBoundary(g, inS); b != 2 {
		t.Fatalf("boundary = %d, want 2", b)
	}
	if e := CutExpansion(g, inS); e != 0.5 {
		t.Fatalf("expansion = %v, want 0.5", e)
	}
	if vol := Volume(g, inS); vol != 8 {
		t.Fatalf("volume = %d, want 8", vol)
	}
	if c := CutConductance(g, inS); c != 0.25 {
		t.Fatalf("conductance = %v, want 0.25", c)
	}
	// Alternating set: every edge crosses.
	for v := range inS {
		inS[v] = v%2 == 0
	}
	if b := EdgeBoundary(g, inS); b != 8 {
		t.Fatalf("alternating boundary = %d, want 8", b)
	}
}

func TestBall(t *testing.T) {
	g := Path(10)
	in := Ball(g, []int{5}, 2)
	for v := 0; v < 10; v++ {
		want := v >= 3 && v <= 7
		if in[v] != want {
			t.Fatalf("ball membership of %d = %v, want %v", v, in[v], want)
		}
	}
	// Ball around a set.
	in = Ball(g, []int{0, 9}, 1)
	for v := 0; v < 10; v++ {
		want := v <= 1 || v >= 8
		if in[v] != want {
			t.Fatalf("set-ball membership of %d = %v", v, in[v])
		}
	}
}

func TestEccentricityAndDoubleSweep(t *testing.T) {
	g := Path(30)
	if e := Eccentricity(g, 0); e != 29 {
		t.Fatalf("ecc(0) = %d", e)
	}
	if e := Eccentricity(g, 15); e != 15 {
		t.Fatalf("ecc(15) = %d", e)
	}
	if d := diameterDoubleSweep(g); d != 29 {
		t.Fatalf("double sweep on path = %d, want 29", d)
	}
}

func TestDiameterKnownMatchesExact(t *testing.T) {
	// Torus diameters with odd dims exercise the floor arithmetic.
	for _, g := range []*Dense{Torus2D(3, 3), Torus2D(5, 7), Torus2D(6, 4)} {
		if got, want := g.KnownDiameter(), diameterExact(g); got != want {
			t.Errorf("%s: known %d != exact %d", g.Name(), got, want)
		}
	}
}

func TestSortPacked(t *testing.T) {
	r := xrand.New(11)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(500)
		a := make([]int64, n)
		for i := range a {
			a[i] = int64(r.Uint64() >> 1)
		}
		sortInt64s(a)
		for i := 1; i < len(a); i++ {
			if a[i-1] > a[i] {
				t.Fatalf("not sorted at %d", i)
			}
		}
	}
}

func BenchmarkSampleEdgeDense(b *testing.B) {
	g := Cycle(1 << 12)
	r := xrand.New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		u, w := g.SampleEdge(r)
		sink += u + w
	}
	_ = sink
}

func BenchmarkSampleEdgeClique(b *testing.B) {
	g := NewClique(1 << 12)
	r := xrand.New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		u, w := g.SampleEdge(r)
		sink += u + w
	}
	_ = sink
}

func BenchmarkBFS(b *testing.B) {
	g := Torus2D(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFSDistances(g, i%g.N())
	}
}

// TestNewDenseFromCSR checks the snapshot revival constructor: a valid
// CSR round-trips into a graph identical to the NewDense original, and
// every class of inconsistent input is rejected.
func TestNewDenseFromCSR(t *testing.T) {
	orig := Torus2D(3, 4)
	offsets, adj := orig.CSR()
	packed := orig.PackedEdges()
	clone := func() (o, a []int32, p []int64) {
		return append([]int32(nil), offsets...),
			append([]int32(nil), adj...),
			append([]int64(nil), packed...)
	}

	o, a, p := clone()
	g, err := NewDenseFromCSR(orig.N(), o, a, p, orig.Name(), orig.KnownDiameter())
	if err != nil {
		t.Fatalf("NewDenseFromCSR: %v", err)
	}
	if g.N() != orig.N() || g.M() != orig.M() || g.KnownDiameter() != orig.KnownDiameter() {
		t.Fatalf("revived graph n=%d m=%d diam=%d, want %d/%d/%d",
			g.N(), g.M(), g.KnownDiameter(), orig.N(), orig.M(), orig.KnownDiameter())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != orig.Degree(v) {
			t.Fatalf("degree(%d) = %d, want %d", v, g.Degree(v), orig.Degree(v))
		}
		if !reflect.DeepEqual(g.Neighbors(v), orig.Neighbors(v)) {
			t.Fatalf("neighbors(%d) differ", v)
		}
	}

	reject := func(name string, n int, o, a []int32, p []int64, diam int) {
		t.Helper()
		if _, err := NewDenseFromCSR(n, o, a, p, "bad", diam); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	reject("zero nodes", 0, []int32{0}, nil, nil, -1)
	o, a, p = clone()
	reject("offsets length", orig.N(), o[:len(o)-1], a, p, -1)
	o, a, p = clone()
	o[3]++
	reject("offsets vs adjacency length", orig.N(), o, a, p, -1)
	o, a, p = clone()
	o[3], o[4] = o[4], o[3]
	reject("nonmonotone offsets", orig.N(), o, a, p, -1)
	o, a, p = clone()
	a[0] = int32(orig.N())
	reject("adjacency out of range", orig.N(), o, a, p, -1)
	o, a, p = clone()
	p[0], p[1] = p[1], p[0]
	reject("unsorted edges", orig.N(), o, a, p, -1)
	o, a, p = clone()
	p[0] = p[1]
	reject("duplicate edge", orig.N(), o, a, p, -1)
	o, a, p = clone()
	p[len(p)-1] = int64(orig.N()-1)<<32 | int64(orig.N()-1)
	reject("self-loop", orig.N(), o, a, p, -1)
	o, a, p = clone()
	reject("diameter out of range", orig.N(), o, a, p, orig.N())
	o, a, p = clone()
	reject("diameter below -1", orig.N(), o, a, p, -2)

	// Degrees cross-check: a permuted adjacency that keeps every entry
	// in range but disagrees with the packed edge list must be caught.
	o, a, p = clone()
	a[0], a[1] = a[1], a[0]
	if _, err := NewDenseFromCSR(orig.N(), o, a, p, "bad", -1); err == nil {
		t.Fatalf("swapped adjacency entries accepted")
	}
}
