package graph

// This file provides structural properties: BFS distances, diameter,
// degree statistics, connectivity, and cut/boundary quantities used by the
// expansion estimates and the renitent-cover machinery.

// BFSDistances returns the hop distance from src to every node (-1 for
// unreachable nodes, which cannot occur on the connected graphs produced
// by this package's constructors).
func BFSDistances(g Graph, src int) []int32 {
	n := g.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, n)
	dist[src] = 0
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		v := int(queue[head])
		dv := dist[v]
		deg := g.Degree(v)
		for i := 0; i < deg; i++ {
			w := g.NeighborAt(v, i)
			if dist[w] < 0 {
				dist[w] = dv + 1
				queue = append(queue, int32(w))
			}
		}
	}
	return dist
}

// connected reports whether g is connected (internal; constructors enforce it).
func connected(g Graph) bool {
	if g.N() == 0 {
		return false
	}
	dist := BFSDistances(g, 0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Connected reports whether g is connected.
func Connected(g Graph) bool { return connected(g) }

// Eccentricity returns max_v dist(src, v).
func Eccentricity(g Graph, src int) int {
	var ecc int32
	for _, d := range BFSDistances(g, src) {
		if d > ecc {
			ecc = d
		}
	}
	return int(ecc)
}

// Diameter returns the diameter of g. If the graph knows its diameter
// analytically (DiameterKnower) that value is returned. Otherwise, for
// graphs with up to exactCap nodes an exact all-sources BFS is run; above
// that a lower bound from repeated double sweeps is returned (exact on
// trees and usually exact in practice).
func Diameter(g Graph) int {
	if k, ok := g.(DiameterKnower); ok {
		if d := k.KnownDiameter(); d >= 0 {
			return d
		}
	}
	const exactCap = 2048
	if g.N() <= exactCap {
		return diameterExact(g)
	}
	return diameterDoubleSweep(g)
}

func diameterExact(g Graph) int {
	best := 0
	for v := 0; v < g.N(); v++ {
		if e := Eccentricity(g, v); e > best {
			best = e
		}
	}
	return best
}

// diameterDoubleSweep runs a few BFS double sweeps: BFS from an arbitrary
// node, then from the farthest node found, keeping the maximum
// eccentricity seen. This is a lower bound on the true diameter.
func diameterDoubleSweep(g Graph) int {
	src, best := 0, 0
	for sweep := 0; sweep < 4; sweep++ {
		dist := BFSDistances(g, src)
		far, fd := src, int32(0)
		for v, d := range dist {
			if d > fd {
				far, fd = v, d
			}
		}
		if int(fd) > best {
			best = int(fd)
		}
		src = far
	}
	return best
}

// MaxDegree returns Δ(g).
func MaxDegree(g Graph) int {
	best := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > best {
			best = d
		}
	}
	return best
}

// MinDegree returns δ(g).
func MinDegree(g Graph) int {
	best := g.Degree(0)
	for v := 1; v < g.N(); v++ {
		if d := g.Degree(v); d < best {
			best = d
		}
	}
	return best
}

// IsRegular reports whether every node has the same degree.
func IsRegular(g Graph) bool {
	d0 := g.Degree(0)
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) != d0 {
			return false
		}
	}
	return true
}

// EdgeBoundary returns |∂S|: the number of edges with exactly one endpoint
// in the set S (given as a membership mask of length N()).
func EdgeBoundary(g Graph, inS []bool) int {
	count := 0
	g.ForEachEdge(func(u, w int) {
		if inS[u] != inS[w] {
			count++
		}
	})
	return count
}

// Volume returns the sum of degrees of the nodes in S.
func Volume(g Graph, inS []bool) int {
	vol := 0
	for v, in := range inS {
		if in {
			vol += g.Degree(v)
		}
	}
	return vol
}

// CutExpansion returns |∂S| / min(|S|, n-|S|) for the cut S, the quantity
// minimized by the edge expansion β(G). Returns +Inf-like large value
// (encoded as -1) if one side is empty.
func CutExpansion(g Graph, inS []bool) float64 {
	size := 0
	for _, in := range inS {
		if in {
			size++
		}
	}
	small := size
	if other := g.N() - size; other < small {
		small = other
	}
	if small == 0 {
		return -1
	}
	return float64(EdgeBoundary(g, inS)) / float64(small)
}

// CutConductance returns |∂S| / min(vol(S), vol(V\S)) for the cut S, the
// quantity minimized by the conductance ϕ(G). Returns -1 on empty sides.
func CutConductance(g Graph, inS []bool) float64 {
	volS := Volume(g, inS)
	volT := 2*g.M() - volS
	small := volS
	if volT < small {
		small = volT
	}
	if small == 0 {
		return -1
	}
	return float64(EdgeBoundary(g, inS)) / float64(small)
}

// Ball returns the radius-r ball B_r(U) around the node set U as a mask.
func Ball(g Graph, nodes []int, radius int) []bool {
	n := g.N()
	in := make([]bool, n)
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, n)
	for _, v := range nodes {
		if dist[v] < 0 {
			dist[v] = 0
			in[v] = true
			queue = append(queue, int32(v))
		}
	}
	for head := 0; head < len(queue); head++ {
		v := int(queue[head])
		if int(dist[v]) >= radius {
			continue
		}
		deg := g.Degree(v)
		for i := 0; i < deg; i++ {
			w := g.NeighborAt(v, i)
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				in[w] = true
				queue = append(queue, int32(w))
			}
		}
	}
	return in
}
