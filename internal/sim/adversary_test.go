package sim_test

// Stability in the paper is universally quantified: once a configuration
// is stable, NO schedule — not just the stochastic one — may change any
// output. These tests stabilize each protocol under the random scheduler
// and then attack the configuration with deterministic adversarial
// schedules: all ordered pairs in lexicographic order, in reverse, and
// repeated hammering of the leader's incident edges.

import (
	"testing"

	"popgraph/internal/core"
	"popgraph/internal/epidemic"
	"popgraph/internal/graph"
	"popgraph/internal/protocols/beauquier"
	"popgraph/internal/protocols/fastelect"
	"popgraph/internal/protocols/idelect"
	"popgraph/internal/sim"
	"popgraph/internal/xrand"
)

// adversarialSchedules returns several deterministic interaction
// sequences covering every ordered pair of g repeatedly.
func adversarialSchedules(g graph.Graph, leader int) [][][2]int {
	var forward, backward, hammer [][2]int
	g.ForEachEdge(func(u, w int) {
		forward = append(forward, [2]int{u, w}, [2]int{w, u})
		if u == leader || w == leader {
			for i := 0; i < 8; i++ {
				hammer = append(hammer, [2]int{u, w}, [2]int{w, u})
			}
		}
	})
	for i := len(forward) - 1; i >= 0; i-- {
		backward = append(backward, forward[i])
	}
	triple := append(append(append([][2]int{}, forward...), forward...), forward...)
	return [][][2]int{triple, backward, hammer}
}

func attack(t *testing.T, g graph.Graph, p sim.Protocol, leader int) {
	t.Helper()
	outputs := make([]core.Role, g.N())
	for v := range outputs {
		outputs[v] = p.Output(v)
	}
	for si, sched := range adversarialSchedules(g, leader) {
		for step, pair := range sched {
			p.Step(pair[0], pair[1])
			if !p.Stable() {
				t.Fatalf("schedule %d step %d: stability lost", si, step)
			}
		}
		for v := range outputs {
			if p.Output(v) != outputs[v] {
				t.Fatalf("schedule %d: output of node %d changed", si, v)
			}
		}
	}
}

func protocolsUnderTest(g graph.Graph, r *xrand.Rand) []sim.Protocol {
	b := epidemic.EstimateB(g, r, epidemic.Options{Sources: 2, Trials: 3})
	return []sim.Protocol{
		beauquier.New(),
		idelect.New(),
		fastelect.New(fastelect.TunedParams(g, b)),
		// Tiny level cap to force the backup path under attack as well.
		fastelect.New(fastelect.Params{H: 1, L: 2, AlphaL: 3}),
	}
}

func TestStabilityUnderAdversarialSchedules(t *testing.T) {
	graphs := []graph.Graph{
		graph.NewClique(10),
		graph.Cycle(12),
		graph.Star(10),
		graph.Torus2D(3, 4),
		graph.Lollipop(5, 4),
	}
	for _, g := range graphs {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			r := xrand.New(77)
			for _, p := range protocolsUnderTest(g, r) {
				res := sim.Run(g, p, r, sim.Options{})
				if !res.Stabilized {
					t.Fatalf("%s did not stabilize", p.Name())
				}
				attack(t, g, p, res.Leader)
			}
		})
	}
}
