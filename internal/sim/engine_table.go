// Protocol-fused chunk kernels. The kernels in engine.go removed the
// interface dispatch from the *sampling* side of the hot loop; the ones
// here remove it from the *protocol* side as well. For a Tabular
// protocol the whole transition function is a compiled
// core.TransitionTable, so an interaction becomes two byte loads, one
// L1-resident table lookup, two byte stores and a counter-delta add —
// no Protocol.Step call, and Stable() collapses to comparing the
// incrementally maintained stability gap against zero. One fused kernel
// exists per specialized scheduler kernel (dense-uniform, clique-
// uniform, weighted, node-clock) × table; the sampling halves mirror
// their engine.go siblings draw for draw.
//
// Determinism contract, extended to the protocol axis: fusing consumes
// no randomness — the table replays exactly the state updates Step
// would make — so a fused run produces byte-identical Results, observer
// sequences and post-run generator state as the same configuration with
// Options.NoTable (interface dispatch on the same scheduler kernel) and
// as the generic reference loop. The fused kernels mutate the
// protocol's state array in place (Tabular.TableStates aliases it), so
// per-node accessors stay live mid-run; protocol-internal *counters*
// are reconciled by kernel.sync — which the plan invokes before every
// observer callback and at the end of the run — via
// Tabular.ReloadCounters.

package sim

import (
	"math/bits"

	"popgraph/internal/core"
	"popgraph/internal/graph"
	"popgraph/internal/xrand"
)

// tableMachine is the per-run protocol half shared by every fused
// kernel: the packed transition cells, the live state array (aliasing
// the protocol's own storage) and the two incrementally maintained
// counters. Kernels hoist its fields into locals for the duration of a
// chunk and store the counters back on exit.
type tableMachine struct {
	p       Tabular
	cells   []uint32
	states  []uint8
	k       uint32
	leaders int
	gap     int // Σ gapWeight(state) − target; stable iff 0
}

// newTableMachine captures the protocol's compiled table and live state
// after Reset, computing the initial counters by full scan.
func newTableMachine(p Tabular) tableMachine {
	tab := p.Table()
	states := p.TableStates()
	leaders, gap := tab.Counters(states)
	return tableMachine{
		p:       p,
		cells:   tab.Cells(),
		states:  states,
		k:       uint32(tab.K()),
		leaders: leaders,
		gap:     gap,
	}
}

// sync implements the kernel sync hook: hand the maintained counters
// back to the protocol so Leaders/Stable/etc. are accurate at observer
// callbacks and after the run.
func (tm *tableMachine) sync() { tm.p.ReloadCounters(tm.leaders, tm.gap) }

// The fused inner step, written out in each kernel loop (a shared
// method would defeat the point). For initiator u and responder v:
//
//	idx := uint32(states[u])*k + uint32(states[v])
//	c := cells[idx]
//	states[u], states[v] = uint8(c>>8), uint8(c)
//	leaders += int(c>>16&0xff) - core.TableDeltaBias
//	gap += int(c>>24) - core.TableDeltaBias
//
// mirroring core.TransitionTable.Apply byte for byte.

// denseTableKernel fuses the dense-uniform sampling loop of denseKernel
// with a transition table.
type denseTableKernel struct {
	blk    rngBlock
	edges  []int64
	twoM   uint64
	thresh uint64
	drop   float64
	drops  int64
	tm     tableMachine
}

func newDenseTableKernel(g *graph.Dense, drop float64, p Tabular) *denseTableKernel {
	twoM := uint64(2 * g.M())
	return &denseTableKernel{
		blk:    newRngBlock(),
		edges:  g.PackedEdges(),
		twoM:   twoM,
		thresh: -twoM % twoM,
		drop:   drop,
		tm:     newTableMachine(p),
	}
}

//popcheck:kernel
func (kn *denseTableKernel) run(_ Protocol, r *xrand.Rand, _, k int64) (int64, bool) {
	blk := &kn.blk
	tm := &kn.tm
	states, cells, kk := tm.states, tm.cells, tm.k
	leaders, gap := tm.leaders, tm.gap
	for i := int64(1); i <= k; i++ {
		hi, lo := bits.Mul64(blk.next(r), kn.twoM)
		for lo < kn.thresh {
			hi, lo = bits.Mul64(blk.next(r), kn.twoM)
		}
		if kn.drop == 0 || xrand.Float64From(blk.next(r)) >= kn.drop {
			e := uint64(kn.edges[hi>>1])
			eu, ew := e>>32, e&0xffffffff
			swap := (eu ^ ew) & -(hi & 1)
			u, v := int(eu^swap), int(ew^swap)
			c := cells[uint32(states[u])*kk+uint32(states[v])]
			states[u], states[v] = uint8(c>>8), uint8(c)
			leaders += int(c>>16&0xff) - core.TableDeltaBias
			gap += int(c>>24) - core.TableDeltaBias
		} else {
			kn.drops++
		}
		if gap == 0 {
			tm.leaders, tm.gap = leaders, gap
			return i, true
		}
	}
	tm.leaders, tm.gap = leaders, gap
	return k, false
}

func (kn *denseTableKernel) finish(r *xrand.Rand)  { kn.blk.finish(r) }
func (kn *denseTableKernel) sync()                 { kn.tm.sync() }
func (kn *denseTableKernel) stats() (int64, int64) { return kn.blk.refills, kn.drops }

// cliqueTableKernel fuses cliqueKernel's two-draw pair construction
// with a transition table.
type cliqueTableKernel struct {
	blk      rngBlock
	n, n1    uint64
	threshN  uint64
	threshN1 uint64
	drop     float64
	drops    int64
	tm       tableMachine
}

func newCliqueTableKernel(g graph.Clique, drop float64, p Tabular) *cliqueTableKernel {
	n := uint64(g.N())
	n1 := n - 1
	return &cliqueTableKernel{
		blk:      newRngBlock(),
		n:        n,
		n1:       n1,
		threshN:  -n % n,
		threshN1: -n1 % n1,
		drop:     drop,
		tm:       newTableMachine(p),
	}
}

//popcheck:kernel
func (kn *cliqueTableKernel) run(_ Protocol, r *xrand.Rand, _, k int64) (int64, bool) {
	blk := &kn.blk
	tm := &kn.tm
	states, cells, kk := tm.states, tm.cells, tm.k
	leaders, gap := tm.leaders, tm.gap
	for i := int64(1); i <= k; i++ {
		hi, lo := bits.Mul64(blk.next(r), kn.n)
		for lo < kn.threshN {
			hi, lo = bits.Mul64(blk.next(r), kn.n)
		}
		u := int(hi)
		hi, lo = bits.Mul64(blk.next(r), kn.n1)
		for lo < kn.threshN1 {
			hi, lo = bits.Mul64(blk.next(r), kn.n1)
		}
		v := int(hi)
		if v >= u {
			v++
		}
		if kn.drop == 0 || xrand.Float64From(blk.next(r)) >= kn.drop {
			c := cells[uint32(states[u])*kk+uint32(states[v])]
			states[u], states[v] = uint8(c>>8), uint8(c)
			leaders += int(c>>16&0xff) - core.TableDeltaBias
			gap += int(c>>24) - core.TableDeltaBias
		} else {
			kn.drops++
		}
		if gap == 0 {
			tm.leaders, tm.gap = leaders, gap
			return i, true
		}
	}
	tm.leaders, tm.gap = leaders, gap
	return k, false
}

func (kn *cliqueTableKernel) finish(r *xrand.Rand)  { kn.blk.finish(r) }
func (kn *cliqueTableKernel) sync()                 { kn.tm.sync() }
func (kn *cliqueTableKernel) stats() (int64, int64) { return kn.blk.refills, kn.drops }

// weightedTableKernel fuses weightedKernel's alias-table edge draw with
// a transition table.
type weightedTableKernel struct {
	blk    rngBlock
	pairs  []int64
	prob   []float64
	alias  []int32
	m      uint64
	thresh uint64
	drop   float64
	drops  int64
	tm     tableMachine
}

func newWeightedTableKernel(s *Weighted, drop float64, p Tabular) *weightedTableKernel {
	prob, alias := s.alias.Table()
	m := uint64(len(prob))
	return &weightedTableKernel{
		blk:    newRngBlock(),
		pairs:  s.pairs,
		prob:   prob,
		alias:  alias,
		m:      m,
		thresh: -m % m,
		drop:   drop,
		tm:     newTableMachine(p),
	}
}

//popcheck:kernel
func (kn *weightedTableKernel) run(_ Protocol, r *xrand.Rand, _, k int64) (int64, bool) {
	blk := &kn.blk
	tm := &kn.tm
	states, cells, kk := tm.states, tm.cells, tm.k
	leaders, gap := tm.leaders, tm.gap
	for i := int64(1); i <= k; i++ {
		hi, lo := bits.Mul64(blk.next(r), kn.m)
		for lo < kn.thresh {
			hi, lo = bits.Mul64(blk.next(r), kn.m)
		}
		col := int(hi)
		if xrand.Float64From(blk.next(r)) >= kn.prob[col] {
			col = int(kn.alias[col])
		}
		e := kn.pairs[col]
		u, v := int(e>>32), int(e&0xffffffff)
		if blk.next(r)&1 == 1 {
			u, v = v, u
		}
		if kn.drop == 0 || xrand.Float64From(blk.next(r)) >= kn.drop {
			c := cells[uint32(states[u])*kk+uint32(states[v])]
			states[u], states[v] = uint8(c>>8), uint8(c)
			leaders += int(c>>16&0xff) - core.TableDeltaBias
			gap += int(c>>24) - core.TableDeltaBias
		} else {
			kn.drops++
		}
		if gap == 0 {
			tm.leaders, tm.gap = leaders, gap
			return i, true
		}
	}
	tm.leaders, tm.gap = leaders, gap
	return k, false
}

func (kn *weightedTableKernel) finish(r *xrand.Rand)  { kn.blk.finish(r) }
func (kn *weightedTableKernel) sync()                 { kn.tm.sync() }
func (kn *weightedTableKernel) stats() (int64, int64) { return kn.blk.refills, kn.drops }

// nodeClockTableKernel fuses nodeClockKernel's degree-proportional
// initiator draw with a transition table.
type nodeClockTableKernel struct {
	blk   rngBlock
	g     graph.Graph
	dense *graph.Dense
	prob  []float64
	alias []int32
	n     uint64
	tn    uint64
	drop  float64
	drops int64
	tm    tableMachine
}

func newNodeClockTableKernel(s *NodeClock, drop float64, p Tabular) *nodeClockTableKernel {
	prob, alias := s.alias.Table()
	n := uint64(len(prob))
	kn := &nodeClockTableKernel{
		blk:   newRngBlock(),
		g:     s.g,
		prob:  prob,
		alias: alias,
		n:     n,
		tn:    -n % n,
		drop:  drop,
		tm:    newTableMachine(p),
	}
	if dg, ok := s.g.(*graph.Dense); ok {
		kn.dense = dg
	}
	return kn
}

//popcheck:kernel
func (kn *nodeClockTableKernel) run(_ Protocol, r *xrand.Rand, _, k int64) (int64, bool) {
	blk := &kn.blk
	tm := &kn.tm
	states, cells, kk := tm.states, tm.cells, tm.k
	leaders, gap := tm.leaders, tm.gap
	for i := int64(1); i <= k; i++ {
		hi, lo := bits.Mul64(blk.next(r), kn.n)
		for lo < kn.tn {
			hi, lo = bits.Mul64(blk.next(r), kn.n)
		}
		col := int(hi)
		if xrand.Float64From(blk.next(r)) >= kn.prob[col] {
			col = int(kn.alias[col])
		}
		u := col
		var v int
		if kn.dense != nil {
			nb := kn.dense.Neighbors(u)
			v = int(nb[blk.uintn(r, uint64(len(nb)))])
		} else {
			v = kn.g.NeighborAt(u, int(blk.uintn(r, uint64(kn.g.Degree(u))))) //popcheck:ignore hotpath non-CSR fallback; dense path above covers built-in graphs
		}
		if kn.drop == 0 || xrand.Float64From(blk.next(r)) >= kn.drop {
			c := cells[uint32(states[u])*kk+uint32(states[v])]
			states[u], states[v] = uint8(c>>8), uint8(c)
			leaders += int(c>>16&0xff) - core.TableDeltaBias
			gap += int(c>>24) - core.TableDeltaBias
		} else {
			kn.drops++
		}
		if gap == 0 {
			tm.leaders, tm.gap = leaders, gap
			return i, true
		}
	}
	tm.leaders, tm.gap = leaders, gap
	return k, false
}

func (kn *nodeClockTableKernel) finish(r *xrand.Rand)  { kn.blk.finish(r) }
func (kn *nodeClockTableKernel) sync()                 { kn.tm.sync() }
func (kn *nodeClockTableKernel) stats() (int64, int64) { return kn.blk.refills, kn.drops }
