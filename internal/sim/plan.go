// Execution plans. Compile validates a run configuration once — graph
// size, drop rate, scheduler/graph binding — and selects the single
// fastest kernel (engine.go) for the scheduler × graph shape; ExecPlan
// then drives that kernel in bounded chunks, placing chunk boundaries
// exactly on observer ticks. One engine architecture serves every
// scenario: a weighted-scheduler run with failure injection and an
// attached observer executes the same monomorphized block-sampling loop
// as an uninstrumented one, just with shorter chunks.
//
// The chunk length is min(rngBlockSize, steps to the next observer
// boundary, steps to the cap). Kernels keep their block-prefetch state
// alive across chunks, so boundary placement never changes the random
// stream — only where control returns to the plan for the Observe
// callback and the stabilization exit.

package sim

import (
	"fmt"
	"math"

	"popgraph/internal/graph"
	"popgraph/internal/telemetry"
	"popgraph/internal/xrand"
)

// planMode identifies the kernel a plan compiled to.
type planMode uint8

const (
	// modeGeneric is the Source-driven reference loop: explicit samplers,
	// schedulers with per-run mutable state (churn), custom graph or
	// scheduler types, and anything forced by Options.Reference.
	modeGeneric planMode = iota
	modeDenseUniform
	modeCliqueUniform
	modeWeighted
	modeNodeClock
)

var planModeNames = [...]string{
	modeGeneric:       "generic",
	modeDenseUniform:  "dense-uniform",
	modeCliqueUniform: "clique-uniform",
	modeWeighted:      "weighted",
	modeNodeClock:     "node-clock",
}

// ExecPlan is a compiled run configuration: the validated (graph,
// scheduler, drop, observer, cap) tuple bound to the specialized kernel
// that will execute it. A plan is immutable and holds no per-run state —
// kernels are instantiated inside Run — so one plan may drive any number
// of runs, including concurrently, provided each run has its own
// Protocol and generator (as always) and the plan's Observer, which is
// shared across its runs, is nil or itself safe for concurrent use.
type ExecPlan struct {
	g         graph.Graph
	maxSteps  int64
	drop      float64
	observer  Observer
	every     int64
	mode      planMode
	noTable   bool        // Options.NoTable: force Step dispatch for Tabular protocols
	sched     Scheduler   // non-nil when a non-uniform scheduler drives the run
	sampler   EdgeSampler // non-nil when Options.Sampler overrode the pair stream
	weighted  *Weighted
	nodeClock *NodeClock
	meter     *telemetry.Counters // Options.Meter: nil disables run accounting
}

// Engine names the scheduler kernel the plan compiled to —
// "dense-uniform", "clique-uniform", "weighted", "node-clock" or
// "generic" — for benchmark reports and logs. The protocol axis is
// orthogonal: ProtocolEngine reports whether a given protocol fuses
// into the kernel's table variant.
func (pl *ExecPlan) Engine() string { return planModeNames[pl.mode] }

// ProtocolEngine reports the protocol dispatch a run of p on this plan
// selects: "table" when p is Tabular, provides a table, and the plan
// compiled to a specialized kernel (fused transition-table variant);
// "step" otherwise (Protocol.Step interface dispatch). Benchmark
// reports record it per cell.
func (pl *ExecPlan) ProtocolEngine(p Protocol) string {
	if pl.fusable(p) != nil {
		return "table"
	}
	return "step"
}

// fusable returns the Tabular view of p when this plan would fuse it
// into a table kernel, nil otherwise. Fusion needs a specialized
// scheduler kernel (the generic Source loop keeps interface dispatch),
// no NoTable override, and a protocol that actually produces a table
// for its current configuration.
func (pl *ExecPlan) fusable(p Protocol) Tabular {
	if pl.noTable || pl.mode == modeGeneric {
		return nil
	}
	tp, ok := p.(Tabular)
	if !ok || tp.Table() == nil {
		return nil
	}
	return tp
}

// MaxSteps returns the resolved step cap (Options.MaxSteps, or
// DefaultMaxSteps of the graph when that was zero).
func (pl *ExecPlan) MaxSteps() int64 { return pl.maxSteps }

// Compile validates opts against g and selects the execution kernel.
// All input checking lives here: Run-time panics on bad configurations
// are gone, callers that want errors use Compile or RunE, and the
// legacy Run wrapper panics with the error Compile returned.
func Compile(g graph.Graph, opts Options) (*ExecPlan, error) {
	if g == nil {
		return nil, fmt.Errorf("sim: nil graph")
	}
	if g.N() < 2 {
		return nil, fmt.Errorf("sim: graph %q too small (n=%d)", g.Name(), g.N())
	}
	if math.IsNaN(opts.DropRate) || opts.DropRate < 0 || opts.DropRate >= 1 {
		return nil, fmt.Errorf("sim: drop rate %v outside [0, 1)", opts.DropRate)
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps(g.N())
	}
	every := opts.ObserveEvery
	if every <= 0 {
		every = 1
	}
	pl := &ExecPlan{
		g:        g,
		maxSteps: maxSteps,
		drop:     opts.DropRate,
		observer: opts.Observer,
		every:    every,
		noTable:  opts.NoTable,
		meter:    opts.Meter,
	}
	// The uniform policy (nil or Uniform{}, graph-bound or not) is the
	// graph's own SampleEdge distribution.
	sched := opts.Scheduler
	switch sched.(type) {
	case Uniform, *Uniform:
		sched = nil
	}
	pl.sched = sched
	// Scheduler/graph binding is validated regardless of which kernel
	// ends up selected: a Reference-forced or Sampler-overridden run must
	// reject the same configurations the specialized kernels would.
	switch s := sched.(type) {
	case *Weighted:
		if s.alias.N() != g.M() {
			return nil, fmt.Errorf("sim: weighted scheduler %q is built for %d edges, graph %q has %d",
				s.Name(), s.alias.N(), g.Name(), g.M())
		}
	case *NodeClock:
		if s.alias.N() != g.N() {
			return nil, fmt.Errorf("sim: node-clock scheduler is built for %d nodes, graph %q has %d",
				s.alias.N(), g.Name(), g.N())
		}
	}
	switch {
	case opts.Sampler != nil:
		// An explicit pair stream always takes the reference kernel; it
		// overrides the scheduler, as it always has.
		pl.sampler = opts.Sampler
		pl.sched = nil
	case opts.Reference:
		// Forced reference loop: same stream, no specialization.
	default:
		switch s := sched.(type) {
		case *Weighted:
			pl.mode = modeWeighted
			pl.weighted = s
		case *NodeClock:
			pl.mode = modeNodeClock
			pl.nodeClock = s
		case nil:
			switch g.(type) {
			case *graph.Dense:
				pl.mode = modeDenseUniform
			case graph.Clique:
				pl.mode = modeCliqueUniform
			}
		}
	}
	return pl, nil
}

// newKernel instantiates the per-run chunk runner; r is available for
// scheduler Begin draws, mirroring the pre-plan Source construction
// point (after Protocol.Reset). p has been Reset, so a Tabular
// protocol's table and live state array are available; fused kernels
// are selected here (per run, not per plan) because the protocol axis
// is a Run argument, not a Compile one. The second return is the
// dispatch label the flight recorder tallies runs under:
// "<scheduler-engine>/<protocol-engine>", e.g. "dense-uniform/table".
func (pl *ExecPlan) newKernel(p Protocol, r *xrand.Rand) (kernel, string) {
	if tp := pl.fusable(p); tp != nil && len(tp.TableStates()) == pl.g.N() {
		label := planModeNames[pl.mode] + "/table"
		switch pl.mode {
		case modeDenseUniform:
			return newDenseTableKernel(pl.g.(*graph.Dense), pl.drop, tp), label
		case modeCliqueUniform:
			return newCliqueTableKernel(pl.g.(graph.Clique), pl.drop, tp), label
		case modeWeighted:
			return newWeightedTableKernel(pl.weighted, pl.drop, tp), label
		case modeNodeClock:
			return newNodeClockTableKernel(pl.nodeClock, pl.drop, tp), label
		}
	}
	label := planModeNames[pl.mode] + "/step"
	switch pl.mode {
	case modeDenseUniform:
		return newDenseKernel(pl.g.(*graph.Dense), pl.drop), label
	case modeCliqueUniform:
		return newCliqueKernel(pl.g.(graph.Clique), pl.drop), label
	case modeWeighted:
		return newWeightedKernel(pl.weighted, pl.drop), label
	case modeNodeClock:
		return newNodeClockKernel(pl.nodeClock, pl.drop), label
	}
	var src Source
	switch {
	case pl.sampler != nil:
		src = samplerSource{pl.sampler}
	case pl.sched != nil:
		src = pl.sched.Begin(r)
	default:
		src = samplerSource{pl.g}
	}
	return &sourceKernel{src: src, drop: pl.drop}, label
}

// Run resets p on the plan's graph and executes the compiled kernel in
// chunks until the protocol reports a stable configuration or the step
// cap is hit. Observer callbacks fire after the step closing each
// observer interval, including a stabilizing step that lands on a
// boundary — exactly the cadence of the step-at-a-time reference loop.
//
// Metering (Options.Meter) is pure bookkeeping on the control path:
// chunk and observer tallies live in locals, kernel counters in kernel
// fields, and everything is flushed to the meter in one batch per run,
// after the result is decided. A run that panics flushes nothing, so an
// aggregated meter counts exactly the steps of the runs that completed.
func (pl *ExecPlan) Run(p Protocol, r *xrand.Rand) Result {
	p.Reset(pl.g, r)
	if b, ok := pl.observer.(ProtocolBinder); ok {
		b.Bind(p)
	}
	return pl.runPrepared(p, r, pl.observer)
}

// runPrepared is the chunk loop on an already-Reset protocol, with the
// observer passed explicitly: Run hands it the plan's shared Observer,
// while RunBatch's fallback path hands each lane its own. Keeping Reset
// out means batch lanes can demote to this loop after their one Reset
// without perturbing the random stream.
func (pl *ExecPlan) runPrepared(p Protocol, r *xrand.Rand, observer Observer) Result {
	kern, label := pl.newKernel(p, r)
	var t, chunks, observes int64
	for t < pl.maxSteps {
		k := pl.maxSteps - t
		if k > rngBlockSize {
			k = rngBlockSize
		}
		if observer != nil {
			if toBoundary := pl.every - t%pl.every; toBoundary < k {
				k = toBoundary
			}
		}
		done, stabilized := kern.run(p, r, t, k)
		t += done
		chunks++
		if observer != nil && t%pl.every == 0 {
			// Fused kernels mutate protocol state behind Step's back;
			// reconcile counters so the observer sees live Leaders/Stable.
			kern.sync()
			observer.Observe(t)
			observes++
		}
		if stabilized {
			kern.finish(r)
			kern.sync()
			pl.flush(kern, observer, label, t, chunks, observes)
			return Result{Steps: t, Stabilized: true, Leader: FindLeader(pl.g, p)}
		}
	}
	kern.finish(r)
	kern.sync()
	pl.flush(kern, observer, label, t, chunks, observes)
	return Result{Steps: pl.maxSteps, Stabilized: false, Leader: -1}
}

// flush hands a completed run's accounting to the meter and closes any
// trajectory-style observer. Called after the kernel has rewound the
// generator and reconciled protocol counters, so finishers read exact
// terminal state; the Result the caller returns is already fixed, and
// nothing here touches r.
func (pl *ExecPlan) flush(kern kernel, observer Observer, label string, steps, chunks, observes int64) {
	if f, ok := observer.(RunFinisher); ok {
		f.Finish(steps)
	}
	if pl.meter != nil {
		refills, drops := kern.stats()
		pl.meter.AddRun(steps, chunks, refills, drops, observes, label)
	}
}
