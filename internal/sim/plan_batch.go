// Batch execution driver. RunBatch runs T replicate trials of one
// compiled plan in lockstep through the structure-of-arrays kernels in
// engine_batch.go, falling back to sequential solo runs when the
// configuration has no lockstep kernel. Either way every trial is
// byte-identical — Result, observer sequence, post-run generator state,
// telemetry step totals — to the solo run of the same (protocol,
// generator, observer) triple, so callers choose batch mode purely on
// throughput grounds.
//
// The window loop mirrors ExecPlan.Run exactly: window length is
// min(rngBlockSize, steps to the next observer boundary, steps to the
// cap), shared by all lanes because every lane of a batch runs the same
// plan (same cap, same observer cadence). A lane stabilizing mid-window
// retires immediately inside the kernel; the driver drains retirements
// after the window, firing the lane's boundary observation first when
// the stabilizing step landed exactly on an observer boundary — the
// same callback ordering as the solo loop, which only ever observes at
// window ends. Lanes are crash-isolated like runner trials: a panic in
// a lane's Reset, observer or finisher marks that lane crashed and the
// survivors keep running.

package sim

import (
	"fmt"

	"popgraph/internal/graph"
	"popgraph/internal/xrand"
)

// BatchResult is the outcome of one lane of a RunBatch: the solo-run
// Result plus the recovered panic message when the lane's protocol or
// observer crashed (empty on success). A crashed lane reports
// Result{Steps: 0, Stabilized: false, Leader: -1}, matching the outcome
// runner records for a crashed solo trial.
type BatchResult struct {
	Result
	Crashed string
}

// CompileBatch is Compile for callers that require the lockstep batch
// kernels: it compiles the plan and errors when the configuration can
// only execute batches as sequential solo runs, naming the reason.
// RunBatch itself works on any compiled plan (falling back silently);
// CompileBatch exists so benchmark and sweep fronts can report — or
// refuse — cells where -batch would buy nothing. The protocol axis is a
// Run argument, so a CompileBatch'd plan still falls back for
// non-Tabular protocols; BatchEngine reports that per protocol.
func CompileBatch(g graph.Graph, opts Options) (*ExecPlan, error) {
	pl, err := Compile(g, opts)
	if err != nil {
		return nil, err
	}
	if pl.noTable {
		return nil, fmt.Errorf("sim: NoTable forces interface dispatch; no lockstep batch kernel")
	}
	switch pl.mode {
	case modeDenseUniform, modeCliqueUniform, modeWeighted:
		return pl, nil
	case modeNodeClock:
		return nil, fmt.Errorf("sim: the node-clock scheduler has no lockstep batch kernel (its alias-plus-neighbor draw did not carry its weight batched); RunBatch falls back to sequential solo runs")
	default:
		return nil, fmt.Errorf("sim: plan compiled to the generic %q kernel; only specialized table kernels run batched", pl.Engine())
	}
}

// BatchEngine reports the execution a RunBatch of p on this plan
// selects: "lockstep" when batches of p run on the structure-of-arrays
// kernel, "solo" when they fall back to sequential solo runs (generic
// or node-clock plans, NoTable, non-Tabular protocols). Like
// ProtocolEngine it judges a fresh instance, before Reset.
func (pl *ExecPlan) BatchEngine(p Protocol) string {
	if pl.fusable(p) == nil {
		return "solo"
	}
	switch pl.mode {
	case modeDenseUniform, modeCliqueUniform, modeWeighted:
		return "lockstep"
	}
	return "solo"
}

// RunBatch resets every lane's protocol on the plan's graph and
// executes all lanes to stabilization or the step cap. ps[i], rs[i] and
// obs[i] are lane i's protocol instance, private generator and
// observer; obs may be nil to give every lane the plan's shared
// Observer (which must then tolerate interleaved callbacks from
// different lanes — per-lane observers are the norm). Lane i is
// byte-identical to pl.Run of the same triple; crashed lanes are
// reported in BatchResult.Crashed without disturbing the others.
func (pl *ExecPlan) RunBatch(ps []Protocol, rs []*xrand.Rand, obs []Observer) []BatchResult {
	if len(rs) != len(ps) || (obs != nil && len(obs) != len(ps)) {
		panic(fmt.Sprintf("sim: RunBatch slice lengths disagree (%d protocols, %d generators, %d observers)",
			len(ps), len(rs), len(obs)))
	}
	out := make([]BatchResult, len(ps))
	if len(ps) == 0 {
		return out
	}
	laneObs := make([]Observer, len(ps))
	for i := range laneObs {
		if obs != nil {
			laneObs[i] = obs[i]
		} else {
			laneObs[i] = pl.observer
		}
	}
	// Reset every lane first — each lane draws only from its own
	// generator, so reset order across lanes cannot perturb any stream.
	// A lane crashing at Reset (a protocol rejecting the graph) is
	// recorded and excluded from the roster.
	alive := make([]int32, 0, len(ps))
	for i := range ps {
		if msg := pl.resetLane(ps[i], rs[i], laneObs[i]); msg != "" {
			out[i] = BatchResult{Result: Result{Steps: 0, Stabilized: false, Leader: -1}, Crashed: msg}
		} else {
			alive = append(alive, int32(i))
		}
	}
	if len(alive) == 0 {
		return out
	}
	if kern := pl.newBatchKernel(ps, rs, alive); kern != nil {
		pl.runLockstep(kern, ps, laneObs, out)
		return out
	}
	// No lockstep kernel for this configuration: run each lane as the
	// solo loop would, with per-lane crash isolation. The lanes are
	// already Reset, so this goes through the shared post-Reset path.
	for _, l := range alive {
		pl.runSoloLane(ps[l], rs[l], laneObs[l], &out[l])
	}
	return out
}

// resetLane resets one lane's protocol and binds its observer,
// recovering a crash into the returned message.
func (pl *ExecPlan) resetLane(p Protocol, r *xrand.Rand, ob Observer) (msg string) {
	defer func() {
		if e := recover(); e != nil {
			msg = fmt.Sprint(e)
		}
	}()
	p.Reset(pl.g, r)
	if b, ok := ob.(ProtocolBinder); ok {
		b.Bind(p)
	}
	return ""
}

// runSoloLane is the fallback per-lane executor: the solo chunk loop on
// an already-Reset lane, with the lane's own observer and runner-style
// crash recovery.
func (pl *ExecPlan) runSoloLane(p Protocol, r *xrand.Rand, ob Observer, out *BatchResult) {
	defer func() {
		if e := recover(); e != nil {
			*out = BatchResult{Result: Result{Steps: 0, Stabilized: false, Leader: -1}, Crashed: fmt.Sprint(e)}
		}
	}()
	out.Result = pl.runPrepared(p, r, ob)
}

// newBatchKernel instantiates the lockstep kernel for the plan × the
// given lanes, or nil when the configuration must fall back: generic or
// node-clock plans, NoTable, a non-Tabular lane, or lanes whose
// compiled tables differ (replicates of one factory always share table
// content; mixed batches are not lockstep-safe because the kernel keeps
// a single table resident).
func (pl *ExecPlan) newBatchKernel(ps []Protocol, rs []*xrand.Rand, lanes []int32) batchKernel {
	tabs := make([]Tabular, len(ps))
	for _, l := range lanes {
		tp := pl.fusable(ps[l])
		if tp == nil || len(tp.TableStates()) != pl.g.N() {
			return nil
		}
		tabs[l] = tp
	}
	ref := tabs[lanes[0]].Table()
	refCells := ref.Cells()
	if len(refCells) == 0 {
		return nil
	}
	for _, l := range lanes[1:] {
		t := tabs[l].Table()
		cells := t.Cells()
		if t.K() != ref.K() || len(cells) != len(refCells) {
			return nil
		}
		if &cells[0] == &refCells[0] {
			continue // same backing array: trivially identical
		}
		for j := range cells {
			if cells[j] != refCells[j] {
				return nil
			}
		}
	}
	b := newTableBatch(pl, tabs, rs, lanes)
	switch pl.mode {
	case modeDenseUniform:
		return newDenseBatchKernel(pl.g.(*graph.Dense), b)
	case modeCliqueUniform:
		return newCliqueBatchKernel(pl.g.(graph.Clique), b)
	case modeWeighted:
		return newWeightedBatchKernel(pl.weighted, b)
	}
	return nil
}

// runLockstep drives the lockstep kernel through the shared window loop
// and settles every lane's result. Per-lane telemetry mirrors the solo
// loop: a lane's chunk count is the number of windows it attended when
// it has an observer (shared windows ARE its solo windows, since window
// shortening depends only on the plan's cadence), and the solo loop's
// 512-aligned window count when it does not.
func (pl *ExecPlan) runLockstep(kern batchKernel, ps []Protocol, laneObs []Observer, out []BatchResult) {
	c := kern.core()
	label := planModeNames[pl.mode] + "/table/batch"
	hasObs := false
	for _, l := range c.active {
		if laneObs[l] != nil {
			hasObs = true
			break
		}
	}
	chunks := make([]int64, len(ps))
	observes := make([]int64, len(ps))
	var t int64
	for t < pl.maxSteps && len(c.active) > 0 {
		k := pl.maxSteps - t
		if k > rngBlockSize {
			k = rngBlockSize
		}
		if hasObs {
			if toBoundary := pl.every - t%pl.every; toBoundary < k {
				k = toBoundary
			}
		}
		for _, l := range c.active {
			chunks[l]++
		}
		kern.run(t, k)
		t += k
		boundary := hasObs && t%pl.every == 0
		for _, l := range c.takeRetired() {
			observeFirst := boundary && c.stopAt[l] == t && laneObs[l] != nil
			pl.settleLane(c, ps[l], laneObs[l], label, l, true, observeFirst,
				chunks[l], observes[l], &out[l])
		}
		if boundary {
			// Boundary callbacks for the survivors, with solo-style crash
			// isolation: an observer panic kills its lane, not the batch.
			var crashed []int32
			for _, l := range c.active {
				if laneObs[l] == nil {
					continue
				}
				if msg := observeLane(c, laneObs[l], l, t); msg != "" {
					out[l] = BatchResult{Result: Result{Steps: 0, Stabilized: false, Leader: -1}, Crashed: msg}
					crashed = append(crashed, l)
					continue
				}
				observes[l]++
			}
			for _, l := range crashed {
				c.removeLane(l)
			}
		}
	}
	// Cap exhausted: the remaining lanes finish unstabilized, exactly as
	// the solo loop's fallthrough.
	for _, l := range c.active {
		c.stopAt[l] = pl.maxSteps
		pl.settleLane(c, ps[l], laneObs[l], label, l, false, false, chunks[l], observes[l], &out[l])
	}
	c.active = c.active[:0]
}

// removeLane removes a crashed lane from the active roster
// (driver-side; the kernel's retire handles stabilization removal).
func (b *tableBatch) removeLane(lane int32) {
	for a, l := range b.active {
		if l == lane {
			copy(b.active[a:], b.active[a+1:])
			b.active = b.active[:len(b.active)-1]
			return
		}
	}
}

// observeLane syncs one lane and fires its boundary observation,
// recovering a crash into the returned message.
func observeLane(c *tableBatch, ob Observer, lane int32, t int64) (msg string) {
	defer func() {
		if e := recover(); e != nil {
			msg = fmt.Sprint(e)
		}
	}()
	c.syncLane(lane)
	ob.Observe(t)
	return ""
}

// settleLane runs one lane's end-of-run sequence in exactly the solo
// loop's order: the stabilizing boundary observation (when the lane
// stabilized on one), generator rewind, final sync, flush (observer
// finisher + telemetry), then the Result — with a crash anywhere
// recovering into a crashed lane, leaving precisely the side effects
// the solo run would have committed before the same panic.
func (pl *ExecPlan) settleLane(c *tableBatch, p Protocol, ob Observer, label string,
	lane int32, stabilized, observeFirst bool, chunks, observes int64, out *BatchResult) {
	defer func() {
		if e := recover(); e != nil {
			*out = BatchResult{Result: Result{Steps: 0, Stabilized: false, Leader: -1}, Crashed: fmt.Sprint(e)}
		}
	}()
	steps := c.stopAt[lane]
	if observeFirst {
		c.syncLane(lane)
		ob.Observe(steps)
		observes++
	}
	c.finishLane(lane)
	c.syncLane(lane)
	if ob == nil {
		// Observer-less lanes never shorten their solo windows; their
		// chunk count is the 512-aligned window count over the steps run.
		chunks = (steps + rngBlockSize - 1) / rngBlockSize
	}
	if f, ok := ob.(RunFinisher); ok {
		f.Finish(steps)
	}
	if pl.meter != nil {
		pl.meter.AddRun(steps, chunks, c.blks[lane].refills, c.drops[lane], observes, label)
	}
	if stabilized {
		*out = BatchResult{Result: Result{Steps: steps, Stabilized: true, Leader: FindLeader(pl.g, p)}}
	} else {
		*out = BatchResult{Result: Result{Steps: pl.maxSteps, Stabilized: false, Leader: -1}}
	}
}
