package sim_test

import (
	"math"
	"testing"

	"popgraph/internal/core"
	"popgraph/internal/graph"
	"popgraph/internal/protocols/beauquier"
	. "popgraph/internal/sim"
	"popgraph/internal/xrand"
)

func TestScriptedSampler(t *testing.T) {
	s := &ScriptedSampler{Pairs: [][2]int{{0, 1}, {2, 1}}}
	u, v := s.SampleEdge(nil)
	if u != 0 || v != 1 {
		t.Fatalf("first pair (%d,%d)", u, v)
	}
	u, v = s.SampleEdge(nil)
	if u != 2 || v != 1 {
		t.Fatalf("second pair (%d,%d)", u, v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when exhausted")
		}
	}()
	s.SampleEdge(nil)
}

func TestRunScriptedBeauquier(t *testing.T) {
	// Path 0-1-2, all candidates with black tokens. Scripted:
	// (0,1): blacks meet, responder 1 gets white, consumes it -> follower.
	// (1,2): 1 has no token, 2 has black; swap: 1 black, 2 candidate none.
	// (1,0): blacks meet again, responder 0 eliminated. Stable: node 2?
	// After (1,0): initiator 1 keeps black, 0's new token white consumed,
	// 0 becomes follower. Remaining candidate: 2. Stable at step 3.
	g := graph.Path(3)
	p := beauquier.New()
	r := xrand.New(1)
	res := Run(g, p, r, Options{
		Sampler:  &ScriptedSampler{Pairs: [][2]int{{0, 1}, {1, 2}, {1, 0}}},
		MaxSteps: 3,
	})
	if !res.Stabilized || res.Steps != 3 {
		t.Fatalf("result %+v", res)
	}
	if res.Leader != 2 {
		t.Fatalf("leader = %d, want 2", res.Leader)
	}
}

func TestRunStabilizesAndAgreesWithScan(t *testing.T) {
	graphs := []graph.Graph{
		graph.NewClique(12),
		graph.Cycle(10),
		graph.Star(9),
		graph.Torus2D(3, 4),
	}
	for _, g := range graphs {
		t.Run(g.Name(), func(t *testing.T) {
			p := beauquier.New()
			r := xrand.New(42)
			res := Run(g, p, r, Options{})
			if !res.Stabilized {
				t.Fatalf("did not stabilize in %d steps", res.Steps)
			}
			if res.Leader < 0 || res.Leader >= g.N() {
				t.Fatalf("bad leader %d", res.Leader)
			}
			if got := CountLeaders(g, p); got != 1 {
				t.Fatalf("scan found %d leaders", got)
			}
			if p.Output(res.Leader) != core.Leader {
				t.Fatal("reported leader does not output leader")
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	g := graph.Cycle(16)
	a := Run(g, beauquier.New(), xrand.New(7), Options{})
	b := Run(g, beauquier.New(), xrand.New(7), Options{})
	if a != b {
		t.Fatalf("same seed produced different results: %+v vs %+v", a, b)
	}
	c := Run(g, beauquier.New(), xrand.New(8), Options{})
	if a == c {
		t.Log("different seeds coincided (possible but unlikely); not failing")
	}
}

func TestRunMaxStepsCap(t *testing.T) {
	g := graph.Cycle(64)
	res := Run(g, beauquier.New(), xrand.New(1), Options{MaxSteps: 5})
	if res.Stabilized {
		t.Fatal("cannot stabilize 64 candidates in 5 steps")
	}
	if res.Steps != 5 || res.Leader != -1 {
		t.Fatalf("result %+v", res)
	}
}

func TestRunPanicsOnTinyGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g, err := graph.NewDense(1, nil, "single")
	if err != nil {
		// A 1-node graph with no edges is connected; constructor allows it.
		t.Skipf("constructor rejected: %v", err)
	}
	Run(g, beauquier.New(), xrand.New(1), Options{})
}

type countingObserver struct {
	calls int
	last  int64
}

func (o *countingObserver) Observe(t int64) { o.calls++; o.last = t }

func TestObserverCadence(t *testing.T) {
	g := graph.NewClique(8)
	obs := &countingObserver{}
	res := Run(g, beauquier.New(), xrand.New(3), Options{Observer: obs, ObserveEvery: 10})
	if !res.Stabilized {
		t.Fatal("did not stabilize")
	}
	want := int(res.Steps / 10)
	if obs.calls != want {
		t.Fatalf("observer called %d times, want %d (steps=%d)", obs.calls, want, res.Steps)
	}
}

// TestDropRateRobustness — with interactions dropped at rate q, protocols
// still stabilize, slowed by roughly 1/(1−q).
func TestDropRateRobustness(t *testing.T) {
	g := graph.NewClique(24)
	const trials = 12
	meanSteps := func(drop float64) float64 {
		var total int64
		for i := 0; i < trials; i++ {
			res := Run(g, beauquier.New(), xrand.New(uint64(500+i)), Options{DropRate: drop})
			if !res.Stabilized {
				t.Fatalf("drop %v: did not stabilize", drop)
			}
			total += res.Steps
		}
		return float64(total) / trials
	}
	base := meanSteps(0)
	half := meanSteps(0.5)
	ratio := half / base
	if ratio < 1.4 || ratio > 3.2 {
		t.Errorf("drop 0.5 slowed by %vx, want ≈2x", ratio)
	}
}

func TestDropRateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(graph.NewClique(4), beauquier.New(), xrand.New(1), Options{DropRate: 1})
}

func TestDefaultMaxSteps(t *testing.T) {
	if DefaultMaxSteps(2) != 1<<22 {
		t.Fatal("floor not applied")
	}
	// 72·n⁴·log₂n at n = 1024 (log₂ = 10).
	if want := int64(72) * 1024 * 1024 * 1024 * 1024 * 10; DefaultMaxSteps(1024) != want {
		t.Fatalf("DefaultMaxSteps(1024) = %d, want %d", DefaultMaxSteps(1024), want)
	}
	prev := int64(0)
	for _, n := range []int{2, 10, 100, 1000, 10000} {
		if c := DefaultMaxSteps(n); c < prev {
			t.Fatalf("cap not monotone at n=%d: %d < %d", n, c, prev)
		} else {
			prev = c
		}
	}
}

// TestDefaultMaxStepsCoversLollipop is the regression test for the old
// 72·n³ cap, which contradicted the doc comment: six-state on
// lollipop(n/2, n/2) stabilizes in Θ(H·n·log n) expected steps with
// H ≈ (n/2)²·(n/2) = n³/8, which exceeds 72·n³ already at moderate n, so
// runs spuriously reported Stabilized = false. The cap must dominate a
// multiple of the expectation.
func TestDefaultMaxStepsCoversLollipop(t *testing.T) {
	for _, n := range []int{64, 128, 512, 4096} {
		nf := float64(n)
		expect := nf * nf * nf / 8 * nf * math.Log2(nf)
		if got := float64(DefaultMaxSteps(n)); got < 4*expect {
			t.Errorf("DefaultMaxSteps(%d) = %g below 4× lollipop expectation %g", n, got, 4*expect)
		}
	}
}

// TestDefaultMaxStepsOverflowGuard — 72·n⁴·log₂n overflows int64 around
// n ≈ 50k; the cap must clamp, not wrap negative.
func TestDefaultMaxStepsOverflowGuard(t *testing.T) {
	for _, n := range []int{50_000, 5_000_000, math.MaxInt32} {
		got := DefaultMaxSteps(n)
		if got <= 0 {
			t.Fatalf("DefaultMaxSteps(%d) = %d overflowed", n, got)
		}
		if got != 1<<62 {
			t.Fatalf("DefaultMaxSteps(%d) = %d, want clamp 2^62", n, got)
		}
	}
}
