// Package sim provides the population-protocol execution engine: the
// scheduler loop with pluggable interaction-selection policies, the
// Protocol interface implemented by every protocol in internal/protocols,
// stabilization detection and optional observers for instrumentation.
//
// A time step, as in the paper, is one pairwise interaction: the scheduler
// samples an ordered pair (u, v) of adjacent nodes uniformly among all 2m
// ordered pairs, u interacting as initiator and v as responder. Beyond
// that default, Options.Scheduler plugs in alternative policies —
// weighted per-edge rates, degree-proportional node clocks, bursty link
// churn (see scheduler.go) — for scenario diversity experiments.
//
// Every run executes through a compiled execution plan (see plan.go):
// Compile validates the configuration and selects a type-specialized
// block-sampling kernel (engine.go) for the scheduler × graph shape —
// uniform on the concrete graph types, weighted alias-table, node-clock
// — with drop-rate injection folded into the fast loops and observers
// handled by chunk boundaries. Specialized kernels consume the identical
// random stream as the generic Source-driven reference loop, so results
// are byte-identical whichever kernel a plan picks.
package sim

import (
	"math"

	"popgraph/internal/core"
	"popgraph/internal/graph"
	"popgraph/internal/telemetry"
	"popgraph/internal/xrand"
)

// Protocol is a population protocol with its per-node state stored
// internally (structure-of-arrays for speed). Implementations keep O(1)
// counters so Leaders and Stable are constant-time; tests cross-check the
// counters against full scans.
type Protocol interface {
	// Name identifies the protocol in tables and benchmarks.
	Name() string
	// StateCount returns the number of distinct node states the protocol
	// uses for population size n (possibly huge, hence float64).
	StateCount(n int) float64
	// Reset initializes all n nodes to the protocol's initial state for
	// the given graph. Protocols may precompute graph-derived parameters.
	Reset(g graph.Graph, r *xrand.Rand)
	// Step applies one interaction with initiator u and responder v.
	Step(u, v int)
	// Output returns node v's current output.
	Output(v int) core.Role
	// Leaders returns the number of nodes currently outputting Leader.
	Leaders() int
	// Stable reports whether the current configuration is stable and
	// correct: exactly one leader whose output can never change under any
	// future schedule.
	Stable() bool
}

// Tabular is a Protocol whose whole transition function fits in a
// compiled core.TransitionTable — the constant-state regime of the
// space-efficiency line of work (the six-state baseline of Theorem 16,
// the star protocol, four-state majority). Execution plans fuse Tabular
// protocols into the specialized scheduler kernels: the interaction hot
// loop becomes two byte loads, one table lookup, two byte stores and a
// counter-delta add, with no Protocol interface calls (see engine.go).
// Protocols whose state space grows with n (identifier, fast) simply
// don't implement it and keep the Step-dispatch kernels.
//
// Implementations generate the table from their own hand-written Step
// logic (typically by probing Step over all state pairs), so the
// transition rules keep a single source of truth.
type Tabular interface {
	Protocol
	// Table returns the compiled machine for the protocol's current
	// configuration, or nil when it cannot be table-compiled (the run
	// then uses interface dispatch). It must be callable both before
	// Reset (plans report the engine choice up front) and after.
	Table() *core.TransitionTable
	// TableStates returns the live per-node state-index slice, aliasing
	// the protocol's own storage; fused kernels mutate it in place, so
	// Output and state accessors stay accurate mid-run. Valid after
	// Reset; every entry is < Table().K().
	TableStates() []uint8
	// ReloadCounters restores the protocol's internal counters after a
	// fused kernel mutated TableStates behind Step's back; the plan
	// calls it before every observer callback and at the end of the
	// run. leaders and gap are the kernel's incrementally maintained
	// table counters (see core.TransitionTable); implementations
	// reconcile any further counters from their state array, typically
	// by an O(n) scan. That scan prices observation, not simulation: an
	// attached observer with a fine-grained interval (ObserveEvery near
	// 1) costs O(n) per callback on top of the observer's own work, so
	// heavily instrumented large-n runs may prefer Options.NoTable,
	// whose Step dispatch keeps counters in O(1) per step.
	ReloadCounters(leaders, gap int)
}

// EdgeSampler abstracts the scheduler's pair sampling; graph.Graph
// satisfies it. Tests use ScriptedSampler for deterministic interaction
// sequences.
type EdgeSampler interface {
	SampleEdge(r *xrand.Rand) (u, v int)
}

// ScriptedSampler replays a fixed sequence of ordered pairs, then panics
// if exhausted. For deterministic unit tests only.
type ScriptedSampler struct {
	Pairs [][2]int
	next  int
}

// SampleEdge returns the next scripted pair.
func (s *ScriptedSampler) SampleEdge(*xrand.Rand) (int, int) {
	if s.next >= len(s.Pairs) {
		panic("sim: scripted sampler exhausted")
	}
	p := s.Pairs[s.next]
	s.next++
	return p[0], p[1]
}

// Observer receives periodic callbacks during a run, for instrumentation
// such as state-density tracking (Lemma 48 experiments).
type Observer interface {
	// Observe is called after step t (1-based) whenever t is a multiple of
	// the interval passed in Options.
	Observe(t int64)
}

// ProtocolBinder is an optional Observer extension: observers that need
// the run's protocol instance (telemetry.Trajectory samples its leader
// count) implement it and are handed the freshly Reset protocol before
// the first step. Binding happens on the run's control path only — it
// cannot consume randomness or alter step ordering.
type ProtocolBinder interface {
	Bind(p any)
}

// RunFinisher is an optional Observer extension: implementations are
// called once after the run ends — after the kernel has rewound the
// generator and reconciled protocol counters — with the final step
// count, so curves can close with a terminal sample even when the run
// ends off the observation grid.
type RunFinisher interface {
	Finish(steps int64)
}

// Options configures a run.
type Options struct {
	// MaxSteps caps the run; 0 means DefaultMaxSteps(n).
	MaxSteps int64
	// Scheduler selects the interaction policy (see scheduler.go); nil
	// and Uniform{} both mean the paper's uniform pairwise scheduler.
	// Uniform, Weighted and NodeClock compile to specialized fast
	// kernels; others run on the generic Source loop. Schedulers must be
	// built for the same graph passed to Run (Compile rejects obvious
	// mismatches).
	Scheduler Scheduler
	// Sampler overrides the pair stream directly (tests and the
	// benchmark's reference loop); it takes precedence over Scheduler.
	Sampler EdgeSampler
	// Observer, if non-nil, is called every ObserveEvery steps.
	Observer     Observer
	ObserveEvery int64
	// DropRate injects communication failures: each sampled interaction
	// is silently dropped (no state change, still counted as a step) with
	// this probability. Stable leader election is schedule-oblivious, so
	// protocols still stabilize, slowed by a factor 1/(1−DropRate);
	// experiments use this to check robustness. Must be in [0, 1); other
	// values are a Compile error (and a panic through the Run wrapper).
	DropRate float64
	// Reference forces the generic Source-driven reference kernel even
	// when a specialized kernel exists for the configuration. The Result,
	// observer callbacks and post-run generator state are byte-identical
	// either way — that is the determinism contract — so the only effect
	// is speed; equivalence tests and cmd/bench use it to time the
	// reference loop.
	Reference bool
	// NoTable forces interface dispatch (Protocol.Step / Protocol.Stable)
	// even for Tabular protocols, keeping the scheduler-specialized
	// kernel engaged. The protocol axis consumes no randomness, so
	// results are byte-identical with or without fusion; equivalence
	// tests and cmd/bench use it to isolate the table-vs-interface
	// speedup.
	NoTable bool
	// Meter, if non-nil, receives flight-recorder accounting — steps,
	// chunks, RNG refills, drops, observer calls, kernel dispatch — once
	// per run. Metering is invisible to the simulation: it never draws
	// randomness or reorders steps, counters accumulate in kernel-local
	// ints and are flushed in one batch after the run's result is
	// decided, so results are byte-identical with Meter set or nil (the
	// equivalence matrix asserts this). The same Meter may be shared by
	// concurrent runs; the runner gives each worker a private shard
	// instead to keep flushes contention-free.
	Meter *telemetry.Counters
}

// DefaultMaxSteps returns the default step cap: generous enough for the
// slowest protocol/graph pair we simulate (constant-state protocol on a
// lollipop runs in Θ(n⁴ log n), via H(G) = Θ(n³) worst-case hitting
// time); runs hitting the cap report Stabilized = false rather than
// spinning forever. The cap is 72·n⁴·log₂n with a floor of 2²² steps for
// tiny graphs, computed in float64 and clamped to 2⁶² so it cannot
// overflow int64 at any n.
func DefaultMaxSteps(n int) int64 {
	const (
		floor = 1 << 22
		clamp = 1 << 62
	)
	nf := float64(n)
	cap64 := 72 * nf * nf * nf * nf * math.Log2(nf)
	if !(cap64 > floor) { // NaN-safe: n <= 1 gives NaN/−Inf, take the floor
		return floor
	}
	if cap64 > clamp {
		return clamp
	}
	return int64(cap64)
}

// Result reports the outcome of a run.
type Result struct {
	// Steps is the stabilization time (number of interactions), or the
	// step cap when Stabilized is false.
	Steps int64
	// Stabilized reports whether a stable correct configuration was
	// reached before the cap.
	Stabilized bool
	// Leader is the elected node, or -1 when not stabilized.
	Leader int
}

// RunE compiles (g, opts) into an execution plan and runs p on it,
// returning an error instead of panicking on invalid configurations
// (graphs with n < 2, drop rates outside [0, 1), schedulers built for a
// different graph). Batch drivers use it so bad grid cells surface as
// per-trial errors rather than recovered panics.
func RunE(g graph.Graph, p Protocol, r *xrand.Rand, opts Options) (Result, error) {
	pl, err := Compile(g, opts)
	if err != nil {
		return Result{}, err
	}
	return pl.Run(p, r), nil
}

// Run resets p on g and executes the stochastic scheduler until the
// protocol reports a stable configuration or the step cap is hit. It is
// the panicking wrapper around RunE, kept for compatibility: invalid
// configurations panic with the error Compile returned. Callers running
// untrusted configurations should use Compile/RunE.
func Run(g graph.Graph, p Protocol, r *xrand.Rand, opts Options) Result {
	res, err := RunE(g, p, r, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// FindLeader scans outputs and returns the unique leader, or -1 if the
// number of leaders is not exactly one.
func FindLeader(g graph.Graph, p Protocol) int {
	leader := -1
	for v := 0; v < g.N(); v++ {
		if p.Output(v) == core.Leader {
			if leader >= 0 {
				return -1
			}
			leader = v
		}
	}
	return leader
}

// CountLeaders scans outputs and returns the number of leaders; used by
// tests to validate protocols' O(1) Leaders counters.
func CountLeaders(g graph.Graph, p Protocol) int {
	count := 0
	for v := 0; v < g.N(); v++ {
		if p.Output(v) == core.Leader {
			count++
		}
	}
	return count
}
