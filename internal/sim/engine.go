// Type-specialized scheduler hot loops. The generic loop in sim.go pays
// an EdgeSampler interface dispatch and a per-step generator call; the
// engines here are monomorphized for the two concrete graph
// representations (*graph.Dense and graph.Clique), draw scheduler
// randomness in fixed-size blocks through xrand.Fill, and keep the whole
// sampling state — block buffer, cursor, Lemire rejection threshold — in
// locals so the per-step cost is a buffer load, one 128-bit multiply and
// a predictable branch.
//
// Determinism contract: a specialized loop consumes exactly the same
// uint64 stream, in the same order, as the generic loop would for the
// same seed, and on exit rewinds the generator past only the draws it
// consumed (undoing block prefetch). Every seed therefore reproduces
// byte-identical Results and leaves the generator in a byte-identical
// state regardless of which loop ran; engine_test.go asserts both.
package sim

import (
	"math/bits"

	"popgraph/internal/graph"
	"popgraph/internal/xrand"
)

// rngBlockSize is the number of uint64 values prefetched per refill. Big
// enough to amortize the Fill call and keep the generator state in
// registers for the whole block, small enough that the end-of-run rewind
// (at most one block re-skipped) stays negligible.
const rngBlockSize = 512

// The Lemire reduction below mirrors xrand.Uintn draw for draw. Uintn
// guards the threshold computation behind the rare lo < n test; since
// thresh = 2⁶⁴ mod n < n, looping directly on lo < thresh rejects exactly
// the same draws, and precomputing thresh hoists the 64-bit division out
// of the hot loop entirely.

// runDense is the specialized loop for CSR graphs: one block-buffered
// Lemire reduction over the 2m ordered pairs per step, pair unpacking
// straight from the raw packed edge array — no interface calls on the
// sampling path, and the direction swap is branch-free (a taken/not-taken
// branch on the draw's parity would mispredict half the time).
func runDense(g *graph.Dense, p Protocol, r *xrand.Rand, maxSteps int64) Result {
	var (
		buf    [rngBlockSize]uint64
		k      = rngBlockSize
		saved  xrand.State
		filled bool
	)
	edges := g.PackedEdges()
	twoM := uint64(2 * g.M())
	thresh := -twoM % twoM
	res := Result{Steps: maxSteps, Stabilized: false, Leader: -1}
	for t := int64(1); t <= maxSteps; t++ {
		if k == rngBlockSize {
			saved = r.Save()
			r.Fill(buf[:])
			k = 0
			filled = true
		}
		hi, lo := bits.Mul64(buf[k], twoM)
		k++
		for lo < thresh {
			if k == rngBlockSize {
				saved = r.Save()
				r.Fill(buf[:])
				k = 0
			}
			hi, lo = bits.Mul64(buf[k], twoM)
			k++
		}
		// Unpack edge hi>>1 as (initiator, responder), reversing the pair
		// when hi is odd via an XOR mask instead of a branch.
		e := uint64(edges[hi>>1])
		eu, ew := e>>32, e&0xffffffff
		swap := (eu ^ ew) & -(hi & 1)
		p.Step(int(eu^swap), int(ew^swap))
		if p.Stable() {
			res = Result{Steps: t, Stabilized: true, Leader: FindLeader(g, p)}
			break
		}
	}
	if filled {
		// Rewind: reposition r as if the consumed values had been drawn
		// one at a time — restore the pre-block state, skip the consumed
		// prefix.
		r.Restore(saved)
		r.Skip(k)
	}
	return res
}

// runClique is the specialized loop for the implicit complete graph,
// mirroring graph.Clique.SampleEdge's two-draw construction of a uniform
// ordered pair of distinct nodes.
func runClique(g graph.Clique, p Protocol, r *xrand.Rand, maxSteps int64) Result {
	var (
		buf    [rngBlockSize]uint64
		k      = rngBlockSize
		saved  xrand.State
		filled bool
	)
	n := uint64(g.N())
	n1 := n - 1
	threshN := -n % n
	threshN1 := -n1 % n1
	res := Result{Steps: maxSteps, Stabilized: false, Leader: -1}
	for t := int64(1); t <= maxSteps; t++ {
		if k == rngBlockSize {
			saved = r.Save()
			r.Fill(buf[:])
			k = 0
			filled = true
		}
		hi, lo := bits.Mul64(buf[k], n)
		k++
		for lo < threshN {
			if k == rngBlockSize {
				saved = r.Save()
				r.Fill(buf[:])
				k = 0
			}
			hi, lo = bits.Mul64(buf[k], n)
			k++
		}
		u := int(hi)
		if k == rngBlockSize {
			saved = r.Save()
			r.Fill(buf[:])
			k = 0
		}
		hi, lo = bits.Mul64(buf[k], n1)
		k++
		for lo < threshN1 {
			if k == rngBlockSize {
				saved = r.Save()
				r.Fill(buf[:])
				k = 0
			}
			hi, lo = bits.Mul64(buf[k], n1)
			k++
		}
		v := int(hi)
		if v >= u {
			v++
		}
		p.Step(u, v)
		if p.Stable() {
			res = Result{Steps: t, Stabilized: true, Leader: FindLeader(g, p)}
			break
		}
	}
	if filled {
		r.Restore(saved)
		r.Skip(k)
	}
	return res
}
