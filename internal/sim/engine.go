// Type-specialized chunk kernels. A compiled execution plan (plan.go)
// drives a run as a sequence of bounded chunks; the kernels here are the
// chunk runners. Each is monomorphized for one scheduler × graph shape —
// no interface dispatch on the sampling path — draws its randomness in
// fixed-size blocks through xrand.Fill, and keeps the sampling state
// (block buffer, cursor, hoisted Lemire rejection thresholds) alive
// across chunk calls, so chunking is free: the per-step cost is a buffer
// load, a 128-bit multiply and predictable branches regardless of where
// the plan places chunk boundaries.
//
// Determinism contract: a kernel consumes exactly the same uint64
// stream, in the same order, as the generic Source-driven reference
// kernel would for the same configuration and seed, and on finish
// rewinds the generator past only the draws it consumed (undoing block
// prefetch). Every seed therefore reproduces byte-identical Results,
// observer callbacks and post-run generator state regardless of which
// kernel ran — for every protocol × scheduler × drop × observer
// combination, not just uninstrumented uniform runs (the fused
// transition-table variants in engine_table.go consume no extra
// randomness); engine_test.go asserts all three against an independent
// step-at-a-time reference loop.

package sim

import (
	"math/bits"

	"popgraph/internal/graph"
	"popgraph/internal/xrand"
)

// rngBlockSize is the number of uint64 values prefetched per refill, and
// also the plan's chunk-length bound. Big enough to amortize the Fill
// call and keep the generator state in registers for the whole block,
// small enough that the end-of-run rewind (at most one block re-skipped)
// stays negligible.
const rngBlockSize = 512

// kernel is a chunk runner: the compiled hot loop for one scheduler ×
// graph shape (optionally fused with a protocol's transition table),
// owning all mutable sampling state of one run.
type kernel interface {
	// run executes steps t0+1 .. t0+k, stopping early when the protocol
	// stabilizes; it returns the number of steps executed and whether the
	// final one stabilized. The plan guarantees k >= 1.
	run(p Protocol, r *xrand.Rand, t0, k int64) (done int64, stabilized bool)
	// finish rewinds any prefetched randomness so the generator is left
	// exactly where drawing one value at a time would have left it.
	finish(r *xrand.Rand)
	// sync reconciles the protocol's internal counters with any state
	// the kernel mutated behind Protocol.Step's back; the plan calls it
	// before every observer callback and at the end of the run. A no-op
	// for Step-dispatch kernels, whose protocols maintain their own
	// counters.
	sync()
	// stats returns the run's telemetry tallies: RNG block refills and
	// interactions suppressed by drop injection. The counters are plain
	// kernel-local ints bumped on paths that are already cold (the
	// out-of-line refill) or predictable (the drop branch, short-circuited
	// away entirely when drop == 0), so accounting never costs the hot
	// loop an atomic or a call; the plan reads them once per run.
	stats() (refills, drops int64)
}

// rngBlock is the shared block-prefetch state: a buffer of raw Uint64
// outputs, a cursor, and the generator snapshot needed to rewind unused
// prefetch on finish. Kernels keep one alive across chunk calls.
type rngBlock struct {
	buf     [rngBlockSize]uint64
	k       int
	saved   xrand.State
	filled  bool
	refills int64
}

func newRngBlock() rngBlock { return rngBlock{k: rngBlockSize} }

// next returns the next stream value, refilling the block when
// exhausted. The hot path is a bounds-elided load and an increment; the
// refill lives in its own function so next stays inlinable.
//
//popcheck:kernel
func (b *rngBlock) next(r *xrand.Rand) uint64 {
	if b.k == rngBlockSize {
		b.refill(r)
	}
	x := b.buf[b.k]
	b.k++
	return x
}

// refill is the cold path of next; keeping it out of line keeps next
// itself within the inlining budget, which is what makes the per-draw
// cost of the kernels a buffer load instead of a function call.
//
//popcheck:kernel
//go:noinline
func (b *rngBlock) refill(r *xrand.Rand) {
	b.saved = r.Save()
	r.Fill(b.buf[:])
	b.k = 0
	b.filled = true
	b.refills++
}

// finish repositions r as if the consumed values had been drawn one at
// a time: restore the pre-block state, skip the consumed prefix.
func (b *rngBlock) finish(r *xrand.Rand) {
	if b.filled {
		r.Restore(b.saved)
		r.Skip(b.k)
		b.filled = false
		b.k = rngBlockSize
	}
}

// The Lemire reductions below mirror xrand.Uintn draw for draw. Uintn
// guards the threshold computation behind the rare lo < n test; since
// thresh = 2⁶⁴ mod n < n, looping directly on lo < thresh rejects
// exactly the same draws, and precomputing thresh hoists the 64-bit
// division out of the hot loop entirely. Bounds that vary per step
// (node-clock's per-degree draw) keep Uintn's guarded form instead.

// denseKernel is the uniform-scheduler loop for CSR graphs: one
// block-buffered Lemire reduction over the 2m ordered pairs per step,
// pair unpacking straight from the raw packed edge array, and the
// direction swap branch-free (a taken/not-taken branch on the draw's
// parity would mispredict half the time). Drop decisions, when enabled,
// convert the next block value in place — one extra stream position per
// step, exactly like the reference loop's live Float64 call.
type denseKernel struct {
	blk    rngBlock
	edges  []int64
	twoM   uint64
	thresh uint64
	drop   float64
	drops  int64
}

func newDenseKernel(g *graph.Dense, drop float64) *denseKernel {
	twoM := uint64(2 * g.M())
	return &denseKernel{
		blk:    newRngBlock(),
		edges:  g.PackedEdges(),
		twoM:   twoM,
		thresh: -twoM % twoM,
		drop:   drop,
	}
}

//popcheck:kernel
func (kn *denseKernel) run(p Protocol, r *xrand.Rand, _, k int64) (int64, bool) {
	blk := &kn.blk
	for i := int64(1); i <= k; i++ {
		hi, lo := bits.Mul64(blk.next(r), kn.twoM)
		for lo < kn.thresh {
			hi, lo = bits.Mul64(blk.next(r), kn.twoM)
		}
		if kn.drop == 0 || xrand.Float64From(blk.next(r)) >= kn.drop {
			// Unpack edge hi>>1 as (initiator, responder), reversing the
			// pair when hi is odd via an XOR mask instead of a branch.
			e := uint64(kn.edges[hi>>1])
			eu, ew := e>>32, e&0xffffffff
			swap := (eu ^ ew) & -(hi & 1)
			p.Step(int(eu^swap), int(ew^swap))
		} else {
			kn.drops++
		}
		if p.Stable() {
			return i, true
		}
	}
	return k, false
}

func (kn *denseKernel) finish(r *xrand.Rand)  { kn.blk.finish(r) }
func (kn *denseKernel) sync()                 {}
func (kn *denseKernel) stats() (int64, int64) { return kn.blk.refills, kn.drops }

// cliqueKernel is the uniform-scheduler loop for the implicit complete
// graph, mirroring graph.Clique.SampleEdge's two-draw construction of a
// uniform ordered pair of distinct nodes.
type cliqueKernel struct {
	blk      rngBlock
	n, n1    uint64
	threshN  uint64
	threshN1 uint64
	drop     float64
	drops    int64
}

func newCliqueKernel(g graph.Clique, drop float64) *cliqueKernel {
	n := uint64(g.N())
	n1 := n - 1
	return &cliqueKernel{
		blk:      newRngBlock(),
		n:        n,
		n1:       n1,
		threshN:  -n % n,
		threshN1: -n1 % n1,
		drop:     drop,
	}
}

//popcheck:kernel
func (kn *cliqueKernel) run(p Protocol, r *xrand.Rand, _, k int64) (int64, bool) {
	blk := &kn.blk
	for i := int64(1); i <= k; i++ {
		hi, lo := bits.Mul64(blk.next(r), kn.n)
		for lo < kn.threshN {
			hi, lo = bits.Mul64(blk.next(r), kn.n)
		}
		u := int(hi)
		hi, lo = bits.Mul64(blk.next(r), kn.n1)
		for lo < kn.threshN1 {
			hi, lo = bits.Mul64(blk.next(r), kn.n1)
		}
		v := int(hi)
		if v >= u {
			v++
		}
		if kn.drop == 0 || xrand.Float64From(blk.next(r)) >= kn.drop {
			p.Step(u, v)
		} else {
			kn.drops++
		}
		if p.Stable() {
			return i, true
		}
	}
	return k, false
}

func (kn *cliqueKernel) finish(r *xrand.Rand)  { kn.blk.finish(r) }
func (kn *cliqueKernel) sync()                 {}
func (kn *cliqueKernel) stats() (int64, int64) { return kn.blk.refills, kn.drops }

// weightedKernel is the monomorphized alias-table loop for the Weighted
// scheduler: per step one Lemire reduction over the m columns (with the
// hoisted threshold), one prefetched float against the column's
// acceptance probability, one prefetched parity bit for the
// orientation coin — the exact draw sequence of xrand.Alias.Sample
// followed by Rand.Bool, replayed from the block buffer with no method
// calls on the sampling path.
type weightedKernel struct {
	blk    rngBlock
	pairs  []int64
	prob   []float64
	alias  []int32
	m      uint64
	thresh uint64
	drop   float64
	drops  int64
}

func newWeightedKernel(s *Weighted, drop float64) *weightedKernel {
	prob, alias := s.alias.Table()
	m := uint64(len(prob))
	return &weightedKernel{
		blk:    newRngBlock(),
		pairs:  s.pairs,
		prob:   prob,
		alias:  alias,
		m:      m,
		thresh: -m % m,
		drop:   drop,
	}
}

//popcheck:kernel
func (kn *weightedKernel) run(p Protocol, r *xrand.Rand, _, k int64) (int64, bool) {
	blk := &kn.blk
	for i := int64(1); i <= k; i++ {
		hi, lo := bits.Mul64(blk.next(r), kn.m)
		for lo < kn.thresh {
			hi, lo = bits.Mul64(blk.next(r), kn.m)
		}
		col := int(hi)
		if xrand.Float64From(blk.next(r)) >= kn.prob[col] {
			col = int(kn.alias[col])
		}
		e := kn.pairs[col]
		u, w := int(e>>32), int(e&0xffffffff)
		if blk.next(r)&1 == 1 {
			u, w = w, u
		}
		if kn.drop == 0 || xrand.Float64From(blk.next(r)) >= kn.drop {
			p.Step(u, w)
		} else {
			kn.drops++
		}
		if p.Stable() {
			return i, true
		}
	}
	return k, false
}

func (kn *weightedKernel) finish(r *xrand.Rand)  { kn.blk.finish(r) }
func (kn *weightedKernel) sync()                 {}
func (kn *weightedKernel) stats() (int64, int64) { return kn.blk.refills, kn.drops }

// nodeClockKernel is the specialized loop for the NodeClock scheduler:
// the degree-proportional initiator comes from the alias table exactly
// as in weightedKernel, then the responder is a uniform neighbor. The
// neighbor draw's bound varies per step (the initiator's degree), so it
// keeps Uintn's guarded rejection form; on CSR graphs the adjacency
// slice is read directly instead of through two interface calls.
type nodeClockKernel struct {
	blk   rngBlock
	g     graph.Graph
	dense *graph.Dense // non-nil when g is CSR: neighbor reads skip the interface
	prob  []float64
	alias []int32
	n     uint64
	tn    uint64
	drop  float64
	drops int64
}

func newNodeClockKernel(s *NodeClock, drop float64) *nodeClockKernel {
	prob, alias := s.alias.Table()
	n := uint64(len(prob))
	kn := &nodeClockKernel{
		blk:   newRngBlock(),
		g:     s.g,
		prob:  prob,
		alias: alias,
		n:     n,
		tn:    -n % n,
		drop:  drop,
	}
	if dg, ok := s.g.(*graph.Dense); ok {
		kn.dense = dg
	}
	return kn
}

//popcheck:kernel
func (kn *nodeClockKernel) run(p Protocol, r *xrand.Rand, _, k int64) (int64, bool) {
	blk := &kn.blk
	for i := int64(1); i <= k; i++ {
		hi, lo := bits.Mul64(blk.next(r), kn.n)
		for lo < kn.tn {
			hi, lo = bits.Mul64(blk.next(r), kn.n)
		}
		col := int(hi)
		if xrand.Float64From(blk.next(r)) >= kn.prob[col] {
			col = int(kn.alias[col])
		}
		u := col
		var v int
		if kn.dense != nil {
			nb := kn.dense.Neighbors(u)
			v = int(nb[blk.uintn(r, uint64(len(nb)))])
		} else {
			v = kn.g.NeighborAt(u, int(blk.uintn(r, uint64(kn.g.Degree(u))))) //popcheck:ignore hotpath non-CSR fallback; dense path above covers built-in graphs
		}
		if kn.drop == 0 || xrand.Float64From(blk.next(r)) >= kn.drop {
			p.Step(u, v)
		} else {
			kn.drops++
		}
		if p.Stable() {
			return i, true
		}
	}
	return k, false
}

func (kn *nodeClockKernel) finish(r *xrand.Rand)  { kn.blk.finish(r) }
func (kn *nodeClockKernel) sync()                 {}
func (kn *nodeClockKernel) stats() (int64, int64) { return kn.blk.refills, kn.drops }

// uintn is xrand.Uintn fed from the block buffer: same guarded Lemire
// rejection, same accepted draws, for bounds that vary per step.
//
//popcheck:kernel
func (b *rngBlock) uintn(r *xrand.Rand, n uint64) uint64 {
	hi, lo := bits.Mul64(b.next(r), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(b.next(r), n)
		}
	}
	return hi
}

// sourceKernel is the generic reference loop: any Source (a scheduler's
// per-run stream, a graph's SampleEdge via samplerSource, or a test's
// scripted sampler) driven one interface call per step with live
// generator draws. Every specialized kernel above is defined to be
// byte-identical to this one; it is also the only kernel for schedulers
// with per-run mutable state (churn) and for custom graph types.
type sourceKernel struct {
	src   Source
	drop  float64
	drops int64
}

func (kn *sourceKernel) run(p Protocol, r *xrand.Rand, t0, k int64) (int64, bool) {
	for i := int64(1); i <= k; i++ {
		u, v, ok := kn.src.Next(t0+i, r)
		if ok {
			// Same draw sequence as the historical short-circuit form: the
			// drop coin is flipped only for delivered pairs.
			if kn.drop == 0 || r.Float64() >= kn.drop {
				p.Step(u, v)
			} else {
				kn.drops++
			}
		}
		if p.Stable() {
			return i, true
		}
	}
	return k, false
}

func (kn *sourceKernel) finish(*xrand.Rand)    {}
func (kn *sourceKernel) sync()                 {}
func (kn *sourceKernel) stats() (int64, int64) { return 0, kn.drops }
