package sim_test

import (
	"fmt"
	"testing"

	"popgraph/internal/graph"
	"popgraph/internal/protocols/beauquier"
	"popgraph/internal/protocols/fastelect"
	"popgraph/internal/protocols/idelect"
	. "popgraph/internal/sim"
	"popgraph/internal/xrand"
)

// equivalenceCase is one graph × protocol pair checked for byte-identical
// behaviour between the specialized and generic loops.
type equivalenceCase struct {
	g   graph.Graph
	p   func() Protocol
	tag string
}

func equivalenceCases() []equivalenceCase {
	six := func() Protocol { return beauquier.New() }
	id := func() Protocol { return idelect.New() }
	graphs := []graph.Graph{
		graph.NewClique(2),
		graph.NewClique(33), // odd n exercises the Lemire rejection path
		graph.Cycle(17),
		graph.Star(9),
		graph.Torus2D(3, 5),
		graph.Lollipop(6, 5),
		graph.Path(2),
	}
	var cases []equivalenceCase
	for _, g := range graphs {
		cases = append(cases,
			equivalenceCase{g, six, g.Name() + "/six-state"},
			equivalenceCase{g, id, g.Name() + "/identifier"},
		)
	}
	// Fast protocol on one Dense graph and the clique: its Reset draws
	// randomness, checking the Reset-then-block-sampling boundary.
	fastFor := func(g graph.Graph) func() Protocol {
		params := fastelect.TunedParams(g, 8*float64(g.N()))
		return func() Protocol { return fastelect.New(params) }
	}
	for _, g := range []graph.Graph{graph.NewClique(16), graph.Torus2D(3, 4)} {
		cases = append(cases, equivalenceCase{g, fastFor(g), g.Name() + "/fast"})
	}
	return cases
}

// TestEngineEquivalence is the determinism guarantee of the specialized
// loops: for the same seed they must produce a byte-identical Result AND
// leave the generator at the byte-identical stream position as the
// generic EdgeSampler loop (which an explicit Options.Sampler forces).
func TestEngineEquivalence(t *testing.T) {
	// Step caps around the prefetch block size (512) exercise rewinds of
	// a partial block, an exact block boundary, and multiple refills; 0
	// uses the default cap so most runs end by stabilizing instead.
	caps := []int64{100, 511, 512, 513, 2000, 0}
	for _, c := range equivalenceCases() {
		for _, maxSteps := range caps {
			for seed := uint64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("%s/cap%d/seed%d", c.tag, maxSteps, seed)
				rFast := xrand.New(seed)
				rGen := xrand.New(seed)
				fast := Run(c.g, c.p(), rFast, Options{MaxSteps: maxSteps})
				gen := Run(c.g, c.p(), rGen, Options{MaxSteps: maxSteps, Sampler: c.g})
				if fast != gen {
					t.Fatalf("%s: results diverged: specialized %+v, generic %+v", name, fast, gen)
				}
				for i := 0; i < 16; i++ {
					if a, b := rFast.Uint64(), rGen.Uint64(); a != b {
						t.Fatalf("%s: post-run RNG stream diverged at draw %d: %d != %d",
							name, i, a, b)
					}
				}
			}
		}
	}
}

// TestEngineSequentialRuns reuses one generator across consecutive runs:
// the rewind at the end of a specialized run must leave the stream
// position exactly where the generic loop would, so later runs agree too.
func TestEngineSequentialRuns(t *testing.T) {
	g := graph.Torus2D(3, 4)
	rFast := xrand.New(77)
	rGen := xrand.New(77)
	for round := 0; round < 4; round++ {
		fast := Run(g, beauquier.New(), rFast, Options{MaxSteps: 300})
		gen := Run(g, beauquier.New(), rGen, Options{MaxSteps: 300, Sampler: g})
		if fast != gen {
			t.Fatalf("round %d: %+v != %+v", round, fast, gen)
		}
	}
}

// TestEngineObserverAndDropStayGeneric: instrumented runs must not take
// the specialized path (observers see every step; drops consume extra
// randomness), and remain correct.
func TestEngineObserverAndDropStayGeneric(t *testing.T) {
	g := graph.NewClique(12)
	obs := &countingObserver{}
	res := Run(g, beauquier.New(), xrand.New(5), Options{Observer: obs, ObserveEvery: 1})
	if !res.Stabilized || int64(obs.calls) != res.Steps {
		t.Fatalf("observer saw %d of %d steps", obs.calls, res.Steps)
	}
	res = Run(g, beauquier.New(), xrand.New(5), Options{DropRate: 0.5})
	if !res.Stabilized {
		t.Fatal("drop-rate run did not stabilize")
	}
}

func TestOrderedPairMatchesSampleEdge(t *testing.T) {
	g := graph.Lollipop(5, 4)
	a := xrand.New(123)
	b := xrand.New(123)
	for i := 0; i < 2000; i++ {
		u1, v1 := g.SampleEdge(a)
		u2, v2 := g.OrderedPair(b.Uintn(uint64(2 * g.M())))
		if u1 != u2 || v1 != v2 {
			t.Fatalf("draw %d: SampleEdge (%d,%d) != OrderedPair (%d,%d)", i, u1, v1, u2, v2)
		}
	}
}
