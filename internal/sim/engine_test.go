package sim_test

import (
	"fmt"
	"testing"

	"popgraph/internal/graph"
	"popgraph/internal/protocols/beauquier"
	"popgraph/internal/protocols/fastelect"
	"popgraph/internal/protocols/idelect"
	"popgraph/internal/protocols/majority"
	"popgraph/internal/protocols/star"
	"popgraph/internal/runner"
	. "popgraph/internal/sim"
	"popgraph/internal/snapshot"
	"popgraph/internal/telemetry"
	"popgraph/internal/xrand"
)

// equivalenceCase is one graph × protocol pair checked for byte-identical
// behaviour between the specialized and generic loops.
type equivalenceCase struct {
	g   graph.Graph
	p   func() Protocol
	tag string
}

func equivalenceCases() []equivalenceCase {
	six := func() Protocol { return beauquier.New() }
	id := func() Protocol { return idelect.New() }
	graphs := []graph.Graph{
		graph.NewClique(2),
		graph.NewClique(33), // odd n exercises the Lemire rejection path
		graph.Cycle(17),
		graph.Star(9),
		graph.Torus2D(3, 5),
		graph.Lollipop(6, 5),
		graph.Path(2),
	}
	var cases []equivalenceCase
	for _, g := range graphs {
		cases = append(cases,
			equivalenceCase{g, six, g.Name() + "/six-state"},
			equivalenceCase{g, id, g.Name() + "/identifier"},
		)
	}
	// Fast protocol on one Dense graph and the clique: its Reset draws
	// randomness, checking the Reset-then-block-sampling boundary.
	fastFor := func(g graph.Graph) func() Protocol {
		params := fastelect.TunedParams(g, 8*float64(g.N()))
		return func() Protocol { return fastelect.New(params) }
	}
	for _, g := range []graph.Graph{graph.NewClique(16), graph.Torus2D(3, 4)} {
		cases = append(cases, equivalenceCase{g, fastFor(g), g.Name() + "/fast"})
	}
	return cases
}

// TestEngineEquivalence is the determinism guarantee of the specialized
// loops: for the same seed they must produce a byte-identical Result AND
// leave the generator at the byte-identical stream position as the
// generic EdgeSampler loop (which an explicit Options.Sampler forces).
func TestEngineEquivalence(t *testing.T) {
	// Step caps around the prefetch block size (512) exercise rewinds of
	// a partial block, an exact block boundary, and multiple refills; 0
	// uses the default cap so most runs end by stabilizing instead.
	caps := []int64{100, 511, 512, 513, 2000, 0}
	for _, c := range equivalenceCases() {
		for _, maxSteps := range caps {
			for seed := uint64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("%s/cap%d/seed%d", c.tag, maxSteps, seed)
				rFast := xrand.New(seed)
				rGen := xrand.New(seed)
				fast := Run(c.g, c.p(), rFast, Options{MaxSteps: maxSteps})
				gen := Run(c.g, c.p(), rGen, Options{MaxSteps: maxSteps, Sampler: c.g})
				if fast != gen {
					t.Fatalf("%s: results diverged: specialized %+v, generic %+v", name, fast, gen)
				}
				for i := 0; i < 16; i++ {
					if a, b := rFast.Uint64(), rGen.Uint64(); a != b {
						t.Fatalf("%s: post-run RNG stream diverged at draw %d: %d != %d",
							name, i, a, b)
					}
				}
			}
		}
	}
}

// TestEngineSequentialRuns reuses one generator across consecutive runs:
// the rewind at the end of a specialized run must leave the stream
// position exactly where the generic loop would, so later runs agree too.
func TestEngineSequentialRuns(t *testing.T) {
	g := graph.Torus2D(3, 4)
	rFast := xrand.New(77)
	rGen := xrand.New(77)
	for round := 0; round < 4; round++ {
		fast := Run(g, beauquier.New(), rFast, Options{MaxSteps: 300})
		gen := Run(g, beauquier.New(), rGen, Options{MaxSteps: 300, Sampler: g})
		if fast != gen {
			t.Fatalf("round %d: %+v != %+v", round, fast, gen)
		}
	}
}

// TestEngineObserverAndDropOnFastPath — instrumented runs now stay on
// the specialized kernels (observers are chunk boundaries, drops are
// prefetched block draws); the observable behaviour must be unchanged —
// an every-step observer sees every step, drop-rate runs stabilize.
func TestEngineObserverAndDropOnFastPath(t *testing.T) {
	g := graph.NewClique(12)
	obs := &countingObserver{}
	res := Run(g, beauquier.New(), xrand.New(5), Options{Observer: obs, ObserveEvery: 1})
	if !res.Stabilized || int64(obs.calls) != res.Steps {
		t.Fatalf("observer saw %d of %d steps", obs.calls, res.Steps)
	}
	res = Run(g, beauquier.New(), xrand.New(5), Options{DropRate: 0.5})
	if !res.Stabilized {
		t.Fatal("drop-rate run did not stabilize")
	}
}

// recordingObserver captures the callback cadence and, through the
// protocol's O(1) leader counter, the protocol state visible at each
// callback — so equivalence checks catch a kernel that applies steps in
// the right order but observes at the wrong moment.
type recordingObserver struct {
	p       Protocol
	ts      []int64
	leaders []int
}

func (o *recordingObserver) Observe(t int64) {
	o.ts = append(o.ts, t)
	o.leaders = append(o.leaders, o.p.Leaders())
}

func (o *recordingObserver) equal(other *recordingObserver) bool {
	if len(o.ts) != len(other.ts) {
		return false
	}
	for i := range o.ts {
		if o.ts[i] != other.ts[i] || o.leaders[i] != other.leaders[i] {
			return false
		}
	}
	return true
}

// referenceRun is an independent step-at-a-time loop implementing the
// run semantics from first principles — one Source.Next per step, a
// live Float64 drop draw after each delivered contact, observer on
// every multiple of the interval, stabilization checked after every
// step. It deliberately shares no code with plan.go or engine.go: it is
// the meaning the compiled kernels must reproduce byte for byte.
func referenceRun(g graph.Graph, p Protocol, r *xrand.Rand, opts Options) Result {
	p.Reset(g, r)
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps(g.N())
	}
	every := opts.ObserveEvery
	if every <= 0 {
		every = 1
	}
	var src Source
	if opts.Scheduler == nil {
		src = Uniform{G: g}.Begin(r)
	} else {
		src = opts.Scheduler.Begin(r)
	}
	for t := int64(1); t <= maxSteps; t++ {
		u, v, ok := src.Next(t, r)
		if ok && (opts.DropRate == 0 || r.Float64() >= opts.DropRate) {
			p.Step(u, v)
		}
		if opts.Observer != nil && t%every == 0 {
			opts.Observer.Observe(t)
		}
		if p.Stable() {
			return Result{Steps: t, Stabilized: true, Leader: FindLeader(g, p)}
		}
	}
	return Result{Steps: maxSteps, Stabilized: false, Leader: -1}
}

// TestPlanEquivalenceMatrix is the determinism contract of the compiled
// execution plans, now with a protocol axis: for every protocol ×
// scheduler × drop × observer combination on every kernel-eligible
// graph shape, the specialized kernel (fused with the protocol's
// transition table when it is Tabular), the interface-dispatch kernel
// (Options.NoTable), the forced reference kernel (Options.Reference)
// and the independent step-at-a-time loop above must produce
// byte-identical Results, identical observer callback sequences (times
// and visible state), and leave the generator at the byte-identical
// stream position.
func TestPlanEquivalenceMatrix(t *testing.T) {
	schedCases := []struct {
		tag   string
		build func(g graph.Graph) Scheduler
	}{
		{"uniform", func(graph.Graph) Scheduler { return nil }},
		{"weighted", func(g graph.Graph) Scheduler {
			rates := make([]float64, g.M())
			for i := range rates {
				rates[i] = float64(1 + i%7)
			}
			s, err := NewWeighted(g, "weighted:ramp", rates)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"node-clock", func(g graph.Graph) Scheduler {
			s, err := NewNodeClock(g)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"churn", func(g graph.Graph) Scheduler {
			s, err := NewChurn(g, 16, 4)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
	// The protocol axis. six-state is the primary (Tabular) protocol and
	// sweeps the full cap × observer × seed grid; majority (Tabular, a
	// different table and counter functional per input sign) and the
	// star protocol (Tabular, star graphs only) ride a trimmed grid —
	// full scheduler × drop coverage, fewer caps/observer cadences — to
	// keep the matrix fast. Options.NoTable doubles as the interface-
	// dispatch control for every Tabular protocol.
	protoCases := []struct {
		tag     string
		make    func(g graph.Graph) func() Protocol
		on      func(g graph.Graph) bool
		caps    []int64
		everies []int64
		seeds   uint64
	}{
		{
			tag:  "six-state",
			make: func(graph.Graph) func() Protocol { return func() Protocol { return beauquier.New() } },
			on:   func(graph.Graph) bool { return true },
			// Caps around the prefetch block size exercise partial-block
			// rewinds and multi-block runs; 0 (the default cap) lets runs
			// end by stabilizing, checking the early-exit paths.
			caps:    []int64{511, 4000, 0},
			everies: []int64{-1, 1, 7, 512}, // -1 = no observer
			seeds:   2,
		},
		{
			tag: "majority",
			make: func(g graph.Graph) func() Protocol {
				inputs := make([]bool, g.N())
				for i := 0; i <= g.N()/2; i++ {
					inputs[i] = true // strict majority of ones for any n
				}
				return func() Protocol { return majority.New(inputs) }
			},
			on:      func(graph.Graph) bool { return true },
			caps:    []int64{511, 0},
			everies: []int64{-1, 7},
			seeds:   1,
		},
		{
			tag:  "star",
			make: func(graph.Graph) func() Protocol { return func() Protocol { return star.New() } },
			on: func(g graph.Graph) bool {
				return g.N() >= 3 && graph.MaxDegree(g) == g.N()-1 && g.M() == g.N()-1
			},
			caps:    []int64{511, 0},
			everies: []int64{-1, 7},
			seeds:   1,
		},
	}
	graphs := []graph.Graph{
		graph.Torus2D(4, 5),  // CSR: dense-uniform / weighted / node-clock kernels
		graph.NewClique(23),  // implicit: clique-uniform kernel, odd n rejection path
		graph.Lollipop(6, 5), // skewed degrees for the node-clock neighbor draw
		graph.Star(10),       // the star protocol's home turf, CSR shape
	}
	drops := []float64{0, 0.3}
	for _, g := range graphs {
		// Snapshot source axis: Dense graphs get a twin revived from the
		// binary container (encode → decode in memory). The twin must be
		// byte-identical to the original in every run below — same
		// Result, observer sequence and post-run RNG position — which is
		// the determinism contract ParseGraph's file: specs rely on. The
		// implicit clique has no CSR to serialize and is excluded
		// (materializing it changes the kernel, documented in
		// snapshot.Build).
		var snapG graph.Graph
		if _, ok := g.(*graph.Dense); ok {
			snap, err := snapshot.Build(g, "test:"+g.Name())
			if err != nil {
				t.Fatal(err)
			}
			data, err := snap.Encode()
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := snapshot.Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			snapG = loaded.Graph
		}
		for _, pc := range protoCases {
			if !pc.on(g) {
				continue
			}
			factory := pc.make(g)
			var snapFactory func() Protocol
			if snapG != nil {
				snapFactory = pc.make(snapG)
			}
			for _, sc := range schedCases {
				sched := sc.build(g)
				var snapSched Scheduler
				if snapG != nil {
					snapSched = sc.build(snapG)
				}
				for _, drop := range drops {
					for _, maxSteps := range pc.caps {
						for _, every := range pc.everies {
							for seed := uint64(1); seed <= pc.seeds; seed++ {
								name := fmt.Sprintf("%s/%s/%s/drop%v/cap%d/every%d/seed%d",
									g.Name(), pc.tag, sc.tag, drop, maxSteps, every, seed)
								type variant struct {
									res   Result
									r     *xrand.Rand
									obs   *recordingObserver
									meter *telemetry.Counters
								}
								runVariant := func(ref, forceGeneric, noTable, metered bool) variant {
									r := xrand.New(seed)
									p := factory()
									opts := Options{
										MaxSteps:  maxSteps,
										Scheduler: sched,
										DropRate:  drop,
										Reference: forceGeneric,
										NoTable:   noTable,
									}
									var meter *telemetry.Counters
									if metered {
										meter = new(telemetry.Counters)
										opts.Meter = meter
									}
									var obs *recordingObserver
									if every > 0 {
										obs = &recordingObserver{p: p}
										opts.Observer = obs
										opts.ObserveEvery = every
									}
									var res Result
									if ref {
										res = referenceRun(g, p, r, opts)
									} else {
										res = Run(g, p, r, opts)
									}
									return variant{res: res, r: r, obs: obs, meter: meter}
								}
								want := runVariant(true, false, false, false)
								var wantDraws [16]uint64
								for i := range wantDraws {
									wantDraws[i] = want.r.Uint64()
								}
								// Each plan variant runs bare and metered: the
								// telemetry axis must be invisible to results,
								// observers and the random stream.
								variants := []variant{
									runVariant(false, false, false, false), // fused table kernel (when Tabular)
									runVariant(false, false, false, true),  // ... with flight recorder attached
									runVariant(false, false, true, false),  // same scheduler kernel, Step dispatch
									runVariant(false, false, true, true),
									runVariant(false, true, false, false), // generic reference kernel
									runVariant(false, true, false, true),
								}
								for _, v := range variants {
									if v.res != want.res {
										t.Fatalf("%s: results diverged: plan %+v, reference %+v", name, v.res, want.res)
									}
									if every > 0 && !v.obs.equal(want.obs) {
										t.Fatalf("%s: observer sequences diverged:\nplan %v %v\nref  %v %v",
											name, v.obs.ts, v.obs.leaders, want.obs.ts, want.obs.leaders)
									}
									for i, b := range wantDraws {
										if a := v.r.Uint64(); a != b {
											t.Fatalf("%s: post-run RNG stream diverged at draw %d", name, i)
										}
									}
									if v.meter == nil {
										continue
									}
									// The flushed accounting must agree exactly
									// with the run the meter watched.
									s := v.meter.Snapshot()
									if s.StepsExecuted != v.res.Steps {
										t.Fatalf("%s: meter counted %d steps, run took %d", name, s.StepsExecuted, v.res.Steps)
									}
									if wantObs := int64(0); every > 0 {
										wantObs = int64(len(v.obs.ts))
										if s.ObserverCalls != wantObs {
											t.Fatalf("%s: meter counted %d observer calls, want %d", name, s.ObserverCalls, wantObs)
										}
									} else if s.ObserverCalls != 0 {
										t.Fatalf("%s: meter counted %d observer calls with no observer", name, s.ObserverCalls)
									}
									if drop == 0 && s.DropsApplied != 0 {
										t.Fatalf("%s: meter counted %d drops at drop rate 0", name, s.DropsApplied)
									}
									if drop > 0 && v.res.Steps > 100 && s.DropsApplied == 0 {
										t.Fatalf("%s: meter counted no drops over %d steps at drop rate %v", name, v.res.Steps, drop)
									}
									var runs int64
									for _, c := range s.KernelDispatch {
										runs += c
									}
									if runs != 1 || s.ChunksRun == 0 {
										t.Fatalf("%s: dispatch/chunk accounting off: %+v", name, s)
									}
								}
								// Snapshot axis: the revived twin replays the
								// reference run exactly, through the default
								// plan selection (fused kernels included).
								if snapG != nil {
									r := xrand.New(seed)
									p := snapFactory()
									opts := Options{
										MaxSteps:  maxSteps,
										Scheduler: snapSched,
										DropRate:  drop,
									}
									var obs *recordingObserver
									if every > 0 {
										obs = &recordingObserver{p: p}
										opts.Observer = obs
										opts.ObserveEvery = every
									}
									res := Run(snapG, p, r, opts)
									if res != want.res {
										t.Fatalf("%s: snapshot-loaded run diverged: %+v, reference %+v", name, res, want.res)
									}
									if every > 0 && !obs.equal(want.obs) {
										t.Fatalf("%s: snapshot-loaded observer sequence diverged", name)
									}
									for i, b := range wantDraws {
										if a := r.Uint64(); a != b {
											t.Fatalf("%s: snapshot-loaded post-run RNG stream diverged at draw %d", name, i)
										}
									}
								}
								// Batch axis: RunBatch lane i must be byte-identical
								// to the solo plan run seeded SeedFor(seed, i) --
								// Result, observer sequence, post-run stream position
								// and aggregate telemetry. T = 3 covers mid-batch
								// stabilization (lanes stop at different steps), 8
								// does not divide the 512-step chunk, and 1 pins the
								// degenerate batch to the solo path.
								for _, T := range []int{1, 3, 8} {
									soloMeter := new(telemetry.Counters)
									soloRes := make([]Result, T)
									soloObs := make([]*recordingObserver, T)
									soloDraws := make([][16]uint64, T)
									for i := 0; i < T; i++ {
										r := xrand.New(runner.SeedFor(seed, i))
										p := factory()
										opts := Options{
											MaxSteps:  maxSteps,
											Scheduler: sched,
											DropRate:  drop,
											Meter:     soloMeter,
										}
										if every > 0 {
											soloObs[i] = &recordingObserver{p: p}
											opts.Observer = soloObs[i]
											opts.ObserveEvery = every
										}
										soloRes[i] = Run(g, p, r, opts)
										for d := range soloDraws[i] {
											soloDraws[i][d] = r.Uint64()
										}
									}
									batchMeter := new(telemetry.Counters)
									opts := Options{
										MaxSteps:  maxSteps,
										Scheduler: sched,
										DropRate:  drop,
										Meter:     batchMeter,
									}
									if every > 0 {
										opts.ObserveEvery = every
									}
									pl, err := Compile(g, opts)
									if err != nil {
										t.Fatalf("%s/batch%d: %v", name, T, err)
									}
									ps := make([]Protocol, T)
									rs := make([]*xrand.Rand, T)
									var obs []Observer
									if every > 0 {
										obs = make([]Observer, T)
									}
									batchObs := make([]*recordingObserver, T)
									for i := 0; i < T; i++ {
										ps[i] = factory()
										rs[i] = xrand.New(runner.SeedFor(seed, i))
										if every > 0 {
											batchObs[i] = &recordingObserver{p: ps[i]}
											obs[i] = batchObs[i]
										}
									}
									for i, br := range pl.RunBatch(ps, rs, obs) {
										if br.Crashed != "" {
											t.Fatalf("%s/batch%d: lane %d crashed: %s", name, T, i, br.Crashed)
										}
										if br.Result != soloRes[i] {
											t.Fatalf("%s/batch%d: lane %d diverged: batch %+v, solo %+v",
												name, T, i, br.Result, soloRes[i])
										}
										if every > 0 && !batchObs[i].equal(soloObs[i]) {
											t.Fatalf("%s/batch%d: lane %d observer sequences diverged:\nbatch %v %v\nsolo  %v %v",
												name, T, i, batchObs[i].ts, batchObs[i].leaders, soloObs[i].ts, soloObs[i].leaders)
										}
										for d, want := range soloDraws[i] {
											if got := rs[i].Uint64(); got != want {
												t.Fatalf("%s/batch%d: lane %d post-run RNG stream diverged at draw %d", name, T, i, d)
											}
										}
									}
									// Aggregate telemetry must match the solo runs field
									// for field; only the dispatch labels may differ
									// (lockstep lanes tally under ".../table/batch").
									ss, bs := soloMeter.Snapshot(), batchMeter.Snapshot()
									if ss.StepsExecuted != bs.StepsExecuted || ss.ChunksRun != bs.ChunksRun ||
										ss.RNGRefills != bs.RNGRefills || ss.DropsApplied != bs.DropsApplied ||
										ss.ObserverCalls != bs.ObserverCalls {
										t.Fatalf("%s/batch%d: telemetry diverged:\nsolo  %+v\nbatch %+v", name, T, ss, bs)
									}
									var soloRuns, batchRuns int64
									for _, c := range ss.KernelDispatch {
										soloRuns += c
									}
									for _, c := range bs.KernelDispatch {
										batchRuns += c
									}
									if soloRuns != int64(T) || batchRuns != int64(T) {
										t.Fatalf("%s/batch%d: dispatch run counts off: solo %d, batch %d", name, T, soloRuns, batchRuns)
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

func TestOrderedPairMatchesSampleEdge(t *testing.T) {
	g := graph.Lollipop(5, 4)
	a := xrand.New(123)
	b := xrand.New(123)
	for i := 0; i < 2000; i++ {
		u1, v1 := g.SampleEdge(a)
		u2, v2 := g.OrderedPair(b.Uintn(uint64(2 * g.M())))
		if u1 != u2 || v1 != v2 {
			t.Fatalf("draw %d: SampleEdge (%d,%d) != OrderedPair (%d,%d)", i, u1, v1, u2, v2)
		}
	}
}
