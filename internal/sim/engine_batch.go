// Batched lockstep chunk kernels. The fused kernels in engine_table.go
// execute one trial at a time, and BENCH_sim.json shows them
// latency-bound: every step is a serial chain (block load → Lemire
// multiply → table lookup → dependent byte stores), so the core idles
// on dependencies. The kernels here run T replicate trials of the same
// plan in lockstep — per global step, one step of every still-active
// trial — so the chains of independent trials overlap in the pipeline.
//
// Layout is structure-of-arrays, trial-major: one contiguous [T·n]uint8
// state allocation (lane l owns soa[l·n : (l+1)·n]), one L1-resident
// transition table shared by every lane (batch setup verifies the lanes'
// tables are content-identical), and per-trial counter lanes (leaders,
// stability gap, drop tally). Stabilized lanes leave the active roster
// immediately — the early-exit active list — so they stop consuming RNG
// and step work without perturbing the survivors.
//
// Determinism contract, extended to the batch axis: each lane draws from
// its OWN generator and rngBlock, so lane l consumes exactly the uint64
// stream the solo run with the same seed would — same values, same
// refill points, same rewind on finish. The table is the only state
// shared across lanes; sampling never is. Batch trial l is therefore
// byte-identical (Result, observer sequence, telemetry step totals) to
// the solo trial with the same seed, which engine_test.go asserts along
// the matrix's batch axis.

package sim

import (
	"math/bits"

	"popgraph/internal/core"
	"popgraph/internal/graph"
	"popgraph/internal/xrand"
)

// tableBatch is the lockstep state shared by every batched fused
// kernel: the SoA state block, the shared transition cells, per-lane
// generators/blocks/counters, and the active/retired rosters. Lane
// indices are positions in the RunBatch argument slices; crashed lanes
// simply never enter the active roster and their slots stay zero.
type tableBatch struct {
	n     int
	kk    uint32
	cells []uint32
	soa   []uint8
	tabs  []Tabular
	rs    []*xrand.Rand
	blks  []rngBlock
	// leaders and gaps are the per-lane incrementally maintained
	// counters mirrored from tableMachine; a lane is stable iff its gap
	// is 0.
	leaders []int
	gaps    []int
	drops   []int64
	// stopAt records the global step at which a lane stabilized.
	stopAt []int64
	// active lists live lanes in ascending order; retired collects the
	// lanes that stabilized during the current window, in stabilization
	// order, for the driver to drain. Both live in preallocated backing
	// arrays so roster surgery never allocates on the hot path.
	active  []int32
	retired []int32
	drop    float64
}

// newTableBatch builds the lockstep core over the given lanes, which
// must already be Reset and verified Tabular with content-identical
// tables (newBatchKernel does both).
func newTableBatch(pl *ExecPlan, tabs []Tabular, rs []*xrand.Rand, lanes []int32) *tableBatch {
	n := pl.g.N()
	T := len(rs)
	ref := tabs[lanes[0]].Table()
	b := &tableBatch{
		n:       n,
		kk:      uint32(ref.K()),
		cells:   ref.Cells(),
		soa:     make([]uint8, T*n),
		tabs:    tabs,
		rs:      rs,
		blks:    make([]rngBlock, T),
		leaders: make([]int, T),
		gaps:    make([]int, T),
		drops:   make([]int64, T),
		stopAt:  make([]int64, T),
		active:  make([]int32, len(lanes), T),
		retired: make([]int32, 0, T),
		drop:    pl.drop,
	}
	copy(b.active, lanes)
	for _, l := range lanes {
		b.blks[l] = newRngBlock()
		st := tabs[l].TableStates()
		copy(b.soa[int(l)*n:(int(l)+1)*n], st)
		b.leaders[l], b.gaps[l] = tabs[l].Table().Counters(st)
	}
	return b
}

// retire removes active[a] from the roster and records its
// stabilization step; the driver drains the retired list after the
// window. Removal is an ordered copy-down, not append, so the roster
// stays ascending and the operation allocation-free.
//
//popcheck:kernel
func (b *tableBatch) retire(a int, step int64) {
	lane := b.active[a]
	b.stopAt[lane] = step
	b.retired = b.retired[:len(b.retired)+1]
	b.retired[len(b.retired)-1] = lane
	copy(b.active[a:], b.active[a+1:])
	b.active = b.active[:len(b.active)-1]
}

// syncLane copies a lane's SoA column back into the protocol's own
// state array (Tabular.TableStates aliases it) and reconciles its
// counters — the batch analogue of kernel.sync, invoked by the driver
// before observer callbacks and at retirement. Unlike the solo fused
// kernels, which mutate the protocol array in place, batch lanes run on
// the SoA copy, so protocol accessors are accurate only at sync points.
func (b *tableBatch) syncLane(lane int32) {
	copy(b.tabs[lane].TableStates(), b.soa[int(lane)*b.n:int(lane+1)*b.n])
	b.tabs[lane].ReloadCounters(b.leaders[lane], b.gaps[lane])
}

// finishLane rewinds a lane's prefetched randomness, leaving its
// generator exactly where the solo run's finish would.
func (b *tableBatch) finishLane(lane int32) { b.blks[lane].finish(b.rs[lane]) }

// takeRetired returns the lanes that stabilized during the last window
// and resets the list for the next one.
func (b *tableBatch) takeRetired() []int32 {
	r := b.retired
	b.retired = b.retired[:0]
	return r
}

// batchKernel is a lockstep chunk runner: run executes global steps
// t0+1 .. t0+k, one step per still-active lane per global step,
// retiring lanes the moment they stabilize.
type batchKernel interface {
	run(t0, k int64)
	core() *tableBatch
}

// denseBatchKernel is the lockstep variant of denseTableKernel: one
// Lemire reduction over the 2m ordered pairs per lane-step, branch-free
// pair unpack, shared table.
type denseBatchKernel struct {
	tableBatch
	edges  []int64
	twoM   uint64
	thresh uint64
}

func newDenseBatchKernel(g *graph.Dense, b *tableBatch) *denseBatchKernel {
	twoM := uint64(2 * g.M())
	return &denseBatchKernel{
		tableBatch: *b,
		edges:      g.PackedEdges(),
		twoM:       twoM,
		thresh:     -twoM % twoM,
	}
}

func (kn *denseBatchKernel) core() *tableBatch { return &kn.tableBatch }

// run walks the roster lane-major: each live lane executes the whole
// window in the tight solo loop shape (runLane), with every hot value
// hoisted into locals for the window. Lanes are independent between
// sync points, so lane-major scheduling is draw-for-draw identical to
// per-step interleaving — and measurably faster: the interleaved form
// reloads per-lane state every lane-step and spills what the solo
// kernels keep in registers.
//
//popcheck:kernel
func (kn *denseBatchKernel) run(t0, k int64) {
	for a := 0; a < len(kn.active); {
		a = kn.runLane(a, t0, k)
	}
}

// runLane executes one window for the lane at roster position a in the
// scalar solo shape, retiring it on stabilization. Returns the position
// the roster walk continues from.
//
//popcheck:kernel
func (kn *denseBatchKernel) runLane(a int, t0, k int64) int {
	cells, kk, n := kn.cells, kn.kk, kn.n
	edges, twoM, thresh, drop := kn.edges, kn.twoM, kn.thresh, kn.drop
	lane := int(kn.active[a])
	blk := &kn.blks[lane]
	r := kn.rs[lane]
	states := kn.soa[lane*n : lane*n+n]
	leaders, gap := kn.leaders[lane], kn.gaps[lane]
	drops := kn.drops[lane]
	stopped := int64(0)
	for i := int64(1); i <= k; i++ {
		hi, lo := bits.Mul64(blk.next(r), twoM)
		for lo < thresh {
			hi, lo = bits.Mul64(blk.next(r), twoM)
		}
		if drop == 0 || xrand.Float64From(blk.next(r)) >= drop {
			e := uint64(edges[hi>>1])
			eu, ew := e>>32, e&0xffffffff
			swap := (eu ^ ew) & -(hi & 1)
			u, v := int(eu^swap), int(ew^swap)
			c := cells[uint32(states[u])*kk+uint32(states[v])]
			states[u], states[v] = uint8(c>>8), uint8(c)
			leaders += int(c>>16&0xff) - core.TableDeltaBias
			gap += int(c>>24) - core.TableDeltaBias
		} else {
			drops++
		}
		if gap == 0 {
			stopped = t0 + i
			break
		}
	}
	kn.leaders[lane], kn.gaps[lane], kn.drops[lane] = leaders, gap, drops
	if stopped != 0 {
		kn.retire(a, stopped)
		return a
	}
	return a + 1
}

// cliqueBatchKernel is the lockstep variant of cliqueTableKernel: two
// Lemire draws per lane-step, shared table.
type cliqueBatchKernel struct {
	tableBatch
	nn       uint64
	n1       uint64
	threshN  uint64
	threshN1 uint64
}

func newCliqueBatchKernel(g graph.Clique, b *tableBatch) *cliqueBatchKernel {
	nn := uint64(g.N())
	n1 := nn - 1
	return &cliqueBatchKernel{
		tableBatch: *b,
		nn:         nn,
		n1:         n1,
		threshN:    -nn % nn,
		threshN1:   -n1 % n1,
	}
}

func (kn *cliqueBatchKernel) core() *tableBatch { return &kn.tableBatch }

// run walks the roster lane-major; see denseBatchKernel.run for why
// this beats per-step interleaving.
//
//popcheck:kernel
func (kn *cliqueBatchKernel) run(t0, k int64) {
	for a := 0; a < len(kn.active); {
		a = kn.runLane(a, t0, k)
	}
}

//popcheck:kernel
func (kn *cliqueBatchKernel) runLane(a int, t0, k int64) int {
	cells, kk, n := kn.cells, kn.kk, kn.n
	nn, n1, threshN, threshN1, drop := kn.nn, kn.n1, kn.threshN, kn.threshN1, kn.drop
	lane := int(kn.active[a])
	blk := &kn.blks[lane]
	r := kn.rs[lane]
	states := kn.soa[lane*n : lane*n+n]
	leaders, gap := kn.leaders[lane], kn.gaps[lane]
	drops := kn.drops[lane]
	stopped := int64(0)
	for i := int64(1); i <= k; i++ {
		hi, lo := bits.Mul64(blk.next(r), nn)
		for lo < threshN {
			hi, lo = bits.Mul64(blk.next(r), nn)
		}
		u := int(hi)
		hi, lo = bits.Mul64(blk.next(r), n1)
		for lo < threshN1 {
			hi, lo = bits.Mul64(blk.next(r), n1)
		}
		v := int(hi)
		if v >= u {
			v++
		}
		if drop == 0 || xrand.Float64From(blk.next(r)) >= drop {
			c := cells[uint32(states[u])*kk+uint32(states[v])]
			states[u], states[v] = uint8(c>>8), uint8(c)
			leaders += int(c>>16&0xff) - core.TableDeltaBias
			gap += int(c>>24) - core.TableDeltaBias
		} else {
			drops++
		}
		if gap == 0 {
			stopped = t0 + i
			break
		}
	}
	kn.leaders[lane], kn.gaps[lane], kn.drops[lane] = leaders, gap, drops
	if stopped != 0 {
		kn.retire(a, stopped)
		return a
	}
	return a + 1
}

// weightedBatchKernel is the lockstep variant of weightedTableKernel:
// alias-table edge draw, direction flip, shared table.
type weightedBatchKernel struct {
	tableBatch
	pairs  []int64
	prob   []float64
	alias  []int32
	m      uint64
	thresh uint64
}

func newWeightedBatchKernel(s *Weighted, b *tableBatch) *weightedBatchKernel {
	prob, alias := s.alias.Table()
	m := uint64(len(prob))
	return &weightedBatchKernel{
		tableBatch: *b,
		pairs:      s.pairs,
		prob:       prob,
		alias:      alias,
		m:          m,
		thresh:     -m % m,
	}
}

func (kn *weightedBatchKernel) core() *tableBatch { return &kn.tableBatch }

// run walks the roster lane-major; see denseBatchKernel.run for why
// this beats per-step interleaving.
//
//popcheck:kernel
func (kn *weightedBatchKernel) run(t0, k int64) {
	for a := 0; a < len(kn.active); {
		a = kn.runLane(a, t0, k)
	}
}

//popcheck:kernel
func (kn *weightedBatchKernel) runLane(a int, t0, k int64) int {
	cells, kk, n := kn.cells, kn.kk, kn.n
	pairs, prob, alias, m, thresh, drop := kn.pairs, kn.prob, kn.alias, kn.m, kn.thresh, kn.drop
	lane := int(kn.active[a])
	blk := &kn.blks[lane]
	r := kn.rs[lane]
	states := kn.soa[lane*n : lane*n+n]
	leaders, gap := kn.leaders[lane], kn.gaps[lane]
	drops := kn.drops[lane]
	stopped := int64(0)
	for i := int64(1); i <= k; i++ {
		hi, lo := bits.Mul64(blk.next(r), m)
		for lo < thresh {
			hi, lo = bits.Mul64(blk.next(r), m)
		}
		col := int(hi)
		if xrand.Float64From(blk.next(r)) >= prob[col] {
			col = int(alias[col])
		}
		e := pairs[col]
		u, v := int(e>>32), int(e&0xffffffff)
		if blk.next(r)&1 == 1 {
			u, v = v, u
		}
		if drop == 0 || xrand.Float64From(blk.next(r)) >= drop {
			c := cells[uint32(states[u])*kk+uint32(states[v])]
			states[u], states[v] = uint8(c>>8), uint8(c)
			leaders += int(c>>16&0xff) - core.TableDeltaBias
			gap += int(c>>24) - core.TableDeltaBias
		} else {
			drops++
		}
		if gap == 0 {
			stopped = t0 + i
			break
		}
	}
	kn.leaders[lane], kn.gaps[lane], kn.drops[lane] = leaders, gap, drops
	if stopped != 0 {
		kn.retire(a, stopped)
		return a
	}
	return a + 1
}
