// Pluggable interaction schedulers. The paper's model fixes one policy —
// sample an ordered pair of adjacent nodes uniformly among all 2m — but
// its running-time bounds are parameterized by graph structure, so the
// interesting empirical territory is scenario diversity: skewed contact
// rates, asynchronous node clocks, edges that flap on and off. A
// Scheduler is an interaction-selection policy bound to one graph; Run
// takes it through Options.Scheduler.
//
// Determinism contract: a scheduler draws all randomness from the *Rand
// values it is handed (construction-time draws from the constructor's
// generator, per-step draws from the run's), never from global state, so
// a fixed seed reproduces the interaction sequence exactly. Construction
// may precompute immutable tables (alias tables, degree sums); all
// mutable per-run state lives in the Source returned by Begin, so one
// Scheduler value can serve concurrently executing trials.
//
// Plan compilation (plan.go) recognizes scheduler types: Uniform (or a
// nil Options.Scheduler), Weighted and NodeClock each compile to a
// monomorphized fast kernel (engine.go) consuming the identical random
// stream as the generic Source loop — plugging in Uniform explicitly is
// byte-identical to leaving Options.Scheduler nil, and a weighted or
// node-clock run is byte-identical to driving the scheduler's Source
// by hand. Churn keeps per-run mutable state and runs on the generic
// kernel.

package sim

import (
	"fmt"
	"math"

	"popgraph/internal/graph"
	"popgraph/internal/xrand"
)

// Scheduler is an interaction-selection policy bound to a graph. Name
// labels the policy in result logs and benchmark reports; Begin starts
// one run, returning the per-run pair stream.
type Scheduler interface {
	// Name returns the policy's canonical spec-style name, e.g.
	// "uniform", "weighted:exp", "churn:64:16".
	Name() string
	// Begin returns a fresh Source holding any mutable per-run state;
	// stateless policies may return a shared immutable value. r is the
	// run's generator, available for initialization draws.
	Begin(r *xrand.Rand) Source
}

// Source is the per-run interaction stream of a Scheduler. Next returns
// the ordered pair interacting at step t (1-based, strictly increasing
// across calls), or ok = false when the sampled contact is suppressed —
// the step still counts, mirroring how the drop-rate knob consumes time
// without changing state.
type Source interface {
	Next(t int64, r *xrand.Rand) (u, v int, ok bool)
}

// samplerSource adapts an EdgeSampler (a graph, or a test's scripted
// sampler) to the Source interface; every contact is delivered.
type samplerSource struct{ s EdgeSampler }

func (s samplerSource) Next(_ int64, r *xrand.Rand) (int, int, bool) {
	u, v := s.s.SampleEdge(r)
	return u, v, true
}

// Uniform is the paper's scheduler: ordered pairs of adjacent nodes
// uniform among all 2m. Run treats a Uniform scheduler (graph-bound or
// the zero value, by value or pointer) exactly like a nil
// Options.Scheduler, so the specialized fast loops stay engaged and the
// random stream is unchanged. G is only needed by code that consumes
// the Source directly through Begin, outside Run.
type Uniform struct{ G graph.Graph }

// Name returns "uniform".
func (Uniform) Name() string { return "uniform" }

// Begin returns the graph's own SampleEdge stream, honoring the
// Scheduler contract for generic callers; Run never gets here (it
// special-cases Uniform onto the fast loops). It panics on a zero-value
// Uniform, which has no graph to sample.
func (u Uniform) Begin(*xrand.Rand) Source {
	if u.G == nil {
		panic("sim: Uniform.Begin on a graph-less Uniform{}; bind a graph or pass the scheduler to Run, which samples the run's graph directly")
	}
	return samplerSource{u.G}
}

// Weighted samples undirected edges proportionally to fixed per-edge
// rates via an alias table (two draws), then orients the pair with a
// fair coin — modeling heterogeneous contact frequencies. Stateless per
// run; construction is O(m).
type Weighted struct {
	name  string
	pairs []int64 // packed u<<32|w, u < w, in ForEachEdge order
	alias *xrand.Alias
}

// NewWeighted builds a weighted scheduler for g. rates holds one
// nonnegative finite rate per undirected edge, indexed in ForEachEdge
// order, with a positive sum; name labels the policy in logs.
func NewWeighted(g graph.Graph, name string, rates []float64) (*Weighted, error) {
	if len(rates) != g.M() {
		return nil, fmt.Errorf("sim: weighted scheduler for %q wants %d edge rates, got %d",
			g.Name(), g.M(), len(rates))
	}
	alias, err := xrand.NewAlias(rates)
	if err != nil {
		return nil, fmt.Errorf("sim: weighted scheduler for %q: %w", g.Name(), err)
	}
	pairs := make([]int64, 0, g.M())
	g.ForEachEdge(func(u, w int) {
		pairs = append(pairs, int64(u)<<32|int64(w))
	})
	return &Weighted{name: name, pairs: pairs, alias: alias}, nil
}

// NewWeightedFromAlias builds a weighted scheduler around a prebuilt
// alias table (one column per undirected edge in ForEachEdge order) —
// the snapshot-consumption path: a table revived from a binary
// snapshot replays the exact draw sequence of the NewWeighted-built
// original, so a preprocessed weighted run is byte-identical to the
// run that built its rates in process.
func NewWeightedFromAlias(g graph.Graph, name string, alias *xrand.Alias) (*Weighted, error) {
	if alias == nil {
		return nil, fmt.Errorf("sim: weighted scheduler for %q: nil alias table", g.Name())
	}
	if alias.N() != g.M() {
		return nil, fmt.Errorf("sim: weighted scheduler for %q wants %d alias columns, got %d",
			g.Name(), g.M(), alias.N())
	}
	pairs := make([]int64, 0, g.M())
	g.ForEachEdge(func(u, w int) {
		pairs = append(pairs, int64(u)<<32|int64(w))
	})
	return &Weighted{name: name, pairs: pairs, alias: alias}, nil
}

// Name returns the label passed to NewWeighted.
func (s *Weighted) Name() string { return s.name }

// Begin returns the scheduler itself: no mutable per-run state.
func (s *Weighted) Begin(*xrand.Rand) Source { return s }

// Next samples an edge from the alias table and orients it uniformly.
func (s *Weighted) Next(_ int64, r *xrand.Rand) (int, int, bool) {
	e := s.pairs[s.alias.Sample(r)]
	u, w := int(e>>32), int(e&0xffffffff)
	if r.Bool() {
		return w, u, true
	}
	return u, w, true
}

// NodeClock is the asynchronous-clock view common in the
// population-protocols literature: each node's Poisson clock ticks at
// rate proportional to its degree; on a tick the node initiates with a
// uniformly random neighbor. The induced distribution over ordered
// pairs is exactly the uniform scheduler's (deg(u)/2m · 1/deg(u) =
// 1/2m), realized through a node-centric draw sequence — a distinct
// random stream with identical statistics, which experiments use as a
// scheduler-robustness check.
type NodeClock struct {
	g     graph.Graph
	alias *xrand.Alias
}

// NewNodeClock builds a node-clock scheduler for g.
func NewNodeClock(g graph.Graph) (*NodeClock, error) {
	n := g.N()
	deg := make([]float64, n)
	for v := 0; v < n; v++ {
		deg[v] = float64(g.Degree(v))
	}
	alias, err := xrand.NewAlias(deg)
	if err != nil {
		return nil, fmt.Errorf("sim: node-clock scheduler for %q: %w", g.Name(), err)
	}
	return &NodeClock{g: g, alias: alias}, nil
}

// Name returns "node-clock".
func (s *NodeClock) Name() string { return "node-clock" }

// Begin returns the scheduler itself: no mutable per-run state.
func (s *NodeClock) Begin(*xrand.Rand) Source { return s }

// Next picks an initiator proportionally to degree, then a uniform
// neighbor as responder.
func (s *NodeClock) Next(_ int64, r *xrand.Rand) (int, int, bool) {
	u := s.alias.Sample(r)
	v := s.g.NeighborAt(u, r.Intn(s.g.Degree(u)))
	return u, v, true
}

// Churn models link instability: every edge independently alternates
// between an up state and a down state with geometrically distributed
// burst lengths (mean UpLen and DownLen steps). Pairs are sampled like
// the uniform scheduler, but a contact over a currently-down edge is
// suppressed — the step counts, no interaction happens. This
// generalizes the i.i.d. drop-rate knob (bursts of mean length 1 ≈
// independent drops with rate DownLen/(UpLen+DownLen)) to correlated,
// bursty failures.
//
// Edge states evolve lazily: a per-run map keyed by packed edge holds
// (state, last step touched), and on each contact the edge's two-state
// Markov chain is advanced in closed form by the steps elapsed since —
// one Float64 draw per contact, O(1) per step, no O(m) per-step sweep.
type Churn struct {
	g              graph.Graph
	upLen, downLen float64
	a, b           float64 // per-step flip probabilities: up→down, down→up
}

// NewChurn builds a churn scheduler for g with mean burst lengths
// upLen, downLen (both >= 1 and finite).
func NewChurn(g graph.Graph, upLen, downLen float64) (*Churn, error) {
	if !(upLen >= 1) || math.IsInf(upLen, 0) || !(downLen >= 1) || math.IsInf(downLen, 0) {
		return nil, fmt.Errorf("sim: churn scheduler for %q: burst lengths must be finite and >= 1, got up=%v down=%v",
			g.Name(), upLen, downLen)
	}
	return &Churn{g: g, upLen: upLen, downLen: downLen, a: 1 / upLen, b: 1 / downLen}, nil
}

// Name returns "churn:UP:DOWN" with the mean burst lengths.
func (s *Churn) Name() string {
	return fmt.Sprintf("churn:%s:%s", formatBurst(s.upLen), formatBurst(s.downLen))
}

func formatBurst(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Begin returns a fresh source: per-run edge states start from the
// stationary distribution, drawn lazily on first contact.
func (s *Churn) Begin(*xrand.Rand) Source {
	return &churnSource{sched: s, state: make(map[int64]churnEdge)}
}

type churnEdge struct {
	up bool
	t  int64 // step of the last contact that resolved this edge's state
}

type churnSource struct {
	sched *Churn
	state map[int64]churnEdge
}

// Next samples a uniform ordered pair, then resolves whether its edge is
// currently up by advancing the edge's on/off chain to step t.
func (c *churnSource) Next(t int64, r *xrand.Rand) (int, int, bool) {
	s := c.sched
	u, v := s.g.SampleEdge(r)
	lo, hi := u, v
	if lo > hi {
		lo, hi = hi, lo
	}
	key := int64(lo)<<32 | int64(hi)
	// Probability the edge is up at step t. Stationary on first contact;
	// otherwise the k-step transition of the two-state chain:
	// P(up) = π + (1−a−b)^k · (±deviation), π = b/(a+b).
	pi := s.b / (s.a + s.b)
	pUp := pi
	if e, seen := c.state[key]; seen {
		decay := math.Pow(1-s.a-s.b, float64(t-e.t))
		if e.up {
			pUp = pi + decay*(1-pi)
		} else {
			pUp = pi * (1 - decay)
		}
	}
	up := r.Float64() < pUp
	c.state[key] = churnEdge{up: up, t: t}
	return u, v, up
}
