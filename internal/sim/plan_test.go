package sim_test

import (
	"math"
	"strings"
	"testing"

	"popgraph/internal/graph"
	"popgraph/internal/protocols/beauquier"
	"popgraph/internal/protocols/idelect"
	"popgraph/internal/protocols/majority"
	. "popgraph/internal/sim"
	"popgraph/internal/xrand"
)

// TestCompileValidation — every input the old Run panicked on — and the
// scheduler/graph mismatches it silently accepted — must come back as a
// compile error naming the problem.
func TestCompileValidation(t *testing.T) {
	g := graph.Torus2D(3, 4)
	weightedFor := func(h graph.Graph) Scheduler {
		rates := make([]float64, h.M())
		for i := range rates {
			rates[i] = 1
		}
		s, err := NewWeighted(h, "w", rates)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	nodeClockFor := func(h graph.Graph) Scheduler {
		s, err := NewNodeClock(h)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	single, err := graph.NewDense(1, nil, "single")
	if err != nil {
		t.Fatalf("1-node graph rejected by constructor: %v", err)
	}
	cases := []struct {
		name string
		g    graph.Graph
		opts Options
		want string // substring of the error
	}{
		{"nil-graph", nil, Options{}, "nil graph"},
		{"tiny-graph", single, Options{}, "too small"},
		{"drop-one", g, Options{DropRate: 1}, "drop rate"},
		{"drop-negative", g, Options{DropRate: -0.1}, "drop rate"},
		{"drop-nan", g, Options{DropRate: math.NaN()}, "drop rate"},
		{"weighted-wrong-graph", g, Options{Scheduler: weightedFor(graph.Path(3))}, "built for"},
		{"node-clock-wrong-graph", g, Options{Scheduler: nodeClockFor(graph.Path(3))}, "built for"},
		// Binding checks must hold on the reference and sampler paths
		// too: a forced-generic run would otherwise feed out-of-range
		// node ids from the mismatched scheduler straight to the protocol.
		{"weighted-wrong-graph-reference", g, Options{Scheduler: weightedFor(graph.Path(3)), Reference: true}, "built for"},
		{"node-clock-wrong-graph-reference", g, Options{Scheduler: nodeClockFor(graph.Path(3)), Reference: true}, "built for"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Compile(c.g, c.opts); err == nil {
				t.Fatalf("Compile accepted %+v", c.opts)
			} else if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
			if _, err := RunE(c.g, beauquier.New(), xrand.New(1), c.opts); err == nil {
				t.Fatal("RunE accepted what Compile rejected")
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("Run did not panic on what Compile rejected")
					}
				}()
				Run(c.g, beauquier.New(), xrand.New(1), c.opts)
			}()
		})
	}
}

// TestCompileEngineSelection — the plan must pick the specialized kernel
// whenever one exists for the scheduler × graph shape — regardless of
// observers and drop rates, which no longer force the generic loop —
// and fall back to the generic reference kernel for stateful
// schedulers, explicit samplers and forced-reference runs.
func TestCompileEngineSelection(t *testing.T) {
	torus := graph.Torus2D(3, 4)
	clique := graph.NewClique(8)
	weighted, err := NewWeighted(torus, "w", func() []float64 {
		r := make([]float64, torus.M())
		for i := range r {
			r[i] = float64(i + 1)
		}
		return r
	}())
	if err != nil {
		t.Fatal(err)
	}
	nodeClock, err := NewNodeClock(torus)
	if err != nil {
		t.Fatal(err)
	}
	churn, err := NewChurn(torus, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	obs := &countingObserver{}
	cases := []struct {
		name string
		g    graph.Graph
		opts Options
		want string
	}{
		{"dense-uniform", torus, Options{}, "dense-uniform"},
		{"clique-uniform", clique, Options{}, "clique-uniform"},
		{"explicit-uniform", torus, Options{Scheduler: Uniform{}}, "dense-uniform"},
		{"dense-with-drop", torus, Options{DropRate: 0.5}, "dense-uniform"},
		{"dense-with-observer", torus, Options{Observer: obs, ObserveEvery: 3}, "dense-uniform"},
		{"weighted", torus, Options{Scheduler: weighted}, "weighted"},
		{"weighted-drop-observer", torus, Options{Scheduler: weighted, DropRate: 0.2, Observer: obs}, "weighted"},
		{"node-clock", torus, Options{Scheduler: nodeClock}, "node-clock"},
		{"churn-is-generic", torus, Options{Scheduler: churn}, "generic"},
		{"sampler-forces-generic", torus, Options{Sampler: torus}, "generic"},
		{"reference-forces-generic", torus, Options{Reference: true}, "generic"},
		{"reference-weighted", torus, Options{Scheduler: weighted, Reference: true}, "generic"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pl, err := Compile(c.g, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			if pl.Engine() != c.want {
				t.Fatalf("engine %q, want %q", pl.Engine(), c.want)
			}
		})
	}
}

// TestProtocolEngineSelection — the protocol axis of kernel selection.
// A Tabular protocol fuses into the table variant of every specialized
// scheduler kernel; Options.NoTable, the generic kernel (churn,
// samplers, Reference) and non-Tabular protocols keep Step dispatch.
func TestProtocolEngineSelection(t *testing.T) {
	torus := graph.Torus2D(3, 4)
	churn, err := NewChurn(torus, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	nodeClock, err := NewNodeClock(torus)
	if err != nil {
		t.Fatal(err)
	}
	six := beauquier.New()
	cases := []struct {
		name string
		g    graph.Graph
		opts Options
		p    Protocol
		want string
	}{
		{"six-state-dense", torus, Options{}, six, "table"},
		{"six-state-clique", graph.NewClique(8), Options{}, six, "table"},
		{"six-state-node-clock", torus, Options{Scheduler: nodeClock}, six, "table"},
		{"no-table-forces-step", torus, Options{NoTable: true}, six, "step"},
		{"reference-forces-step", torus, Options{Reference: true}, six, "step"},
		{"sampler-forces-step", torus, Options{Sampler: torus}, six, "step"},
		{"churn-forces-step", torus, Options{Scheduler: churn}, six, "step"},
		{"non-tabular-protocol", torus, Options{}, idelect.New(), "step"},
		{"tie-majority-has-no-table", torus, Options{},
			majority.New(append(make([]bool, 6), true, true, true, true, true, true)), "step"},
		{"majority-dense", torus, Options{},
			majority.New(append(make([]bool, 5), true, true, true, true, true, true, true)), "table"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pl, err := Compile(c.g, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := pl.ProtocolEngine(c.p); got != c.want {
				t.Fatalf("protocol engine %q, want %q", got, c.want)
			}
		})
	}
}

// TestPlanMaxStepsResolution — the compiled plan resolves the default
// cap once, at compile time.
func TestPlanMaxStepsResolution(t *testing.T) {
	g := graph.NewClique(16)
	pl, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.MaxSteps() != DefaultMaxSteps(16) {
		t.Fatalf("default cap %d, want %d", pl.MaxSteps(), DefaultMaxSteps(16))
	}
	pl, err = Compile(g, Options{MaxSteps: 123})
	if err != nil {
		t.Fatal(err)
	}
	if pl.MaxSteps() != 123 {
		t.Fatalf("explicit cap %d, want 123", pl.MaxSteps())
	}
}

// TestPlanIsReusable — a plan holds no per-run state — repeated Run
// calls from the same seed replay identically, including for schedulers
// with per-run mutable sources (churn) and for runs sharing one
// generator sequentially.
func TestPlanIsReusable(t *testing.T) {
	g := graph.Torus2D(3, 4)
	churn, err := NewChurn(g, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{MaxSteps: 2000},
		{MaxSteps: 2000, Scheduler: churn, DropRate: 0.1},
	} {
		pl, err := Compile(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		a := pl.Run(beauquier.New(), xrand.New(9))
		b := pl.Run(beauquier.New(), xrand.New(9))
		if a != b {
			t.Fatalf("engine %s: same-seed runs diverged: %+v vs %+v", pl.Engine(), a, b)
		}
		// One generator across consecutive runs: the rewind at the end of
		// each run must leave the stream exactly where the reference loop
		// would, so later runs agree too.
		rPlan, rRef := xrand.New(31), xrand.New(31)
		for round := 0; round < 3; round++ {
			refOpts := opts
			refOpts.Reference = true
			pr := pl.Run(beauquier.New(), rPlan)
			rr := Run(g, beauquier.New(), rRef, refOpts)
			if pr != rr {
				t.Fatalf("engine %s round %d: %+v != %+v", pl.Engine(), round, pr, rr)
			}
		}
	}
}
