package sim_test

import (
	"testing"

	"popgraph/internal/graph"
	"popgraph/internal/protocols/beauquier"
	"popgraph/internal/protocols/majority"
	. "popgraph/internal/sim"
	"popgraph/internal/xrand"
)

// fuzzGraph derives a small connected graph deterministically from sel.
func fuzzGraph(sel uint64) graph.Graph {
	a := int(sel >> 2 % 13)
	b := int(sel >> 6 % 7)
	switch sel % 4 {
	case 0:
		return graph.NewClique(3 + a)
	case 1:
		return graph.Cycle(3 + a)
	case 2:
		return graph.Torus2D(3+a%4, 3+b%4)
	default:
		return graph.Lollipop(3+a%6, 1+b)
	}
}

// fuzzProtocol derives a Tabular protocol (and a fresh-instance factory)
// from sel for an n-node graph.
func fuzzProtocol(sel uint64, n int) func() Tabular {
	if sel%2 == 0 {
		return func() Tabular { return beauquier.New() }
	}
	ones := 1 + int(sel>>1)%(n-1)
	if 2*ones == n {
		ones++ // never a tie; ones < n still holds since n >= 3 here
	}
	inputs := make([]bool, n)
	for i := 0; i < ones; i++ {
		inputs[i] = true
	}
	return func() Tabular { return majority.New(inputs) }
}

// FuzzTableEquivalence fuzzes the protocol-compilation layer: a random
// small graph, a random Tabular protocol and a random interaction
// script must behave byte-identically whether transitions execute
// through the hand-written Step or through the compiled transition
// table — per-step states and counters under a scripted drive, and
// Results, outputs, counters and post-run generator state under full
// fused vs interface-dispatch vs reference-loop runs.
func FuzzTableEquivalence(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint16(700), uint8(0))
	f.Add(uint64(1), uint64(2), uint16(513), uint8(1))
	f.Add(uint64(38), uint64(3), uint16(64), uint8(2))
	f.Add(uint64(103), uint64(4), uint16(2000), uint8(3))
	f.Fuzz(func(t *testing.T, gsel, seed uint64, steps uint16, dropSel uint8) {
		g := fuzzGraph(gsel)
		n := g.N()
		factory := fuzzProtocol(gsel>>8, n)
		script := int64(steps)%2048 + 1

		// Part 1: scripted drive. One instance steps through the
		// hand-written transition, the other through TransitionTable.Apply
		// with incrementally maintained counters; every step must agree on
		// states, the leader count and the stability verdict.
		r := xrand.New(seed)
		pStep, pTab := factory(), factory()
		pStep.Reset(g, xrand.New(seed))
		pTab.Reset(g, xrand.New(seed))
		tab := pTab.Table()
		if tab == nil {
			t.Fatal("fuzzed protocol has no table")
		}
		states := pTab.TableStates()
		leaders, gap := tab.Counters(states)
		for i := int64(0); i < script; i++ {
			u, v := g.SampleEdge(r)
			pStep.Step(u, v)
			dl, dg := tab.Apply(states, u, v)
			leaders += dl
			gap += dg
			if leaders != pStep.Leaders() {
				t.Fatalf("step %d (%d,%d): table leaders %d, Step leaders %d", i, u, v, leaders, pStep.Leaders())
			}
			if (gap == 0) != pStep.Stable() {
				t.Fatalf("step %d (%d,%d): table gap %d (stable=%v), Step Stable %v",
					i, u, v, gap, gap == 0, pStep.Stable())
			}
			for w := 0; w < n; w++ {
				if states[w] != pStep.TableStates()[w] {
					t.Fatalf("step %d (%d,%d): node %d state %d (table) vs %d (Step)",
						i, u, v, w, states[w], pStep.TableStates()[w])
				}
			}
		}
		if sl, sg := tab.Counters(states); sl != leaders || sg != gap {
			t.Fatalf("incremental counters (%d,%d) drifted from scan (%d,%d)", leaders, gap, sl, sg)
		}

		// Part 2: full runs through the execution plans. The fused table
		// kernel, the interface-dispatch kernel on the same scheduler loop
		// (NoTable) and the generic reference loop must agree on the
		// Result, every output, the O(1) counters (cross-checked against a
		// scan) and the generator's post-run position.
		drop := float64(dropSel%4) * 0.2
		type outcome struct {
			res     Result
			outputs []int
			leaders int
			stable  bool
			draws   [8]uint64
		}
		runVariant := func(noTable, reference bool) outcome {
			p := factory()
			rr := xrand.New(seed)
			res := Run(g, p, rr, Options{
				MaxSteps:  script,
				DropRate:  drop,
				NoTable:   noTable,
				Reference: reference,
			})
			o := outcome{res: res, leaders: p.Leaders(), stable: p.Stable()}
			for v := 0; v < n; v++ {
				o.outputs = append(o.outputs, int(p.Output(v)))
			}
			if scan := CountLeaders(g, p); scan != o.leaders {
				t.Fatalf("noTable=%v reference=%v: Leaders() %d != scan %d", noTable, reference, o.leaders, scan)
			}
			for i := range o.draws {
				o.draws[i] = rr.Uint64()
			}
			return o
		}
		fused := runVariant(false, false)
		for _, v := range []outcome{runVariant(true, false), runVariant(false, true)} {
			if v.res != fused.res || v.leaders != fused.leaders || v.stable != fused.stable || v.draws != fused.draws {
				t.Fatalf("variants diverged: fused %+v vs %+v", fused, v)
			}
			for w := range v.outputs {
				if v.outputs[w] != fused.outputs[w] {
					t.Fatalf("node %d output diverged: fused %d vs %d", w, fused.outputs[w], v.outputs[w])
				}
			}
		}
	})
}
