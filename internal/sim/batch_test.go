package sim_test

import (
	"fmt"
	"strings"
	"testing"

	"popgraph/internal/graph"
	"popgraph/internal/protocols/beauquier"
	"popgraph/internal/protocols/majority"
	"popgraph/internal/runner"
	. "popgraph/internal/sim"
	"popgraph/internal/telemetry"
	"popgraph/internal/xrand"
)

// soloOutcome runs one trial through the solo plan path with
// runner-style crash recovery, so batch lanes can be compared against
// exactly what a pool worker would record.
func soloOutcome(g graph.Graph, p Protocol, r *xrand.Rand, opts Options) (res Result, crashed string) {
	defer func() {
		if e := recover(); e != nil {
			res = Result{Steps: 0, Stabilized: false, Leader: -1}
			crashed = fmt.Sprint(e)
		}
	}()
	res = Run(g, p, r, opts)
	return res, ""
}

// runBatchOf compiles opts and runs a T-lane batch of factory() with
// per-lane seeds SeedFor(seed, i).
func runBatchOf(t *testing.T, g graph.Graph, factory func() Protocol, seed uint64,
	T int, opts Options) []BatchResult {
	t.Helper()
	pl, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]Protocol, T)
	rs := make([]*xrand.Rand, T)
	for i := range ps {
		ps[i] = factory()
		rs[i] = xrand.New(runner.SeedFor(seed, i))
	}
	return pl.RunBatch(ps, rs, nil)
}

// TestRunBatchLockstepDispatch pins which configurations actually take
// the lockstep kernels: the meter's dispatch labels must show
// ".../table/batch" lanes for the dense-uniform, clique-uniform and
// weighted plans, and the solo labels for the fallbacks (node-clock,
// NoTable, non-Tabular protocols) — so a silent demotion to the
// sequential path cannot pass as batching.
func TestRunBatchLockstepDispatch(t *testing.T) {
	torus := graph.Torus2D(4, 4)
	weights := make([]float64, torus.M())
	for i := range weights {
		weights[i] = float64(1 + i%5)
	}
	weighted, err := NewWeighted(torus, "weighted:ramp", weights)
	if err != nil {
		t.Fatal(err)
	}
	nodeClock, err := NewNodeClock(torus)
	if err != nil {
		t.Fatal(err)
	}
	six := func() Protocol { return beauquier.New() }
	cases := []struct {
		tag     string
		g       graph.Graph
		opts    Options
		factory func() Protocol
		want    string
	}{
		{"clique", graph.NewClique(16), Options{MaxSteps: 600}, six, "clique-uniform/table/batch"},
		{"dense", torus, Options{MaxSteps: 600}, six, "dense-uniform/table/batch"},
		{"weighted", torus, Options{MaxSteps: 600, Scheduler: weighted}, six, "weighted/table/batch"},
		{"node-clock", torus, Options{MaxSteps: 600, Scheduler: nodeClock}, six, "node-clock/table"},
		{"no-table", torus, Options{MaxSteps: 600, NoTable: true}, six, "dense-uniform/step"},
	}
	for _, c := range cases {
		meter := new(telemetry.Counters)
		opts := c.opts
		opts.Meter = meter
		for i, br := range runBatchOf(t, c.g, c.factory, 7, 4, opts) {
			if br.Crashed != "" {
				t.Fatalf("%s: lane %d crashed: %s", c.tag, i, br.Crashed)
			}
		}
		s := meter.Snapshot()
		if s.KernelDispatch[c.want] != 4 {
			t.Fatalf("%s: want 4 lanes under %q, got dispatch %v", c.tag, c.want, s.KernelDispatch)
		}
	}
}

// flakyReset is a Tabular protocol whose Reset crashes for half the
// seeds (one parity draw from the trial's own generator), modelling a
// protocol rejecting part of a sweep grid. The extra draw is identical
// solo and batched, so surviving lanes stay comparable.
type flakyReset struct {
	*beauquier.Protocol
}

func (f *flakyReset) Reset(g graph.Graph, r *xrand.Rand) {
	if r.Uint64()&1 == 1 {
		panic("flaky reset: rejecting graph")
	}
	f.Protocol.Reset(g, r)
}

// TestRunBatchCrashedLanes — a lane crashing at Reset must be recorded
// like a crashed solo trial (zero Result, the panic message) while the
// surviving lanes run the lockstep kernel and stay byte-identical to
// their solo runs.
func TestRunBatchCrashedLanes(t *testing.T) {
	g := graph.NewClique(12)
	const seed, T = 3, 8
	factory := func() Protocol { return &flakyReset{beauquier.New()} }
	opts := Options{MaxSteps: 5000}
	brs := runBatchOf(t, g, factory, seed, T, opts)
	crashed, survived := 0, 0
	for i, br := range brs {
		res, msg := soloOutcome(g, factory(), xrand.New(runner.SeedFor(seed, i)), opts)
		if br.Crashed != msg {
			t.Fatalf("lane %d: batch crash %q, solo crash %q", i, br.Crashed, msg)
		}
		if br.Result != res {
			t.Fatalf("lane %d: batch %+v, solo %+v", i, br.Result, res)
		}
		if msg != "" {
			crashed++
		} else {
			survived++
		}
	}
	if crashed == 0 || survived == 0 {
		t.Fatalf("want a mixed batch, got %d crashed / %d survived (pick another seed)", crashed, survived)
	}
}

// panicObserver crashes at its n-th callback.
type panicObserver struct{ calls, at int }

func (o *panicObserver) Observe(int64) {
	o.calls++
	if o.calls == o.at {
		panic("observer boom")
	}
}

// TestRunBatchObserverCrashIsolation — an observer panicking at a
// boundary kills its own lane (matching the solo trial's crash) and no
// other.
func TestRunBatchObserverCrashIsolation(t *testing.T) {
	g := graph.NewClique(12)
	const seed, T = 11, 3
	opts := Options{MaxSteps: 4000, ObserveEvery: 64}
	pl, err := Compile(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]Protocol, T)
	rs := make([]*xrand.Rand, T)
	obs := make([]Observer, T)
	for i := range ps {
		ps[i] = beauquier.New()
		rs[i] = xrand.New(runner.SeedFor(seed, i))
		if i == 1 {
			obs[i] = &panicObserver{at: 1}
		}
	}
	brs := pl.RunBatch(ps, rs, obs)
	for i, br := range brs {
		soloOpts := opts
		if i == 1 {
			soloOpts.Observer = &panicObserver{at: 1}
		}
		res, msg := soloOutcome(g, beauquier.New(), xrand.New(runner.SeedFor(seed, i)), soloOpts)
		if br.Crashed != msg || br.Result != res {
			t.Fatalf("lane %d: batch (%+v, %q), solo (%+v, %q)", i, br.Result, br.Crashed, res, msg)
		}
	}
	if brs[1].Crashed == "" {
		t.Fatal("lane 1's observer panic was not recorded")
	}
}

// TestRunBatchMixedTablesFallsBack — lanes whose compiled tables differ
// (here six-state and four-state majority in one call) cannot share the
// lockstep kernel's single resident table; RunBatch must fall back to
// sequential solo runs and still match each lane's solo result.
func TestRunBatchMixedTablesFallsBack(t *testing.T) {
	g := graph.NewClique(10)
	inputs := make([]bool, g.N())
	for i := 0; i <= g.N()/2; i++ {
		inputs[i] = true
	}
	lanes := []func() Protocol{
		func() Protocol { return beauquier.New() },
		func() Protocol { return majority.New(inputs) },
		func() Protocol { return beauquier.New() },
	}
	const seed = 21
	opts := Options{MaxSteps: 3000}
	meter := new(telemetry.Counters)
	mOpts := opts
	mOpts.Meter = meter
	pl, err := Compile(g, mOpts)
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]Protocol, len(lanes))
	rs := make([]*xrand.Rand, len(lanes))
	for i, f := range lanes {
		ps[i] = f()
		rs[i] = xrand.New(runner.SeedFor(seed, i))
	}
	for i, br := range pl.RunBatch(ps, rs, nil) {
		if br.Crashed != "" {
			t.Fatalf("lane %d crashed: %s", i, br.Crashed)
		}
		res, _ := soloOutcome(g, lanes[i](), xrand.New(runner.SeedFor(seed, i)), opts)
		if br.Result != res {
			t.Fatalf("lane %d: batch %+v, solo %+v", i, br.Result, res)
		}
	}
	for label := range meter.Snapshot().KernelDispatch {
		if strings.Contains(label, "/batch") {
			t.Fatalf("mixed-table batch ran lockstep under %q", label)
		}
	}
}

// TestCompileBatch pins which configurations the batch front door
// accepts: the three lockstep-capable plans compile, and the rest error
// with the fallback reason instead of silently degrading.
func TestCompileBatch(t *testing.T) {
	torus := graph.Torus2D(4, 4)
	nodeClock, err := NewNodeClock(torus)
	if err != nil {
		t.Fatal(err)
	}
	churn, err := NewChurn(torus, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileBatch(graph.NewClique(16), Options{}); err != nil {
		t.Fatalf("clique uniform: %v", err)
	}
	if _, err := CompileBatch(torus, Options{}); err != nil {
		t.Fatalf("dense uniform: %v", err)
	}
	for tag, opts := range map[string]Options{
		"node-clock": {Scheduler: nodeClock},
		"churn":      {Scheduler: churn},
		"no-table":   {NoTable: true},
		"reference":  {Reference: true},
	} {
		if _, err := CompileBatch(torus, opts); err == nil {
			t.Fatalf("%s: CompileBatch accepted a solo-fallback configuration", tag)
		}
	}
	pl, err := Compile(graph.NewClique(16), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e := pl.BatchEngine(beauquier.New()); e != "lockstep" {
		t.Fatalf("six-state on clique: BatchEngine = %q", e)
	}
}

// TestRunBatchArgValidation — length mismatches panic (caller bugs, not
// run configurations) and the empty batch is a no-op.
func TestRunBatchArgValidation(t *testing.T) {
	pl, err := Compile(graph.NewClique(8), Options{MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.RunBatch(nil, nil, nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched slice lengths did not panic")
		}
	}()
	pl.RunBatch([]Protocol{beauquier.New()}, nil, nil)
}
