package sim_test

import (
	"math"
	"testing"

	"popgraph/internal/graph"
	"popgraph/internal/protocols/beauquier"
	. "popgraph/internal/sim"
	"popgraph/internal/xrand"
)

// TestUniformSchedulerIsIdentity — plugging in Uniform{} explicitly must
// be byte-identical to leaving Options.Scheduler nil — same Result, same
// post-run generator state — on both fast-loop representations, so the
// scheduler refactor is invisible to every existing caller.
func TestUniformSchedulerIsIdentity(t *testing.T) {
	// Graph-less and graph-bound, by value and by pointer, must all be
	// recognized — pointer schedulers are natural since every other
	// constructor returns one.
	for _, sched := range []Scheduler{Uniform{}, &Uniform{}, Uniform{G: graph.NewClique(16)}} {
		for _, g := range []graph.Graph{graph.NewClique(16), graph.Torus2D(3, 5)} {
			for seed := uint64(1); seed <= 3; seed++ {
				rNil := xrand.New(seed)
				rUni := xrand.New(seed)
				resNil := Run(g, beauquier.New(), rNil, Options{MaxSteps: 5000})
				resUni := Run(g, beauquier.New(), rUni, Options{MaxSteps: 5000, Scheduler: sched})
				if resNil != resUni {
					t.Fatalf("%s seed %d: nil %+v != Uniform %+v", g.Name(), seed, resNil, resUni)
				}
				for i := 0; i < 16; i++ {
					if a, b := rNil.Uint64(), rUni.Uint64(); a != b {
						t.Fatalf("%s seed %d: post-run streams diverged at draw %d", g.Name(), seed, i)
					}
				}
			}
		}
	}
}

// TestWeightedFrequencies — a weighted scheduler on a path with rates
// 1:3 must deliver the heavy edge three times as often, with the
// initiator direction split evenly.
func TestWeightedFrequencies(t *testing.T) {
	g := graph.Path(3) // edges (0,1) and (1,2) in ForEachEdge order
	s, err := NewWeighted(g, "weighted:test", []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "weighted:test" {
		t.Fatalf("name %q", s.Name())
	}
	r := xrand.New(11)
	src := s.Begin(r)
	const draws = 100000
	edgeCount := map[[2]int]int{}
	for i := int64(1); i <= draws; i++ {
		u, v, ok := src.Next(i, r)
		if !ok {
			t.Fatal("weighted scheduler suppressed a contact")
		}
		edgeCount[[2]int{u, v}]++
	}
	light := float64(edgeCount[[2]int{0, 1}] + edgeCount[[2]int{1, 0}])
	heavy := float64(edgeCount[[2]int{1, 2}] + edgeCount[[2]int{2, 1}])
	if ratio := heavy / light; math.Abs(ratio-3) > 0.15 {
		t.Fatalf("heavy/light ratio %.3f, want ~3", ratio)
	}
	fwd := float64(edgeCount[[2]int{1, 2}])
	if split := fwd / heavy; math.Abs(split-0.5) > 0.02 {
		t.Fatalf("direction split %.3f, want ~0.5", split)
	}
}

// TestUniformBeginHonorsContract — a graph-bound Uniform is a complete
// Scheduler for generic callers that drive Begin/Next themselves —
// its Source delivers the graph's own SampleEdge stream.
func TestUniformBeginHonorsContract(t *testing.T) {
	g := graph.Torus2D(3, 4)
	src := Uniform{G: g}.Begin(xrand.New(1))
	rSrc := xrand.New(8)
	rRef := xrand.New(8)
	for t2 := int64(1); t2 <= 200; t2++ {
		u, v, ok := src.Next(t2, rSrc)
		ru, rv := g.SampleEdge(rRef)
		if !ok || u != ru || v != rv {
			t.Fatalf("step %d: source (%d,%d,%v) != SampleEdge (%d,%d)", t2, u, v, ok, ru, rv)
		}
	}
}

func TestWeightedValidation(t *testing.T) {
	g := graph.Path(3)
	cases := []struct {
		name  string
		rates []float64
	}{
		{"wrong-length", []float64{1}},
		{"negative", []float64{1, -2}},
		{"nan", []float64{1, math.NaN()}},
		{"all-zero", []float64{0, 0}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewWeighted(g, "w", c.rates); err == nil {
				t.Fatalf("rates %v accepted", c.rates)
			}
		})
	}
}

// TestNodeClockMatchesUniformDistribution — picking a node proportionally
// to degree and then a uniform neighbor induces the uniform distribution
// over ordered adjacent pairs (deg(u)/2m · 1/deg(u) = 1/2m); check it
// empirically on a star, whose degrees are maximally skewed.
func TestNodeClockMatchesUniformDistribution(t *testing.T) {
	g := graph.Star(5) // 2m = 8 ordered pairs
	s, err := NewNodeClock(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "node-clock" {
		t.Fatalf("name %q", s.Name())
	}
	r := xrand.New(3)
	src := s.Begin(r)
	const draws = 80000
	count := map[[2]int]int{}
	for i := int64(1); i <= draws; i++ {
		u, v, ok := src.Next(i, r)
		if !ok {
			t.Fatal("node-clock scheduler suppressed a contact")
		}
		count[[2]int{u, v}]++
	}
	want := 1.0 / float64(2*g.M())
	if len(count) != 2*g.M() {
		t.Fatalf("saw %d ordered pairs, want %d", len(count), 2*g.M())
	}
	for pair, c := range count {
		got := float64(c) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("pair %v: frequency %.4f, want %.4f", pair, got, want)
		}
	}
}

// TestChurnStationaryAndBursts — on a single-edge graph the edge's on/off
// chain advances every step, so the suppressed fraction must match the
// stationary down probability DownLen/(UpLen+DownLen) and the mean
// length of consecutive suppressed runs must match DownLen.
func TestChurnStationaryAndBursts(t *testing.T) {
	g := graph.Path(2)
	s, err := NewChurn(g, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "churn:8:4" {
		t.Fatalf("name %q", s.Name())
	}
	r := xrand.New(21)
	src := s.Begin(r)
	const draws = 200000
	down, bursts, runLen := 0, 0, 0
	for i := int64(1); i <= draws; i++ {
		_, _, ok := src.Next(i, r)
		if !ok {
			down++
			runLen++
		} else if runLen > 0 {
			bursts++
			runLen = 0
		}
	}
	wantDown := 4.0 / 12.0
	if got := float64(down) / draws; math.Abs(got-wantDown) > 0.02 {
		t.Fatalf("down fraction %.4f, want ~%.4f", got, wantDown)
	}
	if bursts == 0 {
		t.Fatal("no down bursts observed")
	}
	if mean := float64(down) / float64(bursts); math.Abs(mean-4) > 0.5 {
		t.Fatalf("mean down-burst length %.2f, want ~4", mean)
	}
}

func TestChurnValidation(t *testing.T) {
	g := graph.Path(2)
	for _, c := range [][2]float64{{0.5, 4}, {8, 0}, {8, math.NaN()}, {math.Inf(1), 4}} {
		if _, err := NewChurn(g, c[0], c[1]); err == nil {
			t.Fatalf("burst lengths %v accepted", c)
		}
	}
}

// TestChurnFreshStatePerRun — Begin must return an independent source per
// run, so two runs from the same seed replay identically even when
// sharing one Churn value (as sweep grid cells do across trials).
func TestChurnFreshStatePerRun(t *testing.T) {
	g := graph.NewClique(8)
	s, err := NewChurn(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	replay := func() []bool {
		r := xrand.New(5)
		src := s.Begin(r)
		out := make([]bool, 500)
		for i := range out {
			_, _, out[i] = src.Next(int64(i+1), r)
		}
		return out
	}
	a, b := replay(), replay()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at step %d", i)
		}
	}
}

// TestSchedulersRunDeterministic — a full Run under every non-uniform
// scheduler stabilizes (suppressed contacts only delay a
// schedule-oblivious protocol) and reproduces exactly for a fixed seed.
func TestSchedulersRunDeterministic(t *testing.T) {
	g := graph.Torus2D(3, 4)
	rates := make([]float64, g.M())
	for i := range rates {
		rates[i] = float64(1 + i%5)
	}
	weighted, err := NewWeighted(g, "weighted:ramp", rates)
	if err != nil {
		t.Fatal(err)
	}
	nodeClock, err := NewNodeClock(g)
	if err != nil {
		t.Fatal(err)
	}
	churn, err := NewChurn(g, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []Scheduler{weighted, nodeClock, churn} {
		run := func() Result {
			return Run(g, beauquier.New(), xrand.New(13), Options{Scheduler: sched})
		}
		res := run()
		if !res.Stabilized {
			t.Fatalf("%s: did not stabilize", sched.Name())
		}
		if again := run(); res != again {
			t.Fatalf("%s: runs diverged: %+v vs %+v", sched.Name(), res, again)
		}
	}
}

// TestChurnComposesWithDropRate — churn suppression and i.i.d. drops
// stack; the run still stabilizes and stays deterministic.
func TestChurnComposesWithDropRate(t *testing.T) {
	g := graph.NewClique(12)
	s, err := NewChurn(g, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func() Result {
		return Run(g, beauquier.New(), xrand.New(2), Options{Scheduler: s, DropRate: 0.3})
	}
	res := run()
	if !res.Stabilized {
		t.Fatal("churn + drop run did not stabilize")
	}
	if again := run(); res != again {
		t.Fatalf("runs diverged: %+v vs %+v", res, again)
	}
}

// TestChurnLazyMatchesStepwiseReference is the long-horizon correctness
// check for the lazily-advanced per-edge Markov chains: over >= 10⁵
// steps, the closed-form k-step advance (one math.Pow per contact) must
// deliver exactly the same contact sequence as a naive reference that
// advances each edge's up-probability one step at a time through the
// chain recurrence p' = b + p·(1−a−b), consuming the identical draws.
func TestChurnLazyMatchesStepwiseReference(t *testing.T) {
	g := graph.Torus2D(3, 4) // 24 edges: mean inter-contact gap ≈ 24 steps
	const upLen, downLen = 16.0, 6.0
	s, err := NewChurn(g, upLen, downLen)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 150000
	a, b := 1/upLen, 1/downLen
	pi := b / (a + b)
	rLazy := xrand.New(99)
	lazy := s.Begin(rLazy)
	rRef := xrand.New(99)
	type edgeState struct {
		up bool
		t  int64
	}
	state := map[int64]edgeState{}
	for i := int64(1); i <= steps; i++ {
		lu, lv, lok := lazy.Next(i, rLazy)
		ru, rv := g.SampleEdge(rRef)
		if lu != ru || lv != rv {
			t.Fatalf("step %d: pair (%d,%d) != reference (%d,%d)", i, lu, lv, ru, rv)
		}
		lo, hi := ru, rv
		if lo > hi {
			lo, hi = hi, lo
		}
		key := int64(lo)<<32 | int64(hi)
		pUp := pi // stationary on first contact
		if e, seen := state[key]; seen {
			p := 0.0
			if e.up {
				p = 1.0
			}
			for k := e.t; k < i; k++ {
				p = b + p*(1-a-b)
			}
			pUp = p
		}
		rok := rRef.Float64() < pUp
		state[key] = edgeState{up: rok, t: i}
		if lok != rok {
			t.Fatalf("step %d: lazy delivered=%v, stepwise reference delivered=%v", i, lok, rok)
		}
	}
}
