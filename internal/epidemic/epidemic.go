// Package epidemic implements the information-propagation dynamics of
// Section 3 ("one-way epidemics"): every node starts with a unique
// message and interacting nodes exchange everything they know. It
// measures
//
//   - the broadcast time T(v) from a source (steps until all nodes are
//     influenced by v) and the worst-case expected broadcast time
//     B(G) = max_v E[T(v)], the quantity parameterizing the paper's upper
//     bounds (Theorems 21 and 24);
//   - the distance-k propagation times T_k(v) (first time a node at
//     distance exactly k from v is influenced), the quantity behind the
//     lower bounds (Lemma 14, Section 6).
//
// A single interaction spreads influence in both directions (the pair
// "inform each other"), so the initiator/responder orientation is
// irrelevant here.
package epidemic

import (
	"fmt"

	"popgraph/internal/graph"
	"popgraph/internal/stats"
	"popgraph/internal/xrand"
)

// BroadcastFrom runs one epidemic from src and returns T(v): the number of
// scheduler steps until every node is influenced.
func BroadcastFrom(g graph.Graph, src int, r *xrand.Rand) int64 {
	n := g.N()
	informed := make([]bool, n)
	informed[src] = true
	count := 1
	var t int64
	for count < n {
		t++
		u, v := g.SampleEdge(r)
		if informed[u] != informed[v] {
			informed[u] = true
			informed[v] = true
			count++
		}
	}
	return t
}

// PropagationFrom runs one epidemic from src and returns, for every
// distance k = 0..ecc(src), the first step at which some node at distance
// exactly k from src became influenced (T_k(v) in the paper's notation),
// plus the total broadcast time.
func PropagationFrom(g graph.Graph, src int, r *xrand.Rand) (firstAtDist []int64, total int64) {
	n := g.N()
	dist := graph.BFSDistances(g, src)
	ecc := int32(0)
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	firstAtDist = make([]int64, ecc+1)
	for k := range firstAtDist {
		firstAtDist[k] = -1
	}
	firstAtDist[0] = 0
	informed := make([]bool, n)
	informed[src] = true
	count := 1
	var t int64
	for count < n {
		t++
		u, v := g.SampleEdge(r)
		if informed[u] == informed[v] {
			continue
		}
		w := u
		if informed[u] {
			w = v
		}
		informed[w] = true
		count++
		if k := dist[w]; firstAtDist[k] < 0 {
			firstAtDist[k] = t
		}
	}
	return firstAtDist, t
}

// Options configures the B(G) estimator.
type Options struct {
	// Sources is the number of candidate sources to probe; B(G) is the
	// maximum over sources of the mean broadcast time. 0 means 4. The
	// probe set always contains a minimum- and a maximum-degree node
	// (extreme-degree sources dominate the worst case in the population
	// model) plus uniformly random extras.
	Sources int
	// Trials is the number of epidemics per source; 0 means 8.
	Trials int
	// Exhaustive probes every node as a source (small graphs only).
	Exhaustive bool
}

// EstimateB estimates the worst-case expected broadcast time
// B(G) = max_v E[T(v)] by Monte Carlo.
func EstimateB(g graph.Graph, r *xrand.Rand, opts Options) float64 {
	trials := opts.Trials
	if trials <= 0 {
		trials = 8
	}
	sources := pickSources(g, r, opts)
	best := 0.0
	samples := make([]float64, trials)
	for _, src := range sources {
		for i := range samples {
			samples[i] = float64(BroadcastFrom(g, src, r))
		}
		if m := stats.Mean(samples); m > best {
			best = m
		}
	}
	return best
}

// EstimateTk estimates E[T_k(v)] for a single source by Monte Carlo; the
// returned slice is indexed by distance. Distances never reached from v
// hold -1 (cannot happen on connected graphs).
func EstimateTk(g graph.Graph, src int, r *xrand.Rand, trials int) []float64 {
	if trials <= 0 {
		trials = 8
	}
	var acc []float64
	for i := 0; i < trials; i++ {
		first, _ := PropagationFrom(g, src, r)
		if acc == nil {
			acc = make([]float64, len(first))
		}
		if len(first) != len(acc) {
			panic(fmt.Sprintf("epidemic: eccentricity changed between trials (%d vs %d)",
				len(first), len(acc)))
		}
		for k, t := range first {
			acc[k] += float64(t)
		}
	}
	for k := range acc {
		acc[k] /= float64(trials)
	}
	return acc
}

func pickSources(g graph.Graph, r *xrand.Rand, opts Options) []int {
	n := g.N()
	if opts.Exhaustive {
		all := make([]int, n)
		for v := range all {
			all[v] = v
		}
		return all
	}
	count := opts.Sources
	if count <= 0 {
		count = 4
	}
	if count > n {
		count = n
	}
	seen := make(map[int]bool, count)
	sources := make([]int, 0, count)
	add := func(v int) {
		if !seen[v] {
			seen[v] = true
			sources = append(sources, v)
		}
	}
	minV, maxV := 0, 0
	for v := 1; v < n; v++ {
		if g.Degree(v) < g.Degree(minV) {
			minV = v
		}
		if g.Degree(v) > g.Degree(maxV) {
			maxV = v
		}
	}
	add(minV)
	add(maxV)
	for len(sources) < count {
		add(r.Intn(n))
	}
	return sources
}

// InfluenceTrajectory runs the influence dynamics from src and returns
// |S_t| (the number of nodes influenced by src) sampled every `every`
// steps until saturation; used to visualize the S-curve of the epidemic.
func InfluenceTrajectory(g graph.Graph, src int, r *xrand.Rand, every int64) []int {
	if every <= 0 {
		every = 1
	}
	n := g.N()
	informed := make([]bool, n)
	informed[src] = true
	count := 1
	out := []int{1}
	var t int64
	for count < n {
		t++
		u, v := g.SampleEdge(r)
		if informed[u] != informed[v] {
			informed[u] = true
			informed[v] = true
			count++
		}
		if t%every == 0 {
			out = append(out, count)
		}
	}
	out = append(out, count)
	return out
}
