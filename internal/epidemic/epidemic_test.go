package epidemic

import (
	"math"
	"testing"

	"popgraph/internal/bounds"
	"popgraph/internal/graph"
	"popgraph/internal/stats"
	"popgraph/internal/xrand"
)

func TestBroadcastCompletesAndIsPositive(t *testing.T) {
	r := xrand.New(1)
	for _, g := range []graph.Graph{
		graph.NewClique(32), graph.Cycle(32), graph.Star(32), graph.Torus2D(4, 8),
	} {
		steps := BroadcastFrom(g, 0, r)
		if steps < int64(g.N())/2 {
			t.Errorf("%s: broadcast in %d steps, below trivial n/2 bound", g.Name(), steps)
		}
	}
}

// TestBroadcastWithinTheorem6Bounds checks measured mean broadcast times
// sit between the Lemma 12 lower bound and the Theorem 6 upper bound.
func TestBroadcastWithinTheorem6Bounds(t *testing.T) {
	r := xrand.New(3)
	for _, g := range []graph.Graph{
		graph.NewClique(64), graph.Cycle(64), graph.Star(64), graph.Hypercube(6),
	} {
		const trials = 10
		xs := make([]float64, trials)
		for i := range xs {
			xs[i] = float64(BroadcastFrom(g, 0, r))
		}
		mean := stats.Mean(xs)
		lower := bounds.BroadcastLower(g.N(), g.M(), graph.MaxDegree(g))
		beta, ok := bounds.KnownExpansion(g)
		if !ok {
			beta = 0
		}
		upper := bounds.BroadcastUpper(g.N(), g.M(), graph.Diameter(g), beta)
		if mean < lower {
			t.Errorf("%s: mean %v below Lemma 12 bound %v", g.Name(), mean, lower)
		}
		// Lemma 8/10 hold for n > n₀; allow 25% finite-size slack at n = 64.
		if mean > 1.25*upper {
			t.Errorf("%s: mean %v above Theorem 6 bound %v", g.Name(), mean, upper)
		}
	}
}

// TestCliqueBroadcastShape — on K_n the epidemic is the push-pull coupon
// process; E[T] = Σ_i 2m/(i(n−i))·... ≈ n·ln(n)·(1+o(1)) since each step
// informs with probability i(n−i)/m. Closed form: E[T] = m·Σ 1/(i(n−i)).
func TestCliqueBroadcastShape(t *testing.T) {
	const n = 128
	g := graph.NewClique(n)
	r := xrand.New(5)
	const trials = 20
	xs := make([]float64, trials)
	for i := range xs {
		xs[i] = float64(BroadcastFrom(g, 0, r))
	}
	mean := stats.Mean(xs)
	want := 0.0
	m := float64(g.M())
	for i := 1; i < n; i++ {
		want += m / (float64(i) * float64(n-i))
	}
	if math.Abs(mean-want) > 0.1*want {
		t.Errorf("clique broadcast mean %v, closed form %v", mean, want)
	}
}

func TestPropagationFromMonotone(t *testing.T) {
	g := graph.Cycle(40)
	r := xrand.New(7)
	first, total := PropagationFrom(g, 0, r)
	if len(first) != 21 { // ecc of a node on C_40 is 20
		t.Fatalf("got %d distances, want 21", len(first))
	}
	if first[0] != 0 {
		t.Fatalf("T_0 = %d", first[0])
	}
	for k := 1; k < len(first); k++ {
		if first[k] <= 0 {
			t.Fatalf("T_%d unset", k)
		}
		if first[k] < first[k-1] {
			t.Fatalf("T_%d = %d < T_%d = %d: propagation cannot jump", k, first[k], k-1, first[k-1])
		}
	}
	if total < first[len(first)-1] {
		t.Fatalf("total %d before farthest distance %d", total, first[len(first)-1])
	}
}

// TestLemma14PropagationLowerBound — Pr[T_k(G) < km/(Δe³)] <= 1/n for
// k >= ln n. On a cycle with k = n/2 the threshold is comfortably below
// the measured times.
func TestLemma14PropagationLowerBound(t *testing.T) {
	const n = 64
	g := graph.Cycle(n)
	r := xrand.New(9)
	k := n / 2
	threshold := bounds.PropagationLower(k, g.M(), graph.MaxDegree(g))
	below := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		first, _ := PropagationFrom(g, 0, r)
		if float64(first[k]) < threshold {
			below++
		}
	}
	// The paper guarantees failure probability <= 1/n; allow a couple.
	if below > 3 {
		t.Errorf("T_k below Lemma 14 threshold in %d/%d runs", below, trials)
	}
}

func TestEstimateBMaxOverSources(t *testing.T) {
	// On a star, broadcasting from a leaf is slower than from the center;
	// the estimator must probe the min-degree (leaf) source.
	g := graph.Star(64)
	r := xrand.New(11)
	est := EstimateB(g, r, Options{Sources: 2, Trials: 12})
	const trials = 12
	xs := make([]float64, trials)
	for i := range xs {
		xs[i] = float64(BroadcastFrom(g, 0, r)) // center source
	}
	center := stats.Mean(xs)
	if est <= center {
		t.Errorf("B estimate %v should exceed center-source mean %v", est, center)
	}
}

func TestEstimateBExhaustive(t *testing.T) {
	g := graph.Path(10)
	r := xrand.New(13)
	est := EstimateB(g, r, Options{Exhaustive: true, Trials: 4})
	if est <= 0 {
		t.Fatal("estimate must be positive")
	}
}

func TestEstimateTk(t *testing.T) {
	g := graph.Path(16)
	r := xrand.New(15)
	tk := EstimateTk(g, 0, r, 6)
	if len(tk) != 16 {
		t.Fatalf("len %d", len(tk))
	}
	for k := 1; k < len(tk); k++ {
		if tk[k] <= tk[k-1] {
			t.Fatalf("mean T_k not increasing at %d", k)
		}
	}
}

func TestInfluenceTrajectory(t *testing.T) {
	g := graph.NewClique(32)
	r := xrand.New(17)
	traj := InfluenceTrajectory(g, 0, r, 50)
	if traj[0] != 1 || traj[len(traj)-1] != 32 {
		t.Fatalf("trajectory endpoints %d..%d", traj[0], traj[len(traj)-1])
	}
	for i := 1; i < len(traj); i++ {
		if traj[i] < traj[i-1] {
			t.Fatal("trajectory must be monotone")
		}
	}
}

func BenchmarkBroadcastCycle(b *testing.B) {
	g := graph.Cycle(256)
	r := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BroadcastFrom(g, 0, r)
	}
}
