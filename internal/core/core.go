// Package core holds the shared model types of the population-protocol
// simulator: output roles and the six-state token machine of Beauquier,
// Blanchard and Burman (OPODIS 2013) that the paper uses three times —
// as the constant-state baseline (Theorem 16), as the always-correct
// backup inside the identifier protocol (Theorem 21) and inside the fast
// space-efficient protocol (Theorem 24).
package core

// Role is a node's output value in the leader election problem.
type Role uint8

// Output roles. Enums start at one so the zero value is invalid.
const (
	Follower Role = iota + 1
	Leader
)

// String returns "leader" or "follower".
func (r Role) String() string {
	switch r {
	case Leader:
		return "leader"
	case Follower:
		return "follower"
	default:
		return "invalid"
	}
}

// TokenState is one of the six states of the token machine, packed into a
// byte: bit 0 is the candidate flag, bits 1-2 encode the token held
// (0 = none, 1 = black, 2 = white). A candidate holding a white token is
// transient: the transition resolves it before returning, so it is never
// stored between interactions.
type TokenState uint8

// Token colors.
const (
	TokenNone  uint8 = 0
	TokenBlack uint8 = 1
	TokenWhite uint8 = 2
)

// The six persistent states.
const (
	FollowerNone   TokenState = 0                  // follower, no token
	FollowerBlack  TokenState = TokenState(1 << 1) // follower carrying black
	FollowerWhite  TokenState = TokenState(2 << 1) // follower carrying white
	CandidateNone  TokenState = 1                  // candidate, no token
	CandidateBlack TokenState = 1 | TokenState(1<<1)
	CandidateWhite TokenState = 1 | TokenState(2<<1) // transient only
)

// MakeTokenState packs a candidate flag and token color.
func MakeTokenState(candidate bool, token uint8) TokenState {
	s := TokenState(token << 1)
	if candidate {
		s |= 1
	}
	return s
}

// Candidate reports whether the node is a leader candidate.
func (s TokenState) Candidate() bool { return s&1 == 1 }

// Token returns the held token color (TokenNone/TokenBlack/TokenWhite).
func (s TokenState) Token() uint8 { return uint8(s >> 1) }

// Role maps the token-machine state to a leader-election output:
// candidates output Leader, everyone else Follower.
func (s TokenState) Role() Role {
	if s.Candidate() {
		return Leader
	}
	return Follower
}

// TokenCounts tracks the global counts the stability predicate needs.
// The protocol maintains the invariant Candidates == Black + White and
// Black >= 1; the configuration is stable exactly when White == 0 and
// Black == 1 (then exactly one candidate remains forever).
type TokenCounts struct {
	Candidates int
	Black      int
	White      int
}

// Add accumulates the contribution of state s, weighted by w (use +1 when
// a node enters s and -1 when it leaves).
func (c *TokenCounts) Add(s TokenState, w int) {
	if s.Candidate() {
		c.Candidates += w
	}
	switch s.Token() {
	case TokenBlack:
		c.Black += w
	case TokenWhite:
		c.White += w
	}
}

// Stable reports whether the token machine has stabilized: exactly one
// black token and no white tokens remain, which pins the candidate count
// to one via the invariant Candidates = Black + White.
func (c TokenCounts) Stable() bool { return c.White == 0 && c.Black == 1 }

// TokenTransition applies one interaction of the six-state machine to the
// initiator state a and responder state b and returns the successor
// states. The rule, following Beauquier et al.:
//
//  1. the two nodes swap tokens (tokens perform population-model random
//     walks);
//  2. if both tokens are black, the responder's token is recolored white;
//  3. a candidate now holding a white token becomes a follower and
//     destroys the token.
func TokenTransition(a, b TokenState) (TokenState, TokenState) {
	ta, tb := b.Token(), a.Token() // step 1: swap
	if ta == TokenBlack && tb == TokenBlack {
		tb = TokenWhite // step 2
	}
	return resolve(a.Candidate(), ta), resolve(b.Candidate(), tb)
}

// resolve applies step 3 (candidate + white → follower, token destroyed).
func resolve(cand bool, token uint8) TokenState {
	if cand && token == TokenWhite {
		return FollowerNone
	}
	return MakeTokenState(cand, token)
}
