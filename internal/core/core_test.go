package core

import (
	"testing"
	"testing/quick"
)

func TestRoleString(t *testing.T) {
	if Leader.String() != "leader" || Follower.String() != "follower" {
		t.Fatal("role strings")
	}
	if Role(0).String() != "invalid" {
		t.Fatal("zero role must be invalid")
	}
}

func TestTokenStateAccessors(t *testing.T) {
	cases := []struct {
		s     TokenState
		cand  bool
		token uint8
		role  Role
	}{
		{FollowerNone, false, TokenNone, Follower},
		{FollowerBlack, false, TokenBlack, Follower},
		{FollowerWhite, false, TokenWhite, Follower},
		{CandidateNone, true, TokenNone, Leader},
		{CandidateBlack, true, TokenBlack, Leader},
		{CandidateWhite, true, TokenWhite, Leader},
	}
	for _, c := range cases {
		if c.s.Candidate() != c.cand || c.s.Token() != c.token || c.s.Role() != c.role {
			t.Errorf("state %v: got (%v,%v,%v)", c.s, c.s.Candidate(), c.s.Token(), c.s.Role())
		}
		if MakeTokenState(c.cand, c.token) != c.s {
			t.Errorf("MakeTokenState(%v,%v) != %v", c.cand, c.token, c.s)
		}
	}
}

// persistent enumerates the six persistent (non-transient) states.
var persistent = []TokenState{
	FollowerNone, FollowerBlack, FollowerWhite,
	CandidateNone, CandidateBlack,
	// CandidateWhite is transient and never stored.
}

func TestTokenTransitionTable(t *testing.T) {
	cases := []struct {
		a, b         TokenState
		wantA, wantB TokenState
	}{
		// Two black candidates: swap, responder's black recolors white,
		// responder candidate consumes it.
		{CandidateBlack, CandidateBlack, CandidateBlack, FollowerNone},
		// Candidate meets plain follower: tokens swap (black walks).
		{CandidateBlack, FollowerNone, CandidateNone, FollowerBlack},
		{FollowerNone, CandidateBlack, FollowerBlack, CandidateNone},
		// Two black followers: responder's becomes white.
		{FollowerBlack, FollowerBlack, FollowerBlack, FollowerWhite},
		// White token reaches a candidate: candidate eliminated.
		{FollowerWhite, CandidateNone, FollowerNone, FollowerNone},
		{CandidateNone, FollowerWhite, FollowerNone, FollowerNone},
		// White walks between followers.
		{FollowerWhite, FollowerNone, FollowerNone, FollowerWhite},
		// Black and white swap carriers.
		{FollowerBlack, FollowerWhite, FollowerWhite, FollowerBlack},
		// Candidate holding black meets white-carrying follower: candidate
		// receives white and is eliminated; black survives on the other side.
		{CandidateBlack, FollowerWhite, FollowerNone, FollowerBlack},
		// Nothing happens between two empty-handed nodes.
		{FollowerNone, FollowerNone, FollowerNone, FollowerNone},
		{CandidateNone, CandidateNone, CandidateNone, CandidateNone},
	}
	for _, c := range cases {
		gotA, gotB := TokenTransition(c.a, c.b)
		if gotA != c.wantA || gotB != c.wantB {
			t.Errorf("TokenTransition(%v,%v) = (%v,%v), want (%v,%v)",
				c.a, c.b, gotA, gotB, c.wantA, c.wantB)
		}
	}
}

// TestTokenTransitionInvariants checks, over all persistent state pairs,
// the conservation laws the stability argument relies on:
//   - tokens are conserved except black+black -> black+white and
//     white absorbed by a candidate;
//   - candidates never appear;
//   - the invariant delta(candidates) = delta(black) + delta(white) holds.
func TestTokenTransitionInvariants(t *testing.T) {
	for _, a := range persistent {
		for _, b := range persistent {
			na, nb := TokenTransition(a, b)
			var before, after TokenCounts
			before.Add(a, 1)
			before.Add(b, 1)
			after.Add(na, 1)
			after.Add(nb, 1)
			dc := after.Candidates - before.Candidates
			db := after.Black - before.Black
			dw := after.White - before.White
			if dc > 0 {
				t.Errorf("(%v,%v): candidate created", a, b)
			}
			if db > 0 {
				t.Errorf("(%v,%v): black token created", a, b)
			}
			if dc != db+dw {
				t.Errorf("(%v,%v): invariant broken dc=%d db=%d dw=%d", a, b, dc, db, dw)
			}
			// Result states must be persistent (no candidate+white stored).
			for _, s := range []TokenState{na, nb} {
				if s.Candidate() && s.Token() == TokenWhite {
					t.Errorf("(%v,%v): transient state %v returned", a, b, s)
				}
			}
		}
	}
}

func TestTokenCountsStable(t *testing.T) {
	c := TokenCounts{Candidates: 1, Black: 1, White: 0}
	if !c.Stable() {
		t.Fatal("should be stable")
	}
	for _, bad := range []TokenCounts{
		{Candidates: 2, Black: 1, White: 1},
		{Candidates: 2, Black: 2, White: 0},
	} {
		if bad.Stable() {
			t.Fatalf("%+v should not be stable", bad)
		}
	}
}

func TestMakeTokenStateRoundTrip(t *testing.T) {
	f := func(cand bool, tok uint8) bool {
		tok %= 3
		s := MakeTokenState(cand, tok)
		return s.Candidate() == cand && s.Token() == tok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
