// Compiled transition tables. A constant-state population protocol is a
// finite function δ: S×S → S×S plus a per-state output role and a
// stability predicate over global state counts — for the paper's
// constant-state protocols (the six-state Beauquier et al. baseline of
// Theorem 16, the star protocol, four-state majority) the whole machine
// fits in a few dozen bytes. TransitionTable is that machine compiled
// into one flat k×k array of packed cells, sized so the entire table
// stays L1-resident: the simulator's fused kernels (internal/sim)
// execute an interaction as two byte loads, one table lookup, two byte
// stores and two counter adds, with no interface dispatch.
//
// Counters. Instead of scanning outputs, a table maintains two global
// integers incrementally:
//
//   - leaders — the number of nodes whose state's Role is Leader;
//   - gap — Σ_v gapWeight(state(v)) − gapTarget, a protocol-chosen
//     linear functional that is zero exactly on the protocol's stable
//     configurations (among configurations reachable from its initial
//     ones; see NewTransitionTable).
//
// Each table cell carries the (Δleaders, Δgap) of its transition, so
// Leaders() and Stable() stay O(1) while the kernel never calls out of
// its loop. Tests cross-check both counters against full state scans.

package core

import "fmt"

// MaxTableStates bounds the state count of a TransitionTable. Constant-
// state protocols use a handful of states; the bound keeps k² cells
// (4·k² bytes) comfortably cache-resident and the packed cell encoding
// valid (state indices must fit a byte).
const MaxTableStates = 64

// TableDeltaBias is the bias added to the per-cell counter deltas when
// they are packed into a cell's upper bytes: a delta d is stored as the
// byte d+TableDeltaBias, so representable deltas span
// [−TableDeltaBias, TableDeltaBias−1]. A pairwise transition moves two
// nodes, so real protocol deltas are tiny; the builder rejects weights
// that would overflow the lane.
const TableDeltaBias = 128

// TransitionTable is a compiled finite-state protocol: the transition
// function as a flat [k*k] array of packed cells, the per-state output
// roles, and the counter weights behind the incrementally maintained
// leaders/gap integers. Tables are immutable after construction and
// safe for concurrent use by any number of runs.
//
// Cell packing (uint32), for cell index a*k+b with initiator state a and
// responder state b:
//
//	bits 0–7    next responder state
//	bits 8–15   next initiator state
//	bits 16–23  Δleaders + TableDeltaBias
//	bits 24–31  Δgap + TableDeltaBias
type TransitionTable struct {
	k         int
	cells     []uint32
	roles     []Role
	gapW      []int
	gapTarget int
}

// NewTransitionTable compiles a protocol's transition function into a
// table. step is the pure pairwise transition (initiator, responder) →
// successors; it is queried once per ordered state pair, so generating
// it from a protocol's existing Step logic keeps the hand-written
// transitions the single source of truth. role maps each state to its
// output. gapWeight and gapTarget define the stability functional: the
// caller guarantees that, on every configuration reachable from the
// protocol's initial ones, Σ_v gapWeight(state(v)) == gapTarget holds
// exactly when the protocol's Stable() predicate does. (Unreachable
// configurations may disagree; no run visits them.)
//
// Errors: k outside [1, MaxTableStates], a successor state out of
// range, an invalid role, or a weight large enough to overflow a cell's
// biased delta byte.
func NewTransitionTable(k int, step func(a, b uint8) (uint8, uint8),
	role func(s uint8) Role, gapWeight func(s uint8) int, gapTarget int) (*TransitionTable, error) {
	if k < 1 || k > MaxTableStates {
		return nil, tableErrorf("state count %d outside [1, %d]", k, MaxTableStates)
	}
	t := &TransitionTable{
		k:         k,
		cells:     make([]uint32, k*k),
		roles:     make([]Role, k),
		gapW:      make([]int, k),
		gapTarget: gapTarget,
	}
	leadW := make([]int, k)
	for s := 0; s < k; s++ {
		r := role(uint8(s))
		if r != Leader && r != Follower {
			return nil, tableErrorf("state %d has invalid role %v", s, r)
		}
		t.roles[s] = r
		if r == Leader {
			leadW[s] = 1
		}
		t.gapW[s] = gapWeight(uint8(s))
	}
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			na, nb := step(uint8(a), uint8(b))
			if int(na) >= k || int(nb) >= k {
				return nil, tableErrorf("transition (%d,%d) -> (%d,%d) leaves the %d-state space", a, b, na, nb, k)
			}
			dLead := leadW[na] + leadW[nb] - leadW[a] - leadW[b]
			dGap := t.gapW[na] + t.gapW[nb] - t.gapW[a] - t.gapW[b]
			if dLead < -TableDeltaBias || dLead >= TableDeltaBias ||
				dGap < -TableDeltaBias || dGap >= TableDeltaBias {
				return nil, tableErrorf("transition (%d,%d) counter deltas (%d,%d) overflow the ±%d cell lane",
					a, b, dLead, dGap, TableDeltaBias)
			}
			t.cells[a*k+b] = uint32(nb) | uint32(na)<<8 |
				uint32(dLead+TableDeltaBias)<<16 | uint32(dGap+TableDeltaBias)<<24
		}
	}
	return t, nil
}

func tableErrorf(format string, args ...interface{}) error {
	return fmt.Errorf("core: transition table: "+format, args...)
}

// TableFromParts reconstructs a compiled table from its serialized
// parts — the inverse of the accessors K/Cells/Role/GapWeight/
// GapTarget, used to revive a table stored in a binary snapshot. The
// slices are adopted, not copied.
//
// Validation is total: beyond shape and range checks, every cell's
// packed counter-delta lanes are recomputed from the successor states
// and the role/gap weights and must match the stored bytes exactly
// (k² ≤ 4096 cells, so the cross-check is trivially cheap). A table
// that passes is indistinguishable from one NewTransitionTable built
// over the same transition function.
func TableFromParts(k int, cells []uint32, roles []Role, gapW []int, gapTarget int) (*TransitionTable, error) {
	if k < 1 || k > MaxTableStates {
		return nil, tableErrorf("state count %d outside [1, %d]", k, MaxTableStates)
	}
	if len(cells) != k*k {
		return nil, tableErrorf("%d cells for %d states, want %d", len(cells), k, k*k)
	}
	if len(roles) != k || len(gapW) != k {
		return nil, tableErrorf("%d roles and %d gap weights for %d states", len(roles), len(gapW), k)
	}
	leadW := make([]int, k)
	for s, r := range roles {
		if r != Leader && r != Follower {
			return nil, tableErrorf("state %d has invalid role %v", s, r)
		}
		if r == Leader {
			leadW[s] = 1
		}
	}
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			c := cells[a*k+b]
			na, nb := int(c>>8&0xff), int(c&0xff)
			if na >= k || nb >= k {
				return nil, tableErrorf("cell (%d,%d) -> (%d,%d) leaves the %d-state space", a, b, na, nb, k)
			}
			dLead := leadW[na] + leadW[nb] - leadW[a] - leadW[b]
			dGap := gapW[na] + gapW[nb] - gapW[a] - gapW[b]
			if c>>16&0xff != uint32(dLead+TableDeltaBias) || c>>24 != uint32(dGap+TableDeltaBias) {
				return nil, tableErrorf("cell (%d,%d) carries counter deltas (%d,%d), weights imply (%d,%d)",
					a, b, int(c>>16&0xff)-TableDeltaBias, int(c>>24)-TableDeltaBias, dLead, dGap)
			}
		}
	}
	return &TransitionTable{k: k, cells: cells, roles: roles, gapW: gapW, gapTarget: gapTarget}, nil
}

// K returns the number of states.
func (t *TransitionTable) K() int { return t.k }

// Cells exposes the packed [k*k] cell array for the fused kernels; see
// the type documentation for the lane layout. Callers must not mutate it.
func (t *TransitionTable) Cells() []uint32 { return t.cells }

// Role returns state s's output role.
func (t *TransitionTable) Role(s uint8) Role { return t.roles[s] }

// GapWeight returns state s's stability weight.
func (t *TransitionTable) GapWeight(s uint8) int { return t.gapW[s] }

// GapTarget returns the stability functional's target value.
func (t *TransitionTable) GapTarget() int { return t.gapTarget }

// Next decodes the successor pair of (initiator a, responder b).
func (t *TransitionTable) Next(a, b uint8) (uint8, uint8) {
	c := t.cells[int(a)*t.k+int(b)]
	return uint8(c >> 8), uint8(c)
}

// Counters computes the (leaders, gap) counter pair of a configuration
// by full scan — the kernels' initial values, and what tests cross-check
// the incrementally maintained integers against. Stability is gap == 0.
func (t *TransitionTable) Counters(states []uint8) (leaders, gap int) {
	gap = -t.gapTarget
	for _, s := range states {
		if t.roles[s] == Leader {
			leaders++
		}
		gap += t.gapW[s]
	}
	return leaders, gap
}

// Apply executes one interaction (initiator u, responder v) on states in
// place and returns the transition's counter deltas. It is the readable
// reference for the cell decode the fused kernels inline.
func (t *TransitionTable) Apply(states []uint8, u, v int) (dLeaders, dGap int) {
	c := t.cells[int(states[u])*t.k+int(states[v])]
	states[u], states[v] = uint8(c>>8), uint8(c)
	return int(c>>16&0xff) - TableDeltaBias, int(c>>24) - TableDeltaBias
}
