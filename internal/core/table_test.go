package core

import (
	"strings"
	"testing"
)

// sixStateTable compiles the token machine the way the beauquier package
// does, directly from TokenTransition: states are the TokenState byte
// values 0..5, the gap functional is #black + #white − 1 (zero exactly
// on stable configurations, via the invariant #black >= 1).
func sixStateTable(t *testing.T) *TransitionTable {
	t.Helper()
	tab, err := NewTransitionTable(6,
		func(a, b uint8) (uint8, uint8) {
			na, nb := TokenTransition(TokenState(a), TokenState(b))
			return uint8(na), uint8(nb)
		},
		func(s uint8) Role { return TokenState(s).Role() },
		func(s uint8) int {
			if tok := TokenState(s).Token(); tok == TokenBlack || tok == TokenWhite {
				return 1
			}
			return 0
		},
		1)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestTableMatchesTokenTransition — every cell decodes back to exactly
// what TokenTransition produces, and Apply's in-place update plus delta
// return agree with recomputing counters from scratch.
func TestTableMatchesTokenTransition(t *testing.T) {
	tab := sixStateTable(t)
	if tab.K() != 6 || len(tab.Cells()) != 36 {
		t.Fatalf("table shape k=%d cells=%d", tab.K(), len(tab.Cells()))
	}
	for a := uint8(0); a < 6; a++ {
		if tab.Role(a) != TokenState(a).Role() {
			t.Fatalf("state %d role %v, want %v", a, tab.Role(a), TokenState(a).Role())
		}
		for b := uint8(0); b < 6; b++ {
			wa, wb := TokenTransition(TokenState(a), TokenState(b))
			na, nb := tab.Next(a, b)
			if TokenState(na) != wa || TokenState(nb) != wb {
				t.Fatalf("(%d,%d): table (%d,%d), TokenTransition (%d,%d)", a, b, na, nb, wa, wb)
			}
			states := []uint8{a, b}
			beforeL, beforeG := tab.Counters(states)
			dl, dg := tab.Apply(states, 0, 1)
			afterL, afterG := tab.Counters(states)
			if states[0] != na || states[1] != nb {
				t.Fatalf("(%d,%d): Apply wrote (%d,%d), want (%d,%d)", a, b, states[0], states[1], na, nb)
			}
			if beforeL+dl != afterL || beforeG+dg != afterG {
				t.Fatalf("(%d,%d): deltas (%d,%d) disagree with scans (%d->%d, %d->%d)",
					a, b, dl, dg, beforeL, afterL, beforeG, afterG)
			}
		}
	}
}

// TestTableCountersMatchTokenCounts — on random-ish configurations the
// table's scan counters agree with the semantic TokenCounts — leaders
// with Candidates, gap == 0 with Stable().
func TestTableCountersMatchTokenCounts(t *testing.T) {
	tab := sixStateTable(t)
	configs := [][]uint8{
		{uint8(CandidateBlack), uint8(CandidateBlack), uint8(CandidateBlack)},
		{uint8(CandidateBlack), uint8(FollowerNone), uint8(FollowerNone)},
		{uint8(CandidateNone), uint8(FollowerBlack), uint8(FollowerWhite), uint8(CandidateBlack)},
		{uint8(FollowerNone), uint8(FollowerBlack), uint8(CandidateNone)},
	}
	for _, states := range configs {
		var c TokenCounts
		for _, s := range states {
			c.Add(TokenState(s), 1)
		}
		leaders, gap := tab.Counters(states)
		if leaders != c.Candidates {
			t.Fatalf("%v: leaders %d, Candidates %d", states, leaders, c.Candidates)
		}
		if (gap == 0) != c.Stable() {
			t.Fatalf("%v: gap %d (stable=%v), TokenCounts.Stable %v", states, gap, gap == 0, c.Stable())
		}
	}
}

// TestTableBuilderValidation — the compiler rejects malformed machines
// with errors naming the problem.
func TestTableBuilderValidation(t *testing.T) {
	identity := func(a, b uint8) (uint8, uint8) { return a, b }
	follower := func(uint8) Role { return Follower }
	zero := func(uint8) int { return 0 }
	cases := []struct {
		name string
		k    int
		step func(a, b uint8) (uint8, uint8)
		role func(s uint8) Role
		gapW func(s uint8) int
		want string
	}{
		{"k-zero", 0, identity, follower, zero, "state count"},
		{"k-huge", MaxTableStates + 1, identity, follower, zero, "state count"},
		{"escaping-successor", 2, func(a, b uint8) (uint8, uint8) { return 7, b }, follower, zero, "leaves"},
		{"bad-role", 2, identity, func(uint8) Role { return Role(9) }, zero, "invalid role"},
		{"delta-overflow", 2, func(a, b uint8) (uint8, uint8) { return 1, 1 }, follower,
			func(s uint8) int { return int(s) * 1000 }, "overflow"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewTransitionTable(c.k, c.step, c.role, c.gapW, 0)
			if err == nil {
				t.Fatal("builder accepted a malformed machine")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
