// Batched trial scheduling. StreamBatched partitions a job list into
// contiguous replicate groups and hands each group to a worker as one
// unit, executed through sim.ExecPlan.RunBatch: one plan compile and
// one lockstep kernel per group instead of per trial. Everything
// observable is unchanged from Stream — outcomes arrive in job order on
// one goroutine, per-trial seeds and observer sequences are identical,
// crashed trials stay isolated, per-worker telemetry shards merge the
// same way — so batching is purely a throughput knob.
//
// Grouping contract: jobs i and j may share a group only when they are
// replicates — identical Graph, New and Opts, differing only in Seed
// and (per-trial) Opts.Observer. The group callback declares the
// partition (consecutive jobs with equal group values may merge);
// callers like sweep pass their task index. Groups never span a group
// value change, and are capped at the batch width. A mis-grouped batch
// still produces correct per-trial results — RunBatch falls back to
// sequential solo lanes when lanes' tables differ — but wastes the
// batching.

package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"popgraph/internal/sim"
	"popgraph/internal/telemetry"
	"popgraph/internal/xrand"
)

// failedResult is the Result recorded for a trial that did not
// complete, identical to runOne's crash outcome.
func failedResult() sim.Result { return sim.Result{Steps: 0, Stabilized: false, Leader: -1} }

// RunBatched executes jobs like Run, in replicate groups of up to batch
// trials (see StreamBatched), and returns outcomes in job order.
func (p Pool) RunBatched(jobs []Job, batch int, group func(i int) int) []Outcome {
	outcomes := make([]Outcome, len(jobs))
	p.StreamBatched(jobs, batch, group, func(i int, o Outcome) { outcomes[i] = o })
	return outcomes
}

// StreamBatched executes jobs like Stream — outcomes delivered exactly
// once via emit, serialized, in job order — but schedules contiguous
// replicate groups of up to batch jobs as single worker units, each run
// through the lockstep batch kernels. group(i) identifies job i's
// replicate family (nil means all jobs are one family); a unit never
// crosses a change in group value. batch <= 1 degenerates to Stream.
//
// Within a unit, ElapsedNs is the unit's wall time divided evenly
// across its trials (lockstep interleaves them; per-trial attribution
// does not exist) and QueueWaitNs is the unit's queue wait. Everything
// else in each Outcome is byte-identical to the solo Stream run.
func (p Pool) StreamBatched(jobs []Job, batch int, group func(i int) int, emit func(i int, o Outcome)) {
	if batch <= 1 {
		p.Stream(jobs, emit)
		return
	}
	if len(jobs) == 0 {
		return
	}
	type unit struct{ start, end int } // jobs[start:end]
	var units []unit
	for s := 0; s < len(jobs); {
		e := s + 1
		for e < len(jobs) && e-s < batch && (group == nil || group(e) == group(s)) {
			e++
		}
		units = append(units, unit{s, e})
		s = e
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}
	endBatch := p.Journal.Span("run", map[string]any{
		"trials": len(jobs), "workers": workers, "batch": batch, "units": len(units)})
	defer endBatch()
	var (
		start        = time.Now()
		next   int64 = -1
		done   atomic.Int64
		notify chan struct{}
		wg     sync.WaitGroup
		repWG  sync.WaitGroup
		emitWG sync.WaitGroup
	)
	// The drainer reorders unit completions into unit order; units tile
	// the job list in ascending contiguous ranges, so flushing units in
	// order and members in range order is exactly job order.
	type completion struct {
		u  int
		os []Outcome
	}
	completions := make(chan completion, workers)
	emitWG.Add(1)
	go func() {
		defer emitWG.Done()
		pending := make(map[int][]Outcome)
		flush := 0
		for c := range completions {
			pending[c.u] = c.os
			for {
				os, ok := pending[flush]
				if !ok {
					break
				}
				delete(pending, flush)
				for k, o := range os {
					emit(units[flush].start+k, o)
				}
				flush++
			}
		}
	}()
	if p.Progress != nil {
		notify = make(chan struct{}, 1)
		repWG.Add(1)
		go func() {
			defer repWG.Done()
			last := int64(0)
			report := func() {
				if d := done.Load(); d > last {
					last = d
					p.Progress(int(d), len(jobs))
				}
			}
			for range notify {
				report()
			}
			report()
		}()
	}
	shards := make([]*telemetry.Counters, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		var shard *telemetry.Counters
		if p.Meter != nil {
			shard = new(telemetry.Counters)
			shards[w] = shard
		}
		go func() {
			defer wg.Done()
			for {
				u := int(atomic.AddInt64(&next, 1))
				if u >= len(units) {
					return
				}
				queueWait := time.Since(start).Nanoseconds()
				os := runUnit(jobs[units[u].start:units[u].end], shard)
				for k := range os {
					os[k].QueueWaitNs = queueWait
					if shard != nil {
						shard.AddTrial(os[k].ElapsedNs, queueWait, os[k].Result.Stabilized, os[k].Failed())
					}
				}
				completions <- completion{u, os}
				done.Add(int64(len(os)))
				if notify != nil {
					select {
					case notify <- struct{}{}:
					default:
					}
				}
			}
		}()
	}
	wg.Wait()
	close(completions)
	emitWG.Wait()
	if notify != nil {
		close(notify)
		repWG.Wait()
	}
	if p.Meter != nil {
		for _, s := range shards {
			if s != nil {
				p.Meter.Merge(s.Snapshot())
			}
		}
	}
}

// runUnit executes one replicate group through RunBatch. The plan is
// compiled once from the first job's options with the shared Observer
// cleared; each lane gets its own job's observer, so per-trial
// observers (trajectories) record exactly their solo sequences. A
// compile error fails every trial with the message solo runs would
// report; a New panic fails only its trial, and the healthy lanes run
// as a compacted batch.
func runUnit(jobs []Job, shard *telemetry.Counters) []Outcome {
	out := make([]Outcome, len(jobs))
	opts := jobs[0].Opts
	if shard != nil && opts.Meter == nil {
		opts.Meter = shard
	}
	planOpts := opts
	planOpts.Observer = nil
	t0 := time.Now()
	ps := make([]sim.Protocol, 0, len(jobs))
	rs := make([]*xrand.Rand, 0, len(jobs))
	obs := make([]sim.Observer, 0, len(jobs))
	lane := make([]int, 0, len(jobs)) // job index of each healthy lane
	for i, j := range jobs {
		p, msg := newProtocol(j.New)
		if msg != "" {
			out[i] = Outcome{Result: failedResult(), Err: msg}
			continue
		}
		ps = append(ps, p)
		rs = append(rs, xrand.New(j.Seed))
		obs = append(obs, j.Opts.Observer)
		lane = append(lane, i)
	}
	// Constructors run before the compile, like runOne: a trial whose New
	// panicked reports the panic even on a misconfigured unit, and the
	// remaining trials all report the configuration error solo runs would.
	pl, err := sim.Compile(jobs[0].Graph, planOpts)
	if err != nil {
		for _, i := range lane {
			out[i] = Outcome{Result: failedResult(), Err: err.Error()}
		}
		return out
	}
	brs := pl.RunBatch(ps, rs, obs)
	// Setup and lockstep execution interleave the lanes; attribute the
	// unit's wall time evenly.
	per := time.Since(t0).Nanoseconds()
	if len(jobs) > 0 {
		per /= int64(len(jobs))
	}
	for i := range out {
		out[i].ElapsedNs = per
	}
	for k, br := range brs {
		o := Outcome{Result: br.Result, Err: br.Crashed, ElapsedNs: per}
		if br.Crashed == "" {
			if rep, ok := ps[k].(backupReporter); ok {
				o.Backup = rep.InBackup()
			}
		}
		out[lane[k]] = o
	}
	return out
}

// newProtocol invokes a job's factory with runner-style crash recovery,
// so a panicking constructor fails its own trial instead of the group.
func newProtocol(factory func() sim.Protocol) (p sim.Protocol, msg string) {
	defer func() {
		if e := recover(); e != nil {
			p, msg = nil, fmt.Sprint(e)
		}
	}()
	return factory(), ""
}
