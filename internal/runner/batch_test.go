package runner

import (
	"strings"
	"testing"

	"popgraph/internal/graph"
	"popgraph/internal/protocols/star"
	"popgraph/internal/sim"
	"popgraph/internal/telemetry"
)

// TestStreamBatchedMatchesStream — the batched scheduler must deliver,
// for every worker count and batch width (dividing the group size or
// not), the same deterministic outcomes as Stream, in strictly
// ascending job order on one goroutine.
func TestStreamBatchedMatchesStream(t *testing.T) {
	g := graph.NewClique(12)
	jobs := TrialJobs(g, factory, 99, 20, sim.Options{})
	want := Pool{Workers: 1}.Run(jobs)
	for _, workers := range []int{1, 4} {
		for _, batch := range []int{2, 7, 8, 64} {
			nextIdx := 0
			Pool{Workers: workers}.StreamBatched(jobs, batch, nil, func(i int, o Outcome) {
				if i != nextIdx {
					t.Fatalf("workers=%d batch=%d: emitted job %d, want %d", workers, batch, i, nextIdx)
				}
				nextIdx++
				if !o.Same(want[i]) {
					t.Fatalf("workers=%d batch=%d: job %d outcome %+v, solo %+v", workers, batch, i, o, want[i])
				}
			})
			if nextIdx != len(jobs) {
				t.Fatalf("workers=%d batch=%d: %d of %d outcomes delivered", workers, batch, nextIdx, len(jobs))
			}
		}
	}
}

// TestStreamBatchedGroupBoundaries — units never merge jobs whose group
// values differ, so a two-family job list (different graphs back to
// back) runs each family on its own plan and every outcome matches its
// solo run.
func TestStreamBatchedGroupBoundaries(t *testing.T) {
	a := graph.NewClique(10)
	b := graph.NewClique(16)
	jobs := append(TrialJobs(a, factory, 5, 5, sim.Options{}),
		TrialJobs(b, factory, 6, 5, sim.Options{})...)
	want := Pool{Workers: 1}.Run(jobs)
	got := Pool{Workers: 2}.RunBatched(jobs, 8, func(i int) int { return i / 5 })
	for i := range want {
		if !got[i].Same(want[i]) {
			t.Fatalf("job %d: batched %+v, solo %+v", i, got[i], want[i])
		}
	}
}

// TestRunBatchedCrashIsolation — a lane panicking at Reset (star
// protocol on a clique) fails its own trial with the solo panic message
// while the rest of its unit completes.
func TestRunBatchedCrashIsolation(t *testing.T) {
	clique := graph.NewClique(8)
	jobs := []Job{
		{Graph: clique, New: factory, Seed: 1},
		{Graph: clique, New: func() sim.Protocol { return star.New() }, Seed: 2},
		{Graph: clique, New: factory, Seed: 3},
	}
	want := Pool{Workers: 1}.Run(jobs)
	got := Pool{Workers: 1}.RunBatched(jobs, 3, nil)
	for i := range want {
		if !got[i].Same(want[i]) {
			t.Fatalf("job %d: batched %+v, solo %+v", i, got[i], want[i])
		}
	}
	if !got[1].Failed() || got[1].Err == "" {
		t.Fatalf("crashed lane outcome %+v, want Failed", got[1])
	}
}

// TestRunBatchedSurfacesCompileErrors — a misconfigured unit fails every
// trial with the configuration error solo runs report.
func TestRunBatchedSurfacesCompileErrors(t *testing.T) {
	g := graph.NewClique(8)
	jobs := TrialJobs(g, factory, 3, 4, sim.Options{DropRate: 1.5})
	want := Pool{Workers: 1}.Run(jobs)
	got := Pool{Workers: 1}.RunBatched(jobs, 4, nil)
	for i := range want {
		if !got[i].Same(want[i]) {
			t.Fatalf("job %d: batched %+v, solo %+v", i, got[i], want[i])
		}
		if !strings.Contains(got[i].Err, "drop rate") {
			t.Fatalf("job %d: Err %q, want drop-rate error", i, got[i].Err)
		}
	}
}

// TestStreamBatchedMeterAndProgress — per-worker telemetry shards merge
// into the same deterministic aggregate as solo streaming (labels move
// to the /batch dispatch but run/step totals are identical), and
// Progress stays monotone ending at done == total.
func TestStreamBatchedMeterAndProgress(t *testing.T) {
	g := graph.NewClique(12)
	jobs := TrialJobs(g, factory, 7, 12, sim.Options{})
	soloMeter := new(telemetry.Counters)
	Pool{Workers: 1, Meter: soloMeter}.Run(jobs)
	solo := soloMeter.Snapshot()

	meter := new(telemetry.Counters)
	last := 0
	final := 0
	Pool{Workers: 3, Meter: meter, Progress: func(done, total int) {
		if done <= last || total != len(jobs) {
			t.Errorf("progress (%d, %d) after %d", done, total, last)
		}
		last = done
		final = done
	}}.StreamBatched(jobs, 4, nil, func(int, Outcome) {})
	if final != len(jobs) {
		t.Fatalf("final progress %d, want %d", final, len(jobs))
	}
	got := meter.Snapshot()
	if got.StepsExecuted != solo.StepsExecuted || got.ChunksRun != solo.ChunksRun ||
		got.RNGRefills != solo.RNGRefills || got.DropsApplied != solo.DropsApplied ||
		got.TrialsRun != solo.TrialsRun || got.TrialsStabilized != solo.TrialsStabilized {
		t.Fatalf("batched snapshot %+v, solo %+v", got, solo)
	}
	if got.KernelDispatch["clique-uniform/table/batch"] != int64(len(jobs)) {
		t.Fatalf("dispatch %v, want %d lockstep runs", got.KernelDispatch, len(jobs))
	}
}

// TestStreamBatchedWidthOne degenerates to Stream (and tolerates empty
// job lists).
func TestStreamBatchedWidthOne(t *testing.T) {
	g := graph.NewClique(8)
	jobs := TrialJobs(g, factory, 2, 3, sim.Options{})
	want := Pool{Workers: 1}.Run(jobs)
	got := Pool{Workers: 1}.RunBatched(jobs, 1, nil)
	for i := range want {
		if !got[i].Same(want[i]) {
			t.Fatalf("job %d: batched %+v, solo %+v", i, got[i], want[i])
		}
	}
	Pool{}.StreamBatched(nil, 8, nil, func(int, Outcome) { t.Fatal("emit on empty batch") })
}
