package runner

import (
	"bytes"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"popgraph/internal/graph"
	"popgraph/internal/protocols/beauquier"
	"popgraph/internal/protocols/star"
	"popgraph/internal/sim"
	"popgraph/internal/telemetry"
)

func factory() sim.Protocol { return beauquier.New() }

func TestSeedForMatchesLegacyDerivation(t *testing.T) {
	// The experiment harness derived trial seeds as
	// seed + gamma*(i+1) before the runner existed; published numbers
	// depend on it, so SeedFor must reproduce it exactly.
	const base = 12345
	for i := 0; i < 4; i++ {
		want := uint64(base) + 0x9e3779b97f4a7c15*uint64(i+1)
		if got := SeedFor(base, i); got != want {
			t.Fatalf("SeedFor(%d, %d) = %d, want %d", base, i, got, want)
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	g := graph.NewClique(16)
	jobs := TrialJobs(g, factory, 99, 12, sim.Options{})
	serial := Pool{Workers: 1}.Run(jobs)
	parallel := Pool{Workers: runtime.NumCPU()}.Run(jobs)
	if len(serial) != 12 || len(parallel) != 12 {
		t.Fatalf("outcome counts %d, %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !serial[i].Same(parallel[i]) {
			t.Fatalf("trial %d diverged: serial %+v parallel %+v",
				i, serial[i], parallel[i])
		}
		if !serial[i].Result.Stabilized || serial[i].Result.Steps <= 0 {
			t.Fatalf("trial %d did not stabilize: %+v", i, serial[i])
		}
	}
}

func TestRunWithDropRateDeterministic(t *testing.T) {
	g := graph.Cycle(12)
	jobs := TrialJobs(g, factory, 7, 6, sim.Options{DropRate: 0.5})
	a := Pool{Workers: 1}.Run(jobs)
	b := Pool{Workers: 4}.Run(jobs)
	for i := range a {
		if !a[i].Same(b[i]) {
			t.Fatalf("trial %d diverged under drops: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestScriptedSamplerThroughRunner(t *testing.T) {
	// The star protocol stabilizes on the first interaction, so a
	// one-pair script is a complete deterministic run.
	g := graph.Star(5)
	jobs := []Job{{
		Graph: g,
		New:   func() sim.Protocol { return star.New() },
		Seed:  1,
		Opts: sim.Options{
			Sampler:  &sim.ScriptedSampler{Pairs: [][2]int{{0, 3}}},
			MaxSteps: 1,
		},
	}}
	out := Run(jobs)
	if len(out) != 1 || !out[0].Result.Stabilized || out[0].Result.Steps != 1 {
		t.Fatalf("scripted run outcome %+v", out)
	}
	if out[0].Result.Leader != 0 {
		t.Fatalf("leader %d, want center 0", out[0].Result.Leader)
	}
}

func TestProgressMonotonicAndFinal(t *testing.T) {
	g := graph.NewClique(8)
	jobs := TrialJobs(g, factory, 3, 9, sim.Options{})
	for _, workers := range []int{1, 4} {
		var dones []int
		pool := Pool{Workers: workers, Progress: func(done, total int) {
			// Calls come from one reporter goroutine; no locking needed.
			if total != 9 {
				t.Errorf("total %d, want 9", total)
			}
			dones = append(dones, done)
		}}
		pool.Run(jobs)
		// Updates may coalesce under a slow or busy reporter, so the
		// contract is strict monotonicity plus a guaranteed final call —
		// not one call per trial.
		if len(dones) == 0 {
			t.Fatal("progress never called")
		}
		for i := 1; i < len(dones); i++ {
			if dones[i] <= dones[i-1] {
				t.Fatalf("progress counts not strictly increasing: %v", dones)
			}
		}
		if last := dones[len(dones)-1]; last != 9 {
			t.Fatalf("final progress count %d, want 9 (calls: %v)", last, dones)
		}
	}
}

// TestSlowProgressDoesNotSerializeTrials is the regression test for the
// pool calling Progress while holding its completion lock: a slow
// callback used to gate every trial completion, so a batch took at
// least trials × callback-time regardless of worker count. The callback
// now runs on a dedicated reporter goroutine with coalescing, so the
// batch finishes on simulation time, not callback time.
func TestSlowProgressDoesNotSerializeTrials(t *testing.T) {
	g := graph.NewClique(8)
	const trials = 12
	jobs := TrialJobs(g, factory, 3, trials, sim.Options{})
	const callbackDelay = 30 * time.Millisecond
	var calls atomic.Int64
	pool := Pool{Workers: 4, Progress: func(done, total int) {
		calls.Add(1)
		time.Sleep(callbackDelay)
	}}
	start := time.Now()
	pool.Run(jobs)
	elapsed := time.Since(start)
	// Under the old serialized behaviour this takes >= trials ×
	// callbackDelay = 360ms; coalescing needs only a handful of calls.
	// The bound is loose (half the serialized floor) to stay robust on
	// slow CI machines.
	if elapsed >= trials*callbackDelay/2 {
		t.Fatalf("batch took %v with a %v callback — progress still serializes trials (%d calls)",
			elapsed, callbackDelay, calls.Load())
	}
	if calls.Load() == 0 {
		t.Fatal("progress never called")
	}
}

// TestPoolMeterAggregates — a pool-level meter must see every trial —
// steps equal to the sum of per-outcome steps, one dispatch per trial,
// trial latency histogram counts matching — via per-worker shards
// merged after the drain.
func TestPoolMeterAggregates(t *testing.T) {
	g := graph.NewClique(12)
	const trials = 10
	jobs := TrialJobs(g, factory, 11, trials, sim.Options{})
	meter := new(telemetry.Counters)
	outs := Pool{Workers: 4, Meter: meter}.Run(jobs)
	s := meter.Snapshot()
	var wantSteps int64
	var wantStab int64
	for _, o := range outs {
		wantSteps += o.Result.Steps
		if o.Result.Stabilized {
			wantStab++
		}
	}
	if s.StepsExecuted != wantSteps {
		t.Fatalf("meter steps %d, outcomes sum %d", s.StepsExecuted, wantSteps)
	}
	if s.TrialsRun != trials || s.TrialsStabilized != wantStab || s.TrialsFailed != 0 {
		t.Fatalf("trial counts: %+v", s)
	}
	if s.TrialNs.Count != trials || s.QueueWaitNs.Count != trials {
		t.Fatalf("latency histogram counts: trial %d queue %d, want %d",
			s.TrialNs.Count, s.QueueWaitNs.Count, trials)
	}
	var runs int64
	for _, c := range s.KernelDispatch {
		runs += c
	}
	if runs != trials {
		t.Fatalf("kernel dispatch runs %d, want %d (%v)", runs, trials, s.KernelDispatch)
	}
	var sawElapsed bool
	for _, o := range outs {
		if o.ElapsedNs < 0 || o.QueueWaitNs < 0 {
			t.Fatalf("negative timing: %+v", o)
		}
		if o.ElapsedNs > 0 {
			sawElapsed = true
		}
	}
	if !sawElapsed {
		t.Fatal("no outcome recorded elapsed time")
	}
}

// TestPoolMeterCountsFailedTrials — a crashed trial flushes no engine
// accounting (its recorded steps are 0) but is still counted as a
// failed trial, keeping snapshot steps equal to the results-log sum.
func TestPoolMeterCountsFailedTrials(t *testing.T) {
	clique := graph.NewClique(8)
	jobs := []Job{
		{Graph: clique, New: factory, Seed: 1, Opts: sim.Options{}},
		{Graph: clique, New: func() sim.Protocol { return star.New() }, Seed: 2, Opts: sim.Options{}},
	}
	meter := new(telemetry.Counters)
	outs := Pool{Workers: 2, Meter: meter}.Run(jobs)
	s := meter.Snapshot()
	if s.TrialsRun != 2 || s.TrialsFailed != 1 {
		t.Fatalf("trial counts: %+v", s)
	}
	if want := outs[0].Result.Steps + outs[1].Result.Steps; s.StepsExecuted != want {
		t.Fatalf("meter steps %d, outcomes sum %d", s.StepsExecuted, want)
	}
}

func TestPoolJournalRecordsRunSpan(t *testing.T) {
	g := graph.NewClique(8)
	jobs := TrialJobs(g, factory, 5, 3, sim.Options{})
	var buf bytes.Buffer
	j := telemetry.NewJournal(&buf)
	Pool{Workers: 2, Journal: j}.Run(jobs)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Span != "run" {
		t.Fatalf("journal records: %+v", recs)
	}
	if recs[0].Attrs["trials"] != 3.0 || recs[0].Attrs["workers"] != 2.0 {
		t.Fatalf("run span attrs: %+v", recs[0].Attrs)
	}
}

// TestPanickingTrialIsIsolated — one crashing trial (star protocol on a
// non-star graph, the sweep-grid scenario) must yield a failed Outcome
// while every other job in the batch still completes — previously the
// panic escaped the worker goroutine and killed the whole process.
func TestPanickingTrialIsIsolated(t *testing.T) {
	clique := graph.NewClique(8)
	jobs := []Job{
		{Graph: clique, New: factory, Seed: 1, Opts: sim.Options{}},
		{Graph: clique, New: func() sim.Protocol { return star.New() }, Seed: 2, Opts: sim.Options{}},
		{Graph: clique, New: factory, Seed: 3, Opts: sim.Options{}},
	}
	for _, workers := range []int{1, 4} {
		out := Pool{Workers: workers}.Run(jobs)
		if len(out) != 3 {
			t.Fatalf("got %d outcomes", len(out))
		}
		bad := out[1]
		if !bad.Failed() || bad.Err == "" {
			t.Fatalf("crashed trial outcome %+v, want Failed", bad)
		}
		if bad.Result.Stabilized || bad.Result.Leader != -1 || bad.Result.Steps != 0 {
			t.Fatalf("crashed trial result %+v", bad.Result)
		}
		for _, i := range []int{0, 2} {
			if out[i].Failed() || !out[i].Result.Stabilized {
				t.Fatalf("healthy trial %d outcome %+v", i, out[i])
			}
		}
	}
}

func TestTrialJobsFloorsAtOne(t *testing.T) {
	g := graph.NewClique(4)
	if got := len(TrialJobs(g, factory, 1, 0, sim.Options{})); got != 1 {
		t.Fatalf("TrialJobs with 0 trials built %d jobs, want 1", got)
	}
}

func TestRunEmpty(t *testing.T) {
	if got := Run(nil); len(got) != 0 {
		t.Fatalf("Run(nil) returned %d outcomes", len(got))
	}
}

// TestRunSurfacesCompileErrors — an invalid run configuration (here a
// drop rate outside [0, 1)) must surface as the trial's Outcome.Err via
// sim.RunE's error return — not by recovering a panic — and must not
// take down the batch.
func TestRunSurfacesCompileErrors(t *testing.T) {
	g := graph.NewClique(8)
	bad := TrialJobs(g, factory, 3, 1, sim.Options{DropRate: 1.5})
	good := TrialJobs(g, factory, 3, 1, sim.Options{})
	outs := Pool{Workers: 2}.Run(append(bad, good...))
	if !outs[0].Failed() || !strings.Contains(outs[0].Err, "drop rate") {
		t.Fatalf("bad config outcome %+v, want drop-rate error", outs[0])
	}
	if outs[0].Result.Stabilized || outs[0].Result.Leader != -1 {
		t.Fatalf("failed trial carries a result: %+v", outs[0].Result)
	}
	if outs[1].Failed() || !outs[1].Result.Stabilized {
		t.Fatalf("good trial after failed one: %+v", outs[1])
	}
}

// TestStreamDeliversInJobOrder — Stream's cell-completion callback fires
// exactly once per job, in strictly ascending job order, on a single
// goroutine, whatever order the workers finish in — and the streamed
// outcomes agree with Run's.
func TestStreamDeliversInJobOrder(t *testing.T) {
	g := graph.NewClique(12)
	jobs := TrialJobs(g, factory, 4242, 40, sim.Options{})
	want := Pool{Workers: 1}.Run(jobs)
	for _, workers := range []int{1, 3, runtime.NumCPU()} {
		var order []int
		var got []Outcome
		Pool{Workers: workers}.Stream(jobs, func(i int, o Outcome) {
			// No locking: emit is specified to be serialized; the race
			// detector run makes this assertion real.
			order = append(order, i)
			got = append(got, o)
		})
		if len(order) != len(jobs) {
			t.Fatalf("workers=%d: %d emits, want %d", workers, len(order), len(jobs))
		}
		for i, idx := range order {
			if idx != i {
				t.Fatalf("workers=%d: emit %d delivered job %d (out of order)", workers, i, idx)
			}
			if !got[i].Same(want[i]) {
				t.Fatalf("workers=%d: streamed outcome %d differs from Run's", workers, i)
			}
		}
	}
}

// TestStreamProgressAndMeterStillWork — the streaming path keeps the
// pool's progress callbacks and meter shards wired up.
func TestStreamProgressAndMeterStillWork(t *testing.T) {
	g := graph.NewClique(8)
	jobs := TrialJobs(g, factory, 7, 10, sim.Options{})
	meter := new(telemetry.Counters)
	var last atomic.Int64
	var steps int64
	Pool{Workers: 4, Meter: meter, Progress: func(done, total int) {
		last.Store(int64(done))
		if total != 10 {
			panic("bad total")
		}
	}}.Stream(jobs, func(_ int, o Outcome) { steps += o.Result.Steps })
	if last.Load() != 10 {
		t.Fatalf("final progress %d, want 10", last.Load())
	}
	if got := meter.Snapshot().StepsExecuted; got != steps {
		t.Fatalf("meter steps %d, streamed sum %d", got, steps)
	}
}
