package runner

import (
	"runtime"
	"strings"
	"sync"
	"testing"

	"popgraph/internal/graph"
	"popgraph/internal/protocols/beauquier"
	"popgraph/internal/protocols/star"
	"popgraph/internal/sim"
)

func factory() sim.Protocol { return beauquier.New() }

func TestSeedForMatchesLegacyDerivation(t *testing.T) {
	// The experiment harness derived trial seeds as
	// seed + gamma*(i+1) before the runner existed; published numbers
	// depend on it, so SeedFor must reproduce it exactly.
	const base = 12345
	for i := 0; i < 4; i++ {
		want := uint64(base) + 0x9e3779b97f4a7c15*uint64(i+1)
		if got := SeedFor(base, i); got != want {
			t.Fatalf("SeedFor(%d, %d) = %d, want %d", base, i, got, want)
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	g := graph.NewClique(16)
	jobs := TrialJobs(g, factory, 99, 12, sim.Options{})
	serial := Pool{Workers: 1}.Run(jobs)
	parallel := Pool{Workers: runtime.NumCPU()}.Run(jobs)
	if len(serial) != 12 || len(parallel) != 12 {
		t.Fatalf("outcome counts %d, %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("trial %d diverged: serial %+v parallel %+v",
				i, serial[i], parallel[i])
		}
		if !serial[i].Result.Stabilized || serial[i].Result.Steps <= 0 {
			t.Fatalf("trial %d did not stabilize: %+v", i, serial[i])
		}
	}
}

func TestRunWithDropRateDeterministic(t *testing.T) {
	g := graph.Cycle(12)
	jobs := TrialJobs(g, factory, 7, 6, sim.Options{DropRate: 0.5})
	a := Pool{Workers: 1}.Run(jobs)
	b := Pool{Workers: 4}.Run(jobs)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d diverged under drops: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestScriptedSamplerThroughRunner(t *testing.T) {
	// The star protocol stabilizes on the first interaction, so a
	// one-pair script is a complete deterministic run.
	g := graph.Star(5)
	jobs := []Job{{
		Graph: g,
		New:   func() sim.Protocol { return star.New() },
		Seed:  1,
		Opts: sim.Options{
			Sampler:  &sim.ScriptedSampler{Pairs: [][2]int{{0, 3}}},
			MaxSteps: 1,
		},
	}}
	out := Run(jobs)
	if len(out) != 1 || !out[0].Result.Stabilized || out[0].Result.Steps != 1 {
		t.Fatalf("scripted run outcome %+v", out)
	}
	if out[0].Result.Leader != 0 {
		t.Fatalf("leader %d, want center 0", out[0].Result.Leader)
	}
}

func TestProgressReportsEveryTrial(t *testing.T) {
	g := graph.NewClique(8)
	jobs := TrialJobs(g, factory, 3, 9, sim.Options{})
	var mu sync.Mutex
	var dones []int
	pool := Pool{Workers: 4, Progress: func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if total != 9 {
			t.Errorf("total %d, want 9", total)
		}
		dones = append(dones, done)
	}}
	pool.Run(jobs)
	if len(dones) != 9 {
		t.Fatalf("progress called %d times, want 9", len(dones))
	}
	// Calls are serialized and counted under one lock, so the reported
	// counts must be exactly 1..total in order.
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("progress counts out of order: %v", dones)
		}
	}
}

// TestPanickingTrialIsIsolated: one crashing trial (star protocol on a
// non-star graph, the sweep-grid scenario) must yield a failed Outcome
// while every other job in the batch still completes — previously the
// panic escaped the worker goroutine and killed the whole process.
func TestPanickingTrialIsIsolated(t *testing.T) {
	clique := graph.NewClique(8)
	jobs := []Job{
		{Graph: clique, New: factory, Seed: 1, Opts: sim.Options{}},
		{Graph: clique, New: func() sim.Protocol { return star.New() }, Seed: 2, Opts: sim.Options{}},
		{Graph: clique, New: factory, Seed: 3, Opts: sim.Options{}},
	}
	for _, workers := range []int{1, 4} {
		out := Pool{Workers: workers}.Run(jobs)
		if len(out) != 3 {
			t.Fatalf("got %d outcomes", len(out))
		}
		bad := out[1]
		if !bad.Failed() || bad.Err == "" {
			t.Fatalf("crashed trial outcome %+v, want Failed", bad)
		}
		if bad.Result.Stabilized || bad.Result.Leader != -1 || bad.Result.Steps != 0 {
			t.Fatalf("crashed trial result %+v", bad.Result)
		}
		for _, i := range []int{0, 2} {
			if out[i].Failed() || !out[i].Result.Stabilized {
				t.Fatalf("healthy trial %d outcome %+v", i, out[i])
			}
		}
	}
}

func TestTrialJobsFloorsAtOne(t *testing.T) {
	g := graph.NewClique(4)
	if got := len(TrialJobs(g, factory, 1, 0, sim.Options{})); got != 1 {
		t.Fatalf("TrialJobs with 0 trials built %d jobs, want 1", got)
	}
}

func TestRunEmpty(t *testing.T) {
	if got := Run(nil); len(got) != 0 {
		t.Fatalf("Run(nil) returned %d outcomes", len(got))
	}
}

// TestRunSurfacesCompileErrors: an invalid run configuration (here a
// drop rate outside [0, 1)) must surface as the trial's Outcome.Err via
// sim.RunE's error return — not by recovering a panic — and must not
// take down the batch.
func TestRunSurfacesCompileErrors(t *testing.T) {
	g := graph.NewClique(8)
	bad := TrialJobs(g, factory, 3, 1, sim.Options{DropRate: 1.5})
	good := TrialJobs(g, factory, 3, 1, sim.Options{})
	outs := Pool{Workers: 2}.Run(append(bad, good...))
	if !outs[0].Failed() || !strings.Contains(outs[0].Err, "drop rate") {
		t.Fatalf("bad config outcome %+v, want drop-rate error", outs[0])
	}
	if outs[0].Result.Stabilized || outs[0].Result.Leader != -1 {
		t.Fatalf("failed trial carries a result: %+v", outs[0].Result)
	}
	if outs[1].Failed() || !outs[1].Result.Stabilized {
		t.Fatalf("good trial after failed one: %+v", outs[1])
	}
}
