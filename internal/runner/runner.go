// Package runner is the batch trial scheduler: it fans independent
// simulation trials across a worker pool while keeping results
// deterministic. Every trial carries its own explicit seed, derived from
// a base seed and the trial index, and outcomes are returned in job
// order, so a batch produces byte-identical results at one worker and at
// runtime.NumCPU() workers. Trials are crash-isolated: a panicking trial
// is recorded as a failed Outcome instead of taking down the process.
//
// The experiment harness (internal/exp), cmd/popsim and cmd/sweep all
// execute their trials through this package.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"popgraph/internal/graph"
	"popgraph/internal/sim"
	"popgraph/internal/xrand"
)

// goldenGamma is the 64-bit golden-ratio increment used to derive
// per-trial seeds; distinct trials land in well-separated splitmix
// streams.
const goldenGamma = 0x9e3779b97f4a7c15

// SeedFor derives the deterministic seed of trial i (0-based) from a
// base seed. The derivation is position-only: it does not depend on
// worker count or scheduling order.
func SeedFor(base uint64, trial int) uint64 {
	return base + goldenGamma*uint64(trial+1)
}

// Job is one independent simulation trial: a protocol instance from New
// runs on Graph with a private generator seeded from Seed.
type Job struct {
	Graph graph.Graph
	// New must return a fresh protocol instance; instances are never
	// shared between concurrently running jobs.
	New  func() sim.Protocol
	Seed uint64
	Opts sim.Options
}

// Outcome is the result of one Job.
type Outcome struct {
	Result sim.Result
	// Backup is the number of nodes that entered the protocol's backup
	// phase (0 for protocols without one).
	Backup int
	// Err is the failure message when the trial did not complete: an
	// invalid run configuration rejected by sim.Compile (tiny graph,
	// drop rate outside [0, 1), scheduler built for a different graph),
	// or the panic message when the trial crashed (e.g. a protocol
	// rejecting its graph at Reset inside a sweep grid); empty on
	// success. A failed trial has Result.Stabilized = false and
	// Leader = -1, and never takes down the batch: the pool records the
	// failure and keeps draining the remaining jobs.
	Err string
}

// Failed reports whether the trial crashed instead of completing.
func (o Outcome) Failed() bool { return o.Err != "" }

// backupReporter is implemented by protocols with a backup phase.
type backupReporter interface{ InBackup() int }

// Pool schedules jobs across worker goroutines.
type Pool struct {
	// Workers is the number of concurrent trials; <= 0 means
	// GOMAXPROCS(0).
	Workers int
	// Progress, if non-nil, is called after each trial completes with the
	// number of finished trials and the total. Calls are serialized.
	Progress func(done, total int)
}

// Run executes all jobs and returns their outcomes in job order,
// independent of worker count. It blocks until every job has finished.
func (p Pool) Run(jobs []Job) []Outcome {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	outcomes := make([]Outcome, len(jobs))
	if len(jobs) == 0 {
		return outcomes
	}
	var (
		next int64 = -1
		done int   // guarded by mu, so Progress sees strictly increasing counts
		wg   sync.WaitGroup
		mu   sync.Mutex
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(jobs) {
					return
				}
				outcomes[i] = runOne(jobs[i])
				if p.Progress != nil {
					mu.Lock()
					done++
					p.Progress(done, len(jobs))
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return outcomes
}

// Run executes jobs with the default pool (one worker per CPU).
func Run(jobs []Job) []Outcome { return Pool{}.Run(jobs) }

func runOne(j Job) (o Outcome) {
	// The recover only catches genuine crashes (a protocol panicking at
	// Reset or Step); configuration errors surface through sim.RunE
	// below without ever raising a panic.
	defer func() {
		if p := recover(); p != nil {
			o = Outcome{
				Result: sim.Result{Steps: 0, Stabilized: false, Leader: -1},
				Err:    fmt.Sprint(p),
			}
		}
	}()
	p := j.New()
	r := xrand.New(j.Seed)
	res, err := sim.RunE(j.Graph, p, r, j.Opts)
	if err != nil {
		return Outcome{
			Result: sim.Result{Steps: 0, Stabilized: false, Leader: -1},
			Err:    err.Error(),
		}
	}
	o = Outcome{Result: res}
	if br, ok := p.(backupReporter); ok {
		o.Backup = br.InBackup()
	}
	return o
}

// TrialJobs builds the standard batch: trials independent repetitions of
// factory() on g, seeding trial i with SeedFor(seed, i). trials < 1 is
// treated as 1.
func TrialJobs(g graph.Graph, factory func() sim.Protocol, seed uint64,
	trials int, opts sim.Options) []Job {
	if trials < 1 {
		trials = 1
	}
	jobs := make([]Job, trials)
	for i := range jobs {
		jobs[i] = Job{Graph: g, New: factory, Seed: SeedFor(seed, i), Opts: opts}
	}
	return jobs
}
