// Package runner is the batch trial scheduler: it fans independent
// simulation trials across a worker pool while keeping results
// deterministic. Every trial carries its own explicit seed, derived from
// a base seed and the trial index, and outcomes are returned in job
// order, so a batch produces byte-identical results at one worker and at
// runtime.NumCPU() workers. Trials are crash-isolated: a panicking trial
// is recorded as a failed Outcome instead of taking down the process.
//
// The experiment harness (internal/exp), cmd/popsim and cmd/sweep all
// execute their trials through this package.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"popgraph/internal/graph"
	"popgraph/internal/sim"
	"popgraph/internal/telemetry"
	"popgraph/internal/xrand"
)

// goldenGamma is the 64-bit golden-ratio increment used to derive
// per-trial seeds; distinct trials land in well-separated splitmix
// streams.
const goldenGamma = 0x9e3779b97f4a7c15

// SeedFor derives the deterministic seed of trial i (0-based) from a
// base seed. The derivation is position-only: it does not depend on
// worker count or scheduling order.
func SeedFor(base uint64, trial int) uint64 {
	return base + goldenGamma*uint64(trial+1)
}

// Job is one independent simulation trial: a protocol instance from New
// runs on Graph with a private generator seeded from Seed.
type Job struct {
	Graph graph.Graph
	// New must return a fresh protocol instance; instances are never
	// shared between concurrently running jobs.
	New  func() sim.Protocol
	Seed uint64
	Opts sim.Options
}

// Outcome is the result of one Job.
type Outcome struct {
	Result sim.Result
	// Backup is the number of nodes that entered the protocol's backup
	// phase (0 for protocols without one).
	Backup int
	// Err is the failure message when the trial did not complete: an
	// invalid run configuration rejected by sim.Compile (tiny graph,
	// drop rate outside [0, 1), scheduler built for a different graph),
	// or the panic message when the trial crashed (e.g. a protocol
	// rejecting its graph at Reset inside a sweep grid); empty on
	// success. A failed trial has Result.Stabilized = false and
	// Leader = -1, and never takes down the batch: the pool records the
	// failure and keeps draining the remaining jobs.
	Err string
	// ElapsedNs is the trial's wall-clock execution time and QueueWaitNs
	// the time it spent waiting between batch submission and a worker
	// picking it up, both in nanoseconds. Timing is host- and
	// load-dependent — everything else in an Outcome is deterministic for
	// a fixed seed, so determinism comparisons go through Same, not
	// struct equality.
	ElapsedNs   int64
	QueueWaitNs int64
}

// Same reports whether two outcomes agree on every deterministic field
// (result, backup count, error), ignoring the wall-clock timing.
func (o Outcome) Same(other Outcome) bool {
	return o.Result == other.Result && o.Backup == other.Backup && o.Err == other.Err
}

// Failed reports whether the trial crashed instead of completing.
func (o Outcome) Failed() bool { return o.Err != "" }

// backupReporter is implemented by protocols with a backup phase.
type backupReporter interface{ InBackup() int }

// Pool schedules jobs across worker goroutines.
type Pool struct {
	// Workers is the number of concurrent trials; <= 0 means
	// GOMAXPROCS(0).
	Workers int
	// Progress, if non-nil, receives completion updates with the number
	// of finished trials and the total. Calls are serialized on a
	// dedicated goroutine, off the workers' critical path: a slow
	// callback coalesces updates (counts stay strictly increasing and the
	// final call always reports done == total) instead of serializing
	// trial completion.
	Progress func(done, total int)
	// Meter, if non-nil, aggregates flight-recorder telemetry for the
	// batch. Each worker feeds a private shard — engine accounting via
	// sim.Options.Meter plus per-trial wall-time and queue-wait — and the
	// shards are merged into Meter after the pool drains, so the hot path
	// never contends on shared counters. Jobs that already carry their
	// own Opts.Meter keep it.
	Meter *telemetry.Counters
	// Journal, if non-nil, receives a "run" span covering the whole
	// batch. Nil is fine: a nil journal records nothing.
	Journal *telemetry.Journal
}

// Run executes all jobs and returns their outcomes in job order,
// independent of worker count. It blocks until every job has finished.
func (p Pool) Run(jobs []Job) []Outcome {
	outcomes := make([]Outcome, len(jobs))
	p.Stream(jobs, func(i int, o Outcome) { outcomes[i] = o })
	return outcomes
}

// Stream executes all jobs and delivers each outcome exactly once via
// emit — serialized on a single goroutine, in job order, as soon as the
// outcome and all its predecessors are available. This is the
// cell-completion seam streaming consumers build on: a JSONL writer can
// flush record i the moment trials 0..i have finished (no end-of-batch
// buffering), and a checkpoint can mark cell i completed knowing every
// earlier cell already flushed. Workers never block on emit; outcomes
// completing ahead of a straggler buffer in a reorder window (bounded by
// the batch in the worst case, by the in-flight spread in practice).
// Stream blocks until every job has finished and been delivered.
func (p Pool) Stream(jobs []Job, emit func(i int, o Outcome)) {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if len(jobs) == 0 {
		return
	}
	endBatch := p.Journal.Span("run", map[string]any{"trials": len(jobs), "workers": workers})
	defer endBatch()
	var (
		start        = time.Now()
		next   int64 = -1
		done   atomic.Int64
		notify chan struct{}
		wg     sync.WaitGroup
		repWG  sync.WaitGroup
		emitWG sync.WaitGroup
	)
	// The drainer goroutine owns all emit calls: it reorders completions
	// into job order and flushes every ready prefix, so emit sees a
	// strictly sequential 0,1,2,... stream whatever order workers finish
	// in.
	type completion struct {
		i int
		o Outcome
	}
	completions := make(chan completion, workers)
	emitWG.Add(1)
	go func() {
		defer emitWG.Done()
		pending := make(map[int]Outcome)
		flush := 0
		for c := range completions {
			pending[c.i] = c.o
			for {
				o, ok := pending[flush]
				if !ok {
					break
				}
				delete(pending, flush)
				emit(flush, o)
				flush++
			}
		}
	}()
	if p.Progress != nil {
		// The reporter goroutine owns all Progress calls: workers only
		// bump the atomic counter and poke the buffered channel (never
		// blocking), so a slow callback coalesces updates rather than
		// stalling trial completion. Counts are strictly increasing
		// because one goroutine reads the monotone counter, and the
		// post-close report guarantees a final done == total call even
		// when the last notification was coalesced away.
		notify = make(chan struct{}, 1)
		repWG.Add(1)
		go func() {
			defer repWG.Done()
			last := int64(0)
			report := func() {
				if d := done.Load(); d > last {
					last = d
					p.Progress(int(d), len(jobs))
				}
			}
			for range notify {
				report()
			}
			report()
		}()
	}
	shards := make([]*telemetry.Counters, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		var shard *telemetry.Counters
		if p.Meter != nil {
			shard = new(telemetry.Counters)
			shards[w] = shard
		}
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				if shard != nil && j.Opts.Meter == nil {
					j.Opts.Meter = shard
				}
				queueWait := time.Since(start)
				t0 := time.Now()
				o := runOne(j)
				o.ElapsedNs = time.Since(t0).Nanoseconds()
				o.QueueWaitNs = queueWait.Nanoseconds()
				if shard != nil {
					shard.AddTrial(o.ElapsedNs, o.QueueWaitNs, o.Result.Stabilized, o.Failed())
				}
				completions <- completion{i, o}
				done.Add(1)
				if notify != nil {
					select {
					case notify <- struct{}{}:
					default:
					}
				}
			}
		}()
	}
	wg.Wait()
	close(completions)
	emitWG.Wait()
	if notify != nil {
		close(notify)
		repWG.Wait()
	}
	if p.Meter != nil {
		for _, s := range shards {
			if s != nil {
				p.Meter.Merge(s.Snapshot())
			}
		}
	}
}

// Run executes jobs with the default pool (one worker per CPU).
func Run(jobs []Job) []Outcome { return Pool{}.Run(jobs) }

func runOne(j Job) (o Outcome) {
	// The recover only catches genuine crashes (a protocol panicking at
	// Reset or Step); configuration errors surface through sim.RunE
	// below without ever raising a panic.
	defer func() {
		if p := recover(); p != nil {
			o = Outcome{
				Result: sim.Result{Steps: 0, Stabilized: false, Leader: -1},
				Err:    fmt.Sprint(p),
			}
		}
	}()
	p := j.New()
	r := xrand.New(j.Seed)
	res, err := sim.RunE(j.Graph, p, r, j.Opts)
	if err != nil {
		return Outcome{
			Result: sim.Result{Steps: 0, Stabilized: false, Leader: -1},
			Err:    err.Error(),
		}
	}
	o = Outcome{Result: res}
	if br, ok := p.(backupReporter); ok {
		o.Backup = br.InBackup()
	}
	return o
}

// TrialJobs builds the standard batch: trials independent repetitions of
// factory() on g, seeding trial i with SeedFor(seed, i). trials < 1 is
// treated as 1.
func TrialJobs(g graph.Graph, factory func() sim.Protocol, seed uint64,
	trials int, opts sim.Options) []Job {
	if trials < 1 {
		trials = 1
	}
	jobs := make([]Job, trials)
	for i := range jobs {
		jobs[i] = Job{Graph: g, New: factory, Seed: SeedFor(seed, i), Opts: opts}
	}
	return jobs
}
