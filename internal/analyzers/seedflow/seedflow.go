// Package seedflow checks that per-trial RNG construction flows through
// the sanctioned seed-derivation helpers instead of ad-hoc arithmetic.
//
// The repo's reproducibility contract says a (base seed, trial index)
// pair fully determines a trial's random stream. runner.SeedFor
// implements that with a golden-ratio gamma whose increments are
// well-spread in the xoshiro seed space; sweep.mix runs full splitmix64
// finalization. Ad-hoc recipes like xrand.New(seed + uint64(i)*977)
// produce correlated streams across trials (small odd multipliers only
// permute low bits) and — worse — each experiment inventing its own
// recipe means the same (seed, trial) pair names different streams in
// different tools.
//
// The analyzer flags calls to xrand.New whose argument is
//   - a compile-time constant (a hard-wired stream shared by every
//     caller), or
//   - arithmetic mixing an enclosing loop variable (an ad-hoc per-trial
//     derivation).
//
// Sanctioned forms pass untouched: any call expression
// (runner.SeedFor(base, trial), mix(...)), a plain variable or field
// (the seed was derived elsewhere), and anything outside loops that
// isn't constant. examples/ are demo code and exempt wholesale.
//
// Sharded sweeps add a second seam. A shard owns every m-th cell of the
// task-major grid, so a shard-local loop index i is NOT a trial number:
// the trial identity is the global (task, trial) pair, recovered from
// the planned cell (shard.Cell.Trial), never re-derived by arithmetic
// like i*m+shard. The analyzer therefore also flags runner.SeedFor
// calls whose trial argument is arithmetic over an enclosing loop
// variable — the off-by-shard recipe that makes every shard replay
// shard 0's seeds or scramble the grid correspondence. Passing a loop
// variable straight through (runner.SeedFor(base, trial)) or a planned
// field (cells[i].Trial) stays sanctioned.
//
// Lockstep batching adds the one arithmetic shape that IS a trial
// identity: a batch unit whose first lane is global trial off runs lane
// l as global trial off+l, so runner.SeedFor(base, off+l) — a single
// flat addition of the lane loop variable to a loop-independent offset
// — is the sanctioned batch seam (it is exactly how the batch/solo
// byte-equivalence contract names solo trial i). Only the flat additive
// form passes: any nesting or scaling (off+l*2, shardIdx*n+i, off+l+1)
// re-derives grid positions and stays flagged.
package seedflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"popgraph/internal/analyzers"
)

// xrandPath is the module path of the deterministic RNG package whose
// constructors this pass guards; runnerPath holds the sanctioned seed
// derivation whose trial argument the shard-seam rule inspects.
const (
	xrandPath  = "popgraph/internal/xrand"
	runnerPath = "popgraph/internal/runner"
)

// Analyzer is the seedflow pass.
var Analyzer = &analyzers.Analyzer{
	Name: "seedflow",
	Doc:  "require per-trial RNG seeds to flow from runner.SeedFor or a splitmix-style mixer, not constants or ad-hoc loop arithmetic",
	Run:  run,
}

func run(pass *analyzers.Pass) error {
	if pass.RelPath == "examples" || strings.HasPrefix(pass.RelPath, "examples/") {
		return nil
	}
	for _, file := range pass.Files {
		checkFile(pass, file)
	}
	return nil
}

// checkFile walks one file keeping a stack of loop-variable scopes so
// that a seed expression can be tested for references to any enclosing
// loop's variables.
func checkFile(pass *analyzers.Pass, file *ast.File) {
	loopVars := make(map[types.Object]bool)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			vars := declaredVars(pass, n.Init)
			pushLoop(pass, loopVars, vars, n.Body, walk)
			if n.Init != nil {
				ast.Inspect(n.Init, walk)
			}
			if n.Cond != nil {
				ast.Inspect(n.Cond, walk)
			}
			if n.Post != nil {
				ast.Inspect(n.Post, walk)
			}
			return false
		case *ast.RangeStmt:
			var vars []types.Object
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						vars = append(vars, obj)
					}
				}
			}
			pushLoop(pass, loopVars, vars, n.Body, walk)
			ast.Inspect(n.X, walk)
			return false
		case *ast.CallExpr:
			checkCall(pass, n, loopVars)
		}
		return true
	}
	ast.Inspect(file, walk)
}

// declaredVars returns the objects a for-init `i := 0` style statement
// declares.
func declaredVars(pass *analyzers.Pass, init ast.Stmt) []types.Object {
	assign, ok := init.(*ast.AssignStmt)
	if !ok {
		return nil
	}
	var vars []types.Object
	for _, lhs := range assign.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				vars = append(vars, obj)
			}
		}
	}
	return vars
}

// pushLoop walks body with vars added to the loop-variable set, then
// removes them again.
func pushLoop(pass *analyzers.Pass, loopVars map[types.Object]bool, vars []types.Object, body *ast.BlockStmt, walk func(ast.Node) bool) {
	for _, v := range vars {
		loopVars[v] = true
	}
	ast.Inspect(body, walk)
	for _, v := range vars {
		delete(loopVars, v)
	}
}

func checkCall(pass *analyzers.Pass, call *ast.CallExpr, loopVars map[types.Object]bool) {
	path, name := pass.PkgFuncCall(call)
	if path == runnerPath && name == "SeedFor" && len(call.Args) == 2 {
		// The trial argument must be a trial identity — the loop variable
		// itself, a planned (task, trial) cell field, or the batch-unit
		// offset off+lane — not shard-local arithmetic like i*m+shard,
		// which every shard would compute differently from the global
		// grid position it claims to run.
		if additiveOffset(pass, call.Args[1], loopVars) {
			return
		}
		if v := loopVarIn(pass, call.Args[1], loopVars); v != "" {
			pass.Reportf(call.Pos(),
				"runner.SeedFor trial argument mixes loop variable %s arithmetically (shard-local indices must map through the global (task, trial) cell, e.g. cells[%s].Trial, before seed derivation)",
				v, v)
		}
		return
	}
	if path != xrandPath || name != "New" || len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
		pass.Reportf(call.Pos(),
			"xrand.New with constant seed %s (every caller shares this stream; derive seeds with runner.SeedFor(base, trial))",
			tv.Value.String())
		return
	}
	if _, ok := arg.(*ast.CallExpr); ok {
		// Seed produced by a helper (runner.SeedFor, a splitmix mixer,
		// ...): the sanctioned shape.
		return
	}
	if v := loopVarIn(pass, arg, loopVars); v != "" {
		pass.Reportf(call.Pos(),
			"xrand.New seed mixes loop variable %s ad hoc (correlated streams across trials; use runner.SeedFor(base, trial) instead)",
			v)
	}
}

// additiveOffset reports whether e is the sanctioned batch-seam shape:
// one flat addition of an enclosing-loop variable to a loop-independent
// non-binary offset (off+l or l+off). The flatness requirements are
// what keep shard recipes out: a scaled or nested operand (l*2,
// shardIdx*n, off+l+1) is a re-derived grid position, not a unit base
// plus a lane number.
func additiveOffset(pass *analyzers.Pass, e ast.Expr, loopVars map[types.Object]bool) bool {
	b, ok := e.(*ast.BinaryExpr)
	if !ok || b.Op != token.ADD {
		return false
	}
	lane, off := b.X, b.Y
	if !isLoopVar(pass, lane, loopVars) {
		lane, off = off, lane
	}
	if !isLoopVar(pass, lane, loopVars) {
		return false
	}
	if _, nested := off.(*ast.BinaryExpr); nested {
		return false
	}
	return refLoopVar(pass, off, loopVars) == ""
}

// isLoopVar reports whether e is a bare identifier naming an
// enclosing-loop variable.
func isLoopVar(pass *analyzers.Pass, e ast.Expr, loopVars map[types.Object]bool) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	return obj != nil && loopVars[obj]
}

// loopVarIn returns the name of the first enclosing-loop variable
// referenced by arithmetic inside e, or "" if none.
func loopVarIn(pass *analyzers.Pass, e ast.Expr, loopVars map[types.Object]bool) string {
	if len(loopVars) == 0 {
		return ""
	}
	if _, ok := e.(*ast.BinaryExpr); !ok {
		// A bare variable, field or conversion-free identifier: the
		// derivation (if any) happened elsewhere and is judged there.
		return ""
	}
	return refLoopVar(pass, e, loopVars)
}

// refLoopVar returns the name of the first enclosing-loop variable
// referenced anywhere inside e, or "" if none.
func refLoopVar(pass *analyzers.Pass, e ast.Expr, loopVars map[types.Object]bool) string {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && loopVars[obj] {
			found = id.Name
		}
		return true
	})
	return found
}
