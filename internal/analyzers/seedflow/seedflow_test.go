package seedflow_test

import (
	"testing"

	"popgraph/internal/analyzers/analyzertest"
	"popgraph/internal/analyzers/seedflow"
)

func TestSeedDerivation(t *testing.T) {
	analyzertest.Run(t, seedflow.Analyzer, "testdata/src/seedflow",
		"popgraph/internal/exp/seedflowtest")
}

func TestExamplesExempt(t *testing.T) {
	analyzertest.Run(t, seedflow.Analyzer, "testdata/src/examples_scope",
		"popgraph/examples/seedflowdemo")
}
