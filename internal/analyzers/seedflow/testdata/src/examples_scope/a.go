// Package examplescope is loaded at an examples/ path, where seedflow
// does not apply: the constant seed below must not be flagged.
package examplescope

import "popgraph/internal/xrand"

// DemoStream is demo code: a fixed seed keeps the README output stable.
func DemoStream() uint64 {
	return xrand.New(1).Uint64()
}
