// Package seedflow exercises the seedflow analyzer against the real
// xrand and runner packages.
package seedflow

import (
	"popgraph/internal/runner"
	"popgraph/internal/xrand"
)

// hardWired shares one stream between every caller: flagged.
func hardWired() *xrand.Rand {
	return xrand.New(42) // want `seedflow: xrand\.New with constant seed 42`
}

// adHocTrialSeeds reinvents seed derivation with loop arithmetic:
// flagged on both shapes.
func adHocTrialSeeds(base uint64, trials int) []uint64 {
	out := make([]uint64, 0, trials)
	for trial := 0; trial < trials; trial++ {
		rng := xrand.New(base + uint64(trial)*977) // want `seedflow: xrand\.New seed mixes loop variable trial`
		out = append(out, rng.Uint64())
	}
	for i, b := range out {
		rng := xrand.New(b ^ uint64(i)) // want `seedflow: xrand\.New seed mixes loop variable b`
		out[i] = rng.Uint64()
	}
	return out
}

// sanctioned shows every accepted shape: helper-derived seeds, plain
// variables, and loop-free arithmetic on non-constant inputs.
func sanctioned(base uint64, trials int) []uint64 {
	out := make([]uint64, 0, trials)
	for trial := 0; trial < trials; trial++ {
		rng := xrand.New(runner.SeedFor(base, trial))
		out = append(out, rng.Uint64())
	}
	seed := runner.SeedFor(base, trials)
	rng := xrand.New(seed)
	rng2 := xrand.New(base ^ 0x9e3779b97f4a7c15)
	return append(out, rng.Uint64(), rng2.Uint64())
}

// shardCell mirrors shard.Cell for the shard-seam cases without
// importing the real package.
type shardCell struct{ Task, Trial int }

// offByShard re-derives global trial numbers from shard-local indices:
// the arithmetic every shard computes differently from the grid position
// it actually owns. Flagged on both the interleave and the block shape.
func offByShard(base uint64, shardIdx, m, n int) []uint64 {
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		s := runner.SeedFor(base, i*m+shardIdx) // want `seedflow: runner\.SeedFor trial argument mixes loop variable i`
		out = append(out, s)
	}
	for i := 0; i < n; i++ {
		s := runner.SeedFor(base, shardIdx*n+i) // want `seedflow: runner\.SeedFor trial argument mixes loop variable i`
		out = append(out, s)
	}
	return out
}

// batchUnits derives lane seeds for lockstep batch units: a unit whose
// first lane is global trial off runs lane l as global trial off+l, so
// the flat addition of the lane loop variable to a loop-independent
// offset IS the trial identity. Sanctioned on both operand orders; any
// scaling or nesting falls back to the shard-seam flag.
func batchUnits(base uint64, off, width int) []uint64 {
	out := make([]uint64, 0, width)
	for l := 0; l < width; l++ {
		out = append(out, runner.SeedFor(base, off+l))
	}
	for l := 0; l < width; l++ {
		out = append(out, runner.SeedFor(base, l+off))
	}
	for l := 0; l < width; l++ {
		out = append(out, runner.SeedFor(base, off+l*2)) // want `seedflow: runner\.SeedFor trial argument mixes loop variable l`
	}
	for l := 0; l < width; l++ {
		out = append(out, runner.SeedFor(base, off+l+1)) // want `seedflow: runner\.SeedFor trial argument mixes loop variable l`
	}
	return out
}

// plannedCells maps shard-local indices through the planned global
// (task, trial) cell before seed derivation: sanctioned, as is passing
// the loop variable itself straight through.
func plannedCells(base uint64, cells []shardCell) []uint64 {
	out := make([]uint64, 0, len(cells))
	for i := range cells {
		out = append(out, runner.SeedFor(base, cells[i].Trial))
	}
	for trial := 0; trial < len(cells); trial++ {
		out = append(out, runner.SeedFor(base, trial))
	}
	return out
}

// suppressed documents a deliberate fixed stream.
func suppressed() *xrand.Rand {
	return xrand.New(7) //popcheck:ignore seedflow probe RNG, output unused
}
