// Package seedflow exercises the seedflow analyzer against the real
// xrand and runner packages.
package seedflow

import (
	"popgraph/internal/runner"
	"popgraph/internal/xrand"
)

// hardWired shares one stream between every caller: flagged.
func hardWired() *xrand.Rand {
	return xrand.New(42) // want `seedflow: xrand\.New with constant seed 42`
}

// adHocTrialSeeds reinvents seed derivation with loop arithmetic:
// flagged on both shapes.
func adHocTrialSeeds(base uint64, trials int) []uint64 {
	out := make([]uint64, 0, trials)
	for trial := 0; trial < trials; trial++ {
		rng := xrand.New(base + uint64(trial)*977) // want `seedflow: xrand\.New seed mixes loop variable trial`
		out = append(out, rng.Uint64())
	}
	for i, b := range out {
		rng := xrand.New(b ^ uint64(i)) // want `seedflow: xrand\.New seed mixes loop variable b`
		out[i] = rng.Uint64()
	}
	return out
}

// sanctioned shows every accepted shape: helper-derived seeds, plain
// variables, and loop-free arithmetic on non-constant inputs.
func sanctioned(base uint64, trials int) []uint64 {
	out := make([]uint64, 0, trials)
	for trial := 0; trial < trials; trial++ {
		rng := xrand.New(runner.SeedFor(base, trial))
		out = append(out, rng.Uint64())
	}
	seed := runner.SeedFor(base, trials)
	rng := xrand.New(seed)
	rng2 := xrand.New(base ^ 0x9e3779b97f4a7c15)
	return append(out, rng.Uint64(), rng2.Uint64())
}

// suppressed documents a deliberate fixed stream.
func suppressed() *xrand.Rand {
	return xrand.New(7) //popcheck:ignore seedflow probe RNG, output unused
}
