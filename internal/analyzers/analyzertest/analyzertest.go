// Package analyzertest runs one analyzer over a testdata package and
// compares its diagnostics against // want annotations, in the style of
// golang.org/x/tools/go/analysis/analysistest (which the module cannot
// depend on — see internal/analyzers).
//
// Annotation syntax: a trailing comment on the line the diagnostic is
// expected at, carrying one quoted regular expression per expected
// diagnostic:
//
//	x := time.Now() // want `detrand: call to time\.Now`
//	m[k] = v        // no annotation: any diagnostic here fails the test
//
// Both backquoted and double-quoted regexps are accepted. A line may
// carry several want clauses for several expected diagnostics.
package analyzertest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"popgraph/internal/analyzers"
)

var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads dir as a package with import path asPath (so scope-aware
// analyzers see a module-relative location of the test's choosing),
// runs a, and reports any mismatch between the diagnostics and the
// // want annotations as test errors. Type errors in the testdata are
// fatal: analysis over broken code proves nothing.
func Run(t *testing.T, a *analyzers.Analyzer, dir, asPath string) {
	t.Helper()
	l, err := analyzers.NewLoader("")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDirAs(dir, asPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("testdata %s has type errors: %v", dir, pkg.TypeErrors)
	}
	diags, err := analyzers.Check([]*analyzers.Package{pkg}, []*analyzers.Analyzer{a})
	if err != nil {
		t.Fatalf("check: %v", err)
	}

	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		ws := wants[key]
		// Patterns match the "analyzer: message" form so annotations
		// document which pass fires.
		msg := d.Analyzer + ": " + d.Message
		matched := false
		for i, w := range ws {
			if w != nil && w.MatchString(msg) {
				ws[i] = nil // each want matches exactly one diagnostic
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if w != nil {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w)
			}
		}
	}
}

// collectWants parses every // want comment in the package into
// file:line → expected-message regexps.
func collectWants(t *testing.T, pkg *analyzers.Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				clauses := wantRe.FindAllString(text, -1)
				if len(clauses) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, clause := range clauses {
					pattern := strings.Trim(clause, "`")
					if strings.HasPrefix(clause, `"`) {
						unq, err := strconv.Unquote(clause)
						if err != nil {
							t.Fatalf("%s: bad want clause %s: %v", pos, clause, err)
						}
						pattern = unq
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", pos, clause, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}
