// Package analyzers is a small, dependency-free static-analysis
// framework in the shape of golang.org/x/tools/go/analysis, built on the
// standard library's go/ast + go/types only (the toolchain this module
// builds in has no network access to fetch x/tools, and the module
// itself is deliberately dependency-free). It exists to statically
// enforce the repository's byte-identical determinism contract: same
// spec + seed ⇒ same Result, observer sequence and post-run generator
// state. Runtime tests (TestPlanEquivalenceMatrix) catch violations
// late; the five analyzers under this directory catch the classic ways
// of breaking the contract — wall-clock reads, global randomness,
// unsorted map iteration, ad-hoc seed derivation, allocation or dynamic
// dispatch sneaking into a compiled kernel, callbacks invoked under a
// mutex — at lint time, before a poisoned result is ever cached.
//
// An Analyzer inspects one type-checked package at a time through a
// Pass and reports Diagnostics. Suppression is comment-driven and
// always names the analyzer, so every exception is grep-able:
//
//	//popcheck:ignore <name>[,<name>...] [reason]   line-level (this line or the next)
//	//popcheck:allow <name>[,<name>...] [reason]    file-level
//	//popcheck:kernel                               marks a function as an engine hot-loop kernel
//
// cmd/popcheck is the multichecker driver; internal/analyzers/suite
// fixes the analyzer set it runs.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named, self-contained check. Run inspects a single
// package via its Pass and reports findings with Pass.Reportf; returning
// an error aborts the whole checker run (reserved for internal failures,
// not findings).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// popcheck:ignore / popcheck:allow directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by popcheck -list.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass hands one type-checked package to an analyzer. The same
// package is shared (read-only) by every analyzer in a suite.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test syntax trees, sorted by file name.
	Files []*ast.File
	// Pkg and TypesInfo are the go/types results. TypesInfo always has
	// Types, Defs, Uses and Selections populated.
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the import path; RelPath is the module-relative form
	// ("" for the module root, "internal/sim", ...). Scope decisions key
	// off RelPath so testdata packages can be loaded "as" a contract
	// path.
	PkgPath string
	RelPath string

	directives *directiveIndex
	diags      *[]Diagnostic
}

// Reportf records a finding at pos unless a popcheck:ignore or
// popcheck:allow directive suppresses this analyzer there.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.directives.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Inspect walks every file of the package in file order, calling f as
// ast.Inspect does.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

// PkgFuncCall resolves call to (importPath, funcName) when its callee is
// a selector on an imported package name — e.g. time.Now() resolves to
// ("time", "Now") regardless of import aliasing. It returns ("", "")
// for method calls, locally defined functions, builtins and
// conversions.
func (p *Pass) PkgFuncCall(call *ast.CallExpr) (path, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pkgName, ok := p.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pkgName.Imported().Path(), sel.Sel.Name
}

// FuncMarked reports whether fn's doc comment carries the
// //popcheck:<marker> directive.
func FuncMarked(fn *ast.FuncDecl, marker string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if verb, _, ok := parseDirective(c.Text); ok && verb == marker {
			return true
		}
	}
	return false
}

// parseDirective splits a "//popcheck:verb args" comment into its verb
// and argument string. Directive comments have no space after "//", per
// Go convention for machine-readable comments.
func parseDirective(text string) (verb, args string, ok bool) {
	rest, found := strings.CutPrefix(text, "//popcheck:")
	if !found {
		return "", "", false
	}
	verb, args, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(verb), strings.TrimSpace(args), verb != ""
}

// directiveIndex is the per-package suppression table, built once from
// every file's comments and shared by all passes over that package.
type directiveIndex struct {
	// line maps analyzer name to "file:line" keys on which it is
	// suppressed (the directive's own line and the one after it, so a
	// trailing comment and a comment-above both work).
	line map[string]map[string]bool
	// file maps analyzer name to files in which it is fully disabled.
	file map[string]map[string]bool
}

func buildDirectiveIndex(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{
		line: make(map[string]map[string]bool),
		file: make(map[string]map[string]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, args, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				names, _, _ := strings.Cut(args, " ")
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					switch verb {
					case "ignore":
						if idx.line[name] == nil {
							idx.line[name] = make(map[string]bool)
						}
						idx.line[name][lineKey(pos.Filename, pos.Line)] = true
						idx.line[name][lineKey(pos.Filename, pos.Line+1)] = true
					case "allow":
						if idx.file[name] == nil {
							idx.file[name] = make(map[string]bool)
						}
						idx.file[name][pos.Filename] = true
					}
				}
			}
		}
	}
	return idx
}

func lineKey(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

func (idx *directiveIndex) suppressed(analyzer string, pos token.Position) bool {
	return idx.file[analyzer][pos.Filename] ||
		idx.line[analyzer][lineKey(pos.Filename, pos.Line)]
}

// Check runs each analyzer over each package and returns all
// diagnostics sorted by position then analyzer name. Analyzer errors
// (internal failures) abort the run.
func Check(pkgs []*Package, as []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		idx := buildDirectiveIndex(pkg.Fset, pkg.Files)
		for _, a := range as {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.TypesInfo,
				PkgPath:    pkg.Path,
				RelPath:    pkg.RelPath,
				directives: idx,
				diags:      &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzers: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
