package suite_test

import (
	"testing"

	"popgraph/internal/analyzers"
	"popgraph/internal/analyzers/suite"
)

// TestSuiteNames pins the analyzer set: a new pass must be added here
// deliberately, and the names are what ignore/allow directives key on.
func TestSuiteNames(t *testing.T) {
	want := []string{"detrand", "hotpath", "lockcallback", "mapiter", "seedflow"}
	got := suite.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}

// TestRepositoryIsClean runs the full suite over the whole module —
// the same invocation CI's popcheck job performs. Any finding here
// means shipping code violates the determinism contract (or needs a
// documented //popcheck:ignore).
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := analyzers.NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern resolution is broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, terr)
		}
	}
	if t.Failed() {
		t.Fatalf("module does not type-check; analysis results unreliable")
	}
	diags, err := analyzers.Check(pkgs, suite.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
