// Package suite fixes the analyzer set that cmd/popcheck runs and that
// CI enforces. Keeping the list here — not in main — lets the selfcheck
// test assert the exact shipping configuration against the whole module.
package suite

import (
	"popgraph/internal/analyzers"
	"popgraph/internal/analyzers/detrand"
	"popgraph/internal/analyzers/hotpath"
	"popgraph/internal/analyzers/lockcallback"
	"popgraph/internal/analyzers/mapiter"
	"popgraph/internal/analyzers/seedflow"
)

// Analyzers returns the full popcheck suite in stable (name-sorted)
// order.
func Analyzers() []*analyzers.Analyzer {
	return []*analyzers.Analyzer{
		detrand.Analyzer,
		hotpath.Analyzer,
		lockcallback.Analyzer,
		mapiter.Analyzer,
		seedflow.Analyzer,
	}
}
