// Package mapiter exercises the mapiter analyzer: order-dependent map
// ranges are flagged, the sorted-keys idiom and order-insensitive
// bodies are not.
package mapiter

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// AppendValues leaks map order into a slice: flagged.
func AppendValues(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `mapiter: range over map has order-dependent effect \(append`
		out = append(out, v)
	}
	return out
}

// PrintEntries leaks map order into output: flagged.
func PrintEntries(m map[string]int) {
	for k, v := range m { // want `mapiter: range over map has order-dependent effect \(fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

// WriteEntries leaks map order through an io.Writer method: flagged.
func WriteEntries(w io.Writer, m map[string]int) {
	for k := range m { // want `mapiter: range over map has order-dependent effect \(Write call`
		_, _ = w.Write([]byte(k))
	}
}

// SendKeys leaks map order into a channel: flagged.
func SendKeys(m map[string]bool, ch chan string) {
	for k := range m { // want `mapiter: range over map has order-dependent effect \(channel send`
		ch <- k
	}
}

// SortedKeys is the sanctioned pattern: collect, sort, then iterate the
// slice. Neither loop is flagged.
func SortedKeys(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, m[k])
	}
	return b.String()
}

// MergeCounts is order-insensitive (commutative map writes): clean.
func MergeCounts(dst, src map[string]int) {
	for k, v := range src {
		dst[k] += v
	}
}

// SumValues is order-insensitive (commutative accumulation): clean.
func SumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Ignored shows the line-level suppression syntax.
func Ignored(m map[string]int) []int {
	var out []int
	//popcheck:ignore mapiter order deliberately irrelevant downstream
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
