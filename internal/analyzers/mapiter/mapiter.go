// Package mapiter flags iteration over a map whose loop body has
// order-dependent effects. Go randomizes map iteration order per run,
// so a map range that appends to a slice, writes output, or sends on a
// channel produces a different sequence every execution — the exact
// bug class the byte-identical results contract (fixed field order,
// grid-order records) exists to rule out.
//
// The sanctioned pattern — collect the keys, sort them, iterate the
// sorted slice — is recognized and not flagged: a body consisting only
// of appending the range key to a slice is exempt when that slice is
// later passed to a sort function (sort.Strings, sort.Ints,
// sort.Float64s, sort.Slice, sort.SliceStable, slices.Sort*) in the
// same function.
//
// Order-insensitive bodies (counting, merging into another map,
// accumulating into an index-addressed structure) are not flagged.
package mapiter

import (
	"go/ast"
	"go/types"

	"popgraph/internal/analyzers"
)

// Analyzer is the mapiter pass.
var Analyzer = &analyzers.Analyzer{
	Name: "mapiter",
	Doc: "flag range-over-map loops with order-dependent effects (append, output, channel send) " +
		"that lack a sorted-keys pass",
	Run: run,
}

// outputCallNames are method/function names whose invocation emits
// ordered output.
var outputCallNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "AddRow": true,
}

// sortCallSites records which identifiers are passed to a sort function
// somewhere in a given function body.
type sortCallSites map[types.Object]bool

func run(pass *analyzers.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			sorted := collectSortTargets(pass, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.TypesInfo.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, rng, sorted)
				return true
			})
		}
	}
	return nil
}

// collectSortTargets finds every identifier passed as the first
// argument to a sort.* / slices.Sort* call inside body.
func collectSortTargets(pass *analyzers.Pass, body *ast.BlockStmt) sortCallSites {
	sorted := make(sortCallSites)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		path, name := pass.PkgFuncCall(call)
		isSort := path == "sort" && (name == "Strings" || name == "Ints" ||
			name == "Float64s" || name == "Slice" || name == "SliceStable")
		isSlices := path == "slices" && (name == "Sort" || name == "SortFunc" ||
			name == "SortStableFunc")
		if !isSort && !isSlices {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				sorted[obj] = true
			}
		}
		return true
	})
	return sorted
}

// checkMapRange reports the range statement when its body has an
// order-dependent effect and is not the key-collection idiom.
func checkMapRange(pass *analyzers.Pass, rng *ast.RangeStmt, sorted sortCallSites) {
	if isSortedKeyCollection(pass, rng, sorted) {
		return
	}
	var reported bool
	report := func(pos ast.Node, what string) {
		if reported {
			return
		}
		reported = true
		pass.Reportf(rng.Pos(),
			"range over map has order-dependent effect (%s at line %d); iterate sorted keys instead",
			what, pass.Fset.Position(pos.Pos()).Line)
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					report(n, "append")
				}
				return true
			}
			if path, name := pass.PkgFuncCall(n); path == "fmt" && outputCallNames[name] {
				report(n, "fmt."+name)
			} else if sel, ok := n.Fun.(*ast.SelectorExpr); ok && outputCallNames[sel.Sel.Name] {
				report(n, sel.Sel.Name+" call")
			}
		case *ast.SendStmt:
			report(n, "channel send")
		}
		return true
	})
}

// isSortedKeyCollection recognizes the sanctioned idiom: the body is
// exactly `keys = append(keys, k)` (the range key, possibly through one
// conversion or call wrap) and keys is sorted later in the function.
func isSortedKeyCollection(pass *analyzers.Pass, rng *ast.RangeStmt, sorted sortCallSites) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	target, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[target]
	if obj == nil {
		obj = pass.TypesInfo.Defs[target]
	}
	return obj != nil && sorted[obj]
}
