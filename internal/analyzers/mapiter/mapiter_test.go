package mapiter_test

import (
	"testing"

	"popgraph/internal/analyzers/analyzertest"
	"popgraph/internal/analyzers/mapiter"
)

func TestMapIterationEffects(t *testing.T) {
	analyzertest.Run(t, mapiter.Analyzer, "testdata/src/mapiter",
		"popgraph/internal/results/mapitertest")
}
