// Package loading for the analyzer framework: parse and type-check
// module packages with nothing but the standard library. Imports of
// other module packages are resolved by mapping the import path onto
// the module directory tree and recursing; standard-library imports go
// through go/importer's source importer (which type-checks GOROOT
// sources and therefore works without pre-built export data or network
// access). Only non-test files matching the host's build constraints
// are loaded: the determinism contract lives in shipping code, tests
// legitimately use wall clocks and hard-coded seeds, and
// platform-split files (snapshot's mmap_linux.go / mmap_other.go)
// would otherwise collide as duplicate declarations.

package analyzers

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path; RelPath the module-relative form ("" for
	// the module root); Dir the absolute directory.
	Path    string
	RelPath string
	Dir     string
	Fset    *token.FileSet
	// Files holds the package's non-test syntax trees in file-name order.
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors collects type-checking problems. Analysis results for a
	// package with type errors are unreliable; drivers should surface
	// them and fail.
	TypeErrors []error
}

// A Loader resolves and type-checks packages of one module. It caches
// by import path, so loading ./... type-checks each package exactly
// once however often it is imported.
type Loader struct {
	// ModuleRoot is the absolute directory containing go.mod; ModulePath
	// the declared module path.
	ModuleRoot string
	ModulePath string

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package
}

// NewLoader locates the enclosing module by walking from dir (or the
// working directory when dir is "") up to a go.mod file.
func NewLoader(dir string) (*Loader, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, fmt.Errorf("analyzers: %w", err)
		}
		dir = wd
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("analyzers: %w", err)
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analyzers: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analyzers: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analyzers: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       make(map[string]*Package),
	}, nil
}

// Load resolves patterns to packages and type-checks them. Patterns are
// interpreted relative to the module root: "./..." (every package),
// "./dir/..." (a subtree), "./dir" (one package), or import paths with
// the module-path prefix in the same three forms. Results are in
// deterministic (path-sorted) order, deduplicated.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	rels := make(map[string]bool)
	for _, pat := range patterns {
		rel, recursive, err := l.relPattern(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			rels[rel] = true
			continue
		}
		subtree, err := l.walk(rel)
		if err != nil {
			return nil, err
		}
		for _, r := range subtree {
			rels[r] = true
		}
	}
	ordered := make([]string, 0, len(rels))
	for r := range rels {
		ordered = append(ordered, r)
	}
	sort.Strings(ordered)
	pkgs := make([]*Package, 0, len(ordered))
	for _, rel := range ordered {
		pkg, err := l.loadRel(rel)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// relPattern normalizes one CLI pattern to a module-relative directory
// plus a "/..." flag.
func (l *Loader) relPattern(pat string) (rel string, recursive bool, err error) {
	p := strings.TrimSuffix(pat, "/...")
	recursive = p != pat
	switch {
	case p == "." || p == "./":
		rel = ""
	case strings.HasPrefix(p, "./"):
		rel = strings.TrimPrefix(p, "./")
	case p == l.ModulePath:
		rel = ""
	case strings.HasPrefix(p, l.ModulePath+"/"):
		rel = strings.TrimPrefix(p, l.ModulePath+"/")
	case pat == "...":
		rel = ""
	default:
		// A bare relative directory like "internal/sim".
		rel = p
	}
	rel = filepath.ToSlash(filepath.Clean(rel))
	if rel == "." {
		rel = ""
	}
	if strings.HasPrefix(rel, "..") {
		return "", false, fmt.Errorf("analyzers: pattern %q escapes the module", pat)
	}
	return rel, recursive, nil
}

// walk returns every module-relative package directory under rel,
// skipping testdata, hidden and underscore-prefixed directories.
func (l *Loader) walk(rel string) ([]string, error) {
	var out []string
	start := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	err := filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != start && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if names, _ := goFileNames(path); len(names) > 0 {
			r, err := filepath.Rel(l.ModuleRoot, path)
			if err != nil {
				return err
			}
			out = append(out, filepath.ToSlash(filepath.Clean(r)))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analyzers: walking %q: %w", rel, err)
	}
	for i, r := range out {
		if r == "." {
			out[i] = ""
		}
	}
	return out, nil
}

// goFileNames lists dir's non-test .go files in sorted order, filtered
// by the host's build constraints (//go:build lines and _GOOS/_GOARCH
// name suffixes) exactly as go build would select them.
func goFileNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, n); err != nil || !ok {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// loadRel loads the package in the module-relative directory rel.
func (l *Loader) loadRel(rel string) (*Package, error) {
	path := l.ModulePath
	if rel != "" {
		path = l.ModulePath + "/" + rel
	}
	return l.loadPath(path)
}

// loadPath loads an import path of this module, through the cache.
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	return l.loadDir(dir, path, rel)
}

// LoadDirAs type-checks the single directory dir (which need not be
// under the module root) as if it had the given import path. The
// analyzer test harness uses it to place testdata packages at
// scope-relevant paths like "popgraph/internal/sim/x".
func (l *Loader) LoadDirAs(dir, path string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("analyzers: %w", err)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return l.loadDir(abs, path, rel)
}

func (l *Loader) loadDir(dir, path, rel string) (*Package, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, fmt.Errorf("analyzers: %w", err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analyzers: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analyzers: %w", err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		Path:    path,
		RelPath: rel,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		TypesInfo: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	// Publish before type-checking so import cycles terminate (go/types
	// reports the cycle itself as a type error).
	l.pkgs[path] = pkg
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, pkg.TypesInfo)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// loaderImporter adapts the Loader to types.Importer: module-internal
// paths recurse through the cache, everything else (the standard
// library) goes to the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("analyzers: import cycle through %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
