package lockcallback_test

import (
	"testing"

	"popgraph/internal/analyzers/analyzertest"
	"popgraph/internal/analyzers/lockcallback"
)

func TestCallbacksUnderLock(t *testing.T) {
	analyzertest.Run(t, lockcallback.Analyzer, "testdata/src/lockcallback",
		"popgraph/internal/runner/lockcallbacktest")
}
