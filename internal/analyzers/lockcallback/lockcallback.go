// Package lockcallback flags invoking a stored callback — a variable or
// struct field of function type — while a sync.Mutex or sync.RWMutex is
// held. A callback is arbitrary user code: under a lock it can block
// every other critical section, re-enter the lock, or simply be slow —
// the exact bug class behind the runner.Pool Progress stall fixed in
// PR 6 (a slow Progress callback serialized trial completion because it
// ran with the pool's mutex held). Callbacks belong outside the
// critical section, fed by state captured inside it.
//
// Detection is intra-procedural and block-structured: a region is "held"
// from a mu.Lock()/mu.RLock() statement to the matching
// mu.Unlock()/mu.RUnlock() in the same statement list, or to the end of
// the enclosing block when the unlock is deferred. Conditional unlocks
// in nested blocks are deliberately ignored (conservative: the region
// stays held). Method calls and ordinary function calls are fine; only
// calls whose callee is a func-typed variable, parameter or field are
// flagged.
package lockcallback

import (
	"go/ast"
	"go/types"

	"popgraph/internal/analyzers"
)

// Analyzer is the lockcallback pass.
var Analyzer = &analyzers.Analyzer{
	Name: "lockcallback",
	Doc:  "flag stored callbacks (func-typed variables and fields) invoked while a sync mutex is held",
	Run:  run,
}

func run(pass *analyzers.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkBlock(pass, fn.Body.List, nil)
			}
		}
	}
	return nil
}

// lockCall decomposes a statement of the form `x.Lock()`, `x.RLock()`,
// `x.Unlock()` or `x.RUnlock()` on a sync (RW)Mutex-typed receiver,
// returning the receiver's printed form as the lock identity.
func lockCall(pass *analyzers.Pass, stmt ast.Stmt) (recv, method string, ok bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", "", false
	}
	return lockCallExpr(pass, es.X)
}

func lockCallExpr(pass *analyzers.Pass, e ast.Expr) (recv, method string, ok bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if !isSyncMutex(pass.TypesInfo.Types[sel.X].Type) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// isSyncMutex reports whether t (possibly a pointer) is sync.Mutex or
// sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkBlock scans a statement list. held carries the lock identities
// currently held when entering the list; Lock statements extend it,
// matching Unlock statements retire it, and every statement executed
// while held is inspected for stored-callback calls.
func checkBlock(pass *analyzers.Pass, stmts []ast.Stmt, held []string) {
	held = append([]string(nil), held...)
	for _, stmt := range stmts {
		if recv, method, ok := lockCall(pass, stmt); ok {
			switch method {
			case "Lock", "RLock":
				held = append(held, recv)
			case "Unlock", "RUnlock":
				held = remove(held, recv)
			}
			continue
		}
		if def, ok := stmt.(*ast.DeferStmt); ok {
			// `defer mu.Unlock()` right after Lock is the idiomatic pairing:
			// the lock stays held for the remainder of this block, which the
			// loop below already models by keeping recv in held.
			if _, method, ok := lockCallExpr(pass, def.Call); ok && (method == "Unlock" || method == "RUnlock") {
				continue
			}
		}
		if len(held) == 0 {
			// Recurse only to find nested Lock regions.
			for _, inner := range innerBlocks(stmt) {
				checkBlock(pass, inner, nil)
			}
			continue
		}
		flagCallbackCalls(pass, stmt, held)
	}
}

// innerBlocks returns the statement lists nested directly inside stmt.
func innerBlocks(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if s.Else != nil {
			out = append(out, innerBlocks(s.Else)...)
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, innerBlocks(s.Stmt)...)
	}
	return out
}

// flagCallbackCalls reports every call of a func-typed variable or
// field anywhere inside stmt. Function literals are still scanned: a
// closure defined in a held region typically runs there too (and if it
// does not, a line-level ignore documents why).
func flagCallbackCalls(pass *analyzers.Pass, stmt ast.Stmt, held []string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isStoredFunc(pass, call.Fun) {
			return true
		}
		pass.Reportf(call.Pos(),
			"callback %s invoked while %s is held (run callbacks outside the critical section; cf. runner.Pool.Progress)",
			types.ExprString(call.Fun), held[len(held)-1])
		return true
	})
}

// isStoredFunc reports whether e names a func-typed variable, parameter
// or struct field (as opposed to a declared function, method, builtin
// or conversion).
func isStoredFunc(pass *analyzers.Pass, e ast.Expr) bool {
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok {
			if sel.Kind() != types.FieldVal {
				return false
			}
			obj = sel.Obj()
		} else {
			obj = pass.TypesInfo.Uses[e.Sel]
		}
	default:
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	_, isSig := v.Type().Underlying().(*types.Signature)
	return isSig
}

func remove(held []string, recv string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == recv {
			return append(held[:i], held[i+1:]...)
		}
	}
	return held
}
