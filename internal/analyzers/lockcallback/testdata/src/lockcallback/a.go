// Package lockcallback exercises the lockcallback analyzer: stored
// callbacks must run outside mutex critical sections.
package lockcallback

import "sync"

// pool mimics the runner.Pool shape that motivated the pass.
type pool struct {
	mu       sync.Mutex
	rw       sync.RWMutex
	done     int
	progress func(done int)
}

func helper(int) {}

// badUnderLock fires the callback between Lock and Unlock: flagged.
func (p *pool) badUnderLock() {
	p.mu.Lock()
	p.done++
	p.progress(p.done) // want `lockcallback: callback p\.progress invoked while p\.mu is held`
	p.mu.Unlock()
}

// badUnderDefer holds the lock for the whole body: flagged.
func (p *pool) badUnderDefer(notify func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	notify() // want `lockcallback: callback notify invoked while p\.mu is held`
}

// badUnderRLock read locks are critical sections too: flagged.
func (p *pool) badUnderRLock() int {
	p.rw.RLock()
	defer p.rw.RUnlock()
	p.progress(p.done) // want `lockcallback: callback p\.progress invoked while p\.rw is held`
	return p.done
}

// goodAfterUnlock snapshots under the lock and calls outside: clean.
func (p *pool) goodAfterUnlock() {
	p.mu.Lock()
	p.done++
	done := p.done
	cb := p.progress
	p.mu.Unlock()
	if cb != nil {
		cb(done)
	}
}

// goodPlainCalls shows what is not a stored callback: declared
// functions and methods may run under the lock.
func (p *pool) goodPlainCalls() {
	p.mu.Lock()
	defer p.mu.Unlock()
	helper(p.done)
	p.bump()
}

func (p *pool) bump() { p.done++ }

// suppressed documents a deliberate under-lock call.
func (p *pool) suppressed() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.progress(p.done) //popcheck:ignore lockcallback callback is a no-alloc counter bump by contract
}
