// Package allowed exercises the file-level allowlist: the whole file
// opts out of detrand, as the telemetry/timing files inside contract
// packages do. The test loads it at a contract path, so without the
// directive every call below would be a finding.
//
//popcheck:allow detrand this file is a timing shim, wall-clock reads are its job
package allowed

import "time"

// Stamp legally reads the wall clock: the file carries
// popcheck:allow detrand.
func Stamp() time.Time { return time.Now() }

// Wait legally sleeps for the same reason.
func Wait(d time.Duration) { time.Sleep(d) }
