// Package contract exercises detrand inside a determinism-contract
// path (the test loads it as popgraph/internal/sim/detrandcontract).
package contract

import (
	crand "crypto/rand" // want `detrand: import of crypto/rand`
	"math/rand"         // want `detrand: import of math/rand`
	"time"
)

// Elapsed reads the wall clock twice over f: both reads are flagged.
func Elapsed(f func()) time.Duration {
	start := time.Now() // want `detrand: call to time\.Now`
	f()
	return time.Since(start) // want `detrand: call to time\.Since`
}

// GlobalDraw uses the process-global generator; the import is the
// finding (any use of the package follows from it).
func GlobalDraw(n int) int { return rand.Intn(n) }

// OSDraw reads OS randomness through crypto/rand; the import is the
// finding, not this call.
func OSDraw(b []byte) { _, _ = crand.Read(b) }

// DurationMath uses only time's pure arithmetic: legal.
func DurationMath(d time.Duration) time.Duration { return 2 * d }

// Suppressed shows the line-level escape hatch with a named analyzer.
func Suppressed() time.Time {
	return time.Now() //popcheck:ignore detrand intentional: example of a sanctioned timing site
}

// Timers are flagged like clock reads.
func Timers() {
	time.Sleep(0)              // want `detrand: call to time\.Sleep`
	_ = time.Tick(time.Second) // want `detrand: call to time\.Tick`
}
