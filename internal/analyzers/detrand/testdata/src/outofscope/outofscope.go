// Package outofscope exercises the scope boundary: it is loaded at a
// non-contract path (popgraph/internal/telemetry/...), where wall
// clocks and even math/rand are not detrand's business.
package outofscope

import (
	"math/rand"
	"time"
)

// Sample may use anything here: the package is outside the
// determinism-contract surface.
func Sample() (time.Time, int) { return time.Now(), rand.Int() }
