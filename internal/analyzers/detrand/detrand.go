// Package detrand forbids wall-clock and global-randomness sources
// inside the determinism-contract packages. The contract — same spec +
// seed ⇒ byte-identical Result, observer sequence and post-run
// generator state — only holds while every source of nondeterminism
// flows through an explicit *xrand.Rand; one stray time.Now or
// math/rand call in a contract package silently poisons any cache
// keyed by (spec hash, seed).
//
// Flagged inside contract packages:
//   - importing math/rand, math/rand/v2 or crypto/rand (process-global
//     or OS-backed randomness; xrand is the only sanctioned generator);
//   - calling the wall-clock or timer functions of package time
//     (time.Now, Since, Until, After, AfterFunc, Tick, NewTimer,
//     NewTicker, Sleep). Pure types and constants of package time
//     (Duration and friends) stay legal.
//
// Telemetry and other deliberately time-aware files inside a contract
// package opt out with a file-level "//popcheck:allow detrand" comment;
// single intentional sites use "//popcheck:ignore detrand <reason>".
package detrand

import (
	"go/ast"
	"strings"

	"popgraph/internal/analyzers"
)

// contractPaths are the module-relative package paths bound by the
// determinism contract. An entry ending in "/" covers the whole
// subtree.
var contractPaths = []string{
	"internal/sim",
	"internal/core",
	"internal/xrand",
	"internal/graph",
	"internal/sweep",
	"internal/snapshot",
	"internal/protocols/",
}

// forbiddenImports are packages that must never be imported from
// contract code.
var forbiddenImports = map[string]string{
	"math/rand":    "process-global randomness",
	"math/rand/v2": "process-global randomness",
	"crypto/rand":  "OS-backed randomness",
}

// clockFuncs are the package time functions that read the wall clock or
// start timers.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"Sleep": true,
}

// InScope reports whether the module-relative package path rel is bound
// by the determinism contract.
func InScope(rel string) bool {
	for _, c := range contractPaths {
		if strings.HasSuffix(c, "/") {
			if strings.HasPrefix(rel, c) {
				return true
			}
		} else if rel == c || strings.HasPrefix(rel, c+"/") {
			return true
		}
	}
	return false
}

// Analyzer is the detrand pass.
var Analyzer = &analyzers.Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock reads and global randomness in determinism-contract packages " +
		"(internal/{sim,core,xrand,graph,sweep,snapshot} and internal/protocols/...)",
	Run: run,
}

func run(pass *analyzers.Pass) error {
	if !InScope(pass.RelPath) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ImportSpec:
			path := strings.Trim(n.Path.Value, `"`)
			if why, bad := forbiddenImports[path]; bad {
				pass.Reportf(n.Pos(),
					"import of %s (%s) in determinism-contract package %q; draw through an explicit *xrand.Rand instead",
					path, why, pass.RelPath)
			}
		case *ast.CallExpr:
			if path, name := pass.PkgFuncCall(n); path == "time" && clockFuncs[name] {
				pass.Reportf(n.Pos(),
					"call to time.%s in determinism-contract package %q; move timing to internal/telemetry or mark the file //popcheck:allow detrand",
					name, pass.RelPath)
			}
		}
		return true
	})
	return nil
}
