package detrand_test

import (
	"testing"

	"popgraph/internal/analyzers/analyzertest"
	"popgraph/internal/analyzers/detrand"
)

func TestContractPackageFlagged(t *testing.T) {
	analyzertest.Run(t, detrand.Analyzer, "testdata/src/contract",
		"popgraph/internal/sim/detrandcontract")
}

func TestFileAllowDirective(t *testing.T) {
	analyzertest.Run(t, detrand.Analyzer, "testdata/src/allowed",
		"popgraph/internal/core/detrandallowed")
}

func TestOutOfScopePackageClean(t *testing.T) {
	analyzertest.Run(t, detrand.Analyzer, "testdata/src/outofscope",
		"popgraph/internal/telemetry/detrandfree")
}

func TestInScope(t *testing.T) {
	for rel, want := range map[string]bool{
		"internal/sim":                true,
		"internal/sim/sub":            true,
		"internal/protocols/majority": true,
		"internal/sweep":              true,
		"internal/telemetry":          false,
		"internal/results":            false,
		"cmd/sweep":                   false,
		"":                            false,
		"internal/simulator":          false, // prefix must respect path boundaries
	} {
		if got := detrand.InScope(rel); got != want {
			t.Errorf("InScope(%q) = %v, want %v", rel, got, want)
		}
	}
}
