// Package hotpath enforces kernel purity: a function whose doc comment
// carries the //popcheck:kernel directive is one of the engine's
// compiled chunk-runner loops (internal/sim/engine.go,
// engine_table.go), which PR 5 made allocation- and dispatch-free. The
// per-step cost budget there is a couple of loads, a multiply and
// predictable branches; anything that allocates, defers, schedules or
// dynamically dispatches silently destroys the measured speedups the
// committed BENCH_sim.json baselines gate on.
//
// Inside a marked function the analyzer flags:
//   - defer and go statements;
//   - allocation sites: make, new, append, composite literals and
//     function literals (closures capture and escape);
//   - any call into package fmt (formatting allocates; kernels report
//     through preallocated counters instead);
//   - interface method calls on anything other than the kernel's own
//     parameters. A Step-dispatch kernel receives the protocol as a
//     parameter — that seam is the documented dispatch point — but
//     dispatch on fields or locals means the sampling path regressed to
//     interface calls.
//
// Known-slow fallback paths (e.g. the node-clock kernels' non-CSR
// neighbor lookup) document themselves with
// "//popcheck:ignore hotpath <reason>".
package hotpath

import (
	"go/ast"
	"go/types"

	"popgraph/internal/analyzers"
)

// Analyzer is the hotpath pass.
var Analyzer = &analyzers.Analyzer{
	Name: "hotpath",
	Doc: "enforce allocation- and dispatch-freedom inside //popcheck:kernel functions " +
		"(no defer/go/fmt/make/new/append/composite literals/closures; interface calls only on parameters)",
	Run: run,
}

func run(pass *analyzers.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analyzers.FuncMarked(fn, "kernel") {
				continue
			}
			checkKernel(pass, fn)
		}
	}
	return nil
}

// paramObjects collects the types.Object of every parameter (and
// receiver) of fn: the sanctioned dispatch seam.
func paramObjects(pass *analyzers.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	params := make(map[types.Object]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	add(fn.Recv)
	add(fn.Type.Params)
	return params
}

func checkKernel(pass *analyzers.Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	params := paramObjects(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer inside kernel %s (defers allocate and run cold epilogues on the hot path)", name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement inside kernel %s", name)
		case *ast.CompositeLit:
			pass.Reportf(n.Pos(), "composite literal allocation inside kernel %s", name)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure inside kernel %s (captures escape to the heap)", name)
			return false // don't double-report the closure's own body
		case *ast.CallExpr:
			checkKernelCall(pass, n, name, params)
		}
		return true
	})
}

func checkKernelCall(pass *analyzers.Pass, call *ast.CallExpr, kernel string, params map[types.Object]bool) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new", "append":
				pass.Reportf(call.Pos(), "%s inside kernel %s (allocates on the hot path)", id.Name, kernel)
			}
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if path, fname := pass.PkgFuncCall(call); path != "" {
		if path == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s inside kernel %s (formatting allocates; use counters)", fname, kernel)
		}
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	recv := selection.Recv()
	if _, isInterface := recv.Underlying().(*types.Interface); !isInterface {
		return
	}
	// Dispatch through the kernel's own parameters is the documented
	// protocol seam; anything else is a regression.
	if id, ok := sel.X.(*ast.Ident); ok && params[pass.TypesInfo.Uses[id]] {
		return
	}
	pass.Reportf(call.Pos(),
		"interface method call %s.%s inside kernel %s (dynamic dispatch on the hot path; monomorphize or //popcheck:ignore hotpath with a reason)",
		types.ExprString(sel.X), sel.Sel.Name, kernel)
}
