package hotpath_test

import (
	"testing"

	"popgraph/internal/analyzers/analyzertest"
	"popgraph/internal/analyzers/hotpath"
)

func TestKernelPurity(t *testing.T) {
	analyzertest.Run(t, hotpath.Analyzer, "testdata/src/hotpath",
		"popgraph/internal/sim/hotpathtest")
}
