// Package hotpath exercises the hotpath analyzer: marked kernels must
// stay allocation- and dispatch-free, unmarked functions may do
// anything.
package hotpath

import "fmt"

// stepper mimics the engine's protocol seam.
type stepper interface {
	Step(u, v int)
	Stable() bool
}

// machine holds a stored interface — dispatch through it from a kernel
// is a regression.
type machine struct {
	p      stepper
	buf    []uint64
	cursor int
}

// goodKernel is dispatch-free except through its parameter: clean.
//
//popcheck:kernel
func (m *machine) goodKernel(p stepper, k int) (int, bool) {
	for i := 0; i < k; i++ {
		x := m.buf[m.cursor]
		m.cursor++
		p.Step(int(x>>32), int(x&0xffffffff))
		if p.Stable() {
			return i, true
		}
	}
	return k, false
}

// badKernel commits every sin the analyzer knows.
//
//popcheck:kernel
func (m *machine) badKernel(k int) int {
	defer func() {}()        // want `hotpath: defer inside kernel badKernel` `hotpath: closure inside kernel badKernel`
	out := make([]int, 0, k) // want `hotpath: make inside kernel badKernel`
	for i := 0; i < k; i++ {
		m.p.Step(i, i+1)     // want `hotpath: interface method call m\.p\.Step inside kernel badKernel`
		out = append(out, i) // want `hotpath: append inside kernel badKernel`
		fmt.Println(i)       // want `hotpath: fmt\.Println inside kernel badKernel`
	}
	_ = machine{} // want `hotpath: composite literal allocation inside kernel badKernel`
	return len(out)
}

// fallbackKernel documents a known-slow path with the escape hatch.
//
//popcheck:kernel
func (m *machine) fallbackKernel(k int) {
	for i := 0; i < k; i++ {
		m.p.Step(i, i) //popcheck:ignore hotpath non-CSR fallback, measured and accepted
	}
}

// notAKernel has no marker: nothing here is the analyzer's business.
func (m *machine) notAKernel(k int) []int {
	defer fmt.Println("done")
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		m.p.Step(i, i+1)
		out = append(out, i)
	}
	return out
}
