package table

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteText(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 12345.678)
	var buf bytes.Buffer
	tb.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "name", "value", "alpha", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Title + header + rule + two data rows.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d", len(lines))
	}
}

func TestWriteMarkdown(t *testing.T) {
	tb := New("md", "a", "b")
	tb.AddRow(1, 2)
	var buf bytes.Buffer
	tb.WriteMarkdown(&buf)
	out := buf.String()
	for _, want := range []string{"### md", "| a | b |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{3, "3"},
		{-17, "-17"},
		{0.5, "0.5"},
		{1234.5678, "1235"},
		{2.5e7, "2.5e+07"},
	}
	for _, c := range cases {
		if got := formatFloat(c.v); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestNoTitle(t *testing.T) {
	tb := New("", "x")
	tb.AddRow("y")
	var buf bytes.Buffer
	tb.WriteText(&buf)
	if strings.Contains(buf.String(), "==") {
		t.Error("empty title must not render a banner")
	}
}

// TestMultibyteCellAlignment — cells are padded by display runes, not
// bytes, so the 3-byte "—" marker must not shift later columns.
func TestMultibyteCellAlignment(t *testing.T) {
	tb := New("", "aa", "bb")
	tb.AddRow("—", "x")
	tb.AddRow("yy", "z")
	var buf bytes.Buffer
	tb.WriteText(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	col := strings.Index(lines[len(lines)-1], "z")
	dash := lines[len(lines)-2]
	if idx := strings.Index(dash, "x"); len([]rune(dash[:idx])) != col {
		t.Fatalf("columns misaligned:\n%s", buf.String())
	}
}
