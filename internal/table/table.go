// Package table renders plain-text and Markdown tables for the experiment
// harness and the command-line tools.
package table

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is a simple column-aligned text table. The zero value is not
// usable; create with New.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat renders floats compactly: integers without decimals, large
// values with thousands-free scientific notation, small with 3 significant
// digits.
func formatFloat(v float64) string {
	switch {
	case v >= 1e6 || v <= -1e6:
		return fmt.Sprintf("%.3g", v)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	if t.title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// WriteMarkdown renders the table as GitHub-flavored Markdown.
func (t *Table) WriteMarkdown(w io.Writer) {
	if t.title != "" {
		fmt.Fprintf(w, "### %s\n\n", t.title)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.headers, " | "))
	seps := make([]string, len(t.headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
}

// pad right-pads by display runes, not bytes, so multibyte cells (the
// "—" marker) keep columns aligned.
func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}
