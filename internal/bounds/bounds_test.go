package bounds

import (
	"math"
	"testing"

	"popgraph/internal/graph"
	"popgraph/internal/xrand"
)

// bruteExpansion computes β(G) exactly by enumerating all nonempty subsets
// of size <= n/2 (tiny graphs only).
func bruteExpansion(g graph.Graph) float64 {
	n := g.N()
	if n > 16 {
		panic("bruteExpansion: graph too large")
	}
	best := math.Inf(1)
	inS := make([]bool, n)
	for mask := 1; mask < 1<<n; mask++ {
		size := 0
		for v := 0; v < n; v++ {
			inS[v] = mask&(1<<v) != 0
			if inS[v] {
				size++
			}
		}
		if size == 0 || size > n/2 {
			continue
		}
		if e := float64(graph.EdgeBoundary(g, inS)) / float64(size); e < best {
			best = e
		}
	}
	return best
}

func TestExpansionFormulasAgainstBruteForce(t *testing.T) {
	cases := []struct {
		g    graph.Graph
		want float64
	}{
		{graph.Cycle(8), ExpansionCycle(8)},
		{graph.Cycle(9), ExpansionCycle(9)},
		{graph.NewClique(6), ExpansionClique(6)},
		{graph.NewClique(7), ExpansionClique(7)},
		{graph.Star(8), ExpansionStar()},
		{graph.Hypercube(3), ExpansionHypercube()},
	}
	for _, c := range cases {
		brute := bruteExpansion(c.g)
		if math.Abs(brute-c.want) > 1e-9 {
			t.Errorf("%s: formula %v, brute force %v", c.g.Name(), c.want, brute)
		}
	}
}

func TestExpansionTorusUpperIsUpperBound(t *testing.T) {
	g := graph.Torus2D(4, 4)
	brute := bruteExpansion(g)
	if upper := ExpansionTorusUpper(4); brute > upper+1e-9 {
		t.Errorf("torus brute β %v exceeds claimed upper bound %v", brute, upper)
	}
}

func TestKnownExpansionDetection(t *testing.T) {
	r := xrand.New(1)
	known := []graph.Graph{
		graph.NewClique(10), graph.Cycle(12), graph.Star(9), graph.Hypercube(4),
	}
	for _, g := range known {
		if _, ok := KnownExpansion(g); !ok {
			t.Errorf("%s: expansion should be known", g.Name())
		}
	}
	gnp, err := graph.Gnp(20, 0.3, r)
	if err != nil {
		t.Fatal(err)
	}
	unknown := []graph.Graph{graph.Path(9), graph.Torus2D(3, 4), gnp, graph.Lollipop(4, 3)}
	for _, g := range unknown {
		if beta, ok := KnownExpansion(g); ok {
			t.Errorf("%s: unexpectedly known expansion %v", g.Name(), beta)
		}
	}
}

func TestKnownExpansionValues(t *testing.T) {
	if beta, _ := KnownExpansion(graph.NewClique(8)); beta != 4 {
		t.Errorf("K_8 β = %v", beta)
	}
	if beta, _ := KnownExpansion(graph.Cycle(16)); beta != 0.25 {
		t.Errorf("C_16 β = %v", beta)
	}
}

func TestBroadcastBoundsOrdering(t *testing.T) {
	// Lower bound must not exceed upper bound on standard families.
	cases := []struct {
		g    graph.Graph
		beta float64
	}{
		{graph.NewClique(64), ExpansionClique(64)},
		{graph.Cycle(64), ExpansionCycle(64)},
		{graph.Star(64), ExpansionStar()},
	}
	for _, c := range cases {
		n, m := c.g.N(), c.g.M()
		lo := BroadcastLower(n, m, graph.MaxDegree(c.g))
		hi := BroadcastUpper(n, m, graph.Diameter(c.g), c.beta)
		if lo > hi {
			t.Errorf("%s: lower %v > upper %v", c.g.Name(), lo, hi)
		}
	}
}

func TestBroadcastUpperPicksMin(t *testing.T) {
	// On a clique the expansion bound beats the diameter bound; with
	// beta = 0 the diameter bound must be returned.
	n, m, d := 256, 256*255/2, 1
	withBeta := BroadcastUpper(n, m, d, ExpansionClique(n))
	noBeta := BroadcastUpper(n, m, d, 0)
	if withBeta >= noBeta {
		t.Errorf("expansion bound %v should beat diameter bound %v on cliques", withBeta, noBeta)
	}
	if noBeta != BroadcastUpperDiameter(n, m, d) {
		t.Error("beta = 0 must fall back to diameter bound")
	}
}

func TestShapeFunctions(t *testing.T) {
	if SixStateUpper(1024, 100) != 100*1024*10 {
		t.Errorf("SixStateUpper = %v", SixStateUpper(1024, 100))
	}
	if IdentifierUpper(1024, 5000) != 5000+1024*10 {
		t.Errorf("IdentifierUpper = %v", IdentifierUpper(1024, 5000))
	}
	if FastUpper(1024, 5000) != 50000 {
		t.Errorf("FastUpper = %v", FastUpper(1024, 5000))
	}
}

func TestHittingFormulas(t *testing.T) {
	if HittingClique(10) != 9 {
		t.Error("clique hitting")
	}
	if HittingCycle(10) != 25 || HittingCycle(11) != 30 {
		t.Errorf("cycle hitting: %v, %v", HittingCycle(10), HittingCycle(11))
	}
	if HittingPathEnds(10) != 81 {
		t.Error("path hitting")
	}
	if HittingPopulationUpper(10, 9) != 27*10*9 {
		t.Error("population hitting upper")
	}
	if ConductanceRegular(0.5, 4) != 0.125 {
		t.Error("conductance")
	}
}

func TestPropagationLower(t *testing.T) {
	got := PropagationLower(10, 100, 2)
	want := 10.0 * 100 / (2 * math.Exp(3))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("PropagationLower = %v, want %v", got, want)
	}
}
