// Package bounds collects the paper's closed-form bounds so experiments
// can print paper-vs-measured rows. Each function cites the statement it
// implements. Constants follow the paper exactly, so upper bounds are
// loose by design and lower bounds conservative.
package bounds

import (
	"math"

	"popgraph/internal/graph"
	"popgraph/internal/stats"
)

// BroadcastUpperDiameter returns the Lemma 8 bound
// B(G) <= m·max{6·ln n, D} + 2.
func BroadcastUpperDiameter(n, m, diam int) float64 {
	return float64(m)*math.Max(6*math.Log(float64(n)), float64(diam)) + 2
}

// BroadcastUpperExpansion returns the Lemma 10 bound
// B(G) <= 2·λ₀·m·log n / β + 2 with λ₀ = 4 (any λ₀ with λ−e−ln λ ≥ λ/2
// for λ ≥ λ₀ works; λ₀ = 4 satisfies it).
func BroadcastUpperExpansion(n, m int, beta float64) float64 {
	const lambda0 = 4
	return 2*lambda0*float64(m)*math.Log2(float64(n))/beta + 2
}

// BroadcastUpper returns Theorem 6: O(m·min{log n/β, log n + D}), as the
// minimum of the two explicit bounds above (beta <= 0 disables the
// expansion bound).
func BroadcastUpper(n, m, diam int, beta float64) float64 {
	d := BroadcastUpperDiameter(n, m, diam)
	if beta <= 0 {
		return d
	}
	return math.Min(d, BroadcastUpperExpansion(n, m, beta))
}

// BroadcastLower returns the Lemma 12 bound B(G) >= (m/Δ)·ln(n−1)
// (derived via harmonic numbers; we use H_{n-1} exactly).
func BroadcastLower(n, m, maxDeg int) float64 {
	return float64(m) / float64(maxDeg) * stats.Harmonic(n-1)
}

// PropagationLower returns the Lemma 14 threshold t = k·m/(Δ·e³):
// Pr[T_k(G) < t] <= 1/n whenever k >= ln n.
func PropagationLower(k, m, maxDeg int) float64 {
	return float64(k) * float64(m) / (float64(maxDeg) * math.Exp(3))
}

// SixStateUpper returns the Theorem 16 shape H(G)·n·log n (the O(·)
// argument, without the constant): the six-state protocol's expected
// stabilization time normalized by this should be flat in n.
func SixStateUpper(n int, hitting float64) float64 {
	return hitting * float64(n) * math.Log2(float64(n))
}

// IdentifierUpper returns the Theorem 21 shape B(G) + n·log n.
func IdentifierUpper(n int, broadcast float64) float64 {
	return broadcast + float64(n)*math.Log2(float64(n))
}

// FastUpper returns the Theorem 24 shape B(G)·log n.
func FastUpper(n int, broadcast float64) float64 {
	return broadcast * math.Log2(float64(n))
}

// ExpansionCycle returns β(C_n) = 2/⌊n/2⌋ (split the cycle in half:
// 2 boundary edges over ⌊n/2⌋ nodes).
func ExpansionCycle(n int) float64 { return 2 / float64(n/2) }

// ExpansionClique returns β(K_n) = ⌈n/2⌉: a set of size s <= n/2 has
// boundary s·(n−s), minimized per element at s = ⌊n/2⌋, giving n−⌊n/2⌋.
func ExpansionClique(n int) float64 { return float64(n - n/2) }

// ExpansionStar returns β(K_{1,n-1}) = 1: any set of s <= n/2 leaves
// (excluding the center) has boundary exactly s.
func ExpansionStar() float64 { return 1 }

// ExpansionTorusUpper returns an upper bound on β of the k×k torus via the
// half-wrap cut: cutting along a dimension gives 2k boundary edges over
// k²/2 nodes, i.e. 4/k; the true β is Θ(1/k).
func ExpansionTorusUpper(k int) float64 { return 4 / float64(k) }

// ExpansionHypercube returns β(Q_d) = 1 (dimension cut is optimal by
// Harper's edge-isoperimetric inequality).
func ExpansionHypercube() float64 { return 1 }

// ConductanceRegular returns ϕ = β/Δ for a Δ-regular graph.
func ConductanceRegular(beta float64, deg int) float64 { return beta / float64(deg) }

// HittingClique returns H(K_n) = n−1 (classic random walk).
func HittingClique(n int) float64 { return float64(n - 1) }

// HittingCycle returns H(C_n) = ⌊n/2⌋·⌈n/2⌉, the worst-case expected
// hitting time on the n-cycle: H(u,v) = k(n−k) at distance k, maximized
// at k = ⌊n/2⌋.
func HittingCycle(n int) float64 { return float64(n/2) * float64((n+1)/2) }

// HittingPathEnds returns H(P_n) endpoint-to-endpoint = (n−1)².
func HittingPathEnds(n int) float64 { return float64(n-1) * float64(n-1) }

// HittingPopulationUpper returns the Lemma 17 bound H_P(G) <= 27·n·H(G).
func HittingPopulationUpper(n int, hitting float64) float64 {
	return 27 * float64(n) * hitting
}

// KnownExpansion returns the exact edge expansion for the families with a
// closed form, keyed on the concrete generator outputs, and ok=false
// otherwise.
func KnownExpansion(g graph.Graph) (beta float64, ok bool) {
	n := g.N()
	switch {
	case isClique(g):
		return ExpansionClique(n), true
	case isCycle(g):
		return ExpansionCycle(n), true
	case isStar(g):
		return ExpansionStar(), true
	case isHypercube(g):
		return ExpansionHypercube(), true
	default:
		return 0, false
	}
}

func isClique(g graph.Graph) bool {
	return g.M() == g.N()*(g.N()-1)/2
}

func isCycle(g graph.Graph) bool {
	if g.M() != g.N() || g.N() < 3 {
		return false
	}
	return graph.IsRegular(g) && g.Degree(0) == 2
}

func isStar(g graph.Graph) bool {
	if g.M() != g.N()-1 || g.N() < 3 {
		return false
	}
	return graph.MaxDegree(g) == g.N()-1
}

func isHypercube(g graph.Graph) bool {
	n := g.N()
	if n < 2 || n&(n-1) != 0 {
		return false
	}
	d := 0
	for 1<<d < n {
		d++
	}
	return graph.IsRegular(g) && g.Degree(0) == d && g.M() == n*d/2
}
