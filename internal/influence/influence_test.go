package influence

import (
	"math"
	"testing"

	"popgraph/internal/graph"
	"popgraph/internal/protocols/beauquier"
	"popgraph/internal/sim"
	"popgraph/internal/xrand"
)

func TestRecordScheduleValidPairs(t *testing.T) {
	g := graph.Cycle(10)
	sched := RecordSchedule(g, 1000, xrand.New(1))
	if len(sched) != 1000 {
		t.Fatalf("len %d", len(sched))
	}
	for _, e := range sched {
		u, v := int(e[0]), int(e[1])
		diff := (u - v + 10) % 10
		if diff != 1 && diff != 9 {
			t.Fatalf("pair (%d,%d) not a cycle edge", u, v)
		}
	}
}

// TestReverseEqualsBruteForce compares ReverseInfluence against a direct
// forward computation of the influencer sets I_t(v) for all nodes.
func TestReverseEqualsBruteForce(t *testing.T) {
	g := graph.Torus2D(3, 3)
	r := xrand.New(5)
	for trial := 0; trial < 20; trial++ {
		sched := RecordSchedule(g, int64(10+trial*13), r)
		// Forward: influencers[v] is a bitmask over sources.
		n := g.N()
		inf := make([]uint32, n)
		for v := range inf {
			inf[v] = 1 << v
		}
		internal := make([]int, n) // per-node brute internal counts are
		_ = internal               // not defined forward; only sizes compared
		for _, e := range sched {
			u, v := e[0], e[1]
			merged := inf[u] | inf[v]
			inf[u], inf[v] = merged, merged
		}
		for v := 0; v < n; v++ {
			got := ReverseInfluence(g, sched, v)
			want := popcount32(inf[v])
			if got.Size != want {
				t.Fatalf("trial %d node %d: reverse size %d, forward %d", trial, v, got.Size, want)
			}
		}
	}
}

func popcount32(x uint32) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

func TestReverseInternalCounting(t *testing.T) {
	g := graph.Path(4)
	// Schedule (processed in reverse): (2,3) then (1,2) then (2,3) again.
	// Reverse order: (2,3): J={3}? v=3: start {3}; (2,3) adds 2; (1,2)
	// adds 1; (2,3): both inside -> internal.
	sched := [][2]int32{{2, 3}, {1, 2}, {2, 3}}
	got := ReverseInfluence(g, sched, 3)
	if got.Size != 3 || got.Internal != 1 {
		t.Fatalf("got %+v, want size 3 internal 1", got)
	}
}

// TestLemma41InfluencerGrowth — on a dense random graph, |I_t(v)| stays
// below n^ε for t = c·n·log n with small c, with high probability.
func TestLemma41InfluencerGrowth(t *testing.T) {
	r := xrand.New(7)
	const n = 256
	g, err := graph.Gnp(n, 0.5, r)
	if err != nil {
		t.Fatal(err)
	}
	const c = 0.05
	steps := int64(c * float64(n) * math.Log(float64(n)))
	sched := RecordSchedule(g, steps, r)
	const eps = 0.75
	limit := math.Pow(float64(n), eps)
	over := 0
	for v := 0; v < n; v += 16 {
		if got := ReverseInfluence(g, sched, v); float64(got.Size) > limit {
			over++
		}
	}
	if over > 1 {
		t.Errorf("influencer sets exceeded n^%v in %d probes", eps, over)
	}
}

// TestLemma44FewInternalInteractions — before c·n·log n steps the reverse
// multigraph has O(log n) internal interactions.
func TestLemma44FewInternalInteractions(t *testing.T) {
	r := xrand.New(9)
	const n = 256
	g, err := graph.Gnp(n, 0.5, r)
	if err != nil {
		t.Fatal(err)
	}
	steps := int64(0.05 * float64(n) * math.Log(float64(n)))
	sched := RecordSchedule(g, steps, r)
	budget := int(4 * math.Log(float64(n)))
	for v := 0; v < n; v += 32 {
		if got := ReverseInfluence(g, sched, v); got.Internal > budget {
			t.Errorf("node %d: %d internal interactions, budget %d", v, got.Internal, budget)
		}
	}
}

func TestForwardInfluenceMonotone(t *testing.T) {
	g := graph.NewClique(32)
	sizes := ForwardInfluenceSizes(g, 0, []int64{0, 50, 100, 500, 5000}, xrand.New(11))
	if sizes[0] != 1 {
		t.Fatalf("at t=0 size %d", sizes[0])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Fatal("influence sizes must be monotone")
		}
	}
}

// TestLemma42NonInteracted — for t = c·n·log n with small c, at least
// N^{1−ε} nodes have not interacted, w.h.p.
func TestLemma42NonInteracted(t *testing.T) {
	r := xrand.New(13)
	const n = 512
	g, err := graph.Gnp(n, 0.4, r)
	if err != nil {
		t.Fatal(err)
	}
	steps := int64(0.05 * float64(n) * math.Log(float64(n)))
	got := NonInteracted(g, steps, r)
	const eps = 0.5
	if float64(got) < math.Pow(n, 1-eps) {
		t.Errorf("only %d nodes untouched, want >= n^%v = %v", got, 1-eps, math.Pow(n, 1-eps))
	}
	// Sanity: with an enormous budget everyone interacts.
	if rem := NonInteracted(g, int64(50*n*10), r); rem != 0 {
		t.Errorf("%d nodes untouched after huge budget", rem)
	}
}

func TestNonInteractedInSet(t *testing.T) {
	g := graph.Star(32)
	r := xrand.New(15)
	set := []int{1, 2, 3, 4, 5}
	if got := NonInteractedInSet(g, set, 0, r); got != len(set) {
		t.Fatalf("t=0: %d", got)
	}
	if got := NonInteractedInSet(g, set, 100000, r); got != 0 {
		t.Fatalf("huge t: %d untouched", got)
	}
}

// TestLemma48FullyDense — the six-state protocol on a dense random graph
// passes through a configuration where every producible state has density
// >= alpha for some constant alpha, within O(n) steps.
func TestLemma48FullyDense(t *testing.T) {
	r := xrand.New(17)
	const n = 512
	g, err := graph.Gnp(n, 0.5, r)
	if err != nil {
		t.Fatal(err)
	}
	p := beauquier.New()
	tracker := &DensityTracker{P: p, N: n}
	sim.Run(g, p, r, sim.Options{
		MaxSteps:     int64(40 * n),
		Observer:     tracker,
		ObserveEvery: int64(n / 8),
	})
	alpha, step := BestFullDensity(tracker.Samples)
	if alpha < 0.01 {
		t.Errorf("best full density %v < 0.01 (at step %d)", alpha, step)
	}
	if step > int64(40*n) {
		t.Errorf("fully dense configuration only after %d steps", step)
	}
}

func TestBestFullDensityEmpty(t *testing.T) {
	alpha, step := BestFullDensity(nil)
	if alpha != 0 || step != -1 {
		t.Fatalf("empty: %v %d", alpha, step)
	}
}
