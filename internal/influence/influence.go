// Package influence implements the lower-bound machinery of Sections 6.3
// and 7: influencer sets I_t(v) and their reverse-process computation
// J_t(v) (with internal-interaction counting for the multigraph-of-
// influencers argument, Lemmas 41 and 44), the set S(t) of nodes that have
// not interacted by step t (Lemmas 42–43), and state-density tracking for
// the fully-dense-configuration step of the surgery argument (Lemma 48).
package influence

import (
	"popgraph/internal/core"
	"popgraph/internal/graph"
	"popgraph/internal/protocols/beauquier"
	"popgraph/internal/xrand"
)

// RecordSchedule samples a stochastic schedule of the given length:
// `steps` ordered pairs drawn uniformly among the 2m ordered adjacent
// pairs of g.
func RecordSchedule(g graph.Graph, steps int64, r *xrand.Rand) [][2]int32 {
	sched := make([][2]int32, steps)
	for i := range sched {
		u, v := g.SampleEdge(r)
		sched[i] = [2]int32{int32(u), int32(v)}
	}
	return sched
}

// ReverseResult describes J_t(v), the multigraph of influencers of node v
// played in reverse over a recorded schedule.
type ReverseResult struct {
	// Size is |I_t(v)| = |J_t(v)|: the number of nodes that can influence
	// v's state after the schedule runs.
	Size int
	// Internal counts internal interactions: scheduled pairs whose both
	// endpoints already belonged to J at processing time. Internal
	// interactions create cycles in the multigraph of influencers; Lemma
	// 44 shows there are O(log n) of them w.h.p. before c·n·log n steps.
	Internal int
}

// ReverseInfluence computes J_t(v) over the schedule: processing
// interactions from last to first, a pair touching the current set adds
// its other endpoint (and pairs with both endpoints inside count as
// internal interactions). By construction J_t(v) equals the influencer
// set I_t(v) of the forward dynamics.
func ReverseInfluence(g graph.Graph, schedule [][2]int32, v int) ReverseResult {
	in := make([]bool, g.N())
	in[v] = true
	size, internal := 1, 0
	for i := len(schedule) - 1; i >= 0; i-- {
		a, b := schedule[i][0], schedule[i][1]
		ina, inb := in[a], in[b]
		switch {
		case ina && inb:
			internal++
		case ina:
			in[b] = true
			size++
		case inb:
			in[a] = true
			size++
		}
	}
	return ReverseResult{Size: size, Internal: internal}
}

// ForwardInfluenceSizes runs the forward influence dynamics from a single
// node v and returns |S_t| where S_t = {u : v ∈ I_t(u)} (the nodes
// influenced BY v), sampled at the requested checkpoints (ascending step
// counts). Used to cross-validate the reverse computation.
func ForwardInfluenceSizes(g graph.Graph, v int, checkpoints []int64, r *xrand.Rand) []int {
	in := make([]bool, g.N())
	in[v] = true
	count := 1
	out := make([]int, len(checkpoints))
	var t int64
	for i, cp := range checkpoints {
		for t < cp {
			t++
			a, b := g.SampleEdge(r)
			if in[a] != in[b] {
				in[a] = true
				in[b] = true
				count++
			}
		}
		out[i] = count
	}
	return out
}

// NonInteracted runs t scheduler steps and returns |S(t)|: the number of
// nodes that never interacted (Lemma 42's X(t)).
func NonInteracted(g graph.Graph, t int64, r *xrand.Rand) int {
	touched := make([]bool, g.N())
	remaining := g.N()
	for i := int64(0); i < t; i++ {
		u, v := g.SampleEdge(r)
		if !touched[u] {
			touched[u] = true
			remaining--
		}
		if !touched[v] {
			touched[v] = true
			remaining--
		}
	}
	return remaining
}

// NonInteractedInSet runs t steps and returns how many nodes of the given
// set never interacted (Lemma 42 applied to U = B(v) in Lemma 43).
func NonInteractedInSet(g graph.Graph, set []int, t int64, r *xrand.Rand) int {
	touched := make([]bool, g.N())
	for i := int64(0); i < t; i++ {
		u, v := g.SampleEdge(r)
		touched[u] = true
		touched[v] = true
	}
	count := 0
	for _, v := range set {
		if !touched[v] {
			count++
		}
	}
	return count
}

// DensitySample is one observation of the six-state protocol's state
// densities (counts normalized by n).
type DensitySample struct {
	Step      int64
	Densities map[core.TokenState]float64
}

// MinPresent returns the minimum density among the given states; states
// missing from the sample count as zero.
func (d DensitySample) MinPresent(states []core.TokenState) float64 {
	min := 1.0
	for _, s := range states {
		if v := d.Densities[s]; v < min {
			min = v
		}
	}
	return min
}

// DensityTracker observes a beauquier run and records state densities at
// a fixed cadence; it implements sim.Observer.
type DensityTracker struct {
	P       *beauquier.Protocol
	N       int
	Samples []DensitySample
}

// Observe implements sim.Observer.
func (d *DensityTracker) Observe(t int64) {
	counts := make(map[core.TokenState]int, 6)
	for v := 0; v < d.N; v++ {
		counts[d.P.State(v)]++
	}
	dens := make(map[core.TokenState]float64, len(counts))
	for s, c := range counts {
		dens[s] = float64(c) / float64(d.N)
	}
	d.Samples = append(d.Samples, DensitySample{Step: t, Densities: dens})
}

// ProducibleStates is the set of persistent states the six-state protocol
// can produce from the all-candidates initial configuration.
var ProducibleStates = []core.TokenState{
	core.CandidateBlack, core.CandidateNone,
	core.FollowerNone, core.FollowerBlack, core.FollowerWhite,
}

// BestFullDensity scans the samples for the fully dense configuration of
// Lemma 48: the maximum over observed steps of the minimum producible-
// state density, together with the step where it was attained.
func BestFullDensity(samples []DensitySample) (alpha float64, step int64) {
	best, bestStep := 0.0, int64(-1)
	for _, s := range samples {
		if m := s.MinPresent(ProducibleStates); m > best {
			best, bestStep = m, s.Step
		}
	}
	return best, bestStep
}
