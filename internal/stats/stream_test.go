package stats

import (
	"math"
	"testing"

	"popgraph/internal/xrand"
)

// close2 reports approximate equality with relative tolerance tol
// (absolute near zero).
func close2(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}

// streamOf feeds xs through a single Stream in order.
func streamOf(xs []float64) Stream {
	var s Stream
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

// samples draws n deterministic values in [0, span) plus a few repeats
// and exact zeros, the shapes step counts take.
func samples(seed uint64, n int, span float64) []float64 {
	r := xrand.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		switch i % 7 {
		case 3:
			xs[i] = 0
		case 5:
			xs[i] = 1024 // repeated exact value
		default:
			xs[i] = math.Floor(r.Float64() * span)
		}
	}
	return xs
}

// TestStreamMatchesSummarize — while the sketch is exact (n ≤
// SketchExactCap), Stream.Summary agrees with the two-pass Summarize:
// bit-equal N/Min/Max/Median, float-tolerance Mean/Std (Welford vs
// two-pass rounding).
func TestStreamMatchesSummarize(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, SketchExactCap} {
		xs := samples(uint64(n), n, 1e6)
		got := streamOf(xs).Summary()
		want := Summarize(xs)
		if got.N != want.N || got.Min != want.Min || got.Max != want.Max || got.Median != want.Median {
			t.Fatalf("n=%d: exact fields diverge: got %+v want %+v", n, got, want)
		}
		if !close2(got.Mean, want.Mean, 1e-12) || !close2(got.Std, want.Std, 1e-9) {
			t.Fatalf("n=%d: mean/std diverge: got %+v want %+v", n, got, want)
		}
	}
}

// TestStreamMergeZeroIdentity — merging the zero Stream in either
// direction changes nothing.
func TestStreamMergeZeroIdentity(t *testing.T) {
	s := streamOf(samples(1, 40, 1e4))
	var zero Stream
	merged := s
	merged.Merge(Stream{})
	if merged.Summary() != s.Summary() || merged.Count != s.Count {
		t.Fatal("merging zero stream changed the summary")
	}
	zero.Merge(s)
	if zero.Summary() != s.Summary() {
		t.Fatalf("zero.Merge(s) = %+v, want %+v", zero.Summary(), s.Summary())
	}
	// The identity merge must not alias: mutating the copy's sketch must
	// leave the source intact.
	zero.Add(1e12)
	if zero.Count != s.Count+1 || streamOf(samples(1, 40, 1e4)).Summary() != s.Summary() {
		t.Fatal("merge aliased the source sketch")
	}
}

// TestStreamMergeAssociativePermutationInsensitive is the sharding
// property: however a sample multiset is split into shards, ordered
// within shards, and grouped during merging, the merged stream reports
// the same Count/Min/Max, the same sketch quantiles (integer bucket
// counts merge exactly), and the same Mean/Std up to float rounding.
// Sizes straddle the exact→bucketed collapse on both sides.
func TestStreamMergeAssociativePermutationInsensitive(t *testing.T) {
	for _, n := range []int{10, SketchExactCap - 1, SketchExactCap + 1, 4 * SketchExactCap} {
		xs := samples(uint64(3*n), n, 1e8)
		ref := streamOf(xs)
		for _, m := range []int{1, 2, 3, 7} {
			// Round-robin split, the shard planner's assignment.
			parts := make([][]float64, m)
			for i, x := range xs {
				parts[i%m] = append(parts[i%m], x)
			}
			streams := make([]Stream, m)
			for i, p := range parts {
				streams[i] = streamOf(p)
			}
			// Left fold, right fold, and a reversed-order fold must agree.
			folds := []Stream{}
			var left Stream
			for _, s := range streams {
				left.Merge(s)
			}
			folds = append(folds, left)
			var right Stream
			for i := m - 1; i >= 0; i-- {
				next := streams[i]
				c := next
				c.Merge(right)
				right = c
			}
			folds = append(folds, right)
			for fi, got := range folds {
				if got.Count != ref.Count || got.Min != ref.Min || got.Max != ref.Max {
					t.Fatalf("n=%d m=%d fold=%d: count/min/max diverge: %+v vs %+v", n, m, fi, got, ref)
				}
				for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
					if got.Quantile(q) != ref.Quantile(q) {
						t.Fatalf("n=%d m=%d fold=%d: quantile %v: %v vs %v",
							n, m, fi, q, got.Quantile(q), ref.Quantile(q))
					}
				}
				if !close2(got.Mean, ref.Mean, 1e-9) || !close2(got.Std(), ref.Std(), 1e-6) {
					t.Fatalf("n=%d m=%d fold=%d: mean/std diverge: %v/%v vs %v/%v",
						n, m, fi, got.Mean, got.Std(), ref.Mean, ref.Std())
				}
			}
		}
	}
}

// TestSketchCollapseBounds — past the exact capacity the sketch
// collapses, and bucketed quantiles stay within the documented relative
// error of the exact order statistics.
func TestSketchCollapseBounds(t *testing.T) {
	n := 3000
	xs := samples(99, n, 1e7)
	s := streamOf(xs)
	if !s.Sketch.Collapsed() {
		t.Fatalf("sketch not collapsed at n=%d", n)
	}
	if s.Sketch.N() != int64(n) {
		t.Fatalf("sketch count %d, want %d", s.Sketch.N(), n)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		exact := Quantile(xs, q)
		got := s.Quantile(q)
		// One bucket of slack on either side of the true order statistic.
		tol := 2.0 / SketchSubBuckets
		if !close2(got, exact, tol) {
			t.Fatalf("quantile %v: sketch %v vs exact %v (tol %v)", q, got, exact, tol)
		}
	}
	// Negative and zero samples take the mirrored/zero buckets.
	var neg Stream
	for _, x := range []float64{-8, -1, 0, 0, 2, 16} {
		neg.Add(x)
	}
	big := neg
	for i := 0; i < SketchExactCap; i++ {
		big.Add(float64(i - 100))
	}
	if !big.Sketch.Collapsed() {
		t.Fatal("mixed-sign sketch did not collapse")
	}
	if big.Quantile(0) > big.Quantile(1) {
		t.Fatal("bucketed quantiles not monotone over mixed signs")
	}
}
