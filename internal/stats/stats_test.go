package stats

import (
	"math"
	"testing"
	"testing/quick"

	"popgraph/internal/xrand"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if !almost(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Fatalf("std = %v", s.Std)
	}
	if s.CI95() <= 0 {
		t.Fatalf("ci = %v", s.CI95())
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.CI95() != 0 || s.Median != 7 {
		t.Fatalf("bad single summary: %+v", s)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated input")
	}
}

func TestMeanMax(t *testing.T) {
	if Mean([]float64{2, 4, 9}) != 5 {
		t.Fatal("mean")
	}
	if Max([]float64{2, 9, 4}) != 9 {
		t.Fatal("max")
	}
}

func TestHarmonic(t *testing.T) {
	if Harmonic(0) != 0 || Harmonic(1) != 1 {
		t.Fatal("base cases")
	}
	if !almost(Harmonic(4), 1+0.5+1.0/3+0.25, 1e-12) {
		t.Fatalf("H_4 = %v", Harmonic(4))
	}
	// Asymptotic branch must agree with direct summation.
	direct := 0.0
	for i := 1; i <= 1000; i++ {
		direct += 1 / float64(i)
	}
	if !almost(Harmonic(1000), direct, 1e-9) {
		t.Fatalf("H_1000 = %v, want %v", Harmonic(1000), direct)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	a, b, r2 := LinearFit(xs, ys)
	if !almost(a, 3, 1e-9) || !almost(b, 2, 1e-9) || !almost(r2, 1, 1e-9) {
		t.Fatalf("fit: a=%v b=%v r2=%v", a, b, r2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	r := xrand.New(3)
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 1 + 0.5*xs[i] + (r.Float64() - 0.5)
	}
	_, b, r2 := LinearFit(xs, ys)
	if !almost(b, 0.5, 0.01) {
		t.Fatalf("slope = %v", b)
	}
	if r2 < 0.99 {
		t.Fatalf("r2 = %v", r2)
	}
}

func TestLogLogSlopeRecoversExponent(t *testing.T) {
	f := func(scale uint8) bool {
		k := 1 + float64(scale%4) // exponents 1..4
		xs := []float64{64, 128, 256, 512, 1024}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = 3.7 * math.Pow(x, k)
		}
		slope, r2 := LogLogSlope(xs, ys)
		return almost(slope, k, 1e-9) && almost(r2, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogLogSlopePanicsOnNonpositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LogLogSlope([]float64{1, 0}, []float64{1, 2})
}

func TestRatioSpread(t *testing.T) {
	ys := []float64{10, 20, 40}
	fs := []float64{1, 2, 4}
	if got := RatioSpread(ys, fs); !almost(got, 1, 1e-12) {
		t.Fatalf("flat spread = %v", got)
	}
	fs = []float64{1, 1, 1}
	if got := RatioSpread(ys, fs); !almost(got, 4, 1e-12) {
		t.Fatalf("spread = %v, want 4", got)
	}
}
