// Package stats provides the small statistical toolkit used by the
// experiment harness: summaries with confidence intervals, quantiles,
// harmonic numbers, and least-squares fits (including log–log scaling-
// exponent fits used to compare measured growth rates against the paper's
// asymptotic bounds).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics. It panics on empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// String renders "mean ± ci (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.CI95(), s.N)
}

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between order statistics. It does not mutate xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean. It panics on empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty sample")
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum. It panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty sample")
	}
	best := xs[0]
	for _, x := range xs[1:] {
		if x > best {
			best = x
		}
	}
	return best
}

// Harmonic returns the n-th harmonic number H_n = 1 + 1/2 + ... + 1/n.
func Harmonic(n int) float64 {
	// Exact summation below the switchover, asymptotic expansion above.
	if n <= 0 {
		return 0
	}
	if n < 256 {
		var h float64
		for i := 1; i <= n; i++ {
			h += 1 / float64(i)
		}
		return h
	}
	const gamma = 0.5772156649015329
	nf := float64(n)
	return math.Log(nf) + gamma + 1/(2*nf) - 1/(12*nf*nf)
}

// LinearFit fits y = a + b·x by ordinary least squares and returns the
// intercept a, slope b and the coefficient of determination R².
func LinearFit(xs, ys []float64) (a, b, r2 float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: LinearFit needs two equal-length samples of size >= 2")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		panic("stats: LinearFit with constant x")
	}
	b = (n*sxy - sx*sy) / denom
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return a, b, 1
	}
	var ssRes float64
	for i := range xs {
		d := ys[i] - (a + b*xs[i])
		ssRes += d * d
	}
	return a, b, 1 - ssRes/ssTot
}

// LogLogSlope fits log(y) = a + b·log(x) and returns the exponent b and
// R². Used to estimate the polynomial growth rate of measured times: a
// measured T(n) = Θ(n^k) ladder should produce b ≈ k. All inputs must be
// positive.
func LogLogSlope(xs, ys []float64) (slope, r2 float64) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("stats: LogLogSlope needs positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	_, b, r := LinearFit(lx, ly)
	return b, r
}

// RatioSpread returns max/min of the ratios ys[i]/fs[i]. A value close to
// 1 means ys is well explained by the model fs up to a constant — the
// "normalized ratio is flat" criterion used in EXPERIMENTS.md.
func RatioSpread(ys, fs []float64) float64 {
	if len(ys) != len(fs) || len(ys) == 0 {
		panic("stats: RatioSpread needs equal-length nonempty samples")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range ys {
		r := ys[i] / fs[i]
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	return hi / lo
}
