package stats

import (
	"fmt"
	"math"
	"sort"
)

// Stream is a mergeable streaming summary: count, mean and variance
// (Welford/Chan accumulation) plus a fixed-size quantile sketch. It
// replaces "collect every sample, then Summarize" in aggregation paths
// that must not hold all records in memory, and it is the unit sweep
// shards combine: Merge is associative with the zero Stream as identity,
// so per-shard partials fold into the same whole in any grouping.
//
// Exactness contract: Count, Min, Max and the sketch's bucket counts are
// integer-exact and permutation-insensitive — the same multiset of
// samples produces the same values however it was split across streams.
// Mean and variance are mathematically permutation-insensitive but
// accumulate in floating point, so different merge groupings may differ
// in the last few ULPs; byte-level determinism contracts therefore feed
// samples to a single Stream in a canonical order (grid order) rather
// than relying on bit-equal float merges. Quantiles are exact while the
// sketch holds at most SketchExactCap samples and bucket-resolution
// approximations (relative error ≤ 1/SketchSubBuckets) beyond.
type Stream struct {
	Count int64
	// Mean and M2 are Welford accumulators: M2 is the sum of squared
	// deviations from the running mean.
	Mean float64
	M2   float64
	// Min and Max are meaningful only when Count > 0.
	Min, Max float64
	Sketch   QSketch
}

// Add folds one sample into the stream.
func (s *Stream) Add(x float64) {
	s.Count++
	if s.Count == 1 {
		s.Min, s.Max = x, x
	} else {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	delta := x - s.Mean
	s.Mean += delta / float64(s.Count)
	s.M2 += delta * (x - s.Mean)
	s.Sketch.Add(x)
}

// Merge folds another stream into s (Chan et al. parallel-variance
// combination). Merging the zero Stream is a no-op, and merge order
// never changes Count, Min, Max or sketch counts.
func (s *Stream) Merge(o Stream) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 {
		*s = o
		s.Sketch = o.Sketch.clone()
		return
	}
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	a, b := float64(s.Count), float64(o.Count)
	total := a + b
	delta := o.Mean - s.Mean
	s.Mean += delta * b / total
	s.M2 += o.M2 + delta*delta*a*b/total
	s.Count += o.Count
	s.Sketch.Merge(o.Sketch)
}

// Std returns the sample standard deviation (n−1 denominator), 0 for
// fewer than two samples.
func (s Stream) Std() float64 {
	if s.Count < 2 {
		return 0
	}
	return math.Sqrt(s.M2 / float64(s.Count-1))
}

// Quantile returns the q-th quantile estimate from the sketch.
func (s Stream) Quantile(q float64) float64 { return s.Sketch.Quantile(q) }

// Summary converts the stream into the descriptive-statistics struct the
// table renderers consume. While the sketch is exact (≤ SketchExactCap
// samples) the result is identical to Summarize over the same samples,
// except that Std accumulates by Welford instead of two passes (equal up
// to float rounding). It panics on an empty stream, like Summarize.
func (s Stream) Summary() Summary {
	if s.Count == 0 {
		panic("stats: Summary of empty stream")
	}
	return Summary{
		N:      int(s.Count),
		Mean:   s.Mean,
		Std:    s.Std(),
		Min:    s.Min,
		Max:    s.Max,
		Median: s.Quantile(0.5),
	}
}

// Sketch geometry. Up to SketchExactCap samples the sketch stores the
// sorted multiset and quantiles are exact; past that it collapses into
// log-linear buckets — SketchSubBuckets per power of two — whose counts
// depend only on the sample multiset, making Merge exactly associative
// and permutation-insensitive in both modes. Bucketed quantiles carry a
// relative error of at most 1/SketchSubBuckets.
const (
	SketchExactCap   = 256
	SketchSubBuckets = 16
	// sketchExpBias shifts math.Frexp exponents (≥ −1073 for subnormals)
	// to positive bucket keys; key 0 is reserved for the value 0.
	sketchExpBias = 1100
)

// QSketch is a fixed-size mergeable quantile sketch. The zero QSketch is
// empty and ready to use.
type QSketch struct {
	// exact holds the sorted samples while the sketch is exact; buckets
	// holds log-linear bucket counts once collapsed. Exactly one of the
	// two representations is active (buckets == nil means exact).
	exact   []float64
	buckets map[int]int64
	n       int64
}

// N returns the number of samples added.
func (q QSketch) N() int64 { return q.n }

// Collapsed reports whether the sketch has switched from exact storage
// to bucket counts.
func (q QSketch) Collapsed() bool { return q.buckets != nil }

// clone returns a deep copy (Merge must not alias the source's storage).
func (q QSketch) clone() QSketch {
	out := QSketch{n: q.n}
	if q.buckets != nil {
		out.buckets = make(map[int]int64, len(q.buckets))
		for k, v := range q.buckets {
			out.buckets[k] = v
		}
		return out
	}
	out.exact = append([]float64(nil), q.exact...)
	return out
}

// Add inserts one sample.
func (q *QSketch) Add(x float64) {
	q.n++
	if q.buckets != nil {
		q.buckets[bucketKey(x)]++
		return
	}
	if len(q.exact) >= SketchExactCap {
		q.collapse()
		q.buckets[bucketKey(x)]++
		return
	}
	i := sort.SearchFloat64s(q.exact, x)
	q.exact = append(q.exact, 0)
	copy(q.exact[i+1:], q.exact[i:])
	q.exact[i] = x
}

// collapse converts exact storage into bucket counts. Bucketing is
// per-value, so collapse-then-add and add-then-collapse produce the same
// counts — the property that keeps Merge associative across the mode
// switch.
func (q *QSketch) collapse() {
	q.buckets = make(map[int]int64, len(q.exact))
	for _, x := range q.exact {
		q.buckets[bucketKey(x)]++
	}
	q.exact = nil
}

// Merge folds another sketch into q. The result stays exact only while
// the combined sample count fits the exact capacity.
func (q *QSketch) Merge(o QSketch) {
	if o.n == 0 {
		return
	}
	if q.n == 0 {
		*q = o.clone()
		return
	}
	if q.buckets == nil && o.buckets == nil && len(q.exact)+len(o.exact) <= SketchExactCap {
		merged := make([]float64, 0, len(q.exact)+len(o.exact))
		i, j := 0, 0
		for i < len(q.exact) && j < len(o.exact) {
			if q.exact[i] <= o.exact[j] {
				merged = append(merged, q.exact[i])
				i++
			} else {
				merged = append(merged, o.exact[j])
				j++
			}
		}
		merged = append(merged, q.exact[i:]...)
		merged = append(merged, o.exact[j:]...)
		q.exact = merged
		q.n += o.n
		return
	}
	if q.buckets == nil {
		q.collapse()
	}
	if o.buckets != nil {
		for k, c := range o.buckets {
			q.buckets[k] += c
		}
	} else {
		for _, x := range o.exact {
			q.buckets[bucketKey(x)]++
		}
	}
	q.n += o.n
}

// Quantile returns the q-th quantile (0 ≤ p ≤ 1): exact (linear
// interpolation between order statistics, matching Quantile) while the
// sketch is exact, a within-bucket interpolation after collapse. It
// panics on an empty sketch or p outside [0, 1].
func (q QSketch) Quantile(p float64) float64 {
	if q.n == 0 {
		panic("stats: Quantile of empty sketch")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", p))
	}
	if q.buckets == nil {
		if len(q.exact) == 1 {
			return q.exact[0]
		}
		pos := p * float64(len(q.exact)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			return q.exact[lo]
		}
		frac := pos - float64(lo)
		return q.exact[lo]*(1-frac) + q.exact[hi]*frac
	}
	keys := make([]int, 0, len(q.buckets))
	for k := range q.buckets {
		keys = append(keys, k)
	}
	// Mirrored negative keys sort below 0 below positive keys, in value
	// order, so an integer sort walks buckets in ascending sample order.
	sort.Ints(keys)
	rank := p * float64(q.n-1)
	var cum int64
	for _, k := range keys {
		cnt := q.buckets[k]
		if rank < float64(cum+cnt) || k == keys[len(keys)-1] {
			lo, hi := bucketBounds(k)
			frac := (rank - float64(cum)) / float64(cnt)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += cnt
	}
	panic("stats: unreachable sketch quantile") // cum covers q.n
}

// bucketKey maps a sample to its log-linear bucket: 0 for 0, positive
// keys for positive values (SketchSubBuckets per octave), mirrored
// negative keys for negative values. Per-value and stateless, which is
// what makes bucket counts a pure function of the sample multiset.
func bucketKey(v float64) int {
	if v == 0 {
		return 0
	}
	neg := v < 0
	if neg {
		v = -v
	}
	frac, exp := math.Frexp(v) // v = frac·2^exp, frac ∈ [0.5, 1)
	sub := int((frac*2 - 1) * SketchSubBuckets)
	if sub >= SketchSubBuckets {
		sub = SketchSubBuckets - 1
	}
	k := (exp+sketchExpBias)*SketchSubBuckets + sub + 1
	if neg {
		return -k
	}
	return k
}

// bucketBounds returns the value interval [lo, hi) bucket k covers.
func bucketBounds(k int) (lo, hi float64) {
	if k == 0 {
		return 0, 0
	}
	neg := k < 0
	if neg {
		k = -k
	}
	idx := k - 1
	exp := idx/SketchSubBuckets - sketchExpBias
	sub := idx % SketchSubBuckets
	lo = math.Ldexp(1+float64(sub)/SketchSubBuckets, exp-1)
	hi = math.Ldexp(1+float64(sub+1)/SketchSubBuckets, exp-1)
	if neg {
		return -hi, -lo
	}
	return lo, hi
}
