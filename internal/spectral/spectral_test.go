package spectral

import (
	"math"
	"testing"

	"popgraph/internal/bounds"
	"popgraph/internal/graph"
	"popgraph/internal/xrand"
)

func TestLambda2Cycle(t *testing.T) {
	// Normalized Laplacian of C_n has eigenvalues 1 − cos(2πk/n);
	// λ₂ = 1 − cos(2π/n).
	for _, n := range []int{8, 16, 32} {
		g := graph.Cycle(n)
		res := Analyze(g, 30000, xrand.New(1))
		want := 1 - math.Cos(2*math.Pi/float64(n))
		if math.Abs(res.Lambda2-want) > 0.05*want+1e-4 {
			t.Errorf("C_%d: λ₂ = %v, want %v", n, res.Lambda2, want)
		}
	}
}

func TestLambda2Clique(t *testing.T) {
	// λ₂(K_n) = n/(n−1).
	g := graph.NewClique(12)
	res := Analyze(g, 4000, xrand.New(2))
	want := 12.0 / 11
	if math.Abs(res.Lambda2-want) > 0.02 {
		t.Errorf("λ₂ = %v, want %v", res.Lambda2, want)
	}
}

func TestCheegerBracketsSweep(t *testing.T) {
	// The sweep conductance must sit within the Cheeger bounds.
	r := xrand.New(3)
	gnp, err := graph.Gnp(60, 0.2, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []graph.Graph{graph.Cycle(24), graph.Hypercube(5), gnp} {
		res := Analyze(g, 0, r)
		// Allow tiny numerical slack on the lower side.
		if res.SweepConductance < res.CheegerLower-1e-3 {
			t.Errorf("%s: sweep ϕ %v below Cheeger lower %v", g.Name(), res.SweepConductance, res.CheegerLower)
		}
		if res.SweepConductance > res.CheegerUpper+1e-3 {
			t.Errorf("%s: sweep ϕ %v above Cheeger upper %v", g.Name(), res.SweepConductance, res.CheegerUpper)
		}
	}
}

func TestSweepFindsCycleCut(t *testing.T) {
	// On C_n the optimal conductance cut is an arc: ϕ = 2/n; the sweep
	// should find it (or near it).
	const n = 32
	g := graph.Cycle(n)
	res := Analyze(g, 30000, xrand.New(5))
	want := 2.0 / n
	if res.SweepConductance > 1.5*want {
		t.Errorf("sweep ϕ = %v, optimal %v", res.SweepConductance, want)
	}
	// Expansion of the arc cut: 2/(n/2) = 4/n.
	if res.SweepExpansion > 1.5*bounds.ExpansionCycle(n) {
		t.Errorf("sweep β = %v, optimal %v", res.SweepExpansion, bounds.ExpansionCycle(n))
	}
}

func TestSweepExpansionUpperBoundsKnown(t *testing.T) {
	// The sweep expansion is an upper bound on β(G); for families with a
	// closed form it must not go below it (up to numerical slack).
	r := xrand.New(7)
	for _, g := range []graph.Graph{graph.Cycle(20), graph.Hypercube(4), graph.NewClique(10)} {
		beta, ok := bounds.KnownExpansion(g)
		if !ok {
			t.Fatalf("%s should have known expansion", g.Name())
		}
		got := EstimateExpansion(g, r)
		if got < beta-1e-6 {
			t.Errorf("%s: sweep expansion %v below true β %v", g.Name(), got, beta)
		}
		if got > 3*beta {
			t.Errorf("%s: sweep expansion %v far above true β %v", g.Name(), got, beta)
		}
	}
}

func TestBarbellLowConductance(t *testing.T) {
	// Two cliques joined by a path: the bridge cut has conductance
	// ≈ 1/k(k−1); the sweep must find something comparably small.
	g := graph.Barbell(8, 2)
	res := Analyze(g, 20000, xrand.New(9))
	if res.SweepConductance > 0.05 {
		t.Errorf("barbell sweep ϕ = %v, expected < 0.05", res.SweepConductance)
	}
}

func TestFiedlerVectorOrthogonality(t *testing.T) {
	g := graph.Cycle(16)
	res := Analyze(g, 10000, xrand.New(11))
	// Fiedler vector must be orthogonal to d^{1/2} and unit norm.
	var d, n2 float64
	for v := 0; v < g.N(); v++ {
		s := math.Sqrt(float64(g.Degree(v)))
		d += res.Fiedler[v] * s
		n2 += res.Fiedler[v] * res.Fiedler[v]
	}
	if math.Abs(d) > 1e-6 {
		t.Errorf("Fiedler not deflated: dot = %v", d)
	}
	if math.Abs(n2-1) > 1e-6 {
		t.Errorf("Fiedler norm² = %v", n2)
	}
}
