// Package spectral estimates expansion quantities via the normalized
// Laplacian: the spectral gap λ₂ gives two-sided Cheeger bounds on the
// conductance ϕ(G) (λ₂/2 <= ϕ <= sqrt(2·λ₂)), and a sweep cut over the
// Fiedler vector produces an explicit cut whose conductance and expansion
// upper-bound ϕ(G) and β(G).
//
// The paper uses β (edge expansion) in the broadcast-time bound of
// Theorem 6 and ϕ = β/Δ (conductance) in the regular-graph corollaries;
// the fast protocol's parameter h depends on log(Δ/β·log n), which this
// package supplies for graphs without a closed-form expansion.
package spectral

import (
	"math"

	"popgraph/internal/graph"
	"popgraph/internal/xrand"
)

// Result holds the spectral analysis of a graph.
type Result struct {
	// Lambda2 is the second-smallest eigenvalue of the normalized
	// Laplacian (the spectral gap).
	Lambda2 float64
	// CheegerLower and CheegerUpper bound the conductance:
	// λ₂/2 <= ϕ(G) <= sqrt(2·λ₂).
	CheegerLower, CheegerUpper float64
	// SweepConductance is the conductance of the best sweep cut (an upper
	// bound on ϕ(G), usually tight in practice).
	SweepConductance float64
	// SweepExpansion is the edge expansion |∂S|/min(|S|,|V\S|) of the best
	// sweep cut by that measure (an upper bound on β(G)).
	SweepExpansion float64
	// Fiedler is the second eigenvector of the normalized Laplacian.
	Fiedler []float64
}

// Analyze runs deflated power iteration for the Fiedler pair and sweeps
// the vector for cuts. iters <= 0 selects a default that suffices for the
// sizes used in the experiments.
func Analyze(g graph.Graph, iters int, r *xrand.Rand) Result {
	n := g.N()
	if iters <= 0 {
		iters = 400 * int(math.Sqrt(float64(n))+1)
	}
	// W = D^{-1/2}·A·D^{-1/2} has top eigenpair (1, d^{1/2}); we iterate
	// the positive-semidefinite half-lazy operator (I + W)/2 (spectrum in
	// [0, 1]) and deflate d^{1/2} to converge to the second eigenvector.
	sqrtDeg := make([]float64, n)
	var norm float64
	for v := 0; v < n; v++ {
		sqrtDeg[v] = math.Sqrt(float64(g.Degree(v)))
		norm += float64(g.Degree(v))
	}
	norm = math.Sqrt(norm)
	top := make([]float64, n)
	for v := 0; v < n; v++ {
		top[v] = sqrtDeg[v] / norm
	}

	x := make([]float64, n)
	for v := range x {
		x[v] = r.Float64() - 0.5
	}
	y := make([]float64, n)
	var mu float64
	for it := 0; it < iters; it++ {
		deflate(x, top)
		normalize(x)
		// y = (x + W·x)/2.
		for v := 0; v < n; v++ {
			var sum float64
			deg := g.Degree(v)
			for i := 0; i < deg; i++ {
				w := g.NeighborAt(v, i)
				sum += x[w] / sqrtDeg[w]
			}
			y[v] = (x[v] + sum/sqrtDeg[v]) / 2
		}
		mu = dot(x, y)
		x, y = y, x
	}
	deflate(x, top)
	normalize(x)
	// (I+W)/2 eigenvalue mu corresponds to W eigenvalue 2mu-1 and
	// Laplacian eigenvalue lambda2 = 1-(2mu-1) = 2(1-mu).
	lambda2 := 2 * (1 - mu)
	if lambda2 < 0 {
		lambda2 = 0
	}
	res := Result{
		Lambda2:      lambda2,
		CheegerLower: lambda2 / 2,
		CheegerUpper: math.Sqrt(2 * lambda2),
		Fiedler:      append([]float64(nil), x...),
	}
	res.SweepConductance, res.SweepExpansion = sweep(g, x, sqrtDeg)
	return res
}

// EstimateExpansion returns an upper bound on β(G) from the sweep cut.
func EstimateExpansion(g graph.Graph, r *xrand.Rand) float64 {
	return Analyze(g, 0, r).SweepExpansion
}

// sweep orders nodes by the normalized Fiedler value x(v)/sqrt(deg v) and
// evaluates every prefix cut, returning the best conductance and the best
// expansion found.
func sweep(g graph.Graph, x, sqrtDeg []float64) (bestCond, bestExp float64) {
	n := g.N()
	order := make([]int, n)
	for v := range order {
		order[v] = v
	}
	val := make([]float64, n)
	for v := 0; v < n; v++ {
		val[v] = x[v] / sqrtDeg[v]
	}
	sortByValue(order, val)
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	// Incremental boundary/volume as the prefix grows node by node.
	inS := make([]bool, n)
	boundary, volS := 0, 0
	totalVol := 2 * g.M()
	bestCond, bestExp = math.Inf(1), math.Inf(1)
	for i := 0; i < n-1; i++ {
		v := order[i]
		inS[v] = true
		deg := g.Degree(v)
		volS += deg
		for j := 0; j < deg; j++ {
			if inS[g.NeighborAt(v, j)] {
				boundary -= 1
			} else {
				boundary++
			}
		}
		sizeS := i + 1
		minVol := volS
		if totalVol-volS < minVol {
			minVol = totalVol - volS
		}
		minSize := sizeS
		if n-sizeS < minSize {
			minSize = n - sizeS
		}
		if minVol > 0 {
			if c := float64(boundary) / float64(minVol); c < bestCond {
				bestCond = c
			}
		}
		if c := float64(boundary) / float64(minSize); c < bestExp {
			bestExp = c
		}
	}
	return bestCond, bestExp
}

func deflate(x, top []float64) {
	d := dot(x, top)
	for i := range x {
		x[i] -= d * top[i]
	}
}

func normalize(x []float64) {
	n := math.Sqrt(dot(x, x))
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// sortByValue sorts order (a permutation of nodes) by ascending val.
func sortByValue(order []int, val []float64) {
	// Heapsort: no allocation, no recursion, fine at these sizes.
	n := len(order)
	less := func(i, j int) bool { return val[order[i]] < val[order[j]] }
	swap := func(i, j int) { order[i], order[j] = order[j], order[i] }
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(i, n, less, swap)
	}
	for i := n - 1; i > 0; i-- {
		swap(0, i)
		siftDown(0, i, less, swap)
	}
}

func siftDown(root, n int, less func(i, j int) bool, swap func(i, j int)) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && less(child, child+1) {
			child++
		}
		if !less(root, child) {
			return
		}
		swap(root, child)
		root = child
	}
}
