package renitent

import (
	"errors"
	"math"
	"testing"

	"popgraph/internal/graph"
	"popgraph/internal/stats"
	"popgraph/internal/xrand"
)

func TestCycleCoverValid(t *testing.T) {
	for _, n := range []int{32, 33, 64, 100} {
		g := graph.Cycle(n)
		c := CycleCover(n)
		if err := c.Validate(g); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		if len(c.Sets) != 4 {
			t.Errorf("n=%d: %d parts", n, len(c.Sets))
		}
	}
}

func TestCycleCoverPanicsTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CycleCover(16)
}

func TestCoverValidateRejectsBadCovers(t *testing.T) {
	g := graph.Cycle(32)
	cases := []struct {
		name string
		c    Cover
	}{
		{"one-part", Cover{Sets: [][]int{{0, 1}}, Radius: 1}},
		{"unequal", Cover{Sets: [][]int{{0, 1}, {2}}, Radius: 1}},
		{"negative-radius", Cover{Sets: [][]int{{0}, {16}}, Radius: -1}},
		{"out-of-range", Cover{Sets: [][]int{{0}, {99}}, Radius: 1}},
		{"not-covering", Cover{Sets: [][]int{{0}, {16}}, Radius: 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.c.Validate(g); !errors.Is(err, ErrBadCover) {
				t.Fatalf("got %v, want ErrBadCover", err)
			}
		})
	}
	// Balls too large: no disjoint pair.
	full := CycleCover(32)
	full.Radius = 16
	if err := full.Validate(g); !errors.Is(err, ErrBadCover) {
		t.Fatalf("oversized radius accepted: %v", err)
	}
}

// TestLemma37CycleIsolation — cycles are Ω(n²)-renitent — the isolation
// time of the cycle cover is at least c·ℓ·m with probability >= 1/2.
func TestLemma37CycleIsolation(t *testing.T) {
	const n = 64
	g := graph.Cycle(n)
	c := CycleCover(n)
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	// Information must cross distance ℓ; each crossing needs ℓ specific
	// edges in order, costing ≈ ℓ·m/2 steps in expectation at the median.
	threshold := float64(c.Radius) * float64(g.M()) / 4
	const trials = 40
	atLeast := 0
	for i := 0; i < trials; i++ {
		y := IsolationTime(g, c, r, 1<<30)
		if float64(y) >= threshold {
			atLeast++
		}
	}
	if frac := float64(atLeast) / trials; frac < 0.5 {
		t.Errorf("Pr[Y >= %v] = %v < 1/2", threshold, frac)
	}
}

func TestIsolationTimeZeroWhenBallTouches(t *testing.T) {
	// Radius so large the complement seeds inside the part immediately is
	// impossible; instead make parts adjacent to the complement: radius 0
	// means the complement of the part itself seeds right next to it, and
	// isolation ends at the first crossing edge, not at step 0.
	g := graph.Cycle(32)
	c := CycleCover(32)
	c.Radius = 0
	y := IsolationTime(g, c, xrand.New(5), 1<<20)
	if y < 1 {
		t.Fatalf("isolation time %d", y)
	}
}

func TestTorusSlabCoverValid(t *testing.T) {
	cases := [][]int{{32}, {32, 4}, {36, 3, 3}}
	for _, dims := range cases {
		g := graph.TorusK(dims...)
		c := TorusSlabCover(dims...)
		if err := c.Validate(g); err != nil {
			t.Errorf("dims %v: %v", dims, err)
		}
	}
}

func TestTorusSlabCoverPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TorusSlabCover(16, 16)
}

// TestTorusRenitence — torus isolation time is Ω(ℓ·m) with constant
// probability (Section 6.2). Crossing the radius-ℓ gap admits many
// parallel edge sequences, so unlike the single-path cycle the union
// bound needs ℓ >~ ln(#paths); we use an elongated torus (few parallel
// columns) and the weaker constant ℓm/16 that the Lemma 5 tail plus the
// path-count union bound supports at this size.
func TestTorusRenitence(t *testing.T) {
	dims := []int{96, 4}
	g := graph.TorusK(dims...)
	c := TorusSlabCover(dims...)
	if err := c.Validate(g); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(21)
	threshold := float64(c.Radius) * float64(g.M()) / 16
	const trials = 30
	atLeast := 0
	for i := 0; i < trials; i++ {
		if float64(IsolationTime(g, c, r, 1<<32)) >= threshold {
			atLeast++
		}
	}
	if frac := float64(atLeast) / trials; frac < 0.5 {
		t.Errorf("Pr[Y >= lm/16] = %v < 1/2", frac)
	}
}

// TestTorusRenitenceScaling — doubling the long dimension (at fixed column
// count) quadruples ℓ·m and should roughly quadruple the isolation time.
func TestTorusRenitenceScaling(t *testing.T) {
	r := xrand.New(25)
	means := make([]float64, 2)
	for i, d0 := range []int{48, 96} {
		g := graph.TorusK(d0, 4)
		c := TorusSlabCover(d0, 4)
		const trials = 20
		xs := make([]float64, trials)
		for j := range xs {
			xs[j] = float64(IsolationTime(g, c, r, 1<<34))
		}
		means[i] = stats.Mean(xs)
	}
	ratio := means[1] / means[0]
	if ratio < 2.4 {
		t.Errorf("doubling d0 scaled isolation time only %vx, want ~4x", ratio)
	}
}

func TestFourCopiesStructure(t *testing.T) {
	h := graph.Path(5) // template: 5 nodes, 4 edges
	g, cover, err := FourCopies(h, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// n = 4·5 + 4·(2·3−1) = 40; m = 4·4 + 4·2·3 = 40.
	if g.N() != 40 || g.M() != 40 {
		t.Fatalf("n=%d m=%d, want 40/40", g.N(), g.M())
	}
	if err := cover.Validate(g); err != nil {
		t.Fatal(err)
	}
	if len(cover.Sets) != 4 || cover.Radius != 3 {
		t.Fatalf("cover %d parts radius %d", len(cover.Sets), cover.Radius)
	}
	// Every part has the template size plus the path interior.
	if len(cover.Sets[0]) != 5+5 {
		t.Fatalf("part size %d", len(cover.Sets[0]))
	}
}

func TestFourCopiesValidation(t *testing.T) {
	h := graph.Path(4)
	if _, _, err := FourCopies(h, 9, 2); err == nil {
		t.Fatal("bad hub accepted")
	}
	if _, _, err := FourCopies(h, 0, 0); err == nil {
		t.Fatal("zero ell accepted")
	}
}

// TestLemma38Renitence — the four-copies graph has isolation time Ω(ℓm)
// with probability >= 1/2 and broadcast time Ω(ℓm).
func TestLemma38Renitence(t *testing.T) {
	g, cover, err := FourCopies(cliqueDense(6), 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := cover.Validate(g); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(7)
	threshold := float64(cover.Radius) * float64(g.M()) / 4
	const trials = 30
	atLeast := 0
	for i := 0; i < trials; i++ {
		if float64(IsolationTime(g, cover, r, 1<<30)) >= threshold {
			atLeast++
		}
	}
	if frac := float64(atLeast) / trials; frac < 0.5 {
		t.Errorf("Pr[Y >= ℓm/4] = %v < 1/2", frac)
	}
}

func TestTheorem39GraphRegimes(t *testing.T) {
	r := xrand.New(9)
	const n = 24
	nf := float64(n)
	logn := math.Log2(nf)
	cases := []struct {
		name   string
		target float64
	}{
		{"sparse-nlogn", nf * logn * 2},
		{"mid-n2", nf * nf},
		{"dense-n3", nf * nf * nf / 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, cover, err := Theorem39Graph(n, c.target, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := cover.Validate(g); err != nil {
				t.Fatal(err)
			}
			if g.N() < 4*n {
				t.Fatalf("graph too small: %d", g.N())
			}
		})
	}
	if _, _, err := Theorem39Graph(n, 1, r); err == nil {
		t.Fatal("target below n log n accepted")
	}
	if _, _, err := Theorem39Graph(n, nf*nf*nf*nf, r); err == nil {
		t.Fatal("target above n^3 accepted")
	}
}

// TestTheorem39BroadcastScales — on the Theorem 39 graph the measured
// broadcast time scales like the target Θ(T): doubling T roughly doubles
// the measured isolation/broadcast time.
func TestTheorem39BroadcastScales(t *testing.T) {
	r := xrand.New(11)
	const n = 16
	nf := float64(n)
	targets := []float64{nf * nf, 4 * nf * nf}
	times := make([]float64, len(targets))
	for i, target := range targets {
		g, cover, err := Theorem39Graph(n, target, r)
		if err != nil {
			t.Fatal(err)
		}
		const trials = 12
		xs := make([]float64, trials)
		for j := range xs {
			xs[j] = float64(IsolationTime(g, cover, r, 1<<32))
		}
		times[i] = stats.Mean(xs)
	}
	ratio := times[1] / times[0]
	if ratio < 1.8 {
		t.Errorf("4x target produced only %vx isolation time", ratio)
	}
}

func TestStarPlusEdgesCapsExtra(t *testing.T) {
	g := starPlusEdges(6, 10000, xrand.New(13))
	maxM := 5 + (5*4/2 - 1)
	if g.M() > maxM {
		t.Fatalf("m = %d exceeds cap %d", g.M(), maxM)
	}
	if graph.MaxDegree(g) != 5 {
		t.Fatal("center must stay max degree")
	}
}
