// Package renitent implements the lower-bound constructions of Section 6:
// (K, ℓ)-isolating covers, their isolation time Y(C), the four-copies-
// plus-paths construction of Lemma 38 (which is Ω(ℓm)-renitent and has
// B(G′) ∈ Θ(ℓm)), the cycle cover of Lemma 37, and the Theorem 39 builder
// that realizes any target complexity T between n·log n and n³.
//
// A graph with an f(n)-isolating cover forces every stable leader
// election protocol to take Ω(f(n)) expected steps (Theorem 34): until
// information crosses distance ℓ, the cover's parts evolve i.i.d. up to
// isomorphism and cannot agree on a single leader.
package renitent

import (
	"errors"
	"fmt"
	"math"

	"popgraph/internal/graph"
	"popgraph/internal/xrand"
)

// Cover is a (K, ℓ)-cover: node sets V_0..V_{K-1} with pairwise isomorphic
// radius-ℓ neighbourhoods, at least one pair of disjoint radius-ℓ balls,
// and union covering all of V. Constructors in this package build covers
// whose isomorphism property holds by symmetry of the construction;
// Validate checks the checkable parts (sizes, coverage, disjointness).
type Cover struct {
	Sets   [][]int
	Radius int
}

// ErrBadCover is the sentinel wrapped by every Validate failure.
var ErrBadCover = errors.New("renitent: invalid cover")

// Validate checks the structural requirements of a (K, ℓ)-cover on g:
// at least two parts, equal part sizes, full coverage, and some pair of
// radius-ℓ balls disjoint. (Isomorphism of the neighbourhoods is
// guaranteed by the symmetric constructions and not re-verified.)
func (c Cover) Validate(g graph.Graph) error {
	if len(c.Sets) < 2 {
		return fmt.Errorf("%w: need >= 2 parts, got %d", ErrBadCover, len(c.Sets))
	}
	if c.Radius < 0 {
		return fmt.Errorf("%w: negative radius", ErrBadCover)
	}
	size := len(c.Sets[0])
	covered := make([]bool, g.N())
	for i, set := range c.Sets {
		if len(set) != size {
			return fmt.Errorf("%w: part %d has size %d, part 0 has %d", ErrBadCover, i, len(set), size)
		}
		for _, v := range set {
			if v < 0 || v >= g.N() {
				return fmt.Errorf("%w: node %d out of range", ErrBadCover, v)
			}
			covered[v] = true
		}
	}
	for v, ok := range covered {
		if !ok {
			return fmt.Errorf("%w: node %d not covered", ErrBadCover, v)
		}
	}
	// Some pair of radius-ℓ balls must be disjoint.
	balls := make([][]bool, len(c.Sets))
	for i, set := range c.Sets {
		balls[i] = graph.Ball(g, set, c.Radius)
	}
	for i := 0; i < len(balls); i++ {
	next:
		for j := i + 1; j < len(balls); j++ {
			for v := range balls[i] {
				if balls[i][v] && balls[j][v] {
					continue next
				}
			}
			return nil // found a disjoint pair
		}
	}
	return fmt.Errorf("%w: no pair of radius-%d balls is disjoint", ErrBadCover, c.Radius)
}

// IsolationTime measures Y(C) on one sampled schedule: the first step at
// which some part V_i is influenced by a node outside its radius-ℓ ball
// B_ℓ(V_i), capped at maxSteps (returns maxSteps if isolation survives).
//
// Equivalently (and efficiently): for each part, run the influence
// epidemic seeded by V \ B_ℓ(V_i) on the shared schedule and report the
// first step at which it touches V_i.
func IsolationTime(g graph.Graph, c Cover, r *xrand.Rand, maxSteps int64) int64 {
	n := g.N()
	k := len(c.Sets)
	informed := make([][]bool, k)
	inPart := make([][]bool, k)
	for i, set := range c.Sets {
		ball := graph.Ball(g, set, c.Radius)
		informed[i] = make([]bool, n)
		for v := 0; v < n; v++ {
			informed[i][v] = !ball[v] // seeded with the complement of the ball
		}
		inPart[i] = make([]bool, n)
		for _, v := range set {
			if informed[i][v] {
				return 0 // part already touched (radius too small)
			}
			inPart[i][v] = true
		}
	}
	for t := int64(1); t <= maxSteps; t++ {
		u, v := g.SampleEdge(r)
		for i := 0; i < k; i++ {
			inf := informed[i]
			if inf[u] == inf[v] {
				continue
			}
			inf[u] = true
			inf[v] = true
			if inPart[i][u] || inPart[i][v] {
				return t
			}
		}
	}
	return maxSteps
}

// CycleCover returns the Lemma 37-style cover of C_n: four contiguous
// arcs, with radius ℓ = ⌊n/16⌋ so that opposite arcs have disjoint
// radius-ℓ balls. Since isolation requires the scheduler to drive
// information across distance ℓ on a constant fraction of the cycle,
// Y(C) = Ω(ℓ·m) = Ω(n²) with constant probability: cycles are
// Ω(n²)-renitent. Requires n >= 32.
func CycleCover(n int) Cover {
	if n < 32 {
		panic(fmt.Sprintf("renitent: CycleCover needs n >= 32, got %d", n))
	}
	// Four equal-size arcs starting at the quarter points; ceiling size
	// makes the arcs overlap slightly so they cover all of [0, n).
	sets := make([][]int, 4)
	size := (n + 3) / 4
	for i := 0; i < 4; i++ {
		start := i * n / 4
		sets[i] = make([]int, 0, size)
		for j := 0; j < size; j++ {
			sets[i] = append(sets[i], (start+j)%n)
		}
	}
	return Cover{Sets: sets, Radius: n / 16}
}

// TorusSlabCover returns a (4, ℓ)-cover of the k-dimensional torus with
// the given side lengths (node indexing as in graph.TorusK): four slabs
// along dimension 0, radius ℓ = ⌊dims[0]/16⌋. Section 6.2 observes that
// k-dimensional toroidal grids are Ω(n^{1+1/k})-renitent via exactly this
// kind of partition: information must cross distance Θ(dims[0]) along the
// first dimension, which takes Ω(ℓ·m) steps with constant probability.
// Requires dims[0] >= 32 (so the radius is positive and opposite slabs'
// balls are disjoint).
func TorusSlabCover(dims ...int) Cover {
	if len(dims) == 0 || dims[0] < 32 {
		panic(fmt.Sprintf("renitent: TorusSlabCover needs dims[0] >= 32, got %v", dims))
	}
	rest := 1
	for _, d := range dims[1:] {
		rest *= d
	}
	d0 := dims[0]
	slabWidth := (d0 + 3) / 4
	sets := make([][]int, 4)
	for i := 0; i < 4; i++ {
		start := i * d0 / 4
		sets[i] = make([]int, 0, slabWidth*rest)
		for j := 0; j < slabWidth; j++ {
			x0 := (start + j) % d0
			for tail := 0; tail < rest; tail++ {
				sets[i] = append(sets[i], x0*rest+tail)
			}
		}
	}
	return Cover{Sets: sets, Radius: d0 / 16}
}

// FourCopies implements the Lemma 38 construction: four disjoint copies
// G_0..G_3 of the template H, with copy i's hub node connected to copy
// (i+1) mod 4's hub by a fresh path of length 2ℓ (2ℓ−1 interior nodes).
// The returned cover has parts V_i = V(G_i) ∪ V(P_i) and radius ℓ.
//
// The result has Θ(|V(H)|) + Θ(ℓ) nodes, Θ(|E(H)|) + Θ(ℓ) edges, diameter
// Θ(ℓ + D(H)), is Ω(ℓm)-renitent, and B(G′) ∈ Ω(ℓm).
func FourCopies(h *graph.Dense, hub, ell int) (*graph.Dense, Cover, error) {
	if hub < 0 || hub >= h.N() {
		return nil, Cover{}, fmt.Errorf("renitent: hub %d out of range: %w", hub, graph.ErrInvalidEdge)
	}
	if ell < 1 {
		return nil, Cover{}, fmt.Errorf("renitent: path half-length %d < 1: %w", ell, graph.ErrInvalidEdge)
	}
	nh := h.N()
	pathInterior := 2*ell - 1 // nodes strictly between the two hubs
	n := 4*nh + 4*pathInterior
	edges := make([]graph.Edge, 0, 4*h.M()+8*ell)
	// Copies occupy [i·nh, (i+1)·nh); path i's interior nodes start at
	// 4·nh + i·pathInterior.
	for i := 0; i < 4; i++ {
		base := i * nh
		h.ForEachEdge(func(u, w int) {
			edges = append(edges, graph.Edge{U: int32(base + u), W: int32(base + w)})
		})
	}
	for i := 0; i < 4; i++ {
		from := i*nh + hub
		to := ((i+1)%4)*nh + hub
		prev := from
		for j := 0; j < pathInterior; j++ {
			node := 4*nh + i*pathInterior + j
			edges = append(edges, graph.Edge{U: int32(prev), W: int32(node)})
			prev = node
		}
		edges = append(edges, graph.Edge{U: int32(prev), W: int32(to)})
	}
	g, err := graph.NewDense(n, edges, fmt.Sprintf("fourcopies-%s-l%d", h.Name(), ell))
	if err != nil {
		return nil, Cover{}, fmt.Errorf("renitent: building four-copies graph: %w", err)
	}
	cover := Cover{Radius: ell, Sets: make([][]int, 4)}
	for i := 0; i < 4; i++ {
		set := make([]int, 0, nh+pathInterior)
		for v := 0; v < nh; v++ {
			set = append(set, i*nh+v)
		}
		for j := 0; j < pathInterior; j++ {
			set = append(set, 4*nh+i*pathInterior+j)
		}
		cover.Sets[i] = set
	}
	return g, cover, nil
}

// Theorem39Graph builds an n-node-scale graph on which both broadcast and
// stable leader election take Θ(T(n)) expected steps, for any target
// T with n·log n <= T <= n³ (Theorem 39). Following the proof: for
// T ∈ ω(n²·log n) the template is a clique with ℓ = ⌈T/n²⌉; otherwise the
// template is a star plus Θ(T/ℓ) extra edges with
// ℓ = ⌈log n + T/(n·log n)⌉.
func Theorem39Graph(n int, target float64, r *xrand.Rand) (*graph.Dense, Cover, error) {
	if n < 8 {
		return nil, Cover{}, fmt.Errorf("renitent: n = %d too small: %w", n, graph.ErrInvalidEdge)
	}
	nf := float64(n)
	logn := math.Log2(nf)
	if target < nf*logn || target > nf*nf*nf {
		return nil, Cover{}, fmt.Errorf("renitent: target %g outside [n log n, n³]: %w",
			target, graph.ErrInvalidEdge)
	}
	var h *graph.Dense
	var ell int
	if target > nf*nf*logn {
		// Dense regime: clique template, long paths.
		ell = int(math.Ceil(target / (nf * nf)))
		h = cliqueDense(n)
	} else {
		// Sparse regime: star plus extra edges.
		ell = int(math.Ceil(logn + target/(nf*logn)))
		extra := int(target / float64(ell))
		h = starPlusEdges(n, extra, r)
	}
	return fourCopiesChecked(h, ell)
}

func fourCopiesChecked(h *graph.Dense, ell int) (*graph.Dense, Cover, error) {
	g, cover, err := FourCopies(h, 0, ell)
	if err != nil {
		return nil, Cover{}, err
	}
	if err := cover.Validate(g); err != nil {
		return nil, Cover{}, err
	}
	return g, cover, nil
}

// cliqueDense materializes K_n as a Dense graph (templates must be Dense
// so FourCopies can copy their edges).
func cliqueDense(n int) *graph.Dense {
	edges := make([]graph.Edge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for w := u + 1; w < n; w++ {
			edges = append(edges, graph.Edge{U: int32(u), W: int32(w)})
		}
	}
	g, err := graph.NewDense(n, edges, fmt.Sprintf("kdense-%d", n))
	if err != nil {
		panic(err) // construction cannot fail
	}
	return g
}

// starPlusEdges returns a star on n nodes with `extra` additional random
// leaf-to-leaf edges (the Theorem 39 sparse-regime template).
func starPlusEdges(n, extra int, r *xrand.Rand) *graph.Dense {
	maxExtra := (n-1)*(n-2)/2 - 1
	if extra > maxExtra {
		extra = maxExtra
	}
	seen := make(map[[2]int32]bool, extra)
	edges := make([]graph.Edge, 0, n-1+extra)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, W: int32(v)})
	}
	for len(seen) < extra {
		u := int32(1 + r.Intn(n-1))
		w := int32(1 + r.Intn(n-1))
		if u == w {
			continue
		}
		if u > w {
			u, w = w, u
		}
		key := [2]int32{u, w}
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, graph.Edge{U: u, W: w})
	}
	g, err := graph.NewDense(n, edges, fmt.Sprintf("starplus-%d-%d", n, extra))
	if err != nil {
		panic(err) // star is connected; cannot fail
	}
	return g
}
