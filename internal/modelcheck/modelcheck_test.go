package modelcheck

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"popgraph/internal/core"
	"popgraph/internal/graph"
)

// tokenMachine wraps the six-state token machine of core as a Machine.
// State encoding: the core.TokenState byte values (0..5).
func tokenMachine() Machine {
	return Machine{
		Name:   "six-state-token",
		States: 6,
		Step: func(a, b byte) (byte, byte) {
			na, nb := core.TokenTransition(core.TokenState(a), core.TokenState(b))
			return byte(na), byte(nb)
		},
		Output: func(s byte) byte {
			if core.TokenState(s).Candidate() {
				return 1
			}
			return 0
		},
		StablePredicate: func(counts []int) bool {
			var c core.TokenCounts
			for s, k := range counts {
				for i := 0; i < k; i++ {
					c.Add(core.TokenState(s), 1)
				}
			}
			return c.Stable()
		},
		Correct: func(outputs []byte) bool {
			leaders := 0
			for _, o := range outputs {
				if o == 1 {
					leaders++
				}
			}
			return leaders == 1
		},
	}
}

func tokenInvariant(cfg []byte) error {
	var c core.TokenCounts
	for _, s := range cfg {
		c.Add(core.TokenState(s), 1)
	}
	if c.Candidates != c.Black+c.White {
		return fmt.Errorf("candidates %d != black %d + white %d", c.Candidates, c.Black, c.White)
	}
	if c.Black < 1 {
		return fmt.Errorf("no black token left")
	}
	return nil
}

// TestTokenMachineExhaustive model-checks the six-state protocol over
// every schedule on small graphs: the counter-based stability predicate
// coincides exactly with true stability, every stable configuration has
// one leader, every reachable configuration can still stabilize, and the
// invariants hold everywhere.
func TestTokenMachineExhaustive(t *testing.T) {
	graphs := []graph.Graph{
		graph.Path(2),
		graph.Path(3),
		graph.Cycle(3),
		graph.Star(4),
		graph.Path(4),
		graph.Cycle(4),
		graph.NewClique(4),
	}
	for _, g := range graphs {
		t.Run(g.Name(), func(t *testing.T) {
			initial := make([]byte, g.N())
			for i := range initial {
				initial[i] = byte(core.CandidateBlack)
			}
			res, err := Check(g, tokenMachine(), initial, tokenInvariant)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stable == 0 {
				t.Fatal("no stable configuration reachable")
			}
			t.Logf("%s: %d reachable, %d stable", g.Name(), res.Reachable, res.Stable)
		})
	}
}

// TestTokenMachineSubsetCandidates checks the Theorem 16 input variant:
// only a subset of nodes start as candidates.
func TestTokenMachineSubsetCandidates(t *testing.T) {
	g := graph.Path(4)
	initial := make([]byte, 4) // FollowerNone
	initial[1] = byte(core.CandidateBlack)
	initial[3] = byte(core.CandidateBlack)
	if _, err := Check(g, tokenMachine(), initial, tokenInvariant); err != nil {
		t.Fatal(err)
	}
}

// majorityMachine wraps the four-state majority machine. State encoding:
// 0=weak0, 1=weak1, 2=strong0, 3=strong1 (matching the package's rules,
// re-implemented here from its public contract: annihilate, walk+convert).
func majorityMachine() Machine {
	const (
		w0, w1, s0, s1 = 0, 1, 2, 3
	)
	step := func(a, b byte) (byte, byte) {
		switch {
		case a == s0 && b == s1:
			return w0, w1
		case a == s1 && b == s0:
			return w1, w0
		case a == s0 && (b == w0 || b == w1):
			return w0, s0
		case a == s1 && (b == w0 || b == w1):
			return w1, s1
		case b == s0 && (a == w0 || a == w1):
			return s0, w0
		case b == s1 && (a == w0 || a == w1):
			return s1, w1
		default:
			return a, b
		}
	}
	return Machine{
		Name:   "four-state-majority",
		States: 4,
		Step:   step,
		Output: func(s byte) byte {
			if s == w1 || s == s1 {
				return 1
			}
			return 0
		},
		StablePredicate: func(counts []int) bool {
			zeros := counts[w0] + counts[s0]
			ones := counts[w1] + counts[s1]
			return (zeros == 0 && counts[s1] > 0) || (ones == 0 && counts[s0] > 0)
		},
		Correct: func(outputs []byte) bool {
			// All outputs agree (the winning value is checked by the
			// invariant below via the conserved strong difference).
			for _, o := range outputs {
				if o != outputs[0] {
					return false
				}
			}
			return true
		},
	}
}

// TestMajorityMachineExhaustive — the strong difference is conserved on
// every reachable configuration, the stability predicate is exact, and
// all stable configurations are unanimous for the initial majority.
func TestMajorityMachineExhaustive(t *testing.T) {
	const (
		w0, w1, s0, s1 = 0, 1, 2, 3
	)
	graphs := []graph.Graph{graph.Path(3), graph.Cycle(5), graph.Star(5), graph.Path(5)}
	for _, g := range graphs {
		t.Run(g.Name(), func(t *testing.T) {
			n := g.N()
			ones := n/2 + 1
			initial := make([]byte, n)
			for i := 0; i < n; i++ {
				if i < ones {
					initial[i] = s1
				} else {
					initial[i] = s0
				}
			}
			wantDiff := ones - (n - ones)
			invariant := func(cfg []byte) error {
				diff := 0
				for _, s := range cfg {
					switch s {
					case s1:
						diff++
					case s0:
						diff--
					}
				}
				if diff != wantDiff {
					return fmt.Errorf("strong difference %d, want %d", diff, wantDiff)
				}
				return nil
			}
			res, err := Check(g, majorityMachine(), initial, invariant)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stable == 0 {
				t.Fatal("no stable configuration reachable")
			}
			_ = w0
			_ = w1
		})
	}
}

func TestCheckRejectsBadInput(t *testing.T) {
	g := graph.Path(3)
	if _, err := Check(g, tokenMachine(), make([]byte, 2), nil); err == nil {
		t.Fatal("wrong initial length accepted")
	}
	big := graph.Cycle(16)
	if _, err := Check(big, tokenMachine(), make([]byte, 16), nil); err == nil {
		t.Fatal("oversized configuration space accepted")
	}
}

// TestCheckDetectsBrokenPredicate — a machine whose stability predicate
// lies must be caught.
func TestCheckDetectsBrokenPredicate(t *testing.T) {
	m := tokenMachine()
	m.StablePredicate = func([]int) bool { return true } // always "stable"
	g := graph.Path(2)
	initial := []byte{byte(core.CandidateBlack), byte(core.CandidateBlack)}
	if _, err := Check(g, m, initial, nil); err == nil {
		t.Fatal("broken predicate not detected")
	}
}

// TestCheckPropagatesInvariantError — an invariant violation anywhere
// in the reachable space must abort the check, wrapped with enough
// context to name the machine.
func TestCheckPropagatesInvariantError(t *testing.T) {
	g := graph.Path(2)
	initial := []byte{byte(core.CandidateBlack), byte(core.CandidateBlack)}
	sentinel := errors.New("boom")
	calls := 0
	invariant := func(cfg []byte) error {
		calls++
		if calls > 1 {
			return sentinel
		}
		return nil
	}
	_, err := Check(g, tokenMachine(), initial, invariant)
	if !errors.Is(err, sentinel) {
		t.Fatalf("invariant error not propagated: %v", err)
	}
	if !strings.Contains(err.Error(), "six-state-token") || !strings.Contains(err.Error(), "invariant") {
		t.Fatalf("error %q lacks machine name or invariant context", err)
	}
}

// TestCheckDetectsStableButIncorrect — a machine that stabilizes on a
// wrong answer must fail the correctness clause, not pass as stable.
func TestCheckDetectsStableButIncorrect(t *testing.T) {
	// The identity machine: every configuration is trivially stable (its
	// forward closure is itself), the predicate agrees, and Correct
	// rejects everything.
	m := Machine{
		Name:            "frozen",
		States:          2,
		Step:            func(a, b byte) (byte, byte) { return a, b },
		Output:          func(s byte) byte { return s },
		StablePredicate: func([]int) bool { return true },
		Correct:         func([]byte) bool { return false },
	}
	g := graph.Path(2)
	_, err := Check(g, m, []byte{0, 1}, nil)
	if err == nil || !strings.Contains(err.Error(), "stable but incorrect") {
		t.Fatalf("stable-but-incorrect not detected: %v", err)
	}
}

// TestCheckDetectsLivelock — a machine that can wander away from
// stabilization forever must be caught by the liveness check.
func TestCheckDetectsLivelock(t *testing.T) {
	// Two states flipping forever; outputs differ, nothing is stable.
	m := Machine{
		Name:            "flipper",
		States:          2,
		Step:            func(a, b byte) (byte, byte) { return 1 - a, 1 - b },
		Output:          func(s byte) byte { return s },
		StablePredicate: func([]int) bool { return false },
		Correct:         func([]byte) bool { return false },
	}
	g := graph.Path(2)
	if _, err := Check(g, m, []byte{0, 1}, nil); err == nil {
		t.Fatal("livelock not detected")
	}
}
