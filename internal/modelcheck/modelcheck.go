// Package modelcheck exhaustively verifies the pure interaction machines
// (the six-state token machine of core and the four-state majority
// machine) over ALL interaction schedules on small graphs, by breadth-
// first search of the full configuration space.
//
// This checks the universally-quantified part of the paper's definitions
// that randomized simulation cannot: a configuration is *stable* iff
// every reachable configuration has the same outputs (§2.2), and the
// protocol is correct iff from every reachable configuration some stable
// correct configuration remains reachable (which, with finite
// configuration spaces and the stochastic scheduler's fairness, implies
// almost-sure stabilization).
package modelcheck

import (
	"fmt"

	"popgraph/internal/graph"
)

// Machine is a pure pairwise transition function over byte-encoded node
// states, with a per-node output and a candidate stability predicate on
// global state counts.
type Machine struct {
	// Name identifies the machine in error messages.
	Name string
	// States is the number of distinct node states (encoded 0..States-1).
	States int
	// Step maps (initiator, responder) states to successor states.
	Step func(a, b byte) (byte, byte)
	// Output maps a node state to an output symbol (e.g. leader=1).
	Output func(s byte) byte
	// StablePredicate is the protocol's claimed O(1) stability test,
	// evaluated on the state histogram; Check verifies it EXACTLY
	// coincides with true stability (no reachable output change).
	StablePredicate func(counts []int) bool
	// Correct reports whether an output vector is a correct final answer
	// (e.g. exactly one leader).
	Correct func(outputs []byte) bool
}

// Result summarizes an exhaustive check.
type Result struct {
	// Reachable is the number of reachable configurations.
	Reachable int
	// Stable is the number of reachable truly-stable configurations.
	Stable int
}

// Check explores every configuration reachable from initial on g and
// verifies:
//
//  1. soundness of the stability predicate: predicate-true ⇔ no
//     configuration with different outputs is reachable;
//  2. correctness: every truly stable reachable configuration satisfies
//     Correct;
//  3. liveness: from every reachable configuration, some stable
//     configuration is reachable.
//
// It also calls invariant (if non-nil) on every reachable configuration.
// Configuration spaces grow as States^n: keep n·log(States) small.
func Check(g graph.Graph, m Machine, initial []byte, invariant func(cfg []byte) error) (Result, error) {
	n := g.N()
	if len(initial) != n {
		return Result{}, fmt.Errorf("modelcheck: initial has %d states for %d nodes", len(initial), n)
	}
	space := 1
	for i := 0; i < n; i++ {
		if space > 1<<22/m.States {
			return Result{}, fmt.Errorf("modelcheck: %s: configuration space too large", m.Name)
		}
		space *= m.States
	}

	encode := func(cfg []byte) int {
		code := 0
		for _, s := range cfg {
			code = code*m.States + int(s)
		}
		return code
	}
	decode := func(code int, cfg []byte) {
		for i := n - 1; i >= 0; i-- {
			cfg[i] = byte(code % m.States)
			code /= m.States
		}
	}

	// Ordered adjacent pairs.
	var pairs [][2]int
	g.ForEachEdge(func(u, w int) {
		pairs = append(pairs, [2]int{u, w}, [2]int{w, u})
	})

	// BFS over reachable configurations.
	seen := make(map[int]bool)
	var order []int // reachable configs in discovery order
	succs := make(map[int][]int)
	start := encode(initial)
	seen[start] = true
	queue := []int{start}
	cfg := make([]byte, n)
	next := make([]byte, n)
	for len(queue) > 0 {
		code := queue[0]
		queue = queue[1:]
		order = append(order, code)
		decode(code, cfg)
		if invariant != nil {
			if err := invariant(append([]byte(nil), cfg...)); err != nil {
				return Result{}, fmt.Errorf("modelcheck: %s: invariant: %w", m.Name, err)
			}
		}
		for _, p := range pairs {
			copy(next, cfg)
			a, b := m.Step(cfg[p[0]], cfg[p[1]])
			next[p[0]], next[p[1]] = a, b
			nc := encode(next)
			succs[code] = append(succs[code], nc)
			if !seen[nc] {
				seen[nc] = true
				queue = append(queue, nc)
			}
		}
	}

	outputsOf := func(code int) string {
		decode(code, cfg)
		out := make([]byte, n)
		for i, s := range cfg {
			out[i] = m.Output(s)
		}
		return string(out)
	}
	countsOf := func(code int) []int {
		decode(code, cfg)
		counts := make([]int, m.States)
		for _, s := range cfg {
			counts[s]++
		}
		return counts
	}

	// Truly stable := every configuration reachable from it has the same
	// outputs. Computed by a forward closure per configuration (the
	// spaces here are small).
	trulyStable := make(map[int]bool, len(order))
	for _, code := range order {
		want := outputsOf(code)
		ok := true
		local := map[int]bool{code: true}
		stack := []int{code}
		for len(stack) > 0 && ok {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if outputsOf(c) != want {
				ok = false
				break
			}
			for _, nc := range succs[c] {
				if !local[nc] {
					local[nc] = true
					stack = append(stack, nc)
				}
			}
		}
		trulyStable[code] = ok
	}

	res := Result{Reachable: len(order)}
	for _, code := range order {
		pred := m.StablePredicate(countsOf(code))
		truly := trulyStable[code]
		if pred != truly {
			return res, fmt.Errorf("modelcheck: %s: stability predicate %v but truly stable %v at config %v",
				m.Name, pred, truly, decodeCopy(decode, code, n))
		}
		if truly {
			res.Stable++
			decode(code, cfg)
			out := make([]byte, n)
			for i, s := range cfg {
				out[i] = m.Output(s)
			}
			if !m.Correct(out) {
				return res, fmt.Errorf("modelcheck: %s: stable but incorrect config %v",
					m.Name, decodeCopy(decode, code, n))
			}
		}
	}

	// Liveness: every reachable configuration can reach a stable one.
	// Backward closure from the stable set.
	preds := make(map[int][]int, len(order))
	for _, code := range order {
		for _, nc := range succs[code] {
			preds[nc] = append(preds[nc], code)
		}
	}
	canStabilize := make(map[int]bool, len(order))
	var stack []int
	for _, code := range order {
		if trulyStable[code] {
			canStabilize[code] = true
			stack = append(stack, code)
		}
	}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range preds[c] {
			if !canStabilize[p] {
				canStabilize[p] = true
				stack = append(stack, p)
			}
		}
	}
	for _, code := range order {
		if !canStabilize[code] {
			return res, fmt.Errorf("modelcheck: %s: config %v cannot reach any stable configuration",
				m.Name, decodeCopy(decode, code, n))
		}
	}
	return res, nil
}

func decodeCopy(decode func(int, []byte), code, n int) []byte {
	cfg := make([]byte, n)
	decode(code, cfg)
	return cfg
}
