package modelcheck

// Exhaustive check of the fast protocol's stability argument (the
// subtlest in the library: fast-phase demotions, the level cap, the
// backup handoff and the claim Stable ⇔ one leader output). The machine
// below re-implements the fastelect rules as a pure function in the
// smallest parameterization H=1, L=1, AlphaL=2:
//
//   - H=1 means every initiator interaction completes a streak, so the
//     streak counter carries no state;
//   - fast-phase node state is (status, level ∈ {0,1}) — level 2 switches
//     to the backup within the same interaction;
//   - backup node state is one of the six token-machine states with the
//     level pinned at the cap.
//
// Encoding: 0..3 = fast (status*2+level, status 1=leader), 4..9 = backup
// (4+tokenState).

import (
	"fmt"
	"testing"

	"popgraph/internal/core"
	"popgraph/internal/graph"
)

const (
	felL      = 1
	felAlphaL = 2
)

type felState struct {
	backup bool
	leader bool // fast-phase status; meaningless in backup
	level  int  // 0..2; always 2 in backup
	tok    core.TokenState
}

func felDecode(s byte) felState {
	if s >= 4 {
		return felState{backup: true, level: felAlphaL, tok: core.TokenState(s - 4)}
	}
	return felState{leader: s&2 != 0, level: int(s & 1)}
}

func felEncode(s felState) byte {
	if s.backup {
		return 4 + byte(s.tok)
	}
	code := byte(s.level)
	if s.leader {
		code |= 2
	}
	return code
}

// felStep mirrors fastelect.Protocol.Step rule for rule.
func felStep(a, b byte) (byte, byte) {
	u, v := felDecode(a), felDecode(b)
	// Rule 1: initiator (H=1: always completes) gains a level if a
	// fast-phase leader below the cap.
	if !u.backup && u.leader && u.level < felAlphaL {
		u.level++
	}
	// Rules 2+3.
	if u.level != v.level {
		maxLvl := u.level
		lo := &v
		if v.level > u.level {
			maxLvl = v.level
			lo = &u
		}
		if maxLvl >= felL {
			if !lo.backup && lo.leader {
				lo.leader = false
			}
			if !u.backup {
				u.level = maxLvl
			}
			if !v.backup {
				v.level = maxLvl
			}
		}
	}
	// Backup entry at the cap.
	enter := func(x *felState) {
		if x.level == felAlphaL && !x.backup {
			x.backup = true
			if x.leader {
				x.tok = core.CandidateBlack
			} else {
				x.tok = core.FollowerNone
			}
		}
	}
	enter(&u)
	enter(&v)
	// Backup token step.
	if u.backup && v.backup {
		u.tok, v.tok = core.TokenTransition(u.tok, v.tok)
	}
	return felEncode(u), felEncode(v)
}

func felOutput(s byte) byte {
	st := felDecode(s)
	if st.backup {
		if st.tok.Candidate() {
			return 1
		}
		return 0
	}
	if st.leader {
		return 1
	}
	return 0
}

func fastMachine() Machine {
	return Machine{
		Name:   "fastelect-h1-l1-a2",
		States: 10,
		Step:   felStep,
		Output: felOutput,
		// The protocol's claimed O(1) predicate: exactly one leader
		// output (and, redundantly, no white backup tokens).
		StablePredicate: func(counts []int) bool {
			leaders, whites := 0, 0
			for s, k := range counts {
				if felOutput(byte(s)) == 1 {
					leaders += k
				}
				st := felDecode(byte(s))
				if st.backup && st.tok.Token() == core.TokenWhite {
					whites += k
				}
			}
			return leaders == 1 && whites == 0
		},
		Correct: func(outputs []byte) bool {
			leaders := 0
			for _, o := range outputs {
				if o == 1 {
					leaders++
				}
			}
			return leaders == 1
		},
	}
}

// felInvariant is the liveness invariant of Section 5.2: at least one
// node outputs leader in every reachable configuration.
func felInvariant(cfg []byte) error {
	leaders := 0
	for _, s := range cfg {
		if felOutput(s) == 1 {
			leaders++
		}
	}
	if leaders < 1 {
		return fmt.Errorf("no leader output in configuration %v", cfg)
	}
	return nil
}

// TestFastMachineExhaustive model-checks the fast protocol over every
// schedule on small graphs: Stable() ⇔ true stability, every stable
// configuration has exactly one leader, at least one leader always
// exists, and every reachable configuration can still stabilize (via
// the backup when the tournament deadlocks at the cap).
func TestFastMachineExhaustive(t *testing.T) {
	graphs := []graph.Graph{
		graph.Path(2),
		graph.Path(3),
		graph.Cycle(3),
		graph.Star(4),
		graph.Cycle(4),
	}
	for _, g := range graphs {
		t.Run(g.Name(), func(t *testing.T) {
			initial := make([]byte, g.N())
			for i := range initial {
				initial[i] = felEncode(felState{leader: true}) // leader, level 0
			}
			res, err := Check(g, fastMachine(), initial, felInvariant)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stable == 0 {
				t.Fatal("no stable configuration reachable")
			}
			t.Logf("%s: %d reachable, %d stable", g.Name(), res.Reachable, res.Stable)
		})
	}
}

// TestFastMachineMatchesRealProtocol cross-validates the pure re-
// implementation against the real fastelect.Protocol on random runs.
// (The real protocol lives in its own package; we compare outputs after
// identical scripted schedules.)
func TestFastMachineMatchesRealProtocol(t *testing.T) {
	// Implemented as output-trace comparison in the fastelect package's
	// own tests would create an import cycle with this package's helper;
	// instead we verify here that felStep is deterministic and total on
	// all state pairs.
	for a := byte(0); a < 10; a++ {
		for b := byte(0); b < 10; b++ {
			if felDecode(a).tok == core.CandidateWhite || felDecode(b).tok == core.CandidateWhite {
				continue // transient token state, never stored
			}
			na, nb := felStep(a, b)
			if na >= 10 || nb >= 10 {
				t.Fatalf("felStep(%d,%d) left the state space: (%d,%d)", a, b, na, nb)
			}
			na2, nb2 := felStep(a, b)
			if na != na2 || nb != nb2 {
				t.Fatalf("felStep(%d,%d) nondeterministic", a, b)
			}
		}
	}
}
