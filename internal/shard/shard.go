// Package shard partitions a sweep's trial grid across independent
// shards — processes or machines — and merges their outputs back into
// the byte-identical single-process result.
//
// The contract rests on one fact: a trial's bytes are a pure function of
// its grid cell. Trial identity is the global cell index g over the
// task-major grid (g = task·Trials + trial), seeds derive from the grid
// position via sweep.Build/runner.SeedFor, and sim kernels are
// deterministic for a seed — so WHERE a cell runs cannot change its
// record. Plan assigns cells to shards round-robin (cell g → shard
// g mod m), each shard streams its records in ascending cell order with
// a checkpoint manifest naming the completed cells, and Merge interleaves
// the shard files back into global cell order by verbatim line copy: for
// every m, the concatenation is byte-identical to the m = 1 run (modulo
// the wall-time record fields, which cmd/sweep's -no-timing strips when
// byte comparisons are the point).
//
// A killed shard resumes from its manifest: the writer truncates the
// records file back to the checkpointed line count (discarding a
// possibly torn trailing line) and re-runs only the cells after the
// completed prefix.
package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"popgraph/internal/results"
	"popgraph/internal/runner"
	"popgraph/internal/sweep"
)

// Cell is one trial of the global grid: Task and Trial index into
// sweep.Build's tasks and a task's Jobs; Global is the flat task-major
// index, the unit of shard assignment and merge ordering.
type Cell struct {
	Task, Trial, Global int
}

// Shard is one partition of the trial grid: the ascending list of cells
// shard Index of Of executes.
type Shard struct {
	Index, Of int
	// Total is the size of the whole trial grid (all shards together).
	Total int
	Cells []Cell
}

// Plan splits the spec's task×trial grid into m location-independent
// shards. Assignment is round-robin on the global cell index — cell g
// runs on shard g mod m — so shards are balanced to within one cell and
// every shard's cell list is ascending, which the merge relies on. The
// plan depends only on the spec and m, never on where shards run.
func Plan(spec sweep.Spec, m int) ([]Shard, error) {
	if m < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", m)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	total := spec.CellCount() * spec.Trials
	shards := make([]Shard, m)
	for i := range shards {
		shards[i] = Shard{Index: i, Of: m, Total: total}
	}
	for g := 0; g < total; g++ {
		s := g % m
		shards[s].Cells = append(shards[s].Cells, Cell{
			Task:   g / spec.Trials,
			Trial:  g % spec.Trials,
			Global: g,
		})
	}
	return shards, nil
}

// PlanOne returns shard i of m of the spec's grid.
func PlanOne(spec sweep.Spec, i, m int) (Shard, error) {
	if i < 0 || i >= m {
		return Shard{}, fmt.Errorf("shard: index %d outside 0..%d", i, m-1)
	}
	shards, err := Plan(spec, m)
	if err != nil {
		return Shard{}, err
	}
	return shards[i], nil
}

// SpecHash returns the hex SHA-256 of the spec's canonical JSON
// encoding. Two processes agree on the hash exactly when they would
// build the same grid with the same seeds, so manifests carry it to
// refuse resuming or merging across different sweeps.
func SpecHash(spec sweep.Spec) string {
	// The lockstep batch width is an execution knob, not grid identity:
	// batching never changes a cell's record bytes, so shards run (or
	// resumed) at different widths must still merge. Zero it out of the
	// hashed encoding.
	spec.Batch = 0
	// encoding/json writes struct fields in declaration order with no
	// host-dependent content, so the encoding is canonical.
	data, err := json.Marshal(spec)
	if err != nil {
		// Spec holds only plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("shard: encoding spec: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Execute runs the shard's cells through the pool and delivers each
// cell's record via emit — on a single goroutine, in ascending cell
// order, as soon as the cell and all its shard predecessors finish.
// Trials keep the exact seeds and options sweep.Build assigned them, so
// every emitted record is byte-identical (wall-time fields aside) to the
// same cell's record in a solo run. Cells must be a subset of the
// shard's plan in ascending order — resume passes a suffix.
func Execute(tasks []sweep.Task, cells []Cell, pool runner.Pool, emit func(Cell, results.Record)) error {
	return ExecuteBatched(tasks, cells, pool, 0, emit)
}

// ExecuteBatched is Execute with lockstep batching: consecutive cells
// of the same task — adjacent in every shard's ascending cell list,
// since the grid is task-major — run as structure-of-arrays units of up
// to batch trials (runner.Pool.StreamBatched; batch <= 1 runs every
// cell solo). Cells keep their grid seeds and record bytes, so a
// batched shard's records file, checkpoint sequence and merge result
// are byte-identical to the solo shard's.
func ExecuteBatched(tasks []sweep.Task, cells []Cell, pool runner.Pool, batch int, emit func(Cell, results.Record)) error {
	jobs := make([]runner.Job, len(cells))
	for i, c := range cells {
		if c.Task < 0 || c.Task >= len(tasks) {
			return fmt.Errorf("shard: cell %d names task %d of %d", c.Global, c.Task, len(tasks))
		}
		if c.Trial < 0 || c.Trial >= len(tasks[c.Task].Jobs) {
			return fmt.Errorf("shard: cell %d names trial %d of %d", c.Global, c.Trial, len(tasks[c.Task].Jobs))
		}
		jobs[i] = tasks[c.Task].Jobs[c.Trial]
	}
	pool.StreamBatched(jobs, batch, func(i int) int { return cells[i].Task }, func(i int, o runner.Outcome) {
		emit(cells[i], sweep.TrialRecord(tasks[cells[i].Task], cells[i].Trial, o))
	})
	return nil
}
