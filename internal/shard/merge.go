package shard

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// MergeInfo summarizes a successful merge for display and downstream
// verification.
type MergeInfo struct {
	// SpecHash/SpecName/Seed are the (validated-identical) values from
	// the shard manifests.
	SpecHash string
	SpecName string
	Seed     uint64
	// Records is the number of lines written; Shards the number of
	// inputs.
	Records int
	Shards  int
	// NoTiming reports whether the shards ran with wall-time fields
	// stripped.
	NoTiming bool
}

// Merge interleaves shard records files back into global grid order,
// writing each line verbatim (no re-encoding, so the output is
// byte-identical to a solo run over the same grid). The inputs are
// manifest paths — each manifest names its records file — and the set
// must be exactly one complete sweep: same spec hash, same shard count,
// every shard present once, and the completed cells covering the grid
// exactly. Any gap, overlap, or cross-sweep mixture is an error naming
// the offender, because a silently partial merge would masquerade as a
// smaller run.
//
// Memory is O(shards): one buffered reader and one cursor per shard —
// shard files are ascending in cell order, so the interleave is a
// sequential walk of every input.
func Merge(w io.Writer, manifestPaths []string) (MergeInfo, error) {
	if len(manifestPaths) == 0 {
		return MergeInfo{}, fmt.Errorf("shard: merge of zero manifests")
	}
	manifests := make([]Manifest, len(manifestPaths))
	for i, p := range manifestPaths {
		m, err := ReadManifest(p)
		if err != nil {
			return MergeInfo{}, err
		}
		manifests[i] = m
	}
	ref := manifests[0]
	if len(manifestPaths) != ref.Of {
		return MergeInfo{}, fmt.Errorf("shard: %d manifests given for a %d-shard sweep",
			len(manifestPaths), ref.Of)
	}
	// byShard[i] is the input holding shard i; owner[g] the shard of
	// cell g. Filling both verifies exact cover: no duplicate shards, no
	// duplicate cells, and (by counting) no gaps.
	byShard := make([]int, ref.Of)
	for i := range byShard {
		byShard[i] = -1
	}
	covered := 0
	for i, m := range manifests {
		if m.SpecHash != ref.SpecHash {
			return MergeInfo{}, fmt.Errorf("shard: %s belongs to a different sweep than %s (spec hash mismatch)",
				manifestPaths[i], manifestPaths[0])
		}
		if m.Of != ref.Of || m.TotalCells != ref.TotalCells {
			return MergeInfo{}, fmt.Errorf("shard: %s is shard %d/%d over %d cells, %s is %d/%d over %d",
				manifestPaths[i], m.Shard, m.Of, m.TotalCells,
				manifestPaths[0], ref.Shard, ref.Of, ref.TotalCells)
		}
		if m.NoTiming != ref.NoTiming {
			return MergeInfo{}, fmt.Errorf("shard: %s has no_timing=%v, %s has %v",
				manifestPaths[i], m.NoTiming, manifestPaths[0], ref.NoTiming)
		}
		if byShard[m.Shard] != -1 {
			return MergeInfo{}, fmt.Errorf("shard: shard %d appears twice (%s and %s)",
				m.Shard, manifestPaths[byShard[m.Shard]], manifestPaths[i])
		}
		byShard[m.Shard] = i
		covered += len(m.Completed)
	}
	if covered != ref.TotalCells {
		return MergeInfo{}, fmt.Errorf("shard: manifests cover %d of %d cells — a shard is incomplete (resume it from its checkpoint before merging)",
			covered, ref.TotalCells)
	}

	readers := make([]*bufio.Reader, len(manifests))
	cursors := make([]int, len(manifests)) // next index into Completed
	for i, m := range manifests {
		f, err := os.Open(m.RecordsPath(manifestPaths[i]))
		if err != nil {
			return MergeInfo{}, err
		}
		defer f.Close()
		readers[i] = bufio.NewReaderSize(f, 64*1024)
	}
	bw := bufio.NewWriter(w)
	for g := 0; g < ref.TotalCells; g++ {
		src := byShard[g%ref.Of]
		m := manifests[src]
		if cursors[src] >= len(m.Completed) || m.Completed[cursors[src]] != g {
			return MergeInfo{}, fmt.Errorf("shard: cell %d missing from shard %d (%s)",
				g, g%ref.Of, manifestPaths[src])
		}
		line, err := readers[src].ReadBytes('\n')
		if err != nil {
			return MergeInfo{}, fmt.Errorf("shard: %s line %d (cell %d): %w",
				manifests[src].Records, cursors[src]+1, g, err)
		}
		cursors[src]++
		if _, err := bw.Write(line); err != nil {
			return MergeInfo{}, err
		}
	}
	// Trailing content beyond the manifest's claim means the file and
	// manifest disagree — refuse rather than silently drop lines.
	for i, r := range readers {
		if _, err := r.ReadByte(); err != io.EOF {
			return MergeInfo{}, fmt.Errorf("shard: %s has lines beyond its manifest's %d cells",
				manifests[i].Records, len(manifests[i].Completed))
		}
	}
	if err := bw.Flush(); err != nil {
		return MergeInfo{}, err
	}
	return MergeInfo{
		SpecHash: ref.SpecHash,
		SpecName: ref.SpecName,
		Seed:     ref.Seed,
		Records:  ref.TotalCells,
		Shards:   ref.Of,
		NoTiming: ref.NoTiming,
	}, nil
}
