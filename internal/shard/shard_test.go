package shard

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"popgraph/internal/results"
	"popgraph/internal/runner"
	"popgraph/internal/sweep"
	"popgraph/internal/telemetry"
)

// testSpec is a small grid that exercises every record shape the merge
// must preserve: two protocols (the star protocol crashes on non-star
// graphs, so half its cells produce Outcome.Err records), two
// schedulers, and a drop rate.
func testSpec() sweep.Spec {
	return sweep.Spec{
		Name:       "shard-prop",
		Seed:       2022,
		Trials:     4,
		Graphs:     []string{"clique:N", "star:N"},
		Sizes:      []int{8},
		Schedulers: []string{"uniform", "node-clock"},
		Protocols:  []string{"six-state", "star"},
		DropRates:  []float64{0, 0.25},
	}
}

func TestPlanRoundRobin(t *testing.T) {
	spec := testSpec()
	total := spec.CellCount() * spec.Trials
	if total != 2*2*2*2*4 {
		t.Fatalf("grid size %d", total)
	}
	for _, m := range []int{1, 3, 7} {
		shards, err := Plan(spec, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(shards) != m {
			t.Fatalf("m=%d: %d shards", m, len(shards))
		}
		seen := make(map[int]bool)
		for i, sh := range shards {
			if sh.Index != i || sh.Of != m || sh.Total != total {
				t.Fatalf("m=%d: shard header %+v", m, sh)
			}
			// Balanced to within one cell.
			if len(sh.Cells) < total/m || len(sh.Cells) > total/m+1 {
				t.Fatalf("m=%d: shard %d has %d cells of %d", m, i, len(sh.Cells), total)
			}
			prev := -1
			for _, c := range sh.Cells {
				if c.Global%m != i {
					t.Fatalf("m=%d: cell %d on shard %d", m, c.Global, i)
				}
				if c.Global <= prev {
					t.Fatalf("m=%d: shard %d cells not ascending", m, i)
				}
				prev = c.Global
				if c.Global != c.Task*spec.Trials+c.Trial {
					t.Fatalf("cell %+v inconsistent", c)
				}
				if seen[c.Global] {
					t.Fatalf("cell %d assigned twice", c.Global)
				}
				seen[c.Global] = true
			}
		}
		if len(seen) != total {
			t.Fatalf("m=%d: %d of %d cells assigned", m, len(seen), total)
		}
	}
	if _, err := Plan(spec, 0); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := PlanOne(spec, 4, 4); err == nil {
		t.Fatal("shard index == m accepted")
	}
}

func TestSpecHashDistinguishesSpecs(t *testing.T) {
	a := testSpec()
	b := testSpec()
	if SpecHash(a) != SpecHash(b) {
		t.Fatal("identical specs hash differently")
	}
	b.Seed++
	if SpecHash(a) == SpecHash(b) {
		t.Fatal("different seeds hash identically")
	}
	c := testSpec()
	c.Trials++
	if SpecHash(a) == SpecHash(c) {
		t.Fatal("different grids hash identically")
	}
}

// soloBytes runs the whole grid in-process and renders the canonical
// JSONL log with wall-time fields stripped — the byte-identity
// reference every merge is compared against.
func soloBytes(t *testing.T, spec sweep.Spec, meter *telemetry.Counters) []byte {
	t.Helper()
	tasks, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	recs := sweep.Execute(tasks, runner.Pool{Workers: 3, Meter: meter})
	for i := range recs {
		recs[i].ElapsedNs, recs[i].QueueWaitNs = 0, 0
	}
	var buf bytes.Buffer
	if err := results.Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runShard executes one shard into dir with checkpointing, starting
// from whatever its manifest says is already done, over at most
// stopAfter additional cells (<= 0 means all). It returns the manifest
// path.
func runShard(t *testing.T, dir string, spec sweep.Spec, sh Shard, stopAfter int, meter *telemetry.Counters) string {
	return runShardBatched(t, dir, spec, sh, stopAfter, meter, 0)
}

// runShardBatched is runShard with a lockstep batch width (0 = solo).
func runShardBatched(t *testing.T, dir string, spec sweep.Spec, sh Shard, stopAfter int, meter *telemetry.Counters, batch int) string {
	t.Helper()
	tasks, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl", sh.Index))
	manifestPath := filepath.Join(dir, fmt.Sprintf("shard-%d.manifest.json", sh.Index))
	w, done, err := Open(outPath, manifestPath, Manifest{
		Schema:     ManifestSchema,
		SpecHash:   SpecHash(spec),
		SpecName:   spec.Name,
		Seed:       spec.Seed,
		Shard:      sh.Index,
		Of:         sh.Of,
		TotalCells: sh.Total,
		Records:    filepath.Base(outPath),
		NoTiming:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cells := sh.Cells[done:]
	if stopAfter > 0 && stopAfter < len(cells) {
		cells = cells[:stopAfter]
	}
	var appendErr error
	err = ExecuteBatched(tasks, cells, runner.Pool{Workers: 2, Meter: meter}, batch, func(c Cell, rec results.Record) {
		if appendErr == nil {
			appendErr = w.Append(c.Global, rec)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if appendErr != nil {
		t.Fatal(appendErr)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return manifestPath
}

// TestMergeByteIdenticalAcrossShardCounts is the subsystem's core
// guarantee: for every shard count m, running the grid as m independent
// checkpointed shards and merging the files reproduces the solo run's
// JSONL byte for byte — crashed trials and telemetry included — and the
// per-shard telemetry snapshots merge to the solo snapshot's
// deterministic fields.
func TestMergeByteIdenticalAcrossShardCounts(t *testing.T) {
	spec := testSpec()
	soloMeter := new(telemetry.Counters)
	want := soloBytes(t, spec, soloMeter)
	soloSnap := soloMeter.Snapshot()
	if !bytes.Contains(want, []byte(`"error"`)) {
		t.Fatal("test grid produced no crashed trials; the property would not cover them")
	}
	for _, m := range []int{1, 2, 3, 7} {
		dir := t.TempDir()
		shards, err := Plan(spec, m)
		if err != nil {
			t.Fatal(err)
		}
		var manifests []string
		merged := telemetry.Snapshot{}
		for _, sh := range shards {
			meter := new(telemetry.Counters)
			manifests = append(manifests, runShard(t, dir, spec, sh, 0, meter))
			merged = merged.Merge(meter.Snapshot())
		}
		var buf bytes.Buffer
		info, err := Merge(&buf, manifests)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("m=%d: merged output differs from the solo run", m)
		}
		if info.Records != bytes.Count(want, []byte("\n")) {
			t.Fatalf("m=%d: merge info reports %d records, log has %d lines",
				m, info.Records, bytes.Count(want, []byte("\n")))
		}
		if info.SpecHash != SpecHash(spec) || info.Shards != m || !info.NoTiming {
			t.Fatalf("m=%d: merge info %+v", m, info)
		}
		// Telemetry shards fold to the solo flight recorder's
		// deterministic fields (wall-time histograms are host noise).
		if merged.StepsExecuted != soloSnap.StepsExecuted ||
			merged.ChunksRun != soloSnap.ChunksRun ||
			merged.RNGRefills != soloSnap.RNGRefills ||
			merged.DropsApplied != soloSnap.DropsApplied ||
			merged.TrialsRun != soloSnap.TrialsRun ||
			merged.TrialsStabilized != soloSnap.TrialsStabilized ||
			merged.TrialsFailed != soloSnap.TrialsFailed {
			t.Fatalf("m=%d: merged telemetry %+v != solo %+v", m, merged, soloSnap)
		}
		for k, v := range soloSnap.KernelDispatch {
			if merged.KernelDispatch[k] != v {
				t.Fatalf("m=%d: kernel %s dispatched %d times, solo %d", m, k, merged.KernelDispatch[k], v)
			}
		}
	}
}

// TestResumeFromCheckpoint — a shard killed mid-sweep (including with a
// torn trailing line) resumes from its manifest, recomputes nothing
// that was checkpointed, and finishes with a file byte-identical to an
// uninterrupted run.
func TestResumeFromCheckpoint(t *testing.T) {
	spec := testSpec()
	shards, err := Plan(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	sh := shards[1]

	fullDir := t.TempDir()
	runShard(t, fullDir, spec, sh, 0, nil)
	want, err := os.ReadFile(filepath.Join(fullDir, "shard-1.jsonl"))
	if err != nil {
		t.Fatal(err)
	}

	// Kill after 3 cells, then once more after 2, then run to completion:
	// two resumes, three manifest generations.
	dir := t.TempDir()
	runShard(t, dir, spec, sh, 3, nil)
	m1, err := ReadManifest(filepath.Join(dir, "shard-1.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.Completed) != 3 {
		t.Fatalf("first leg checkpointed %d cells, want 3", len(m1.Completed))
	}
	// Simulate the torn line a mid-write kill leaves behind.
	f, err := os.OpenFile(filepath.Join(dir, "shard-1.jsonl"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"graph":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	runShard(t, dir, spec, sh, 2, nil)
	manifestPath := runShard(t, dir, spec, sh, 0, nil)
	got, err := os.ReadFile(filepath.Join(dir, "shard-1.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed shard file differs from the uninterrupted run")
	}
	final, err := ReadManifest(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Completed) != len(sh.Cells) {
		t.Fatalf("final manifest has %d cells, want %d", len(final.Completed), len(sh.Cells))
	}

	// A checkpoint from a different sweep must be refused, not resumed.
	other := spec
	other.Seed++
	_, _, err = Open(filepath.Join(dir, "shard-1.jsonl"), manifestPath, Manifest{
		Schema:     ManifestSchema,
		SpecHash:   SpecHash(other),
		Seed:       other.Seed,
		Shard:      sh.Index,
		Of:         sh.Of,
		TotalCells: sh.Total,
		Records:    "shard-1.jsonl",
		NoTiming:   true,
	})
	if err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("cross-sweep resume: %v", err)
	}
}

// TestResumeBatchedMatchesSolo — satellite of the lockstep batch work:
// a sharded sweep running its cells as batched units, killed twice and
// resumed from its checkpoints, must still merge to the byte-identical
// solo (unbatched, uninterrupted) reference. The kill points land
// mid-unit on purpose — stopAfter truncates the cell list, so the
// resumed leg re-forms different unit boundaries than the killed run
// used, proving record bytes are independent of unit shape.
func TestResumeBatchedMatchesSolo(t *testing.T) {
	spec := testSpec()
	want := soloBytes(t, spec, nil)

	shards, err := Plan(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var manifests []string
	merged := telemetry.Snapshot{}
	for _, sh := range shards {
		meter := new(telemetry.Counters)
		runShardBatched(t, dir, spec, sh, 3, meter, 3)
		runShardBatched(t, dir, spec, sh, 2, meter, 3)
		manifests = append(manifests, runShardBatched(t, dir, spec, sh, 0, meter, 3))
		merged = merged.Merge(meter.Snapshot())
	}
	var buf bytes.Buffer
	if _, err := Merge(&buf, manifests); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("batched kill/resume merge differs from the solo reference")
	}
	// The equivalence must not hold vacuously: at least one unit has to
	// have run on the lockstep kernel (the clique/uniform/six-state cells
	// are adjacent in both shards).
	lockstep := int64(0)
	for label, n := range merged.KernelDispatch {
		if strings.HasSuffix(label, "/table/batch") {
			lockstep += n
		}
	}
	if lockstep == 0 {
		t.Fatalf("no lockstep units ran; dispatch %v", merged.KernelDispatch)
	}
}

// TestMergeRejectsIncompleteOrMixedShards — merging refuses partial
// sweeps (a killed shard that never resumed), missing shards, and
// manifests from different sweeps.
func TestMergeRejectsIncompleteOrMixedShards(t *testing.T) {
	spec := testSpec()
	shards, err := Plan(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	m0 := runShard(t, dir, spec, shards[0], 0, nil)
	m1 := runShard(t, dir, spec, shards[1], 2, nil) // incomplete

	var buf bytes.Buffer
	if _, err := Merge(&buf, []string{m0}); err == nil || !strings.Contains(err.Error(), "manifests") {
		t.Fatalf("missing shard: %v", err)
	}
	if _, err := Merge(&buf, []string{m0, m1}); err == nil || !strings.Contains(err.Error(), "cover") {
		t.Fatalf("incomplete shard: %v", err)
	}
	if _, err := Merge(&buf, []string{m0, m0}); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate shard: %v", err)
	}

	// Different sweep in the mix.
	other := spec
	other.Seed++
	otherShards, err := Plan(other, 2)
	if err != nil {
		t.Fatal(err)
	}
	otherDir := t.TempDir()
	om1 := runShard(t, otherDir, other, otherShards[1], 0, nil)
	if _, err := Merge(&buf, []string{m0, om1}); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("mixed sweeps: %v", err)
	}
}
