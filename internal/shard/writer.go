package shard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"popgraph/internal/results"
)

// Writer streams one shard's records to a JSONL file in ascending cell
// order, checkpointing a manifest after every flushed record. Opening a
// writer whose manifest already exists resumes it: the records file is
// truncated back to the checkpointed line count (repairing a torn final
// line from a kill) and Append continues after the completed prefix.
//
// The write order per record is line-then-manifest, so the manifest
// never claims a cell whose line is missing; a kill between the two
// leaves one orphan line that the next resume truncates away and
// recomputes, which is idempotent because cells are deterministic.
type Writer struct {
	out          *os.File
	buf          *bufio.Writer
	manifest     Manifest
	manifestPath string // "" disables checkpointing
}

// Open creates or resumes a shard writer. base describes the shard
// (spec hash, shard/of, grid total, records path, timing mode) and must
// carry an empty Completed list; outPath is the records file the base's
// Records field names. When manifestPath is empty, checkpointing is off
// and the records file is always started fresh. The returned count is
// the number of already-completed cells to skip — 0 for a fresh run.
func Open(outPath, manifestPath string, base Manifest) (*Writer, int, error) {
	if len(base.Completed) != 0 {
		return nil, 0, fmt.Errorf("shard: Open with non-empty completed list")
	}
	if err := base.Validate(); err != nil {
		return nil, 0, err
	}
	w := &Writer{manifest: base, manifestPath: manifestPath}
	if manifestPath != "" {
		if prev, err := ReadManifest(manifestPath); err == nil {
			return w.resume(outPath, prev)
		} else if !os.IsNotExist(err) {
			return nil, 0, err
		}
	}
	out, err := os.Create(outPath)
	if err != nil {
		return nil, 0, err
	}
	w.out = out
	w.buf = bufio.NewWriter(out)
	if manifestPath != "" {
		// Checkpoint the empty state up front so a kill before the first
		// cell still leaves a resumable manifest.
		if err := WriteManifest(manifestPath, w.manifest); err != nil {
			out.Close()
			return nil, 0, err
		}
	}
	return w, 0, nil
}

// resume validates the previous checkpoint against the requested run and
// reopens the records file truncated to the checkpointed prefix.
func (w *Writer) resume(outPath string, prev Manifest) (*Writer, int, error) {
	base := w.manifest
	switch {
	case prev.SpecHash != base.SpecHash:
		return nil, 0, fmt.Errorf("shard: checkpoint belongs to a different sweep (spec hash %.12s… vs %.12s…)",
			prev.SpecHash, base.SpecHash)
	case prev.Shard != base.Shard || prev.Of != base.Of:
		return nil, 0, fmt.Errorf("shard: checkpoint is for shard %d/%d, this run is %d/%d",
			prev.Shard, prev.Of, base.Shard, base.Of)
	case prev.TotalCells != base.TotalCells:
		return nil, 0, fmt.Errorf("shard: checkpoint grid has %d cells, this run %d",
			prev.TotalCells, base.TotalCells)
	case prev.NoTiming != base.NoTiming:
		return nil, 0, fmt.Errorf("shard: checkpoint no_timing=%v, this run %v (mixing would break byte-identity)",
			prev.NoTiming, base.NoTiming)
	case prev.Records != base.Records:
		return nil, 0, fmt.Errorf("shard: checkpoint records file %q, this run writes %q",
			prev.Records, base.Records)
	}
	end, err := prefixEnd(outPath, len(prev.Completed))
	if err != nil {
		return nil, 0, fmt.Errorf("shard: resuming %s: %w", outPath, err)
	}
	out, err := os.OpenFile(outPath, os.O_WRONLY, 0)
	if err != nil {
		return nil, 0, err
	}
	if err := out.Truncate(end); err != nil {
		out.Close()
		return nil, 0, err
	}
	if _, err := out.Seek(end, io.SeekStart); err != nil {
		out.Close()
		return nil, 0, err
	}
	w.out = out
	w.buf = bufio.NewWriter(out)
	w.manifest = prev
	return w, len(prev.Completed), nil
}

// prefixEnd returns the byte offset just past the n-th newline of path —
// the end of its first n complete lines.
func prefixEnd(path string, n int) (int64, error) {
	if n == 0 {
		return 0, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var off int64
	lines := 0
	buf := make([]byte, 64*1024)
	for lines < n {
		k, err := f.Read(buf)
		for _, b := range buf[:k] {
			off++
			if b == '\n' {
				lines++
				if lines == n {
					return off, nil
				}
			}
		}
		if err == io.EOF {
			return 0, fmt.Errorf("records file has %d complete lines, checkpoint claims %d", lines, n)
		}
		if err != nil {
			return 0, err
		}
	}
	return off, nil
}

// Append writes one cell's record line and checkpoints it. Cells must
// arrive in ascending global order, continuing the completed prefix.
func (w *Writer) Append(global int, rec results.Record) error {
	if n := len(w.manifest.Completed); n > 0 && global <= w.manifest.Completed[n-1] {
		return fmt.Errorf("shard: cell %d appended after cell %d", global, w.manifest.Completed[n-1])
	}
	if w.manifest.NoTiming {
		rec.ElapsedNs, rec.QueueWaitNs = 0, 0
	}
	line, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	if _, err := w.buf.Write(line); err != nil {
		return err
	}
	// The line must be durable in the file before the manifest claims
	// it; buffering exists only to batch the syscalls within one line.
	if err := w.buf.Flush(); err != nil {
		return err
	}
	w.manifest.Completed = append(w.manifest.Completed, global)
	if w.manifestPath != "" {
		return WriteManifest(w.manifestPath, w.manifest)
	}
	return nil
}

// Done returns the number of cells flushed so far (including any
// resumed prefix).
func (w *Writer) Done() int { return len(w.manifest.Completed) }

// Close flushes and closes the records file. The manifest was already
// checkpointed per cell, so Close adds nothing to it.
func (w *Writer) Close() error {
	if err := w.buf.Flush(); err != nil {
		w.out.Close()
		return err
	}
	return w.out.Close()
}

// encodeRecord renders one record exactly as results.Write does — same
// encoder, one line, trailing newline — so shard files concatenate into
// a byte-identical solo log.
func encodeRecord(rec results.Record) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(&rec); err != nil {
		return nil, fmt.Errorf("shard: encoding record: %w", err)
	}
	return buf.Bytes(), nil
}
