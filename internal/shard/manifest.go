package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestSchema identifies the checkpoint manifest layout; bump on
// breaking changes. Readers reject unknown schemas instead of guessing.
const ManifestSchema = "popgraph-shard/v1"

// Manifest is a shard's checkpoint and merge credential: which sweep
// (by spec hash) it belongs to, which shard of how many it is, which
// records file it indexes, and which global cells that file holds, in
// line order. The writer rewrites it atomically after every flushed
// cell, so at any kill point the manifest describes a complete prefix
// of the records file.
type Manifest struct {
	Schema   string `json:"schema"`
	SpecHash string `json:"spec_hash"`
	// SpecName and Seed reproduce the solo run's summary-table title at
	// merge time.
	SpecName string `json:"spec_name,omitempty"`
	Seed     uint64 `json:"seed"`
	Shard    int    `json:"shard"`
	Of       int    `json:"of"`
	// TotalCells is the whole grid's trial count (all shards together),
	// letting the merge verify cover without rebuilding the plan.
	TotalCells int `json:"total_cells"`
	// Records is the shard's JSONL file, relative to the manifest's
	// directory (the pair travels together as one artifact).
	Records string `json:"records"`
	// NoTiming records whether the wall-time record fields were
	// stripped; resuming or merging with a mismatched setting would
	// silently break byte-identity, so it is validated instead.
	NoTiming bool `json:"no_timing,omitempty"`
	// Completed lists the global cell indices with a flushed record, in
	// file line order — line i of Records holds cell Completed[i]. The
	// writer flushes in ascending cell order, so the list is ascending
	// and forms a prefix of the shard's plan.
	Completed []int `json:"completed_cells"`
}

// Validate checks the manifest's internal consistency.
func (m Manifest) Validate() error {
	if m.Schema != ManifestSchema {
		return fmt.Errorf("shard: unknown manifest schema %q (want %q)", m.Schema, ManifestSchema)
	}
	if m.Of < 1 || m.Shard < 0 || m.Shard >= m.Of {
		return fmt.Errorf("shard: manifest names shard %d of %d", m.Shard, m.Of)
	}
	if m.TotalCells < 0 || len(m.Completed) > m.TotalCells {
		return fmt.Errorf("shard: manifest lists %d completed cells of a %d-cell grid",
			len(m.Completed), m.TotalCells)
	}
	if m.Records == "" {
		return fmt.Errorf("shard: manifest lacks a records path")
	}
	for i, g := range m.Completed {
		if g < 0 || g >= m.TotalCells {
			return fmt.Errorf("shard: completed cell %d outside the %d-cell grid", g, m.TotalCells)
		}
		if g%m.Of != m.Shard {
			return fmt.Errorf("shard: completed cell %d does not belong to shard %d of %d", g, m.Shard, m.Of)
		}
		if i > 0 && g <= m.Completed[i-1] {
			return fmt.Errorf("shard: completed cells not ascending at index %d (%d after %d)",
				i, g, m.Completed[i-1])
		}
	}
	return nil
}

// RecordsPath resolves the records file relative to the manifest's
// location.
func (m Manifest) RecordsPath(manifestPath string) string {
	if filepath.IsAbs(m.Records) {
		return m.Records
	}
	return filepath.Join(filepath.Dir(manifestPath), m.Records)
}

// WriteManifest writes the manifest atomically: a temp file in the
// destination directory, synced, then renamed over path. A kill during
// the write leaves the previous manifest intact, so a checkpoint is
// always a complete, parseable JSON document.
func WriteManifest(path string, m Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// ReadManifest parses and validates a manifest file.
func ReadManifest(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("shard: parsing manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, fmt.Errorf("shard: manifest %s: %w", path, err)
	}
	return m, nil
}
