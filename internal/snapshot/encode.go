// Snapshot encoding: lay out the section table, serialize every slab
// little-endian at 8-aligned offsets, checksum each payload. Encoding
// happens once per preprocessed graph (cmd/preprocess), so the encoder
// favors clarity; the bulk slabs still take the memcpy fast path on
// little-endian hosts, where the in-memory representation already is
// the wire representation.

package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"unsafe"
)

// castagnoli is the CRC-32C table shared by encode, decode and
// Inspect. Castagnoli because amd64 and arm64 compute it in hardware,
// keeping checksum verification a tiny slice of load time even for
// multi-hundred-megabyte snapshots.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian reports whether the native byte order is little
// endian — the precondition for aliasing wire slabs as typed slices
// in either direction.
var hostLittleEndian = binary.NativeEndian.Uint16([]byte{0x34, 0x12}) == 0x1234

// align8 rounds n up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

// bytesOf returns the raw byte view of a numeric slab. Only valid as a
// wire image on little-endian hosts; callers gate on hostLittleEndian.
func bytesOf[T int32 | int64 | uint32 | float64](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(s[0])))
}

// section is one section-table entry during encoding or decoding.
type section struct {
	kind   uint32
	crc    uint32
	offset uint64
	length uint64
}

// Encode serializes the snapshot. The graph must be set; weights and
// tables are optional.
func (s *Snapshot) Encode() ([]byte, error) {
	if s.Graph == nil {
		return nil, fmt.Errorf("snapshot: encode without a graph")
	}
	g := s.Graph
	n, m := g.N(), g.M()
	offsets, adj := g.CSR()
	edges := g.PackedEdges()
	if len(s.Source) > math.MaxUint16 {
		return nil, fmt.Errorf("snapshot: source spec %.32q... too long", s.Source)
	}
	if len(g.Name()) > math.MaxUint16 {
		return nil, fmt.Errorf("snapshot: graph name %.32q... too long", g.Name())
	}

	// Payload sizes, in canonical section order.
	lengths := []int{
		24 + len(g.Name()) + len(s.Source), // meta
		4 * (n + 1),                        // csr-offsets
		4 * 2 * m,                          // csr-adjacency
		8 * m,                              // packed-edges
	}
	kinds := []uint32{kindMeta, kindOffsets, kindAdj, kindEdges}
	for _, w := range s.Weights {
		lengths = append(lengths, weightsPayloadSize(len(w.Name), m))
		kinds = append(kinds, kindWeights)
	}
	for _, t := range s.Tables {
		lengths = append(lengths, tablePayloadSize(len(t.Name), t.Table.K()))
		kinds = append(kinds, kindTable)
	}
	if len(kinds) > maxSections {
		return nil, fmt.Errorf("snapshot: %d sections exceed the %d-section cap", len(kinds), maxSections)
	}

	sections := make([]section, len(kinds))
	off := headerSize + sectionEntrySize*len(kinds)
	for i, l := range lengths {
		off = align8(off)
		sections[i] = section{kind: kinds[i], offset: uint64(off), length: uint64(l)}
		off += l
	}
	total := align8(off)
	buf := make([]byte, total)

	// Payloads first, so checksums are ready when the table is written.
	si := 0
	next := func() []byte {
		p := buf[sections[si].offset : sections[si].offset+sections[si].length]
		si++
		return p
	}
	meta := next()
	binary.LittleEndian.PutUint64(meta[0:], uint64(n))
	binary.LittleEndian.PutUint64(meta[8:], uint64(m))
	binary.LittleEndian.PutUint32(meta[16:], uint32(len(g.Name())))
	binary.LittleEndian.PutUint32(meta[20:], uint32(len(s.Source)))
	copy(meta[24:], g.Name())
	copy(meta[24+len(g.Name()):], s.Source)
	putInt32s(next(), offsets)
	putInt32s(next(), adj)
	putInt64s(next(), edges)
	for _, w := range s.Weights {
		if err := encodeWeights(next(), w, m); err != nil {
			return nil, err
		}
	}
	for _, t := range s.Tables {
		encodeTable(next(), t)
	}
	for i := range sections {
		sections[i].crc = crc32.Checksum(buf[sections[i].offset:sections[i].offset+sections[i].length], castagnoli)
	}

	copy(buf[0:16], Magic)
	binary.LittleEndian.PutUint32(buf[16:], flagConnected)
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(sections)))
	binary.LittleEndian.PutUint64(buf[24:], uint64(total))
	binary.LittleEndian.PutUint64(buf[32:], uint64(int64(g.KnownDiameter())))
	for i, sec := range sections {
		e := buf[headerSize+sectionEntrySize*i:]
		binary.LittleEndian.PutUint32(e[0:], sec.kind)
		binary.LittleEndian.PutUint32(e[4:], sec.crc)
		binary.LittleEndian.PutUint64(e[8:], sec.offset)
		binary.LittleEndian.PutUint64(e[16:], sec.length)
	}
	return buf, nil
}

// weightsPayloadSize: u64 edge count, u32 name length, u32 reserved,
// name padded to 8 (so the float slabs land 8-aligned), rates m×f64,
// prob m×f64, alias m×u32.
func weightsPayloadSize(nameLen, m int) int {
	return align8(16+nameLen) + 8*m + 8*m + 4*m
}

// tablePayloadSize: u32 k, u32 name length, i64 gap target, name
// padded to 4, cells k²×u32, roles k×u8 padded to 8, gap weights
// k×i64. Tables are tiny (k ≤ 64), and the decoder copies them rather
// than aliasing, so only decodability matters here.
func tablePayloadSize(nameLen, k int) int {
	return align8(((16+nameLen+3)&^3)+4*k*k+k) + 8*k
}

func encodeWeights(p []byte, w WeightSet, m int) error {
	if len(w.Rates) != m || w.Alias.N() != m {
		return fmt.Errorf("snapshot: weight set %q has %d rates / %d alias columns for %d edges",
			w.Name, len(w.Rates), w.Alias.N(), m)
	}
	binary.LittleEndian.PutUint64(p[0:], uint64(m))
	binary.LittleEndian.PutUint32(p[8:], uint32(len(w.Name)))
	copy(p[16:], w.Name)
	off := align8(16 + len(w.Name))
	prob, alias := w.Alias.Table()
	putFloat64s(p[off:off+8*m], w.Rates)
	putFloat64s(p[off+8*m:off+16*m], prob)
	putInt32s(p[off+16*m:off+16*m+4*m], alias)
	return nil
}

func encodeTable(p []byte, t Table) {
	k := t.Table.K()
	binary.LittleEndian.PutUint32(p[0:], uint32(k))
	binary.LittleEndian.PutUint32(p[4:], uint32(len(t.Name)))
	binary.LittleEndian.PutUint64(p[8:], uint64(int64(t.Table.GapTarget())))
	copy(p[16:], t.Name)
	off := (16 + len(t.Name) + 3) &^ 3
	cells := t.Table.Cells()
	for i, c := range cells {
		binary.LittleEndian.PutUint32(p[off+4*i:], c)
	}
	off += 4 * k * k
	for s := 0; s < k; s++ {
		p[off+s] = byte(t.Table.Role(uint8(s)))
	}
	off = align8(off + k)
	for s := 0; s < k; s++ {
		binary.LittleEndian.PutUint64(p[off+8*s:], uint64(int64(t.Table.GapWeight(uint8(s)))))
	}
}

func putInt32s(p []byte, v []int32) {
	if hostLittleEndian {
		copy(p, bytesOf(v))
		return
	}
	for i, x := range v {
		binary.LittleEndian.PutUint32(p[4*i:], uint32(x))
	}
}

func putInt64s(p []byte, v []int64) {
	if hostLittleEndian {
		copy(p, bytesOf(v))
		return
	}
	for i, x := range v {
		binary.LittleEndian.PutUint64(p[8*i:], uint64(x))
	}
}

func putFloat64s(p []byte, v []float64) {
	if hostLittleEndian {
		copy(p, bytesOf(v))
		return
	}
	for i, x := range v {
		binary.LittleEndian.PutUint64(p[8*i:], math.Float64bits(x))
	}
}

// WriteFile encodes the snapshot and writes it atomically: a temporary
// file in the destination directory, fsync'd, then renamed into place,
// so readers (and the CI cache) never observe a torn snapshot. It runs
// the deep Verify pass first — the encoder pays the O(m) content check
// once so every subsequent Load can trust the checksummed bytes
// without repeating it.
func WriteFile(path string, s *Snapshot) error {
	if err := Verify(s); err != nil {
		return err
	}
	data, err := s.Encode()
	if err != nil {
		return err
	}
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
