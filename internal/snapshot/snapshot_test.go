package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"popgraph/internal/core"
	"popgraph/internal/graph"
	"popgraph/internal/xrand"
)

// familyGraphs builds one representative of every graph family the
// spec grammar can produce, deterministic generators seeded fixed.
func familyGraphs(t *testing.T) map[string]graph.Graph {
	t.Helper()
	r := xrand.New(99)
	gnp, err := graph.Gnp(64, 0.12, r)
	if err != nil {
		t.Fatalf("gnp: %v", err)
	}
	ws, err := graph.WattsStrogatz(128, 6, 0.2, r)
	if err != nil {
		t.Fatalf("ws: %v", err)
	}
	ba, err := graph.BarabasiAlbert(100, 3, r)
	if err != nil {
		t.Fatalf("ba: %v", err)
	}
	reg, err := graph.RandomRegular(32, 3, r)
	if err != nil {
		t.Fatalf("regular: %v", err)
	}
	dense, err := graph.NewDense(5, []graph.Edge{
		{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 3}, {U: 3, W: 4}, {U: 4, W: 0}, {U: 0, W: 2},
	}, "pentagon+chord")
	if err != nil {
		t.Fatalf("dense: %v", err)
	}
	return map[string]graph.Graph{
		"clique":    graph.NewClique(23), // implicit; materialized by Build
		"dense":     dense,
		"cycle":     graph.Cycle(17),
		"path":      graph.Path(9),
		"star":      graph.Star(12),
		"torus":     graph.Torus2D(4, 5),
		"grid":      graph.Grid2D(3, 4),
		"hypercube": graph.Hypercube(4),
		"lollipop":  graph.Lollipop(8, 5),
		"barbell":   graph.Barbell(5, 4),
		"gnp":       gnp,
		"ws":        ws,
		"ba":        ba,
		"regular":   reg,
	}
}

// mustRoundTrip encodes and re-decodes s, failing the test on error.
func mustRoundTrip(t *testing.T, s *Snapshot) *Snapshot {
	t.Helper()
	data, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return got
}

// assertSameCSR requires the two Dense graphs to hold identical CSR
// arrays — the property that makes loaded-graph runs byte-identical.
func assertSameCSR(t *testing.T, want, got *graph.Dense) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() || got.Name() != want.Name() {
		t.Fatalf("got n=%d m=%d name=%q, want n=%d m=%d name=%q",
			got.N(), got.M(), got.Name(), want.N(), want.M(), want.Name())
	}
	wOff, wAdj := want.CSR()
	gOff, gAdj := got.CSR()
	for i := range wOff {
		if gOff[i] != wOff[i] {
			t.Fatalf("offsets[%d] = %d, want %d", i, gOff[i], wOff[i])
		}
	}
	for i := range wAdj {
		if gAdj[i] != wAdj[i] {
			t.Fatalf("adj[%d] = %d, want %d", i, gAdj[i], wAdj[i])
		}
	}
	wEdges, gEdges := want.PackedEdges(), got.PackedEdges()
	for i := range wEdges {
		if gEdges[i] != wEdges[i] {
			t.Fatalf("edges[%d] = %d, want %d", i, gEdges[i], wEdges[i])
		}
	}
	if got.KnownDiameter() != want.KnownDiameter() {
		t.Fatalf("diameter = %d, want %d", got.KnownDiameter(), want.KnownDiameter())
	}
}

func TestRoundTripFamilies(t *testing.T) {
	for name, g := range familyGraphs(t) {
		t.Run(name, func(t *testing.T) {
			s, err := Build(g, "spec:"+name)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			got := mustRoundTrip(t, s)
			assertSameCSR(t, s.Graph, got.Graph)
			if err := Verify(got); err != nil {
				t.Fatalf("Verify on a round-tripped snapshot: %v", err)
			}
			if got.Source != "spec:"+name {
				t.Fatalf("source %q, want %q", got.Source, "spec:"+name)
			}
			if Of(got.Graph) != got {
				t.Fatalf("decoded graph does not carry its snapshot as Aux")
			}
			if Of(g) != nil && Of(g) == got {
				t.Fatalf("original graph aliases the decoded snapshot")
			}
		})
	}
}

// TestRoundTripAliasDraws pins the determinism contract for weights:
// the revived alias table replays the exact draw sequence of the one
// built in process.
func TestRoundTripAliasDraws(t *testing.T) {
	r := xrand.New(7)
	g, err := graph.WattsStrogatz(256, 6, 0.3, r)
	if err != nil {
		t.Fatalf("ws: %v", err)
	}
	s, err := Build(g, "ws:256:6:0.3")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rates := make([]float64, g.M())
	for i := range rates {
		rates[i] = -math.Log(1 - r.Float64())
	}
	if err := s.AddWeights("exp", rates); err != nil {
		t.Fatalf("AddWeights: %v", err)
	}
	got := mustRoundTrip(t, s)
	set := got.WeightSet("exp")
	if set == nil {
		t.Fatalf("weight set %q lost in round trip", "exp")
	}
	for i := range rates {
		if set.Rates[i] != rates[i] {
			t.Fatalf("rates[%d] = %v, want %v", i, set.Rates[i], rates[i])
		}
	}
	rA, rB := xrand.New(123), xrand.New(123)
	for i := 0; i < 4096; i++ {
		if a, b := s.Weights[0].Alias.Sample(rA), set.Alias.Sample(rB); a != b {
			t.Fatalf("alias draw %d: original %d, revived %d", i, a, b)
		}
	}
}

// sixStateTable builds the six-state protocol's compiled table via the
// same probe generation the protocol itself uses, without importing the
// protocol package (snapshot must stay below protocols in the import
// graph).
func sixStateTable(t *testing.T) *core.TransitionTable {
	t.Helper()
	tab, err := core.NewTransitionTable(6,
		func(a, b uint8) (uint8, uint8) {
			na, nb := core.TokenTransition(core.TokenState(a), core.TokenState(b))
			return uint8(na), uint8(nb)
		},
		func(s uint8) core.Role { return core.TokenState(s).Role() },
		func(s uint8) int {
			if tok := core.TokenState(s).Token(); tok == core.TokenBlack || tok == core.TokenWhite {
				return 1
			}
			return 0
		},
		1)
	if err != nil {
		t.Fatalf("NewTransitionTable: %v", err)
	}
	return tab
}

func TestRoundTripTables(t *testing.T) {
	s, err := Build(graph.Cycle(8), "cycle:8")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	want := sixStateTable(t)
	if err := s.AddTable("six-state", want); err != nil {
		t.Fatalf("AddTable: %v", err)
	}
	got := mustRoundTrip(t, s).Table("six-state")
	if got == nil {
		t.Fatalf("table lost in round trip")
	}
	if got.K() != want.K() || got.GapTarget() != want.GapTarget() {
		t.Fatalf("k=%d target=%d, want k=%d target=%d", got.K(), got.GapTarget(), want.K(), want.GapTarget())
	}
	wc, gc := want.Cells(), got.Cells()
	for i := range wc {
		if gc[i] != wc[i] {
			t.Fatalf("cell %d = %#x, want %#x", i, gc[i], wc[i])
		}
	}
	for st := 0; st < want.K(); st++ {
		if got.Role(uint8(st)) != want.Role(uint8(st)) || got.GapWeight(uint8(st)) != want.GapWeight(uint8(st)) {
			t.Fatalf("state %d role/weight mismatch", st)
		}
	}
}

// encodeFixture returns a valid snapshot buffer with one weight set and
// one table, plus its source snapshot, for the corruption tests.
func encodeFixture(t *testing.T) []byte {
	t.Helper()
	r := xrand.New(3)
	g, err := graph.WattsStrogatz(64, 4, 0.2, r)
	if err != nil {
		t.Fatalf("ws: %v", err)
	}
	s, err := Build(g, "ws:64:4:0.2")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rates := make([]float64, g.M())
	for i := range rates {
		rates[i] = 1 + float64(i%7)
	}
	if err := s.AddWeights("exp", rates); err != nil {
		t.Fatalf("AddWeights: %v", err)
	}
	if err := s.AddTable("six-state", sixStateTable(t)); err != nil {
		t.Fatalf("AddTable: %v", err)
	}
	data, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return data
}

// findSection locates the first section of the given kind and returns
// its index, offset and length.
func findSection(t *testing.T, data []byte, kind uint32) (idx int, offset, length int) {
	t.Helper()
	count := int(binary.LittleEndian.Uint32(data[20:]))
	for i := 0; i < count; i++ {
		e := data[headerSize+sectionEntrySize*i:]
		if binary.LittleEndian.Uint32(e[0:]) == kind {
			return i, int(binary.LittleEndian.Uint64(e[8:])), int(binary.LittleEndian.Uint64(e[16:]))
		}
	}
	t.Fatalf("no section of kind %d", kind)
	return 0, 0, 0
}

// fixCRC recomputes section idx's checksum after a payload patch, so a
// test reaches the validation layer it targets instead of tripping the
// checksum first.
func fixCRC(data []byte, idx int) {
	e := data[headerSize+sectionEntrySize*idx:]
	off := binary.LittleEndian.Uint64(e[8:])
	length := binary.LittleEndian.Uint64(e[16:])
	crc := crc32.Checksum(data[off:off+length], castagnoli)
	binary.LittleEndian.PutUint32(e[4:], crc)
}

func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(t *testing.T, data []byte) []byte
		wantErr error
	}{
		{"empty", func(t *testing.T, data []byte) []byte {
			return nil
		}, ErrNotSnapshot},
		{"foreign-data", func(t *testing.T, data []byte) []byte {
			copy(data, "GIF89a-definitely-not-a-snapshot")
			return data
		}, ErrNotSnapshot},
		{"older-version", func(t *testing.T, data []byte) []byte {
			copy(data[:16], "popgraph-snap/v0")
			return data
		}, ErrVersion},
		{"future-version", func(t *testing.T, data []byte) []byte {
			copy(data[:16], "popgraph-snap/v2")
			return data
		}, ErrVersion},
		{"truncated-header", func(t *testing.T, data []byte) []byte {
			return data[:20]
		}, ErrCorrupt},
		{"truncated-payload", func(t *testing.T, data []byte) []byte {
			return data[:len(data)-8]
		}, ErrCorrupt},
		{"trailing-garbage", func(t *testing.T, data []byte) []byte {
			return append(data, 0, 0, 0, 0, 0, 0, 0, 0)
		}, ErrCorrupt},
		{"flipped-payload-bit", func(t *testing.T, data []byte) []byte {
			_, off, _ := findSection(t, data, kindAdj)
			data[off] ^= 0x01
			return data
		}, ErrCorrupt},
		{"section-out-of-bounds", func(t *testing.T, data []byte) []byte {
			idx, _, _ := findSection(t, data, kindEdges)
			e := data[headerSize+sectionEntrySize*idx:]
			binary.LittleEndian.PutUint64(e[16:], uint64(len(data)))
			return data
		}, ErrCorrupt},
		{"misaligned-section", func(t *testing.T, data []byte) []byte {
			idx, off, _ := findSection(t, data, kindEdges)
			e := data[headerSize+sectionEntrySize*idx:]
			binary.LittleEndian.PutUint64(e[8:], uint64(off)+4)
			return data
		}, ErrCorrupt},
		{"connectivity-flag-cleared", func(t *testing.T, data []byte) []byte {
			binary.LittleEndian.PutUint32(data[16:], 0)
			return data
		}, ErrCorrupt},
		{"offsets-nonmonotone", func(t *testing.T, data []byte) []byte {
			idx, off, _ := findSection(t, data, kindOffsets)
			v := binary.LittleEndian.Uint32(data[off+8:])
			binary.LittleEndian.PutUint32(data[off+8:], v+1000000)
			fixCRC(data, idx)
			return data
		}, ErrCorrupt},
		{"alias-prob-above-one", func(t *testing.T, data []byte) []byte {
			idx, off, length := findSection(t, data, kindWeights)
			p := data[off : off+length]
			m := int(binary.LittleEndian.Uint64(p[0:]))
			nameLen := int(binary.LittleEndian.Uint32(p[8:]))
			probOff := align8(16+nameLen) + 8*m
			binary.LittleEndian.PutUint64(p[probOff:], math.Float64bits(2.0))
			fixCRC(data, idx)
			return data
		}, ErrCorrupt},
		{"negative-rate", func(t *testing.T, data []byte) []byte {
			idx, off, _ := findSection(t, data, kindWeights)
			p := data[off:]
			nameLen := int(binary.LittleEndian.Uint32(p[8:]))
			binary.LittleEndian.PutUint64(p[align8(16+nameLen):], math.Float64bits(-1.0))
			fixCRC(data, idx)
			return data
		}, ErrCorrupt},
		{"table-cell-mismatch", func(t *testing.T, data []byte) []byte {
			idx, off, _ := findSection(t, data, kindTable)
			p := data[off:]
			nameLen := int(binary.LittleEndian.Uint32(p[4:]))
			cellOff := (16 + nameLen + 3) &^ 3
			c := binary.LittleEndian.Uint32(p[cellOff:])
			binary.LittleEndian.PutUint32(p[cellOff:], c^0x10000)
			fixCRC(data, idx)
			return data
		}, ErrCorrupt},
		{"unknown-section-kind", func(t *testing.T, data []byte) []byte {
			idx, _, _ := findSection(t, data, kindWeights)
			e := data[headerSize+sectionEntrySize*idx:]
			binary.LittleEndian.PutUint32(e[0:], 99)
			return data
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(t, encodeFixture(t))
			_, err := Decode(data)
			if err == nil {
				t.Fatalf("Decode accepted %s data", tc.name)
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Decode error %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestVerifyRejects covers the deep validation tier: content
// corruptions whose checksums have been recomputed pass Decode (the
// container and structural checks can't see them) but must be caught
// by the O(m) Verify pass the encoder runs before every WriteFile.
func TestVerifyRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(t *testing.T, data []byte) []byte
	}{
		{"adjacency-out-of-range", func(t *testing.T, data []byte) []byte {
			idx, off, _ := findSection(t, data, kindAdj)
			binary.LittleEndian.PutUint32(data[off:], 1<<20)
			fixCRC(data, idx)
			return data
		}},
		{"adjacency-swapped-entries", func(t *testing.T, data []byte) []byte {
			idx, off, _ := findSection(t, data, kindAdj)
			a := binary.LittleEndian.Uint32(data[off:])
			b := binary.LittleEndian.Uint32(data[off+4:])
			binary.LittleEndian.PutUint32(data[off:], b)
			binary.LittleEndian.PutUint32(data[off+4:], a)
			fixCRC(data, idx)
			return data
		}},
		{"edges-unsorted", func(t *testing.T, data []byte) []byte {
			idx, off, _ := findSection(t, data, kindEdges)
			a := binary.LittleEndian.Uint64(data[off:])
			b := binary.LittleEndian.Uint64(data[off+8:])
			binary.LittleEndian.PutUint64(data[off:], b)
			binary.LittleEndian.PutUint64(data[off+8:], a)
			fixCRC(data, idx)
			return data
		}},
		{"alias-disagrees-with-rates", func(t *testing.T, data []byte) []byte {
			idx, off, length := findSection(t, data, kindWeights)
			p := data[off : off+length]
			m := int(binary.LittleEndian.Uint64(p[0:]))
			nameLen := int(binary.LittleEndian.Uint32(p[8:]))
			probOff := align8(16+nameLen) + 8*m
			v := math.Float64frombits(binary.LittleEndian.Uint64(p[probOff:]))
			binary.LittleEndian.PutUint64(p[probOff:], math.Float64bits(v/2))
			fixCRC(data, idx)
			return data
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(t, encodeFixture(t))
			s, err := Decode(data)
			if err != nil {
				t.Fatalf("Decode rejected %s data (%v); the corruption should only be visible to Verify", tc.name, err)
			}
			if err := Verify(s); err == nil {
				t.Fatalf("Verify accepted %s data", tc.name)
			} else if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Verify error %v, want %v", err, ErrCorrupt)
			}
		})
	}
}

// TestDecodePortablePath forces the element-by-element decode (the
// big-endian / misaligned-buffer fallback) and requires it to produce
// the same graph as the zero-copy path.
func TestDecodePortablePath(t *testing.T) {
	data := encodeFixture(t)
	want, err := Decode(append([]byte(nil), data...))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	got, err := decode(append([]byte(nil), data...), false)
	if err != nil {
		t.Fatalf("portable decode: %v", err)
	}
	assertSameCSR(t, want.Graph, got.Graph)
	rA, rB := xrand.New(5), xrand.New(5)
	for i := 0; i < 1024; i++ {
		if a, b := want.Weights[0].Alias.Sample(rA), got.Weights[0].Alias.Sample(rB); a != b {
			t.Fatalf("alias draw %d differs between decode paths", i)
		}
	}
}

func TestWriteFileLoadAndMmap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.popg")
	r := xrand.New(11)
	g, err := graph.BarabasiAlbert(200, 3, r)
	if err != nil {
		t.Fatalf("ba: %v", err)
	}
	s, err := Build(g, "ba:200:3")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := WriteFile(path, s); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	assertSameCSR(t, g, loaded.Graph)
	mapped, err := LoadMmap(path)
	if err != nil {
		t.Fatalf("LoadMmap: %v", err)
	}
	assertSameCSR(t, g, mapped.Graph)

	// WriteFile is atomic: no temp files survive a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 1 || entries[0].Name() != "g.popg" {
		t.Fatalf("directory holds %d entries after WriteFile, want just g.popg", len(entries))
	}
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.popg")
	data := encodeFixture(t)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	info, err := Inspect(path)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if info.N != 64 || info.M != 128 || !info.Connected {
		t.Fatalf("Inspect n=%d m=%d connected=%v, want 64/128/true", info.N, info.M, info.Connected)
	}
	if info.Source != "ws:64:4:0.2" {
		t.Fatalf("Inspect source %q", info.Source)
	}
	if len(info.Sections) != 6 {
		t.Fatalf("Inspect found %d sections, want 6", len(info.Sections))
	}
	wantKinds := []string{"meta", "csr-offsets", "csr-adjacency", "packed-edges", "weights", "transition-table"}
	for i, k := range wantKinds {
		if info.Sections[i].Kind != k {
			t.Fatalf("section %d kind %q, want %q", i, info.Sections[i].Kind, k)
		}
	}
	if info.Sections[4].Name != "exp" || info.Sections[5].Name != "six-state" {
		t.Fatalf("artifact names %q/%q, want exp/six-state", info.Sections[4].Name, info.Sections[5].Name)
	}
}

// TestBuildRejects covers Build/Add* input validation.
func TestBuildRejects(t *testing.T) {
	s, err := Build(graph.Cycle(6), "cycle:6")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := s.AddWeights("", []float64{1}); err == nil {
		t.Fatalf("AddWeights accepted an empty name")
	}
	if err := s.AddWeights("short", []float64{1}); err == nil {
		t.Fatalf("AddWeights accepted %d rates for %d edges", 1, s.Graph.M())
	}
	if err := s.AddWeights("exp", make([]float64, s.Graph.M())); err == nil {
		t.Fatalf("AddWeights accepted all-zero rates")
	}
	ones := make([]float64, s.Graph.M())
	for i := range ones {
		ones[i] = 1
	}
	if err := s.AddWeights("exp", ones); err != nil {
		t.Fatalf("AddWeights: %v", err)
	}
	if err := s.AddWeights("exp", ones); err == nil {
		t.Fatalf("AddWeights accepted a duplicate name")
	}
	if err := s.AddTable("exp", sixStateTable(t)); err == nil {
		t.Fatalf("AddTable accepted a name already used by a weight set")
	}
	if err := s.AddTable("six-state", nil); err == nil {
		t.Fatalf("AddTable accepted a nil table")
	}
}
