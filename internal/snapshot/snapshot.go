// Package snapshot defines the popgraph-snap/v1 binary container: a
// graph in CSR form plus its prebuilt companion artifacts — per-edge
// weight sets with their Walker–Vose alias tables and compiled
// transition tables — serialized as 8-byte-aligned little-endian slabs
// so a preprocessed graph loads with one read and a handful of
// slice-header casts instead of being regenerated per process.
//
// # Container layout
//
// A snapshot is a 48-byte header, a section table, and checksummed
// payloads:
//
//	[0,16)   magic "popgraph-snap/v1" (the version lives in the magic)
//	[16,20)  uint32 flags (bit 0: graph verified connected at encode)
//	[20,24)  uint32 section count
//	[24,32)  uint64 total file size
//	[32,40)  int64  known diameter (-1 = unknown)
//	[40,48)  reserved, zero
//
// followed by count 32-byte section entries (kind, CRC-32C checksum of
// the payload, offset, length, reserved) and then the payloads. Every
// payload starts at an 8-byte-aligned offset, and slab fields inside a
// payload (rates, probabilities, packed edges) are laid out so their
// offsets are also 8-aligned — the invariant that lets the decoder on
// a little-endian host alias []float64/[]int64/[]int32 views straight
// into the read buffer. Hosts where that cast is unsound (big-endian,
// or a misaligned buffer) take a portable element-by-element decode of
// the same bytes; both paths produce identical values.
//
// # Determinism
//
// The encoder serializes the exact arrays the simulator executes on
// (graph.Dense's CSR slices, xrand.Alias columns, core.TransitionTable
// cells), and the decoder revives them through fully validating
// constructors (graph.NewDenseFromCSR, xrand.AliasFromColumns,
// core.TableFromParts). A loaded graph is therefore a *graph.Dense
// indistinguishable from the generator-built original — same packed
// edge order, same alias draw sequence, same kernel selection — so a
// run on it is byte-identical to a run on the original (the
// TestPlanEquivalenceMatrix source axis in internal/sim holds the
// contract). Connectivity is verified once at encode time and recorded
// in the header flag under the checksum; the decoder trusts the flag
// instead of re-running BFS, which is what keeps loading O(n+m) scans
// with no graph traversal.
package snapshot

import (
	"fmt"
	"math"

	"popgraph/internal/core"
	"popgraph/internal/graph"
	"popgraph/internal/xrand"
)

// Magic identifies the container format and version; the version is
// part of the magic string, so a future v2 is a different magic and a
// v1 decoder refuses it with ErrVersion rather than misparsing it.
const Magic = "popgraph-snap/v1"

// magicPrefix is the version-independent part of the magic, used to
// distinguish "other snapshot version" from "not a snapshot at all".
const magicPrefix = "popgraph-snap/v"

const (
	headerSize       = 48
	sectionEntrySize = 32

	flagConnected = 1 << 0

	kindMeta    = 1
	kindOffsets = 2
	kindAdj     = 3
	kindEdges   = 4
	kindWeights = 5
	kindTable   = 6

	// maxSections bounds the section table so a corrupt count cannot
	// drive a huge allocation before checksums are consulted.
	maxSections = 1024
)

// kindName names a section kind for Inspect output and error messages.
func kindName(kind uint32) string {
	switch kind {
	case kindMeta:
		return "meta"
	case kindOffsets:
		return "csr-offsets"
	case kindAdj:
		return "csr-adjacency"
	case kindEdges:
		return "packed-edges"
	case kindWeights:
		return "weights"
	case kindTable:
		return "transition-table"
	}
	return fmt.Sprintf("unknown(%d)", kind)
}

// Snapshot is a decoded (or to-be-encoded) container: the graph and
// its optional prebuilt artifacts. Decoded snapshots attach themselves
// to their graph (see Of), which is how ParseScheduler and protocol
// factories find the preloaded artifacts for a file:-loaded graph.
type Snapshot struct {
	// Graph is the CSR graph. After Decode it is a fully validated
	// *graph.Dense carrying this snapshot as its Aux.
	Graph *graph.Dense
	// Source records the generator spec the graph was built from
	// (informational provenance, e.g. "ws:1000000:10:0.1").
	Source string
	// Weights are named per-edge rate vectors with their prebuilt alias
	// tables, in ForEachEdge (= PackedEdges) order.
	Weights []WeightSet
	// Tables are named compiled transition tables.
	Tables []Table
}

// WeightSet is one named per-edge weight vector plus the alias table
// built over it; sim.NewWeightedFromAlias consumes the pair directly.
type WeightSet struct {
	Name  string
	Rates []float64
	Alias *xrand.Alias
}

// Table is one named compiled transition table.
type Table struct {
	Name  string
	Table *core.TransitionTable
}

// Build starts a snapshot of g. A *graph.Dense is snapshotted as-is;
// any other implementation (the implicit Clique) is materialized into
// an explicit CSR first — note that a materialized clique runs on the
// CSR kernels after reload, whose random stream differs from the
// implicit-clique kernel's, so byte-identity to generator runs holds
// for graphs that are Dense to begin with. source records the
// generator spec for provenance.
func Build(g graph.Graph, source string) (*Snapshot, error) {
	d, ok := g.(*graph.Dense)
	if !ok {
		edges := make([]graph.Edge, 0, g.M())
		g.ForEachEdge(func(u, w int) {
			edges = append(edges, graph.Edge{U: int32(u), W: int32(w)})
		})
		var err error
		d, err = graph.NewDense(g.N(), edges, g.Name())
		if err != nil {
			return nil, fmt.Errorf("snapshot: materializing %q: %w", g.Name(), err)
		}
	}
	return &Snapshot{Graph: d, Source: source}, nil
}

// AddWeights builds the alias table over rates (one finite nonnegative
// rate per edge in ForEachEdge order, positive sum) and adds the named
// weight set. Names must be nonempty and unique within the snapshot.
func (s *Snapshot) AddWeights(name string, rates []float64) error {
	if err := s.checkName(name); err != nil {
		return err
	}
	if len(rates) != s.Graph.M() {
		return fmt.Errorf("snapshot: weight set %q: %d rates for %d edges", name, len(rates), s.Graph.M())
	}
	alias, err := xrand.NewAlias(rates)
	if err != nil {
		return fmt.Errorf("snapshot: weight set %q: %w", name, err)
	}
	s.Weights = append(s.Weights, WeightSet{Name: name, Rates: rates, Alias: alias})
	return nil
}

// AddTable adds a named compiled transition table. Names must be
// nonempty and unique within the snapshot.
func (s *Snapshot) AddTable(name string, t *core.TransitionTable) error {
	if err := s.checkName(name); err != nil {
		return err
	}
	if t == nil {
		return fmt.Errorf("snapshot: table %q is nil", name)
	}
	s.Tables = append(s.Tables, Table{Name: name, Table: t})
	return nil
}

// checkName rejects empty, oversized and duplicate artifact names.
func (s *Snapshot) checkName(name string) error {
	if name == "" {
		return fmt.Errorf("snapshot: artifact name must be nonempty")
	}
	if len(name) > math.MaxUint16 {
		return fmt.Errorf("snapshot: artifact name %.32q... too long", name)
	}
	for _, w := range s.Weights {
		if w.Name == name {
			return fmt.Errorf("snapshot: duplicate artifact name %q", name)
		}
	}
	for _, t := range s.Tables {
		if t.Name == name {
			return fmt.Errorf("snapshot: duplicate artifact name %q", name)
		}
	}
	return nil
}

// WeightSet returns the named weight set, or nil.
func (s *Snapshot) WeightSet(name string) *WeightSet {
	for i := range s.Weights {
		if s.Weights[i].Name == name {
			return &s.Weights[i]
		}
	}
	return nil
}

// Table returns the named transition table, or nil.
func (s *Snapshot) Table(name string) *core.TransitionTable {
	for i := range s.Tables {
		if t := &s.Tables[i]; t.Name == name {
			return t.Table
		}
	}
	return nil
}

// Of returns the snapshot a loader attached to g (Decode attaches one
// to every graph it revives), or nil for graphs built in-process. This
// is the seam ParseScheduler and the protocol factories use to consume
// preloaded artifacts instead of rebuilding them.
func Of(g graph.Graph) *Snapshot {
	d, ok := g.(*graph.Dense)
	if !ok {
		return nil
	}
	s, _ := d.Aux().(*Snapshot)
	return s
}
