//go:build linux

package snapshot

import (
	"fmt"
	"os"
	"syscall"
)

// LoadMmap maps the snapshot at path read-only and decodes it in
// place — the opt-in giant-graph path (the mmap: graph spec): the
// kernel shares pages across processes loading the same catalog, and
// nothing is copied on the way to the simulator (mappings are
// page-aligned, so the zero-copy decode always engages on
// little-endian hosts). MAP_POPULATE pre-faults the mapping in one
// syscall — the checksum pass touches every page immediately anyway,
// and batch population is far cheaper than ~250 fault traps per
// megabyte. The mapping stays alive as long as the process runs, since
// the decoded graph aliases it; loaders that want bounded address
// space should use Load.
func LoadMmap(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() <= 0 || st.Size() > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("%s: snapshot: unmappable size %d: %w", path, st.Size(), ErrCorrupt)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ,
		syscall.MAP_PRIVATE|syscall.MAP_POPULATE)
	if err != nil {
		return nil, fmt.Errorf("%s: mmap: %w", path, err)
	}
	s, err := Decode(data)
	if err != nil {
		syscall.Munmap(data)
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
