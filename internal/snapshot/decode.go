// Snapshot decoding: parse and bounds-check the container, verify
// every payload checksum, then revive the graph and its artifacts. On
// a little-endian host with an 8-aligned buffer the bulk slabs (CSR
// arrays, packed edges, rates, alias columns) are aliased straight out
// of the read buffer — zero copies, zero per-element work; otherwise
// the same bytes are decoded element by element. Both paths feed
// identical values through identical validation.
//
// Validation is tiered by cost. Decode always checks the container
// (magic, size, section bounds and alignment, CRC-32C of every
// payload) and the O(n) structural invariants (meta consistency,
// section lengths, offsets monotone with correct endpoints,
// connectivity flag, finite nonnegative rates, alias column sanity,
// table re-derivation). The O(m) content checks — adjacency entries in
// range and exactly consistent with the packed edge list — live in
// Verify, which the encoder runs once after writing (WriteFile
// callers) rather than every loader on every start: on a
// memory-bandwidth-bound machine each O(m) scan costs as much as the
// checksum pass itself, and the checksum already pins the bytes to
// what the encoder verified. A crafted file with recomputed checksums
// but inconsistent content is therefore accepted by Decode and caught
// by Verify; in between, Go bounds checks turn any out-of-range
// adjacency into an index panic, never memory corruption.

package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"unsafe"

	"popgraph/internal/core"
	"popgraph/internal/graph"
	"popgraph/internal/xrand"
)

// Decode errors. Every decode failure wraps one of these, so callers
// can distinguish "not ours" from "ours but damaged" from "ours but
// newer".
var (
	// ErrNotSnapshot marks data that does not start with the snapshot
	// magic at all.
	ErrNotSnapshot = errors.New("not a popgraph snapshot")
	// ErrVersion marks a container of a different snapshot version.
	ErrVersion = errors.New("unsupported snapshot version")
	// ErrCorrupt marks a structurally damaged container: truncated,
	// failing a checksum, out-of-bounds sections, invalid CSR.
	ErrCorrupt = errors.New("corrupt snapshot")
)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("snapshot: %s: %w", fmt.Sprintf(format, args...), ErrCorrupt)
}

// Load reads and decodes the snapshot at path.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Decode parses a snapshot from data. On little-endian hosts with an
// 8-aligned buffer the big slabs alias data directly — the caller must
// not mutate data afterwards; other hosts get a portable copy.
func Decode(data []byte) (*Snapshot, error) {
	zeroCopy := hostLittleEndian &&
		(len(data) == 0 || uintptr(unsafe.Pointer(&data[0]))%8 == 0)
	return decode(data, zeroCopy)
}

// parseContainer validates the header and section table: magic,
// version, size, section bounds, alignment and checksums. It returns
// the section entries; payload interpretation is the caller's.
func parseContainer(data []byte) (flags uint32, diam int64, sections []section, err error) {
	if len(data) < headerSize {
		if len(data) >= len(magicPrefix) && string(data[:len(magicPrefix)]) == magicPrefix {
			return 0, 0, nil, corruptf("truncated header (%d bytes)", len(data))
		}
		return 0, 0, nil, fmt.Errorf("snapshot: %w", ErrNotSnapshot)
	}
	if magic := string(data[0:16]); magic != Magic {
		if string(data[:len(magicPrefix)]) == magicPrefix {
			return 0, 0, nil, fmt.Errorf("snapshot: magic %q (this build reads %q): %w", magic, Magic, ErrVersion)
		}
		return 0, 0, nil, fmt.Errorf("snapshot: %w", ErrNotSnapshot)
	}
	flags = binary.LittleEndian.Uint32(data[16:])
	count := binary.LittleEndian.Uint32(data[20:])
	size := binary.LittleEndian.Uint64(data[24:])
	diam = int64(binary.LittleEndian.Uint64(data[32:]))
	if size != uint64(len(data)) {
		return 0, 0, nil, corruptf("header claims %d bytes, have %d", size, len(data))
	}
	if count > maxSections {
		return 0, 0, nil, corruptf("%d sections exceed the %d-section cap", count, maxSections)
	}
	tableEnd := headerSize + sectionEntrySize*int(count)
	if tableEnd > len(data) {
		return 0, 0, nil, corruptf("section table (%d entries) overruns the file", count)
	}
	sections = make([]section, count)
	for i := range sections {
		e := data[headerSize+sectionEntrySize*i:]
		sec := section{
			kind:   binary.LittleEndian.Uint32(e[0:]),
			crc:    binary.LittleEndian.Uint32(e[4:]),
			offset: binary.LittleEndian.Uint64(e[8:]),
			length: binary.LittleEndian.Uint64(e[16:]),
		}
		if sec.offset%8 != 0 {
			return 0, 0, nil, corruptf("%s section at unaligned offset %d", kindName(sec.kind), sec.offset)
		}
		if sec.offset < uint64(tableEnd) || sec.offset > uint64(len(data)) ||
			sec.length > uint64(len(data))-sec.offset {
			return 0, 0, nil, corruptf("%s section [%d, +%d) out of bounds (file size %d)",
				kindName(sec.kind), sec.offset, sec.length, len(data))
		}
		if got := crc32.Checksum(data[sec.offset:sec.offset+sec.length], castagnoli); got != sec.crc {
			return 0, 0, nil, corruptf("%s section checksum %08x, want %08x", kindName(sec.kind), got, sec.crc)
		}
		sections[i] = sec
	}
	return flags, diam, sections, nil
}

func decode(data []byte, zeroCopy bool) (*Snapshot, error) {
	flags, diam, sections, err := parseContainer(data)
	if err != nil {
		return nil, err
	}
	if flags&flagConnected == 0 {
		return nil, corruptf("connectivity flag not set (v1 stores connected graphs only)")
	}
	var meta, offs, adjs, edgs *section
	var weights, tables []section
	for i := range sections {
		sec := &sections[i]
		grab := func(slot **section) error {
			if *slot != nil {
				return corruptf("duplicate %s section", kindName(sec.kind))
			}
			*slot = sec
			return nil
		}
		switch sec.kind {
		case kindMeta:
			err = grab(&meta)
		case kindOffsets:
			err = grab(&offs)
		case kindAdj:
			err = grab(&adjs)
		case kindEdges:
			err = grab(&edgs)
		case kindWeights:
			weights = append(weights, *sec)
		case kindTable:
			tables = append(tables, *sec)
		default:
			err = corruptf("unknown section kind %d", sec.kind)
		}
		if err != nil {
			return nil, err
		}
	}
	if meta == nil || offs == nil || adjs == nil || edgs == nil {
		return nil, corruptf("missing required section (need meta, csr-offsets, csr-adjacency, packed-edges)")
	}

	n, m, name, source, err := decodeMeta(payload(data, meta))
	if err != nil {
		return nil, err
	}
	if offs.length != uint64(4*(n+1)) {
		return nil, corruptf("csr-offsets section is %d bytes for n=%d, want %d", offs.length, n, 4*(n+1))
	}
	if adjs.length != uint64(4*2*m) {
		return nil, corruptf("csr-adjacency section is %d bytes for m=%d, want %d", adjs.length, m, 4*2*m)
	}
	if edgs.length != uint64(8*m) {
		return nil, corruptf("packed-edges section is %d bytes for m=%d, want %d", edgs.length, m, 8*m)
	}
	offsets := int32Slab(payload(data, offs), zeroCopy)
	adj := int32Slab(payload(data, adjs), zeroCopy)
	edges := int64Slab(payload(data, edgs), zeroCopy)
	if diam < -1 || diam > math.MaxInt32 {
		return nil, corruptf("known diameter %d out of range", diam)
	}
	g, err := graph.NewDenseFromCSRTrusted(n, offsets, adj, edges, name, int(diam))
	if err != nil {
		return nil, fmt.Errorf("snapshot: %v: %w", err, ErrCorrupt)
	}

	s := &Snapshot{Graph: g, Source: source}
	for i := range weights {
		w, err := decodeWeights(payload(data, &weights[i]), m, zeroCopy)
		if err != nil {
			return nil, err
		}
		if s.WeightSet(w.Name) != nil {
			return nil, corruptf("duplicate weight set %q", w.Name)
		}
		s.Weights = append(s.Weights, w)
	}
	for i := range tables {
		t, err := decodeTable(payload(data, &tables[i]))
		if err != nil {
			return nil, err
		}
		if s.Table(t.Name) != nil {
			return nil, corruptf("duplicate table %q", t.Name)
		}
		s.Tables = append(s.Tables, t)
	}
	g.SetAux(s)
	return s, nil
}

func payload(data []byte, sec *section) []byte {
	return data[sec.offset : sec.offset+sec.length]
}

func decodeMeta(p []byte) (n, m int, name, source string, err error) {
	if len(p) < 24 {
		return 0, 0, "", "", corruptf("meta section truncated (%d bytes)", len(p))
	}
	n64 := binary.LittleEndian.Uint64(p[0:])
	m64 := binary.LittleEndian.Uint64(p[8:])
	nameLen := int(binary.LittleEndian.Uint32(p[16:]))
	sourceLen := int(binary.LittleEndian.Uint32(p[20:]))
	if n64 == 0 || n64 > math.MaxInt32 || m64 > math.MaxInt32 {
		return 0, 0, "", "", corruptf("meta claims n=%d, m=%d", n64, m64)
	}
	if nameLen > math.MaxUint16 || sourceLen > math.MaxUint16 || 24+nameLen+sourceLen != len(p) {
		return 0, 0, "", "", corruptf("meta string lengths (%d, %d) disagree with the %d-byte section",
			nameLen, sourceLen, len(p))
	}
	name = string(p[24 : 24+nameLen])
	source = string(p[24+nameLen:])
	return int(n64), int(m64), name, source, nil
}

// int32Slab interprets a little-endian u32 slab. The zero-copy alias
// reuses the buffer's memory; int32 and uint32 share representation,
// and out-of-range bit patterns surface as negative values the CSR
// validation rejects.
func int32Slab(p []byte, zeroCopy bool) []int32 {
	count := len(p) / 4
	if count == 0 {
		return nil
	}
	if zeroCopy {
		return unsafe.Slice((*int32)(unsafe.Pointer(&p[0])), count)
	}
	out := make([]int32, count)
	fillInt32(out, p)
	return out
}

func int64Slab(p []byte, zeroCopy bool) []int64 {
	count := len(p) / 8
	if count == 0 {
		return nil
	}
	if zeroCopy {
		return unsafe.Slice((*int64)(unsafe.Pointer(&p[0])), count)
	}
	out := make([]int64, count)
	fillInt64(out, p)
	return out
}

func float64Slab(p []byte, zeroCopy bool) []float64 {
	count := len(p) / 8
	if count == 0 {
		return nil
	}
	if zeroCopy {
		return unsafe.Slice((*float64)(unsafe.Pointer(&p[0])), count)
	}
	out := make([]float64, count)
	fillFloat64(out, p)
	return out
}

// The portable fill loops run once per element over slabs that reach
// tens of millions of entries on big-endian or misaligned hosts, so
// they are held to the same no-allocation discipline as the simulation
// kernels.

//popcheck:kernel
func fillInt32(dst []int32, p []byte) {
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(p[4*i:]))
	}
}

//popcheck:kernel
func fillInt64(dst []int64, p []byte) {
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(p[8*i:]))
	}
}

//popcheck:kernel
func fillFloat64(dst []float64, p []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
}

func decodeWeights(p []byte, m int, zeroCopy bool) (WeightSet, error) {
	if len(p) < 16 {
		return WeightSet{}, corruptf("weights section truncated (%d bytes)", len(p))
	}
	if em := binary.LittleEndian.Uint64(p[0:]); em != uint64(m) {
		return WeightSet{}, corruptf("weight set covers %d edges, graph has %d", em, m)
	}
	nameLen := int(binary.LittleEndian.Uint32(p[8:]))
	if nameLen == 0 || nameLen > math.MaxUint16 || len(p) != weightsPayloadSize(nameLen, m) {
		return WeightSet{}, corruptf("weights section is %d bytes, name length %d implies %d",
			len(p), nameLen, weightsPayloadSize(nameLen, m))
	}
	name := string(p[16 : 16+nameLen])
	off := align8(16 + nameLen)
	rates := float64Slab(p[off:off+8*m], zeroCopy)
	prob := float64Slab(p[off+8*m:off+16*m], zeroCopy)
	alias := int32Slab(p[off+16*m:off+16*m+4*m], zeroCopy)
	for i, r := range rates {
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			return WeightSet{}, corruptf("weight set %q rate %d is %v", name, i, r)
		}
	}
	a, err := xrand.AliasFromColumns(prob, alias)
	if err != nil {
		return WeightSet{}, corruptf("weight set %q: %v", name, err)
	}
	return WeightSet{Name: name, Rates: rates, Alias: a}, nil
}

func decodeTable(p []byte) (Table, error) {
	if len(p) < 16 {
		return Table{}, corruptf("table section truncated (%d bytes)", len(p))
	}
	k := int(binary.LittleEndian.Uint32(p[0:]))
	nameLen := int(binary.LittleEndian.Uint32(p[4:]))
	gapTarget := int64(binary.LittleEndian.Uint64(p[8:]))
	if k < 1 || k > core.MaxTableStates {
		return Table{}, corruptf("table has %d states, cap is %d", k, core.MaxTableStates)
	}
	if nameLen == 0 || nameLen > math.MaxUint16 || len(p) != tablePayloadSize(nameLen, k) {
		return Table{}, corruptf("table section is %d bytes, k=%d and name length %d imply %d",
			len(p), k, nameLen, tablePayloadSize(nameLen, k))
	}
	if gapTarget < math.MinInt32 || gapTarget > math.MaxInt32 {
		return Table{}, corruptf("table gap target %d out of range", gapTarget)
	}
	name := string(p[16 : 16+nameLen])
	off := (16 + nameLen + 3) &^ 3
	cells := make([]uint32, k*k)
	for i := range cells {
		cells[i] = binary.LittleEndian.Uint32(p[off+4*i:])
	}
	off += 4 * k * k
	roles := make([]core.Role, k)
	for s := 0; s < k; s++ {
		roles[s] = core.Role(p[off+s])
	}
	off = align8(off + k)
	gapW := make([]int, k)
	for s := 0; s < k; s++ {
		w := int64(binary.LittleEndian.Uint64(p[off+8*s:]))
		if w < math.MinInt32 || w > math.MaxInt32 {
			return Table{}, corruptf("table %q gap weight %d is %d, out of range", name, s, w)
		}
		gapW[s] = int(w)
	}
	t, err := core.TableFromParts(k, cells, roles, gapW, int(gapTarget))
	if err != nil {
		return Table{}, corruptf("table %q: %v", name, err)
	}
	return Table{Name: name, Table: t}, nil
}

// Verify runs the deep O(m) content checks Decode defers (see the
// package comment on tiered validation): the CSR triple must be
// internally consistent — adjacency in range, packed edges strictly
// ascending, adjacency exactly the cursor fill of the edge list — and
// every stored alias table must equal the one Vose's construction
// rebuilds from its own rates. WriteFile runs this before renaming the
// snapshot into place, so a .popg that exists was deep-verified at
// encode time; loaders that want to re-establish that guarantee for a
// file of unknown provenance (graphinfo -verify) call it explicitly.
func Verify(s *Snapshot) error {
	if err := s.Graph.VerifyCSR(); err != nil {
		return fmt.Errorf("snapshot: %v: %w", err, ErrCorrupt)
	}
	for i := range s.Weights {
		w := &s.Weights[i]
		want, err := xrand.NewAlias(w.Rates)
		if err != nil {
			return corruptf("weight set %q: %v", w.Name, err)
		}
		wantProb, wantAlias := want.Table()
		gotProb, gotAlias := w.Alias.Table()
		for j := range wantProb {
			if wantProb[j] != gotProb[j] || wantAlias[j] != gotAlias[j] {
				return corruptf("weight set %q: stored alias table disagrees with its rates at edge %d", w.Name, j)
			}
		}
	}
	return nil
}

// SectionInfo is one section-table row as Inspect reports it.
type SectionInfo struct {
	Kind     string
	Offset   uint64
	Length   uint64
	Checksum uint32
	// Name is the artifact name for weights and table sections, the
	// graph name for meta, empty otherwise.
	Name string
}

// Info is the container-level summary Inspect returns: everything
// cmd/graphinfo prints about a .popg file without reviving the graph.
type Info struct {
	Magic     string
	Connected bool
	N, M      int
	GraphName string
	Source    string
	Diameter  int64
	FileSize  int64
	Sections  []SectionInfo
}

// Inspect parses and checksums the container at path and reports its
// layout. It validates the container exactly like Decode but stops
// short of rebuilding the graph, so inspecting a multi-gigabyte
// snapshot stays cheap.
func Inspect(path string) (Info, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Info{}, err
	}
	flags, diam, sections, err := parseContainer(data)
	if err != nil {
		return Info{}, fmt.Errorf("%s: %w", path, err)
	}
	info := Info{
		Magic:     Magic,
		Connected: flags&flagConnected != 0,
		Diameter:  diam,
		FileSize:  int64(len(data)),
	}
	for i := range sections {
		sec := &sections[i]
		si := SectionInfo{
			Kind:     kindName(sec.kind),
			Offset:   sec.offset,
			Length:   sec.length,
			Checksum: sec.crc,
		}
		p := payload(data, sec)
		switch sec.kind {
		case kindMeta:
			n, m, name, source, err := decodeMeta(p)
			if err != nil {
				return Info{}, fmt.Errorf("%s: %w", path, err)
			}
			info.N, info.M, info.GraphName, info.Source = n, m, name, source
			si.Name = name
		case kindWeights:
			if len(p) >= 16 {
				if l := int(binary.LittleEndian.Uint32(p[8:])); 16+l <= len(p) {
					si.Name = string(p[16 : 16+l])
				}
			}
		case kindTable:
			if len(p) >= 16 {
				if l := int(binary.LittleEndian.Uint32(p[4:])); 16+l <= len(p) {
					si.Name = string(p[16 : 16+l])
				}
			}
		}
		info.Sections = append(info.Sections, si)
	}
	return info, nil
}
