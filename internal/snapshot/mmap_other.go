//go:build !linux

package snapshot

// LoadMmap degrades to a plain Load where memory mapping is not
// wired up; the mmap: graph spec stays portable, just without the
// page-sharing and lazy-fault-in advantages.
func LoadMmap(path string) (*Snapshot, error) { return Load(path) }
