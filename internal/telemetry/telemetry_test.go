package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// lcg is a tiny deterministic generator for test sample streams; the
// package under test must not depend on internal/xrand, and tests keep
// that property.
type lcg uint64

func (l *lcg) next() int64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return int64(uint64(*l) >> 11)
}

func TestBucketOfLo(t *testing.T) {
	cases := []struct {
		v int64
		b int
	}{{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 62, 63}}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.b {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.b)
		}
	}
	for i := 0; i < histBuckets; i++ {
		if lo := bucketLo(i); bucketOf(lo) != i && (i != 1 || lo != 1) {
			if bucketOf(lo) != i {
				t.Errorf("bucketOf(bucketLo(%d)) = %d, want %d", i, bucketOf(lo), i)
			}
		}
	}
}

// TestHistogramMergeOfPartsIsWhole is the core mergeability property:
// splitting a sample stream across k histograms and merging their
// snapshots yields exactly the snapshot of one histogram fed the whole
// stream, regardless of split or merge order.
func TestHistogramMergeOfPartsIsWhole(t *testing.T) {
	g := lcg(7)
	const n, parts = 10_000, 7
	var whole Histogram
	var shards [parts]Histogram
	for i := 0; i < n; i++ {
		v := g.next() % (1 << 40)
		if i%13 == 0 {
			v = 0 // exercise the non-positive bucket
		}
		whole.Observe(v)
		shards[i%parts].Observe(v)
	}
	merged := shards[0].Snapshot()
	for i := 1; i < parts; i++ {
		merged = merged.Merge(shards[i].Snapshot())
	}
	if want := whole.Snapshot(); !reflect.DeepEqual(merged, want) {
		t.Fatalf("merge of parts != whole:\n got %+v\nwant %+v", merged, want)
	}
}

func TestHistogramMergeEmptyIdentity(t *testing.T) {
	var h Histogram
	for _, v := range []int64{5, 90, 3000, 1} {
		h.Observe(v)
	}
	s := h.Snapshot()
	var zero HistSnapshot
	if got := s.Merge(zero); !reflect.DeepEqual(got, s) {
		t.Errorf("s.Merge(zero) = %+v, want %+v", got, s)
	}
	if got := zero.Merge(s); !reflect.DeepEqual(got, s) {
		t.Errorf("zero.Merge(s) = %+v, want %+v", got, s)
	}
	if got := zero.Merge(zero); !reflect.DeepEqual(got, zero) {
		t.Errorf("zero.Merge(zero) = %+v, want zero", got)
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 5050 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("stats: %+v", s)
	}
	if got := s.Mean(); got != 50.5 {
		t.Errorf("Mean = %v, want 50.5", got)
	}
	if q := s.Quantile(0); q < 1 || q > 2 {
		t.Errorf("Quantile(0) = %v, want ~min", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Errorf("Quantile(1) = %v, want clamped to max 100", q)
	}
	if q := s.Quantile(0.5); q < 32 || q > 64 {
		t.Errorf("Quantile(0.5) = %v, want within the [32,64) bucket", q)
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 || (HistSnapshot{}).Mean() != 0 {
		t.Error("empty snapshot quantile/mean should be 0")
	}
}

// TestSnapshotMergeProperties checks Counters-level mergeability: the
// zero Snapshot is an identity and merging shard snapshots in any
// grouping equals the snapshot of the combined stream.
func TestSnapshotMergeProperties(t *testing.T) {
	feed := func(c *Counters, start, runs int, kernel string) {
		for i := start; i < start+runs; i++ {
			c.AddRun(1000+int64(i), 10, 3, 1, 2, kernel)
			c.AddTrial(int64(500+i), int64(i%7), i%2 == 0, false)
		}
	}
	var whole, a, b, cc Counters
	feed(&whole, 0, 5, "dense-uniform/table")
	feed(&whole, 5, 3, "generic/step")
	feed(&a, 0, 5, "dense-uniform/table")
	feed(&b, 5, 2, "generic/step")
	feed(&cc, 7, 1, "generic/step")

	want := whole.Snapshot()
	left := a.Snapshot().Merge(b.Snapshot()).Merge(cc.Snapshot())
	right := a.Snapshot().Merge(b.Snapshot().Merge(cc.Snapshot()))
	if !reflect.DeepEqual(left, want) || !reflect.DeepEqual(right, want) {
		t.Fatalf("shard merge != whole:\n left %+v\nright %+v\n want %+v", left, right, want)
	}
	var zero Snapshot
	if got := want.Merge(zero); !reflect.DeepEqual(got, want) {
		t.Errorf("merge with zero changed snapshot:\n got %+v\nwant %+v", got, want)
	}

	// Counters.Merge(shard snapshot) must agree with Snapshot.Merge.
	var folded Counters
	folded.Merge(a.Snapshot())
	folded.Merge(b.Snapshot())
	folded.Merge(cc.Snapshot())
	if got := folded.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Counters.Merge != whole:\n got %+v\nwant %+v", got, want)
	}
}

// TestCountersConcurrent hammers one shared Counters from NumCPU
// workers; run under -race this is the data-race gate, and the final
// totals check that no increment is lost.
func TestCountersConcurrent(t *testing.T) {
	var c Counters
	workers := runtime.NumCPU()
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kernel := fmt.Sprintf("kernel-%d", w%3)
			for i := 0; i < perWorker; i++ {
				c.AddRun(10, 2, 1, 1, 1, kernel)
				c.AddTrial(int64(i+1), int64(i), i%2 == 0, i%97 == 0)
			}
		}(w)
	}
	wg.Wait()
	s := c.Snapshot()
	total := int64(workers * perWorker)
	if s.StepsExecuted != 10*total || s.TrialsRun != total || s.TrialNs.Count != total {
		t.Fatalf("lost updates: %+v (want %d trials)", s, total)
	}
	var runs int64
	for _, n := range s.KernelDispatch {
		runs += n
	}
	if runs != total {
		t.Fatalf("kernel dispatch total %d, want %d", runs, total)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	var c Counters
	c.AddRun(123, 4, 5, 6, 7, "weighted/step")
	c.AddTrial(999, 11, true, false)
	want := c.Snapshot()
	var buf bytes.Buffer
	if err := want.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
	if _, err := ReadSnapshot(bytes.NewReader([]byte(`{"schema":"bogus/v9"}`))); err == nil {
		t.Error("want error for unknown schema")
	}
}

func TestJournalSpansAndNilSafety(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	end := j.Span("compile", map[string]any{"cells": 3.0})
	j.Event("checkpoint", nil)
	end()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Span != "checkpoint" || recs[1].Span != "compile" {
		t.Fatalf("records: %+v", recs)
	}
	if recs[1].DurNs < 0 || recs[1].Attrs["cells"] != 3.0 {
		t.Fatalf("span record: %+v", recs[1])
	}

	var nilJ *Journal
	nilJ.Span("x", nil)()
	nilJ.Event("y", nil)
	if err := nilJ.Close(); err != nil {
		t.Errorf("nil journal Close: %v", err)
	}
}

// fakeProto exposes only Leaders, like a non-tabular protocol.
type fakeProto struct{ leaders int }

func (f *fakeProto) Leaders() int { return f.leaders }

func TestTrajectorySamplingAndFinish(t *testing.T) {
	p := &fakeProto{leaders: 10}
	tr := NewTrajectory(3, 0)
	tr.Bind(p)
	for step := int64(1); step <= 5; step++ {
		p.leaders--
		tr.Observe(step * 100)
	}
	tr.Finish(777)
	s := tr.Samples()
	if len(s) != 7 {
		t.Fatalf("got %d samples, want 7 (initial + 5 + final)", len(s))
	}
	if s[0].Step != 0 || s[0].Leaders != 10 || s[0].Final {
		t.Fatalf("initial sample: %+v", s[0])
	}
	last := s[len(s)-1]
	if !last.Final || last.Step != 777 || last.Leaders != 5 {
		t.Fatalf("final sample: %+v", last)
	}
	for _, smp := range s {
		if smp.Trial != 3 {
			t.Fatalf("trial index: %+v", smp)
		}
		if smp.Gap != nil {
			t.Fatalf("gap set for non-tabular protocol: %+v", smp)
		}
	}

	// Finish landing exactly on the last periodic sample promotes it.
	tr2 := NewTrajectory(0, 0)
	tr2.Bind(p)
	tr2.Observe(50)
	tr2.Finish(50)
	if s2 := tr2.Samples(); len(s2) != 2 || !s2[1].Final || s2[1].Step != 50 {
		t.Fatalf("promotion: %+v", s2)
	}
}

// TestTrajectoryDecimation fills past the cap and checks the curve
// stays bounded, keeps step 0, stays strictly increasing, and still
// ends at the terminal step.
func TestTrajectoryDecimation(t *testing.T) {
	p := &fakeProto{leaders: 1}
	tr := NewTrajectory(0, 16)
	tr.Bind(p)
	for step := int64(1); step <= 1000; step++ {
		tr.Observe(step)
	}
	tr.Finish(1001)
	s := tr.Samples()
	if len(s) > 17 { // max plus the final sample
		t.Fatalf("curve not bounded: %d samples", len(s))
	}
	if s[0].Step != 0 {
		t.Fatalf("lost step-0 sample: %+v", s[0])
	}
	for i := 1; i < len(s); i++ {
		if s[i].Step <= s[i-1].Step {
			t.Fatalf("steps not increasing at %d: %+v", i, s)
		}
	}
	if last := s[len(s)-1]; !last.Final || last.Step != 1001 {
		t.Fatalf("final sample: %+v", last)
	}
}

func TestTrajectoryLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewTrajectoryLog(&buf)
	gap := 4
	in := []TrajectorySample{
		{Trial: 0, Step: 0, Leaders: 9, Gap: &gap},
		{Trial: 0, Step: 64, Leaders: 1, Final: true},
	}
	l.WriteTrial(in)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrajectories(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", out, in)
	}
	var nilLog *TrajectoryLog
	nilLog.WriteTrial(in)
	if err := nilLog.Close(); err != nil {
		t.Errorf("nil log Close: %v", err)
	}
}

func TestDebugServerServesMetrics(t *testing.T) {
	var c Counters
	c.AddRun(42, 1, 1, 0, 0, "dense-uniform/table")
	addr, stop, err := StartDebugServer("127.0.0.1:0", &c)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	for _, path := range []string{"/metrics", "/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		s, err := ReadSnapshot(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if s.StepsExecuted != 42 {
			t.Fatalf("%s: steps %d, want 42", path, s.StepsExecuted)
		}
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint: %v", resp.Status)
	}
}

func TestSnapshotDerivedStats(t *testing.T) {
	s := Snapshot{StepsExecuted: 2_000_000, RNGRefills: 4000,
		TrialNs: HistSnapshot{Count: 2, Sum: 2e9}}
	if got := s.StepsPerSec(); got != 1e6 {
		t.Errorf("StepsPerSec = %v, want 1e6", got)
	}
	if got := s.RefillsPerMStep(); got != 2000 {
		t.Errorf("RefillsPerMStep = %v, want 2000", got)
	}
	if (Snapshot{}).StepsPerSec() != 0 || (Snapshot{}).RefillsPerMStep() != 0 {
		t.Error("empty snapshot derived stats should be 0")
	}
	s.KernelDispatch = map[string]int64{"b/x": 2, "a/y": 1}
	if mix := s.KernelMix(); !reflect.DeepEqual(mix, []string{"a/y:1", "b/x:2"}) {
		t.Errorf("KernelMix = %v", mix)
	}
}
