// Package telemetry is the simulator's flight recorder: lock-free
// counters fed by the execution engine and the batch runner, log-bucketed
// latency histograms, a JSONL span journal for phase timing, per-trial
// convergence trajectories, and the -pprof/-metrics debug endpoints the
// CLIs expose.
//
// The design constraint that shapes everything here is that telemetry
// must be provably free of determinism impact: nothing in this package
// ever touches a random stream or reorders work, counters are fed at
// chunk/run granularity from locals the kernels already maintain (never
// per-step atomics), and the disabled path — a nil *Counters, a nil
// *Journal — costs one predictable branch. sim's equivalence matrix
// asserts byte-identical Results, observer sequences and post-run RNG
// state with metrics on and off.
//
// Aggregation is mergeable by construction: a Snapshot is plain data,
// Snapshot.Merge is associative with the zero Snapshot as identity, and
// workers (or future sweep shards) each feed a private Counters whose
// snapshots combine into the whole. Wall-clock fields (histograms, span
// timings) are inherently host-dependent; everything else in a snapshot
// is deterministic for a fixed spec and seed.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// SnapshotSchema identifies the snapshot JSON layout; bump on breaking
// changes.
const SnapshotSchema = "popgraph-telemetry/v1"

// Counters is the live, concurrently writable metric sink. All fields
// update atomically, so one Counters may be shared by every worker of a
// pool — though the runner instead gives each worker a private shard and
// merges at the end, keeping the hot path free of cache-line contention.
// The zero value is ready to use; a nil *Counters disables metering
// wherever one is accepted.
type Counters struct {
	steps    atomic.Int64
	chunks   atomic.Int64
	refills  atomic.Int64
	drops    atomic.Int64
	observes atomic.Int64

	trials     atomic.Int64
	stabilized atomic.Int64
	failed     atomic.Int64

	trialNs Histogram
	queueNs Histogram

	// kernels maps a dispatch label ("dense-uniform/table", "generic/step",
	// ...) to its run count. sync.Map keeps increments lock-free after a
	// label's first run; dispatch is recorded once per run, so the map is
	// never on a hot path.
	kernels sync.Map // string -> *atomic.Int64
}

// AddRun records one completed simulation run's engine accounting:
// steps executed, chunks driven, RNG block refills, dropped
// interactions, observer callbacks, and the kernel dispatch label the
// run executed on. The engine calls it once per run, from locals it
// accumulated for free, so metering adds a handful of atomic adds per
// run — nothing per step.
func (c *Counters) AddRun(steps, chunks, refills, drops, observes int64, kernel string) {
	c.steps.Add(steps)
	c.chunks.Add(chunks)
	c.refills.Add(refills)
	c.drops.Add(drops)
	c.observes.Add(observes)
	v, ok := c.kernels.Load(kernel)
	if !ok {
		v, _ = c.kernels.LoadOrStore(kernel, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(1)
}

// AddTrial records one batch trial's outcome shape and latencies:
// elapsedNs is the trial's wall time, queueNs how long it waited for a
// worker slot.
func (c *Counters) AddTrial(elapsedNs, queueNs int64, stabilized, failed bool) {
	c.trials.Add(1)
	if stabilized {
		c.stabilized.Add(1)
	}
	if failed {
		c.failed.Add(1)
	}
	c.trialNs.Observe(elapsedNs)
	c.queueNs.Observe(queueNs)
}

// Snapshot copies the counters into plain mergeable data. Taken after
// workers quiesce (the runner merges shards only once its pool drains),
// a snapshot is exact; taken live (the -pprof /metrics endpoint), it is
// a consistent-enough point-in-time read.
func (c *Counters) Snapshot() Snapshot {
	s := Snapshot{
		Schema:           SnapshotSchema,
		StepsExecuted:    c.steps.Load(),
		ChunksRun:        c.chunks.Load(),
		RNGRefills:       c.refills.Load(),
		DropsApplied:     c.drops.Load(),
		ObserverCalls:    c.observes.Load(),
		TrialsRun:        c.trials.Load(),
		TrialsStabilized: c.stabilized.Load(),
		TrialsFailed:     c.failed.Load(),
		TrialNs:          c.trialNs.Snapshot(),
		QueueWaitNs:      c.queueNs.Snapshot(),
	}
	c.kernels.Range(func(k, v any) bool {
		if n := v.(*atomic.Int64).Load(); n != 0 {
			if s.KernelDispatch == nil {
				s.KernelDispatch = make(map[string]int64)
			}
			s.KernelDispatch[k.(string)] = n
		}
		return true
	})
	return s
}

// Merge folds a snapshot (typically a worker shard's) into the live
// counters.
func (c *Counters) Merge(s Snapshot) {
	c.steps.Add(s.StepsExecuted)
	c.chunks.Add(s.ChunksRun)
	c.refills.Add(s.RNGRefills)
	c.drops.Add(s.DropsApplied)
	c.observes.Add(s.ObserverCalls)
	c.trials.Add(s.TrialsRun)
	c.stabilized.Add(s.TrialsStabilized)
	c.failed.Add(s.TrialsFailed)
	mergeHist(&c.trialNs, s.TrialNs)
	mergeHist(&c.queueNs, s.QueueWaitNs)
	for k, n := range s.KernelDispatch {
		v, ok := c.kernels.Load(k)
		if !ok {
			v, _ = c.kernels.LoadOrStore(k, new(atomic.Int64))
		}
		v.(*atomic.Int64).Add(n)
	}
}

// mergeHist folds a histogram snapshot back into a live histogram.
func mergeHist(h *Histogram, s HistSnapshot) {
	if s.Count == 0 {
		return
	}
	for _, b := range s.Buckets {
		h.counts[bucketOf(b.Lo)].Add(b.Count)
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	atomicMin(&h.min, s.Min+1)
	atomicMax(&h.max, s.Max)
}

// Snapshot is a plain-data copy of a Counters, the unit of export and
// merging. The zero Snapshot is the Merge identity.
type Snapshot struct {
	Schema string `json:"schema,omitempty"`
	// StepsExecuted counts interactions executed (delivered or dropped)
	// across all runs; it equals the sum of per-trial Steps in the
	// results log, because the engine flushes exactly Result.Steps per
	// completed run and crashed trials flush nothing (and record 0).
	StepsExecuted int64 `json:"steps_executed"`
	// ChunksRun counts kernel chunk invocations; RNGRefills counts
	// 512-value block prefetches (so RNGRefills/ChunksRun and
	// StepsExecuted/RNGRefills expose whether runs are RNG-bound).
	ChunksRun  int64 `json:"chunks_run"`
	RNGRefills int64 `json:"rng_refills"`
	// DropsApplied counts interactions suppressed by the drop-rate fault
	// injector; ObserverCalls counts observer callbacks delivered.
	DropsApplied  int64 `json:"drops_applied"`
	ObserverCalls int64 `json:"observer_calls"`
	// Trial counts, as the batch runner saw them.
	TrialsRun        int64 `json:"trials_run"`
	TrialsStabilized int64 `json:"trials_stabilized"`
	TrialsFailed     int64 `json:"trials_failed,omitempty"`
	// KernelDispatch maps "scheduler-engine/protocol-engine" labels
	// (e.g. "clique-uniform/table") to the number of runs each compiled
	// kernel executed.
	KernelDispatch map[string]int64 `json:"kernel_dispatch,omitempty"`
	// TrialNs and QueueWaitNs are per-trial wall-time and queue-wait
	// distributions (nanoseconds, log-bucketed). Host-dependent.
	TrialNs     HistSnapshot `json:"trial_ns"`
	QueueWaitNs HistSnapshot `json:"queue_wait_ns"`
}

// Merge combines two snapshots; associative, with the zero Snapshot as
// identity, so shard snapshots fold in any order into the same whole.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := s
	if out.Schema == "" {
		out.Schema = o.Schema
	}
	out.StepsExecuted += o.StepsExecuted
	out.ChunksRun += o.ChunksRun
	out.RNGRefills += o.RNGRefills
	out.DropsApplied += o.DropsApplied
	out.ObserverCalls += o.ObserverCalls
	out.TrialsRun += o.TrialsRun
	out.TrialsStabilized += o.TrialsStabilized
	out.TrialsFailed += o.TrialsFailed
	out.TrialNs = s.TrialNs.Merge(o.TrialNs)
	out.QueueWaitNs = s.QueueWaitNs.Merge(o.QueueWaitNs)
	if len(o.KernelDispatch) > 0 {
		merged := make(map[string]int64, len(s.KernelDispatch)+len(o.KernelDispatch))
		for k, v := range s.KernelDispatch {
			merged[k] = v
		}
		for k, v := range o.KernelDispatch {
			merged[k] += v
		}
		out.KernelDispatch = merged
	}
	return out
}

// StepsPerSec is the aggregate per-worker throughput: total steps over
// total per-trial wall time. With W busy workers the batch-level rate is
// about W times this.
func (s Snapshot) StepsPerSec() float64 {
	if s.TrialNs.Sum <= 0 {
		return 0
	}
	return float64(s.StepsExecuted) / (float64(s.TrialNs.Sum) / 1e9)
}

// RefillsPerMStep returns RNG block refills per million steps, the
// "is the engine RNG-bound" headline.
func (s Snapshot) RefillsPerMStep() float64 {
	if s.StepsExecuted == 0 {
		return 0
	}
	return float64(s.RNGRefills) * 1e6 / float64(s.StepsExecuted)
}

// KernelMix renders the dispatch counts as "label:count" pairs in
// deterministic (sorted) order.
func (s Snapshot) KernelMix() []string {
	keys := make([]string, 0, len(s.KernelDispatch))
	for k := range s.KernelDispatch {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%s:%d", k, s.KernelDispatch[k])
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON with a trailing
// newline. Map keys are sorted by encoding/json, so output is
// deterministic for a deterministic snapshot.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot previously produced by WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: parsing snapshot: %w", err)
	}
	if s.Schema != "" && s.Schema != SnapshotSchema {
		return Snapshot{}, fmt.Errorf("telemetry: unknown snapshot schema %q (want %q)", s.Schema, SnapshotSchema)
	}
	return s, nil
}

// WriteSnapshotFile snapshots c and writes it to path — the -metrics
// flag's implementation, shared by the CLIs. A nil c writes an empty
// (all-zero) snapshot, so callers don't need to special-case disabled
// metering.
func WriteSnapshotFile(path string, c *Counters) error {
	var s Snapshot
	if c != nil {
		s = c.Snapshot()
	} else {
		s.Schema = SnapshotSchema
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
