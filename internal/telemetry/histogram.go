// Log-bucketed latency histograms. A Histogram is a fixed array of
// power-of-two buckets with atomically updated counts, so any number of
// workers can record into one instance without locks, and two snapshots
// taken on different workers (or different shards of a sweep) merge by
// plain bucket-wise addition — the merge of the parts is exactly the
// histogram of the whole.

package telemetry

import (
	"math"
	"sync/atomic"
)

// histBuckets is the bucket count: bucket 0 holds non-positive values,
// bucket i (1 <= i <= 63) holds values v with 2^(i-1) <= v < 2^i, so
// every positive int64 lands in a bucket with ~2x resolution — plenty
// for latency distributions spanning nanoseconds to hours.
const histBuckets = 64

// Histogram is a lock-free log-bucketed histogram of int64 samples
// (typically nanoseconds). The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // stored as sample+1 so 0 means "no samples yet"
	max    atomic.Int64
}

// bucketOf maps a sample to its bucket index: 0 for v <= 0, otherwise
// 1 + floor(log2 v).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 0
	for u := uint64(v); u != 0; u >>= 1 {
		b++
	}
	return b
}

// bucketLo returns the inclusive lower bound of bucket i.
func bucketLo(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// Observe records one sample. Safe for concurrent use.
func (h *Histogram) Observe(v int64) {
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	atomicMin(&h.min, v+1)
	atomicMax(&h.max, v)
}

// atomicMin lowers a to v if v is smaller (treating 0 as "unset").
func atomicMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if cur != 0 && cur <= v {
			return
		}
		if a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// atomicMax raises a to v if v is larger.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if cur >= v {
			return
		}
		if a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// HistBucket is one populated bucket of a histogram snapshot: Lo is the
// bucket's inclusive lower bound (its exclusive upper bound is the next
// bucket's Lo, i.e. 2*Lo for Lo > 0), Count the number of samples in it.
type HistBucket struct {
	Lo    int64 `json:"lo"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a Histogram: plain values,
// mergeable and JSON-encodable. Only populated buckets are kept, in
// ascending Lo order.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state. Concurrent Observe
// calls may straddle the copy; each sample is either fully in or fully
// absent from the totals the caller compares (count vs buckets may skew
// by in-flight samples — irrelevant for end-of-run snapshots, which are
// taken after the workers quiesce).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if m := h.min.Load(); m != 0 {
		s.Min = m - 1
	}
	for i := 0; i < histBuckets; i++ {
		if c := h.counts[i].Load(); c != 0 {
			s.Buckets = append(s.Buckets, HistBucket{Lo: bucketLo(i), Count: c})
		}
	}
	return s
}

// Merge returns the histogram of the combined sample: bucket-wise sums,
// summed counts and totals, elementwise min/max. Merging with the zero
// HistSnapshot is the identity, so shards with no samples merge away.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
		Max:   s.Max,
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	switch {
	case s.Count == 0:
		out.Min = o.Min
	case o.Count == 0:
		out.Min = s.Min
	default:
		out.Min = s.Min
		if o.Min < out.Min {
			out.Min = o.Min
		}
	}
	var merged [histBuckets]int64
	for _, b := range s.Buckets {
		merged[bucketOf(b.Lo)] += b.Count
	}
	for _, b := range o.Buckets {
		merged[bucketOf(b.Lo)] += b.Count
	}
	for i, c := range merged {
		if c != 0 {
			out.Buckets = append(out.Buckets, HistBucket{Lo: bucketLo(i), Count: c})
		}
	}
	return out
}

// Mean returns the average sample, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) from the buckets: the
// geometric midpoint of the bucket holding the q-th sample, clamped to
// the observed min/max. Log buckets bound the relative error by 2x,
// which is the right fidelity for "where does the time go" questions.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(s.Min)
	}
	if q >= 1 {
		return float64(s.Max)
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			lo := float64(b.Lo)
			hi := 2 * lo
			if b.Lo == 0 {
				return clampQ(0, s)
			}
			return clampQ(math.Sqrt(lo*hi), s)
		}
	}
	return float64(s.Max)
}

func clampQ(v float64, s HistSnapshot) float64 {
	if v < float64(s.Min) {
		return float64(s.Min)
	}
	if v > float64(s.Max) {
		return float64(s.Max)
	}
	return v
}
