// The -pprof debug endpoint: net/http/pprof plus a live /metrics JSON
// snapshot, shared by every CLI so a stuck sweep can be profiled and
// watched without restarting it.

package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartDebugServer listens on addr and serves the Go profiling
// endpoints under /debug/pprof/ and the live counter snapshot as JSON
// under /metrics (and /, for curl convenience). It returns the bound
// address — pass ":0" to pick a free port — and a stop function that
// closes the listener and its connections. c may be nil, in which case
// /metrics serves an all-zero snapshot.
//
// The server runs entirely off the simulation path: profiling samples
// are taken by the Go runtime and /metrics reads are atomic loads, so
// attaching it cannot perturb results.
func StartDebugServer(addr string, c *Counters) (string, func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	serveMetrics := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var s Snapshot
		if c != nil {
			s = c.Snapshot()
		} else {
			s.Schema = SnapshotSchema
		}
		_ = s.WriteJSON(w)
	}
	mux.HandleFunc("/metrics", serveMetrics)
	mux.HandleFunc("/{$}", serveMetrics)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: debug server: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
