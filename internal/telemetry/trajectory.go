// Convergence trajectories: per-trial (step, leaders, gap) curves
// sampled through the simulator's observer hook, for plotting how a
// protocol approaches stability against the paper's bound rather than
// only recording when it got there.

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"popgraph/internal/core"
)

// TrajectorySample is one point of a convergence curve. Step is the
// 1-based interaction count at which the sample was taken (0 for the
// initial configuration), Leaders the protocol's leader count there.
// Gap is the table potential Σ gapWeight − gapTarget (0 exactly at
// stability) and present only for table-compiled protocols.
type TrajectorySample struct {
	Trial   int   `json:"trial"`
	Step    int64 `json:"step"`
	Leaders int   `json:"leaders"`
	Gap     *int  `json:"gap,omitempty"`
	// Final marks the trial's terminal sample, recorded after the run
	// ends; its Step and Leaders match the trial's Result.
	Final bool `json:"final,omitempty"`
}

// leaderCounter is the structural slice of sim.Protocol the trajectory
// needs; declared here so telemetry does not import sim (sim imports
// telemetry).
type leaderCounter interface {
	Leaders() int
}

// tabular is the structural slice of sim.Tabular used to compute the
// gap potential at sample time.
type tabular interface {
	Table() *core.TransitionTable
	TableStates() []uint8
}

// DefaultTrajectorySamples caps a trial's curve length unless the
// caller chooses otherwise.
const DefaultTrajectorySamples = 512

// Trajectory records one trial's convergence curve. It implements
// sim.Observer; wire it as Options.Observer with ObserveEvery set to
// the sampling interval (one graph size n per sample ≈ one unit of
// parallel time is the natural choice). The runner binds it to the
// trial's protocol before the run (see runner.Pool) and finalizes it
// after, so each sample reads the leader counters the engine has
// already reconciled for observer callbacks.
//
// The curve is capped at max samples by stride doubling: when the
// buffer fills, every other sample is dropped and the sampling stride
// doubles, so long runs keep an evenly thinned curve instead of only
// its first max points. Deterministic: the kept set depends only on the
// observation count, never on time or randomness.
type Trajectory struct {
	trial   int
	max     int
	stride  int64
	seen    int64
	leaders leaderCounter
	tab     tabular
	samples []TrajectorySample
}

// NewTrajectory returns a curve recorder for the given trial index.
// maxSamples <= 0 means DefaultTrajectorySamples.
func NewTrajectory(trial, maxSamples int) *Trajectory {
	if maxSamples <= 0 {
		maxSamples = DefaultTrajectorySamples
	}
	if maxSamples < 2 {
		maxSamples = 2
	}
	return &Trajectory{trial: trial, max: maxSamples, stride: 1}
}

// Bind attaches the trial's protocol instance. p may be any value; only
// the Leaders / Table+TableStates methods the curve needs are looked
// up, so telemetry stays decoupled from sim's interfaces. Bind also
// records the step-0 initial configuration; call it after the
// protocol's Reset.
func (tr *Trajectory) Bind(p any) {
	tr.leaders, _ = p.(leaderCounter)
	if tb, ok := p.(tabular); ok && tb.Table() != nil {
		tr.tab = tb
	}
	if len(tr.samples) == 0 {
		tr.record(0, false)
	}
}

// Observe implements the observer hook: sample the current leader
// count (and gap, when table-compiled) at step t.
func (tr *Trajectory) Observe(t int64) {
	idx := tr.seen
	tr.seen++
	if tr.stride > 1 && idx%tr.stride != 0 {
		return
	}
	tr.record(t, false)
	if len(tr.samples) >= tr.max {
		tr.decimate()
	}
}

// Finish records the trial's terminal sample at the run's final step
// count; the runner calls it once the run returns. If the last periodic
// sample already landed on the terminal step it is promoted in place,
// so the curve ends with exactly one Final point.
func (tr *Trajectory) Finish(steps int64) {
	if n := len(tr.samples); n > 0 && tr.samples[n-1].Step == steps {
		tr.samples[n-1].Final = true
		return
	}
	tr.record(steps, true)
}

func (tr *Trajectory) record(step int64, final bool) {
	s := TrajectorySample{Trial: tr.trial, Step: step, Final: final}
	if tr.leaders != nil {
		s.Leaders = tr.leaders.Leaders()
	}
	if tr.tab != nil {
		_, gap := tr.tab.Table().Counters(tr.tab.TableStates())
		s.Gap = &gap
	}
	tr.samples = append(tr.samples, s)
}

// decimate halves the curve, keeping step 0 and every other periodic
// sample, and doubles the stride so future observations thin to match.
func (tr *Trajectory) decimate() {
	kept := tr.samples[:1] // always keep the step-0 sample
	// Periodic samples sit at observation indices 0, stride, 2·stride, …;
	// keeping alternate ones leaves exactly the multiples of 2·stride.
	for i := 1; i < len(tr.samples); i += 2 {
		kept = append(kept, tr.samples[i])
	}
	tr.samples = kept
	tr.stride *= 2
}

// Samples returns the recorded curve; call after the run (and Finish)
// completes.
func (tr *Trajectory) Samples() []TrajectorySample { return tr.samples }

// TrajectoryLog serializes trial curves to JSONL, one sample per line.
// Curves are written whole per trial, so writing them in job order
// yields a byte-deterministic file for any worker count (timing never
// appears in a sample).
type TrajectoryLog struct {
	mu  sync.Mutex
	enc *json.Encoder
	c   io.Closer
	err error
}

// NewTrajectoryLog returns a log writing JSONL to w.
func NewTrajectoryLog(w io.Writer) *TrajectoryLog {
	l := &TrajectoryLog{enc: json.NewEncoder(w)}
	if c, ok := w.(io.Closer); ok {
		l.c = c
	}
	return l
}

// OpenTrajectoryLog creates (truncating) a trajectory file at path.
func OpenTrajectoryLog(path string) (*TrajectoryLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: opening trajectory log: %w", err)
	}
	return NewTrajectoryLog(f), nil
}

// WriteTrial appends one trial's samples. A nil log discards them.
func (l *TrajectoryLog) WriteTrial(samples []TrajectorySample) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range samples {
		if l.err != nil {
			return
		}
		l.err = l.enc.Encode(s)
	}
}

// Close closes the underlying writer and reports the first write error.
func (l *TrajectoryLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.c != nil {
		if err := l.c.Close(); err != nil && l.err == nil {
			l.err = err
		}
		l.c = nil
	}
	return l.err
}

// ReadTrajectories parses a JSONL trajectory stream back into samples,
// for tests and tooling.
func ReadTrajectories(r io.Reader) ([]TrajectorySample, error) {
	dec := json.NewDecoder(r)
	var out []TrajectorySample
	for {
		var s TrajectorySample
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("telemetry: parsing trajectory: %w", err)
		}
		out = append(out, s)
	}
}
