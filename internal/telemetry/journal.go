// The run journal: a JSONL stream of phase spans (graph build,
// condition, compile, run, aggregate) and point events, written as they
// close so a crashed run still leaves a usable timeline. One line per
// record keeps the format greppable and trivially concatenable across
// shards.

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// SpanRecord is one journal line. StartNs is the offset from the
// journal's creation (not an absolute timestamp, so journals from the
// same run diff cleanly); DurNs is the span's duration, 0 for point
// events.
type SpanRecord struct {
	Span    string         `json:"span"`
	StartNs int64          `json:"start_ns"`
	DurNs   int64          `json:"dur_ns,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Journal records phase spans as JSONL. Safe for concurrent use; a nil
// *Journal is a valid disabled recorder (every method no-ops), so
// callers thread one through unconditionally:
//
//	done := journal.Span("compile", nil)
//	plan, err := sim.Compile(g, opts)
//	done()
type Journal struct {
	mu    sync.Mutex
	w     io.Writer
	c     io.Closer
	enc   *json.Encoder
	epoch time.Time
	err   error
}

// NewJournal returns a journal writing JSONL records to w. Span offsets
// are measured from this call.
func NewJournal(w io.Writer) *Journal {
	j := &Journal{w: w, enc: json.NewEncoder(w), epoch: time.Now()}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// OpenJournal creates (truncating) a journal file at path.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: opening journal: %w", err)
	}
	return NewJournal(f), nil
}

// Span opens a phase span and returns the function that closes it; the
// record is written when the span closes. attrs may be nil.
func (j *Journal) Span(name string, attrs map[string]any) func() {
	if j == nil {
		return func() {}
	}
	start := time.Since(j.epoch)
	return func() {
		j.emit(SpanRecord{
			Span:    name,
			StartNs: start.Nanoseconds(),
			DurNs:   (time.Since(j.epoch) - start).Nanoseconds(),
			Attrs:   attrs,
		})
	}
}

// Event writes a zero-duration point record.
func (j *Journal) Event(name string, attrs map[string]any) {
	if j == nil {
		return
	}
	j.emit(SpanRecord{Span: name, StartNs: time.Since(j.epoch).Nanoseconds(), Attrs: attrs})
}

func (j *Journal) emit(rec SpanRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(rec)
}

// Close flushes and closes the underlying writer (when it is a Closer)
// and reports the first error the journal hit, so CLIs surface silently
// failed telemetry writes at exit.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.c != nil {
		if err := j.c.Close(); err != nil && j.err == nil {
			j.err = err
		}
		j.c = nil
	}
	return j.err
}

// ReadJournal parses a JSONL journal, for tests and tooling.
func ReadJournal(r io.Reader) ([]SpanRecord, error) {
	dec := json.NewDecoder(r)
	var recs []SpanRecord
	for {
		var rec SpanRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return recs, nil
			}
			return nil, fmt.Errorf("telemetry: parsing journal: %w", err)
		}
		recs = append(recs, rec)
	}
}
