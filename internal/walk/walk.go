// Package walk implements the two random-walk models of Section 4.1 and
// the hitting/meeting-time machinery behind Theorem 16:
//
//   - the classic random walk: at each of its steps the walk moves to a
//     uniformly random neighbour; H(G) denotes its worst-case expected
//     hitting time;
//   - the population-model random walk: the walk sits at a node and moves
//     whenever the scheduler samples an edge incident to it, so its clock
//     runs in scheduler steps; H_P(G) <= 27·n·H(G) (Lemma 17, after Sudo
//     et al.), and two walks "meet" when they occupy the two endpoints of
//     the sampled edge, with M(u,v) <= 2·H_P(G) (Lemma 18).
//
// Exact classic hitting times come from solving the harmonic system
// h(z) = 0, h(u) = 1 + avg_{w ~ u} h(w) by Gaussian elimination; Monte
// Carlo estimators cover the population-model quantities.
package walk

import (
	"fmt"
	"math"

	"popgraph/internal/graph"
	"popgraph/internal/xrand"
)

// ClassicHittingExact returns the exact expected hitting times h(u) of the
// classic random walk from every node u to the target, by dense Gaussian
// elimination on the harmonic system (O(n³) time, O(n²) memory; capped at
// n = 2048).
func ClassicHittingExact(g graph.Graph, target int) []float64 {
	n := g.N()
	if n > 2048 {
		panic(fmt.Sprintf("walk: exact hitting needs n <= 2048, got %d", n))
	}
	if target < 0 || target >= n {
		panic(fmt.Sprintf("walk: target %d out of range", target))
	}
	// Variables: h(u) for u != target. Row for u:
	// h(u) - (1/deg u)·Σ_{w ~ u, w != target} h(w) = 1.
	idx := make([]int, n)
	vars := 0
	for v := 0; v < n; v++ {
		if v == target {
			idx[v] = -1
			continue
		}
		idx[v] = vars
		vars++
	}
	a := make([][]float64, vars)
	b := make([]float64, vars)
	for v := 0; v < n; v++ {
		i := idx[v]
		if i < 0 {
			continue
		}
		row := make([]float64, vars)
		row[i] = 1
		inv := 1 / float64(g.Degree(v))
		for j := 0; j < g.Degree(v); j++ {
			w := g.NeighborAt(v, j)
			if w == target {
				continue
			}
			row[idx[w]] -= inv
		}
		a[i] = row
		b[i] = 1
	}
	x := solveGauss(a, b)
	h := make([]float64, n)
	for v := 0; v < n; v++ {
		if i := idx[v]; i >= 0 {
			h[v] = x[i]
		}
	}
	return h
}

// solveGauss solves a·x = b in place with partial pivoting.
func solveGauss(a [][]float64, b []float64) []float64 {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		p := a[col][col]
		if p == 0 {
			panic("walk: singular hitting-time system (graph disconnected?)")
		}
		for r := col + 1; r < n; r++ {
			f := a[r][col] / p
			if f == 0 {
				continue
			}
			row, prow := a[r], a[col]
			for c := col; c < n; c++ {
				row[c] -= f * prow[c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		row := a[r]
		for c := r + 1; c < n; c++ {
			sum -= row[c] * x[c]
		}
		x[r] = sum / row[r]
	}
	return x
}

// ClassicWorstHittingExact returns H(G) = max_{u,v} H(u, v) exactly by
// solving the harmonic system for every target (O(n⁴); keep n <= ~256).
func ClassicWorstHittingExact(g graph.Graph) float64 {
	best := 0.0
	for target := 0; target < g.N(); target++ {
		for _, h := range ClassicHittingExact(g, target) {
			if h > best {
				best = h
			}
		}
	}
	return best
}

// PopulationHittingExact returns the exact expected hitting times (in
// scheduler steps) of the population-model walk to the target. From node
// x the walk moves along each incident edge with probability 1/m and
// stays put otherwise, so the harmonic system is
//
//	h(x) = m/deg(x) + (1/deg(x))·Σ_{w ~ x} h(w),  h(target) = 0.
//
// On Δ-regular graphs this gives exactly h = (m/Δ)·h_classic.
func PopulationHittingExact(g graph.Graph, target int) []float64 {
	n := g.N()
	if n > 2048 {
		panic(fmt.Sprintf("walk: exact population hitting needs n <= 2048, got %d", n))
	}
	if target < 0 || target >= n {
		panic(fmt.Sprintf("walk: target %d out of range", target))
	}
	idx := make([]int, n)
	vars := 0
	for v := 0; v < n; v++ {
		if v == target {
			idx[v] = -1
			continue
		}
		idx[v] = vars
		vars++
	}
	a := make([][]float64, vars)
	b := make([]float64, vars)
	m := float64(g.M())
	for v := 0; v < n; v++ {
		i := idx[v]
		if i < 0 {
			continue
		}
		row := make([]float64, vars)
		row[i] = 1
		deg := g.Degree(v)
		inv := 1 / float64(deg)
		for j := 0; j < deg; j++ {
			w := g.NeighborAt(v, j)
			if w == target {
				continue
			}
			row[idx[w]] -= inv
		}
		a[i] = row
		b[i] = m * inv
	}
	x := solveGauss(a, b)
	h := make([]float64, n)
	for v := 0; v < n; v++ {
		if i := idx[v]; i >= 0 {
			h[v] = x[i]
		}
	}
	return h
}

// PopulationWorstHittingExact returns H_P(G) = max_{u,v} H_P(u, v)
// exactly (O(n⁴); keep n <= ~256). Lemma 17 guarantees
// H_P(G) <= 27·n·H(G).
func PopulationWorstHittingExact(g graph.Graph) float64 {
	best := 0.0
	for target := 0; target < g.N(); target++ {
		for _, h := range PopulationHittingExact(g, target) {
			if h > best {
				best = h
			}
		}
	}
	return best
}

// ClassicHittingMC estimates H(u, v) for the classic walk by simulation.
func ClassicHittingMC(g graph.Graph, u, v int, r *xrand.Rand, trials int) float64 {
	if trials <= 0 {
		trials = 16
	}
	var total int64
	for i := 0; i < trials; i++ {
		x := u
		var steps int64
		for x != v {
			x = g.NeighborAt(x, r.Intn(g.Degree(x)))
			steps++
		}
		total += steps
	}
	return float64(total) / float64(trials)
}

// PopulationHittingMC estimates H_P(u, v): the expected number of
// scheduler steps for a population-model walk from u to reach v.
func PopulationHittingMC(g graph.Graph, u, v int, r *xrand.Rand, trials int) float64 {
	if trials <= 0 {
		trials = 16
	}
	var total int64
	for i := 0; i < trials; i++ {
		x := u
		var steps int64
		for x != v {
			a, b := g.SampleEdge(r)
			steps++
			switch x {
			case a:
				x = b
			case b:
				x = a
			}
		}
		total += steps
	}
	return float64(total) / float64(trials)
}

// MeetingExact returns the exact expected meeting times M(u, v) of two
// population-model walks for every unordered pair, solved on the product
// chain over unordered node pairs {x, y}: absorption when the scheduler
// samples the edge {x, y}, otherwise each walk moves along sampled
// incident edges. O(n⁶) time via dense elimination on n(n−1)/2 unknowns;
// keep n <= ~48. The result is indexed [u][v] with M[u][u] = 0.
//
// Lemma 18 asserts M(u, v) <= 2·H_P(G) for all u != v; tests verify this
// exactly on small graphs.
func MeetingExact(g graph.Graph) [][]float64 {
	n := g.N()
	if n > 48 {
		panic(fmt.Sprintf("walk: exact meeting times need n <= 48, got %d", n))
	}
	// Unordered pairs {x, y}, x < y.
	idx := make([][]int, n)
	vars := 0
	for x := 0; x < n; x++ {
		idx[x] = make([]int, n)
		for y := x + 1; y < n; y++ {
			idx[x][y] = vars
			vars++
		}
	}
	pairIdx := func(x, y int) int {
		if x > y {
			x, y = y, x
		}
		return idx[x][y]
	}
	adjacent := make(map[int]bool, 2*g.M())
	g.ForEachEdge(func(u, w int) { adjacent[pairIdx(u, w)] = true })

	m := float64(g.M())
	a := make([][]float64, vars)
	b := make([]float64, vars)
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			i := idx[x][y]
			row := make([]float64, vars)
			b[i] = 1
			// From state {x, y}, each of the m edges is sampled w.p. 1/m:
			// the edge {x, y} absorbs; an edge {x, w} moves x to w (note
			// w = y is impossible here unless it IS the absorbing edge);
			// similarly for y; other edges leave the state unchanged.
			stay := float64(g.M())
			pij := pairIdx(x, y)
			if adjacent[pij] {
				stay-- // absorbing transition
			}
			addMove := func(from, other, to int) {
				if to == other {
					return // that sample is the absorbing edge, handled above
				}
				stay--
				row[pairIdx(to, other)] -= 1 / m
			}
			for j := 0; j < g.Degree(x); j++ {
				addMove(x, y, g.NeighborAt(x, j))
			}
			for j := 0; j < g.Degree(y); j++ {
				addMove(y, x, g.NeighborAt(y, j))
			}
			row[i] += 1 - stay/m
			a[i] = row
		}
	}
	x := solveGauss(a, b)
	out := make([][]float64, n)
	for u := 0; u < n; u++ {
		out[u] = make([]float64, n)
		for v := 0; v < n; v++ {
			if u != v {
				out[u][v] = x[pairIdx(u, v)]
			}
		}
	}
	return out
}

// MeetingMC estimates M(u, v): the expected number of scheduler steps
// until population-model walks started at u and v != u meet, i.e. occupy
// the two endpoints of the sampled edge. Walks never co-locate: any
// sampled edge that would merge them is a meeting.
func MeetingMC(g graph.Graph, u, v int, r *xrand.Rand, trials int) float64 {
	if u == v {
		panic("walk: meeting time needs distinct starts")
	}
	if trials <= 0 {
		trials = 16
	}
	var total int64
	for i := 0; i < trials; i++ {
		x, y := u, v
		var steps int64
		for {
			a, b := g.SampleEdge(r)
			steps++
			if (x == a && y == b) || (x == b && y == a) {
				break
			}
			switch {
			case x == a:
				x = b
			case x == b:
				x = a
			}
			switch {
			case y == a:
				y = b
			case y == b:
				y = a
			}
		}
		total += steps
	}
	return float64(total) / float64(trials)
}

// WorstHittingMC estimates H(G) by maximizing the Monte-Carlo classic
// hitting time over `pairs` sampled (u, v) pairs, always including the
// extreme-degree pair (min-degree source is the classic worst case).
func WorstHittingMC(g graph.Graph, r *xrand.Rand, pairs, trials int) float64 {
	if pairs <= 0 {
		pairs = 8
	}
	n := g.N()
	minV, maxV := 0, 0
	for v := 1; v < n; v++ {
		if g.Degree(v) < g.Degree(minV) {
			minV = v
		}
		if g.Degree(v) > g.Degree(maxV) {
			maxV = v
		}
	}
	best := 0.0
	probe := func(u, v int) {
		if u == v {
			return
		}
		if h := ClassicHittingMC(g, u, v, r, trials); h > best {
			best = h
		}
	}
	probe(maxV, minV)
	probe(minV, maxV)
	for i := 0; i < pairs; i++ {
		probe(r.Intn(n), r.Intn(n))
	}
	return best
}
