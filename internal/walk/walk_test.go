package walk

import (
	"math"
	"testing"

	"popgraph/internal/bounds"
	"popgraph/internal/graph"
	"popgraph/internal/xrand"
)

func TestExactHittingClique(t *testing.T) {
	// H(u, v) = n − 1 on K_n for any u != v.
	for _, n := range []int{3, 5, 10, 20} {
		g := graph.NewClique(n)
		h := ClassicHittingExact(g, 0)
		for v := 1; v < n; v++ {
			if math.Abs(h[v]-float64(n-1)) > 1e-6 {
				t.Fatalf("K_%d: h(%d) = %v, want %d", n, v, h[v], n-1)
			}
		}
		if h[0] != 0 {
			t.Fatalf("h(target) = %v", h[0])
		}
	}
}

func TestExactHittingCycle(t *testing.T) {
	// On C_n, H(u, v) = k(n−k) where k = dist(u, v).
	for _, n := range []int{4, 7, 12} {
		g := graph.Cycle(n)
		h := ClassicHittingExact(g, 0)
		for v := 1; v < n; v++ {
			k := v
			if n-v < k {
				k = n - v
			}
			want := float64(k * (n - k))
			if math.Abs(h[v]-want) > 1e-6 {
				t.Fatalf("C_%d: h(%d) = %v, want %v", n, v, h[v], want)
			}
		}
	}
}

func TestExactHittingPathEnds(t *testing.T) {
	// Endpoint to endpoint on P_n: (n−1)².
	for _, n := range []int{2, 5, 16} {
		g := graph.Path(n)
		h := ClassicHittingExact(g, n-1)
		want := bounds.HittingPathEnds(n)
		if math.Abs(h[0]-want) > 1e-6 {
			t.Fatalf("P_%d: h(0 -> %d) = %v, want %v", n, n-1, h[0], want)
		}
	}
}

func TestWorstHittingExactMatchesFormulas(t *testing.T) {
	cases := []struct {
		g    graph.Graph
		want float64
	}{
		{graph.NewClique(9), bounds.HittingClique(9)},
		{graph.Cycle(10), bounds.HittingCycle(10)},
		{graph.Cycle(11), bounds.HittingCycle(11)},
		{graph.Path(8), bounds.HittingPathEnds(8)},
	}
	for _, c := range cases {
		if got := ClassicWorstHittingExact(c.g); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("%s: H(G) = %v, want %v", c.g.Name(), got, c.want)
		}
	}
}

func TestClassicHittingMCMatchesExact(t *testing.T) {
	g := graph.Cycle(8)
	want := ClassicHittingExact(g, 0)
	r := xrand.New(3)
	for _, v := range []int{1, 4} {
		got := ClassicHittingMC(g, v, 0, r, 3000)
		if math.Abs(got-want[v]) > 0.15*want[v] {
			t.Errorf("MC h(%d) = %v, exact %v", v, got, want[v])
		}
	}
}

// TestLemma17PopulationVsClassic — H_P(u, v) <= 27·n·H(G); also sanity that
// the population walk is roughly m/deg-times slower than the classic one.
func TestLemma17PopulationVsClassic(t *testing.T) {
	graphs := []graph.Graph{graph.Cycle(12), graph.NewClique(8), graph.Star(10)}
	r := xrand.New(7)
	for _, g := range graphs {
		hExact := ClassicWorstHittingExact(g)
		upper := bounds.HittingPopulationUpper(g.N(), hExact)
		hp := PopulationHittingMC(g, 1, 0, r, 400)
		if hp > upper {
			t.Errorf("%s: H_P(1,0) = %v exceeds 27·n·H(G) = %v", g.Name(), hp, upper)
		}
	}
}

// TestPopulationWalkSlowdown — on a regular graph, each population-walk
// move takes Geom(deg/m) scheduler steps, so H_P(u,v) ≈ (m/deg)·H(u,v).
func TestPopulationWalkSlowdown(t *testing.T) {
	g := graph.Cycle(10) // deg 2, m = 10: slowdown 5
	r := xrand.New(11)
	exact := ClassicHittingExact(g, 0)[5]
	hp := PopulationHittingMC(g, 5, 0, r, 2000)
	want := exact * float64(g.M()) / 2
	if math.Abs(hp-want) > 0.15*want {
		t.Errorf("H_P = %v, want ≈ %v", hp, want)
	}
}

// TestLemma18MeetingBound — M(u, v) <= 2·H_P(G). We bound H_P(G) by
// 27·n·H(G) (Lemma 17) and check the Monte-Carlo meeting time against it.
func TestLemma18MeetingBound(t *testing.T) {
	r := xrand.New(13)
	for _, g := range []graph.Graph{graph.Cycle(10), graph.NewClique(8)} {
		h := ClassicWorstHittingExact(g)
		limit := 2 * bounds.HittingPopulationUpper(g.N(), h)
		m := MeetingMC(g, 0, g.N()/2, r, 300)
		if m > limit {
			t.Errorf("%s: M = %v exceeds 2·27·n·H = %v", g.Name(), m, limit)
		}
	}
}

// TestPopulationExactRegularSlowdown — on regular graphs the population
// walk is exactly the classic walk slowed by m/Δ.
func TestPopulationExactRegularSlowdown(t *testing.T) {
	for _, g := range []graph.Graph{graph.Cycle(12), graph.Hypercube(4), graph.NewClique(8)} {
		classic := ClassicHittingExact(g, 0)
		pop := PopulationHittingExact(g, 0)
		factor := float64(g.M()) / float64(g.Degree(0))
		for v := 1; v < g.N(); v++ {
			if math.Abs(pop[v]-factor*classic[v]) > 1e-6*pop[v]+1e-9 {
				t.Fatalf("%s: h_P(%d) = %v, want %v", g.Name(), v, pop[v], factor*classic[v])
			}
		}
	}
}

// TestPopulationExactMatchesMC validates the exact solver against Monte
// Carlo on an irregular graph.
func TestPopulationExactMatchesMC(t *testing.T) {
	g := graph.Lollipop(5, 4)
	exact := PopulationHittingExact(g, 0)
	r := xrand.New(23)
	for _, v := range []int{3, g.N() - 1} {
		mc := PopulationHittingMC(g, v, 0, r, 2000)
		if math.Abs(mc-exact[v]) > 0.1*exact[v] {
			t.Errorf("h_P(%d): mc %v, exact %v", v, mc, exact[v])
		}
	}
}

// TestLemma17Exact verifies H_P(G) <= 27·n·H(G) exactly on several
// families, including irregular ones.
func TestLemma17Exact(t *testing.T) {
	for _, g := range []graph.Graph{
		graph.Cycle(10), graph.Star(10), graph.Lollipop(5, 5), graph.Path(10),
	} {
		hp := PopulationWorstHittingExact(g)
		h := ClassicWorstHittingExact(g)
		if hp > 27*float64(g.N())*h {
			t.Errorf("%s: H_P = %v exceeds 27nH = %v", g.Name(), hp, 27*float64(g.N())*h)
		}
		if hp < h {
			t.Errorf("%s: population walk cannot be faster than classic in steps", g.Name())
		}
	}
}

// TestMeetingExactMatchesMC validates the product-chain solver against
// Monte Carlo.
func TestMeetingExactMatchesMC(t *testing.T) {
	g := graph.Cycle(8)
	exact := MeetingExact(g)
	r := xrand.New(29)
	for _, pair := range [][2]int{{0, 4}, {0, 1}, {2, 7}} {
		mc := MeetingMC(g, pair[0], pair[1], r, 3000)
		want := exact[pair[0]][pair[1]]
		if math.Abs(mc-want) > 0.1*want {
			t.Errorf("M(%d,%d): mc %v, exact %v", pair[0], pair[1], mc, want)
		}
	}
}

func TestMeetingExactSymmetricZeroDiagonal(t *testing.T) {
	g := graph.Lollipop(4, 3)
	m := MeetingExact(g)
	for u := 0; u < g.N(); u++ {
		if m[u][u] != 0 {
			t.Fatalf("M(%d,%d) = %v", u, u, m[u][u])
		}
		for v := u + 1; v < g.N(); v++ {
			if m[u][v] != m[v][u] {
				t.Fatalf("asymmetric meeting time at (%d,%d)", u, v)
			}
			if m[u][v] <= 0 {
				t.Fatalf("nonpositive M(%d,%d) = %v", u, v, m[u][v])
			}
		}
	}
}

// TestLemma18Exact verifies M(u,v) <= 2·H_P(G) exactly for all pairs on
// several families, including irregular graphs.
func TestLemma18Exact(t *testing.T) {
	for _, g := range []graph.Graph{
		graph.Cycle(10), graph.NewClique(8), graph.Star(9),
		graph.Lollipop(4, 4), graph.Path(9),
	} {
		hp := PopulationWorstHittingExact(g)
		meet := MeetingExact(g)
		for u := 0; u < g.N(); u++ {
			for v := u + 1; v < g.N(); v++ {
				if meet[u][v] > 2*hp+1e-6 {
					t.Errorf("%s: M(%d,%d) = %v exceeds 2·H_P = %v",
						g.Name(), u, v, meet[u][v], 2*hp)
				}
			}
		}
	}
}

// TestMeetingExactAdjacentPairOnEdgeGraph — on K_2 the two walks meet when
// the single edge is sampled: M = 1 step exactly.
func TestMeetingExactAdjacentPairOnEdgeGraph(t *testing.T) {
	g := graph.Path(2)
	m := MeetingExact(g)
	if math.Abs(m[0][1]-1) > 1e-9 {
		t.Fatalf("M(0,1) on K_2 = %v, want 1", m[0][1])
	}
}

func TestMeetingMCPanicsOnSameStart(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MeetingMC(graph.Cycle(5), 2, 2, xrand.New(1), 1)
}

func TestWorstHittingMCNearExact(t *testing.T) {
	g := graph.Path(10) // worst pair is end-to-end, included via extreme degrees
	r := xrand.New(17)
	got := WorstHittingMC(g, r, 4, 2000)
	want := bounds.HittingPathEnds(10)
	if got < 0.8*want || got > 1.2*want {
		t.Errorf("H(G) MC = %v, want ≈ %v", got, want)
	}
}

// TestProposition20DenseRandomHitting — H(G(n, p)) ∈ O(n) for constant p;
// measured on a modest instance, H(G)/n should be a small constant.
func TestProposition20DenseRandomHitting(t *testing.T) {
	r := xrand.New(19)
	g, err := graph.Gnp(96, 0.5, r)
	if err != nil {
		t.Fatal(err)
	}
	h := ClassicWorstHittingExact(g)
	if ratio := h / float64(g.N()); ratio > 6 {
		t.Errorf("H(G)/n = %v too large for dense random graph", ratio)
	}
}

func TestExactHittingValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ClassicHittingExact(graph.Cycle(5), 9)
}
