package beauquier

import (
	"testing"

	"popgraph/internal/core"
	"popgraph/internal/graph"
	"popgraph/internal/sim"
	"popgraph/internal/xrand"
)

// scanCounts recomputes the token counters from scratch.
func scanCounts(p *Protocol, n int) core.TokenCounts {
	var c core.TokenCounts
	for v := 0; v < n; v++ {
		c.Add(p.State(v), 1)
	}
	return c
}

// TestInvariantsDuringRun steps the protocol manually and verifies after
// every interaction the paper's invariants: counters match a full scan,
// #candidates = #black + #white, and #black >= 1.
func TestInvariantsDuringRun(t *testing.T) {
	g := graph.Torus2D(4, 4)
	p := New()
	r := xrand.New(5)
	p.Reset(g, r)
	for step := 0; step < 200000 && !p.Stable(); step++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		c := p.Counts()
		if c.Candidates != c.Black+c.White {
			t.Fatalf("step %d: invariant broken: %+v", step, c)
		}
		if c.Black < 1 {
			t.Fatalf("step %d: black tokens vanished: %+v", step, c)
		}
		if step%997 == 0 {
			if got := scanCounts(p, g.N()); got != c {
				t.Fatalf("step %d: counters %+v != scan %+v", step, c, got)
			}
		}
	}
	if !p.Stable() {
		t.Fatal("did not stabilize within budget")
	}
	if got := scanCounts(p, g.N()); got != p.Counts() {
		t.Fatalf("final counters mismatch")
	}
}

// TestCountersAccurateAfterFusedRun — the fused table kernels mutate the
// state array behind Step's back and ReloadCounters rebuilds the token
// counters at the end of the run — Counts(), Leaders() and Stable()
// must agree with a full scan afterwards, for capped and stabilized
// runs alike.
func TestCountersAccurateAfterFusedRun(t *testing.T) {
	g := graph.Torus2D(4, 4)
	for _, maxSteps := range []int64{100, 0} {
		p := New()
		res := sim.Run(g, p, xrand.New(8), sim.Options{MaxSteps: maxSteps})
		if pl, err := sim.Compile(g, sim.Options{}); err != nil || pl.ProtocolEngine(p) != "table" {
			t.Fatalf("run did not take the fused path (%v, %v)", pl.ProtocolEngine(p), err)
		}
		if got := scanCounts(p, g.N()); got != p.Counts() {
			t.Fatalf("cap %d: counters %+v != scan %+v", maxSteps, p.Counts(), got)
		}
		if p.Leaders() != sim.CountLeaders(g, p) {
			t.Fatalf("cap %d: Leaders() %d != scan %d", maxSteps, p.Leaders(), sim.CountLeaders(g, p))
		}
		if p.Stable() != res.Stabilized {
			t.Fatalf("cap %d: Stable() %v but run reported %v", maxSteps, p.Stable(), res.Stabilized)
		}
	}
}

func TestStabilizesOnFamilies(t *testing.T) {
	graphs := []graph.Graph{
		graph.NewClique(16),
		graph.Cycle(16),
		graph.Star(16),
		graph.Path(12),
		graph.Hypercube(4),
		graph.Lollipop(6, 6),
	}
	for _, g := range graphs {
		t.Run(g.Name(), func(t *testing.T) {
			p := New()
			res := sim.Run(g, p, xrand.New(11), sim.Options{})
			if !res.Stabilized {
				t.Fatalf("no stabilization in %d steps", res.Steps)
			}
			if sim.CountLeaders(g, p) != 1 || p.Leaders() != 1 {
				t.Fatalf("leaders: scan %d counter %d", sim.CountLeaders(g, p), p.Leaders())
			}
		})
	}
}

func TestCandidateSubsetInput(t *testing.T) {
	g := graph.Cycle(12)
	p := NewWithCandidates([]int{3, 7, 9})
	res := sim.Run(g, p, xrand.New(2), sim.Options{})
	if !res.Stabilized {
		t.Fatal("did not stabilize")
	}
	// Only an original candidate can win: followers are never promoted.
	if res.Leader != 3 && res.Leader != 7 && res.Leader != 9 {
		t.Fatalf("leader %d was not a candidate", res.Leader)
	}
}

func TestSingleCandidateStabilizesImmediately(t *testing.T) {
	g := graph.Path(6)
	p := NewWithCandidates([]int{2})
	p.Reset(g, xrand.New(1))
	if !p.Stable() {
		t.Fatal("single candidate with one black token must already be stable")
	}
	if p.Output(2) != core.Leader {
		t.Fatal("candidate must output leader")
	}
}

func TestConstructorValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty", func() { NewWithCandidates(nil) })
	mustPanic("out-of-range", func() {
		p := NewWithCandidates([]int{99})
		p.Reset(graph.Path(4), xrand.New(1))
	})
	mustPanic("duplicate", func() {
		p := NewWithCandidates([]int{1, 1})
		p.Reset(graph.Path(4), xrand.New(1))
	})
}

func TestCandidatesNeverReappear(t *testing.T) {
	g := graph.NewClique(10)
	p := New()
	r := xrand.New(9)
	p.Reset(g, r)
	wasFollower := make([]bool, g.N())
	for step := 0; step < 50000 && !p.Stable(); step++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		for _, w := range []int{u, v} {
			cand := p.State(w).Candidate()
			if wasFollower[w] && cand {
				t.Fatalf("node %d became candidate again at step %d", w, step)
			}
			if !cand {
				wasFollower[w] = true
			}
		}
	}
}

func TestStateCountAndName(t *testing.T) {
	p := New()
	if p.StateCount(1000) != 6 {
		t.Fatal("state count must be 6")
	}
	if p.Name() != "six-state" {
		t.Fatalf("name %q", p.Name())
	}
}

func TestStabilityIsPermanent(t *testing.T) {
	// After Stable() first holds, keep stepping: output must never change.
	g := graph.Cycle(10)
	p := New()
	r := xrand.New(21)
	res := sim.Run(g, p, r, sim.Options{})
	if !res.Stabilized {
		t.Fatal("did not stabilize")
	}
	leader := res.Leader
	for step := 0; step < 20000; step++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		if !p.Stable() {
			t.Fatalf("stability lost at extra step %d", step)
		}
		if p.Output(leader) != core.Leader {
			t.Fatalf("leader output changed at extra step %d", step)
		}
	}
	if sim.CountLeaders(g, p) != 1 {
		t.Fatal("leader count changed after stability")
	}
}
