// Package beauquier implements the constant-state (6-state) stable leader
// election protocol of Beauquier, Blanchard and Burman (OPODIS 2013), the
// paper's space-efficiency baseline (Theorem 16).
//
// Each leader candidate starts holding a black token. Tokens perform
// population-model random walks (they swap carriers on every interaction).
// When two black tokens meet, one is recolored white; when a candidate
// receives a white token, it becomes a follower and destroys the token.
// The invariant #candidates = #black + #white with #black >= 1 guarantees
// exactly one candidate survives; the configuration is stable once one
// black and no white tokens remain.
//
// Expected stabilization time is O(H(G)·n log n), where H(G) is the
// worst-case hitting time of a classic random walk on G (Theorem 16,
// via Sudo et al. 2021).
package beauquier

import (
	"fmt"

	"popgraph/internal/core"
	"popgraph/internal/graph"
	"popgraph/internal/sim"
	"popgraph/internal/xrand"
)

// Protocol is the six-state token protocol. Use New or NewWithCandidates.
type Protocol struct {
	candidates []int // nil means "all nodes are candidates"
	states     []core.TokenState
	counts     core.TokenCounts
}

var _ sim.Protocol = (*Protocol)(nil)

// New returns the protocol with every node starting as a leader candidate,
// the standard leader-election input.
func New() *Protocol { return &Protocol{} }

// NewWithCandidates returns the protocol with the given nonempty candidate
// set as input, the variant used as a backup protocol (Theorem 16 input).
func NewWithCandidates(candidates []int) *Protocol {
	if len(candidates) == 0 {
		panic("beauquier: candidate set must be nonempty")
	}
	return &Protocol{candidates: append([]int(nil), candidates...)}
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return "six-state" }

// StateCount returns 6 for any population size.
func (p *Protocol) StateCount(int) float64 { return 6 }

// Reset implements sim.Protocol.
func (p *Protocol) Reset(g graph.Graph, _ *xrand.Rand) {
	n := g.N()
	p.states = make([]core.TokenState, n)
	p.counts = core.TokenCounts{}
	if p.candidates == nil {
		for v := range p.states {
			p.states[v] = core.CandidateBlack
		}
		p.counts = core.TokenCounts{Candidates: n, Black: n}
		return
	}
	for v := range p.states {
		p.states[v] = core.FollowerNone
	}
	for _, v := range p.candidates {
		if v < 0 || v >= n {
			panic(fmt.Sprintf("beauquier: candidate %d out of range [0,%d)", v, n))
		}
		if p.states[v] == core.CandidateBlack {
			panic(fmt.Sprintf("beauquier: duplicate candidate %d", v))
		}
		p.states[v] = core.CandidateBlack
		p.counts.Add(core.CandidateBlack, 1)
	}
}

// Step implements sim.Protocol.
func (p *Protocol) Step(u, v int) {
	a, b := p.states[u], p.states[v]
	na, nb := core.TokenTransition(a, b)
	if na != a {
		p.counts.Add(a, -1)
		p.counts.Add(na, 1)
		p.states[u] = na
	}
	if nb != b {
		p.counts.Add(b, -1)
		p.counts.Add(nb, 1)
		p.states[v] = nb
	}
}

// Output implements sim.Protocol.
func (p *Protocol) Output(v int) core.Role { return p.states[v].Role() }

// Leaders implements sim.Protocol.
func (p *Protocol) Leaders() int { return p.counts.Candidates }

// Stable implements sim.Protocol: one black token, no white tokens.
func (p *Protocol) Stable() bool { return p.counts.Stable() }

// Counts exposes the token counters for tests and instrumentation.
func (p *Protocol) Counts() core.TokenCounts { return p.counts }

// State exposes node v's raw state for tests and instrumentation.
func (p *Protocol) State(v int) core.TokenState { return p.states[v] }
