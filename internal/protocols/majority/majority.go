// Package majority implements exact two-valued majority on arbitrary
// connected interaction graphs with four states, the "other fundamental
// problem" the paper's conclusions point to as a direction for the same
// token-based techniques (cf. Bénézit, Thiran and Vetterli's interval
// consensus and the population-protocol majority literature).
//
// Each node starts with an opinion in {0, 1} held strongly. Strong
// opinions act like the paper's random-walking tokens:
//
//   - two opposite strong opinions annihilate into weak opinions
//     (preserving the difference #strong1 − #strong0, the invariant that
//     makes the protocol exact);
//   - a strong opinion meeting a weak one moves across the edge and
//     converts the weak node's sign, performing exactly the
//     population-model random walk of Section 4;
//   - weak opinions never interact with each other.
//
// Once the minority's strong opinions are annihilated (a meeting-time
// argument, Lemma 18-style), the surviving strong opinions walk the graph
// converting every weak node (a hitting-time argument, Lemma 19-style),
// so stabilization takes O(H(G)·n·log n) expected steps — the same bound
// as the six-state leader election protocol. Ties (equal counts) never
// stabilize and are rejected as input.
package majority

import (
	"fmt"

	"popgraph/internal/graph"
	"popgraph/internal/xrand"
)

// state is one of the four node states.
type state uint8

const (
	weak0 state = iota
	weak1
	strong0
	strong1
)

// Protocol is the 4-state exact majority protocol. It does not implement
// sim.Protocol (outputs are opinions, not leader/follower); it has the
// same Reset/Step/Stable shape and its own Opinion output.
type Protocol struct {
	inputs []bool // initial opinions; nil selected at Reset via Inputs
	states []state

	counts [4]int
}

// New returns the protocol with the given initial opinions (length must
// equal the graph size at Reset; must not be a tie).
func New(inputs []bool) *Protocol {
	return &Protocol{inputs: append([]bool(nil), inputs...)}
}

// Name identifies the protocol.
func (p *Protocol) Name() string { return "four-state-majority" }

// StateCount returns 4.
func (p *Protocol) StateCount(int) float64 { return 4 }

// Reset initializes every node to a strong copy of its input opinion.
func (p *Protocol) Reset(g graph.Graph, _ *xrand.Rand) {
	n := g.N()
	if len(p.inputs) != n {
		panic(fmt.Sprintf("majority: %d inputs for %d nodes", len(p.inputs), n))
	}
	ones := 0
	for _, b := range p.inputs {
		if b {
			ones++
		}
	}
	if 2*ones == n {
		panic("majority: tie inputs never stabilize; supply a strict majority")
	}
	p.states = make([]state, n)
	p.counts = [4]int{}
	for v, b := range p.inputs {
		if b {
			p.states[v] = strong1
		} else {
			p.states[v] = strong0
		}
		p.counts[p.states[v]]++
	}
}

// Step applies one interaction (u initiator, v responder).
func (p *Protocol) Step(u, v int) {
	a, b := p.states[u], p.states[v]
	na, nb := transition(a, b)
	if na != a {
		p.counts[a]--
		p.counts[na]++
		p.states[u] = na
	}
	if nb != b {
		p.counts[b]--
		p.counts[nb]++
		p.states[v] = nb
	}
}

// transition implements the four-state rules.
func transition(a, b state) (state, state) {
	switch {
	// Annihilation: opposite strong opinions cancel into weak ones.
	case a == strong0 && b == strong1:
		return weak0, weak1
	case a == strong1 && b == strong0:
		return weak1, weak0
	// Walk + convert: a strong opinion crosses the edge, converting the
	// weak node it leaves behind to its own sign.
	case a == strong0 && (b == weak0 || b == weak1):
		return weak0, strong0
	case a == strong1 && (b == weak0 || b == weak1):
		return weak1, strong1
	case b == strong0 && (a == weak0 || a == weak1):
		return strong0, weak0
	case b == strong1 && (a == weak0 || a == weak1):
		return strong1, weak1
	// Strong agreement or weak pairs: no change.
	default:
		return a, b
	}
}

// Opinion returns node v's current output opinion.
func (p *Protocol) Opinion(v int) bool {
	s := p.states[v]
	return s == weak1 || s == strong1
}

// Ones returns the number of nodes currently outputting opinion 1.
func (p *Protocol) Ones() int { return p.counts[weak1] + p.counts[strong1] }

// StrongDifference returns #strong1 − #strong0, the conserved quantity
// equal to the input difference; tests assert its invariance.
func (p *Protocol) StrongDifference() int { return p.counts[strong1] - p.counts[strong0] }

// Stable reports whether the configuration is stable: only one sign
// remains (weak and strong), so no rule can ever change an output.
func (p *Protocol) Stable() bool {
	zeros := p.counts[weak0] + p.counts[strong0]
	ones := p.counts[weak1] + p.counts[strong1]
	return (zeros == 0 && p.counts[strong1] > 0) || (ones == 0 && p.counts[strong0] > 0)
}

// Run executes the stochastic scheduler until stabilization or maxSteps;
// it returns the step count and whether it stabilized.
func (p *Protocol) Run(g graph.Graph, r *xrand.Rand, maxSteps int64) (int64, bool) {
	p.Reset(g, r)
	for t := int64(1); t <= maxSteps; t++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		if p.Stable() {
			return t, true
		}
	}
	return maxSteps, false
}
