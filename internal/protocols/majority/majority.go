// Package majority implements exact two-valued majority on arbitrary
// connected interaction graphs with four states, the "other fundamental
// problem" the paper's conclusions point to as a direction for the same
// token-based techniques (cf. Bénézit, Thiran and Vetterli's interval
// consensus and the population-protocol majority literature).
//
// Each node starts with an opinion in {0, 1} held strongly. Strong
// opinions act like the paper's random-walking tokens:
//
//   - two opposite strong opinions annihilate into weak opinions
//     (preserving the difference #strong1 − #strong0, the invariant that
//     makes the protocol exact);
//   - a strong opinion meeting a weak one moves across the edge and
//     converts the weak node's sign, performing exactly the
//     population-model random walk of Section 4;
//   - weak opinions never interact with each other.
//
// Once the minority's strong opinions are annihilated (a meeting-time
// argument, Lemma 18-style), the surviving strong opinions walk the graph
// converting every weak node (a hitting-time argument, Lemma 19-style),
// so stabilization takes O(H(G)·n·log n) expected steps — the same bound
// as the six-state leader election protocol. Ties (equal counts) never
// stabilize and are rejected as input.
//
// The protocol implements sim.Protocol so it runs through the compiled
// execution plans like every leader-election protocol: Output maps
// opinion 1 to core.Leader and opinion 0 to core.Follower (so Leaders()
// counts the nodes currently outputting 1 — a Result's Leader field is
// usually −1, majority being a many-winners problem). Its four states
// also make it sim.Tabular: the transition table, generated from Step
// itself, depends on the input's majority sign (the stability functional
// counts the losing side's nodes), so it is compiled per input set.
package majority

import (
	"fmt"

	"popgraph/internal/core"
	"popgraph/internal/graph"
	"popgraph/internal/sim"
	"popgraph/internal/xrand"
)

// state is one of the four node states.
type state = uint8

const (
	weak0 state = iota
	weak1
	strong0
	strong1
)

// Protocol is the 4-state exact majority protocol.
type Protocol struct {
	inputs []bool // initial opinions, fixed at New
	states []uint8

	counts [4]int
	table  *core.TransitionTable
}

var _ sim.Tabular = (*Protocol)(nil)

// New returns the protocol with the given initial opinions (length must
// equal the graph size at Reset; must not be a tie).
func New(inputs []bool) *Protocol {
	return &Protocol{inputs: append([]bool(nil), inputs...)}
}

// Name identifies the protocol.
func (p *Protocol) Name() string { return "four-state-majority" }

// StateCount returns 4.
func (p *Protocol) StateCount(int) float64 { return 4 }

// margin returns #ones − #zeros of the input opinions.
func (p *Protocol) margin() int {
	ones := 0
	for _, b := range p.inputs {
		if b {
			ones++
		}
	}
	return 2*ones - len(p.inputs)
}

// Reset initializes every node to a strong copy of its input opinion.
func (p *Protocol) Reset(g graph.Graph, _ *xrand.Rand) {
	n := g.N()
	if len(p.inputs) != n {
		panic(fmt.Sprintf("majority: %d inputs for %d nodes", len(p.inputs), n))
	}
	if p.margin() == 0 {
		panic("majority: tie inputs never stabilize; supply a strict majority")
	}
	p.states = make([]uint8, n)
	p.counts = [4]int{}
	for v, b := range p.inputs {
		if b {
			p.states[v] = strong1
		} else {
			p.states[v] = strong0
		}
		p.counts[p.states[v]]++
	}
}

// Step applies one interaction (u initiator, v responder).
func (p *Protocol) Step(u, v int) {
	a, b := p.states[u], p.states[v]
	na, nb := transition(a, b)
	if na != a {
		p.counts[a]--
		p.counts[na]++
		p.states[u] = na
	}
	if nb != b {
		p.counts[b]--
		p.counts[nb]++
		p.states[v] = nb
	}
}

// transition implements the four-state rules.
func transition(a, b state) (state, state) {
	switch {
	// Annihilation: opposite strong opinions cancel into weak ones.
	case a == strong0 && b == strong1:
		return weak0, weak1
	case a == strong1 && b == strong0:
		return weak1, weak0
	// Walk + convert: a strong opinion crosses the edge, converting the
	// weak node it leaves behind to its own sign.
	case a == strong0 && (b == weak0 || b == weak1):
		return weak0, strong0
	case a == strong1 && (b == weak0 || b == weak1):
		return weak1, strong1
	case b == strong0 && (a == weak0 || a == weak1):
		return strong0, weak0
	case b == strong1 && (a == weak0 || a == weak1):
		return strong1, weak1
	// Strong agreement or weak pairs: no change.
	default:
		return a, b
	}
}

// Opinion returns node v's current output opinion.
func (p *Protocol) Opinion(v int) bool {
	s := p.states[v]
	return s == weak1 || s == strong1
}

// Output implements sim.Protocol: opinion 1 outputs Leader, opinion 0
// Follower (the Role encoding of the binary opinion).
func (p *Protocol) Output(v int) core.Role {
	if p.Opinion(v) {
		return core.Leader
	}
	return core.Follower
}

// Ones returns the number of nodes currently outputting opinion 1.
func (p *Protocol) Ones() int { return p.counts[weak1] + p.counts[strong1] }

// Leaders implements sim.Protocol: the number of nodes outputting
// opinion 1 (see Output).
func (p *Protocol) Leaders() int { return p.Ones() }

// StrongDifference returns #strong1 − #strong0, the conserved quantity
// equal to the input difference; tests assert its invariance.
func (p *Protocol) StrongDifference() int { return p.counts[strong1] - p.counts[strong0] }

// Stable reports whether the configuration is stable: only one sign
// remains (weak and strong), so no rule can ever change an output.
func (p *Protocol) Stable() bool {
	zeros := p.counts[weak0] + p.counts[strong0]
	ones := p.counts[weak1] + p.counts[strong1]
	return (zeros == 0 && p.counts[strong1] > 0) || (ones == 0 && p.counts[strong0] > 0)
}

// Table implements sim.Tabular. The stability functional counts the
// losing side's nodes (weak and strong) with target 0: the conserved
// strong difference keeps the winning side's strong count positive, so
// "no loser left" is exactly Stable() on every reachable configuration.
// The sign, and hence the table, is fixed by the inputs; tie inputs
// return nil (Reset rejects them anyway). Generated by probing Step
// over every state pair.
func (p *Protocol) Table() *core.TransitionTable {
	d := p.margin()
	if d == 0 {
		return nil
	}
	if p.table == nil {
		losing := func(s uint8) bool {
			if d > 0 {
				return s == weak0 || s == strong0
			}
			return s == weak1 || s == strong1
		}
		tab, err := core.NewTransitionTable(4,
			func(a, b uint8) (uint8, uint8) {
				probe := &Protocol{states: []uint8{a, b}}
				probe.Step(0, 1)
				return probe.states[0], probe.states[1]
			},
			func(s uint8) core.Role {
				if s == weak1 || s == strong1 {
					return core.Leader
				}
				return core.Follower
			},
			func(s uint8) int {
				if losing(s) {
					return 1
				}
				return 0
			},
			0)
		if err != nil {
			panic("majority: " + err.Error())
		}
		p.table = tab
	}
	return p.table
}

// TableStates implements sim.Tabular: the live state bytes, aliased.
func (p *Protocol) TableStates() []uint8 { return p.states }

// ReloadCounters implements sim.Tabular: rebuild the four state counts
// by full scan after a fused kernel mutated the state array directly;
// the kernel's leader count cross-checks the counter maintenance.
func (p *Protocol) ReloadCounters(leaders, _ int) {
	var c [4]int
	for _, s := range p.states {
		c[s]++
	}
	if ones := c[weak1] + c[strong1]; ones != leaders {
		panic(fmt.Sprintf("majority: table kernel ones count %d, state scan %d", leaders, ones))
	}
	p.counts = c
}
