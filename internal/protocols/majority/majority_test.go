package majority

import (
	"testing"

	"popgraph/internal/graph"
	"popgraph/internal/xrand"
)

// inputsWithOnes builds an n-node input with the given number of ones.
func inputsWithOnes(n, ones int) []bool {
	in := make([]bool, n)
	for i := 0; i < ones; i++ {
		in[i] = true
	}
	return in
}

func TestComputesMajorityOnFamilies(t *testing.T) {
	graphs := []graph.Graph{
		graph.NewClique(16),
		graph.Cycle(15),
		graph.Star(12),
		graph.Torus2D(3, 4),
		graph.Lollipop(5, 4),
	}
	for _, g := range graphs {
		t.Run(g.Name(), func(t *testing.T) {
			n := g.N()
			for _, ones := range []int{1, n/2 - 1, n/2 + 1, n - 1} {
				if ones <= 0 || ones >= n || 2*ones == n {
					continue
				}
				p := New(inputsWithOnes(n, ones))
				r := xrand.New(uint64(100*n + ones))
				steps, ok := p.Run(g, r, 1<<32)
				if !ok {
					t.Fatalf("ones=%d: no stabilization", ones)
				}
				want := 2*ones > n
				for v := 0; v < n; v++ {
					if p.Opinion(v) != want {
						t.Fatalf("ones=%d: node %d opinion %v, majority %v (after %d steps)",
							ones, v, p.Opinion(v), want, steps)
					}
				}
			}
		})
	}
}

// TestStrongDifferenceInvariant: #strong1 − #strong0 is conserved by
// every interaction — the exactness invariant.
func TestStrongDifferenceInvariant(t *testing.T) {
	g := graph.Torus2D(4, 4)
	p := New(inputsWithOnes(16, 9))
	r := xrand.New(7)
	p.Reset(g, r)
	want := p.StrongDifference()
	if want != 2 {
		t.Fatalf("initial difference %d, want 2", want)
	}
	for i := 0; i < 100000 && !p.Stable(); i++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		if p.StrongDifference() != want {
			t.Fatalf("step %d: difference %d, want %d", i, p.StrongDifference(), want)
		}
	}
	if !p.Stable() {
		t.Fatal("did not stabilize")
	}
}

func TestStabilityIsPermanent(t *testing.T) {
	g := graph.NewClique(10)
	p := New(inputsWithOnes(10, 7))
	r := xrand.New(11)
	if _, ok := p.Run(g, r, 1<<30); !ok {
		t.Fatal("did not stabilize")
	}
	for i := 0; i < 30000; i++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		if !p.Stable() {
			t.Fatalf("stability lost at extra step %d", i)
		}
	}
	// Adversarial hammering of every pair keeps outputs fixed too.
	g.ForEachEdge(func(u, w int) {
		p.Step(u, w)
		p.Step(w, u)
		if !p.Stable() {
			t.Fatalf("stability lost under adversarial pair (%d,%d)", u, w)
		}
	})
}

func TestRejectsTies(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on tie input")
		}
	}()
	p := New(inputsWithOnes(8, 4))
	p.Reset(graph.NewClique(8), xrand.New(1))
}

func TestRejectsWrongInputLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := New(inputsWithOnes(5, 2))
	p.Reset(graph.NewClique(8), xrand.New(1))
}

func TestTransitionTotalAndConservative(t *testing.T) {
	all := []state{weak0, weak1, strong0, strong1}
	sgn := func(s state) int {
		switch s {
		case strong0:
			return -1
		case strong1:
			return 1
		default:
			return 0
		}
	}
	for _, a := range all {
		for _, b := range all {
			na, nb := transition(a, b)
			if sgn(na)+sgn(nb) != sgn(a)+sgn(b) {
				t.Errorf("(%v,%v) -> (%v,%v): strong difference not conserved", a, b, na, nb)
			}
		}
	}
}

func TestStateCountAndName(t *testing.T) {
	p := New(inputsWithOnes(4, 3))
	if p.StateCount(100) != 4 || p.Name() == "" {
		t.Fatal("metadata")
	}
}
