package majority

import (
	"testing"

	"popgraph/internal/graph"
	"popgraph/internal/sim"
	"popgraph/internal/xrand"
)

// inputsWithOnes builds an n-node input with the given number of ones.
func inputsWithOnes(n, ones int) []bool {
	in := make([]bool, n)
	for i := 0; i < ones; i++ {
		in[i] = true
	}
	return in
}

func TestComputesMajorityOnFamilies(t *testing.T) {
	graphs := []graph.Graph{
		graph.NewClique(16),
		graph.Cycle(15),
		graph.Star(12),
		graph.Torus2D(3, 4),
		graph.Lollipop(5, 4),
	}
	for _, g := range graphs {
		t.Run(g.Name(), func(t *testing.T) {
			n := g.N()
			for _, ones := range []int{1, n/2 - 1, n/2 + 1, n - 1} {
				if ones <= 0 || ones >= n || 2*ones == n {
					continue
				}
				p := New(inputsWithOnes(n, ones))
				r := xrand.New(uint64(100*n + ones))
				res := sim.Run(g, p, r, sim.Options{MaxSteps: 1 << 32})
				if !res.Stabilized {
					t.Fatalf("ones=%d: no stabilization", ones)
				}
				steps := res.Steps
				want := 2*ones > n
				for v := 0; v < n; v++ {
					if p.Opinion(v) != want {
						t.Fatalf("ones=%d: node %d opinion %v, majority %v (after %d steps)",
							ones, v, p.Opinion(v), want, steps)
					}
				}
			}
		})
	}
}

// TestStrongDifferenceInvariant — #strong1 − #strong0 is conserved by
// every interaction — the exactness invariant.
func TestStrongDifferenceInvariant(t *testing.T) {
	g := graph.Torus2D(4, 4)
	p := New(inputsWithOnes(16, 9))
	r := xrand.New(7)
	p.Reset(g, r)
	want := p.StrongDifference()
	if want != 2 {
		t.Fatalf("initial difference %d, want 2", want)
	}
	for i := 0; i < 100000 && !p.Stable(); i++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		if p.StrongDifference() != want {
			t.Fatalf("step %d: difference %d, want %d", i, p.StrongDifference(), want)
		}
	}
	if !p.Stable() {
		t.Fatal("did not stabilize")
	}
}

func TestStabilityIsPermanent(t *testing.T) {
	g := graph.NewClique(10)
	p := New(inputsWithOnes(10, 7))
	r := xrand.New(11)
	if !sim.Run(g, p, r, sim.Options{MaxSteps: 1 << 30}).Stabilized {
		t.Fatal("did not stabilize")
	}
	for i := 0; i < 30000; i++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		if !p.Stable() {
			t.Fatalf("stability lost at extra step %d", i)
		}
	}
	// Adversarial hammering of every pair keeps outputs fixed too.
	g.ForEachEdge(func(u, w int) {
		p.Step(u, w)
		p.Step(w, u)
		if !p.Stable() {
			t.Fatalf("stability lost under adversarial pair (%d,%d)", u, w)
		}
	})
}

func TestRejectsTies(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on tie input")
		}
	}()
	p := New(inputsWithOnes(8, 4))
	p.Reset(graph.NewClique(8), xrand.New(1))
}

func TestRejectsWrongInputLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := New(inputsWithOnes(5, 2))
	p.Reset(graph.NewClique(8), xrand.New(1))
}

func TestTransitionTotalAndConservative(t *testing.T) {
	all := []state{weak0, weak1, strong0, strong1}
	sgn := func(s state) int {
		switch s {
		case strong0:
			return -1
		case strong1:
			return 1
		default:
			return 0
		}
	}
	for _, a := range all {
		for _, b := range all {
			na, nb := transition(a, b)
			if sgn(na)+sgn(nb) != sgn(a)+sgn(b) {
				t.Errorf("(%v,%v) -> (%v,%v): strong difference not conserved", a, b, na, nb)
			}
		}
	}
}

func TestStateCountAndName(t *testing.T) {
	p := New(inputsWithOnes(4, 3))
	if p.StateCount(100) != 4 || p.Name() == "" {
		t.Fatal("metadata")
	}
}

// TestCountersMatchScans cross-checks the O(1) counters — Leaders()
// (= Ones), StrongDifference and the Stable predicate — against full
// state scans after every interaction of a scripted run, the same
// discipline beauquier's counters get.
func TestCountersMatchScans(t *testing.T) {
	g := graph.Torus2D(4, 4)
	p := New(inputsWithOnes(16, 10))
	p.Reset(g, xrand.New(3))
	r := xrand.New(4)
	for i := 0; i < 20000; i++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		var scan [4]int
		for w := 0; w < 16; w++ {
			scan[p.states[w]]++
		}
		if ones := scan[weak1] + scan[strong1]; ones != p.Ones() || ones != p.Leaders() {
			t.Fatalf("step %d: Ones()/Leaders() %d/%d != scan %d", i, p.Ones(), p.Leaders(), ones)
		}
		if scanLeaders := sim.CountLeaders(g, p); scanLeaders != p.Leaders() {
			t.Fatalf("step %d: Leaders() %d != output scan %d", i, p.Leaders(), scanLeaders)
		}
		if d := scan[strong1] - scan[strong0]; d != p.StrongDifference() {
			t.Fatalf("step %d: StrongDifference %d != scan %d", i, p.StrongDifference(), d)
		}
		zeros := scan[weak0] + scan[strong0]
		ones := scan[weak1] + scan[strong1]
		wantStable := (zeros == 0 && scan[strong1] > 0) || (ones == 0 && scan[strong0] > 0)
		if p.Stable() != wantStable {
			t.Fatalf("step %d: Stable() %v, scan says %v", i, p.Stable(), wantStable)
		}
		if p.Stable() {
			return
		}
	}
	t.Fatal("run did not stabilize within 20000 steps")
}

// TestTableMatchesStep — the per-sign generated tables agree with the
// hand-written transition on every state pair, and their stability
// functional (no losing-side nodes left) matches Stable on reachable
// configurations of either sign.
func TestTableMatchesStep(t *testing.T) {
	for _, ones := range []int{3, 1} { // majority-1 and majority-0 inputs
		p := New(inputsWithOnes(4, ones))
		tab := p.Table()
		if tab == nil || tab.K() != 4 {
			t.Fatalf("ones=%d: table %+v, want a 4-state machine", ones, tab)
		}
		for a := uint8(0); a < 4; a++ {
			for b := uint8(0); b < 4; b++ {
				wa, wb := transition(a, b)
				na, nb := tab.Next(a, b)
				if na != wa || nb != wb {
					t.Fatalf("ones=%d (%d,%d): table (%d,%d), transition (%d,%d)", ones, a, b, na, nb, wa, wb)
				}
			}
		}
		winnerStrong, loserStrong := strong1, strong0
		if ones == 1 {
			winnerStrong, loserStrong = strong0, strong1
		}
		for _, c := range []struct {
			states []uint8
			stable bool
		}{
			{[]uint8{winnerStrong, winnerStrong, winnerStrong}, true},
			{[]uint8{winnerStrong, loserStrong, winnerStrong}, false},
		} {
			if _, gap := tab.Counters(c.states); (gap == 0) != c.stable {
				t.Fatalf("ones=%d %v: gap %d, want stable=%v", ones, c.states, gap, c.stable)
			}
		}
	}
	if New(inputsWithOnes(4, 2)).Table() != nil {
		t.Fatal("tie inputs must not compile a table")
	}
}
