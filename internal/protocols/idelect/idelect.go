// Package idelect implements the time-efficient identifier-based protocol
// of Theorem 21: nodes generate k-bit identifiers from the stochasticity
// of the scheduler, broadcast the maximum, and interleave the six-state
// token protocol (labelled by the identifier) as an always-correct backup
// for the low-probability event that the maximum identifier collides.
//
// With k = ⌈4 log₂ n⌉ the protocol uses O(n⁴) states and stabilizes in
// O(B(G) + n log n) expected steps on any connected graph; k = ⌈3 log₂ n⌉
// suffices on regular graphs for O(n³) states.
package idelect

import (
	"fmt"
	"math"

	"popgraph/internal/core"
	"popgraph/internal/graph"
	"popgraph/internal/sim"
	"popgraph/internal/xrand"
)

// Protocol is the identifier protocol. Use New.
type Protocol struct {
	kFactor int // identifier length multiplier: k = ceil(kFactor·log2 n)

	k     uint   // identifier bit length for the current population
	limit uint64 // 2^k: ids below it are still being generated

	ids  []uint64
	toks []core.TokenState
	gen  []uint64 // self-generated identifier per node, 0 until finished

	counts     core.TokenCounts // global token counts (see Stable)
	maxID      uint64           // largest finished identifier seen, 0 if none
	countAtMax int              // nodes whose id equals maxID
}

var _ sim.Protocol = (*Protocol)(nil)

// New returns the protocol for general graphs (k = ⌈4 log₂ n⌉).
func New() *Protocol { return &Protocol{kFactor: 4} }

// NewRegular returns the variant for regular graphs (k = ⌈3 log₂ n⌉),
// trading a factor n of state space against a slightly larger collision
// probability that the backup still absorbs.
func NewRegular() *Protocol { return &Protocol{kFactor: 3} }

// NewWithFactor returns the protocol with k = ⌈factor·log₂ n⌉ identifier
// bits, for the state-space/collision-rate ablation (factor in [1, 8]).
// Small factors raise the duplicate-maximum probability n/2^k and push
// runs into the slow always-correct backup; the protocol stays correct.
func NewWithFactor(factor int) *Protocol {
	if factor < 1 || factor > 8 {
		panic(fmt.Sprintf("idelect: factor %d outside [1, 8]", factor))
	}
	return &Protocol{kFactor: factor}
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string {
	if p.kFactor == 3 {
		return "identifier-regular"
	}
	return "identifier"
}

// StateCount returns 6·(2^{k+1} − 1) ≈ 12·n^kFactor.
func (p *Protocol) StateCount(n int) float64 {
	k := p.bits(n)
	return 6 * (math.Pow(2, float64(k+1)) - 1)
}

func (p *Protocol) bits(n int) uint {
	k := uint(math.Ceil(float64(p.kFactor) * math.Log2(float64(n))))
	if k < 1 {
		k = 1
	}
	if k > 62 {
		panic(fmt.Sprintf("idelect: k = %d does not fit an identifier word", k))
	}
	return k
}

// Reset implements sim.Protocol.
func (p *Protocol) Reset(g graph.Graph, _ *xrand.Rand) {
	n := g.N()
	p.k = p.bits(n)
	p.limit = 1 << p.k
	p.ids = make([]uint64, n)
	for v := range p.ids {
		p.ids[v] = 1
	}
	p.toks = make([]core.TokenState, n) // FollowerNone
	p.gen = make([]uint64, n)
	p.counts = core.TokenCounts{}
	p.maxID = 0
	p.countAtMax = 0
}

// Step implements sim.Protocol. Rules applied in sequence (Section 4.2):
//
//  1. a node still generating appends its role bit: id ← 2·id + i
//     (i = 0 initiator, 1 responder); on crossing 2^k it starts a
//     six-state instance as a leader candidate;
//  2. a node seeing a larger finished identifier adopts it and joins that
//     instance as a follower;
//  3. both nodes run the six-state transition.
func (p *Protocol) Step(u, v int) {
	// Rule 1.
	if p.ids[u] < p.limit {
		p.ids[u] = 2 * p.ids[u] // + 0: initiator bit
		if p.ids[u] >= p.limit {
			p.finish(u)
		}
	}
	if p.ids[v] < p.limit {
		p.ids[v] = 2*p.ids[v] + 1 // responder bit
		if p.ids[v] >= p.limit {
			p.finish(v)
		}
	}
	// Rule 2. At most one side adopts (ids differ when both finished), and
	// a still-generating node adopts any finished neighbour identifier.
	if p.ids[u] < p.ids[v] && p.ids[v] >= p.limit {
		p.adopt(u, p.ids[v])
	} else if p.ids[v] < p.ids[u] && p.ids[u] >= p.limit {
		p.adopt(v, p.ids[u])
	}
	// Rule 3.
	a, b := p.toks[u], p.toks[v]
	na, nb := core.TokenTransition(a, b)
	if na != a {
		p.counts.Add(a, -1)
		p.counts.Add(na, 1)
		p.toks[u] = na
	}
	if nb != b {
		p.counts.Add(b, -1)
		p.counts.Add(nb, 1)
		p.toks[v] = nb
	}
}

// finish marks node w's identifier as complete: it becomes a candidate of
// its own instance and the max-identifier bookkeeping updates.
func (p *Protocol) finish(w int) {
	p.gen[w] = p.ids[w]
	old := p.toks[w]
	p.counts.Add(old, -1)
	p.counts.Add(core.CandidateBlack, 1)
	p.toks[w] = core.CandidateBlack
	switch id := p.ids[w]; {
	case id > p.maxID:
		p.maxID = id
		p.countAtMax = 1
	case id == p.maxID:
		p.countAtMax++
	}
}

// adopt makes node w join the instance with identifier id as a follower,
// destroying any token it carried (the token belonged to a dead instance).
func (p *Protocol) adopt(w int, id uint64) {
	p.ids[w] = id
	old := p.toks[w]
	if old != core.FollowerNone {
		p.counts.Add(old, -1)
		p.toks[w] = core.FollowerNone
	}
	if id == p.maxID {
		p.countAtMax++
	}
}

// Output implements sim.Protocol: the output of the embedded six-state
// instance.
func (p *Protocol) Output(v int) core.Role { return p.toks[v].Role() }

// Leaders implements sim.Protocol.
func (p *Protocol) Leaders() int { return p.counts.Candidates }

// Stable implements sim.Protocol: every node has adopted the maximum
// finished identifier and the (now unique) six-state instance has
// stabilized. At that point all tokens in the system belong to the maximum
// instance, so the global counters coincide with the instance's counters.
func (p *Protocol) Stable() bool {
	return p.maxID >= p.limit && p.countAtMax == len(p.ids) && p.counts.Stable()
}

// ID returns node v's current identifier (tests and experiments).
func (p *Protocol) ID(v int) uint64 { return p.ids[v] }

// Finished reports whether node v's identifier is fully generated.
func (p *Protocol) Finished(v int) bool { return p.ids[v] >= p.limit }

// K returns the identifier bit length chosen at Reset.
func (p *Protocol) K() uint { return p.k }

// MaxID returns the largest finished identifier, 0 if none yet.
func (p *Protocol) MaxID() uint64 { return p.maxID }

// GeneratedID returns the identifier node v generated itself, or 0 if v
// adopted a foreign identifier before finishing its own. Experiments use
// it to measure the Lemma 22 collision probability.
func (p *Protocol) GeneratedID(v int) uint64 { return p.gen[v] }
