package idelect

import (
	"testing"

	"popgraph/internal/core"
	"popgraph/internal/graph"
	"popgraph/internal/sim"
	"popgraph/internal/xrand"
)

func TestStabilizesOnFamilies(t *testing.T) {
	graphs := []graph.Graph{
		graph.NewClique(16),
		graph.Cycle(12),
		graph.Star(10),
		graph.Torus2D(3, 4),
		graph.Path(8),
	}
	for _, g := range graphs {
		t.Run(g.Name(), func(t *testing.T) {
			p := New()
			res := sim.Run(g, p, xrand.New(31), sim.Options{})
			if !res.Stabilized {
				t.Fatalf("no stabilization in %d steps", res.Steps)
			}
			if sim.CountLeaders(g, p) != 1 || p.Leaders() != 1 {
				t.Fatalf("leaders: scan %d counter %d", sim.CountLeaders(g, p), p.Leaders())
			}
			// All nodes must share the maximum finished identifier.
			max := p.MaxID()
			if max < 1<<p.K() {
				t.Fatalf("max id %d not finished (k=%d)", max, p.K())
			}
			for v := 0; v < g.N(); v++ {
				if p.ID(v) != max {
					t.Fatalf("node %d id %d != max %d after stabilization", v, p.ID(v), max)
				}
			}
		})
	}
}

func TestIdentifiersMonotone(t *testing.T) {
	g := graph.NewClique(10)
	p := New()
	r := xrand.New(3)
	p.Reset(g, r)
	prev := make([]uint64, g.N())
	for v := range prev {
		prev[v] = p.ID(v)
	}
	for step := 0; step < 100000 && !p.Stable(); step++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		for _, w := range []int{u, v} {
			if p.ID(w) < prev[w] {
				t.Fatalf("step %d: id of %d decreased %d -> %d", step, w, prev[w], p.ID(w))
			}
			prev[w] = p.ID(w)
		}
	}
}

func TestFinishedIdentifierRange(t *testing.T) {
	g := graph.Cycle(8)
	p := New()
	r := xrand.New(13)
	p.Reset(g, r)
	limit := uint64(1) << p.K()
	for step := 0; step < 500000 && !p.Stable(); step++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
	}
	if !p.Stable() {
		t.Fatal("did not stabilize")
	}
	for v := 0; v < g.N(); v++ {
		id := p.ID(v)
		if id < limit || id >= 2*limit {
			t.Fatalf("node %d id %d outside [2^k, 2^{k+1})", v, id)
		}
	}
}

func TestCountersMatchScan(t *testing.T) {
	g := graph.Torus2D(3, 3)
	p := New()
	r := xrand.New(17)
	p.Reset(g, r)
	for step := 0; step < 300000 && !p.Stable(); step++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		if step%211 != 0 {
			continue
		}
		// Recompute countAtMax and leader count by scanning.
		atMax, leaders := 0, 0
		for w := 0; w < g.N(); w++ {
			if p.MaxID() != 0 && p.ID(w) == p.MaxID() {
				atMax++
			}
			if p.Output(w) == core.Leader {
				leaders++
			}
		}
		if p.MaxID() != 0 && atMax != p.countAtMax {
			t.Fatalf("step %d: countAtMax %d != scan %d", step, p.countAtMax, atMax)
		}
		if leaders != p.Leaders() {
			t.Fatalf("step %d: leaders %d != scan %d", step, p.Leaders(), leaders)
		}
	}
	if !p.Stable() {
		t.Fatal("did not stabilize")
	}
}

func TestStabilityIsPermanent(t *testing.T) {
	g := graph.NewClique(8)
	p := New()
	r := xrand.New(23)
	res := sim.Run(g, p, r, sim.Options{})
	if !res.Stabilized {
		t.Fatal("did not stabilize")
	}
	leader := res.Leader
	for i := 0; i < 30000; i++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		if !p.Stable() {
			t.Fatalf("stability lost at extra step %d", i)
		}
	}
	if sim.FindLeader(g, p) != leader {
		t.Fatal("leader changed after stabilization")
	}
}

func TestRegularVariantUsesFewerBits(t *testing.T) {
	gen, reg := New(), NewRegular()
	gen.Reset(graph.Cycle(64), xrand.New(1))
	reg.Reset(graph.Cycle(64), xrand.New(1))
	if gen.K() != 24 || reg.K() != 18 {
		t.Fatalf("k: general %d (want 24), regular %d (want 18)", gen.K(), reg.K())
	}
	if gen.StateCount(64) <= reg.StateCount(64) {
		t.Fatal("general variant must use more states")
	}
	if gen.Name() == reg.Name() {
		t.Fatal("names must differ")
	}
}

// TestLemma22IdentifierDistribution — a finished identifier is uniform on
// {2^k, ..., 2^{k+1}−1}; check the low bit (the node's last role) is fair.
func TestLemma22IdentifierDistribution(t *testing.T) {
	g := graph.NewClique(6)
	odd, total := 0, 0
	for trial := 0; trial < 400; trial++ {
		p := New()
		r := xrand.New(uint64(1000 + trial))
		p.Reset(g, r)
		// Run until node 0 finishes generating.
		for step := 0; step < 100000 && !p.Finished(0); step++ {
			u, v := g.SampleEdge(r)
			p.Step(u, v)
		}
		if !p.Finished(0) {
			t.Fatal("node 0 never finished generating")
		}
		total++
		if p.ID(0)&1 == 1 {
			odd++
		}
	}
	frac := float64(odd) / float64(total)
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("last identifier bit heavily biased: %v", frac)
	}
}

func TestStateCountScaling(t *testing.T) {
	p := New()
	// k = ceil(4·log2 n); states ≈ 12·2^k ≈ 12·n⁴.
	s256 := p.StateCount(256)
	if s256 < 1e9 || s256 > 1e11 {
		t.Fatalf("StateCount(256) = %g implausible for O(n^4)", s256)
	}
}
