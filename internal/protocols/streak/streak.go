// Package streak implements the space-efficient local approximate clock of
// Section 5.1: each node keeps a streak counter in {0, ..., h}; an
// initiator increments it, a responder resets it to zero, and reaching h
// "completes a streak" (a clock tick) and resets the counter.
//
// The number K of interactions a node needs to complete a streak is the
// number of fair coin flips to see h consecutive heads:
//
//	E[K] = 2^{h+1} − 2                  (Lemma 27a)
//	Geom(2^{-h}) ⪯ K ⪯ Geom(2^{-h-1})+h (Lemma 26)
//
// and the number of scheduler steps X(d) for a degree-d node satisfies
// E[X(d)] = E[K]·m/d (Lemma 27b). The package also provides the direct
// samplers for K, X(d), R and S(d, ℓ) used by experiment E8.
package streak

import (
	"fmt"

	"popgraph/internal/xrand"
)

// Clock is a per-population array of streak counters. The zero value is
// unusable; create with NewClock.
type Clock struct {
	h      int
	streak []uint16
}

// NewClock returns a clock with streak-completion length h >= 1 for a
// population of n nodes. It uses exactly h+1 states per node.
func NewClock(h, n int) *Clock {
	if h < 1 {
		panic(fmt.Sprintf("streak: h must be >= 1, got %d", h))
	}
	if h > 60 {
		panic(fmt.Sprintf("streak: h = %d unreasonably large", h))
	}
	return &Clock{h: h, streak: make([]uint16, n)}
}

// H returns the streak length parameter.
func (c *Clock) H() int { return c.h }

// States returns the number of local states, h+1.
func (c *Clock) States() int { return c.h + 1 }

// Reset zeroes all counters.
func (c *Clock) Reset() {
	for i := range c.streak {
		c.streak[i] = 0
	}
}

// Tick processes one interaction with initiator u and responder v and
// reports whether u completed a streak (the clock "ticked" at u).
func (c *Clock) Tick(u, v int) bool {
	c.streak[v] = 0
	s := c.streak[u] + 1
	if int(s) == c.h {
		c.streak[u] = 0
		return true
	}
	c.streak[u] = s
	return false
}

// Counter returns node v's current streak value (for tests).
func (c *Clock) Counter(v int) int { return int(c.streak[v]) }

// SampleK draws the number of interactions a fixed node needs to complete
// one streak of length h: fair coin flips until h consecutive heads.
func SampleK(h int, r *xrand.Rand) int64 {
	var flips int64
	run := 0
	for {
		flips++
		if r.Bool() {
			run++
			if run == h {
				return flips
			}
		} else {
			run = 0
		}
	}
}

// SampleX draws X(d): the number of scheduler steps until a fixed node of
// degree d, in a graph with m edges, completes one streak of length h.
// Between its interactions the node waits Geom(d/m) steps.
func SampleX(h, d, m int, r *xrand.Rand) int64 {
	if d < 1 || m < 1 || d > m {
		panic(fmt.Sprintf("streak: SampleX(d=%d, m=%d) invalid", d, m))
	}
	p := float64(d) / float64(m)
	var steps int64
	run := 0
	for {
		steps += r.Geometric(p)
		if r.Bool() {
			run++
			if run == h {
				return steps
			}
		} else {
			run = 0
		}
	}
}

// SampleR draws R: the number of interactions to complete ell streaks
// (a sum of ell independent copies of K, Lemma 28).
func SampleR(h, ell int, r *xrand.Rand) int64 {
	var total int64
	for i := 0; i < ell; i++ {
		total += SampleK(h, r)
	}
	return total
}

// SampleS draws S(d, ell): the number of scheduler steps until a fixed
// node of degree d completes ell streaks (Lemma 29).
func SampleS(h, d, m, ell int, r *xrand.Rand) int64 {
	var total int64
	for i := 0; i < ell; i++ {
		total += SampleX(h, d, m, r)
	}
	return total
}

// ExpectedK returns E[K] = 2^{h+1} − 2 (Lemma 27a).
func ExpectedK(h int) float64 { return float64(int64(1)<<(h+1)) - 2 }

// ExpectedX returns E[X(d)] = E[K]·m/d (Lemma 27b).
func ExpectedX(h, d, m int) float64 { return ExpectedK(h) * float64(m) / float64(d) }
