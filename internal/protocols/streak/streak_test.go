package streak

import (
	"math"
	"testing"

	"popgraph/internal/xrand"
)

func TestClockBasics(t *testing.T) {
	c := NewClock(3, 4)
	if c.H() != 3 || c.States() != 4 {
		t.Fatalf("h=%d states=%d", c.H(), c.States())
	}
	// Node 0 initiates three times in a row: completes exactly at the third.
	if c.Tick(0, 1) || c.Tick(0, 2) {
		t.Fatal("premature completion")
	}
	if !c.Tick(0, 1) {
		t.Fatal("expected completion at streak length 3")
	}
	if c.Counter(0) != 0 {
		t.Fatal("counter must reset after completion")
	}
}

func TestResponderResetsStreak(t *testing.T) {
	c := NewClock(2, 3)
	c.Tick(0, 1) // node 0 at streak 1
	c.Tick(2, 0) // node 0 responds: reset
	if c.Counter(0) != 0 {
		t.Fatal("responder streak not reset")
	}
	c.Tick(0, 1)
	if !c.Tick(0, 1) {
		t.Fatal("fresh streak of 2 should complete")
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock(5, 2)
	c.Tick(0, 1)
	c.Tick(0, 1)
	c.Reset()
	if c.Counter(0) != 0 || c.Counter(1) != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestNewClockValidation(t *testing.T) {
	for _, h := range []int{0, -1, 61} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("h=%d: expected panic", h)
				}
			}()
			NewClock(h, 1)
		}()
	}
}

// TestExpectedKFormula verifies Lemma 27a closed form against simulation:
// E[K] = 2^{h+1} − 2.
func TestExpectedKFormula(t *testing.T) {
	r := xrand.New(8)
	for _, h := range []int{1, 2, 3, 5} {
		want := ExpectedK(h)
		const trials = 60000
		var sum int64
		for i := 0; i < trials; i++ {
			sum += SampleK(h, r)
		}
		mean := float64(sum) / trials
		if math.Abs(mean-want) > 0.05*want {
			t.Errorf("h=%d: E[K] measured %v, formula %v", h, mean, want)
		}
	}
}

// TestLemma26Domination checks Geom(2^{-h}) ⪯ K ⪯ Geom(2^{-h-1}) + h at a
// few tail points by comparing empirical tail probabilities against the
// closed-form geometric tails with generous slack.
func TestLemma26Domination(t *testing.T) {
	r := xrand.New(10)
	const h = 3
	const trials = 40000
	samples := make([]int64, trials)
	for i := range samples {
		samples[i] = SampleK(h, r)
	}
	tail := func(k int64) float64 {
		count := 0
		for _, s := range samples {
			if s >= k {
				count++
			}
		}
		return float64(count) / trials
	}
	for _, k := range []int64{8, 16, 32, 64} {
		lower := math.Pow(1-1.0/(1<<h), float64(k))       // P[Geom(2^-h) >= k]... lower bound on tail
		upper := math.Pow(1-1.0/(1<<(h+1)), float64(k-h)) // P[Geom(2^-h-1)+h >= k]
		got := tail(k)
		slack := 0.02
		if got < lower-slack || got > upper+slack {
			t.Errorf("k=%d: tail %v outside [%v, %v]", k, got, lower, upper)
		}
	}
}

// TestExpectedXFormula verifies Lemma 27b: E[X(d)] = E[K]·m/d.
func TestExpectedXFormula(t *testing.T) {
	r := xrand.New(12)
	const h, m = 2, 40
	for _, d := range []int{1, 4, 10, 40} {
		want := ExpectedX(h, d, m)
		const trials = 30000
		var sum int64
		for i := 0; i < trials; i++ {
			sum += SampleX(h, d, m, r)
		}
		mean := float64(sum) / trials
		if math.Abs(mean-want) > 0.06*want {
			t.Errorf("d=%d: E[X] measured %v, formula %v", d, mean, want)
		}
	}
}

// TestSampleRMean verifies E[R] = ℓ·E[K] (Lemma 28a).
func TestSampleRMean(t *testing.T) {
	r := xrand.New(14)
	const h, ell = 3, 20
	want := float64(ell) * ExpectedK(h)
	const trials = 4000
	var sum int64
	for i := 0; i < trials; i++ {
		sum += SampleR(h, ell, r)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-want) > 0.05*want {
		t.Errorf("E[R] measured %v, want %v", mean, want)
	}
}

// TestSampleSMean verifies Lemma 29a: E[S] = (2^{h+1}−2)·ℓ·m/d.
func TestSampleSMean(t *testing.T) {
	r := xrand.New(16)
	const h, d, m, ell = 2, 3, 30, 10
	want := ExpectedK(h) * float64(ell) * float64(m) / float64(d)
	const trials = 4000
	var sum int64
	for i := 0; i < trials; i++ {
		sum += SampleS(h, d, m, ell, r)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-want) > 0.06*want {
		t.Errorf("E[S] measured %v, want %v", mean, want)
	}
}

// TestRConcentration exercises Lemma 28b/c qualitatively: for ℓ ≥ ln n,
// R concentrates within [E[R]/2, 4·E[R]] with overwhelming probability.
func TestRConcentration(t *testing.T) {
	r := xrand.New(18)
	const h, ell = 3, 12 // ell >= ln n for n up to e^12
	want := float64(ell) * ExpectedK(h)
	const trials = 3000
	outside := 0
	for i := 0; i < trials; i++ {
		v := float64(SampleR(h, ell, r))
		if v <= want/2 || v >= 4*want {
			outside++
		}
	}
	if frac := float64(outside) / trials; frac > 0.02 {
		t.Errorf("R escaped [E[R]/2, 4E[R]] in %v of runs", frac)
	}
}

func TestSampleXValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SampleX(2, 5, 3, xrand.New(1)) // d > m
}

func BenchmarkTick(b *testing.B) {
	c := NewClock(8, 1024)
	r := xrand.New(1)
	for i := 0; i < b.N; i++ {
		c.Tick(r.Intn(1024), r.Intn(1024))
	}
}
