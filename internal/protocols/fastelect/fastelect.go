// Package fastelect implements the paper's main contribution (Section 5,
// Theorem 24): a space-efficient leader election protocol that stabilizes
// in O(B(G)·log n) steps in expectation and with high probability using
// O(log n · h) states, where h ∈ O(log(Δ/β · log n)) ⊆ O(log n).
//
// The protocol composes three mechanisms:
//
//  1. a streak clock (Section 5.1): nodes count consecutive initiator
//     roles; completing a streak of length h is a local clock tick that a
//     degree-d node produces every E[X(d)] = (2^{h+1}−2)·m/d steps, so with
//     h ≈ log₂(B(G)·Δ/m) maximum-degree nodes tick about once per
//     broadcast time;
//  2. a level tournament: leaders gain a level per tick; levels ≥ L are
//     broadcast (Rule 3), and a node that sees a strictly larger level
//     ≥ L becomes a follower (Rule 2) — low-degree nodes tick too slowly
//     to keep up and drop out, and the surviving high-degree leaders
//     eliminate each other within O(log n) phases of O(B(G)) steps;
//  3. an always-correct backup: the first node to reach the level cap α·L
//     switches to the six-state token protocol seeded with its status, and
//     the cap value recruits every other node into the backup via the
//     level broadcast, guaranteeing finite expected stabilization time
//     even in the O(n^{-τ})-probability event that the tournament fails.
//
// A configuration is stable exactly when one node outputs leader (see
// Stable for the invariant argument).
package fastelect

import (
	"fmt"
	"math"

	"popgraph/internal/core"
	"popgraph/internal/graph"
	"popgraph/internal/protocols/streak"
	"popgraph/internal/sim"
	"popgraph/internal/xrand"
)

// Params are the protocol's non-uniform parameters. Like the paper's
// protocol, they may depend on high-level structural information about the
// graph (n, m, Δ and the broadcast time B(G)) but are identical at every
// node.
type Params struct {
	// H is the streak length; ticks arrive every (2^{H+1}−2)·m/d steps at
	// a degree-d node.
	H int
	// L is the elimination-phase threshold: levels ≥ L broadcast and
	// eliminate strictly smaller leaders.
	L int
	// AlphaL is the level cap α·L; reaching it triggers the backup.
	AlphaL int
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.H < 1 || p.L < 1 || p.AlphaL <= p.L {
		return fmt.Errorf("fastelect: invalid params %+v", p)
	}
	return nil
}

// PaperParams returns the parameters exactly as fixed in Section 5.2:
// h = 8 + ⌈log₂(B(G)·Δ/m)⌉ and L = ⌈2τ·log₂ n⌉, with the level cap set to
// α = 8 (the paper requires a sufficiently large constant α(τ)). These
// deliver the w.h.p. guarantees but carry a ~2⁹ constant in the clock
// rate; use TunedParams for laptop-scale measurements of the same
// asymptotic shape.
func PaperParams(g graph.Graph, broadcastTime float64, tau int) Params {
	if tau < 1 {
		tau = 1
	}
	n := float64(g.N())
	h := 8 + int(math.Ceil(math.Log2(broadcastTime*float64(graph.MaxDegree(g))/float64(g.M()))))
	if h < 1 {
		h = 1
	}
	l := int(math.Ceil(2 * float64(tau) * math.Log2(n)))
	if l < 1 {
		l = 1
	}
	return Params{H: h, L: l, AlphaL: 8 * l}
}

// TunedParams returns parameters with the same functional form but
// laptop-friendly constants: h = ⌈log₂(B·Δ/m)⌉ + 2 (ticks every ≈ 8·B(G)
// steps at maximum-degree nodes instead of ≈ 512·B(G)) and L = ⌈log₂ n⌉+2.
// The asymptotic scaling O(B(G)·log n) is unchanged; only the leading
// constant and the failure probability differ, and failures are absorbed
// by the backup.
func TunedParams(g graph.Graph, broadcastTime float64) Params {
	n := float64(g.N())
	h := 2 + int(math.Ceil(math.Log2(broadcastTime*float64(graph.MaxDegree(g))/float64(g.M()))))
	if h < 1 {
		h = 1
	}
	l := int(math.Ceil(math.Log2(n))) + 2
	return Params{H: h, L: l, AlphaL: 6 * l}
}

// Protocol is the fast space-efficient protocol. Use New.
type Protocol struct {
	params Params

	clock  *streak.Clock
	level  []uint16
	leader []bool // fast-phase status; frozen once in backup
	backup []bool
	toks   []core.TokenState

	leadersFast int              // fast-phase nodes with leader status
	counts      core.TokenCounts // backup token counters
	inBackup    int
}

var _ sim.Protocol = (*Protocol)(nil)

// New returns the protocol with the given parameters.
func New(params Params) *Protocol {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	if params.AlphaL > math.MaxUint16 {
		panic(fmt.Sprintf("fastelect: level cap %d exceeds uint16", params.AlphaL))
	}
	return &Protocol{params: params}
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return "fast-space-efficient" }

// Params returns the configured parameters.
func (p *Protocol) Params() Params { return p.params }

// StateCount returns the number of distinct states: fast-phase nodes use
// (h+1)·2·(αL) combinations (streak × status × level below the cap) and
// backup nodes use (h+1)·6 (streak × token machine), matching the paper's
// O(h·L) = O(log n · h(G)) bound.
func (p *Protocol) StateCount(int) float64 {
	return float64((p.params.H + 1) * (2*p.params.AlphaL + 6))
}

// Reset implements sim.Protocol.
func (p *Protocol) Reset(g graph.Graph, _ *xrand.Rand) {
	n := g.N()
	p.clock = streak.NewClock(p.params.H, n)
	p.level = make([]uint16, n)
	p.leader = make([]bool, n)
	for v := range p.leader {
		p.leader[v] = true
	}
	p.backup = make([]bool, n)
	p.toks = make([]core.TokenState, n)
	p.leadersFast = n
	p.counts = core.TokenCounts{}
	p.inBackup = 0
}

// Step implements sim.Protocol.
func (p *Protocol) Step(u, v int) {
	// Streak subroutine: initiator u may complete a streak, responder v
	// resets its counter.
	completed := p.clock.Tick(u, v)

	// Rule 1: a fast-phase leader completing a streak gains a level.
	if completed && !p.backup[u] && p.leader[u] && int(p.level[u]) < p.params.AlphaL {
		p.level[u]++
	}

	// Rules 2 and 3: elimination by, and broadcast of, levels >= L.
	lu, lv := p.level[u], p.level[v]
	if lu != lv {
		maxLvl := lu
		lo := v
		if lv > lu {
			maxLvl = lv
			lo = u
		}
		if int(maxLvl) >= p.params.L {
			p.demote(lo)
			p.level[u] = maxLvl
			p.level[v] = maxLvl
		}
	}

	// Backup entry at the level cap.
	if int(p.level[u]) == p.params.AlphaL && !p.backup[u] {
		p.enterBackup(u)
	}
	if int(p.level[v]) == p.params.AlphaL && !p.backup[v] {
		p.enterBackup(v)
	}

	// Backup token-machine step between two backup nodes.
	if p.backup[u] && p.backup[v] {
		a, b := p.toks[u], p.toks[v]
		na, nb := core.TokenTransition(a, b)
		if na != a {
			p.counts.Add(a, -1)
			p.counts.Add(na, 1)
			p.toks[u] = na
		}
		if nb != b {
			p.counts.Add(b, -1)
			p.counts.Add(nb, 1)
			p.toks[v] = nb
		}
	}
}

// demote turns a fast-phase leader into a follower (Rule 2). Backup nodes
// sit at the level cap and are never strictly below an observed level, so
// they are never demoted; the check is defensive.
func (p *Protocol) demote(x int) {
	if !p.backup[x] && p.leader[x] {
		p.leader[x] = false
		p.leadersFast--
	}
}

// enterBackup switches node x to the six-state backup protocol,
// initialized with its fast-phase status as the candidate input.
func (p *Protocol) enterBackup(x int) {
	p.backup[x] = true
	p.inBackup++
	if p.leader[x] {
		p.leadersFast--
		p.toks[x] = core.CandidateBlack
	} else {
		p.toks[x] = core.FollowerNone
	}
	p.counts.Add(p.toks[x], 1)
}

// Output implements sim.Protocol.
func (p *Protocol) Output(v int) core.Role {
	if p.backup[v] {
		return p.toks[v].Role()
	}
	if p.leader[v] {
		return core.Leader
	}
	return core.Follower
}

// Leaders implements sim.Protocol.
func (p *Protocol) Leaders() int { return p.leadersFast + p.counts.Candidates }

// Stable implements sim.Protocol. The configuration is stable exactly when
// one node outputs leader:
//
//   - some node at the maximum level always outputs leader (the first to
//     attain a level below the cap by a streak completion is a leader and
//     only strictly larger levels demote; at the cap, every node is in the
//     backup, whose invariant #candidates = #black + #white with
//     #black ≥ 1 keeps a candidate alive);
//   - hence a unique leader sits at the maximum level and can never be
//     demoted, followers are never promoted, and — because the invariant
//     pins #white = 0 when #candidates = 1 — no white token can eliminate
//     a unique backup candidate.
//
// The white-token check below is therefore redundant but kept as a cheap
// cross-check of the invariant.
func (p *Protocol) Stable() bool {
	return p.leadersFast+p.counts.Candidates == 1 && p.counts.White == 0
}

// InBackup returns how many nodes run the backup protocol (experiments
// use it to report how often the fast path failed).
func (p *Protocol) InBackup() int { return p.inBackup }

// Level returns node v's level (tests).
func (p *Protocol) Level(v int) int { return int(p.level[v]) }

// LeaderStatus returns node v's fast-phase status (tests).
func (p *Protocol) LeaderStatus(v int) bool { return p.leader[v] }

// IsBackup reports whether node v entered the backup (tests).
func (p *Protocol) IsBackup(v int) bool { return p.backup[v] }

// Counts exposes the backup token counters (tests).
func (p *Protocol) Counts() core.TokenCounts { return p.counts }
