package fastelect

import (
	"testing"

	"popgraph/internal/core"
	"popgraph/internal/graph"
	"popgraph/internal/sim"
	"popgraph/internal/xrand"
)

// testParams are small parameters suitable for tiny test graphs.
var testParams = Params{H: 3, L: 6, AlphaL: 24}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{H: 0, L: 5, AlphaL: 10},
		{H: 2, L: 0, AlphaL: 10},
		{H: 2, L: 5, AlphaL: 5},
		{H: 2, L: 5, AlphaL: 4},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v should be invalid", p)
		}
	}
	if err := testParams.Validate(); err != nil {
		t.Fatalf("test params invalid: %v", err)
	}
}

func TestParamHelpers(t *testing.T) {
	g := graph.Cycle(64)
	b := 64.0 * 64 * 3 // rough Θ(n·m) broadcast time on a cycle
	for _, params := range []Params{PaperParams(g, b, 1), PaperParams(g, b, 2), TunedParams(g, b)} {
		if err := params.Validate(); err != nil {
			t.Errorf("helper produced invalid params: %+v: %v", params, err)
		}
	}
	// Paper parameters: h = 8 + ceil(log2(B·Δ/m)) = 8 + ceil(log2(384)) = 17.
	if got := PaperParams(g, b, 1).H; got != 17 {
		t.Errorf("paper h = %d, want 17", got)
	}
	// Tuned keeps the same form with a smaller constant.
	if got := TunedParams(g, b).H; got != 11 {
		t.Errorf("tuned h = %d, want 11", got)
	}
}

func TestStabilizesOnFamilies(t *testing.T) {
	graphs := []graph.Graph{
		graph.NewClique(16),
		graph.Cycle(12),
		graph.Torus2D(3, 4),
		graph.Star(10),
		graph.Path(8),
	}
	for _, g := range graphs {
		t.Run(g.Name(), func(t *testing.T) {
			p := New(testParams)
			res := sim.Run(g, p, xrand.New(37), sim.Options{})
			if !res.Stabilized {
				t.Fatalf("no stabilization in %d steps", res.Steps)
			}
			if sim.CountLeaders(g, p) != 1 || p.Leaders() != 1 {
				t.Fatalf("leaders: scan %d counter %d", sim.CountLeaders(g, p), p.Leaders())
			}
		})
	}
}

// TestAlwaysAtLeastOneLeader verifies the liveness invariant Section 5.2
// argues: in every configuration some node outputs leader.
func TestAlwaysAtLeastOneLeader(t *testing.T) {
	g := graph.Torus2D(4, 4)
	p := New(Params{H: 2, L: 4, AlphaL: 8}) // small cap to exercise backup
	r := xrand.New(41)
	p.Reset(g, r)
	for step := 0; step < 400000 && !p.Stable(); step++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		if p.Leaders() < 1 {
			t.Fatalf("step %d: zero leaders", step)
		}
		if step%499 == 0 {
			if scan := sim.CountLeaders(g, p); scan != p.Leaders() {
				t.Fatalf("step %d: leaders counter %d != scan %d", step, p.Leaders(), scan)
			}
		}
	}
	if !p.Stable() {
		t.Fatal("did not stabilize")
	}
}

// TestBackupPathStabilizes forces the level cap low so several nodes enter
// the backup, and checks the run still elects exactly one leader.
func TestBackupPathStabilizes(t *testing.T) {
	g := graph.NewClique(12)
	p := New(Params{H: 1, L: 2, AlphaL: 3})
	res := sim.Run(g, p, xrand.New(43), sim.Options{})
	if !res.Stabilized {
		t.Fatal("did not stabilize")
	}
	if p.InBackup() == 0 {
		t.Fatal("expected backup entry with a tiny level cap")
	}
	if sim.CountLeaders(g, p) != 1 {
		t.Fatalf("%d leaders", sim.CountLeaders(g, p))
	}
	// Once any node is in backup and the run stabilized, all nodes must
	// have been recruited (the cap level broadcasts).
	if p.InBackup() != g.N() {
		t.Fatalf("only %d of %d nodes entered backup at stabilization", p.InBackup(), g.N())
	}
}

// TestBackupInvariant — within the backup, candidates = black + white and
// black >= 1 once any candidate entered.
func TestBackupInvariant(t *testing.T) {
	g := graph.NewClique(10)
	p := New(Params{H: 1, L: 2, AlphaL: 3})
	r := xrand.New(47)
	p.Reset(g, r)
	for step := 0; step < 300000 && !p.Stable(); step++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		c := p.Counts()
		if c.Candidates != c.Black+c.White {
			t.Fatalf("step %d: backup invariant broken: %+v", step, c)
		}
		if p.InBackup() > 0 && c.Black < 1 {
			t.Fatalf("step %d: backup populated but no black token: %+v", step, c)
		}
	}
	if !p.Stable() {
		t.Fatal("did not stabilize")
	}
}

func TestStabilityIsPermanent(t *testing.T) {
	g := graph.Cycle(10)
	p := New(testParams)
	r := xrand.New(53)
	res := sim.Run(g, p, r, sim.Options{})
	if !res.Stabilized {
		t.Fatal("did not stabilize")
	}
	leader := res.Leader
	for i := 0; i < 50000; i++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		if !p.Stable() {
			t.Fatalf("stability lost at extra step %d", i)
		}
		if p.Output(leader) != core.Leader {
			t.Fatalf("leader output changed at extra step %d", i)
		}
	}
}

// TestLevelsMonotoneAndCapped — levels never decrease and never exceed the cap.
func TestLevelsMonotoneAndCapped(t *testing.T) {
	g := graph.NewClique(8)
	p := New(Params{H: 2, L: 3, AlphaL: 6})
	r := xrand.New(59)
	p.Reset(g, r)
	prev := make([]int, g.N())
	for step := 0; step < 100000 && !p.Stable(); step++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		for _, w := range []int{u, v} {
			l := p.Level(w)
			if l < prev[w] {
				t.Fatalf("step %d: level of %d decreased %d -> %d", step, w, prev[w], l)
			}
			if l > 6 {
				t.Fatalf("step %d: level of %d exceeds cap: %d", step, w, l)
			}
			prev[w] = l
		}
	}
}

// TestFollowersNeverPromoted — once a node loses fast-phase leader status
// it never outputs leader again unless it is a backup candidate (which
// can only happen if it entered backup as a leader).
func TestFollowersNeverPromoted(t *testing.T) {
	g := graph.Torus2D(3, 3)
	p := New(testParams)
	r := xrand.New(61)
	p.Reset(g, r)
	demoted := make([]bool, g.N())
	for step := 0; step < 400000 && !p.Stable(); step++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		for w := 0; w < g.N(); w++ {
			isLeader := p.Output(w) == core.Leader
			if demoted[w] && isLeader {
				t.Fatalf("step %d: demoted node %d outputs leader again", step, w)
			}
			if !isLeader {
				demoted[w] = true
			}
		}
	}
	if !p.Stable() {
		t.Fatal("did not stabilize")
	}
}

func TestStateCount(t *testing.T) {
	p := New(Params{H: 3, L: 5, AlphaL: 20})
	// (h+1)·(2·αL + 6) = 4·46 = 184.
	if got := p.StateCount(100); got != 184 {
		t.Fatalf("StateCount = %v, want 184", got)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Params{H: 0, L: 1, AlphaL: 2})
}
