package star

import (
	"testing"

	"popgraph/internal/core"
	"popgraph/internal/graph"
	"popgraph/internal/sim"
	"popgraph/internal/xrand"
)

func TestStabilizesInOneStep(t *testing.T) {
	// Table 1, row "Stars": O(1) stabilization time. On a star every
	// interaction involves the center, so step 1 always stabilizes.
	for _, n := range []int{2, 3, 10, 100, 1000} {
		g := graph.Star(n)
		p := New()
		res := sim.Run(g, p, xrand.New(uint64(n)), sim.Options{})
		if !res.Stabilized || res.Steps != 1 {
			t.Fatalf("n=%d: result %+v, want stabilization at step 1", n, res)
		}
		if sim.CountLeaders(g, p) != 1 {
			t.Fatalf("n=%d: %d leaders", n, sim.CountLeaders(g, p))
		}
	}
}

func TestLeaderIsEndpointOfFirstInteraction(t *testing.T) {
	g := graph.Star(8)
	p := New()
	res := sim.Run(g, p, xrand.New(4), sim.Options{
		Sampler: &sim.ScriptedSampler{Pairs: [][2]int{{3, 0}}},
	})
	if !res.Stabilized || res.Leader != 3 {
		t.Fatalf("result %+v, want initiator 3 as leader", res)
	}
	if p.Output(0) != core.Follower {
		t.Fatal("responder must be follower")
	}
}

func TestOutputsStableForever(t *testing.T) {
	g := graph.Star(20)
	p := New()
	r := xrand.New(6)
	res := sim.Run(g, p, r, sim.Options{})
	leader := res.Leader
	for i := 0; i < 5000; i++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		if !p.Stable() || sim.FindLeader(g, p) != leader {
			t.Fatalf("output changed after stabilization at extra step %d", i)
		}
	}
}

func TestRejectsNonStar(t *testing.T) {
	for _, g := range []graph.Graph{graph.Cycle(5), graph.Path(4), graph.NewClique(4)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", g.Name())
				}
			}()
			New().Reset(g, xrand.New(1))
		}()
	}
}

func TestTwoNodeGraphAllowed(t *testing.T) {
	// K_2 is the 2-node star; the first interaction elects the initiator.
	g := graph.Star(2)
	p := New()
	res := sim.Run(g, p, xrand.New(1), sim.Options{})
	if !res.Stabilized || res.Steps != 1 {
		t.Fatalf("result %+v", res)
	}
}

func TestStateCount(t *testing.T) {
	if New().StateCount(1000) != 3 {
		t.Fatal("state count must be 3")
	}
}

// TestCountersMatchScans cross-checks the O(1) Leaders counter and the
// Stable predicate against full output scans after every interaction of
// a scripted run — the same discipline beauquier's counters get.
func TestCountersMatchScans(t *testing.T) {
	g := graph.Star(12)
	p := New()
	p.Reset(g, xrand.New(9))
	r := xrand.New(10)
	for i := 0; i < 500; i++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		if scan := sim.CountLeaders(g, p); scan != p.Leaders() {
			t.Fatalf("step %d: Leaders() %d != scan %d", i, p.Leaders(), scan)
		}
		if want := p.Leaders() == 1; p.Stable() != want {
			t.Fatalf("step %d: Stable() %v with %d leaders", i, p.Stable(), p.Leaders())
		}
	}
	if !p.Stable() {
		t.Fatal("500 star interactions must stabilize")
	}
}

// TestTableMatchesStep — the generated transition table agrees with the
// hand-written Step on every state pair, roles and counters included.
func TestTableMatchesStep(t *testing.T) {
	p := New()
	tab := p.Table()
	if tab == nil || tab.K() != 3 {
		t.Fatalf("table %+v, want a 3-state machine", tab)
	}
	for a := uint8(0); a < 3; a++ {
		wantRole := core.Follower
		if a == leader {
			wantRole = core.Leader
		}
		if tab.Role(a) != wantRole {
			t.Fatalf("state %d role %v, want %v", a, tab.Role(a), wantRole)
		}
		for b := uint8(0); b < 3; b++ {
			probe := &Protocol{states: []uint8{a, b}}
			probe.Step(0, 1)
			na, nb := tab.Next(a, b)
			if na != probe.states[0] || nb != probe.states[1] {
				t.Fatalf("(%d,%d): table (%d,%d), Step (%d,%d)", a, b, na, nb, probe.states[0], probe.states[1])
			}
		}
	}
	// The stability functional is leaders == 1 exactly.
	for _, c := range []struct {
		states []uint8
		stable bool
	}{
		{[]uint8{undecided, undecided, undecided}, false},
		{[]uint8{leader, follower, undecided}, true},
		{[]uint8{leader, leader, follower}, false},
	} {
		if _, gap := tab.Counters(c.states); (gap == 0) != c.stable {
			t.Fatalf("%v: gap %d, want stable=%v", c.states, gap, c.stable)
		}
	}
}
