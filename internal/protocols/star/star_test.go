package star

import (
	"testing"

	"popgraph/internal/core"
	"popgraph/internal/graph"
	"popgraph/internal/sim"
	"popgraph/internal/xrand"
)

func TestStabilizesInOneStep(t *testing.T) {
	// Table 1, row "Stars": O(1) stabilization time. On a star every
	// interaction involves the center, so step 1 always stabilizes.
	for _, n := range []int{2, 3, 10, 100, 1000} {
		g := graph.Star(n)
		p := New()
		res := sim.Run(g, p, xrand.New(uint64(n)), sim.Options{})
		if !res.Stabilized || res.Steps != 1 {
			t.Fatalf("n=%d: result %+v, want stabilization at step 1", n, res)
		}
		if sim.CountLeaders(g, p) != 1 {
			t.Fatalf("n=%d: %d leaders", n, sim.CountLeaders(g, p))
		}
	}
}

func TestLeaderIsEndpointOfFirstInteraction(t *testing.T) {
	g := graph.Star(8)
	p := New()
	res := sim.Run(g, p, xrand.New(4), sim.Options{
		Sampler: &sim.ScriptedSampler{Pairs: [][2]int{{3, 0}}},
	})
	if !res.Stabilized || res.Leader != 3 {
		t.Fatalf("result %+v, want initiator 3 as leader", res)
	}
	if p.Output(0) != core.Follower {
		t.Fatal("responder must be follower")
	}
}

func TestOutputsStableForever(t *testing.T) {
	g := graph.Star(20)
	p := New()
	r := xrand.New(6)
	res := sim.Run(g, p, r, sim.Options{})
	leader := res.Leader
	for i := 0; i < 5000; i++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
		if !p.Stable() || sim.FindLeader(g, p) != leader {
			t.Fatalf("output changed after stabilization at extra step %d", i)
		}
	}
}

func TestRejectsNonStar(t *testing.T) {
	for _, g := range []graph.Graph{graph.Cycle(5), graph.Path(4), graph.NewClique(4)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", g.Name())
				}
			}()
			New().Reset(g, xrand.New(1))
		}()
	}
}

func TestTwoNodeGraphAllowed(t *testing.T) {
	// K_2 is the 2-node star; the first interaction elects the initiator.
	g := graph.Star(2)
	p := New()
	res := sim.Run(g, p, xrand.New(1), sim.Options{})
	if !res.Stabilized || res.Steps != 1 {
		t.Fatalf("result %+v", res)
	}
}

func TestStateCount(t *testing.T) {
	if New().StateCount(1000) != 3 {
		t.Fatal("state count must be 3")
	}
}
