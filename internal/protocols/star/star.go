// Package star implements the trivial constant-state protocol that elects
// a leader in a single interaction on star graphs (Table 1, row "Stars").
//
// Every interaction on a star involves the center, so the very first
// interaction decides the center and creates exactly one leader; every
// later interaction only turns undecided leaves (which already output
// follower) into decided followers, leaving all outputs unchanged. The
// configuration after step one is therefore already stable — stabilization
// time is exactly 1 regardless of n, illustrating why no general Ω(n log n)
// lower bound can hold on all graphs (Section 1.3).
//
// The protocol is only correct on stars; Reset rejects other graphs.
package star

import (
	"fmt"

	"popgraph/internal/core"
	"popgraph/internal/graph"
	"popgraph/internal/sim"
	"popgraph/internal/xrand"
)

// state is one of the three node states.
type state uint8

const (
	undecided state = iota // initial; outputs follower
	leader
	follower
)

// Protocol is the trivial star protocol.
type Protocol struct {
	states  []state
	leaders int
}

var _ sim.Protocol = (*Protocol)(nil)

// New returns the star protocol.
func New() *Protocol { return &Protocol{} }

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return "star-trivial" }

// StateCount returns 3.
func (p *Protocol) StateCount(int) float64 { return 3 }

// Reset implements sim.Protocol. It panics unless g is a star (one center
// adjacent to all other nodes, which are leaves).
func (p *Protocol) Reset(g graph.Graph, _ *xrand.Rand) {
	n := g.N()
	if n >= 3 {
		centers := 0
		for v := 0; v < n; v++ {
			switch g.Degree(v) {
			case n - 1:
				centers++
			case 1:
			default:
				panic(fmt.Sprintf("star: graph %q is not a star (degree(%d)=%d)",
					g.Name(), v, g.Degree(v)))
			}
		}
		if centers != 1 {
			panic(fmt.Sprintf("star: graph %q is not a star (%d centers)", g.Name(), centers))
		}
	}
	p.states = make([]state, n)
	p.leaders = 0
}

// Step implements sim.Protocol. Rules:
//
//	U + U -> L + F   (the only U+U edge on a star involves the center)
//	L + U -> L + F, U + L -> F + L
//	F + U -> F + F, U + F -> F + F
//
// all other pairs are no-ops.
func (p *Protocol) Step(u, v int) {
	a, b := p.states[u], p.states[v]
	switch {
	case a == undecided && b == undecided:
		p.states[u] = leader
		p.states[v] = follower
		p.leaders++
	case a == undecided:
		p.states[u] = follower
	case b == undecided:
		p.states[v] = follower
	}
}

// Output implements sim.Protocol: undecided nodes output follower.
func (p *Protocol) Output(v int) core.Role {
	if p.states[v] == leader {
		return core.Leader
	}
	return core.Follower
}

// Leaders implements sim.Protocol.
func (p *Protocol) Leaders() int { return p.leaders }

// Stable implements sim.Protocol. On a star, one leader exists only after
// the center was decided, after which no interaction changes any output.
func (p *Protocol) Stable() bool { return p.leaders == 1 }
