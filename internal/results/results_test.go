package results

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func sample() []Record {
	return []Record{
		{Graph: "clique-16", N: 16, M: 120, Protocol: "six-state", Trial: 0,
			Seed: 11, Steps: 1000, Stabilized: true, Leader: 3},
		{Graph: "clique-16", N: 16, M: 120, Protocol: "six-state", Trial: 1,
			Seed: 12, Steps: 2000, Stabilized: true, Leader: 7},
		{Graph: "clique-16", N: 16, M: 120, Protocol: "six-state", Trial: 2,
			Seed: 13, Steps: 5000, Stabilized: false, Leader: -1},
		{Graph: "cycle-8", N: 8, M: 8, Protocol: "fast", Trial: 0,
			Seed: 21, DropRate: 0.25, Steps: 300, Stabilized: true, Leader: 0, Backup: 2},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := sample()
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(recs) {
		t.Fatalf("wrote %d lines, want %d", got, len(recs))
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("read %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, back[i], recs[i])
		}
	}
}

func TestWriteDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := Write(&a, sample()); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, sample()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same records differ")
	}
}

func TestReadSkipsBlankAndRejectsGarbage(t *testing.T) {
	recs, err := Read(strings.NewReader("\n{\"graph\":\"g\",\"n\":2,\"m\":1,\"protocol\":\"p\",\"trial\":0,\"seed\":1,\"steps\":5,\"stabilized\":true,\"leader\":1}\n\n"))
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs %v err %v", recs, err)
	}
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
}

func TestAggregate(t *testing.T) {
	groups := Aggregate(sample())
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	g0 := groups[0]
	if g0.Graph != "clique-16" || g0.Protocol != "six-state" || g0.DropRate != 0 {
		t.Fatalf("first group key %+v", g0.Key)
	}
	if g0.Trials != 3 || g0.Stabilized != 2 {
		t.Fatalf("first group counts %+v", g0)
	}
	if g0.Steps.Mean != 1500 || g0.Steps.N != 2 {
		t.Fatalf("first group summary %+v", g0.Steps)
	}
	g1 := groups[1]
	if g1.Graph != "cycle-8" || g1.DropRate != 0.25 || g1.Trials != 1 {
		t.Fatalf("second group %+v", g1)
	}
	if g1.BackupMean != 2 {
		t.Fatalf("backup mean %v, want 2", g1.BackupMean)
	}
}

func TestAggregateEmptyGroupSummary(t *testing.T) {
	recs := []Record{{Graph: "g", N: 4, M: 3, Protocol: "p", Steps: 99, Stabilized: false, Leader: -1}}
	groups := Aggregate(recs)
	if len(groups) != 1 || groups[0].Steps.N != 0 || groups[0].Stabilized != 0 {
		t.Fatalf("groups %+v", groups)
	}
}

func TestSummaryTable(t *testing.T) {
	var buf bytes.Buffer
	SummaryTable("demo", Aggregate(sample())).WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "clique-16", "six-state", "2/3", "cycle-8", "0.25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary table missing %q:\n%s", want, out)
		}
	}
}

// TestSchedulerSplitsGroupsAndRoundTrips — records differing only in
// scheduler are distinct grid cells, the field survives the JSONL
// round trip, and the table renders it — with records predating the
// scheduler axis (empty field) displayed as uniform.
func TestSchedulerSplitsGroupsAndRoundTrips(t *testing.T) {
	recs := []Record{
		{Graph: "torus-4x4", N: 16, M: 32, Scheduler: "uniform", Protocol: "six-state",
			Trial: 0, Seed: 1, Steps: 500, Stabilized: true, Leader: 2},
		{Graph: "torus-4x4", N: 16, M: 32, Scheduler: "weighted:exp", Protocol: "six-state",
			Trial: 0, Seed: 1, Steps: 900, Stabilized: true, Leader: 5},
		{Graph: "torus-4x4", N: 16, M: 32, Protocol: "six-state",
			Trial: 0, Seed: 1, Steps: 700, Stabilized: true, Leader: 1},
	}
	groups := Aggregate(recs)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3 (scheduler must split cells)", len(groups))
	}
	var jsonl bytes.Buffer
	if err := Write(&jsonl, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `"scheduler":"weighted:exp"`) {
		t.Fatalf("scheduler field missing from JSONL:\n%s", jsonl.String())
	}
	back, err := Read(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if back[1].Scheduler != "weighted:exp" || back[2].Scheduler != "" {
		t.Fatalf("round-tripped schedulers %q, %q", back[1].Scheduler, back[2].Scheduler)
	}
	var buf bytes.Buffer
	SummaryTable("scheds", groups).WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "sched") || !strings.Contains(out, "weighted:exp") {
		t.Fatalf("table missing scheduler column:\n%s", out)
	}
	// The legacy record (empty scheduler) renders as uniform.
	if strings.Count(out, "uniform") != 2 {
		t.Fatalf("want 2 uniform rows (explicit + legacy), got:\n%s", out)
	}
}

// TestSummaryTableNoStabilizedRendersDash — a configuration where every
// trial hit the step cap used to print steps(mean)=0, which read as
// instant stabilization; it must render "—" markers instead.
func TestSummaryTableNoStabilizedRendersDash(t *testing.T) {
	recs := []Record{
		{Graph: "cycle-64", N: 64, M: 64, Protocol: "six-state", Trial: 0,
			Seed: 1, Steps: 5000, Stabilized: false, Leader: -1},
		{Graph: "cycle-64", N: 64, M: 64, Protocol: "six-state", Trial: 1,
			Seed: 2, Steps: 5000, Stabilized: false, Leader: -1},
	}
	var buf bytes.Buffer
	SummaryTable("capped", Aggregate(recs)).WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "—") {
		t.Fatalf("no dash marker for unstabilized group:\n%s", out)
	}
	if !strings.Contains(out, "0/2") {
		t.Fatalf("stab column wrong:\n%s", out)
	}
	// All four step statistics (mean, CI, median, max) must be dashes,
	// plus the time column: these records carry no timing.
	if strings.Count(out, "—") != 5 {
		t.Fatalf("want 5 dash markers, got %d:\n%s", strings.Count(out, "—"), out)
	}
}

// TestTimingFieldsRoundTripAndAggregate — elapsed_ns/queue_wait_ns
// survive the JSONL round trip, stay omitted when zero (so old logs
// re-encode unchanged), aggregate into a completed-trials mean, and the
// table renders the time column — with a dash for timing-free groups.
func TestTimingFieldsRoundTripAndAggregate(t *testing.T) {
	recs := []Record{
		{Graph: "g", N: 8, M: 12, Protocol: "p", Trial: 0, Seed: 1,
			Steps: 100, Stabilized: true, Leader: 0,
			ElapsedNs: 4_000_000, QueueWaitNs: 1_000},
		{Graph: "g", N: 8, M: 12, Protocol: "p", Trial: 1, Seed: 2,
			Steps: 120, Stabilized: true, Leader: 1,
			ElapsedNs: 2_000_000, QueueWaitNs: 3_000},
		{Graph: "g", N: 8, M: 12, Protocol: "p", Trial: 2, Seed: 3,
			Steps: 0, Stabilized: false, Leader: -1, Error: "boom",
			ElapsedNs: 9_000_000},
	}
	var jsonl bytes.Buffer
	if err := Write(&jsonl, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `"elapsed_ns":4000000`) ||
		!strings.Contains(jsonl.String(), `"queue_wait_ns":3000`) {
		t.Fatalf("timing fields missing from JSONL:\n%s", jsonl.String())
	}
	back, err := Read(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, back[i], recs[i])
		}
	}
	// Zero timing (a log from a producer predating the fields) encodes no
	// timing keys at all.
	var legacy bytes.Buffer
	if err := Write(&legacy, []Record{{Graph: "g", N: 4, M: 3, Protocol: "p",
		Steps: 5, Stabilized: true, Leader: 0}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(legacy.String(), "elapsed_ns") ||
		strings.Contains(legacy.String(), "queue_wait_ns") {
		t.Fatalf("zero timing fields encoded:\n%s", legacy.String())
	}
	// The crashed trial's 9ms must not pollute the mean over completed
	// trials: (4ms + 2ms) / 2.
	groups := Aggregate(recs)
	if len(groups) != 1 || groups[0].ElapsedMeanNs != 3_000_000 {
		t.Fatalf("ElapsedMeanNs = %v, want 3e6", groups[0].ElapsedMeanNs)
	}
	var buf bytes.Buffer
	SummaryTable("timed", groups).WriteText(&buf)
	if !strings.Contains(buf.String(), "time(ms)") || !strings.Contains(buf.String(), "3") {
		t.Fatalf("time column missing:\n%s", buf.String())
	}
}

// TestReadLegacyLogWithoutTimingFields — verbatim JSONL from a
// pre-timing producer (no elapsed_ns/queue_wait_ns keys anywhere) must
// read back with zero timing, survive a write/read round trip, and
// aggregate with a zero elapsed mean rather than an error.
func TestReadLegacyLogWithoutTimingFields(t *testing.T) {
	legacy := strings.Join([]string{
		`{"graph":"cycle:8","n":8,"m":8,"protocol":"six-state","trial":0,"seed":11,"steps":40,"stabilized":true,"leader":3}`,
		`{"graph":"cycle:8","n":8,"m":8,"protocol":"six-state","trial":1,"seed":12,"steps":52,"stabilized":true,"leader":0}`,
		``,
	}, "\n")
	recs, err := Read(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records, want 2", len(recs))
	}
	for i, r := range recs {
		if r.ElapsedNs != 0 || r.QueueWaitNs != 0 {
			t.Fatalf("record %d: timing fields %d/%d, want zero for a legacy log", i, r.ElapsedNs, r.QueueWaitNs)
		}
	}
	var rewritten bytes.Buffer
	if err := Write(&rewritten, recs); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&rewritten)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Fatalf("round trip changed record %d: %+v != %+v", i, back[i], recs[i])
		}
	}
	groups := Aggregate(recs)
	if len(groups) != 1 || groups[0].ElapsedMeanNs != 0 {
		t.Fatalf("legacy aggregate ElapsedMeanNs = %v, want 0", groups[0].ElapsedMeanNs)
	}
	if groups[0].Steps.Mean != 46 {
		t.Fatalf("Steps.Mean = %v, want 46", groups[0].Steps.Mean)
	}
}

// TestBackupMeanExcludesCrashedTrials — crashed trials report Backup = 0
// vacuously and must not dilute the mean over completed trials.
func TestBackupMeanExcludesCrashedTrials(t *testing.T) {
	recs := []Record{
		{Graph: "g", N: 8, M: 12, Protocol: "p", Trial: 0, Seed: 1,
			Steps: 100, Stabilized: true, Leader: 0, Backup: 10},
		{Graph: "g", N: 8, M: 12, Protocol: "p", Trial: 1, Seed: 2,
			Steps: 120, Stabilized: true, Leader: 1, Backup: 10},
		{Graph: "g", N: 8, M: 12, Protocol: "p", Trial: 2, Seed: 3,
			Steps: 0, Stabilized: false, Leader: -1, Error: "boom"},
		{Graph: "g", N: 8, M: 12, Protocol: "p", Trial: 3, Seed: 4,
			Steps: 0, Stabilized: false, Leader: -1, Error: "boom"},
	}
	groups := Aggregate(recs)
	if len(groups) != 1 || groups[0].BackupMean != 10 {
		t.Fatalf("BackupMean = %v, want 10 (crashed trials excluded)", groups[0].BackupMean)
	}
}

// TestAggregateAndTableSurfaceCrashedTrials — records with Error set count
// as Failed, never as stabilized, and the table flags them.
func TestAggregateAndTableSurfaceCrashedTrials(t *testing.T) {
	recs := []Record{
		{Graph: "clique-8", N: 8, M: 28, Protocol: "star-trivial", Trial: 0,
			Seed: 1, Steps: 0, Stabilized: false, Leader: -1,
			Error: `star: graph "clique-8" is not a star (degree(0)=7)`},
		{Graph: "clique-8", N: 8, M: 28, Protocol: "star-trivial", Trial: 1,
			Seed: 2, Steps: 0, Stabilized: false, Leader: -1,
			Error: `star: graph "clique-8" is not a star (degree(0)=7)`},
	}
	groups := Aggregate(recs)
	if len(groups) != 1 || groups[0].Failed != 2 || groups[0].Stabilized != 0 {
		t.Fatalf("groups %+v", groups)
	}
	if groups[0].BackupMean != 0 {
		t.Fatalf("all-crashed group BackupMean = %v, want 0", groups[0].BackupMean)
	}
	var buf bytes.Buffer
	SummaryTable("crashes", groups).WriteText(&buf)
	if !strings.Contains(buf.String(), "(2 err)") {
		t.Fatalf("crash count missing from table:\n%s", buf.String())
	}
	// The error field must survive a JSONL round trip.
	var jsonl bytes.Buffer
	if err := Write(&jsonl, recs); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || !back[0].Failed() || back[0].Error != recs[0].Error {
		t.Fatalf("round-tripped records %+v", back)
	}
}

// TestAccumulatorMatchesAggregate — feeding records one at a time through
// an Accumulator produces exactly what the slice-based Aggregate reports,
// and the accumulator stays usable after a Groups call.
func TestAccumulatorMatchesAggregate(t *testing.T) {
	recs := append(sample(),
		Record{Graph: "clique-16", N: 16, M: 120, Protocol: "six-state", Trial: 3,
			Seed: 14, Steps: 0, Stabilized: false, Leader: -1, Error: "boom"},
	)
	acc := NewAccumulator()
	for _, r := range recs[:2] {
		acc.Add(r)
	}
	// An intermediate Groups call must not corrupt later aggregation.
	if mid := acc.Groups(); len(mid) != 1 || mid[0].Trials != 2 {
		t.Fatalf("intermediate groups %+v", mid)
	}
	for _, r := range recs[2:] {
		acc.Add(r)
	}
	got := acc.Groups()
	want := Aggregate(recs)
	if len(got) != len(want) {
		t.Fatalf("got %d groups, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("group %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestForEachStreams — ForEach visits records in order without buffering
// and stops on the callback's error.
func TestForEachStreams(t *testing.T) {
	var jsonl bytes.Buffer
	if err := Write(&jsonl, sample()); err != nil {
		t.Fatal(err)
	}
	var seen []Record
	if err := ForEach(bytes.NewReader(jsonl.Bytes()), func(r Record) error {
		seen = append(seen, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(sample()) || seen[0] != sample()[0] {
		t.Fatalf("ForEach saw %d records", len(seen))
	}
	stop := errTest
	n := 0
	err := ForEach(bytes.NewReader(jsonl.Bytes()), func(Record) error {
		n++
		if n == 2 {
			return stop
		}
		return nil
	})
	if err != stop || n != 2 {
		t.Fatalf("ForEach err %v after %d records, want stop after 2", err, n)
	}
}

var errTest = errors.New("stop")
