// Package results defines the structured per-trial record produced by
// batch runs (internal/runner, cmd/sweep), its JSON Lines encoding, and
// aggregation of raw records into per-configuration summary statistics
// rendered through internal/table.
//
// The encoding is deliberately boring: one JSON object per line, fixed
// field order (Go struct order), so that the same seed and spec produce
// identical logs regardless of worker count. The only host-dependent
// fields are the two trailing wall-time ones (elapsed_ns, queue_wait_ns);
// everything before them is byte-deterministic, and determinism tests
// compare logs with the timing fields normalized out.
package results

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"popgraph/internal/stats"
	"popgraph/internal/table"
)

// Record is the outcome of one simulation trial.
type Record struct {
	// Graph is the graph's display name (e.g. "torus-8x8"); N and M are
	// its node and edge counts.
	Graph string `json:"graph"`
	N     int    `json:"n"`
	M     int    `json:"m"`
	// Scheduler is the interaction scheduler's display name ("uniform",
	// "weighted:exp", "churn:64:16", ...); empty in records from
	// producers predating the scheduler axis, which means uniform.
	Scheduler string `json:"scheduler,omitempty"`
	// Protocol is the protocol's display name.
	Protocol string `json:"protocol"`
	// Trial is the 0-based trial index within its configuration; Seed is
	// the exact generator seed the trial ran with.
	Trial int    `json:"trial"`
	Seed  uint64 `json:"seed"`
	// DropRate is the injected interaction-failure probability.
	DropRate float64 `json:"drop_rate,omitempty"`
	// Steps is the stabilization time in interactions (or the cap when
	// Stabilized is false); Leader is the elected node or -1.
	Steps      int64 `json:"steps"`
	Stabilized bool  `json:"stabilized"`
	Leader     int   `json:"leader"`
	// Backup is the number of nodes that entered a backup phase.
	Backup int `json:"backup,omitempty"`
	// Error is the panic message when the trial crashed instead of
	// completing (runner.Outcome.Err); empty for healthy trials.
	Error string `json:"error,omitempty"`
	// ElapsedNs is the trial's wall-clock execution time and QueueWaitNs
	// its wait for a worker slot, in nanoseconds (runner.Outcome timing).
	// The only host-dependent fields in a record; kept last so the
	// deterministic prefix of each line is stable, and omitted when zero
	// so logs from producers predating them round-trip unchanged.
	ElapsedNs   int64 `json:"elapsed_ns,omitempty"`
	QueueWaitNs int64 `json:"queue_wait_ns,omitempty"`
}

// Failed reports whether the trial crashed instead of completing.
func (r Record) Failed() bool { return r.Error != "" }

// Key identifies a record's configuration: one cell of a sweep grid.
type Key struct {
	Graph     string
	Scheduler string
	Protocol  string
	DropRate  float64
}

// Key returns the record's configuration key.
func (r Record) Key() Key {
	return Key{Graph: r.Graph, Scheduler: r.Scheduler, Protocol: r.Protocol, DropRate: r.DropRate}
}

// Write encodes records as JSON Lines. The output is deterministic:
// records are written in slice order with fixed field order.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("results: encoding record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read decodes a JSON Lines stream previously produced by Write. Blank
// lines are skipped; any malformed line is an error.
func Read(r io.Reader) ([]Record, error) {
	var recs []Record
	err := ForEach(r, func(rec Record) error {
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return recs, nil
}

// ForEach decodes a JSON Lines stream one record at a time, calling fn
// for each — the streaming sibling of Read for consumers (merge,
// aggregation) that must not hold every record in memory. Blank lines
// are skipped; a malformed line or an error from fn stops the scan.
func ForEach(r io.Reader, fn func(Record) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return fmt.Errorf("results: line %d: %w", line, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	return nil
}

// Group summarizes all trials of one configuration.
type Group struct {
	Key
	N, M int
	// Trials is the total trial count; Stabilized of them reached a
	// stable configuration before the step cap; Failed of them crashed
	// (Record.Error set) instead of completing.
	Trials, Stabilized, Failed int
	// Steps summarizes the stabilization times of the stabilized trials
	// (zero value when none stabilized).
	Steps stats.Summary
	// BackupMean is the mean number of backup-phase nodes per completed
	// (non-crashed) trial; 0 when every trial crashed.
	BackupMean float64
	// ElapsedMeanNs is the mean wall-clock time per completed trial in
	// nanoseconds; 0 when the records carry no timing (older logs).
	ElapsedMeanNs float64
}

// Aggregate groups records by configuration key, preserving first-
// appearance order, and summarizes each group's stabilization times. It
// is a convenience wrapper over Accumulator for callers that already
// hold the full record slice.
func Aggregate(recs []Record) []Group {
	acc := NewAccumulator()
	for _, rec := range recs {
		acc.Add(rec)
	}
	return acc.Groups()
}

// Accumulator aggregates records one at a time into per-configuration
// groups without retaining the records: step statistics accumulate in a
// mergeable stats.Stream per group (count/mean/M2 plus a fixed-size
// quantile sketch), so aggregating a million-trial log costs O(groups)
// memory. Records added in the same order always produce the same
// groups — the byte-determinism path for summary tables is "feed the
// canonical (grid-ordered) record stream to one Accumulator", which is
// what both a solo sweep and a shard merge do.
type Accumulator struct {
	index  map[Key]int
	groups []*accGroup
}

// accGroup is a Group under construction plus its running accumulators.
type accGroup struct {
	Group
	steps     stats.Stream
	backupSum float64
	elapsedNs float64
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{index: make(map[Key]int)}
}

// Add folds one record into its configuration group, creating the group
// in first-appearance order.
func (a *Accumulator) Add(rec Record) {
	k := rec.Key()
	i, ok := a.index[k]
	if !ok {
		i = len(a.groups)
		a.index[k] = i
		a.groups = append(a.groups, &accGroup{Group: Group{Key: k, N: rec.N, M: rec.M}})
	}
	g := a.groups[i]
	g.Trials++
	g.backupSum += float64(rec.Backup)
	if rec.Failed() {
		g.Failed++
		return
	}
	g.elapsedNs += float64(rec.ElapsedNs)
	if rec.Stabilized {
		g.Stabilized++
		g.steps.Add(float64(rec.Steps))
	}
}

// Groups finalizes and returns the aggregated groups in first-appearance
// order. The accumulator stays usable: more records may be added and
// Groups called again.
func (a *Accumulator) Groups() []Group {
	out := make([]Group, 0, len(a.groups))
	for _, g := range a.groups {
		final := g.Group
		if g.steps.Count > 0 {
			final.Steps = g.steps.Summary()
		}
		// Crashed trials report Backup = 0 vacuously; averaging over them
		// would dilute the statistic, so divide by completed trials only.
		// Same for wall time: a crashed trial's timing measures the crash.
		if completed := g.Trials - g.Failed; completed > 0 {
			final.BackupMean = g.backupSum / float64(completed)
			final.ElapsedMeanNs = g.elapsedNs / float64(completed)
		}
		out = append(out, final)
	}
	return out
}

// SummaryTable renders aggregated groups as one table row per
// configuration. Step statistics of a group in which no trial stabilized
// are rendered as "—" (not the zero value, which read as instant
// stabilization); crashed trials show up as an error count in the stab
// column.
func SummaryTable(title string, groups []Group) *table.Table {
	t := table.New(title,
		"graph", "n", "m", "sched", "protocol", "drop", "steps(mean)", "±95%",
		"median", "max", "stab", "backup", "time(ms)")
	for _, g := range groups {
		sched := g.Scheduler
		if sched == "" {
			sched = "uniform"
		}
		stab := fmt.Sprintf("%d/%d", g.Stabilized, g.Trials)
		if g.Failed > 0 {
			stab += fmt.Sprintf(" (%d err)", g.Failed)
		}
		// Wall time per completed trial; records without timing (older
		// logs) render as a dash rather than a misleading 0.
		timeCell := any("—")
		if g.ElapsedMeanNs > 0 {
			timeCell = g.ElapsedMeanNs / 1e6
		}
		if g.Stabilized == 0 {
			t.AddRow(g.Graph, g.N, g.M, sched, g.Protocol, g.DropRate,
				"—", "—", "—", "—", stab, g.BackupMean, timeCell)
			continue
		}
		t.AddRow(g.Graph, g.N, g.M, sched, g.Protocol, g.DropRate,
			g.Steps.Mean, g.Steps.CI95(), g.Steps.Median, g.Steps.Max,
			stab, g.BackupMean, timeCell)
	}
	return t
}
