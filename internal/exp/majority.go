package exp

// E19 exercises the extension module: exact four-state majority on
// graphs, the "other fundamental problem" the paper's conclusions suggest
// for the same token techniques. The stabilization time should scale like
// the six-state leader election protocol's O(H(G)·n·log n) (both are
// governed by token meeting/hitting times) and grow as the vote margin
// shrinks (more strong-token annihilations must happen sequentially).

import (
	"fmt"
	"math"

	"popgraph/internal/graph"
	"popgraph/internal/protocols/majority"
	"popgraph/internal/runner"
	"popgraph/internal/sim"
	"popgraph/internal/stats"
	"popgraph/internal/table"
	"popgraph/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E19",
		Name:  "Extension: exact 4-state majority on graphs",
		Claim: "conclusions: majority via the same token techniques; O(H*nlogn)-scale stabilization, slower for small margins",
		Run: func(cfg Config) error {
			nTrials := trials(cfg, 6)
			t := table.New("E19 majority stabilization",
				"graph", "n", "margin", "steps(mean)", "±95%", "steps/(H*nlogn)")
			for _, n := range ladder(cfg, []int{16, 32, 64, 128}) {
				for _, g := range []graph.Graph{graph.NewClique(n), graph.Cycle(n)} {
					gs := measureGraphStats(g, cfg.Seed+97)
					for _, margin := range []int{2, n / 4} {
						ones := (n + margin) / 2
						if 2*ones == n || ones >= n {
							continue
						}
						xs := make([]float64, 0, nTrials)
						for i := 0; i < nTrials; i++ {
							in := make([]bool, n)
							for j := 0; j < ones; j++ {
								in[j] = true
							}
							p := majority.New(in)
							r := xrand.New(runner.SeedFor(cfg.Seed+uint64(n), i))
							res := sim.Run(g, p, r, sim.Options{})
							if !res.Stabilized {
								return fmt.Errorf("majority did not stabilize on %s", g.Name())
							}
							xs = append(xs, float64(res.Steps))
						}
						s := stats.Summarize(xs)
						shape := gs.h * float64(n) * math.Log2(float64(n))
						t.AddRow(g.Name(), n, margin, s.Mean, s.CI95(), s.Mean/shape)
					}
				}
			}
			cfg.render(t)
			return nil
		},
	})
}
