package exp

// This file implements the lower-bound experiments: E10 (Lemma 22
// identifier collisions), E11 (Section 6 renitent graphs), E12 (Lemmas
// 41-44 influencer growth on dense graphs) and E13 (Lemma 48 fully dense
// configurations, the first step of the Theorem 46 surgery).

import (
	"fmt"
	"math"

	"popgraph/internal/epidemic"
	"popgraph/internal/graph"
	"popgraph/internal/influence"
	"popgraph/internal/protocols/beauquier"
	"popgraph/internal/protocols/idelect"
	"popgraph/internal/renitent"
	"popgraph/internal/runner"
	"popgraph/internal/sim"
	"popgraph/internal/stats"
	"popgraph/internal/table"
	"popgraph/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E10",
		Name:  "Identifier collisions (Lemma 22, Theorem 21 failure rate)",
		Claim: "Pr[two nodes generate the same id] <= 1/2^k; Pr[duplicated max] <= n/2^k",
		Run: func(cfg Config) error {
			t := table.New("E10 identifier collisions (regular variant, k = 3*log2 n)",
				"n", "k", "runs", "dup-max observed", "bound n/2^k")
			nTrials := trials(cfg, 1500)
			for _, n := range []int{4, 6, 8} {
				g := graph.NewClique(n)
				dup := 0
				var k uint
				for trial := 0; trial < nTrials; trial++ {
					p := idelect.NewRegular()
					r := xrand.New(runner.SeedFor(cfg.Seed+uint64(n), trial))
					p.Reset(g, r)
					// Run until every node either finished generating or
					// adopted a finished identifier.
					for step := 0; step < 1<<20; step++ {
						done := true
						for v := 0; v < n; v++ {
							if !p.Finished(v) {
								done = false
								break
							}
						}
						if done {
							break
						}
						u, v := g.SampleEdge(r)
						p.Step(u, v)
					}
					k = p.K()
					// Count nodes that self-generated the maximum id.
					var max uint64
					for v := 0; v < n; v++ {
						if id := p.GeneratedID(v); id > max {
							max = id
						}
					}
					count := 0
					for v := 0; v < n; v++ {
						if p.GeneratedID(v) == max {
							count++
						}
					}
					if count > 1 {
						dup++
					}
				}
				bound := float64(n) / math.Pow(2, float64(k))
				t.AddRow(n, k, nTrials,
					fmt.Sprintf("%d (%.4f)", dup, float64(dup)/float64(nTrials)), bound)
			}
			cfg.render(t)
			return nil
		},
	})

	register(Experiment{
		ID:    "E11",
		Name:  "Renitent graphs (Lemmas 37-38, Theorems 34 and 39)",
		Claim: "Y(C) >= c*l*m w.p. >= 1/2; leader election and broadcast on Thm-39 graphs scale with the target T",
		Run: func(cfg Config) error {
			r := xrand.New(cfg.Seed + 43)
			nTrials := trials(cfg, 24)
			t := table.New("E11 cycle-cover isolation times (Lemma 37)",
				"n", "l", "m", "Y mean", "Y/(l*m)", "Pr[Y >= l*m/4]")
			for _, n := range ladder(cfg, []int{64, 128, 256}) {
				g := graph.Cycle(n)
				c := renitent.CycleCover(n)
				ys := make([]float64, nTrials)
				atLeast := 0
				lm := float64(c.Radius) * float64(g.M())
				for i := range ys {
					ys[i] = float64(renitent.IsolationTime(g, c, r, 1<<40))
					if ys[i] >= lm/4 {
						atLeast++
					}
				}
				s := stats.Summarize(ys)
				t.AddRow(n, c.Radius, g.M(), s.Mean, s.Mean/lm,
					fmt.Sprintf("%d/%d", atLeast, nTrials))
			}
			cfg.render(t)

			// Theorem 39: both broadcast time and stable leader election
			// time scale linearly with the construction target T.
			t2 := table.New("E11b Theorem 39 graphs: time scales with target T",
				"target T", "n'", "m'", "B(measured)", "B/T", "LE steps (identifier)", "LE/T")
			base := 16
			nf := float64(base)
			elTrials := trials(cfg, 5)
			var ts, les []float64
			for _, mult := range []float64{1, 2, 4} {
				target := mult * nf * nf
				g, _, err := renitent.Theorem39Graph(base, target, r)
				if err != nil {
					return err
				}
				b := epidemic.EstimateB(g, r, epidemic.Options{Sources: 2, Trials: trials(cfg, 5)})
				m := MeasureSteps(g, func() sim.Protocol { return idelect.New() },
					cfg.Seed+47, elTrials, 0)
				t2.AddRow(target, g.N(), g.M(), b, b/target, m.Steps.Mean, m.Steps.Mean/target)
				ts = append(ts, target)
				les = append(les, m.Steps.Mean)
			}
			cfg.render(t2)
			fitRow(cfg, "E11/election-vs-target", ts, les)
			return nil
		},
	})

	register(Experiment{
		ID:    "E12",
		Name:  "Influencer growth on dense graphs (Lemmas 41-44)",
		Claim: "|I_t(v)| <= n^eps and O(logn) internal interactions at t = c*n*logn; |S(t)| >= n^{1-eps}",
		Run: func(cfg Config) error {
			r := xrand.New(cfg.Seed + 53)
			t := table.New("E12 influencer sets on G(n,1/2)",
				"n", "c", "t", "max |I_t(v)|", "n^0.75", "max internal", "4*ln n", "|S(t)|", "sqrt(n)")
			for _, n := range ladder(cfg, []int{128, 256, 512}) {
				g, err := graph.Gnp(n, 0.5, r)
				if err != nil {
					return err
				}
				for _, c := range []float64{0.02, 0.05, 0.1} {
					steps := int64(c * float64(n) * math.Log(float64(n)))
					sched := influence.RecordSchedule(g, steps, r)
					maxSize, maxInternal := 0, 0
					for v := 0; v < n; v += n / 16 {
						res := influence.ReverseInfluence(g, sched, v)
						if res.Size > maxSize {
							maxSize = res.Size
						}
						if res.Internal > maxInternal {
							maxInternal = res.Internal
						}
					}
					remaining := influence.NonInteracted(g, steps, r)
					t.AddRow(n, c, steps, maxSize, math.Pow(float64(n), 0.75),
						maxInternal, 4*math.Log(float64(n)),
						remaining, math.Sqrt(float64(n)))
				}
			}
			cfg.render(t)
			return nil
		},
	})

	register(Experiment{
		ID:    "E13",
		Name:  "Fully dense configurations (Lemma 48, surgery step 1)",
		Claim: "the six-state protocol reaches a fully alpha-dense configuration w.r.t. its producible states in O(n) steps on G(n,p)",
		Run: func(cfg Config) error {
			r := xrand.New(cfg.Seed + 59)
			t := table.New("E13 densities on G(n,1/2)",
				"n", "best min-density alpha", "attained at step", "step/n")
			for _, n := range ladder(cfg, []int{128, 256, 512, 1024}) {
				g, err := graph.Gnp(n, 0.5, r)
				if err != nil {
					return err
				}
				p := beauquier.New()
				tracker := &influence.DensityTracker{P: p, N: n}
				sim.Run(g, p, r, sim.Options{
					MaxSteps:     int64(40 * n),
					Observer:     tracker,
					ObserveEvery: int64(n / 8),
				})
				alpha, step := influence.BestFullDensity(tracker.Samples)
				t.AddRow(n, alpha, step, float64(step)/float64(n))
			}
			cfg.render(t)
			return nil
		},
	})
}
