package exp

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"popgraph/internal/graph"
	"popgraph/internal/protocols/beauquier"
	"popgraph/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
		"E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for _, id := range want {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		if e.Name == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete: %+v", id, e)
		}
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestAllSortedNumerically(t *testing.T) {
	all := All()
	if all[0].ID != "E1" || all[len(all)-1].ID != "E20" {
		t.Fatalf("bad ordering: first %s last %s", all[0].ID, all[len(all)-1].ID)
	}
	for i, e := range all[:14] {
		if want := fmt.Sprintf("E%d", i+1); e.ID != want {
			t.Fatalf("position %d holds %s, want %s", i, e.ID, want)
		}
	}
}

func TestIDOrderingNumericAware(t *testing.T) {
	ids := []string{"EX10", "E14", "E2", "A3", "E10", "EX2", "E1"}
	sort.Slice(ids, func(i, j int) bool { return idLess(ids[i], ids[j]) })
	want := []string{"A3", "E1", "E2", "E10", "E14", "EX2", "EX10"}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("sorted %v, want %v", ids, want)
	}
	// Length-then-lexicographic (the old rule) would misplace these:
	// a multi-letter prefix must not interleave with single-letter IDs.
	if idLess("EX2", "E10") {
		t.Fatal("EX2 sorted before E10")
	}
	if !idLess("E2", "E10") {
		t.Fatal("E2 not before E10")
	}
}

func TestMeasureStepsParallelDeterministic(t *testing.T) {
	g := graph.NewClique(16)
	factory := func() sim.Protocol { return beauquier.New() }
	a := MeasureSteps(g, factory, 99, 8, 0)
	b := MeasureSteps(g, factory, 99, 8, 0)
	if a.Steps.Mean != b.Steps.Mean || a.Stabilized != b.Stabilized {
		t.Fatalf("parallel measurement not deterministic: %+v vs %+v", a, b)
	}
	if a.Stabilized != 8 || a.Trials != 8 {
		t.Fatalf("measurement %+v", a)
	}
	if a.Steps.Min <= 0 {
		t.Fatal("nonpositive steps")
	}
}

func TestMeasureOptsWithDropsDeterministic(t *testing.T) {
	g := graph.NewClique(12)
	factory := func() sim.Protocol { return beauquier.New() }
	a := MeasureOpts(g, factory, 5, 6, sim.Options{DropRate: 0.25})
	b := MeasureOpts(g, factory, 5, 6, sim.Options{DropRate: 0.25})
	if a != b {
		t.Fatalf("drop-rate measurement not deterministic: %+v vs %+v", a, b)
	}
	if a.Stabilized != 6 {
		t.Fatalf("measurement %+v", a)
	}
}

func TestMeasureStepsRespectsCap(t *testing.T) {
	g := graph.Cycle(64)
	m := MeasureSteps(g, func() sim.Protocol { return beauquier.New() }, 1, 4, 10)
	if m.Stabilized != 0 {
		t.Fatal("should not stabilize in 10 steps")
	}
}

func TestLadderAndTrials(t *testing.T) {
	full := []int{1, 2, 3, 4}
	if got := ladder(Config{}, full); len(got) != 4 {
		t.Fatal("full ladder truncated")
	}
	if got := ladder(Config{Quick: true}, full); len(got) != 3 {
		t.Fatalf("quick ladder %v", got)
	}
	if got := ladder(Config{Quick: true}, []int{1, 2}); len(got) != 2 {
		t.Fatal("short ladders must not shrink")
	}
	if trials(Config{}, 10) != 10 || trials(Config{Quick: true}, 10) != 5 {
		t.Fatal("trial scaling")
	}
	if trials(Config{Quick: true}, 4) != 3 {
		t.Fatal("trial floor")
	}
}

// TestQuickSmoke runs the fast subset of experiments end to end in Quick
// mode; the slow Table-1 families are exercised by bench_test.go instead.
func TestQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments smoke test skipped in -short mode")
	}
	for _, id := range []string{"E5", "E8", "E10", "E13", "E14"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		var buf bytes.Buffer
		if err := e.Run(Config{Seed: 1, Quick: true, Out: &buf}); err != nil {
			t.Fatalf("%s failed: %v", id, err)
		}
		if !strings.Contains(buf.String(), id) {
			t.Errorf("%s output lacks its table header:\n%s", id, buf.String())
		}
	}
}

func TestMarkdownRendering(t *testing.T) {
	e, _ := ByID("E14")
	var buf bytes.Buffer
	if err := e.Run(Config{Seed: 1, Quick: true, Out: &buf, Markdown: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| --- |") {
		t.Error("markdown table separator missing")
	}
}

func TestNilOutDiscards(t *testing.T) {
	e, _ := ByID("E14")
	if err := e.Run(Config{Seed: 1, Quick: true}); err != nil {
		t.Fatal(err)
	}
}
