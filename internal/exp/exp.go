// Package exp is the experiment harness that regenerates the paper's
// evaluation: every row of Table 1 and every quantitative lemma gets a
// paper-vs-measured experiment (E1–E20, indexed in DESIGN.md). Each
// experiment prints one or more tables; cmd/experiments is the CLI driver
// and bench_test.go wraps each experiment in a testing.B benchmark.
// All trial execution flows through internal/runner, so experiments are
// parallel across CPUs yet deterministic for a fixed Config.Seed.
package exp

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"popgraph/internal/graph"
	"popgraph/internal/runner"
	"popgraph/internal/sim"
	"popgraph/internal/stats"
	"popgraph/internal/table"
)

// Config controls an experiment run.
type Config struct {
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// Quick shrinks ladders and trial counts (used by `go test` smoke
	// tests and -quick CLI runs; full runs are the default).
	Quick bool
	// Out receives the rendered tables (defaults to io.Discard if nil).
	Out io.Writer
	// Markdown renders tables as Markdown instead of aligned text.
	Markdown bool
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

func (c Config) render(t *table.Table) {
	w := c.out()
	if c.Markdown {
		t.WriteMarkdown(w)
	} else {
		t.WriteText(w)
	}
	fmt.Fprintln(w)
}

// Experiment is one reproducible unit of the evaluation.
type Experiment struct {
	// ID is the short identifier from DESIGN.md, e.g. "E3".
	ID string
	// Name is a one-line title.
	Name string
	// Claim cites the paper statement being reproduced.
	Claim string
	// Run executes the experiment, writing tables to cfg.Out.
	Run func(cfg Config) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments sorted by ID: alphabetic prefix
// first, then numeric suffix ("E2" before "E10", and any future "EX1"
// after every "En").
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		return idLess(out[i].ID, out[j].ID)
	})
	return out
}

// idLess orders experiment IDs by (alphabetic prefix, numeric suffix).
// IDs whose suffix is not a plain number fall back to lexicographic
// order after the prefix comparison.
func idLess(a, b string) bool {
	pa, na, oka := splitID(a)
	pb, nb, okb := splitID(b)
	if pa != pb {
		return pa < pb
	}
	if oka && okb && na != nb {
		return na < nb
	}
	if oka != okb {
		return okb // "E" sorts before "E1"… of the same prefix
	}
	return a < b
}

// splitID splits an ID into its leading non-digit prefix and trailing
// number; ok is false when the suffix is empty or not a plain number.
func splitID(id string) (prefix string, num int, ok bool) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	if i == len(id) {
		return id, 0, false
	}
	n, err := strconv.Atoi(id[i:])
	if err != nil {
		return id[:i], 0, false
	}
	return id[:i], n, true
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Measurement summarizes repeated stabilization-time trials.
type Measurement struct {
	// Steps summarizes the stabilization times of the trials that
	// stabilized.
	Steps stats.Summary
	// Stabilized of Trials runs reached a stable configuration before the
	// step cap.
	Stabilized, Trials int
	// BackupMean is the mean number of nodes that entered a backup phase
	// (protocols without a backup report 0).
	BackupMean float64
}

// MeasureSteps runs `trials` independent executions of factory() on g
// with distinct deterministic seeds, in parallel through the batch
// runner, and aggregates stabilization times. maxSteps <= 0 uses the
// engine default.
func MeasureSteps(g graph.Graph, factory func() sim.Protocol, seed uint64,
	trials int, maxSteps int64) Measurement {
	return MeasureOpts(g, factory, seed, trials, sim.Options{MaxSteps: maxSteps})
}

// MeasureOpts is MeasureSteps with full simulation options (drop rates,
// step caps); the per-trial seed derivation is runner.SeedFor.
func MeasureOpts(g graph.Graph, factory func() sim.Protocol, seed uint64,
	trials int, opts sim.Options) Measurement {
	jobs := runner.TrialJobs(g, factory, seed, trials, opts)
	return SummarizeOutcomes(runner.Run(jobs))
}

// SummarizeOutcomes aggregates a batch of runner outcomes into a
// Measurement.
func SummarizeOutcomes(outcomes []runner.Outcome) Measurement {
	m := Measurement{Trials: len(outcomes)}
	steps := make([]float64, 0, len(outcomes))
	var backupSum float64
	for _, o := range outcomes {
		if o.Result.Stabilized {
			m.Stabilized++
			steps = append(steps, float64(o.Result.Steps))
		}
		backupSum += float64(o.Backup)
	}
	if m.Trials > 0 {
		m.BackupMean = backupSum / float64(m.Trials)
	}
	if len(steps) > 0 {
		m.Steps = stats.Summarize(steps)
	}
	return m
}

// ladder returns a geometric size ladder, halved under Quick.
func ladder(cfg Config, full []int) []int {
	if !cfg.Quick {
		return full
	}
	if len(full) <= 2 {
		return full
	}
	return full[:len(full)-1]
}

// trials picks a trial count, reduced under Quick.
func trials(cfg Config, full int) int {
	if cfg.Quick {
		t := full / 2
		if t < 3 {
			t = 3
		}
		return t
	}
	return full
}

// fitRow appends a log-log scaling fit line to the writer.
func fitRow(cfg Config, label string, ns, ys []float64) {
	if len(ns) < 2 {
		return
	}
	slope, r2 := stats.LogLogSlope(ns, ys)
	fmt.Fprintf(cfg.out(), "%s: log-log slope %.3f (R² %.3f)\n", label, slope, r2)
}
