// Package exp is the experiment harness that regenerates the paper's
// evaluation: every row of Table 1 and every quantitative lemma gets a
// paper-vs-measured experiment (E1–E14, indexed in DESIGN.md). Each
// experiment prints one or more tables; cmd/experiments is the CLI driver
// and bench_test.go wraps each experiment in a testing.B benchmark.
package exp

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"popgraph/internal/graph"
	"popgraph/internal/sim"
	"popgraph/internal/stats"
	"popgraph/internal/table"
	"popgraph/internal/xrand"
)

// Config controls an experiment run.
type Config struct {
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// Quick shrinks ladders and trial counts (used by `go test` smoke
	// tests and -quick CLI runs; full runs are the default).
	Quick bool
	// Out receives the rendered tables (defaults to io.Discard if nil).
	Out io.Writer
	// Markdown renders tables as Markdown instead of aligned text.
	Markdown bool
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

func (c Config) render(t *table.Table) {
	w := c.out()
	if c.Markdown {
		t.WriteMarkdown(w)
	} else {
		t.WriteText(w)
	}
	fmt.Fprintln(w)
}

// Experiment is one reproducible unit of the evaluation.
type Experiment struct {
	// ID is the short identifier from DESIGN.md, e.g. "E3".
	ID string
	// Name is a one-line title.
	Name string
	// Claim cites the paper statement being reproduced.
	Claim string
	// Run executes the experiment, writing tables to cfg.Out.
	Run func(cfg Config) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		// Numeric-aware: E2 before E10.
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Measurement summarizes repeated stabilization-time trials.
type Measurement struct {
	// Steps summarizes the stabilization times of the trials that
	// stabilized.
	Steps stats.Summary
	// Stabilized of Trials runs reached a stable configuration before the
	// step cap.
	Stabilized, Trials int
	// BackupMean is the mean number of nodes that entered a backup phase
	// (protocols without a backup report 0).
	BackupMean float64
}

// backupReporter is implemented by protocols with a backup phase.
type backupReporter interface{ InBackup() int }

// MeasureSteps runs `trials` independent executions of factory() on g
// with distinct deterministic seeds, in parallel across CPUs, and
// aggregates stabilization times. maxSteps <= 0 uses the engine default.
func MeasureSteps(g graph.Graph, factory func() sim.Protocol, seed uint64,
	trials int, maxSteps int64) Measurement {
	if trials < 1 {
		trials = 1
	}
	type outcome struct {
		res    sim.Result
		backup int
	}
	outcomes := make([]outcome, trials)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < trials; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			p := factory()
			r := xrand.New(seed + 0x9e3779b97f4a7c15*uint64(i+1))
			res := sim.Run(g, p, r, sim.Options{MaxSteps: maxSteps})
			o := outcome{res: res}
			if br, ok := p.(backupReporter); ok {
				o.backup = br.InBackup()
			}
			outcomes[i] = o
		}(i)
	}
	wg.Wait()
	m := Measurement{Trials: trials}
	steps := make([]float64, 0, trials)
	var backupSum float64
	for _, o := range outcomes {
		if o.res.Stabilized {
			m.Stabilized++
			steps = append(steps, float64(o.res.Steps))
		}
		backupSum += float64(o.backup)
	}
	m.BackupMean = backupSum / float64(trials)
	if len(steps) > 0 {
		m.Steps = stats.Summarize(steps)
	}
	return m
}

// ladder returns a geometric size ladder, halved under Quick.
func ladder(cfg Config, full []int) []int {
	if !cfg.Quick {
		return full
	}
	if len(full) <= 2 {
		return full
	}
	return full[:len(full)-1]
}

// trials picks a trial count, reduced under Quick.
func trials(cfg Config, full int) int {
	if cfg.Quick {
		t := full / 2
		if t < 3 {
			t = 3
		}
		return t
	}
	return full
}

// fitRow appends a log-log scaling fit line to the writer.
func fitRow(cfg Config, label string, ns, ys []float64) {
	if len(ns) < 2 {
		return
	}
	slope, r2 := stats.LogLogSlope(ns, ys)
	fmt.Fprintf(cfg.out(), "%s: log-log slope %.3f (R² %.3f)\n", label, slope, r2)
}
