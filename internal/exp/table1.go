package exp

// This file implements the Table 1 experiments (E1–E5) and the state-
// complexity summary (E14). Each family's table reports, per graph size
// and protocol, the measured stabilization time next to the paper's
// complexity shape; the "ratio" column (measured / shape) should be flat
// across the ladder when the paper's bound has the right growth rate.

import (
	"fmt"
	"math"
	"strings"

	"popgraph/internal/bounds"
	"popgraph/internal/epidemic"
	"popgraph/internal/graph"
	"popgraph/internal/protocols/beauquier"
	"popgraph/internal/protocols/fastelect"
	"popgraph/internal/protocols/idelect"
	"popgraph/internal/protocols/star"
	"popgraph/internal/renitent"
	"popgraph/internal/sim"
	"popgraph/internal/table"
	"popgraph/internal/walk"
	"popgraph/internal/xrand"
)

// graphStats caches the per-graph quantities the shapes need.
type graphStats struct {
	g graph.Graph
	b float64 // estimated B(G)
	h float64 // estimated H(G)
}

func measureGraphStats(g graph.Graph, seed uint64) graphStats {
	r := xrand.New(seed)
	gs := graphStats{g: g}
	gs.b = epidemic.EstimateB(g, r, epidemic.Options{Sources: 3, Trials: 5})
	gs.h = hittingEstimate(g, r)
	return gs
}

// hittingEstimate returns H(G): closed form where known, exact linear
// algebra for small graphs, Monte Carlo otherwise.
func hittingEstimate(g graph.Graph, r *xrand.Rand) float64 {
	n := g.N()
	switch {
	case g.M() == n*(n-1)/2:
		return bounds.HittingClique(n)
	case g.M() == n && graph.IsRegular(g) && g.Degree(0) == 2:
		return bounds.HittingCycle(n)
	case n <= 96:
		return walk.ClassicWorstHittingExact(g)
	default:
		return walk.WorstHittingMC(g, r, 6, 6)
	}
}

// protoSpec couples a protocol factory with its paper complexity shape.
type protoSpec struct {
	name    string
	factory func(gs graphStats) func() sim.Protocol
	shape   func(gs graphStats) float64
	shapeID string
}

func identifierSpec(regular bool) protoSpec {
	return protoSpec{
		name: "identifier",
		factory: func(graphStats) func() sim.Protocol {
			if regular {
				return func() sim.Protocol { return idelect.NewRegular() }
			}
			return func() sim.Protocol { return idelect.New() }
		},
		shape:   func(gs graphStats) float64 { return bounds.IdentifierUpper(gs.g.N(), gs.b) },
		shapeID: "B+nlogn",
	}
}

func fastSpec() protoSpec {
	return protoSpec{
		name: "fast",
		factory: func(gs graphStats) func() sim.Protocol {
			params := fastelect.TunedParams(gs.g, gs.b)
			return func() sim.Protocol { return fastelect.New(params) }
		},
		shape:   func(gs graphStats) float64 { return bounds.FastUpper(gs.g.N(), gs.b) },
		shapeID: "B*logn",
	}
}

func sixStateSpec() protoSpec {
	return protoSpec{
		name: "six-state",
		factory: func(graphStats) func() sim.Protocol {
			return func() sim.Protocol { return beauquier.New() }
		},
		shape:   func(gs graphStats) float64 { return bounds.SixStateUpper(gs.g.N(), gs.h) },
		shapeID: "H*nlogn",
	}
}

// runFamily measures every protocol on every graph of a family and
// renders one table per protocol plus scaling fits.
func runFamily(cfg Config, title string, graphs []graph.Graph, specs []protoSpec, nTrials int) error {
	allStats := make([]graphStats, len(graphs))
	for i, g := range graphs {
		allStats[i] = measureGraphStats(g, cfg.Seed+uint64(i)*131)
	}
	for _, spec := range specs {
		t := table.New(fmt.Sprintf("%s — %s protocol", title, spec.name),
			"graph", "n", "m", "B(G)est", "H(G)est", "steps(mean)", "±95%", "stab",
			"shape("+spec.shapeID+")", "ratio", "backup")
		// Scaling fits are per subfamily (cycles, tori, ...): mixing
		// families with different B(G) laws into one fit is meaningless.
		type series struct{ ns, ys []float64 }
		bySub := make(map[string]*series)
		var subOrder []string
		for _, gs := range allStats {
			m := MeasureSteps(gs.g, spec.factory(gs), cfg.Seed^0xabcd, nTrials, 0)
			shape := spec.shape(gs)
			ratio := math.NaN()
			if m.Stabilized > 0 && shape > 0 {
				ratio = m.Steps.Mean / shape
				sub := subfamily(gs.g.Name())
				s, ok := bySub[sub]
				if !ok {
					s = &series{}
					bySub[sub] = s
					subOrder = append(subOrder, sub)
				}
				s.ns = append(s.ns, float64(gs.g.N()))
				s.ys = append(s.ys, m.Steps.Mean)
			}
			t.AddRow(gs.g.Name(), gs.g.N(), gs.g.M(), gs.b, gs.h,
				m.Steps.Mean, m.Steps.CI95(),
				fmt.Sprintf("%d/%d", m.Stabilized, m.Trials),
				shape, ratio, m.BackupMean)
		}
		cfg.render(t)
		for _, sub := range subOrder {
			s := bySub[sub]
			fitRow(cfg, fmt.Sprintf("%s/%s/%s", title, spec.name, sub), s.ns, s.ys)
		}
	}
	fmt.Fprintln(cfg.out())
	return nil
}

// subfamily extracts the generator family from a graph name, e.g.
// "cycle-128" -> "cycle", "gnp-256-p0.50" -> "gnp-p0.50" (the edge
// density changes the scaling law, so p stays part of the key).
func subfamily(name string) string {
	parts := strings.Split(name, "-")
	key := parts[0]
	for _, p := range parts[1:] {
		if len(p) > 0 && (p[0] < '0' || p[0] > '9') {
			key += "-" + p
		}
	}
	return key
}

func init() {
	register(Experiment{
		ID:    "E1",
		Name:  "Table 1 row: General graphs",
		Claim: "Thm 21: O(B+nlogn) w/ O(n^4) states; Thm 24: O(B*logn) w/ O(log^2 n) states; Thm 16: O(H*nlogn) w/ O(1) states",
		Run: func(cfg Config) error {
			r := xrand.New(cfg.Seed + 7)
			var graphs []graph.Graph
			for _, n := range ladder(cfg, []int{32, 64, 128, 256}) {
				graphs = append(graphs, graph.Lollipop(n/2, n/2))
			}
			for _, n := range ladder(cfg, []int{16, 24, 32}) {
				nf := float64(n)
				g, _, err := renitent.Theorem39Graph(n, nf*nf, r)
				if err != nil {
					return err
				}
				graphs = append(graphs, g)
			}
			specs := []protoSpec{identifierSpec(false), fastSpec(), sixStateSpec()}
			return runFamily(cfg, "E1 general", graphs, specs, trials(cfg, 6))
		},
	})

	register(Experiment{
		ID:    "E2",
		Name:  "Table 1 row: Regular graphs",
		Claim: "Fast: O(n/phi*log^2 n); six-state: O(n^2/phi*log^2 n); identifier: O(n/phi*logn) (Cor 25, Thm 16, Thm 21)",
		Run: func(cfg Config) error {
			r := xrand.New(cfg.Seed + 11)
			var graphs []graph.Graph
			for _, n := range ladder(cfg, []int{32, 64, 128, 256}) {
				graphs = append(graphs, graph.Cycle(n))
			}
			for _, k := range ladder(cfg, []int{6, 8, 12, 16}) {
				graphs = append(graphs, graph.Torus2D(k, k))
			}
			for _, n := range ladder(cfg, []int{64, 128, 256}) {
				g, err := graph.RandomRegular(n, 4, r)
				if err != nil {
					return err
				}
				graphs = append(graphs, g)
			}
			specs := []protoSpec{identifierSpec(true), fastSpec(), sixStateSpec()}
			return runFamily(cfg, "E2 regular", graphs, specs, trials(cfg, 6))
		},
	})

	register(Experiment{
		ID:    "E3",
		Name:  "Table 1 row: Cliques",
		Claim: "Identifier: Theta(n logn); six-state: Theta(n^2)-scale; fast: O(n log^2 n)",
		Run: func(cfg Config) error {
			var graphs []graph.Graph
			for _, n := range ladder(cfg, []int{64, 128, 256, 512}) {
				graphs = append(graphs, graph.NewClique(n))
			}
			specs := []protoSpec{identifierSpec(true), fastSpec(), sixStateSpec()}
			return runFamily(cfg, "E3 cliques", graphs, specs, trials(cfg, 8))
		},
	})

	register(Experiment{
		ID:    "E4",
		Name:  "Table 1 row: Dense Erdos-Renyi graphs",
		Claim: "Identifier: Theta(n logn); fast: O(n log^2 n); six-state: O(n^2 logn), and >= c*n^2 (Thm 46 shape)",
		Run: func(cfg Config) error {
			r := xrand.New(cfg.Seed + 13)
			var graphs []graph.Graph
			for _, n := range ladder(cfg, []int{64, 128, 256, 512}) {
				for _, p := range []float64{0.25, 0.5} {
					g, err := graph.Gnp(n, p, r)
					if err != nil {
						return err
					}
					graphs = append(graphs, g)
				}
			}
			specs := []protoSpec{identifierSpec(false), fastSpec(), sixStateSpec()}
			if err := runFamily(cfg, "E4 dense random", graphs, specs, trials(cfg, 6)); err != nil {
				return err
			}
			// Theorem 46 shape: six-state stabilization / n^2 should be
			// bounded away from zero (no o(n^2) constant-state protocol).
			t := table.New("E4b six-state vs n^2 lower-bound shape (Thm 46)",
				"graph", "n", "steps(mean)", "steps/n^2")
			for _, g := range graphs {
				m := MeasureSteps(g, func() sim.Protocol { return beauquier.New() },
					cfg.Seed+17, trials(cfg, 6), 0)
				n2 := float64(g.N()) * float64(g.N())
				t.AddRow(g.Name(), g.N(), m.Steps.Mean, m.Steps.Mean/n2)
			}
			cfg.render(t)
			return nil
		},
	})

	register(Experiment{
		ID:    "E5",
		Name:  "Table 1 row: Stars",
		Claim: "Trivial O(1)-state protocol stabilizes in exactly 1 interaction on stars",
		Run: func(cfg Config) error {
			t := table.New("E5 stars — trivial protocol", "n", "steps(mean)", "max", "stab")
			for _, n := range ladder(cfg, []int{16, 64, 256, 1024, 4096}) {
				g := graph.Star(n)
				m := MeasureSteps(g, func() sim.Protocol { return star.New() },
					cfg.Seed+19, trials(cfg, 20), 0)
				t.AddRow(n, m.Steps.Mean, m.Steps.Max, fmt.Sprintf("%d/%d", m.Stabilized, m.Trials))
			}
			cfg.render(t)
			// Contrast: the six-state protocol needs Omega(n)-scale time on
			// the same stars.
			t2 := table.New("E5b stars — six-state contrast", "n", "steps(mean)", "steps/(n^2*logn)")
			for _, n := range ladder(cfg, []int{16, 32, 64, 128}) {
				g := graph.Star(n)
				m := MeasureSteps(g, func() sim.Protocol { return beauquier.New() },
					cfg.Seed+23, trials(cfg, 6), 0)
				norm := float64(n) * float64(n) * math.Log2(float64(n))
				t2.AddRow(n, m.Steps.Mean, m.Steps.Mean/norm)
			}
			cfg.render(t2)
			return nil
		},
	})

	register(Experiment{
		ID:    "E14",
		Name:  "State complexity summary (Table 1 'States' column)",
		Claim: "six-state: O(1); identifier: O(n^4) (O(n^3) regular); fast: O(log^2 n); star: O(1)",
		Run: func(cfg Config) error {
			t := table.New("E14 state complexity",
				"n", "six-state", "identifier", "id/(12n^4)", "fast", "fast/log2(n)^2", "star")
			for _, n := range ladder(cfg, []int{64, 256, 1024, 4096}) {
				g := graph.NewClique(n)
				b := float64(n) * math.Log(float64(n)) // B(K_n) scale
				fp := fastelect.New(fastelect.TunedParams(g, b))
				id := idelect.New()
				log2n := math.Log2(float64(n))
				n2 := float64(n) * float64(n)
				n4 := n2 * n2
				t.AddRow(n,
					beauquier.New().StateCount(n),
					id.StateCount(n), id.StateCount(n)/(12*n4),
					fp.StateCount(n), fp.StateCount(n)/(log2n*log2n),
					star.New().StateCount(n))
			}
			cfg.render(t)
			return nil
		},
	})
}
