package exp

// This file implements the ablation experiments for the design choices
// DESIGN.md calls out: E15 sweeps the fast protocol's streak length h
// around its canonical value, E16 compares the faithful paper parameters
// against the tuned laptop profile, E17 sweeps the identifier protocol's
// bit-length factor, and E18 measures the renitence of k-dimensional
// tori (Section 6.2's generalization of the cycle lower bound).

import (
	"fmt"
	"math"

	"popgraph/internal/epidemic"
	"popgraph/internal/graph"
	"popgraph/internal/protocols/fastelect"
	"popgraph/internal/protocols/idelect"
	"popgraph/internal/renitent"
	"popgraph/internal/sim"
	"popgraph/internal/stats"
	"popgraph/internal/table"
	"popgraph/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E15",
		Name:  "Ablation: fast protocol streak length h",
		Claim: "h ~ log2(B*Delta/m) balances tick rate vs broadcast: small h lets slow nodes survive (more backup), large h slows ticks linearly",
		Run: func(cfg Config) error {
			r := xrand.New(cfg.Seed + 61)
			g := graph.Torus2D(12, 12)
			b := epidemic.EstimateB(g, r, epidemic.Options{Sources: 2, Trials: 6})
			canonical := fastelect.TunedParams(g, b)
			t := table.New(fmt.Sprintf("E15 h-sweep on %s (canonical h = %d)", g.Name(), canonical.H),
				"h", "steps(mean)", "±95%", "stab", "backup(mean nodes)")
			nTrials := trials(cfg, 6)
			for dh := -3; dh <= 3; dh++ {
				h := canonical.H + dh
				if h < 1 {
					continue
				}
				params := fastelect.Params{H: h, L: canonical.L, AlphaL: canonical.AlphaL}
				m := MeasureSteps(g, func() sim.Protocol { return fastelect.New(params) },
					cfg.Seed+67, nTrials, 0)
				t.AddRow(h, m.Steps.Mean, m.Steps.CI95(),
					fmt.Sprintf("%d/%d", m.Stabilized, m.Trials), m.BackupMean)
			}
			cfg.render(t)
			return nil
		},
	})

	register(Experiment{
		ID:    "E16",
		Name:  "Ablation: paper vs tuned fast-protocol parameters",
		Claim: "PaperParams carry a ~2^9 clock-rate constant for the w.h.p. union bounds; TunedParams keep the functional form and the O(B logn) scaling",
		Run: func(cfg Config) error {
			r := xrand.New(cfg.Seed + 71)
			t := table.New("E16 parameter profiles",
				"graph", "profile", "h", "L", "alphaL", "states", "steps(mean)", "steps/(B*logn)", "backup")
			nTrials := trials(cfg, 4)
			for _, g := range []graph.Graph{graph.NewClique(64), graph.Torus2D(8, 8)} {
				b := epidemic.EstimateB(g, r, epidemic.Options{Sources: 2, Trials: 6})
				shape := b * math.Log2(float64(g.N()))
				profiles := []struct {
					name   string
					params fastelect.Params
				}{
					{"tuned", fastelect.TunedParams(g, b)},
					{"paper(tau=1)", fastelect.PaperParams(g, b, 1)},
				}
				for _, pr := range profiles {
					m := MeasureSteps(g, func() sim.Protocol { return fastelect.New(pr.params) },
						cfg.Seed+73, nTrials, 0)
					t.AddRow(g.Name(), pr.name, pr.params.H, pr.params.L, pr.params.AlphaL,
						fastelect.New(pr.params).StateCount(g.N()),
						m.Steps.Mean, m.Steps.Mean/shape, m.BackupMean)
				}
			}
			cfg.render(t)
			return nil
		},
	})

	register(Experiment{
		ID:    "E17",
		Name:  "Ablation: identifier bit-length factor",
		Claim: "k = factor*log2 n: factor >= 3 makes duplicate-max collisions (n/2^k) negligible; factor 1 forces frequent backup entry yet stays correct",
		Run: func(cfg Config) error {
			g := graph.NewClique(32)
			t := table.New("E17 identifier factor sweep on clique-32",
				"factor", "k bits", "states", "steps(mean)", "±95%", "stab")
			nTrials := trials(cfg, 12)
			for _, factor := range []int{1, 2, 3, 4, 6} {
				m := MeasureSteps(g, func() sim.Protocol { return idelect.NewWithFactor(factor) },
					cfg.Seed+79, nTrials, 0)
				probe := idelect.NewWithFactor(factor)
				probe.Reset(g, xrand.New(1)) //popcheck:ignore seedflow probe only reports K/StateCount, RNG never sampled
				t.AddRow(factor, probe.K(), probe.StateCount(g.N()),
					m.Steps.Mean, m.Steps.CI95(), fmt.Sprintf("%d/%d", m.Stabilized, m.Trials))
			}
			cfg.render(t)
			return nil
		},
	})

	register(Experiment{
		ID:    "E18",
		Name:  "Renitence of k-dimensional tori (Section 6.2)",
		Claim: "k-dim toroidal grids are Omega(n^{1+1/k})-renitent: slab-cover isolation time grows like l*m",
		Run: func(cfg Config) error {
			r := xrand.New(cfg.Seed + 83)
			t := table.New("E18 torus slab-cover isolation",
				"dims", "n", "m", "l", "Y(mean)", "Y/(l*m)")
			nTrials := trials(cfg, 12)
			for _, dims := range [][]int{{48, 4}, {96, 4}, {192, 4}, {64, 8}} {
				g := graph.TorusK(dims...)
				c := renitent.TorusSlabCover(dims...)
				if err := c.Validate(g); err != nil {
					return err
				}
				xs := make([]float64, nTrials)
				for i := range xs {
					xs[i] = float64(renitent.IsolationTime(g, c, r, 1<<40))
				}
				mean := stats.Mean(xs)
				lm := float64(c.Radius) * float64(g.M())
				t.AddRow(fmt.Sprintf("%v", dims), g.N(), g.M(), c.Radius, mean, mean/lm)
			}
			cfg.render(t)
			return nil
		},
	})
}
