package exp

// This file implements the information-propagation and random-walk
// experiments: E6 (Theorem 6 / Lemma 12 broadcast bounds), E7 (Lemma 14
// propagation lower bounds), E8 (Section 5.1 streak-clock lemmas) and
// E9 (Lemma 17/18 and Proposition 20 random-walk facts).

import (
	"fmt"
	"math"

	"popgraph/internal/bounds"
	"popgraph/internal/epidemic"
	"popgraph/internal/graph"
	"popgraph/internal/protocols/streak"
	"popgraph/internal/stats"
	"popgraph/internal/table"
	"popgraph/internal/walk"
	"popgraph/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E6",
		Name:  "Broadcast time vs Theorem 6 and Lemma 12 bounds",
		Claim: "(m/Delta)ln(n-1) <= B(G) <= m*min{logn/beta, logn+D} (+Lemma 11 for G(n,p))",
		Run: func(cfg Config) error {
			r := xrand.New(cfg.Seed + 29)
			type entry struct {
				g    graph.Graph
				beta float64
			}
			var entries []entry
			for _, n := range ladder(cfg, []int{64, 128, 256, 512}) {
				entries = append(entries,
					entry{graph.NewClique(n), bounds.ExpansionClique(n)},
					entry{graph.Cycle(n), bounds.ExpansionCycle(n)},
					entry{graph.Star(n), bounds.ExpansionStar()},
				)
				k := int(math.Sqrt(float64(n)))
				if k >= 3 {
					entries = append(entries, entry{graph.Torus2D(k, k), bounds.ExpansionTorusUpper(k)})
				}
				g, err := graph.Gnp(n, 0.5, r)
				if err != nil {
					return err
				}
				entries = append(entries, entry{g, 0})
			}
			t := table.New("E6 broadcast bounds", "graph", "n", "m",
				"lower(L12)", "B(measured)", "upper(T6)", "in-bounds")
			nTrials := trials(cfg, 8)
			var gnpNs, gnpBs []float64
			for _, e := range entries {
				g := e.g
				b := epidemic.EstimateB(g, r, epidemic.Options{Sources: 3, Trials: nTrials})
				lo := bounds.BroadcastLower(g.N(), g.M(), graph.MaxDegree(g))
				hi := bounds.BroadcastUpper(g.N(), g.M(), graph.Diameter(g), e.beta)
				ok := b >= lo && b <= 1.25*hi // finite-size slack on the asymptotic constant
				t.AddRow(g.Name(), g.N(), g.M(), lo, b, hi, ok)
				if e.beta == 0 { // the G(n,p) rows
					gnpNs = append(gnpNs, float64(g.N()))
					gnpBs = append(gnpBs, b)
				}
			}
			cfg.render(t)
			// Lemma 11: B(G(n,p)) = O(n log n): the log-log slope of B vs n
			// should be close to 1 (log factor bends it slightly above).
			fitRow(cfg, "E6/gnp-broadcast", gnpNs, gnpBs)
			return nil
		},
	})

	register(Experiment{
		ID:    "E7",
		Name:  "Distance-k propagation lower bound (Lemma 14, Theorem 15)",
		Claim: "Pr[T_k < km/(Delta e^3)] <= 1/n for k >= ln n; bounded-degree B(G)=Theta(n*max{D, logn})",
		Run: func(cfg Config) error {
			r := xrand.New(cfg.Seed + 31)
			t := table.New("E7 propagation times on cycles",
				"n", "k", "threshold(L14)", "T_k(mean)", "frac-below", "T_k/(k*m)")
			nTrials := trials(cfg, 12)
			for _, n := range ladder(cfg, []int{64, 128, 256}) {
				g := graph.Cycle(n)
				ks := []int{n / 8, n / 4, n / 2}
				below := make([]int, len(ks))
				sums := make([]float64, len(ks))
				for trial := 0; trial < nTrials; trial++ {
					first, _ := epidemic.PropagationFrom(g, 0, r)
					for i, k := range ks {
						v := float64(first[k])
						sums[i] += v
						if v < bounds.PropagationLower(k, g.M(), 2) {
							below[i]++
						}
					}
				}
				for i, k := range ks {
					mean := sums[i] / float64(nTrials)
					t.AddRow(n, k, bounds.PropagationLower(k, g.M(), 2), mean,
						fmt.Sprintf("%d/%d", below[i], nTrials),
						mean/(float64(k)*float64(g.M())))
				}
			}
			cfg.render(t)
			// Theorem 15 shape on bounded-degree graphs: B(cycle)/(n*D)
			// should be flat; B(torus k x k)/(n*k) flat.
			t2 := table.New("E7b bounded-degree broadcast shape", "graph", "n", "D",
				"B(measured)", "B/(n*max(D,logn))")
			for _, n := range ladder(cfg, []int{64, 128, 256}) {
				for _, g := range []graph.Graph{graph.Cycle(n), torusOfSize(n)} {
					b := epidemic.EstimateB(g, r, epidemic.Options{Sources: 2, Trials: trials(cfg, 6)})
					d := graph.Diameter(g)
					norm := float64(g.N()) * math.Max(float64(d), math.Log(float64(g.N())))
					t2.AddRow(g.Name(), g.N(), d, b, b/norm)
				}
			}
			cfg.render(t2)
			return nil
		},
	})

	register(Experiment{
		ID:    "E8",
		Name:  "Streak clock (Section 5.1, Lemmas 26-29)",
		Claim: "E[K]=2^{h+1}-2; E[X(d)]=E[K]m/d; R, S concentrate; Geom(2^-h) <= K <= Geom(2^-h-1)+h",
		Run: func(cfg Config) error {
			r := xrand.New(cfg.Seed + 37)
			nTrials := trials(cfg, 40000)
			t := table.New("E8 E[K] vs h", "h", "E[K] formula", "measured", "rel-err")
			for _, h := range []int{1, 2, 3, 4, 6, 8} {
				want := streak.ExpectedK(h)
				var sum int64
				for i := 0; i < nTrials; i++ {
					sum += streak.SampleK(h, r)
				}
				mean := float64(sum) / float64(nTrials)
				t.AddRow(h, want, mean, math.Abs(mean-want)/want)
			}
			cfg.render(t)

			t2 := table.New("E8b E[X(d)] vs degree (h=3, m=512)",
				"d", "E[X] formula", "measured", "rel-err")
			xTrials := trials(cfg, 8000)
			for _, d := range []int{1, 4, 16, 64, 512} {
				want := streak.ExpectedX(3, d, 512)
				var sum int64
				for i := 0; i < xTrials; i++ {
					sum += streak.SampleX(3, d, 512, r)
				}
				mean := float64(sum) / float64(xTrials)
				t2.AddRow(d, want, mean, math.Abs(mean-want)/want)
			}
			cfg.render(t2)

			// Lemma 28/29 concentration: quantiles of R and S for ell = ln n.
			t3 := table.New("E8c concentration of R (h=4, ell=12)",
				"quantile", "R/E[R]")
			rs := make([]float64, trials(cfg, 4000))
			eR := float64(12) * streak.ExpectedK(4)
			for i := range rs {
				rs[i] = float64(streak.SampleR(4, 12, r)) / eR
			}
			for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
				t3.AddRow(q, stats.Quantile(rs, q))
			}
			cfg.render(t3)
			return nil
		},
	})

	register(Experiment{
		ID:    "E9",
		Name:  "Random walks: hitting and meeting times (Lemmas 17-19, Prop 20)",
		Claim: "H_P(G) <= 27n*H(G); M(u,v) <= 2H_P(G); H(G(n,p)) = O(n)",
		Run: func(cfg Config) error {
			r := xrand.New(cfg.Seed + 41)
			t := table.New("E9 population vs classic walks (exact, worst-case)",
				"graph", "n", "H(G)", "H_P(G)", "H_P/(27nH)", "M(G)", "M/(2*H_P)")
			mk := func(g graph.Graph) {
				h := walk.ClassicWorstHittingExact(g)
				hp := walk.PopulationWorstHittingExact(g)
				meet := walk.MeetingExact(g)
				worstM := 0.0
				for u := 0; u < g.N(); u++ {
					for v := u + 1; v < g.N(); v++ {
						if meet[u][v] > worstM {
							worstM = meet[u][v]
						}
					}
				}
				t.AddRow(g.Name(), g.N(), h, hp,
					hp/(27*float64(g.N())*h), worstM, worstM/(2*hp))
			}
			mk(graph.NewClique(32))
			mk(graph.Cycle(32))
			mk(graph.Star(32))
			mk(graph.Torus2D(6, 6))
			mk(graph.Lollipop(12, 12))
			cfg.render(t)

			// Proposition 20: H(G(n,p)) = O(n).
			t2 := table.New("E9b dense random hitting times", "n", "p", "H(G)", "H/n")
			for _, n := range ladder(cfg, []int{48, 64, 96}) {
				g, err := graph.Gnp(n, 0.5, r)
				if err != nil {
					return err
				}
				h := walk.ClassicWorstHittingExact(g)
				t2.AddRow(n, 0.5, h, h/float64(n))
			}
			cfg.render(t2)
			return nil
		},
	})
}

// torusOfSize returns a k x k torus with k^2 as close to n as possible.
func torusOfSize(n int) graph.Graph {
	k := int(math.Round(math.Sqrt(float64(n))))
	if k < 3 {
		k = 3
	}
	return graph.Torus2D(k, k)
}
