package exp

// E20 injects communication failures: each sampled interaction is dropped
// with probability q. Stable leader election is oblivious to the
// schedule, so all three protocols must still stabilize, slowed by a
// factor ≈ 1/(1−q) (a dropped step is a wasted scheduler tick).

import (
	"fmt"
	"runtime"
	"sync"

	"popgraph/internal/epidemic"
	"popgraph/internal/graph"
	"popgraph/internal/protocols/beauquier"
	"popgraph/internal/protocols/fastelect"
	"popgraph/internal/protocols/idelect"
	"popgraph/internal/sim"
	"popgraph/internal/stats"
	"popgraph/internal/table"
	"popgraph/internal/xrand"
)

// measureWithDrops mirrors MeasureSteps with failure injection.
func measureWithDrops(g graph.Graph, factory func() sim.Protocol, seed uint64,
	nTrials int, drop float64) stats.Summary {
	steps := make([]float64, nTrials)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < nTrials; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			r := xrand.New(seed + 0x9e3779b97f4a7c15*uint64(i+1))
			res := sim.Run(g, factory(), r, sim.Options{DropRate: drop})
			if res.Stabilized {
				steps[i] = float64(res.Steps)
			}
		}(i)
	}
	wg.Wait()
	kept := steps[:0]
	for _, s := range steps {
		if s > 0 {
			kept = append(kept, s)
		}
	}
	return stats.Summarize(kept)
}

func init() {
	register(Experiment{
		ID:    "E20",
		Name:  "Robustness: leader election under dropped interactions",
		Claim: "stability is schedule-oblivious: with drop rate q all protocols stabilize, slowed by ~1/(1-q)",
		Run: func(cfg Config) error {
			r := xrand.New(cfg.Seed + 101)
			g := graph.Torus2D(8, 8)
			b := epidemic.EstimateB(g, r, epidemic.Options{Sources: 2, Trials: 6})
			params := fastelect.TunedParams(g, b)
			factories := []struct {
				name string
				mk   func() sim.Protocol
			}{
				{"six-state", func() sim.Protocol { return beauquier.New() }},
				{"identifier", func() sim.Protocol { return idelect.New() }},
				{"fast", func() sim.Protocol { return fastelect.New(params) }},
			}
			t := table.New(fmt.Sprintf("E20 drop-rate robustness on %s", g.Name()),
				"protocol", "q", "steps(mean)", "slowdown", "1/(1-q)")
			nTrials := trials(cfg, 8)
			for _, f := range factories {
				base := 0.0
				for _, q := range []float64{0, 0.25, 0.5, 0.75} {
					s := measureWithDrops(g, f.mk, cfg.Seed+103, nTrials, q)
					if q == 0 {
						base = s.Mean
					}
					t.AddRow(f.name, q, s.Mean, s.Mean/base, 1/(1-q))
				}
			}
			cfg.render(t)
			return nil
		},
	})
}
