package exp

// E20 injects communication failures: each sampled interaction is dropped
// with probability q. Stable leader election is oblivious to the
// schedule, so all three protocols must still stabilize, slowed by a
// factor ≈ 1/(1−q) (a dropped step is a wasted scheduler tick).

import (
	"fmt"

	"popgraph/internal/epidemic"
	"popgraph/internal/graph"
	"popgraph/internal/protocols/beauquier"
	"popgraph/internal/protocols/fastelect"
	"popgraph/internal/protocols/idelect"
	"popgraph/internal/sim"
	"popgraph/internal/table"
	"popgraph/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E20",
		Name:  "Robustness: leader election under dropped interactions",
		Claim: "stability is schedule-oblivious: with drop rate q all protocols stabilize, slowed by ~1/(1-q)",
		Run: func(cfg Config) error {
			r := xrand.New(cfg.Seed + 101)
			g := graph.Torus2D(8, 8)
			b := epidemic.EstimateB(g, r, epidemic.Options{Sources: 2, Trials: 6})
			params := fastelect.TunedParams(g, b)
			factories := []struct {
				name string
				mk   func() sim.Protocol
			}{
				{"six-state", func() sim.Protocol { return beauquier.New() }},
				{"identifier", func() sim.Protocol { return idelect.New() }},
				{"fast", func() sim.Protocol { return fastelect.New(params) }},
			}
			t := table.New(fmt.Sprintf("E20 drop-rate robustness on %s", g.Name()),
				"protocol", "q", "steps(mean)", "slowdown", "1/(1-q)")
			nTrials := trials(cfg, 8)
			for _, f := range factories {
				base := 0.0
				for _, q := range []float64{0, 0.25, 0.5, 0.75} {
					m := MeasureOpts(g, f.mk, cfg.Seed+103, nTrials, sim.Options{DropRate: q})
					if q == 0 {
						base = m.Steps.Mean
					}
					t.AddRow(f.name, q, m.Steps.Mean, m.Steps.Mean/base, 1/(1-q))
				}
			}
			cfg.render(t)
			return nil
		},
	})
}
