package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunQuickGrid(t *testing.T) {
	cfgs := []Config{
		{GraphSpec: "clique:64", Protocol: "six-state", Steps: 1 << 12, Trials: 1},
		{GraphSpec: "cycle:64", Protocol: "six-state", Steps: 1 << 12, Trials: 1},
	}
	var lines []string
	rep, err := Run(cfgs, 42, func(format string, args ...interface{}) {
		lines = append(lines, format)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || rep.GoVersion == "" || rep.Seed != 42 {
		t.Fatalf("report header %+v", rep)
	}
	if len(rep.Results) != 2 || len(lines) != 2 {
		t.Fatalf("got %d results, %d log lines", len(rep.Results), len(lines))
	}
	for _, m := range rep.Results {
		if m.N != 64 || m.Protocol == "" {
			t.Fatalf("measurement %+v", m)
		}
		if m.Scheduler != "uniform" {
			t.Fatalf("empty config scheduler resolved to %q, want uniform", m.Scheduler)
		}
		for _, e := range []EngineStats{m.Specialized, m.Generic} {
			if e.Steps <= 0 || e.NsPerStep <= 0 || e.StepsPerSec <= 0 {
				t.Fatalf("degenerate engine stats %+v", e)
			}
		}
		// Both engines execute the identical interaction sequence.
		if m.Specialized.Steps != m.Generic.Steps {
			t.Fatalf("engines timed different work: %d vs %d steps",
				m.Specialized.Steps, m.Generic.Steps)
		}
		if m.Speedup <= 0 {
			t.Fatalf("speedup %v", m.Speedup)
		}
	}
	if rep.MaxSpeedup < rep.Results[0].Speedup && rep.MaxSpeedup < rep.Results[1].Speedup {
		t.Fatalf("max speedup %v below cells %v, %v",
			rep.MaxSpeedup, rep.Results[0].Speedup, rep.Results[1].Speedup)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{GraphSpec: "clique:0", Protocol: "six-state", Steps: 100, Trials: 1},
		{GraphSpec: "clique:16", Protocol: "bogus", Steps: 100, Trials: 1},
		{GraphSpec: "clique:16", Protocol: "six-state", Steps: 0, Trials: 1},
		{GraphSpec: "clique:16", Protocol: "six-state", Steps: 100, Trials: 0},
		{GraphSpec: "clique:16", Scheduler: "bogus", Protocol: "six-state", Steps: 100, Trials: 1},
		{GraphSpec: "clique:16", Scheduler: "churn:0:0", Protocol: "six-state", Steps: 100, Trials: 1},
	} {
		if _, err := Run([]Config{cfg}, 1, nil); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestRunSchedulerCells — scheduler and drop cells compile to their
// specialized kernels (churn stays generic), both timings cover the
// identical step count, and every cell records the engine its plan
// picked.
func TestRunSchedulerCells(t *testing.T) {
	cfgs := []Config{
		{GraphSpec: "torus:8x8", Scheduler: "weighted:exp", Protocol: "six-state", Steps: 1 << 12, Trials: 1},
		{GraphSpec: "torus:8x8", Scheduler: "node-clock", Protocol: "six-state", Steps: 1 << 12, Trials: 1},
		{GraphSpec: "torus:8x8", Scheduler: "churn:16:4", Protocol: "six-state", Steps: 1 << 12, Trials: 1},
		{GraphSpec: "torus:8x8", Protocol: "six-state", Drop: 0.1, Steps: 1 << 12, Trials: 1},
	}
	rep, err := Run(cfgs, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"weighted:exp", "node-clock", "churn:16:4", "uniform"}
	wantEngines := []string{"weighted", "node-clock", "generic", "dense-uniform"}
	for i, m := range rep.Results {
		if m.Scheduler != wantNames[i] {
			t.Fatalf("cell %d scheduler %q, want %q", i, m.Scheduler, wantNames[i])
		}
		if m.Engine != wantEngines[i] {
			t.Fatalf("cell %d engine %q, want %q", i, m.Engine, wantEngines[i])
		}
		if m.Specialized.Steps != m.Generic.Steps {
			t.Fatalf("cell %d timed different work: %d vs %d steps",
				i, m.Specialized.Steps, m.Generic.Steps)
		}
		if m.Specialized.NsPerStep <= 0 || m.Generic.NsPerStep <= 0 {
			t.Fatalf("cell %d degenerate stats %+v", i, m)
		}
	}
	// The generic-engine cell is timed once: its two stat blocks must be
	// copies, and its speedup exactly 1.
	churn := rep.Results[2]
	if churn.Specialized != churn.Generic || churn.Speedup != 1 {
		t.Fatalf("generic cell timed twice: %+v", churn)
	}
	// The drop cell's key must be distinct from the same cell at drop 0,
	// so baselines gate the two fast paths independently.
	if rep.Results[3].key() == (Measurement{GraphSpec: "torus:8x8", Scheduler: "uniform", Protocol: rep.Results[3].Protocol}).key() {
		t.Fatal("drop cell key collides with drop-0 cell")
	}
}

// TestRunProtocolEngineCells — the protocol-compilation axis. Tabular
// protocols record protocol_engine "table" with a real table-vs-
// interface timing over identical work; non-tabular protocols record
// "step" with the interface stats copied and table speedup exactly 1.
func TestRunProtocolEngineCells(t *testing.T) {
	cfgs := []Config{
		{GraphSpec: "torus:8x8", Protocol: "six-state", Steps: 1 << 12, Trials: 1},
		{GraphSpec: "torus:8x8", Protocol: "majority:0.75", Steps: 1 << 12, Trials: 1},
		{GraphSpec: "torus:8x8", Protocol: "identifier", Steps: 1 << 12, Trials: 1},
		{GraphSpec: "torus:8x8", Scheduler: "churn:16:4", Protocol: "six-state", Steps: 1 << 12, Trials: 1},
	}
	rep, err := Run(cfgs, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantProtoEngines := []string{"table", "table", "step", "step"}
	for i, m := range rep.Results {
		if m.ProtocolEngine != wantProtoEngines[i] {
			t.Fatalf("cell %d protocol engine %q, want %q", i, m.ProtocolEngine, wantProtoEngines[i])
		}
		if m.Specialized.Steps != m.Interface.Steps || m.Interface.Steps != m.Generic.Steps {
			t.Fatalf("cell %d timed different work: %d / %d / %d steps",
				i, m.Specialized.Steps, m.Interface.Steps, m.Generic.Steps)
		}
		if m.TableSpeedup <= 0 {
			t.Fatalf("cell %d table speedup %v", i, m.TableSpeedup)
		}
	}
	// "step" cells have no separate interface variant: stats copied,
	// table speedup exactly 1. The churn cell additionally copies the
	// generic stats (one loop, timed once).
	id := rep.Results[2]
	if id.Interface != id.Specialized || id.TableSpeedup != 1 {
		t.Fatalf("step cell timed a phantom interface variant: %+v", id)
	}
	churn := rep.Results[3]
	if churn.Interface != churn.Specialized || churn.Generic != churn.Specialized ||
		churn.Speedup != 1 || churn.TableSpeedup != 1 {
		t.Fatalf("generic step cell timed twice: %+v", churn)
	}
	if rep.MaxTableSpeedup < rep.Results[0].TableSpeedup {
		t.Fatalf("max table speedup %v below cell %v", rep.MaxTableSpeedup, rep.Results[0].TableSpeedup)
	}
}

// TestDeltaTable — the per-cell -compare rendering classifies matched,
// regressed, new and removed cells and the markdown writer names them.
func TestDeltaTable(t *testing.T) {
	cell := func(graph, proto string, ns float64) Measurement {
		return Measurement{
			GraphSpec: graph, Scheduler: "uniform", Protocol: proto,
			Engine: "dense-uniform", ProtocolEngine: "table",
			Specialized: EngineStats{Steps: 1, NsPerStep: ns, BestNsPerStep: ns},
		}
	}
	base := Report{Results: []Measurement{
		cell("torus:8x8", "six-state", 10),
		cell("cycle:64", "six-state", 10),
		cell("lollipop:8:8", "six-state", 10),
	}}
	cur := Report{Results: []Measurement{
		cell("torus:8x8", "six-state", 11), // +10%: ok
		cell("cycle:64", "six-state", 20),  // +100%: regressed
		cell("clique:64", "six-state", 5),  // new
	}}
	rows := DeltaTable(cur, base, 0.30)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4: %+v", len(rows), rows)
	}
	wantStatus := map[string]string{
		"torus:8x8":    "ok",
		"cycle:64":     "regressed",
		"clique:64":    "new",
		"lollipop:8:8": "removed",
	}
	for _, r := range rows {
		if r.Status != wantStatus[r.GraphSpec] {
			t.Fatalf("%s: status %q, want %q", r.GraphSpec, r.Status, wantStatus[r.GraphSpec])
		}
	}
	if d := rows[0].Delta; d < 0.09 || d > 0.11 {
		t.Fatalf("torus delta %v, want ~0.10", d)
	}
	var buf bytes.Buffer
	if err := WriteDeltaMarkdown(&buf, rows, 0.30); err != nil {
		t.Fatal(err)
	}
	md := buf.String()
	for _, want := range []string{"**regressed**", "| torus:8x8 |", "removed", "new", "+100.0%"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestCompare(t *testing.T) {
	cell := func(graph, sched, proto string, ns float64) Measurement {
		return Measurement{
			GraphSpec: graph, Scheduler: sched, Protocol: proto,
			Specialized: EngineStats{Steps: 1, NsPerStep: ns, StepsPerSec: 1e9 / ns},
		}
	}
	base := Report{Schema: Schema, Results: []Measurement{
		cell("clique:64", "uniform", "six-state", 10),
		cell("torus:8x8", "weighted:exp", "six-state", 20),
		cell("cycle:64", "uniform", "six-state", 10),
	}}
	cur := Report{Schema: Schema, Results: []Measurement{
		cell("clique:64", "uniform", "six-state", 12.9),    // +29%: inside tolerance
		cell("torus:8x8", "weighted:exp", "six-state", 30), // +50%: regression
		cell("ba:64:2", "uniform", "six-state", 99),        // no baseline: skipped
	}}
	msgs := Compare(cur, base, 0.30)
	if len(msgs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(msgs), msgs)
	}
	if !strings.Contains(msgs[0], "torus:8x8") || !strings.Contains(msgs[0], "weighted:exp") {
		t.Fatalf("regression message %q does not name the cell", msgs[0])
	}
	if msgs := Compare(cur, base, 10); len(msgs) != 0 {
		t.Fatalf("huge tolerance still regressed: %v", msgs)
	}
	// A faster current run never regresses, even at zero tolerance:
	// base's cells are all at or below cur's numbers, and base's cycle
	// cell has no counterpart in cur, so it is skipped.
	if msgs := Compare(base, cur, 0); len(msgs) != 0 {
		t.Fatalf("reverse compare flagged improvements: %v", msgs)
	}
	// When BestNsPerStep is present it is the gate statistic: a noisy
	// mean does not regress as long as the best trial holds the line.
	noisy := cell("clique:64", "uniform", "six-state", 50)
	noisy.Specialized.BestNsPerStep = 10
	if msgs := Compare(Report{Results: []Measurement{noisy}}, base, 0.30); len(msgs) != 0 {
		t.Fatalf("best-of-trials gate used the mean: %v", msgs)
	}
	// Zero overlap (grid renamed, baseline stale) must not pass silently.
	renamed := Report{Results: []Measurement{cell("torus:32", "uniform", "six-state", 1)}}
	msgs = Compare(renamed, base, 0.30)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "no cell") {
		t.Fatalf("zero-overlap compare: %v", msgs)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := Run([]Config{
		{GraphSpec: "clique:32", Protocol: "six-state", Steps: 1 << 10, Trials: 1},
	}, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"schema": "popgraph-bench/v6"`, `"steps_per_sec"`, `"ns_per_step"`,
		`"speedup"`, `"max_speedup"`, `"clique-32"`, `"scheduler": "uniform"`,
		`"engine": "clique-uniform"`, `"protocol_engine": "table"`,
		`"interface"`, `"table_speedup"`, `"max_table_speedup"`,
		`"graph_source": "generator"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || back.Results[0].Graph != "clique-32" || back.Seed != 7 {
		t.Fatalf("round trip %+v", back)
	}
	if _, err := ReadJSON(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

func TestDefaultGrid(t *testing.T) {
	full, quick := DefaultGrid(false), DefaultGrid(true)
	if len(full) != len(quick) || len(full) == 0 {
		t.Fatalf("grid sizes %d, %d", len(full), len(quick))
	}
	// Per cell the quick grid may only shrink the step budget; cells
	// where ns/step depends on trial length (the replicate-heavy short
	// trials) keep it unchanged so the -compare statistic stays
	// comparable to the full-grid baseline. In aggregate the quick grid
	// must still be strictly smaller.
	sixState, dropCells, majorityCells, shrunk := 0, 0, 0, 0
	for i := range full {
		if full[i].Steps < quick[i].Steps {
			t.Fatalf("quick grid larger: %+v vs %+v", full[i], quick[i])
		}
		if quick[i].Steps < full[i].Steps {
			shrunk++
		}
		if full[i].Protocol == "six-state" {
			sixState++
		}
		if full[i].Drop > 0 {
			dropCells++
		}
		if strings.HasPrefix(full[i].Protocol, "majority:") {
			majorityCells++
		}
	}
	if sixState < 2 {
		t.Fatalf("default grid has %d six-state cells, want >= 2", sixState)
	}
	if dropCells < 2 {
		t.Fatalf("default grid has %d drop>0 cells, want >= 2 (the in-kernel drop fast path must stay gated)", dropCells)
	}
	if majorityCells < 1 {
		t.Fatal("default grid lost its majority cell; the second transition table must stay gated")
	}
	if shrunk == 0 {
		t.Fatal("quick grid shrinks no cell; it would be as slow as the full grid")
	}
	for i := range full {
		if full[i].Batch != DefaultBatch || quick[i].Batch != DefaultBatch {
			t.Fatalf("cell %d batch width %d/%d, want %d", i, full[i].Batch, quick[i].Batch, DefaultBatch)
		}
	}
}

// TestRunBatchAxis — cells whose plan supports lockstep batching carry
// a batched timing and a batched-over-solo ratio; plans the batch
// compiler rejects (node-clock, non-tabular protocols) record the
// "solo" engine with no batched stats, and Batch <= 1 disables the
// axis entirely.
func TestRunBatchAxis(t *testing.T) {
	cfgs := []Config{
		{GraphSpec: "clique:64", Protocol: "six-state", Steps: 1 << 12, Trials: 2, Batch: 4},
		{GraphSpec: "torus:8x8", Scheduler: "node-clock", Protocol: "six-state", Steps: 1 << 12, Trials: 2, Batch: 4},
		{GraphSpec: "clique:64", Protocol: "identifier", Steps: 1 << 12, Trials: 2, Batch: 4},
		{GraphSpec: "clique:64", Protocol: "six-state", Steps: 1 << 12, Trials: 2, Batch: 1},
	}
	rep, err := Run(cfgs, 13, nil)
	if err != nil {
		t.Fatal(err)
	}
	lockstep := rep.Results[0]
	if lockstep.BatchEngine != "lockstep" || lockstep.Batch != 4 || lockstep.Batched == nil {
		t.Fatalf("batchable cell missing batched stats: %+v", lockstep)
	}
	if lockstep.Batched.Steps <= 0 || lockstep.Batched.NsPerStep <= 0 || lockstep.Batched.BestNsPerStep <= 0 {
		t.Fatalf("degenerate batched stats %+v", *lockstep.Batched)
	}
	if lockstep.BatchSpeedup <= 0 {
		t.Fatalf("batch speedup %v", lockstep.BatchSpeedup)
	}
	if rep.MaxBatchSpeedup < lockstep.BatchSpeedup {
		t.Fatalf("max batch speedup %v below cell %v", rep.MaxBatchSpeedup, lockstep.BatchSpeedup)
	}
	for i, m := range rep.Results[1:3] {
		if m.BatchEngine != "solo" || m.Batched != nil || m.BatchSpeedup != 0 || m.Batch != 0 {
			t.Fatalf("unbatchable cell %d grew batched stats: %+v", i+1, m)
		}
	}
	off := rep.Results[3]
	if off.Batched != nil || off.BatchSpeedup != 0 || off.Batch != 0 {
		t.Fatalf("batch<=1 cell still timed the batch axis: %+v", off)
	}
}

// TestCompareBatchedGate — the batched best-trial ns/step gates
// independently of the solo statistic, and only when both sides were
// batched at the same width.
func TestCompareBatchedGate(t *testing.T) {
	cell := func(soloNs, batchNs float64, width int) Measurement {
		m := Measurement{
			GraphSpec: "clique:64", Scheduler: "uniform", Protocol: "six-state",
			Specialized: EngineStats{Steps: 1, NsPerStep: soloNs, BestNsPerStep: soloNs},
		}
		if batchNs > 0 {
			m.Batch = width
			m.Batched = &EngineStats{Steps: 1, NsPerStep: batchNs, BestNsPerStep: batchNs}
		}
		return m
	}
	base := Report{Results: []Measurement{cell(10, 5, 8)}}

	// Solo holds the line but batched regresses 2x: one distinct message.
	msgs := Compare(Report{Results: []Measurement{cell(10, 10, 8)}}, base, 0.30)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "batched(8)") {
		t.Fatalf("batched regression not gated: %v", msgs)
	}
	// Both inside tolerance: clean.
	if msgs := Compare(Report{Results: []Measurement{cell(11, 6, 8)}}, base, 0.30); len(msgs) != 0 {
		t.Fatalf("healthy batched cell regressed: %v", msgs)
	}
	// Width changed: the batched numbers are not commensurable, skip.
	if msgs := Compare(Report{Results: []Measurement{cell(10, 50, 16)}}, base, 0.30); len(msgs) != 0 {
		t.Fatalf("cross-width batched gate fired: %v", msgs)
	}
	// Baseline predates the batch axis: solo-only gating.
	old := Report{Results: []Measurement{cell(10, 0, 0)}}
	if msgs := Compare(Report{Results: []Measurement{cell(10, 99, 8)}}, old, 0.30); len(msgs) != 0 {
		t.Fatalf("gate fired against a batchless baseline: %v", msgs)
	}
	// Both regress: two messages, solo and batched named separately.
	msgs = Compare(Report{Results: []Measurement{cell(20, 10, 8)}}, base, 0.30)
	if len(msgs) != 2 {
		t.Fatalf("got %d messages, want 2 (solo + batched): %v", len(msgs), msgs)
	}
}
