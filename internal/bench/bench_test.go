package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunQuickGrid(t *testing.T) {
	cfgs := []Config{
		{GraphSpec: "clique:64", Protocol: "six-state", Steps: 1 << 12, Trials: 1},
		{GraphSpec: "cycle:64", Protocol: "six-state", Steps: 1 << 12, Trials: 1},
	}
	var lines []string
	rep, err := Run(cfgs, 42, func(format string, args ...interface{}) {
		lines = append(lines, format)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || rep.GoVersion == "" || rep.Seed != 42 {
		t.Fatalf("report header %+v", rep)
	}
	if len(rep.Results) != 2 || len(lines) != 2 {
		t.Fatalf("got %d results, %d log lines", len(rep.Results), len(lines))
	}
	for _, m := range rep.Results {
		if m.N != 64 || m.Protocol == "" {
			t.Fatalf("measurement %+v", m)
		}
		for _, e := range []EngineStats{m.Specialized, m.Generic} {
			if e.Steps <= 0 || e.NsPerStep <= 0 || e.StepsPerSec <= 0 {
				t.Fatalf("degenerate engine stats %+v", e)
			}
		}
		// Both engines execute the identical interaction sequence.
		if m.Specialized.Steps != m.Generic.Steps {
			t.Fatalf("engines timed different work: %d vs %d steps",
				m.Specialized.Steps, m.Generic.Steps)
		}
		if m.Speedup <= 0 {
			t.Fatalf("speedup %v", m.Speedup)
		}
	}
	if rep.MaxSpeedup < rep.Results[0].Speedup && rep.MaxSpeedup < rep.Results[1].Speedup {
		t.Fatalf("max speedup %v below cells %v, %v",
			rep.MaxSpeedup, rep.Results[0].Speedup, rep.Results[1].Speedup)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{GraphSpec: "clique:0", Protocol: "six-state", Steps: 100, Trials: 1},
		{GraphSpec: "clique:16", Protocol: "bogus", Steps: 100, Trials: 1},
		{GraphSpec: "clique:16", Protocol: "six-state", Steps: 0, Trials: 1},
		{GraphSpec: "clique:16", Protocol: "six-state", Steps: 100, Trials: 0},
	} {
		if _, err := Run([]Config{cfg}, 1, nil); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := Run([]Config{
		{GraphSpec: "clique:32", Protocol: "six-state", Steps: 1 << 10, Trials: 1},
	}, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"schema": "popgraph-bench/v1"`, `"steps_per_sec"`, `"ns_per_step"`,
		`"speedup"`, `"max_speedup"`, `"clique-32"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || back.Results[0].Graph != "clique-32" || back.Seed != 7 {
		t.Fatalf("round trip %+v", back)
	}
	if _, err := ReadJSON(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

func TestDefaultGrid(t *testing.T) {
	full, quick := DefaultGrid(false), DefaultGrid(true)
	if len(full) != len(quick) || len(full) == 0 {
		t.Fatalf("grid sizes %d, %d", len(full), len(quick))
	}
	sixState := 0
	for i := range full {
		if full[i].Steps <= quick[i].Steps {
			t.Fatalf("quick grid not smaller: %+v vs %+v", full[i], quick[i])
		}
		if full[i].Protocol == "six-state" {
			sixState++
		}
	}
	if sixState < 2 {
		t.Fatalf("default grid has %d six-state cells, want >= 2", sixState)
	}
}
