// Package bench measures scheduler-engine throughput on a fixed
// graph × scheduler × protocol grid and serializes the results as the
// repo-root BENCH_sim.json, so the simulator's performance trajectory
// is tracked PR-over-PR.
//
// Each grid cell is timed twice through the batch runner
// (internal/runner, one worker, so wall-clock is per-trial time): once
// on the specialized kernel the cell's execution plan compiles to
// (sim.Compile — dense/clique uniform, weighted alias-table,
// node-clock, with drop rates folded into the fast loops), and once on
// the generic Source-driven reference kernel, which Options.Reference
// forces. Both consume the identical random stream (see internal/sim),
// so the ratio is a pure engine speedup, now measured per scheduler and
// per drop rate — the CI gate guards every specialized loop, not just
// the uniform ones. Cells whose plan compiles to the generic kernel
// anyway (churn, whose per-run edge state rules out monomorphization)
// are timed once and recorded under both labels with speedup exactly 1.
//
// Compare diffs a fresh report against a committed baseline and reports
// cells whose specialized ns/step regressed beyond a tolerance; CI runs
// it as a smoke gate. ns/step is machine-dependent, so gate thresholds
// must be generous (CI uses 30%) and baselines should be regenerated on
// the machine whose trajectory is being tracked.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"popgraph"
	"popgraph/internal/runner"
	"popgraph/internal/sim"
	"popgraph/internal/telemetry"
)

// Schema identifies the BENCH_sim.json layout; bump on breaking changes.
// v2 added the scheduler dimension; v3 added the drop dimension and the
// per-cell engine name, and made every non-generic cell a real
// fast-vs-reference comparison; v4 added the protocol-compilation axis:
// the per-cell protocol engine name ("table" for fused transition-table
// kernels, "step" for interface dispatch), the interface-dispatch
// timing and the table-vs-interface speedup; v5 added the batch axis:
// per-cell lockstep batched timing (replicate trials executed as one
// structure-of-arrays unit), the batched-vs-solo speedup and the
// report-level max; v6 added the snapshot axis: the per-cell
// graph_source ("generator" or "snapshot" for file:/mmap: specs) and
// the report-level startup section timing snapshot build vs load on
// large graphs (RunStartup).
const Schema = "popgraph-bench/v6"

// Config is one grid cell: a graph, scheduler and protocol spec with
// the trial shape. Steps caps every trial, so cells are timed over
// comparable work whether or not the protocol stabilizes first.
type Config struct {
	GraphSpec string `json:"graph_spec"`
	// Scheduler is a ParseScheduler spec; empty means uniform.
	Scheduler string `json:"scheduler,omitempty"`
	Protocol  string `json:"protocol"`
	// Drop is the injected interaction drop rate in [0, 1); drop
	// decisions execute inside the specialized kernels, so drop>0 cells
	// measure a distinct fast path.
	Drop   float64 `json:"drop,omitempty"`
	Steps  int64   `json:"steps"`
	Trials int     `json:"trials"`
	// Batch is the lockstep batch width: when > 1 and the cell's plan has
	// a lockstep kernel, the cell is additionally timed running Batch
	// replicate trials as one structure-of-arrays unit per repetition.
	// 0 or 1 skips the batch axis for the cell.
	Batch int `json:"batch,omitempty"`
}

// EngineStats is the timing of one engine on one cell.
type EngineStats struct {
	// Steps is the total number of interactions timed across all trials.
	Steps int64 `json:"steps"`
	// NsPerStep and StepsPerSec are the headline throughput numbers,
	// aggregated over all trials.
	NsPerStep   float64 `json:"ns_per_step"`
	StepsPerSec float64 `json:"steps_per_sec"`
	// BestNsPerStep is the fastest single trial. Minimum-of-trials
	// filters out scheduling interference and cache-warmup noise, so the
	// regression gate (Compare) uses it rather than the mean.
	BestNsPerStep float64 `json:"best_ns_per_step"`
}

// Measurement is the result of one grid cell.
type Measurement struct {
	Graph     string `json:"graph"`
	GraphSpec string `json:"graph_spec"`
	// Scheduler is the scheduler's display name ("uniform" when the
	// config left it empty).
	Scheduler string `json:"scheduler"`
	Protocol  string `json:"protocol"`
	// Drop is the cell's injected drop rate (omitted when 0).
	Drop float64 `json:"drop,omitempty"`
	// GraphSource records where the cell's graph came from: "generator"
	// for in-process construction, "snapshot" for file:/mmap: specs. The
	// two are byte-identical to run (the determinism contract), so the
	// field only labels provenance; it is deliberately not part of key(),
	// keeping a snapshot-sourced grid comparable against a generator
	// baseline.
	GraphSource string `json:"graph_source"`
	// Engine is the scheduler kernel the cell's execution plan compiled
	// to: "dense-uniform", "clique-uniform", "weighted", "node-clock" or
	// "generic" (sim.ExecPlan.Engine).
	Engine string `json:"engine"`
	// ProtocolEngine is the protocol dispatch of the cell's fast path:
	// "table" when the protocol fuses into the kernel's transition-table
	// variant, "step" for Protocol.Step interface dispatch
	// (sim.ExecPlan.ProtocolEngine).
	ProtocolEngine string `json:"protocol_engine"`
	N              int    `json:"n"`
	M              int    `json:"m"`
	Trials         int    `json:"trials"`
	// Specialized times the full fast path (the fused table kernel on
	// "table" cells); Interface times the same scheduler kernel with
	// table fusion disabled (Options.NoTable) — on "step" cells it is
	// the same loop, timed once and copied; Generic times the
	// Source-driven reference loop that Options.Reference forces (also
	// copied when Engine is "generic").
	Specialized EngineStats `json:"specialized"`
	Interface   EngineStats `json:"interface"`
	Generic     EngineStats `json:"generic"`
	// Speedup is generic ns/step divided by specialized ns/step;
	// exactly 1 on generic-engine cells. TableSpeedup is interface
	// ns/step divided by specialized ns/step — the pure
	// protocol-compilation win; exactly 1 on "step" cells.
	Speedup      float64 `json:"speedup"`
	TableSpeedup float64 `json:"table_speedup"`
	// BatchEngine is the batch execution the cell's plan selects for its
	// protocol: "lockstep" when RunBatch runs on the structure-of-arrays
	// kernel, "solo" when batches fall back to sequential solo runs
	// (sim.ExecPlan.BatchEngine). Batch, Batched and BatchSpeedup are
	// present only on lockstep cells timed with a Config.Batch > 1:
	// Batched times Trials repetitions of a Batch-lane lockstep unit
	// (ns/step over the lanes' summed steps; BestNsPerStep the fastest
	// repetition), and BatchSpeedup is solo specialized ns/step divided
	// by batched ns/step — the pure replicate-throughput win.
	BatchEngine  string       `json:"batch_engine"`
	Batch        int          `json:"batch,omitempty"`
	Batched      *EngineStats `json:"batched,omitempty"`
	BatchSpeedup float64      `json:"batch_speedup,omitempty"`
}

// key identifies a cell for baseline comparison.
func (m Measurement) key() string {
	return fmt.Sprintf("%s|%s|%s|%g", m.GraphSpec, m.Scheduler, m.Protocol, m.Drop)
}

// Report is the machine-readable benchmark output.
type Report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Seed      uint64 `json:"seed"`
	// MaxSpeedup is the best specialized-over-generic ratio in the grid,
	// the single number the perf trajectory tracks; MaxTableSpeedup is
	// the best table-over-interface ratio, tracking the protocol-
	// compilation axis the same way.
	MaxSpeedup      float64 `json:"max_speedup"`
	MaxTableSpeedup float64 `json:"max_table_speedup"`
	// MaxBatchSpeedup is the best batched-over-solo ratio among the cells
	// timed on the batch axis; 0 when the grid timed none.
	MaxBatchSpeedup float64       `json:"max_batch_speedup,omitempty"`
	Results         []Measurement `json:"results"`
	// Startup is the snapshot preprocessing axis: build-once vs load
	// timings on large graphs (RunStartup). Compare ignores it — the
	// cells are matched on Results only — so the startup numbers inform
	// without gating.
	Startup []StartupMeasurement `json:"startup,omitempty"`
}

// DefaultGrid returns the standard grid: the six-state baseline on every
// concrete representation (implicit clique, CSR torus/lollipop/cycle)
// plus one identifier and one fast cell; a scheduler dimension — the
// six-state torus cell repeated under the weighted, node-clock and churn
// schedulers, each now a real fast-vs-reference comparison; a drop
// dimension — the uniform and weighted torus cells repeated at drop 0.1,
// covering the in-kernel drop fast path; and a protocol dimension — the
// four-state majority cell, the second Tabular protocol, so the
// table-vs-interface axis is gated on more than one transition table.
// Every cell carries the default batch width: lockstep-capable cells
// (uniform and weighted plans with table protocols) get a batched
// timing and a batched-vs-solo speedup, the rest record batch_engine
// "solo" and skip the axis. quick shrinks the work for smoke tests.
func DefaultGrid(quick bool) []Config {
	cfgs := defaultGridCells(quick)
	for i := range cfgs {
		cfgs[i].Batch = DefaultBatch
	}
	return cfgs
}

// DefaultBatch is the grid's lockstep batch width: eight lanes saturate
// the dependency-chain overlap the batch kernels exist for while the
// eight SoA state columns of the largest grid graphs stay L1-resident.
const DefaultBatch = 8

func defaultGridCells(quick bool) []Config {
	steps, trials := int64(1<<21), 3
	if quick {
		// Still smoke-fast (seconds), but big enough that ns/step
		// converges to the full grid's — much shorter timed regions are
		// dominated by warmup and timer granularity — and with enough
		// trials that the best-of-trials minimum, which the CI -compare
		// gate against the committed full-grid baseline uses, reliably
		// lands on a quiet scheduler slice even on busy machines.
		steps, trials = 1<<18, 6
	}
	// Replicate-heavy cells: hundreds of short trials on small graphs,
	// the regime the lockstep batch engine exists for. Per-trial
	// dispatch and compile overhead rivals the kernel time there, and
	// one batched unit pays it once per Batch lanes. Distinct graph
	// sizes keep these cells' keys from colliding with the long-trial
	// cells of the same family. The quick grid keeps the full grid's
	// trial length: on short trials ns/step includes the per-trial
	// overhead, so shrinking the trials would shift the statistic and
	// break the -compare gate against the committed full-grid baseline
	// — and at ~1ms of kernel time per engine the cells need no
	// shrinking to stay smoke-fast.
	const repSteps, repTrials = int64(1 << 10), 256
	return []Config{
		{GraphSpec: "clique:1024", Protocol: "six-state", Steps: steps, Trials: trials},
		{GraphSpec: "torus:32x32", Protocol: "six-state", Steps: steps, Trials: trials},
		{GraphSpec: "lollipop:64:64", Protocol: "six-state", Steps: steps, Trials: trials},
		{GraphSpec: "cycle:1024", Protocol: "six-state", Steps: steps, Trials: trials},
		{GraphSpec: "torus:32x32", Protocol: "identifier", Steps: steps, Trials: trials},
		{GraphSpec: "clique:1024", Protocol: "fast", Steps: steps, Trials: trials},
		{GraphSpec: "torus:32x32", Scheduler: "weighted:exp", Protocol: "six-state", Steps: steps, Trials: trials},
		{GraphSpec: "torus:32x32", Scheduler: "node-clock", Protocol: "six-state", Steps: steps, Trials: trials},
		{GraphSpec: "torus:32x32", Scheduler: "churn:64:16", Protocol: "six-state", Steps: steps, Trials: trials},
		{GraphSpec: "torus:32x32", Protocol: "six-state", Drop: 0.1, Steps: steps, Trials: trials},
		{GraphSpec: "torus:32x32", Scheduler: "weighted:exp", Protocol: "six-state", Drop: 0.1, Steps: steps, Trials: trials},
		{GraphSpec: "torus:32x32", Protocol: "majority:0.75", Steps: steps, Trials: trials},
		{GraphSpec: "torus:16x16", Protocol: "six-state", Steps: repSteps, Trials: repTrials},
		{GraphSpec: "hypercube:8", Protocol: "six-state", Steps: repSteps, Trials: repTrials},
	}
}

// Run times every config and assembles the report. logf, if non-nil,
// receives one progress line per cell.
func Run(cfgs []Config, seed uint64, logf func(format string, args ...interface{})) (Report, error) {
	return RunMetered(cfgs, seed, logf, nil)
}

// RunMetered is Run with a flight-recorder meter attached to every
// timed trial (warmups included). Metering accounts at chunk
// granularity on the kernels' control path, so the throughput numbers
// stay within the -compare gate's noise band of an unmetered run; nil
// disables it, making RunMetered exactly Run.
func RunMetered(cfgs []Config, seed uint64, logf func(format string, args ...interface{}),
	meter *telemetry.Counters) (Report, error) {
	rep := Report{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Seed:      seed,
	}
	for i, cfg := range cfgs {
		m, err := measure(cfg, seed, meter)
		if err != nil {
			return Report{}, fmt.Errorf("bench: config %d (%s × %s): %w",
				i, cfg.GraphSpec, cfg.Protocol, err)
		}
		if m.Speedup > rep.MaxSpeedup {
			rep.MaxSpeedup = m.Speedup
		}
		if m.TableSpeedup > rep.MaxTableSpeedup {
			rep.MaxTableSpeedup = m.TableSpeedup
		}
		if m.BatchSpeedup > rep.MaxBatchSpeedup {
			rep.MaxBatchSpeedup = m.BatchSpeedup
		}
		rep.Results = append(rep.Results, m)
		if logf != nil {
			batch := "—"
			if m.Batched != nil {
				batch = fmt.Sprintf("%.2fx", m.BatchSpeedup)
			}
			logf("bench: %-16s × %-12s × %-18s × drop %.2g  [%s/%s]  specialized %6.2f ns/step  interface %6.2f  generic %6.2f  speedup %.2fx  table %.2fx  batch %s",
				m.Graph, m.Scheduler, m.Protocol, m.Drop, m.Engine, m.ProtocolEngine,
				m.Specialized.NsPerStep, m.Interface.NsPerStep, m.Generic.NsPerStep,
				m.Speedup, m.TableSpeedup, batch)
		}
	}
	return rep, nil
}

// measure times one cell on both engines.
func measure(cfg Config, seed uint64, meter *telemetry.Counters) (Measurement, error) {
	if cfg.Steps < 1 || cfg.Trials < 1 {
		return Measurement{}, fmt.Errorf("steps and trials must be >= 1 (got %d, %d)",
			cfg.Steps, cfg.Trials)
	}
	r := popgraph.NewRand(seed)
	g, err := popgraph.ParseGraph(cfg.GraphSpec, r)
	if err != nil {
		return Measurement{}, err
	}
	schedSpec := cfg.Scheduler
	if schedSpec == "" {
		schedSpec = "uniform"
	}
	sched, err := popgraph.ParseScheduler(schedSpec, g, r)
	if err != nil {
		return Measurement{}, err
	}
	factory, err := popgraph.ProtocolFactory(cfg.Protocol, g, r)
	if err != nil {
		return Measurement{}, err
	}
	opts := sim.Options{MaxSteps: cfg.Steps, Scheduler: sched, DropRate: cfg.Drop}
	plan, err := sim.Compile(g, opts)
	if err != nil {
		return Measurement{}, err
	}
	source := "generator"
	if strings.HasPrefix(cfg.GraphSpec, "file:") || strings.HasPrefix(cfg.GraphSpec, "mmap:") {
		source = "snapshot"
	}
	m := Measurement{
		Graph:          g.Name(),
		GraphSpec:      cfg.GraphSpec,
		GraphSource:    source,
		Scheduler:      sched.Name(),
		Protocol:       factory().Name(),
		Drop:           cfg.Drop,
		Engine:         plan.Engine(),
		ProtocolEngine: plan.ProtocolEngine(factory()),
		N:              g.N(),
		M:              g.M(),
		Trials:         cfg.Trials,
	}
	// Time the full fast path (fused table kernel on "table" cells),
	// then the interface-dispatch variant on the same scheduler kernel
	// (Options.NoTable), then the Source-driven reference loop that
	// Options.Reference forces. Paths that coincide with one already
	// timed — "step" cells have no separate interface variant, generic-
	// engine cells (churn) no separate reference loop — are timed once
	// and the stats copied, making the corresponding speedup exactly 1.
	spec, err := timeEngine(g, factory, seed, cfg, opts, meter)
	if err != nil {
		return Measurement{}, err
	}
	iface := spec
	if m.ProtocolEngine == "table" {
		ifaceOpts := opts
		ifaceOpts.NoTable = true
		iface, err = timeEngine(g, factory, seed, cfg, ifaceOpts, meter)
		if err != nil {
			return Measurement{}, err
		}
	}
	gen := iface
	if m.Engine != "generic" {
		refOpts := opts
		refOpts.Reference = true
		gen, err = timeEngine(g, factory, seed, cfg, refOpts, meter)
		if err != nil {
			return Measurement{}, err
		}
	}
	m.Specialized, m.Interface, m.Generic = spec, iface, gen
	if spec.NsPerStep > 0 {
		m.Speedup = gen.NsPerStep / spec.NsPerStep
		m.TableSpeedup = iface.NsPerStep / spec.NsPerStep
	}
	// The batch axis: time Batch replicate trials as one lockstep unit
	// per repetition, on cells whose plan actually has a lockstep kernel
	// for the protocol. Fallback cells record batch_engine "solo" and no
	// batched timing — the fallback IS the solo path already timed above.
	m.BatchEngine = plan.BatchEngine(factory())
	if cfg.Batch > 1 && m.BatchEngine == "lockstep" {
		m.Batch = cfg.Batch
		batched, err := timeBatched(g, factory, seed, cfg, opts, meter)
		if err != nil {
			return Measurement{}, err
		}
		m.Batched = &batched
		if batched.NsPerStep > 0 {
			m.BatchSpeedup = spec.NsPerStep / batched.NsPerStep
		}
	}
	return m, nil
}

// timeEngine runs the cell's trials serially through the batch runner,
// timing each trial on its own so the minimum survives alongside the
// aggregate, and returns total-steps/wall-clock throughput. A warmup
// trial runs first, untimed, to populate caches and let the protocol's
// graph-dependent setup settle.
func timeEngine(g popgraph.Graph, factory func() popgraph.Protocol, seed uint64,
	cfg Config, opts sim.Options, meter *telemetry.Counters) (EngineStats, error) {
	warm := opts
	warm.MaxSteps = cfg.Steps / 8
	if warm.MaxSteps < 1 {
		warm.MaxSteps = 1
	}
	pool := runner.Pool{Workers: 1, Meter: meter}
	pool.Run(runner.TrialJobs(g, factory, seed, 1, warm))

	jobs := runner.TrialJobs(g, factory, seed, cfg.Trials, opts)
	var (
		steps   int64
		totalNs float64
		bestNs  float64
	)
	for _, job := range jobs {
		start := time.Now()
		outs := pool.Run([]runner.Job{job})
		elapsed := time.Since(start)
		o := outs[0]
		if o.Failed() {
			return EngineStats{}, fmt.Errorf("trial crashed: %s", o.Err)
		}
		if o.Result.Steps > 0 {
			trialNs := float64(elapsed.Nanoseconds()) / float64(o.Result.Steps)
			if bestNs == 0 || trialNs < bestNs {
				bestNs = trialNs
			}
		}
		steps += o.Result.Steps
		totalNs += float64(elapsed.Nanoseconds())
	}
	if steps == 0 {
		return EngineStats{}, fmt.Errorf("no interactions executed")
	}
	return EngineStats{
		Steps:         steps,
		NsPerStep:     totalNs / float64(steps),
		StepsPerSec:   float64(steps) / (totalNs / 1e9),
		BestNsPerStep: bestNs,
	}, nil
}

// timeBatched times cfg.Trials repetitions of one Batch-lane lockstep
// unit each, through the same single-worker pool as the solo engines so
// the ratio is a pure execution-mode comparison. Per repetition the
// statistic is unit wall time over the lanes' summed steps; the minimum
// repetition survives as BestNsPerStep for the regression gate. A
// warmup unit runs first, untimed.
func timeBatched(g popgraph.Graph, factory func() popgraph.Protocol, seed uint64,
	cfg Config, opts sim.Options, meter *telemetry.Counters) (EngineStats, error) {
	warm := opts
	warm.MaxSteps = cfg.Steps / 8
	if warm.MaxSteps < 1 {
		warm.MaxSteps = 1
	}
	pool := runner.Pool{Workers: 1, Meter: meter}
	pool.RunBatched(batchJobs(g, factory, seed, 0, cfg.Batch, warm), cfg.Batch, nil)

	var (
		steps   int64
		totalNs float64
		bestNs  float64
	)
	for rep := 1; rep <= cfg.Trials; rep++ {
		jobs := batchJobs(g, factory, seed, rep*cfg.Batch, cfg.Batch, opts)
		start := time.Now()
		outs := pool.RunBatched(jobs, cfg.Batch, nil)
		elapsed := float64(time.Since(start).Nanoseconds())
		var repSteps int64
		for _, o := range outs {
			if o.Failed() {
				return EngineStats{}, fmt.Errorf("batched trial crashed: %s", o.Err)
			}
			repSteps += o.Result.Steps
		}
		if repSteps > 0 {
			if ns := elapsed / float64(repSteps); bestNs == 0 || ns < bestNs {
				bestNs = ns
			}
		}
		steps += repSteps
		totalNs += elapsed
	}
	if steps == 0 {
		return EngineStats{}, fmt.Errorf("no interactions executed")
	}
	return EngineStats{
		Steps:         steps,
		NsPerStep:     totalNs / float64(steps),
		StepsPerSec:   float64(steps) / (totalNs / 1e9),
		BestNsPerStep: bestNs,
	}, nil
}

// batchJobs builds one lockstep unit: lane l of the unit whose first
// trial is global index off gets the seed of solo trial off+l, so the
// batched timing runs the exact trial population a solo sweep would.
func batchJobs(g popgraph.Graph, factory func() popgraph.Protocol, seed uint64,
	off, width int, opts sim.Options) []runner.Job {
	jobs := make([]runner.Job, width)
	for l := range jobs {
		jobs[l] = runner.Job{Graph: g, New: factory, Seed: runner.SeedFor(seed, off+l), Opts: opts}
	}
	return jobs
}

// gateNs is the statistic the regression gate and the delta table run
// on: best-trial specialized ns/step, falling back to the aggregate for
// hand-edited baselines that lack the best-of-trials field.
func gateNs(e EngineStats) float64 {
	if e.BestNsPerStep > 0 {
		return e.BestNsPerStep
	}
	return e.NsPerStep
}

// CellDelta is one row of the per-cell comparison against a baseline:
// the cell identity, both gate statistics and the relative change.
type CellDelta struct {
	GraphSpec, Scheduler, Protocol string
	Drop                           float64
	Engine, ProtocolEngine         string
	// BaseNs and CurNs are the gate statistic (best-trial specialized
	// ns/step) on each side; zero when the cell is missing from that
	// side.
	BaseNs, CurNs float64
	// Delta is CurNs/BaseNs − 1 (negative = faster); meaningful only
	// for matched cells.
	Delta float64
	// BatchSpeedup is the current report's batched-over-solo ratio for
	// the cell; 0 when the cell was not timed on the batch axis.
	BatchSpeedup float64
	// Status classifies the row: "ok", "regressed" (Delta beyond the
	// tolerance), "new" (no baseline cell) or "removed" (no current
	// cell).
	Status string
}

// DeltaTable diffs cur against a baseline cell by cell and returns one
// row per cell on either side — matched cells with their relative
// change and regression verdict at tolerance tol, then cells present
// only in the current grid ("new"), with baseline-only cells ("removed")
// at the end. Unlike Compare, which reports only failures for the CI
// gate, the delta table is the full picture a human (or a CI step
// summary) reads.
func DeltaTable(cur, base Report, tol float64) []CellDelta {
	baseline := make(map[string]Measurement, len(base.Results))
	for _, m := range base.Results {
		baseline[m.key()] = m
	}
	var rows []CellDelta
	for _, m := range cur.Results {
		row := CellDelta{
			GraphSpec:      m.GraphSpec,
			Scheduler:      m.Scheduler,
			Protocol:       m.Protocol,
			Drop:           m.Drop,
			Engine:         m.Engine,
			ProtocolEngine: m.ProtocolEngine,
			CurNs:          gateNs(m.Specialized),
			BatchSpeedup:   m.BatchSpeedup,
		}
		row.Status = "new"
		if b, ok := baseline[m.key()]; ok {
			delete(baseline, m.key())
			if base := gateNs(b.Specialized); base > 0 {
				row.BaseNs = base
				row.Delta = row.CurNs/row.BaseNs - 1
				row.Status = "ok"
				if row.Delta > tol {
					row.Status = "regressed"
				}
			}
		}
		rows = append(rows, row)
	}
	// Deterministic order for the leftover baseline-only cells: baseline
	// report order.
	for _, b := range base.Results {
		if _, ok := baseline[b.key()]; !ok {
			continue
		}
		rows = append(rows, CellDelta{
			GraphSpec:      b.GraphSpec,
			Scheduler:      b.Scheduler,
			Protocol:       b.Protocol,
			Drop:           b.Drop,
			Engine:         b.Engine,
			ProtocolEngine: b.ProtocolEngine,
			BaseNs:         gateNs(b.Specialized),
			Status:         "removed",
		})
	}
	return rows
}

// WriteDeltaMarkdown renders a DeltaTable as a GitHub-flavored markdown
// table; CI appends it to the job's step summary so the per-cell
// picture ships with every bench-smoke run.
func WriteDeltaMarkdown(w io.Writer, rows []CellDelta, tol float64) error {
	if _, err := fmt.Fprintf(w, "### bench -compare deltas (tolerance %.0f%%)\n\n", 100*tol); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| graph | scheduler | protocol | drop | engine | base ns/step | cur ns/step | delta | batch | status |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| --- | --- | --- | --- | --- | --- | --- | --- | --- | --- |"); err != nil {
		return err
	}
	fmtNs := func(v float64) string {
		if v <= 0 {
			return "—"
		}
		return fmt.Sprintf("%.2f", v)
	}
	for _, r := range rows {
		delta := "—"
		if r.Status == "ok" || r.Status == "regressed" {
			delta = fmt.Sprintf("%+.1f%%", 100*r.Delta)
		}
		batch := "—"
		if r.BatchSpeedup > 0 {
			batch = fmt.Sprintf("%.2fx", r.BatchSpeedup)
		}
		status := r.Status
		if status == "regressed" {
			status = "**regressed**"
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | %g | %s/%s | %s | %s | %s | %s | %s |\n",
			r.GraphSpec, r.Scheduler, r.Protocol, r.Drop, r.Engine, r.ProtocolEngine,
			fmtNs(r.BaseNs), fmtNs(r.CurNs), delta, batch, status); err != nil {
			return err
		}
	}
	return nil
}

// WriteTelemetryMarkdown renders a flight-recorder snapshot's top-line
// counters — steps/sec, RNG refills per million steps, the kernel
// dispatch mix — as GitHub-flavored markdown; CI appends it to the
// bench-smoke step summary next to the delta table.
func WriteTelemetryMarkdown(w io.Writer, s telemetry.Snapshot) error {
	if _, err := fmt.Fprintf(w, "### engine telemetry\n\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| metric | value |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| --- | --- |"); err != nil {
		return err
	}
	rows := [][2]string{
		{"steps executed", fmt.Sprintf("%d", s.StepsExecuted)},
		{"steps/sec", fmt.Sprintf("%.3g", s.StepsPerSec())},
		{"RNG refills / Mstep", fmt.Sprintf("%.1f", s.RefillsPerMStep())},
		{"chunks run", fmt.Sprintf("%d", s.ChunksRun)},
		{"drops applied", fmt.Sprintf("%d", s.DropsApplied)},
		{"trials (stabilized/run)", fmt.Sprintf("%d/%d", s.TrialsStabilized, s.TrialsRun)},
		{"kernel mix", strings.Join(s.KernelMix(), "<br>")},
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "| %s | %s |\n", r[0], r[1]); err != nil {
			return err
		}
	}
	return nil
}

// Compare checks cur against a committed baseline and returns one
// message per regressed cell: a cell regresses when its specialized
// best-trial ns/step exceeds the baseline cell's by more than tol (a
// fraction; 0.30 means 30% slower). Best-of-trials is the comparison
// statistic because minima are far more stable than means under
// machine noise; reports from producers predating the field fall back
// to the aggregate. Cells are matched on graph spec × scheduler ×
// protocol; when both sides carry batched lockstep timings at the same
// width, the batched best-trial ns/step is gated at the same tolerance
// as a separate check, so a lockstep-only slowdown cannot hide behind
// healthy solo numbers. Individual cells present on only one side are
// skipped —
// new grid cells have no baseline and removed ones no current
// measurement — but if *no* cell matches at all (a grid or spec rename
// without a regenerated baseline), that is itself reported, so the
// gate can never go vacuously green. An empty slice means no
// regression.
func Compare(cur, base Report, tol float64) []string {
	baseline := make(map[string]Measurement, len(base.Results))
	for _, m := range base.Results {
		baseline[m.key()] = m
	}
	var msgs []string
	matched := 0
	for _, m := range cur.Results {
		b, ok := baseline[m.key()]
		if !ok || gateNs(b.Specialized) <= 0 {
			continue
		}
		matched++
		curNs, baseNs := gateNs(m.Specialized), gateNs(b.Specialized)
		if curNs > baseNs*(1+tol) {
			msgs = append(msgs, fmt.Sprintf(
				"%s × %s × %s × drop %g: specialized %.2f ns/step vs baseline %.2f (+%.0f%%, tolerance %.0f%%)",
				m.GraphSpec, m.Scheduler, m.Protocol, m.Drop,
				curNs, baseNs, 100*(curNs/baseNs-1), 100*tol))
		}
		// The batched lockstep engine is gated independently of the solo
		// kernels: its throughput comes from lane interleaving and table
		// sharing, which a solo-only gate would never notice regressing.
		// Only cells batched on both sides compare — a baseline predating
		// the batch axis (or a cell whose width changed) has nothing
		// commensurable to gate against.
		if m.Batched != nil && b.Batched != nil && b.Batch == m.Batch {
			curB, baseB := gateNs(*m.Batched), gateNs(*b.Batched)
			if baseB > 0 && curB > baseB*(1+tol) {
				msgs = append(msgs, fmt.Sprintf(
					"%s × %s × %s × drop %g: batched(%d) %.2f ns/step vs baseline %.2f (+%.0f%%, tolerance %.0f%%)",
					m.GraphSpec, m.Scheduler, m.Protocol, m.Drop, m.Batch,
					curB, baseB, 100*(curB/baseB-1), 100*tol))
			}
		}
	}
	if matched == 0 && len(cur.Results) > 0 {
		msgs = append(msgs, fmt.Sprintf(
			"no cell of the current grid matches the baseline (%d current, %d baseline cells) — regenerate the committed report",
			len(cur.Results), len(base.Results)))
	}
	return msgs
}

// WriteJSON serializes the report with stable field order and trailing
// newline, suitable for committing at the repo root.
func (rep Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadJSON parses a report previously produced by WriteJSON.
func ReadJSON(r io.Reader) (Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("bench: parsing report: %w", err)
	}
	if rep.Schema != Schema {
		return Report{}, fmt.Errorf("bench: unknown schema %q (want %q)", rep.Schema, Schema)
	}
	return rep, nil
}
