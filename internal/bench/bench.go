// Package bench measures scheduler-engine throughput on a fixed
// graph × protocol grid and serializes the results as the repo-root
// BENCH_sim.json, so the simulator's performance trajectory is tracked
// PR-over-PR.
//
// Each grid cell is timed twice through the batch runner
// (internal/runner, one worker, so wall-clock is per-trial time): once
// on the type-specialized block-sampling engine and once on the generic
// EdgeSampler loop, which an explicit Options.Sampler forces. Both
// engines consume the identical random stream (see internal/sim), so the
// comparison times the same interaction sequence and the ratio is a pure
// engine speedup.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"popgraph"
	"popgraph/internal/runner"
	"popgraph/internal/sim"
)

// Schema identifies the BENCH_sim.json layout; bump on breaking changes.
const Schema = "popgraph-bench/v1"

// Config is one grid cell: a graph and protocol spec with the trial
// shape. Steps caps every trial, so cells are timed over comparable
// work whether or not the protocol stabilizes first.
type Config struct {
	GraphSpec string `json:"graph_spec"`
	Protocol  string `json:"protocol"`
	Steps     int64  `json:"steps"`
	Trials    int    `json:"trials"`
}

// EngineStats is the timing of one engine on one cell.
type EngineStats struct {
	// Steps is the total number of interactions timed across all trials.
	Steps int64 `json:"steps"`
	// NsPerStep and StepsPerSec are the headline throughput numbers.
	NsPerStep   float64 `json:"ns_per_step"`
	StepsPerSec float64 `json:"steps_per_sec"`
}

// Measurement is the result of one grid cell.
type Measurement struct {
	Graph     string `json:"graph"`
	GraphSpec string `json:"graph_spec"`
	Protocol  string `json:"protocol"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	Trials    int    `json:"trials"`
	// Specialized is the default engine (type-specialized hot loops);
	// Generic is the interface-dispatch reference loop.
	Specialized EngineStats `json:"specialized"`
	Generic     EngineStats `json:"generic"`
	// Speedup is generic ns/step divided by specialized ns/step.
	Speedup float64 `json:"speedup"`
}

// Report is the machine-readable benchmark output.
type Report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Seed      uint64 `json:"seed"`
	// MaxSpeedup is the best specialized-over-generic ratio in the grid,
	// the single number the perf trajectory tracks.
	MaxSpeedup float64       `json:"max_speedup"`
	Results    []Measurement `json:"results"`
}

// DefaultGrid returns the standard grid: the six-state baseline on every
// concrete representation (implicit clique, CSR torus/lollipop/cycle)
// plus one identifier and one fast cell. quick shrinks the work for
// smoke tests.
func DefaultGrid(quick bool) []Config {
	steps, trials := int64(1<<21), 3
	if quick {
		steps, trials = 1<<14, 1
	}
	return []Config{
		{GraphSpec: "clique:1024", Protocol: "six-state", Steps: steps, Trials: trials},
		{GraphSpec: "torus:32x32", Protocol: "six-state", Steps: steps, Trials: trials},
		{GraphSpec: "lollipop:64:64", Protocol: "six-state", Steps: steps, Trials: trials},
		{GraphSpec: "cycle:1024", Protocol: "six-state", Steps: steps, Trials: trials},
		{GraphSpec: "torus:32x32", Protocol: "identifier", Steps: steps, Trials: trials},
		{GraphSpec: "clique:1024", Protocol: "fast", Steps: steps, Trials: trials},
	}
}

// Run times every config and assembles the report. logf, if non-nil,
// receives one progress line per cell.
func Run(cfgs []Config, seed uint64, logf func(format string, args ...interface{})) (Report, error) {
	rep := Report{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Seed:      seed,
	}
	for i, cfg := range cfgs {
		m, err := measure(cfg, seed)
		if err != nil {
			return Report{}, fmt.Errorf("bench: config %d (%s × %s): %w",
				i, cfg.GraphSpec, cfg.Protocol, err)
		}
		if m.Speedup > rep.MaxSpeedup {
			rep.MaxSpeedup = m.Speedup
		}
		rep.Results = append(rep.Results, m)
		if logf != nil {
			logf("bench: %-16s × %-10s  specialized %6.2f ns/step  generic %6.2f ns/step  speedup %.2fx",
				m.Graph, m.Protocol, m.Specialized.NsPerStep, m.Generic.NsPerStep, m.Speedup)
		}
	}
	return rep, nil
}

// measure times one cell on both engines.
func measure(cfg Config, seed uint64) (Measurement, error) {
	if cfg.Steps < 1 || cfg.Trials < 1 {
		return Measurement{}, fmt.Errorf("steps and trials must be >= 1 (got %d, %d)",
			cfg.Steps, cfg.Trials)
	}
	r := popgraph.NewRand(seed)
	g, err := popgraph.ParseGraph(cfg.GraphSpec, r)
	if err != nil {
		return Measurement{}, err
	}
	factory, err := popgraph.ProtocolFactory(cfg.Protocol, g, r)
	if err != nil {
		return Measurement{}, err
	}
	m := Measurement{
		Graph:     g.Name(),
		GraphSpec: cfg.GraphSpec,
		Protocol:  factory().Name(),
		N:         g.N(),
		M:         g.M(),
		Trials:    cfg.Trials,
	}
	spec, err := timeEngine(g, factory, seed, cfg, sim.Options{MaxSteps: cfg.Steps})
	if err != nil {
		return Measurement{}, err
	}
	gen, err := timeEngine(g, factory, seed, cfg,
		sim.Options{MaxSteps: cfg.Steps, Sampler: g})
	if err != nil {
		return Measurement{}, err
	}
	m.Specialized, m.Generic = spec, gen
	if spec.NsPerStep > 0 {
		m.Speedup = gen.NsPerStep / spec.NsPerStep
	}
	return m, nil
}

// timeEngine runs the cell's trials serially through the batch runner
// and returns total-steps/wall-clock throughput. A warmup trial runs
// first, untimed, to populate caches and let the protocol's
// graph-dependent setup settle.
func timeEngine(g popgraph.Graph, factory func() popgraph.Protocol, seed uint64,
	cfg Config, opts sim.Options) (EngineStats, error) {
	warm := opts
	warm.MaxSteps = cfg.Steps / 8
	if warm.MaxSteps < 1 {
		warm.MaxSteps = 1
	}
	pool := runner.Pool{Workers: 1}
	pool.Run(runner.TrialJobs(g, factory, seed, 1, warm))

	jobs := runner.TrialJobs(g, factory, seed, cfg.Trials, opts)
	start := time.Now()
	outs := pool.Run(jobs)
	elapsed := time.Since(start)

	var steps int64
	for _, o := range outs {
		if o.Failed() {
			return EngineStats{}, fmt.Errorf("trial crashed: %s", o.Err)
		}
		steps += o.Result.Steps
	}
	if steps == 0 {
		return EngineStats{}, fmt.Errorf("no interactions executed")
	}
	ns := float64(elapsed.Nanoseconds())
	return EngineStats{
		Steps:       steps,
		NsPerStep:   ns / float64(steps),
		StepsPerSec: float64(steps) / elapsed.Seconds(),
	}, nil
}

// WriteJSON serializes the report with stable field order and trailing
// newline, suitable for committing at the repo root.
func (rep Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadJSON parses a report previously produced by WriteJSON.
func ReadJSON(r io.Reader) (Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("bench: parsing report: %w", err)
	}
	if rep.Schema != Schema {
		return Report{}, fmt.Errorf("bench: unknown schema %q (want %q)", rep.Schema, Schema)
	}
	return rep, nil
}
