// Startup benchmarking: the build-once/load-many economics of binary
// graph snapshots. For each spec the graph is generated once (timed),
// written as a popgraph-snap/v1 container, and then loaded back — both
// via plain read (snapshot.Load) and the linux mmap path — so the
// report records how many times over a preprocessed graph amortizes
// its generation. These numbers are informational, not gated: load
// time is dominated by I/O and checksum bandwidth, which varies across
// machines far more than kernel throughput does.

package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"popgraph"
	"popgraph/internal/snapshot"
)

// StartupMeasurement is the snapshot economics of one graph spec:
// generation time against validated load time from the binary
// container.
type StartupMeasurement struct {
	GraphSpec string `json:"graph_spec"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	// SnapshotBytes is the encoded container size.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// BuildNs is the in-process generation time (ParseGraph, including
	// connectivity conditioning for random families); LoadNs the full
	// validated snapshot.Load (read + checksums + structural checks),
	// best of loadReps; MmapLoadNs the same through snapshot.LoadMmap.
	// LoadSpeedup is BuildNs over the faster of the two load paths —
	// on linux that is the mmap path, which skips the page-cache copy
	// a plain read pays before the first checksum byte.
	BuildNs     int64   `json:"build_ns"`
	LoadNs      int64   `json:"load_ns"`
	MmapLoadNs  int64   `json:"mmap_load_ns"`
	LoadSpeedup float64 `json:"load_speedup"`
}

// loadReps is how many times each load path runs; the minimum survives,
// filtering page-cache warmup and scheduler noise exactly like the
// best-of-trials statistic of the throughput cells.
const loadReps = 3

// DefaultStartup returns the startup specs: the 10⁶-node Watts–Strogatz
// small world (10⁷ CSR entries) whose generation takes seconds where
// the snapshot loads in tens of milliseconds. quick shrinks it 50× for
// smoke runs.
func DefaultStartup(quick bool) []string {
	if quick {
		return []string{"ws:20000:10:0.1"}
	}
	return []string{"ws:1000000:10:0.1"}
}

// RunStartup measures the build-vs-load economics for each spec. The
// snapshot is written to a temporary directory and removed afterwards.
func RunStartup(specs []string, seed uint64, logf func(format string, args ...interface{})) ([]StartupMeasurement, error) {
	dir, err := os.MkdirTemp("", "popgraph-bench-snap")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	var out []StartupMeasurement
	for i, spec := range specs {
		m, err := measureStartup(spec, seed, filepath.Join(dir, fmt.Sprintf("s%d.popg", i)))
		if err != nil {
			return nil, fmt.Errorf("bench: startup %s: %w", spec, err)
		}
		out = append(out, m)
		if logf != nil {
			logf("bench: startup %-18s  n=%-8d build %8.1f ms  load %6.2f ms  mmap %6.2f ms  speedup %.0fx",
				spec, m.N, float64(m.BuildNs)/1e6, float64(m.LoadNs)/1e6, float64(m.MmapLoadNs)/1e6, m.LoadSpeedup)
		}
	}
	return out, nil
}

func measureStartup(spec string, seed uint64, path string) (StartupMeasurement, error) {
	r := popgraph.NewRand(seed)
	start := time.Now()
	g, err := popgraph.ParseGraph(spec, r)
	if err != nil {
		return StartupMeasurement{}, err
	}
	buildNs := time.Since(start).Nanoseconds()

	snap, err := snapshot.Build(g, spec)
	if err != nil {
		return StartupMeasurement{}, err
	}
	if err := snapshot.WriteFile(path, snap); err != nil {
		return StartupMeasurement{}, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return StartupMeasurement{}, err
	}

	timeLoad := func(load func(string) (*snapshot.Snapshot, error)) (int64, error) {
		best := int64(0)
		for rep := 0; rep < loadReps; rep++ {
			start := time.Now()
			s, err := load(path)
			elapsed := time.Since(start).Nanoseconds()
			if err != nil {
				return 0, err
			}
			if s.Graph.N() != g.N() || s.Graph.M() != g.M() {
				return 0, fmt.Errorf("loaded graph n=%d m=%d, want %d/%d", s.Graph.N(), s.Graph.M(), g.N(), g.M())
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		return best, nil
	}
	loadNs, err := timeLoad(snapshot.Load)
	if err != nil {
		return StartupMeasurement{}, err
	}
	mmapNs, err := timeLoad(snapshot.LoadMmap)
	if err != nil {
		return StartupMeasurement{}, err
	}

	m := StartupMeasurement{
		GraphSpec:     spec,
		N:             g.N(),
		M:             g.M(),
		SnapshotBytes: st.Size(),
		BuildNs:       buildNs,
		LoadNs:        loadNs,
		MmapLoadNs:    mmapNs,
	}
	if best := min(loadNs, mmapNs); best > 0 {
		m.LoadSpeedup = float64(buildNs) / float64(best)
	}
	return m, nil
}
