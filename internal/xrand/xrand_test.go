package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams for distinct seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child streams collided %d/100 times", same)
	}
}

func TestUintnRange(t *testing.T) {
	r := New(3)
	f := func(n uint64) bool {
		if n == 0 {
			return true
		}
		v := r.Uintn(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUintnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n == 0")
		}
	}()
	New(1).Uintn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square-ish sanity check: 10 buckets, 100k samples.
	r := New(11)
	const buckets, samples = 10, 100000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(samples) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from %v", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestBoolFair(t *testing.T) {
	r := New(9)
	heads := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool() {
			heads++
		}
	}
	if math.Abs(float64(heads)-trials/2) > 4*math.Sqrt(trials/4) {
		t.Fatalf("Bool badly biased: %d heads of %d", heads, trials)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(19)
	for _, p := range []float64{1, 0.5, 0.1, 0.01} {
		const trials = 50000
		var sum int64
		for i := 0; i < trials; i++ {
			g := r.Geometric(p)
			if g < 1 {
				t.Fatalf("Geometric(%v) returned %d < 1", p, g)
			}
			sum += g
		}
		mean := float64(sum) / trials
		want := 1 / p
		if math.Abs(mean-want) > 0.05*want+0.01 {
			t.Errorf("Geometric(%v): mean %v, want ~%v", p, mean, want)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for p=%v", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func TestPoissonMeanVariance(t *testing.T) {
	r := New(23)
	for _, lambda := range []float64{0.5, 3, 20, 100} {
		const trials = 20000
		var sum, sumsq float64
		for i := 0; i < trials; i++ {
			v := float64(r.Poisson(lambda))
			sum += v
			sumsq += v * v
		}
		mean := sum / trials
		varr := sumsq/trials - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%v): mean %v", lambda, mean)
		}
		if math.Abs(varr-lambda) > 0.15*lambda+0.1 {
			t.Errorf("Poisson(%v): variance %v", lambda, varr)
		}
	}
}

func TestBinomialMean(t *testing.T) {
	r := New(29)
	cases := []struct {
		n int64
		p float64
	}{{100, 0.5}, {1000, 0.01}, {50, 0.9}, {10, 0}, {10, 1}}
	for _, c := range cases {
		const trials = 20000
		var sum int64
		for i := 0; i < trials; i++ {
			v := r.Binomial(c.n, c.p)
			if v < 0 || v > c.n {
				t.Fatalf("Binomial(%d,%v) out of range: %d", c.n, c.p, v)
			}
			sum += v
		}
		mean := float64(sum) / trials
		want := float64(c.n) * c.p
		if math.Abs(mean-want) > 0.05*want+0.2 {
			t.Errorf("Binomial(%d,%v): mean %v, want %v", c.n, c.p, mean, want)
		}
	}
}

func TestFillMatchesUint64Stream(t *testing.T) {
	for _, size := range []int{1, 7, 64, 513} {
		a, b := New(31), New(31)
		buf := make([]uint64, size)
		a.Fill(buf)
		for i, v := range buf {
			if want := b.Uint64(); v != want {
				t.Fatalf("Fill(%d)[%d] = %d, want %d", size, i, v, want)
			}
		}
		// The states must agree afterwards, too.
		if a.Save() != b.Save() {
			t.Fatalf("Fill(%d) left a different state than %d Uint64 calls", size, size)
		}
	}
}

func TestSaveRestore(t *testing.T) {
	r := New(37)
	r.Skip(100)
	s := r.Save()
	first := make([]uint64, 32)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Restore(s)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("replay diverged at %d: %d != %d", i, got, first[i])
		}
	}
}

func TestSkipMatchesDiscardedDraws(t *testing.T) {
	for _, n := range []int{0, 1, 10, 1000} {
		a, b := New(41), New(41)
		a.Skip(n)
		for i := 0; i < n; i++ {
			b.Uint64()
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Skip(%d) landed on a different stream position", n)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkUintn(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uintn(12345)
	}
	_ = sink
}

func BenchmarkFill(b *testing.B) {
	r := New(1)
	buf := make([]uint64, 512)
	b.SetBytes(512 * 8)
	for i := 0; i < b.N; i++ {
		r.Fill(buf)
	}
}

// TestFloat64FromMatchesFloat64 — converting a prefetched Uint64 with
// Float64From must give the exact float a live Float64 call would have
// produced for the same stream position — the property the simulator's
// block kernels rely on for byte-identical drop and alias decisions.
func TestFloat64FromMatchesFloat64(t *testing.T) {
	a, b := New(91), New(91)
	buf := make([]uint64, 257)
	a.Fill(buf)
	for i, x := range buf {
		if got, want := Float64From(x), b.Float64(); got != want {
			t.Fatalf("draw %d: Float64From = %v, Float64 = %v", i, got, want)
		}
	}
}
