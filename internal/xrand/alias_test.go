package xrand

import (
	"math"
	"testing"
)

func TestNewAliasRejectsBadWeights(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
	}{
		{"empty", nil},
		{"negative", []float64{1, -1}},
		{"nan", []float64{1, math.NaN()}},
		{"inf", []float64{1, math.Inf(1)}},
		{"all-zero", []float64{0, 0, 0}},
		{"overflowing-sum", []float64{1e308, 1e308, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewAlias(c.weights); err == nil {
				t.Fatalf("weights %v accepted", c.weights)
			}
		})
	}
}

// TestAliasFrequencies checks the sampled empirical distribution against
// the construction weights, including a zero-weight column that must
// never be drawn.
func TestAliasFrequencies(t *testing.T) {
	weights := []float64{1, 3, 0, 6, 2}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != len(weights) {
		t.Fatalf("N() = %d", a.N())
	}
	r := New(7)
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(r)]++
	}
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	for i, w := range weights {
		got := float64(counts[i]) / draws
		want := w / sum
		if w == 0 && counts[i] != 0 {
			t.Fatalf("zero-weight column %d drawn %d times", i, counts[i])
		}
		if math.Abs(got-want) > 0.01 {
			t.Errorf("column %d: frequency %.4f, want %.4f", i, got, want)
		}
	}
}

// TestAliasSingleColumn — a one-column table always returns 0.
func TestAliasSingleColumn(t *testing.T) {
	a, err := NewAlias([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	r := New(1)
	for i := 0; i < 100; i++ {
		if got := a.Sample(r); got != 0 {
			t.Fatalf("sample %d", got)
		}
	}
}

// TestAliasDeterministicDrawCount — Sample consumes exactly two draws
// (one Intn, one Float64), so generator positions stay reproducible.
func TestAliasDeterministicDrawCount(t *testing.T) {
	a, err := NewAlias([]float64{2, 5, 1})
	if err != nil {
		t.Fatal(err)
	}
	r1 := New(9)
	r2 := New(9)
	for i := 0; i < 1000; i++ {
		a.Sample(r1)
		r2.Intn(3)
		r2.Float64()
	}
	for i := 0; i < 8; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("draw-count drift at check %d", i)
		}
	}
}

// TestAliasTableReplaysSample — driving the exposed table columns with
// the same Intn + Float64 draw sequence Sample makes must reproduce
// Sample's outputs exactly, so monomorphized kernels can bypass the
// method without changing any stream.
func TestAliasTableReplaysSample(t *testing.T) {
	a, err := NewAlias([]float64{3, 0, 1, 5, 2})
	if err != nil {
		t.Fatal(err)
	}
	prob, alias := a.Table()
	if len(prob) != a.N() || len(alias) != a.N() {
		t.Fatalf("table lengths %d, %d, want %d", len(prob), len(alias), a.N())
	}
	rSample, rTable := New(17), New(17)
	for i := 0; i < 5000; i++ {
		want := a.Sample(rSample)
		col := rTable.Intn(len(prob))
		got := col
		if rTable.Float64() >= prob[col] {
			got = int(alias[col])
		}
		if got != want {
			t.Fatalf("draw %d: table replay %d, Sample %d", i, got, want)
		}
	}
}
