// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// The generator is xoshiro256++ seeded via splitmix64, following the
// reference constructions of Blackman and Vigna. It is not safe for
// concurrent use; create one generator per goroutine (see Split).
//
// The simulator relies on xrand for reproducibility: every run of every
// protocol, scheduler and experiment takes an explicit *Rand, so a fixed
// seed reproduces an execution exactly.
package xrand

import "math"

// Rand is a xoshiro256++ pseudo-random number generator.
// The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator deterministically seeded from seed.
// Distinct seeds yield independent-looking streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	// splitmix64 expansion of the seed into the 256-bit state, as
	// recommended by the xoshiro authors. splitmix64 is an equidistributed
	// bijection, so no state can be all zeros unless all four outputs are
	// zero, which splitmix64 cannot produce from a single stream.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split returns a new generator seeded from the current one. The child
// stream is independent of the parent's future output for all practical
// purposes; used to hand one generator per worker goroutine.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uintn returns a uniform integer in [0, n). It panics if n == 0.
// Uses Lemire's nearly-divisionless unbiased method.
func (r *Rand) Uintn(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uintn with n == 0")
	}
	x := r.Uint64()
	hi, lo := mul64(x, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul64(x, n)
		}
	}
	_ = lo
	return hi
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uintn(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample of Geom(p): the number of Bernoulli(p) trials
// up to and including the first success (support {1, 2, ...}).
// It panics unless 0 < p <= 1.
func (r *Rand) Geometric(p float64) int64 {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 1
	}
	// Inversion: ceil(ln(U) / ln(1-p)) with U in (0, 1].
	u := 1 - r.Float64() // in (0, 1]
	g := int64(math.Ceil(math.Log(u) / math.Log1p(-p)))
	if g < 1 {
		g = 1
	}
	return g
}

// Poisson returns a sample of Poisson(lambda) using Knuth's method for
// small lambda and a normal approximation cut for large lambda via
// splitting (Poisson(a+b) = Poisson(a) + Poisson(b)).
func (r *Rand) Poisson(lambda float64) int64 {
	if lambda < 0 {
		panic("xrand: Poisson with negative lambda")
	}
	var total int64
	// Split into chunks small enough for the multiplicative method to
	// stay within float range (e^-30 ≈ 1e-13, fine for float64).
	for lambda > 30 {
		total += r.poissonKnuth(30)
		lambda -= 30
	}
	return total + r.poissonKnuth(lambda)
}

func (r *Rand) poissonKnuth(lambda float64) int64 {
	limit := math.Exp(-lambda)
	var k int64
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Binomial returns a sample of Bin(n, p) by direct summation of Bernoulli
// trials for small n and a BTRS-free geometric-skip method for small p.
func (r *Rand) Binomial(n int64, p float64) int64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	// Geometric skipping: expected work O(np).
	var count, i int64
	for {
		i += r.Geometric(p)
		if i > n {
			return count
		}
		count++
	}
}
