// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// The generator is xoshiro256++ seeded via splitmix64, following the
// reference constructions of Blackman and Vigna. It is not safe for
// concurrent use; create one generator per goroutine (see Split).
//
// The simulator relies on xrand for reproducibility: every run of every
// protocol, scheduler and experiment takes an explicit *Rand, so a fixed
// seed reproduces an execution exactly.
package xrand

import (
	"math"
	"math/bits"
)

// Rand is a xoshiro256++ pseudo-random number generator.
// The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
}

// State is a snapshot of a generator's full internal state, taken with
// Save and reinstated with Restore. The simulator's block-sampling fast
// path uses snapshots to prefetch randomness in bulk and later rewind the
// generator to the position it would have reached drawing one value at a
// time.
type State [4]uint64

// Save returns a snapshot of the generator's current state.
func (r *Rand) Save() State { return r.s }

// Restore rewinds the generator to a previously saved state; the output
// stream continues exactly as it did from that point.
func (r *Rand) Restore(s State) { r.s = s }

// New returns a generator deterministically seeded from seed.
// Distinct seeds yield independent-looking streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	// splitmix64 expansion of the seed into the 256-bit state, as
	// recommended by the xoshiro authors. splitmix64 is an equidistributed
	// bijection, so no state can be all zeros unless all four outputs are
	// zero, which splitmix64 cannot produce from a single stream.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split returns a new generator seeded from the current one. The child
// stream is independent of the parent's future output for all practical
// purposes; used to hand one generator per worker goroutine.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Fill overwrites buf with consecutive Uint64 outputs. The stream is
// identical to len(buf) individual Uint64 calls; the point is speed: the
// 256-bit state lives in registers for the whole block instead of being
// loaded and stored once per draw. The scheduler fast path consumes its
// randomness through Fill.
func (r *Rand) Fill(buf []uint64) {
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	for i := range buf {
		buf[i] = bits.RotateLeft64(s0+s3, 23) + s0
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// Skip advances the generator by n draws, discarding the outputs; the
// state afterwards equals the state after n Uint64 calls.
func (r *Rand) Skip(n int) {
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	for ; n > 0; n-- {
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// Uintn returns a uniform integer in [0, n). It panics if n == 0.
// Uses Lemire's nearly-divisionless unbiased method.
func (r *Rand) Uintn(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uintn with n == 0")
	}
	x := r.Uint64()
	hi, lo := bits.Mul64(x, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, n)
		}
	}
	_ = lo
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uintn(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return Float64From(r.Uint64())
}

// Float64From maps one Uint64 output x to the float64 in [0, 1) that
// Float64 would have returned for that draw. The simulator's
// block-sampling kernels prefetch raw uint64 blocks through Fill and
// convert in place, so a prefetched float consumes exactly one stream
// position — the same as a live Float64 call — keeping block execution
// byte-identical to draw-at-a-time execution.
func Float64From(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample of Geom(p): the number of Bernoulli(p) trials
// up to and including the first success (support {1, 2, ...}).
// It panics unless 0 < p <= 1.
func (r *Rand) Geometric(p float64) int64 {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 1
	}
	// Inversion: ceil(ln(U) / ln(1-p)) with U in (0, 1].
	u := 1 - r.Float64() // in (0, 1]
	g := int64(math.Ceil(math.Log(u) / math.Log1p(-p)))
	if g < 1 {
		g = 1
	}
	return g
}

// Poisson returns a sample of Poisson(lambda) using Knuth's method for
// small lambda and a normal approximation cut for large lambda via
// splitting (Poisson(a+b) = Poisson(a) + Poisson(b)).
func (r *Rand) Poisson(lambda float64) int64 {
	if lambda < 0 {
		panic("xrand: Poisson with negative lambda")
	}
	var total int64
	// Split into chunks small enough for the multiplicative method to
	// stay within float range (e^-30 ≈ 1e-13, fine for float64).
	for lambda > 30 {
		total += r.poissonKnuth(30)
		lambda -= 30
	}
	return total + r.poissonKnuth(lambda)
}

func (r *Rand) poissonKnuth(lambda float64) int64 {
	limit := math.Exp(-lambda)
	var k int64
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Binomial returns a sample of Bin(n, p) by direct summation of Bernoulli
// trials for small n and a BTRS-free geometric-skip method for small p.
func (r *Rand) Binomial(n int64, p float64) int64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	// Geometric skipping: expected work O(np).
	var count, i int64
	for {
		i += r.Geometric(p)
		if i > n {
			return count
		}
		count++
	}
}
