package xrand

import (
	"fmt"
	"math"
)

// Alias is a Walker–Vose alias table: O(n) construction over a fixed
// discrete distribution, O(1) sampling with two generator draws. The
// weighted interaction scheduler uses one to sample edges proportionally
// to per-edge rates; tables are immutable after construction and safe
// for concurrent sampling with per-goroutine generators.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table over weights. Weights must be finite
// and nonnegative with a positive sum; zero-weight entries are valid and
// are never sampled.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("xrand: alias table over no weights")
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("xrand: alias table over %d weights too large", n)
	}
	sum := 0.0
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("xrand: alias weight %d is %v", i, w)
		}
		sum += w
	}
	// A sum that overflowed would make every scaled weight NaN and the
	// table silently wrong, not invalid.
	if sum <= 0 || math.IsInf(sum, 0) {
		return nil, fmt.Errorf("xrand: alias weights sum to %v", sum)
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	// Vose's stack method: scale weights to mean 1, pair each deficit
	// column with a surplus donor.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		// (w/sum)*n, not w*n/sum: w/sum <= 1, so the intermediate cannot
		// overflow even for weights near MaxFloat64.
		scaled[i] = w / sum * float64(n)
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers are full columns up to rounding error.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// AliasFromColumns reconstructs an alias table from its two columns —
// the inverse of Table, used to revive a table serialized in a binary
// snapshot without re-running Vose's construction. Columns are adopted,
// not copied. Every prob entry must be a probability in [0, 1] and
// every alias entry a valid column index; any table NewAlias built
// satisfies both, and a reconstructed table replays the exact draw
// sequence of the original (Sample reads only these two slices).
func AliasFromColumns(prob []float64, alias []int32) (*Alias, error) {
	n := len(prob)
	if n == 0 {
		return nil, fmt.Errorf("xrand: alias table over no columns")
	}
	if len(alias) != n {
		return nil, fmt.Errorf("xrand: alias columns disagree: %d prob vs %d alias entries", n, len(alias))
	}
	for i, p := range prob {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return nil, fmt.Errorf("xrand: alias prob %d is %v, outside [0, 1]", i, p)
		}
	}
	for i, a := range alias {
		if a < 0 || int(a) >= n {
			return nil, fmt.Errorf("xrand: alias target %d is %d, outside [0, %d)", i, a, n)
		}
	}
	return &Alias{prob: prob, alias: alias}, nil
}

// N returns the number of columns (the support size).
func (a *Alias) N() int { return len(a.prob) }

// Table exposes the table's two columns — column i is accepted when a
// uniform [0,1) draw lands below prob[i], otherwise alias[i] is
// returned. The simulator's monomorphized weighted and node-clock
// kernels replay Sample's exact draw sequence from prefetched
// randomness through these slices. Callers must treat both as
// read-only.
func (a *Alias) Table() (prob []float64, alias []int32) { return a.prob, a.alias }

// Sample draws an index distributed proportionally to the construction
// weights, consuming exactly one Intn and one Float64 draw.
func (a *Alias) Sample(r *Rand) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}
