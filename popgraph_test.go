package popgraph_test

import (
	"strings"
	"testing"

	"popgraph"
)

func TestQuickstartFlow(t *testing.T) {
	r := popgraph.NewRand(42)
	g := popgraph.Torus(4, 4)
	res := popgraph.Run(g, popgraph.NewSixState(), r, popgraph.Options{})
	if !res.Stabilized {
		t.Fatal("did not stabilize")
	}
	if res.Leader < 0 || res.Leader >= g.N() {
		t.Fatalf("bad leader %d", res.Leader)
	}
}

func TestAllProtocolsViaFacade(t *testing.T) {
	r := popgraph.NewRand(7)
	g := popgraph.Clique(16)
	protos := []popgraph.Protocol{
		popgraph.NewSixState(),
		popgraph.NewSixStateWithCandidates([]int{1, 5, 9}),
		popgraph.NewIdentifier(),
		popgraph.NewIdentifierRegular(),
		popgraph.NewFastFor(g, r),
	}
	for _, p := range protos {
		res := popgraph.Run(g, p, r, popgraph.Options{})
		if !res.Stabilized {
			t.Fatalf("%s did not stabilize", p.Name())
		}
		if p.Output(res.Leader) != popgraph.Leader {
			t.Fatalf("%s: leader does not output leader", p.Name())
		}
	}
}

func TestStarProtocolViaFacade(t *testing.T) {
	r := popgraph.NewRand(9)
	res := popgraph.Run(popgraph.Star(64), popgraph.NewStarProtocol(), r, popgraph.Options{})
	if !res.Stabilized || res.Steps != 1 {
		t.Fatalf("star protocol result %+v", res)
	}
}

func TestParseGraphSpecs(t *testing.T) {
	r := popgraph.NewRand(11)
	cases := []struct {
		spec string
		n    int
	}{
		{"clique:10", 10},
		{"cycle:12", 12},
		{"path:5", 5},
		{"star:7", 7},
		{"hypercube:3", 8},
		{"torus:3x4", 12},
		{"grid:2x5", 10},
		{"lollipop:4:3", 7},
		{"barbell:3:2", 8},
		{"gnp:30:0.3", 30},
		{"regular:20:4", 20},
		{"ws:24:4:0.1", 24},
		{"ws:24:4:0", 24},
		{"ba:30:2", 30},
	}
	for _, c := range cases {
		g, err := popgraph.ParseGraph(c.spec, r)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if g.N() != c.n {
			t.Fatalf("%s: n = %d, want %d", c.spec, g.N(), c.n)
		}
	}
	// Families with closed-form edge counts keep them through parsing.
	if g, _ := popgraph.ParseGraph("ws:24:4:0.3", r); g.M() != 48 {
		t.Fatalf("ws:24:4:0.3 m = %d, want n·k/2 = 48", g.M())
	}
	// Seed clique on m+1 = 3 nodes (3 edges) plus m = 2 per later node.
	if g, _ := popgraph.ParseGraph("ba:30:2", r); g.M() != 3+27*2 {
		t.Fatalf("ba:30:2 m = %d, want %d", g.M(), 3+27*2)
	}
}

func TestParseGraphErrors(t *testing.T) {
	r := popgraph.NewRand(13)
	for _, spec := range []string{
		"", "nope:5", "clique", "clique:x", "torus:4", "torus:axb",
		"gnp:10", "gnp:10:zzz", "lollipop:4", "regular:10:x",
		"ws:10:4", "ws:10:x:0.1", "ws:10:4:x", "ba:10", "ba:10:x",
	} {
		if _, err := popgraph.ParseGraph(spec, r); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

// TestParseGraphRangeErrors — specs that are grammatically fine but whose
// parameters are out of range for the family must come back as errors
// naming the spec — the generators panic on them, and that panic used to
// escape and crash the CLI tools with a backtrace.
func TestParseGraphRangeErrors(t *testing.T) {
	r := popgraph.NewRand(13)
	for _, spec := range []string{
		"clique:1", "clique:-5", "clique:0",
		"cycle:2", "cycle:-3",
		"path:1", "path:-1",
		"star:1", "star:-2",
		"hypercube:0", "hypercube:25", "hypercube:-1",
		"torus:2x5", "torus:5x2", "torus:-3x4",
		"grid:0x4", "grid:1x1", "grid:-2x3",
		"lollipop:1:3", "lollipop:4:0", "lollipop:-2:-2",
		"barbell:1:2", "barbell:2:-1",
		"gnp:1:0.5", "gnp:10:0", "gnp:10:1.5", "gnp:-4:0.5",
		"regular:10:2", "regular:10:11", "regular:5:3", "regular:-6:3",
		"ws:10:3:0.1", "ws:10:0:0.1", "ws:8:8:0.1", "ws:2:2:0.1",
		"ws:10:4:-0.5", "ws:10:4:1.5",
		"ba:10:0", "ba:5:5", "ba:5:6", "ba:1:1", "ba:10:-2",
	} {
		g, err := popgraph.ParseGraph(spec, r)
		if err == nil {
			t.Errorf("spec %q accepted (built %s)", spec, g.Name())
			continue
		}
		if !strings.Contains(err.Error(), spec) {
			t.Errorf("spec %q: error %q does not name the spec", spec, err)
		}
	}
}

func TestParseScheduler(t *testing.T) {
	r := popgraph.NewRand(23)
	g := popgraph.Torus(3, 4)
	cases := []struct {
		spec string
		name string
	}{
		{"uniform", "uniform"},
		{"weighted", "weighted:exp"},
		{"weighted:exp", "weighted:exp"},
		{"weighted:degprod", "weighted:degprod"},
		{"node-clock", "node-clock"},
		{"nodeclock", "node-clock"},
		{"churn:64:16", "churn:64:16"},
		{"churn:2.5:1", "churn:2.5:1"},
	}
	for _, c := range cases {
		s, err := popgraph.ParseScheduler(c.spec, g, r)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if s.Name() != c.name {
			t.Fatalf("%s: name %q, want %q", c.spec, s.Name(), c.name)
		}
	}
}

func TestParseSchedulerErrors(t *testing.T) {
	r := popgraph.NewRand(23)
	g := popgraph.Clique(8)
	for _, spec := range []string{
		"", "bogus", "uniform:1",
		"weighted:nosuch", "weighted:exp:1",
		"node-clock:3",
		"churn", "churn:64", "churn:64:16:4", "churn:x:16", "churn:64:x",
		"churn:0.5:16", "churn:64:0", "churn:-1:2",
	} {
		_, err := popgraph.ParseScheduler(spec, g, r)
		if err == nil {
			t.Errorf("spec %q accepted", spec)
			continue
		}
		if !strings.Contains(err.Error(), spec) {
			t.Errorf("spec %q: error %q does not name the spec", spec, err)
		}
	}
}

// TestParsedSchedulersRun — every parsed scheduler drives a full run to
// stabilization through the public facade.
func TestParsedSchedulersRun(t *testing.T) {
	g := popgraph.Torus(3, 4)
	for _, spec := range []string{"uniform", "weighted:exp", "weighted:degprod", "node-clock", "churn:16:4"} {
		r := popgraph.NewRand(31)
		s, err := popgraph.ParseScheduler(spec, g, r)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		res := popgraph.Run(g, popgraph.NewSixState(), r, popgraph.Options{Scheduler: s})
		if !res.Stabilized {
			t.Fatalf("%s: did not stabilize", spec)
		}
	}
}

func TestParseProtocol(t *testing.T) {
	r := popgraph.NewRand(15)
	g := popgraph.Clique(8)
	for _, spec := range []string{"six-state", "identifier", "identifier-regular", "fast", "star", "majority:0.75"} {
		if _, err := popgraph.ParseProtocol(spec, g, r); err != nil {
			t.Errorf("%s: %v", spec, err)
		}
	}
	if _, err := popgraph.ParseProtocol("bogus", g, r); err == nil ||
		!strings.Contains(err.Error(), "bogus") {
		t.Errorf("bad protocol error: %v", err)
	}
}

// TestProtocolSpecErrors — every malformed protocol spec comes back from
// ParseProtocol/ProtocolFactory as an error naming the problem — never
// a panic, and never a nil factory alongside a nil error.
func TestProtocolSpecErrors(t *testing.T) {
	r := popgraph.NewRand(16)
	g := popgraph.Clique(8)
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"", "unknown protocol"},
		{"six-state-typo", "unknown protocol"},
		{"majority", "unknown protocol"},     // fraction is mandatory
		{"majority:", "between 0 and 1"},     // empty fraction
		{"majority:nope", "between 0 and 1"}, // non-numeric
		{"majority:0", "between 0 and 1"},    // degenerate
		{"majority:1", "between 0 and 1"},    // degenerate
		{"majority:-0.5", "between 0 and 1"}, // negative
		{"majority:0.5", "tie"},              // rounds to a tie on n=8
		{"majority:0.001", "unanimous"},      // rounds to zero ones
		{"majority:0.999", "unanimous"},      // rounds to all ones
	}
	for _, c := range cases {
		t.Run(c.spec, func(t *testing.T) {
			factory, err := popgraph.ProtocolFactory(c.spec, g, r)
			if err == nil {
				t.Fatalf("ProtocolFactory accepted %q", c.spec)
			}
			if factory != nil {
				t.Fatalf("ProtocolFactory returned a factory alongside error %v", err)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
			if _, err := popgraph.ParseProtocol(c.spec, g, r); err == nil {
				t.Fatal("ParseProtocol accepted what ProtocolFactory rejected")
			}
		})
	}
	// A graph-dependent tuning failure (the fast protocol on a degenerate
	// graph) must come back as an error naming the spec, not a panic.
	if _, err := popgraph.ProtocolFactory("majority:0.6", popgraph.Clique(2), r); err == nil {
		t.Error("majority:0.6 on K_2 is a tie (1 of 2) and should be rejected")
	}
}

// TestMajorityFactoryIsTrialSafe — a majority:FRAC factory hands each
// trial a fresh instance over the same deterministic input assignment.
func TestMajorityFactoryIsTrialSafe(t *testing.T) {
	r := popgraph.NewRand(21)
	g := popgraph.Cycle(10)
	factory, err := popgraph.ProtocolFactory("majority:0.7", g, r)
	if err != nil {
		t.Fatal(err)
	}
	a, b := factory(), factory()
	if a == b {
		t.Fatal("factory reused a protocol instance")
	}
	resA := popgraph.Run(g, a, popgraph.NewRand(3), popgraph.Options{})
	resB := popgraph.Run(g, b, popgraph.NewRand(3), popgraph.Options{})
	if resA != resB {
		t.Fatalf("same-seed trials diverged: %+v vs %+v", resA, resB)
	}
	if !resA.Stabilized || a.Leaders() != g.N() {
		t.Fatalf("majority 0.7 should converge to all ones: %+v, leaders %d", resA, a.Leaders())
	}
}

func TestMeasurementFacade(t *testing.T) {
	r := popgraph.NewRand(17)
	g := popgraph.Cycle(32)
	b := popgraph.EstimateBroadcastTime(g, r)
	if b <= 0 {
		t.Fatal("broadcast estimate must be positive")
	}
	h := popgraph.EstimateHittingTime(g, r, true)
	if h < 255.9 || h > 256.1 {
		t.Fatalf("H(C_32) = %v, want 256", h)
	}
	// The Monte-Carlo estimator maximizes noisy means over pairs, so it
	// is upward-biased; only order of magnitude is checked here.
	hmc := popgraph.EstimateHittingTime(g, r, false)
	if hmc < 0.3*h || hmc > 4*h {
		t.Fatalf("MC hitting %v far from exact %v", hmc, h)
	}
	tk := popgraph.PropagationTimes(g, 0, r)
	if len(tk) != 17 {
		t.Fatalf("propagation distances %d", len(tk))
	}
	if popgraph.BroadcastFrom(g, 0, r) < int64(g.N())/2 {
		t.Fatal("broadcast below trivial bound")
	}
	sp := popgraph.AnalyzeSpectrum(g, r)
	if sp.Lambda2 <= 0 || sp.SweepExpansion <= 0 {
		t.Fatalf("spectral profile %+v", sp)
	}
	if sp.ConductanceLower > sp.SweepConductance+1e-3 {
		t.Fatalf("Cheeger lower %v above sweep %v", sp.ConductanceLower, sp.SweepConductance)
	}
}

func TestRunMajorityFacade(t *testing.T) {
	r := popgraph.NewRand(19)
	g := popgraph.Cycle(15)
	inputs := make([]bool, 15)
	for i := 0; i < 9; i++ {
		inputs[i] = true
	}
	res := popgraph.RunMajority(g, inputs, r, 0)
	if !res.Stabilized || !res.Winner {
		t.Fatalf("majority result %+v, want stabilized winner=true", res)
	}
	// Flip the majority.
	for i := range inputs {
		inputs[i] = !inputs[i]
	}
	res = popgraph.RunMajority(g, inputs, r, 0)
	if !res.Stabilized || res.Winner {
		t.Fatalf("flipped majority result %+v, want winner=false", res)
	}
}

// TestRunMajorityDefaultCap — RunMajority routes through the standard
// execution plan, so maxSteps <= 0 means the same DefaultMaxSteps
// default as every other entry point (regression: it used an ad-hoc
// 1<<42 cap), an explicit cap is honored exactly, and the defaulted run
// is byte-identical to running the majority Protocol through RunE with
// a zero cap.
func TestRunMajorityDefaultCap(t *testing.T) {
	g := popgraph.Cycle(13)
	inputs := make([]bool, 13)
	for i := 0; i < 8; i++ {
		inputs[i] = true
	}
	// An explicit tiny cap is respected: the run stops at exactly that
	// many interactions, unstabilized.
	res := popgraph.RunMajority(g, inputs, popgraph.NewRand(5), 3)
	if res.Stabilized || res.Steps != 3 {
		t.Fatalf("capped run %+v, want 3 unstabilized steps", res)
	}
	// maxSteps 0 is the library default, i.e. what RunE resolves for a
	// zero MaxSteps — not some private constant.
	def := popgraph.RunMajority(g, inputs, popgraph.NewRand(5), 0)
	p := popgraph.NewMajority(inputs)
	ref, err := popgraph.RunE(g, p, popgraph.NewRand(5), popgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !def.Stabilized || def.Steps != ref.Steps {
		t.Fatalf("defaulted RunMajority %+v disagrees with RunE %+v", def, ref)
	}
	pl, err := popgraph.Compile(g, popgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if def.Steps > pl.MaxSteps() {
		t.Fatalf("defaulted run took %d steps, beyond the library default cap %d", def.Steps, pl.MaxSteps())
	}
}

func TestNewGraphFacade(t *testing.T) {
	g, err := popgraph.NewGraph(3, []popgraph.Edge{{U: 0, W: 1}, {U: 1, W: 2}}, "vee")
	if err != nil {
		t.Fatal(err)
	}
	if popgraph.Diameter(g) != 2 || popgraph.MaxDegree(g) != 2 || popgraph.MinDegree(g) != 1 {
		t.Fatal("facade properties wrong")
	}
	if _, err := popgraph.NewGraph(2, nil, "broken"); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

// TestCompileAndRunE — the root package re-exports the plan API — bad
// configurations come back as errors naming the problem, good ones
// compile to a named kernel and run identically to Run.
func TestCompileAndRunE(t *testing.T) {
	g := popgraph.Torus(4, 4)
	if _, err := popgraph.Compile(g, popgraph.Options{DropRate: 2}); err == nil {
		t.Fatal("Compile accepted drop rate 2")
	}
	if _, err := popgraph.RunE(g, popgraph.NewSixState(), popgraph.NewRand(1), popgraph.Options{DropRate: -1}); err == nil {
		t.Fatal("RunE accepted drop rate -1")
	}
	pl, err := popgraph.Compile(g, popgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Engine() != "dense-uniform" {
		t.Fatalf("engine %q, want dense-uniform", pl.Engine())
	}
	res, err := popgraph.RunE(g, popgraph.NewSixState(), popgraph.NewRand(5), popgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := popgraph.Run(g, popgraph.NewSixState(), popgraph.NewRand(5), popgraph.Options{}); res != want {
		t.Fatalf("RunE %+v != Run %+v", res, want)
	}
}
