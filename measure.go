package popgraph

import (
	"popgraph/internal/epidemic"
	"popgraph/internal/spectral"
	"popgraph/internal/walk"
)

// EstimateBroadcastTime estimates the worst-case expected broadcast time
// B(G) = max_v E[T(v)] of the one-way epidemic (Section 3) by Monte
// Carlo, probing extreme-degree and random sources.
func EstimateBroadcastTime(g Graph, r *Rand) float64 {
	return epidemic.EstimateB(g, r, epidemic.Options{})
}

// BroadcastFrom runs one epidemic from src and returns its completion
// step T(src).
func BroadcastFrom(g Graph, src int, r *Rand) int64 {
	return epidemic.BroadcastFrom(g, src, r)
}

// PropagationTimes runs one epidemic from src and returns, per distance
// k, the first step at which a node at distance exactly k from src was
// influenced (the distance-k propagation times of Section 3.2).
func PropagationTimes(g Graph, src int, r *Rand) []int64 {
	first, _ := epidemic.PropagationFrom(g, src, r)
	return first
}

// EstimateHittingTime estimates the worst-case expected hitting time
// H(G) of a classic random walk, the quantity in the six-state
// protocol's O(H(G)·n·log n) bound (Theorem 16). Exact (linear algebra)
// for n <= 2048 with exact=true, Monte Carlo otherwise.
func EstimateHittingTime(g Graph, r *Rand, exact bool) float64 {
	if exact {
		return walk.ClassicWorstHittingExact(g)
	}
	return walk.WorstHittingMC(g, r, 8, 8)
}

// SpectralProfile summarizes a graph's expansion estimated via the
// normalized Laplacian.
type SpectralProfile struct {
	// Lambda2 is the spectral gap of the normalized Laplacian.
	Lambda2 float64
	// ConductanceLower and ConductanceUpper are the Cheeger bounds
	// λ₂/2 <= ϕ(G) <= sqrt(2·λ₂).
	ConductanceLower, ConductanceUpper float64
	// SweepConductance and SweepExpansion are explicit-cut upper bounds
	// on ϕ(G) and β(G) from a Fiedler sweep.
	SweepConductance, SweepExpansion float64
}

// AnalyzeSpectrum estimates the graph's expansion profile; β and
// ϕ = β/Δ drive the broadcast bound of Theorem 6 and the fast protocol's
// space bound O(log n · log(Δ/β·log n)).
func AnalyzeSpectrum(g Graph, r *Rand) SpectralProfile {
	res := spectral.Analyze(g, 0, r)
	return SpectralProfile{
		Lambda2:          res.Lambda2,
		ConductanceLower: res.CheegerLower,
		ConductanceUpper: res.CheegerUpper,
		SweepConductance: res.SweepConductance,
		SweepExpansion:   res.SweepExpansion,
	}
}
