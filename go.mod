module popgraph

go 1.24
