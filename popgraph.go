// Package popgraph is a simulation library for stable leader election in
// stochastic population protocols on graphs, reproducing "Near-Optimal
// Leader Election in Population Protocols on Graphs" (Alistarh, Rybicki,
// Voitovych; PODC 2022).
//
// # Model
//
// A population protocol runs on a connected graph G with n anonymous
// nodes. In each discrete step a scheduler samples an ordered pair of
// adjacent nodes uniformly among all 2m ordered pairs; the pair interacts
// (initiator, responder) and both update their local state. Stable leader
// election requires reaching a configuration with exactly one node
// outputting leader that no future schedule can change.
//
// # What the library provides
//
//   - graph families: cliques, cycles, paths, stars, tori, grids,
//     hypercubes, trees, lollipops, barbells, Erdős–Rényi G(n,p), random
//     regular graphs, Watts–Strogatz small worlds, Barabási–Albert
//     preferential attachment, and the paper's renitent lower-bound
//     constructions;
//   - pluggable interaction schedulers beyond the paper's uniform
//     pairwise model: weighted per-edge contact rates, asynchronous
//     degree-proportional node clocks, and bursty link churn (see
//     Scheduler and ParseScheduler); uniform, weighted and node-clock
//     runs all compile to type-specialized block-sampling fast loops,
//     with drop rates and observers riding along (see Compile), and
//     constant-state (Tabular) protocols fuse their whole transition
//     function into those loops as compiled transition tables — no
//     interface calls on the interaction hot path, byte-identical
//     results either way;
//   - the three protocols of the paper: the constant-state six-state
//     token protocol (Theorem 16), the identifier protocol with O(n⁴)
//     states and O(B(G)+n log n) time (Theorem 21), and the fast
//     space-efficient protocol with O(log² n) states and O(B(G)·log n)
//     time (Theorem 24), plus the trivial star protocol and the exact
//     four-state majority extension (NewMajority);
//   - measurement machinery: broadcast and propagation times (Section 3),
//     random-walk hitting and meeting times (Section 4), streak clocks
//     (Section 5.1), isolating covers (Section 6) and influencer-set
//     tooling (Sections 6.3, 7);
//   - a batch-run subsystem (internal/runner, internal/results,
//     internal/sweep) that fans independent Monte Carlo trials across all
//     cores with deterministic per-trial seeds — parallel and serial
//     execution produce byte-identical JSON Lines result logs — driven
//     declaratively by cmd/sweep (grids of graphs × sizes × protocols ×
//     drop rates) and interactively by cmd/popsim;
//   - an experiment harness regenerating every row of the paper's Table 1
//     (see EXPERIMENTS.md, DESIGN.md and cmd/experiments).
//
// # Quickstart
//
//	r := popgraph.NewRand(42)
//	g := popgraph.Torus(16, 16)
//	res := popgraph.Run(g, popgraph.NewSixState(), r, popgraph.Options{})
//	fmt.Printf("leader %d elected after %d interactions\n", res.Leader, res.Steps)
//
// Batches of independent trials should go through the trial runner
// rather than a hand-rolled loop: build per-trial seeds with
// runner.TrialJobs (or derive them via runner.SeedFor) and execute with
// a runner.Pool, which parallelizes across cores without changing any
// result. See README.md for cmd/sweep usage and the result schema, and
// examples/ for complete programs.
package popgraph

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"popgraph/internal/graph"
	"popgraph/internal/sim"
	"popgraph/internal/snapshot"
	"popgraph/internal/xrand"
)

// Rand is the deterministic random number generator used by all
// simulations (xoshiro256++). Create one with NewRand.
type Rand = xrand.Rand

// NewRand returns a generator seeded deterministically from seed.
func NewRand(seed uint64) *Rand { return xrand.New(seed) }

// Graph is a connected simple undirected interaction graph. All functions
// in this package accept any implementation; use the constructors below
// or implement the interface for custom topologies.
type Graph = graph.Graph

// Edge is an undirected edge used by NewGraph.
type Edge = graph.Edge

// NewGraph builds a graph from an explicit edge list. It rejects
// self-loops, duplicates and disconnected graphs.
func NewGraph(n int, edges []Edge, name string) (Graph, error) {
	return graph.NewDense(n, edges, name)
}

// Clique returns the complete graph K_n (implicit representation; cheap
// even for millions of edges).
func Clique(n int) Graph { return graph.NewClique(n) }

// Cycle returns the cycle C_n.
func Cycle(n int) Graph { return graph.Cycle(n) }

// Path returns the path P_n.
func Path(n int) Graph { return graph.Path(n) }

// Star returns the star K_{1,n-1} with node 0 as center.
func Star(n int) Graph { return graph.Star(n) }

// Torus returns the rows×cols wraparound grid (4-regular; dims >= 3).
func Torus(rows, cols int) Graph { return graph.Torus2D(rows, cols) }

// Grid returns the rows×cols grid without wraparound.
func Grid(rows, cols int) Graph { return graph.Grid2D(rows, cols) }

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes.
func Hypercube(dim int) Graph { return graph.Hypercube(dim) }

// Lollipop returns a k-clique with a pathLen-node tail, a classic
// high-hitting-time topology.
func Lollipop(k, pathLen int) Graph { return graph.Lollipop(k, pathLen) }

// Barbell returns two k-cliques joined by a path of pathLen nodes.
func Barbell(k, pathLen int) Graph { return graph.Barbell(k, pathLen) }

// Gnp samples an Erdős–Rényi graph G(n, p) conditioned on connectivity.
func Gnp(n int, p float64, r *Rand) (Graph, error) { return graph.Gnp(n, p, r) }

// WattsStrogatz samples a small-world graph: a ring lattice with k
// neighbors per node (k even), each edge rewired with probability beta,
// conditioned on connectivity. Edge count is always n·k/2.
func WattsStrogatz(n, k int, beta float64, r *Rand) (Graph, error) {
	return graph.WattsStrogatz(n, k, beta, r)
}

// BarabasiAlbert samples a preferential-attachment graph: each new node
// attaches m edges to existing nodes proportionally to degree, growing
// power-law hubs. Connected by construction (1 <= m < n).
func BarabasiAlbert(n, m int, r *Rand) (Graph, error) {
	return graph.BarabasiAlbert(n, m, r)
}

// RandomRegular samples a random d-regular graph conditioned on
// connectivity (3 <= d < n, n·d even).
func RandomRegular(n, d int, r *Rand) (Graph, error) { return graph.RandomRegular(n, d, r) }

// Diameter returns the graph's diameter (exact for known families and
// small graphs, double-sweep lower bound for large unknown ones).
func Diameter(g Graph) int { return graph.Diameter(g) }

// MaxDegree returns Δ(G).
func MaxDegree(g Graph) int { return graph.MaxDegree(g) }

// MinDegree returns δ(G).
func MinDegree(g Graph) int { return graph.MinDegree(g) }

// ParseGraph builds a graph from a compact spec string, used by the CLI
// tools and handy in tests:
//
//	clique:N  cycle:N  path:N  star:N  hypercube:D  torus:RxC  grid:RxC
//	lollipop:K:P  barbell:K:P  gnp:N:P  regular:N:D  ws:N:K:BETA  ba:N:M
//	file:PATH.popg  mmap:PATH.popg
//
// Random families (gnp, regular, ws, ba) consume randomness from r.
//
// file:PATH loads a preprocessed binary snapshot (popgraph-snap/v1,
// written by cmd/preprocess or graphinfo -out) instead of generating a
// graph: one validated read revives the exact CSR arrays the generator
// built, so runs on the loaded graph are byte-identical to runs on the
// original and startup is milliseconds where generation plus
// connectivity conditioning takes seconds. mmap:PATH is the same with
// an opt-in memory mapping on linux (lazy page-in, pages shared across
// processes; the mapping lives as long as the process). Loaded graphs
// carry their snapshot's prebuilt artifacts: see the weighted:snap
// scheduler spec and the preloaded transition tables in
// ProtocolFactory.
//
// Specs whose parameters are out of range for the family (e.g.
// "cycle:2", "hypercube:0", "torus:2x5", negative sizes) return an
// error; ParseGraph never panics on bad input, so CLI tools can report
// the spec instead of crashing.
func ParseGraph(spec string, r *Rand) (Graph, error) {
	if path, ok := strings.CutPrefix(spec, "file:"); ok {
		s, err := snapshot.Load(path)
		if err != nil {
			return nil, fmt.Errorf("popgraph: bad graph spec %q: %w", spec, err)
		}
		return s.Graph, nil
	}
	if path, ok := strings.CutPrefix(spec, "mmap:"); ok {
		s, err := snapshot.LoadMmap(path)
		if err != nil {
			return nil, fmt.Errorf("popgraph: bad graph spec %q: %w", spec, err)
		}
		return s.Graph, nil
	}
	parts := strings.Split(spec, ":")
	kind := parts[0]
	argErr := func() error {
		return fmt.Errorf("popgraph: bad graph spec %q", spec)
	}
	atoi := func(s string) (int, error) { return strconv.Atoi(s) }
	switch kind {
	case "clique", "cycle", "path", "star", "hypercube":
		if len(parts) != 2 {
			return nil, argErr()
		}
		n, err := atoi(parts[1])
		if err != nil {
			return nil, argErr()
		}
		switch kind {
		case "clique":
			return buildGraph(spec, func() Graph { return Clique(n) })
		case "cycle":
			return buildGraph(spec, func() Graph { return Cycle(n) })
		case "path":
			return buildGraph(spec, func() Graph { return Path(n) })
		case "star":
			return buildGraph(spec, func() Graph { return Star(n) })
		default:
			return buildGraph(spec, func() Graph { return Hypercube(n) })
		}
	case "torus", "grid":
		if len(parts) != 2 {
			return nil, argErr()
		}
		dims := strings.Split(parts[1], "x")
		if len(dims) != 2 {
			return nil, argErr()
		}
		rows, err1 := atoi(dims[0])
		cols, err2 := atoi(dims[1])
		if err1 != nil || err2 != nil {
			return nil, argErr()
		}
		if kind == "torus" {
			return buildGraph(spec, func() Graph { return Torus(rows, cols) })
		}
		return buildGraph(spec, func() Graph { return Grid(rows, cols) })
	case "lollipop", "barbell":
		if len(parts) != 3 {
			return nil, argErr()
		}
		k, err1 := atoi(parts[1])
		p, err2 := atoi(parts[2])
		if err1 != nil || err2 != nil {
			return nil, argErr()
		}
		if kind == "lollipop" {
			return buildGraph(spec, func() Graph { return Lollipop(k, p) })
		}
		return buildGraph(spec, func() Graph { return Barbell(k, p) })
	case "gnp":
		if len(parts) != 3 {
			return nil, argErr()
		}
		n, err1 := atoi(parts[1])
		p, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil {
			return nil, argErr()
		}
		g, err := Gnp(n, p, r)
		if err != nil {
			return nil, fmt.Errorf("popgraph: bad graph spec %q: %w", spec, err)
		}
		return g, nil
	case "regular", "ba":
		if len(parts) != 3 {
			return nil, argErr()
		}
		n, err1 := atoi(parts[1])
		d, err2 := atoi(parts[2])
		if err1 != nil || err2 != nil {
			return nil, argErr()
		}
		var (
			g   Graph
			err error
		)
		if kind == "regular" {
			g, err = RandomRegular(n, d, r)
		} else {
			g, err = BarabasiAlbert(n, d, r)
		}
		if err != nil {
			return nil, fmt.Errorf("popgraph: bad graph spec %q: %w", spec, err)
		}
		return g, nil
	case "ws":
		if len(parts) != 4 {
			return nil, argErr()
		}
		n, err1 := atoi(parts[1])
		k, err2 := atoi(parts[2])
		beta, err3 := strconv.ParseFloat(parts[3], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, argErr()
		}
		g, err := WattsStrogatz(n, k, beta, r)
		if err != nil {
			return nil, fmt.Errorf("popgraph: bad graph spec %q: %w", spec, err)
		}
		return g, nil
	default:
		return nil, argErr()
	}
}

// buildGraph converts generator panics on out-of-range parameters (which
// are fine for programmatic constructor calls, where they flag a caller
// bug) into errors carrying the offending CLI spec.
func buildGraph(spec string, build func() Graph) (g Graph, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("popgraph: bad graph spec %q: %v", spec, p)
		}
	}()
	return build(), nil
}

// Scheduler is an interaction-selection policy plugged into a run via
// Options.Scheduler: which ordered pair of adjacent nodes interacts at
// each step, and whether a sampled contact is suppressed (link churn).
// nil and the uniform scheduler mean the paper's model — ordered pairs
// uniform among all 2m — and keep the type-specialized fast loops
// engaged. Schedulers must be built for the same graph passed to Run;
// build them with the constructors below or ParseScheduler.
type Scheduler = sim.Scheduler

// NewUniformScheduler returns the paper's uniform pairwise scheduler
// for g, equivalent to leaving Options.Scheduler nil (byte-identical
// results and random stream).
func NewUniformScheduler(g Graph) Scheduler { return sim.Uniform{G: g} }

// NewWeightedScheduler returns a scheduler sampling undirected edges
// proportionally to rates (one nonnegative rate per edge in ForEachEdge
// order, positive sum) via an alias table, orienting each pair with a
// fair coin. name labels the policy in result logs.
func NewWeightedScheduler(g Graph, name string, rates []float64) (Scheduler, error) {
	return sim.NewWeighted(g, name, rates)
}

// NewNodeClockScheduler returns the asynchronous-clock scheduler: an
// initiator is drawn proportionally to degree, then a uniform neighbor
// responds. The induced pair distribution equals the uniform
// scheduler's, realized through a node-centric draw sequence.
func NewNodeClockScheduler(g Graph) (Scheduler, error) { return sim.NewNodeClock(g) }

// NewChurnScheduler returns a link-churn scheduler: pairs are sampled
// uniformly, but every edge independently alternates between up and
// down states with geometric bursts of mean upLen and downLen steps
// (both >= 1); contacts over down edges are suppressed but still count
// as steps.
func NewChurnScheduler(g Graph, upLen, downLen float64) (Scheduler, error) {
	return sim.NewChurn(g, upLen, downLen)
}

// ParseScheduler builds a scheduler for g from a compact spec string,
// mirroring ParseGraph for the scheduler axis of sweeps and CLIs:
//
//	uniform                  the paper's model (the default everywhere)
//	weighted | weighted:exp  i.i.d. Exp(1) per-edge rates drawn from r
//	weighted:degprod         rate of {u,w} = deg(u)·deg(w)
//	weighted:snap[:NAME]     prebuilt rates from the graph's snapshot
//	node-clock               degree-proportional initiator clocks
//	churn:UP:DOWN            edges flap; mean up/down burst lengths (>= 1)
//
// weighted:snap requires a file:/mmap:-loaded graph and consumes the
// alias table stored in its snapshot (the named weight set, or the
// snapshot's only one when NAME is omitted) — no rates are drawn and
// no alias construction runs. Note the distinction from weighted:exp,
// which redraws rates from r even on a loaded graph so that sweep grid
// cells stay byte-identical between file: and generator specs.
//
// Bad specs return an error naming the spec; ParseScheduler never
// panics on CLI input.
func ParseScheduler(spec string, g Graph, r *Rand) (Scheduler, error) {
	argErr := func(reason string) error {
		if reason == "" {
			return fmt.Errorf("popgraph: bad scheduler spec %q (want uniform | weighted[:exp|:degprod|:snap[:NAME]] | node-clock | churn:UP:DOWN)", spec)
		}
		return fmt.Errorf("popgraph: bad scheduler spec %q: %s", spec, reason)
	}
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "uniform":
		if len(parts) != 1 {
			return nil, argErr("")
		}
		return sim.Uniform{G: g}, nil
	case "weighted":
		model := "exp"
		switch {
		case len(parts) >= 2 && parts[1] == "snap":
			return snapWeighted(spec, parts, g, argErr)
		case len(parts) == 2:
			model = parts[1]
		case len(parts) != 1:
			return nil, argErr("")
		}
		rates := make([]float64, 0, g.M())
		switch model {
		case "exp":
			// i.i.d. exponential contact rates: heterogeneous but
			// memoryless, the standard heterogeneous-rates model. Drawn
			// from r at construction, so a sweep cell's instance is fixed
			// across trials.
			for i := 0; i < g.M(); i++ {
				// Inversion: −ln(1−U) with U in [0, 1) is Exp(1).
				rates = append(rates, -math.Log(1-r.Float64()))
			}
		case "degprod":
			g.ForEachEdge(func(u, w int) {
				rates = append(rates, float64(g.Degree(u))*float64(g.Degree(w)))
			})
		default:
			return nil, argErr(fmt.Sprintf("unknown weight model %q (want exp | degprod)", model))
		}
		s, err := sim.NewWeighted(g, "weighted:"+model, rates)
		if err != nil {
			return nil, fmt.Errorf("popgraph: bad scheduler spec %q: %w", spec, err)
		}
		return s, nil
	case "node-clock", "nodeclock":
		if len(parts) != 1 {
			return nil, argErr("")
		}
		s, err := sim.NewNodeClock(g)
		if err != nil {
			return nil, fmt.Errorf("popgraph: bad scheduler spec %q: %w", spec, err)
		}
		return s, nil
	case "churn":
		if len(parts) != 3 {
			return nil, argErr("")
		}
		up, err1 := strconv.ParseFloat(parts[1], 64)
		down, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil {
			return nil, argErr("")
		}
		s, err := sim.NewChurn(g, up, down)
		if err != nil {
			return nil, fmt.Errorf("popgraph: bad scheduler spec %q: %w", spec, err)
		}
		return s, nil
	default:
		return nil, argErr("")
	}
}

// snapWeighted resolves "weighted:snap[:NAME]": the weighted scheduler
// over the alias table stored in the graph's snapshot. With no NAME the
// snapshot must hold exactly one weight set, so the spec stays
// unambiguous.
func snapWeighted(spec string, parts []string, g Graph, argErr func(string) error) (Scheduler, error) {
	snap := snapshot.Of(g)
	if snap == nil {
		return nil, argErr("graph was not loaded from a snapshot (use a file:/mmap: graph spec)")
	}
	var set *snapshot.WeightSet
	switch len(parts) {
	case 2:
		if len(snap.Weights) != 1 {
			return nil, argErr(fmt.Sprintf("snapshot holds %d weight sets; name one as weighted:snap:NAME", len(snap.Weights)))
		}
		set = &snap.Weights[0]
	case 3:
		if set = snap.WeightSet(parts[2]); set == nil {
			return nil, argErr(fmt.Sprintf("snapshot has no weight set %q", parts[2]))
		}
	default:
		return nil, argErr("")
	}
	s, err := sim.NewWeightedFromAlias(g, "weighted:snap:"+set.Name, set.Alias)
	if err != nil {
		return nil, fmt.Errorf("popgraph: bad scheduler spec %q: %w", spec, err)
	}
	return s, nil
}

// Protocol is a population protocol runnable by Run; see the constructors
// in protocols.go.
type Protocol = sim.Protocol

// Options configures a simulation run. Invalid configurations — a graph
// with fewer than two nodes, a drop rate outside [0, 1), a scheduler
// built for a different graph — are rejected at plan-compile time:
// Compile and RunE return the error, Run panics with it.
type Options = sim.Options

// Result reports the outcome of a run: stabilization step, success flag
// and the elected leader.
type Result = sim.Result

// ExecPlan is a compiled run configuration: Compile validates the
// (graph, scheduler, drop, observer, cap) tuple once and selects the
// fastest execution kernel for it; the plan is immutable and can drive
// any number of runs, concurrent ones included.
type ExecPlan = sim.ExecPlan

// Compile validates opts against g and returns the execution plan a run
// would use, or an error describing the invalid configuration. Use it to
// validate untrusted configurations up front or to inspect the selected
// kernel (ExecPlan.Engine).
func Compile(g Graph, opts Options) (*ExecPlan, error) {
	return sim.Compile(g, opts)
}

// RunE executes the stochastic scheduler on g until the protocol reaches
// a stable configuration (or the step cap from opts is hit), returning
// an error instead of panicking on invalid configurations.
func RunE(g Graph, p Protocol, r *Rand, opts Options) (Result, error) {
	return sim.RunE(g, p, r, opts)
}

// Run is the panicking wrapper around RunE, kept for compatibility and
// convenience with trusted configurations.
func Run(g Graph, p Protocol, r *Rand, opts Options) Result {
	return sim.Run(g, p, r, opts)
}
