package popgraph_test

import (
	"fmt"

	"popgraph"
)

// Example elects a leader on a cycle with the constant-state protocol.
func Example() {
	r := popgraph.NewRand(1)
	g := popgraph.Cycle(16)
	res := popgraph.Run(g, popgraph.NewSixState(), r, popgraph.Options{})
	fmt.Println("stabilized:", res.Stabilized, "single leader:", res.Leader >= 0)
	// Output:
	// stabilized: true single leader: true
}

// ExampleNewFastFor sizes the fast space-efficient protocol for a
// graph: NewFastFor estimates its broadcast time and picks the
// Theorem 24 parameters.
func ExampleNewFastFor() {
	r := popgraph.NewRand(2)
	g := popgraph.Clique(64)
	p := popgraph.NewFastFor(g, r)
	res := popgraph.Run(g, p, r, popgraph.Options{})
	fmt.Println("stabilized:", res.Stabilized, "states:", p.StateCount(g.N()) < 1000)
	// Output:
	// stabilized: true states: true
}

// ExampleParseGraph builds graphs from the compact spec strings the
// CLIs use.
func ExampleParseGraph() {
	r := popgraph.NewRand(3)
	g, err := popgraph.ParseGraph("torus:4x5", r)
	if err != nil {
		panic(err)
	}
	fmt.Println(g.Name(), g.N(), g.M())
	// Output:
	// torus-4x5 20 40
}

// ExampleNewStarProtocol shows the star protocol stabilizing in
// exactly one interaction on stars — the Table 1 "Stars" row.
func ExampleNewStarProtocol() {
	r := popgraph.NewRand(4)
	res := popgraph.Run(popgraph.Star(1000), popgraph.NewStarProtocol(), r, popgraph.Options{})
	fmt.Println("steps:", res.Steps)
	// Output:
	// steps: 1
}

// ExampleCompile exposes the execution plan a run would use: the
// scheduler kernel for the graph shape and, per protocol, the dispatch
// — a constant-state (Tabular) protocol like the six-state baseline
// fuses into a transition-table kernel with no interface calls in the
// hot loop. RunE is the error-returning way to execute the same plan.
func ExampleCompile() {
	r := popgraph.NewRand(6)
	g := popgraph.Torus(8, 8)
	plan, err := popgraph.Compile(g, popgraph.Options{})
	if err != nil {
		panic(err)
	}
	p := popgraph.NewSixState()
	fmt.Println("engine:", plan.Engine(), "dispatch:", plan.ProtocolEngine(p))
	res, err := popgraph.RunE(g, p, r, popgraph.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("stabilized:", res.Stabilized, "leaders:", p.Leaders())
	// Output:
	// engine: dense-uniform dispatch: table
	// stabilized: true leaders: 1
}

// ExampleRunMajority runs exact majority, the extension module the
// paper's conclusions suggest: same token random-walk techniques,
// different problem.
func ExampleRunMajority() {
	r := popgraph.NewRand(5)
	inputs := make([]bool, 21)
	for i := 0; i < 13; i++ {
		inputs[i] = true // 13 of 21 vote "true"
	}
	res := popgraph.RunMajority(popgraph.Cycle(21), inputs, r, 0)
	fmt.Println("winner:", res.Winner)
	// Output:
	// winner: true
}
