// Benchmarks regenerating the paper's evaluation. Two layers:
//
//   - BenchmarkExperiment/E* runs each experiment of the harness (DESIGN.md
//     E1–E14, covering every row of Table 1 and every quantitative lemma)
//     in quick mode; one op = one full experiment.
//   - BenchmarkElection/* measures a single protocol on a single
//     representative graph per Table 1 family and reports the stabilization
//     time as a custom "steps/op" metric, so `go test -bench` output can be
//     read directly against the paper's complexity columns.
//
// Absolute wall-clock numbers depend on the host; the paper comparison is
// about the steps/op shapes (see EXPERIMENTS.md).
package popgraph_test

import (
	"testing"

	"popgraph"
	"popgraph/internal/exp"
)

func BenchmarkExperiment(b *testing.B) {
	for _, e := range exp.All() {
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := e.Run(exp.Config{Seed: 2022, Quick: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// electionCase is one Table 1 cell: a graph family representative and a
// protocol.
type electionCase struct {
	name  string
	graph func(r *popgraph.Rand) popgraph.Graph
	proto string
}

func electionCases() []electionCase {
	fixed := func(g popgraph.Graph) func(*popgraph.Rand) popgraph.Graph {
		return func(*popgraph.Rand) popgraph.Graph { return g }
	}
	gnp := func(r *popgraph.Rand) popgraph.Graph {
		g, err := popgraph.Gnp(256, 0.5, r)
		if err != nil {
			panic(err)
		}
		return g
	}
	var cases []electionCase
	for _, proto := range []string{"six-state", "identifier", "fast"} {
		cases = append(cases,
			electionCase{"General/lollipop-32-32/" + proto, fixed(popgraph.Lollipop(32, 32)), proto},
			electionCase{"Regular/cycle-128/" + proto, fixed(popgraph.Cycle(128)), proto},
			electionCase{"Regular/torus-16x16/" + proto, fixed(popgraph.Torus(16, 16)), proto},
			electionCase{"Clique/clique-256/" + proto, fixed(popgraph.Clique(256)), proto},
			electionCase{"DenseRandom/gnp-256/" + proto, gnp, proto},
		)
	}
	cases = append(cases,
		electionCase{"Star/star-1024/star", fixed(popgraph.Star(1024)), "star"},
		electionCase{"Star/star-256/six-state", fixed(popgraph.Star(256)), "six-state"},
	)
	return cases
}

func BenchmarkElection(b *testing.B) {
	for _, c := range electionCases() {
		b.Run(c.name, func(b *testing.B) {
			setup := popgraph.NewRand(99)
			g := c.graph(setup)
			var totalSteps float64
			for i := 0; i < b.N; i++ {
				p, err := popgraph.ParseProtocol(c.proto, g, setup)
				if err != nil {
					b.Fatal(err)
				}
				r := popgraph.NewRand(uint64(1000 + i))
				res := popgraph.Run(g, p, r, popgraph.Options{})
				if !res.Stabilized {
					b.Fatal("run hit the step cap")
				}
				totalSteps += float64(res.Steps)
			}
			b.ReportMetric(totalSteps/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkEngineThroughput measures raw interactions/second of the
// scheduler + protocol hot loop (six-state on a clique never stabilizes
// quickly at this size, so all b.N iterations are protocol steps).
func BenchmarkEngineThroughput(b *testing.B) {
	g := popgraph.Clique(1024)
	p := popgraph.NewSixState()
	r := popgraph.NewRand(1)
	res := popgraph.Run(g, p, r, popgraph.Options{MaxSteps: 1})
	_ = res
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := g.SampleEdge(r)
		p.Step(u, v)
	}
}

// BenchmarkEngine compares the full engine per interaction — scheduler
// sampling + protocol step + stability check — between the
// type-specialized block-sampling loops and the generic EdgeSampler loop
// (forced via Options.Sampler) on each concrete graph representation.
// ns/op is ns per interaction. Runs that stabilize before b.N steps are
// restarted, so every op is a real interaction.
func BenchmarkEngine(b *testing.B) {
	cases := []struct {
		name string
		g    popgraph.Graph
	}{
		{"clique-1024", popgraph.Clique(1024)},
		{"torus-32x32", popgraph.Torus(32, 32)},
		{"lollipop-64-64", popgraph.Lollipop(64, 64)},
	}
	for _, c := range cases {
		for _, engine := range []string{"specialized", "generic"} {
			b.Run(c.name+"/"+engine, func(b *testing.B) {
				opts := popgraph.Options{}
				if engine == "generic" {
					opts.Sampler = c.g
				}
				r := popgraph.NewRand(1)
				for done := int64(0); done < int64(b.N); {
					opts.MaxSteps = int64(b.N) - done
					done += popgraph.Run(c.g, popgraph.NewSixState(), r, opts).Steps
				}
			})
		}
	}
}

// BenchmarkEngineScheduled compares the specialized scheduler kernels —
// weighted alias-table, node-clock, and the in-kernel drop path — against
// the generic Source-driven reference loop that Options.Reference forces.
// Both consume the identical random stream, so ns/op differences are pure
// engine speedup.
func BenchmarkEngineScheduled(b *testing.B) {
	g := popgraph.Torus(32, 32)
	setup := popgraph.NewRand(7)
	weighted, err := popgraph.ParseScheduler("weighted:exp", g, setup)
	if err != nil {
		b.Fatal(err)
	}
	nodeClock, err := popgraph.ParseScheduler("node-clock", g, setup)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		opts popgraph.Options
	}{
		{"weighted", popgraph.Options{Scheduler: weighted}},
		{"node-clock", popgraph.Options{Scheduler: nodeClock}},
		{"uniform-drop10", popgraph.Options{DropRate: 0.1}},
	}
	for _, c := range cases {
		for _, engine := range []string{"specialized", "reference"} {
			b.Run(c.name+"/"+engine, func(b *testing.B) {
				opts := c.opts
				opts.Reference = engine == "reference"
				r := popgraph.NewRand(1)
				for done := int64(0); done < int64(b.N); {
					opts.MaxSteps = int64(b.N) - done
					done += popgraph.Run(g, popgraph.NewSixState(), r, opts).Steps
				}
			})
		}
	}
}

// BenchmarkBroadcastMeasurement covers the E6 primitive: one epidemic on
// a torus per op.
func BenchmarkBroadcastMeasurement(b *testing.B) {
	g := popgraph.Torus(16, 16)
	r := popgraph.NewRand(1)
	var total float64
	for i := 0; i < b.N; i++ {
		total += float64(popgraph.BroadcastFrom(g, 0, r))
	}
	b.ReportMetric(total/float64(b.N), "steps/op")
}

// BenchmarkHittingExact covers the E9 primitive: exact worst-case hitting
// time of a 96-node dense random graph per op.
func BenchmarkHittingExact(b *testing.B) {
	r := popgraph.NewRand(1)
	g, err := popgraph.Gnp(96, 0.5, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		popgraph.EstimateHittingTime(g, r, true)
	}
}
