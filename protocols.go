package popgraph

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"popgraph/internal/core"
	"popgraph/internal/protocols/beauquier"
	"popgraph/internal/protocols/fastelect"
	"popgraph/internal/protocols/idelect"
	"popgraph/internal/protocols/majority"
	"popgraph/internal/protocols/star"
	"popgraph/internal/sim"
	"popgraph/internal/snapshot"
)

// Role is a node's output: Leader or Follower.
type Role = core.Role

// TransitionTable is a compiled finite-state protocol: the transition
// function δ: S×S → S×S as a flat packed array plus per-state output
// roles and the counter deltas behind O(1) Leaders/Stable maintenance.
// See Tabular.
type TransitionTable = core.TransitionTable

// Tabular is a Protocol whose whole transition function fits in a
// compiled TransitionTable. Compiled execution plans fuse Tabular
// protocols into the type-specialized scheduler kernels, removing every
// interface call from the interaction hot loop; results are
// byte-identical to interface dispatch (the protocol axis consumes no
// randomness). The constant-state protocols — six-state, star, majority
// — are Tabular; identifier and fast, whose state spaces grow with n,
// are not. ExecPlan.ProtocolEngine reports which dispatch a run would
// use; Options.NoTable forces interface dispatch.
type Tabular = sim.Tabular

// Output roles.
const (
	Follower = core.Follower
	Leader   = core.Leader
)

// NewSixState returns the constant-state (6-state) token protocol of
// Beauquier et al., the paper's space baseline: every node starts as a
// leader candidate holding a black token; stabilization takes
// O(H(G)·n·log n) expected steps where H(G) is the worst-case classic
// random-walk hitting time (Theorem 16).
func NewSixState() Protocol { return beauquier.New() }

// NewSixStateWithCandidates returns the six-state protocol started from a
// restricted nonempty candidate set (the Theorem 16 input variant used as
// a backup protocol).
func NewSixStateWithCandidates(candidates []int) Protocol {
	return beauquier.NewWithCandidates(candidates)
}

// NewIdentifier returns the time-efficient identifier protocol of
// Theorem 21: nodes draw ⌈4·log₂ n⌉-bit identifiers from the scheduler's
// randomness and elect the maximum, with the six-state protocol as an
// always-correct backup. O(n⁴) states, O(B(G) + n·log n) expected steps.
func NewIdentifier() Protocol { return idelect.New() }

// NewIdentifierRegular returns the Theorem 21 variant for regular graphs
// with ⌈3·log₂ n⌉-bit identifiers and O(n³) states.
func NewIdentifierRegular() Protocol { return idelect.NewRegular() }

// FastParams are the non-uniform parameters of the fast space-efficient
// protocol (streak length H, elimination threshold L, level cap AlphaL).
type FastParams = fastelect.Params

// FastPaperParams returns Theorem 24's parameters exactly as in the
// paper, given an estimate of the worst-case expected broadcast time
// B(G) (see EstimateBroadcastTime) and the failure exponent τ.
func FastPaperParams(g Graph, broadcastTime float64, tau int) FastParams {
	return fastelect.PaperParams(g, broadcastTime, tau)
}

// FastTunedParams returns parameters with the paper's functional form but
// laptop-scale constants; the O(B(G)·log n) scaling is unchanged.
func FastTunedParams(g Graph, broadcastTime float64) FastParams {
	return fastelect.TunedParams(g, broadcastTime)
}

// NewFast returns the paper's main contribution (Section 5, Theorem 24):
// streak-clock-driven level tournament among high-degree nodes with a
// constant-state backup. O(log n · h(G)) ⊆ O(log² n) states and
// O(B(G)·log n) stabilization time in expectation and w.h.p.
func NewFast(params FastParams) Protocol { return fastelect.New(params) }

// NewFastFor builds the fast protocol for g end to end: it estimates
// B(G) with the given generator and applies the tuned parameters.
func NewFastFor(g Graph, r *Rand) Protocol {
	return fastelect.New(fastelect.TunedParams(g, EstimateBroadcastTime(g, r)))
}

// NewStarProtocol returns the trivial constant-state protocol that
// stabilizes in exactly one interaction on star graphs (Table 1, row
// "Stars"). It rejects non-star graphs at Reset.
func NewStarProtocol() Protocol { return star.New() }

// MajorityResult reports the outcome of a majority computation.
type MajorityResult struct {
	// Steps is the stabilization time in interactions.
	Steps int64
	// Stabilized reports whether a stable configuration was reached.
	Stabilized bool
	// Winner is the stabilized opinion (meaningful when Stabilized).
	Winner bool
}

// NewMajority returns the exact four-state majority protocol over the
// boolean inputs (one per node at Reset; not a tie) as a Protocol, so
// it runs through the same compiled execution plans as the
// leader-election protocols. Output encodes the binary opinion as a
// Role — opinion 1 is Leader, opinion 0 Follower — so Leaders() counts
// the nodes currently outputting 1; a Result's Leader field is usually
// −1, majority being a many-winners problem. The protocol is Tabular.
func NewMajority(inputs []bool) Protocol { return majority.New(inputs) }

// RunMajority runs the extension module: exact four-state majority over
// the boolean inputs (one per node, not a tie) on g, using the same
// token random-walk techniques as the six-state leader election protocol.
// Stabilization takes O(H(G)·n·log n) expected steps. The run goes
// through the standard compiled execution plan, so maxSteps <= 0 means
// the same default cap as every other entry point
// (sim.DefaultMaxSteps of the graph size).
func RunMajority(g Graph, inputs []bool, r *Rand, maxSteps int64) MajorityResult {
	p := majority.New(inputs)
	res := Run(g, p, r, Options{MaxSteps: maxSteps})
	return MajorityResult{
		Steps:      res.Steps,
		Stabilized: res.Stabilized,
		Winner:     res.Stabilized && p.Opinion(0),
	}
}

// ParseProtocol builds a protocol from a CLI spec:
//
//	six-state | identifier | identifier-regular | fast | star | majority:FRAC
//
// "fast" estimates B(G) for g using r and applies tuned parameters.
// "majority:FRAC" (FRAC strictly between 0 and 1) assigns opinion 1 to
// the first round(FRAC·n) nodes; fractions whose rounded count is a tie
// or unanimous (no minority left to out-vote — a degenerate cell that
// stabilizes immediately) are rejected.
func ParseProtocol(spec string, g Graph, r *Rand) (Protocol, error) {
	factory, err := ProtocolFactory(spec, g, r)
	if err != nil {
		return nil, err
	}
	return factory(), nil
}

// ProtocolFactory resolves a CLI protocol spec (see ParseProtocol) to a
// factory producing fresh instances, as required by the parallel trial
// runner: concurrently running trials must not share protocol state.
// Graph-dependent tuning ("fast" estimates B(G) using r) happens once,
// here, not per instance; a tuning failure (degenerate graph, invalid
// derived parameters) comes back as an error, never a panic, so CLI
// tools can report the spec instead of crashing.
func ProtocolFactory(spec string, g Graph, r *Rand) (factory func() Protocol, err error) {
	defer func() {
		if p := recover(); p != nil {
			factory = nil
			err = fmt.Errorf("popgraph: protocol %q on graph %q: %v", spec, g.Name(), p)
		}
	}()
	switch spec {
	case "six-state", "sixstate", "six":
		// A snapshot-loaded graph may carry the protocol's compiled
		// transition table; install it so instances skip the Step-probing
		// rebuild. The table axis is input-independent for six-state (and
		// star below) — majority's table depends on the input margin's
		// sign, so it is never preloaded and always rebuilds.
		if t := preloadedTable(g, "six-state"); t != nil {
			if err := beauquier.New().UseTable(t); err != nil {
				return nil, fmt.Errorf("popgraph: protocol %q on graph %q: %w", spec, g.Name(), err)
			}
			return func() Protocol {
				p := beauquier.New()
				_ = p.UseTable(t)
				return p
			}, nil
		}
		return func() Protocol { return NewSixState() }, nil
	case "identifier", "id":
		return func() Protocol { return NewIdentifier() }, nil
	case "identifier-regular", "id-regular":
		return func() Protocol { return NewIdentifierRegular() }, nil
	case "fast":
		params := FastTunedParams(g, EstimateBroadcastTime(g, r))
		return func() Protocol { return NewFast(params) }, nil
	case "star":
		if t := preloadedTable(g, "star-trivial"); t != nil {
			if err := star.New().UseTable(t); err != nil {
				return nil, fmt.Errorf("popgraph: protocol %q on graph %q: %w", spec, g.Name(), err)
			}
			return func() Protocol {
				p := star.New()
				_ = p.UseTable(t)
				return p
			}, nil
		}
		return func() Protocol { return NewStarProtocol() }, nil
	default:
		if frac, ok := strings.CutPrefix(spec, "majority:"); ok {
			return majorityFactory(spec, frac, g.N())
		}
		return nil, errBadProtocol(spec)
	}
}

// preloadedTable returns the named compiled transition table from the
// graph's snapshot, or nil for in-process graphs and snapshots without
// the table. Tables are named by the protocol instance name they were
// generated from (cmd/preprocess -tables).
func preloadedTable(g Graph, name string) *TransitionTable {
	if snap := snapshot.Of(g); snap != nil {
		return snap.Table(name)
	}
	return nil
}

// majorityFactory resolves a "majority:FRAC" spec: the first
// round(FRAC·n) nodes get opinion 1, deterministically, so a sweep
// cell's input is fixed across trials. Fractions outside (0, 1) are
// spec errors, and so are fractions whose rounded count is a tie
// (never stabilizes; Reset would panic) or unanimous (nothing to
// compute — the run would stabilize on its first interaction).
func majorityFactory(spec, frac string, n int) (func() Protocol, error) {
	f, err := strconv.ParseFloat(frac, 64)
	if err != nil || math.IsNaN(f) || f <= 0 || f >= 1 {
		return nil, fmt.Errorf("popgraph: bad protocol spec %q: fraction must be strictly between 0 and 1", spec)
	}
	ones := int(f*float64(n) + 0.5)
	if 2*ones == n {
		return nil, fmt.Errorf("popgraph: bad protocol spec %q: rounds to a tie (%d of %d opinions) which never stabilizes",
			spec, ones, n)
	}
	if ones <= 0 || ones >= n {
		return nil, fmt.Errorf("popgraph: bad protocol spec %q: rounds to a unanimous input (%d of %d opinions), a degenerate cell with no minority to out-vote",
			spec, ones, n)
	}
	inputs := make([]bool, n)
	for i := 0; i < ones; i++ {
		inputs[i] = true
	}
	return func() Protocol { return NewMajority(inputs) }, nil
}

type badProtocolError string

func (e badProtocolError) Error() string {
	return "popgraph: unknown protocol " + string(e) +
		" (want six-state | identifier | identifier-regular | fast | star | majority:FRAC)"
}

func errBadProtocol(spec string) error { return badProtocolError(spec) }
