package popgraph

import (
	"fmt"

	"popgraph/internal/core"
	"popgraph/internal/protocols/beauquier"
	"popgraph/internal/protocols/fastelect"
	"popgraph/internal/protocols/idelect"
	"popgraph/internal/protocols/majority"
	"popgraph/internal/protocols/star"
)

// Role is a node's output: Leader or Follower.
type Role = core.Role

// Output roles.
const (
	Follower = core.Follower
	Leader   = core.Leader
)

// NewSixState returns the constant-state (6-state) token protocol of
// Beauquier et al., the paper's space baseline: every node starts as a
// leader candidate holding a black token; stabilization takes
// O(H(G)·n·log n) expected steps where H(G) is the worst-case classic
// random-walk hitting time (Theorem 16).
func NewSixState() Protocol { return beauquier.New() }

// NewSixStateWithCandidates returns the six-state protocol started from a
// restricted nonempty candidate set (the Theorem 16 input variant used as
// a backup protocol).
func NewSixStateWithCandidates(candidates []int) Protocol {
	return beauquier.NewWithCandidates(candidates)
}

// NewIdentifier returns the time-efficient identifier protocol of
// Theorem 21: nodes draw ⌈4·log₂ n⌉-bit identifiers from the scheduler's
// randomness and elect the maximum, with the six-state protocol as an
// always-correct backup. O(n⁴) states, O(B(G) + n·log n) expected steps.
func NewIdentifier() Protocol { return idelect.New() }

// NewIdentifierRegular returns the Theorem 21 variant for regular graphs
// with ⌈3·log₂ n⌉-bit identifiers and O(n³) states.
func NewIdentifierRegular() Protocol { return idelect.NewRegular() }

// FastParams are the non-uniform parameters of the fast space-efficient
// protocol (streak length H, elimination threshold L, level cap AlphaL).
type FastParams = fastelect.Params

// FastPaperParams returns Theorem 24's parameters exactly as in the
// paper, given an estimate of the worst-case expected broadcast time
// B(G) (see EstimateBroadcastTime) and the failure exponent τ.
func FastPaperParams(g Graph, broadcastTime float64, tau int) FastParams {
	return fastelect.PaperParams(g, broadcastTime, tau)
}

// FastTunedParams returns parameters with the paper's functional form but
// laptop-scale constants; the O(B(G)·log n) scaling is unchanged.
func FastTunedParams(g Graph, broadcastTime float64) FastParams {
	return fastelect.TunedParams(g, broadcastTime)
}

// NewFast returns the paper's main contribution (Section 5, Theorem 24):
// streak-clock-driven level tournament among high-degree nodes with a
// constant-state backup. O(log n · h(G)) ⊆ O(log² n) states and
// O(B(G)·log n) stabilization time in expectation and w.h.p.
func NewFast(params FastParams) Protocol { return fastelect.New(params) }

// NewFastFor builds the fast protocol for g end to end: it estimates
// B(G) with the given generator and applies the tuned parameters.
func NewFastFor(g Graph, r *Rand) Protocol {
	return fastelect.New(fastelect.TunedParams(g, EstimateBroadcastTime(g, r)))
}

// NewStarProtocol returns the trivial constant-state protocol that
// stabilizes in exactly one interaction on star graphs (Table 1, row
// "Stars"). It rejects non-star graphs at Reset.
func NewStarProtocol() Protocol { return star.New() }

// MajorityResult reports the outcome of a majority computation.
type MajorityResult struct {
	// Steps is the stabilization time in interactions.
	Steps int64
	// Stabilized reports whether a stable configuration was reached.
	Stabilized bool
	// Winner is the stabilized opinion (meaningful when Stabilized).
	Winner bool
}

// RunMajority runs the extension module: exact four-state majority over
// the boolean inputs (one per node, not a tie) on g, using the same
// token random-walk techniques as the six-state leader election protocol.
// Stabilization takes O(H(G)·n·log n) expected steps.
func RunMajority(g Graph, inputs []bool, r *Rand, maxSteps int64) MajorityResult {
	if maxSteps <= 0 {
		maxSteps = 1 << 42
	}
	p := majority.New(inputs)
	steps, ok := p.Run(g, r, maxSteps)
	return MajorityResult{Steps: steps, Stabilized: ok, Winner: ok && p.Opinion(0)}
}

// ParseProtocol builds a protocol from a CLI spec:
//
//	six-state | identifier | identifier-regular | fast | star
//
// "fast" estimates B(G) for g using r and applies tuned parameters.
func ParseProtocol(spec string, g Graph, r *Rand) (Protocol, error) {
	factory, err := ProtocolFactory(spec, g, r)
	if err != nil {
		return nil, err
	}
	return factory(), nil
}

// ProtocolFactory resolves a CLI protocol spec (see ParseProtocol) to a
// factory producing fresh instances, as required by the parallel trial
// runner: concurrently running trials must not share protocol state.
// Graph-dependent tuning ("fast" estimates B(G) using r) happens once,
// here, not per instance; a tuning failure (degenerate graph, invalid
// derived parameters) comes back as an error, never a panic, so CLI
// tools can report the spec instead of crashing.
func ProtocolFactory(spec string, g Graph, r *Rand) (factory func() Protocol, err error) {
	defer func() {
		if p := recover(); p != nil {
			factory = nil
			err = fmt.Errorf("popgraph: protocol %q on graph %q: %v", spec, g.Name(), p)
		}
	}()
	switch spec {
	case "six-state", "sixstate", "six":
		return func() Protocol { return NewSixState() }, nil
	case "identifier", "id":
		return func() Protocol { return NewIdentifier() }, nil
	case "identifier-regular", "id-regular":
		return func() Protocol { return NewIdentifierRegular() }, nil
	case "fast":
		params := FastTunedParams(g, EstimateBroadcastTime(g, r))
		return func() Protocol { return NewFast(params) }, nil
	case "star":
		return func() Protocol { return NewStarProtocol() }, nil
	default:
		return nil, errBadProtocol(spec)
	}
}

type badProtocolError string

func (e badProtocolError) Error() string {
	return "popgraph: unknown protocol " + string(e) +
		" (want six-state | identifier | identifier-regular | fast | star)"
}

func errBadProtocol(spec string) error { return badProtocolError(spec) }
