// Spacetime reproduces the paper's central trade-off on a ladder of
// cliques and of dense random graphs: the identifier protocol is fastest
// but needs Θ(n⁴) states, the six-state protocol needs 6 states but
// Θ(n²) time, and the fast space-efficient protocol (the paper's main
// contribution) sits in between with O(log² n) states and near-broadcast
// time — a log-factor above the identifier protocol, orders of magnitude
// below the constant-state baseline.
package main

import (
	"fmt"

	"popgraph"
	"popgraph/internal/stats"
)

func main() {
	r := popgraph.NewRand(11)
	fmt.Println("space-time trade-off for stable leader election (cliques)")
	fmt.Printf("%6s | %22s | %22s | %22s\n", "n",
		"identifier (n⁴ states)", "fast (log² n states)", "six-state (6 states)")
	fmt.Printf("%6s | %10s %11s | %10s %11s | %10s %11s\n",
		"", "states", "steps", "states", "steps", "states", "steps")

	for _, n := range []int{64, 128, 256, 512} {
		g := popgraph.Clique(n)
		b := popgraph.EstimateBroadcastTime(g, r)

		row := fmt.Sprintf("%6d |", n)
		for _, mk := range []func() popgraph.Protocol{
			func() popgraph.Protocol { return popgraph.NewIdentifierRegular() },
			func() popgraph.Protocol { return popgraph.NewFast(popgraph.FastTunedParams(g, b)) },
			func() popgraph.Protocol { return popgraph.NewSixState() },
		} {
			const trials = 4
			steps := make([]float64, trials)
			var states float64
			for i := range steps {
				p := mk()
				states = p.StateCount(n)
				res := popgraph.Run(g, p, popgraph.NewRand(uint64(100*n+i)), popgraph.Options{})
				if !res.Stabilized {
					panic("did not stabilize")
				}
				steps[i] = float64(res.Steps)
			}
			row += fmt.Sprintf(" %10.3g %11.0f |", states, stats.Mean(steps))
		}
		fmt.Println(row)
	}
	fmt.Println("\nTable 1 predicts: identifier Θ(n·log n), fast O(n·log² n), six-state Θ(n²).")
	fmt.Println("Doubling n should ~2x the first two columns' steps and ~4x the last.")
}
