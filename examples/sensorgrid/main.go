// Sensorgrid models the paper's motivating scenario: a field of anonymous
// sensor nodes with purely local, spatially constrained pairwise
// communication — here a 2-D torus, the classic low-conductance spatial
// topology where clique-based leader election techniques break down
// (Section 1.3).
//
// The program sweeps grid sizes, estimates each grid's broadcast time
// B(G) and conductance, runs the fast space-efficient protocol
// (Theorem 24), and shows that the measured stabilization time tracks
// B(G)·log n while the per-node state count stays polylogarithmic —
// exactly the trade-off a firmware engineer would care about.
package main

import (
	"fmt"
	"math"

	"popgraph"
	"popgraph/internal/stats"
)

func main() {
	r := popgraph.NewRand(7)
	fmt.Println("leader election on sensor grids (k×k torus), fast protocol")
	fmt.Printf("%-12s %8s %10s %10s %12s %14s %8s\n",
		"grid", "nodes", "ϕ (sweep)", "B(G) est", "steps mean", "steps/(B·lgn)", "states")

	var ns, ys []float64
	for _, k := range []int{6, 8, 12, 16, 20} {
		g := popgraph.Torus(k, k)
		b := popgraph.EstimateBroadcastTime(g, r)
		sp := popgraph.AnalyzeSpectrum(g, r)
		params := popgraph.FastTunedParams(g, b)

		const trials = 5
		steps := make([]float64, trials)
		for i := range steps {
			p := popgraph.NewFast(params)
			tr := popgraph.NewRand(uint64(1000*k + i))
			res := popgraph.Run(g, p, tr, popgraph.Options{})
			if !res.Stabilized {
				panic("run did not stabilize")
			}
			steps[i] = float64(res.Steps)
		}
		s := stats.Summarize(steps)
		n := float64(g.N())
		shape := b * math.Log2(n)
		fmt.Printf("%-12s %8d %10.4f %10.0f %12.0f %14.2f %8.0f\n",
			g.Name(), g.N(), sp.SweepConductance, b, s.Mean, s.Mean/shape,
			popgraph.NewFast(params).StateCount(g.N()))
		ns = append(ns, n)
		ys = append(ys, s.Mean)
	}
	slope, r2 := stats.LogLogSlope(ns, ys)
	fmt.Printf("\nscaling: steps ~ n^%.2f (R²=%.3f); paper predicts B(G)·log n = Θ(n^1.5·log² n) on k×k tori\n",
		slope, r2)
}
