// Lowerbound demonstrates the renitent-graph machinery of Section 6: it
// builds the Theorem 39 four-copies construction for a ladder of target
// complexities T, verifies the (4, ℓ)-cover, measures the isolation time
// Y(C) (how long the four symmetric parts evolve indistinguishably) and
// then shows that actual leader election on these graphs indeed takes
// Θ(T) steps — the lower bound is not just a proof artifact but visible
// in simulation.
package main

import (
	"fmt"

	"popgraph"
	"popgraph/internal/renitent"
	"popgraph/internal/stats"
	"popgraph/internal/xrand"
)

func main() {
	r := xrand.New(17)
	const base = 16
	nf := float64(base)

	fmt.Println("Theorem 39: graphs where leader election costs Θ(T), for your choice of T")
	fmt.Printf("%10s %6s %6s %14s %14s %12s\n",
		"target T", "n", "m", "isolation Y", "LE steps", "LE/T")

	for _, mult := range []float64{1, 2, 4, 8} {
		target := mult * nf * nf
		g, cover, err := renitent.Theorem39Graph(base, target, r)
		if err != nil {
			panic(err)
		}
		if err := cover.Validate(g); err != nil {
			panic(err)
		}

		// Isolation time: how long the cover's parts stay causally
		// independent. Theorem 34 turns Pr[Y >= T] >= 1/2 into an Ω(T)
		// lower bound for ANY stable leader election protocol.
		const trials = 8
		ys := make([]float64, trials)
		for i := range ys {
			ys[i] = float64(renitent.IsolationTime(g, cover, r, 1<<40))
		}

		// Election time of the fastest protocol we have: it cannot beat
		// the isolation barrier.
		steps := make([]float64, trials/2)
		for i := range steps {
			p := popgraph.NewIdentifier()
			res := popgraph.Run(g, p, popgraph.NewRand(uint64(300+i)), popgraph.Options{})
			if !res.Stabilized {
				panic("did not stabilize")
			}
			steps[i] = float64(res.Steps)
		}
		fmt.Printf("%10.0f %6d %6d %14.0f %14.0f %12.2f\n",
			target, g.N(), g.M(), stats.Mean(ys), stats.Mean(steps),
			stats.Mean(steps)/target)
	}

	fmt.Println("\nBoth columns scale linearly with T within a construction regime (the last")
	fmt.Println("row switches from the star-based to the clique-based template, Theorem 39's")
	fmt.Println("two cases, so its constant differs): stabilization cannot outrun information.")
	fmt.Println("(Compare the star graph, where one interaction suffices — run examples/quickstart.)")
}
