// Epidemics measures one-way epidemic dynamics (Section 3) across graph
// families and checks the measured worst-case broadcast time B(G) against
// the paper's two-sided bounds:
//
//	(m/Δ)·ln(n−1)  <=  B(G)  <=  m·min{ log n / β, log n + D }
//
// (Lemma 12 and Theorem 6). It also prints the distance-k propagation
// profile on a cycle — the quantity behind the renitent-graph lower
// bounds of Section 6 — next to the Lemma 14 threshold k·m/(Δe³).
package main

import (
	"fmt"

	"popgraph"
	"popgraph/internal/bounds"
	"popgraph/internal/graph"
)

func main() {
	r := popgraph.NewRand(3)

	fmt.Println("worst-case broadcast times vs paper bounds (n = 256)")
	fmt.Printf("%-14s %8s %12s %12s %12s\n", "graph", "m", "lower(L12)", "B measured", "upper(T6)")
	families := []struct {
		g    popgraph.Graph
		beta float64
	}{
		{popgraph.Clique(256), bounds.ExpansionClique(256)},
		{popgraph.Cycle(256), bounds.ExpansionCycle(256)},
		{popgraph.Star(256), bounds.ExpansionStar()},
		{popgraph.Hypercube(8), bounds.ExpansionHypercube()},
		{popgraph.Torus(16, 16), bounds.ExpansionTorusUpper(16)},
	}
	for _, f := range families {
		g := f.g
		b := popgraph.EstimateBroadcastTime(g, r)
		lo := bounds.BroadcastLower(g.N(), g.M(), graph.MaxDegree(g))
		hi := bounds.BroadcastUpper(g.N(), g.M(), popgraph.Diameter(g), f.beta)
		fmt.Printf("%-14s %8d %12.0f %12.0f %12.0f\n", g.Name(), g.M(), lo, b, hi)
	}

	fmt.Println("\npropagation profile on cycle-256 (information crawls: T_k ≈ k·m)")
	fmt.Printf("%8s %14s %16s %12s\n", "k", "T_k measured", "L14 threshold", "T_k/(k·m)")
	g := popgraph.Cycle(256)
	tk := popgraph.PropagationTimes(g, 0, r)
	for _, k := range []int{16, 32, 64, 128} {
		thr := bounds.PropagationLower(k, g.M(), 2)
		fmt.Printf("%8d %14d %16.0f %12.2f\n", k, tk[k], thr, float64(tk[k])/float64(k*g.M()))
	}

	fmt.Println("\ncontrast: on the clique information explodes (T_k flat in k)")
	c := popgraph.Clique(256)
	tkc := popgraph.PropagationTimes(c, 0, r)
	fmt.Printf("clique T_1 = %d steps to reach distance 1 = everyone\n", tkc[1])
}
