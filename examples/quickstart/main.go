// Quickstart: elect a leader on a 16×16 torus with each of the paper's
// protocols and print how long stabilization took.
package main

import (
	"fmt"

	"popgraph"
)

func main() {
	r := popgraph.NewRand(42)
	g := popgraph.Torus(16, 16)
	fmt.Printf("interaction graph: %s (n=%d, m=%d, diameter=%d)\n\n",
		g.Name(), g.N(), g.M(), popgraph.Diameter(g))

	protocols := []popgraph.Protocol{
		popgraph.NewSixState(),    // O(1) states, O(H(G)·n·log n) steps
		popgraph.NewIdentifier(),  // O(n⁴) states, O(B(G)+n·log n) steps
		popgraph.NewFastFor(g, r), // O(log² n) states, O(B(G)·log n) steps
	}
	for _, p := range protocols {
		res := popgraph.Run(g, p, r, popgraph.Options{})
		fmt.Printf("%-22s states=%-10.4g steps=%-10d leader=node %d\n",
			p.Name(), p.StateCount(g.N()), res.Steps, res.Leader)
	}
}
