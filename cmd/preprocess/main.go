// Command preprocess builds a graph once and writes it as a binary
// popgraph-snap/v1 snapshot (see internal/snapshot), so later runs load
// it with file:PATH.popg (or mmap:PATH.popg) in milliseconds instead of
// regenerating it — the point at 10⁶–10⁷ nodes, where generation plus
// connectivity conditioning dominates startup.
//
// Usage:
//
//	preprocess -graph ws:1000000:10:0.1 -seed 1 -out ws1m.popg
//	preprocess -graph ba:100000:4 -out ba.popg -weights exp,degprod -tables six-state,star
//	preprocess -graph ws:4096:8:0.2 -sweep-seed 42 -sweep-index 0 -out cell0.popg
//
// -weights embeds named per-edge rate vectors with prebuilt alias
// tables, consumed by the weighted:snap[:NAME] scheduler spec. -tables
// embeds compiled transition tables for the named constant-state
// protocols, consumed transparently by ProtocolFactory.
//
// -sweep-seed/-sweep-index derive the graph construction seed exactly
// as cmd/sweep does for the i-th expanded graph spec of a grid seeded
// -sweep-seed, so a sweep over file:cell0.popg is byte-identical to the
// same sweep over the generator spec (the preprocess-roundtrip CI gate
// checks this with cmp).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"popgraph"
	"popgraph/internal/protocols/beauquier"
	"popgraph/internal/protocols/star"
	"popgraph/internal/snapshot"
	"popgraph/internal/sweep"
)

func main() {
	var (
		graphSpec  = flag.String("graph", "", "generator graph spec to build, e.g. ws:1000000:10:0.1 (required)")
		seed       = flag.Uint64("seed", 1, "graph construction seed")
		out        = flag.String("out", "", "output snapshot path, conventionally .popg (required)")
		weights    = flag.String("weights", "", "comma-separated weight sets to embed: exp, degprod")
		tables     = flag.String("tables", "", "comma-separated protocol tables to embed: six-state, star")
		sweepSeed  = flag.Uint64("sweep-seed", 0, "derive the construction seed as a sweep with this -seed would")
		sweepIndex = flag.Int("sweep-index", 0, "expanded graph-spec index within that sweep (with -sweep-seed)")
		quiet      = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	if err := run(*graphSpec, *seed, *out, *weights, *tables, *sweepSeed, *sweepIndex, *quiet,
		flagWasSet("sweep-seed")); err != nil {
		fmt.Fprintln(os.Stderr, "preprocess:", err)
		os.Exit(1)
	}
}

// flagWasSet reports whether the named flag appeared on the command
// line, distinguishing -sweep-seed 0 from an absent -sweep-seed.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func run(graphSpec string, seed uint64, out, weightList, tableList string,
	sweepSeed uint64, sweepIndex int, quiet, useSweepSeed bool) error {
	if graphSpec == "" {
		return fmt.Errorf("-graph is required")
	}
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	if strings.HasPrefix(graphSpec, "file:") || strings.HasPrefix(graphSpec, "mmap:") {
		return fmt.Errorf("-graph %q is already a snapshot spec; pass a generator spec", graphSpec)
	}
	if useSweepSeed {
		if sweepIndex < 0 {
			return fmt.Errorf("-sweep-index must be >= 0")
		}
		seed = sweep.GraphBuildSeed(sweepSeed, sweepIndex)
	}

	r := popgraph.NewRand(seed)
	buildStart := time.Now()
	g, err := popgraph.ParseGraph(graphSpec, r)
	if err != nil {
		return err
	}
	buildNs := time.Since(buildStart)

	snap, err := snapshot.Build(g, graphSpec)
	if err != nil {
		return err
	}
	for _, model := range splitList(weightList) {
		if err := addWeights(snap, model, r); err != nil {
			return err
		}
	}
	for _, name := range splitList(tableList) {
		if err := addTable(snap, name); err != nil {
			return err
		}
	}

	encodeStart := time.Now()
	if err := snapshot.WriteFile(out, snap); err != nil {
		return err
	}
	encodeNs := time.Since(encodeStart)

	if quiet {
		return nil
	}
	st, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("graph    %s  (n=%d, m=%d, seed=%d)\n", g.Name(), g.N(), g.M(), seed)
	fmt.Printf("build    %v\n", buildNs)
	fmt.Printf("encode   %v -> %s (%d bytes)\n", encodeNs, out, st.Size())
	for _, w := range snap.Weights {
		fmt.Printf("weights  %s (%d rates + alias)\n", w.Name, len(w.Rates))
	}
	for _, t := range snap.Tables {
		fmt.Printf("table    %s (%d states)\n", t.Name, t.Table.K())
	}
	fmt.Printf("run with -graphs file:%s (or mmap:%s)\n", out, out)
	return nil
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// addWeights embeds one named per-edge weight set. The exp model draws
// i.i.d. Exp(1) rates from r by inversion, continuing the construction
// RNG stream after the graph build — these are the snapshot's own fixed
// rates, distinct from weighted:exp's per-run draws. degprod is the
// deterministic deg(u)·deg(w) model.
func addWeights(snap *snapshot.Snapshot, model string, r *popgraph.Rand) error {
	g := snap.Graph
	rates := make([]float64, 0, g.M())
	switch model {
	case "exp":
		for i := 0; i < g.M(); i++ {
			rates = append(rates, -math.Log(1-r.Float64()))
		}
	case "degprod":
		g.ForEachEdge(func(u, w int) {
			rates = append(rates, float64(g.Degree(u))*float64(g.Degree(w)))
		})
	default:
		return fmt.Errorf("unknown weight model %q (want exp | degprod)", model)
	}
	return snap.AddWeights(model, rates)
}

// addTable embeds one compiled transition table, stored under the
// protocol instance name ProtocolFactory looks up ("six-state",
// "star-trivial"). Only input-independent tables are eligible;
// majority's table depends on the input margin's sign.
func addTable(snap *snapshot.Snapshot, name string) error {
	switch name {
	case "six-state", "sixstate", "six":
		p := beauquier.New()
		return snap.AddTable(p.Name(), p.Table())
	case "star", "star-trivial":
		p := star.New()
		return snap.AddTable(p.Name(), p.Table())
	}
	return fmt.Errorf("unknown table %q (want six-state | star)", name)
}
