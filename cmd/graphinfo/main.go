// Command graphinfo prints the structural and dynamical properties of a
// graph that the paper's bounds are phrased in: size, degrees, diameter,
// expansion/conductance estimates, worst-case broadcast time B(G) and
// classic-walk hitting time H(G), next to the Theorem 6 / Lemma 12
// broadcast bounds.
//
// For a snapshot-loaded graph (-graph file:PATH.popg) it first prints
// the container itself — header, section table with checksums, stored
// artifact names — before the usual graph statistics; -verify also
// runs the deep O(m) content check the encoder performed at write time
// (loaders skip it by design, trusting the checksums). -out PATH.popg
// snapshots any graph spec instead of analyzing it, a lightweight
// alternative to cmd/preprocess.
//
// Usage:
//
//	graphinfo -graph cycle:256 -seed 1
//	graphinfo -graph ws:100000:10:0.1 -out ws.popg
//	graphinfo -graph file:ws.popg -fast
//	graphinfo -graph file:ws.popg -verify -fast
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"popgraph"
	"popgraph/internal/bounds"
	"popgraph/internal/graph"
	"popgraph/internal/snapshot"
)

func main() {
	var (
		graphSpec = flag.String("graph", "cycle:128", "graph spec, e.g. gnp:256:0.5 or file:PATH.popg")
		seed      = flag.Uint64("seed", 1, "random seed")
		skipSlow  = flag.Bool("fast", false, "skip the slower B(G)/H(G) estimates")
		out       = flag.String("out", "", "write the graph as a binary snapshot to this path and exit")
		verify    = flag.Bool("verify", false, "deep-verify a file:/mmap: snapshot's content (the O(m) check loaders skip)")
	)
	flag.Parse()
	if err := run(*graphSpec, *seed, *skipSlow, *out, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
}

func run(spec string, seed uint64, skipSlow bool, out string, verify bool) error {
	if out != "" {
		return writeSnapshot(spec, seed, out)
	}
	_, isSnap := snapshotPath(spec)
	if verify && !isSnap {
		return fmt.Errorf("-verify needs a file:/mmap: snapshot spec, got %q", spec)
	}
	if path, ok := snapshotPath(spec); ok {
		if err := printSnapshot(path); err != nil {
			return err
		}
	}
	r := popgraph.NewRand(seed)
	g, err := popgraph.ParseGraph(spec, r)
	if err != nil {
		return err
	}
	if verify {
		if err := snapshot.Verify(snapshot.Of(g)); err != nil {
			return err
		}
		fmt.Printf("verified   deep content check passed (CSR consistency, alias tables)\n")
	}
	n, m := g.N(), g.M()
	maxDeg, minDeg := popgraph.MaxDegree(g), popgraph.MinDegree(g)
	diam := popgraph.Diameter(g)
	fmt.Printf("graph      %s\n", g.Name())
	fmt.Printf("nodes      %d\n", n)
	fmt.Printf("edges      %d\n", m)
	fmt.Printf("degree     min %d, max %d, regular %v\n", minDeg, maxDeg, graph.IsRegular(g))
	fmt.Printf("diameter   %d\n", diam)

	beta, known := bounds.KnownExpansion(g)
	if known {
		fmt.Printf("expansion  β = %.4g (closed form)\n", beta)
	} else {
		sp := popgraph.AnalyzeSpectrum(g, r)
		beta = sp.SweepExpansion
		fmt.Printf("expansion  β <= %.4g (Fiedler sweep), λ₂ = %.4g\n", sp.SweepExpansion, sp.Lambda2)
		fmt.Printf("conductance %.4g <= ϕ <= %.4g (Cheeger), sweep cut ϕ = %.4g\n",
			sp.ConductanceLower, sp.ConductanceUpper, sp.SweepConductance)
	}
	fmt.Printf("broadcast bounds: %.4g <= B(G) <= %.4g   (Lemma 12 / Theorem 6)\n",
		bounds.BroadcastLower(n, m, maxDeg), bounds.BroadcastUpper(n, m, diam, beta))

	if skipSlow {
		return nil
	}
	b := popgraph.EstimateBroadcastTime(g, r)
	fmt.Printf("B(G)       %.4g (measured)\n", b)
	exact := n <= 192
	h := popgraph.EstimateHittingTime(g, r, exact)
	method := "Monte Carlo"
	if exact {
		method = "exact"
	}
	fmt.Printf("H(G)       %.4g (%s)\n", h, method)
	fmt.Printf("paper stabilization shapes: identifier B+nlogn = %.4g, fast B*logn = %.4g, six-state H*nlogn = %.4g\n",
		bounds.IdentifierUpper(n, b), bounds.FastUpper(n, b), bounds.SixStateUpper(n, h))
	return nil
}

// snapshotPath extracts the snapshot file path from a file:/mmap: spec.
func snapshotPath(spec string) (string, bool) {
	if path, ok := strings.CutPrefix(spec, "file:"); ok {
		return path, true
	}
	return strings.CutPrefix(spec, "mmap:")
}

// printSnapshot prints the container-level view of a .popg file:
// header fields, the section table with offsets/lengths/checksums, and
// the stored artifact names. Inspect verifies every checksum, so a
// clean listing doubles as an integrity check.
func printSnapshot(path string) error {
	info, err := snapshot.Inspect(path)
	if err != nil {
		return err
	}
	fmt.Printf("snapshot   %s (%s, %d bytes)\n", path, info.Magic, info.FileSize)
	fmt.Printf("source     %s\n", info.Source)
	fmt.Printf("stored     %s: n=%d, m=%d, diameter=%d, connected=%v\n",
		info.GraphName, info.N, info.M, info.Diameter, info.Connected)
	fmt.Printf("sections   %d (all checksums verified)\n", len(info.Sections))
	for _, s := range info.Sections {
		name := s.Kind
		if s.Name != "" {
			name += ":" + s.Name
		}
		fmt.Printf("  %-28s offset %8d  length %10d  crc32c %08x\n",
			name, s.Offset, s.Length, s.Checksum)
	}
	fmt.Println()
	return nil
}

// writeSnapshot builds the graph spec and writes it as a snapshot —
// the minimal preprocess path (no weights or tables; use cmd/preprocess
// to embed those).
func writeSnapshot(spec string, seed uint64, out string) error {
	r := popgraph.NewRand(seed)
	g, err := popgraph.ParseGraph(spec, r)
	if err != nil {
		return err
	}
	snap, err := snapshot.Build(g, spec)
	if err != nil {
		return err
	}
	if err := snapshot.WriteFile(out, snap); err != nil {
		return err
	}
	st, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s (n=%d, m=%d, %d bytes)\n", out, g.Name(), g.N(), g.M(), st.Size())
	return nil
}
