// Command graphinfo prints the structural and dynamical properties of a
// graph that the paper's bounds are phrased in: size, degrees, diameter,
// expansion/conductance estimates, worst-case broadcast time B(G) and
// classic-walk hitting time H(G), next to the Theorem 6 / Lemma 12
// broadcast bounds.
//
// Usage:
//
//	graphinfo -graph cycle:256 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"popgraph"
	"popgraph/internal/bounds"
	"popgraph/internal/graph"
)

func main() {
	var (
		graphSpec = flag.String("graph", "cycle:128", "graph spec, e.g. gnp:256:0.5")
		seed      = flag.Uint64("seed", 1, "random seed")
		skipSlow  = flag.Bool("fast", false, "skip the slower B(G)/H(G) estimates")
	)
	flag.Parse()
	if err := run(*graphSpec, *seed, *skipSlow); err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
}

func run(spec string, seed uint64, skipSlow bool) error {
	r := popgraph.NewRand(seed)
	g, err := popgraph.ParseGraph(spec, r)
	if err != nil {
		return err
	}
	n, m := g.N(), g.M()
	maxDeg, minDeg := popgraph.MaxDegree(g), popgraph.MinDegree(g)
	diam := popgraph.Diameter(g)
	fmt.Printf("graph      %s\n", g.Name())
	fmt.Printf("nodes      %d\n", n)
	fmt.Printf("edges      %d\n", m)
	fmt.Printf("degree     min %d, max %d, regular %v\n", minDeg, maxDeg, graph.IsRegular(g))
	fmt.Printf("diameter   %d\n", diam)

	beta, known := bounds.KnownExpansion(g)
	if known {
		fmt.Printf("expansion  β = %.4g (closed form)\n", beta)
	} else {
		sp := popgraph.AnalyzeSpectrum(g, r)
		beta = sp.SweepExpansion
		fmt.Printf("expansion  β <= %.4g (Fiedler sweep), λ₂ = %.4g\n", sp.SweepExpansion, sp.Lambda2)
		fmt.Printf("conductance %.4g <= ϕ <= %.4g (Cheeger), sweep cut ϕ = %.4g\n",
			sp.ConductanceLower, sp.ConductanceUpper, sp.SweepConductance)
	}
	fmt.Printf("broadcast bounds: %.4g <= B(G) <= %.4g   (Lemma 12 / Theorem 6)\n",
		bounds.BroadcastLower(n, m, maxDeg), bounds.BroadcastUpper(n, m, diam, beta))

	if skipSlow {
		return nil
	}
	b := popgraph.EstimateBroadcastTime(g, r)
	fmt.Printf("B(G)       %.4g (measured)\n", b)
	exact := n <= 192
	h := popgraph.EstimateHittingTime(g, r, exact)
	method := "Monte Carlo"
	if exact {
		method = "exact"
	}
	fmt.Printf("H(G)       %.4g (%s)\n", h, method)
	fmt.Printf("paper stabilization shapes: identifier B+nlogn = %.4g, fast B*logn = %.4g, six-state H*nlogn = %.4g\n",
		bounds.IdentifierUpper(n, b), bounds.FastUpper(n, b), bounds.SixStateUpper(n, h))
	return nil
}
