// Command experiments regenerates the paper's evaluation: every Table 1
// row and every quantitative lemma has an experiment (E1–E20, indexed in
// DESIGN.md) that prints paper-vs-measured tables.
//
// Usage:
//
//	experiments -list
//	experiments -run E3 -quick
//	experiments -run all -markdown > results.md
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"popgraph/internal/exp"
)

func main() {
	var (
		runID    = flag.String("run", "all", "experiment id (E1..E20) or 'all'")
		list     = flag.Bool("list", false, "list experiments and exit")
		quick    = flag.Bool("quick", false, "smaller ladders and trial counts")
		markdown = flag.Bool("markdown", false, "render tables as Markdown")
		seed     = flag.Uint64("seed", 2022, "base random seed")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Name, e.Claim)
		}
		return
	}

	cfg := exp.Config{Seed: *seed, Quick: *quick, Out: os.Stdout, Markdown: *markdown}
	var todo []exp.Experiment
	if *runID == "all" {
		todo = exp.All()
	} else {
		e, ok := exp.ByID(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", *runID)
			os.Exit(1)
		}
		todo = []exp.Experiment{e}
	}
	for _, e := range todo {
		fmt.Printf("--- %s: %s\n    claim: %s\n\n", e.ID, e.Name, e.Claim)
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("    (%s finished in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
