// Command bench times the simulation engine on a fixed graph ×
// scheduler × protocol × drop grid and writes the machine-readable
// BENCH_sim.json tracked at the repo root, so engine throughput is
// measured the same way PR-over-PR.
//
// Every cell is timed on the specialized kernel its execution plan
// compiles to (dense/clique uniform, weighted alias-table, node-clock —
// with drop rates running inside the fast loops) and on the generic
// Source-driven reference loop, over the identical interaction
// sequence; cells whose plan is the generic kernel anyway (churn) are
// timed once. The report therefore records a real fast-vs-reference
// speedup per scheduler and per drop rate, and the -compare gate guards
// each specialized loop independently.
//
// Usage:
//
//	bench                             # full grid, writes BENCH_sim.json
//	bench -quick                      # smoke-sized grid (CI)
//	bench -out "" -q                  # measure only, write nothing
//	bench -quick -compare BENCH_sim.json
//	                                  # regression gate: exit 1 if any cell's
//	                                  # specialized ns/step is >30% above the
//	                                  # committed baseline's; prints the full
//	                                  # per-cell delta table either way
//	bench -quick -compare BENCH_sim.json -summary delta.md
//	                                  # also write the delta table as markdown
//	                                  # (CI appends it to the step summary)
package main

import (
	"flag"
	"fmt"
	"os"

	"popgraph/internal/bench"
	"popgraph/internal/table"
	"popgraph/internal/telemetry"
)

func main() {
	var (
		out     = flag.String("out", "BENCH_sim.json", "JSON report path (empty = skip)")
		seed    = flag.Uint64("seed", 2022, "base random seed for the timed trials")
		quick   = flag.Bool("quick", false, "shrink the grid for a smoke run")
		quiet   = flag.Bool("q", false, "suppress per-cell progress output")
		compare = flag.String("compare", "", "baseline BENCH_sim.json to gate against (exit 1 on regression)")
		tol     = flag.Float64("compare-tol", 0.30, "regression tolerance for -compare as a fraction (0.30 = 30%)")
		summary = flag.String("summary", "", "write the -compare delta table as markdown to this file (CI step summaries)")
		metrics = flag.String("metrics", "", "write the aggregated telemetry snapshot of all timed trials as JSON to this path")
		pprof   = flag.String("pprof", "", "serve net/http/pprof and /metrics on this address while the grid runs (e.g. :6060)")
		batch   = flag.Int("batch", 0, fmt.Sprintf("lockstep batch width for the batched timing axis (0 = grid default %d, 1 = disable)", bench.DefaultBatch))
	)
	flag.Parse()
	if err := run(*out, *seed, *quick, *quiet, *compare, *tol, *summary, *metrics, *pprof, *batch); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(out string, seed uint64, quick, quiet bool, compare string, tol float64,
	summary, metrics, pprofAddr string, batch int) error {
	if batch < 0 {
		return fmt.Errorf("-batch must be >= 0, got %d", batch)
	}
	// Flag-consistency errors must fire before the grid runs — the full
	// grid takes minutes, and discovering a bad flag combination after
	// it would waste the whole measurement.
	if summary != "" && compare == "" {
		return fmt.Errorf("-summary requires -compare (the delta table diffs against a baseline)")
	}
	// Load the baseline before anything writes: -out and -compare may
	// name the same file (`bench -compare BENCH_sim.json` with the
	// default -out), and writing first would clobber the baseline and
	// then "gate" the fresh report against itself.
	var base bench.Report
	if compare != "" {
		if tol < 0 {
			return fmt.Errorf("-compare-tol must be >= 0, got %v", tol)
		}
		f, err := os.Open(compare)
		if err != nil {
			return err
		}
		base, err = bench.ReadJSON(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("baseline %s: %w", compare, err)
		}
	}

	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if quiet {
		logf = nil
	}
	// The flight recorder rides every timed trial: chunk-granularity
	// accounting is cheap enough that metered numbers stay inside the
	// -compare gate's noise band, and the dispatch mix in the summary
	// proves which kernels the grid actually exercised.
	meter := new(telemetry.Counters)
	if pprofAddr != "" {
		addr, stop, err := telemetry.StartDebugServer(pprofAddr, meter)
		if err != nil {
			return err
		}
		defer stop()
		if !quiet {
			fmt.Fprintf(os.Stderr, "bench: pprof at http://%s/debug/pprof/, metrics at http://%s/metrics\n", addr, addr)
		}
	}
	grid := bench.DefaultGrid(quick)
	if batch > 0 {
		for i := range grid {
			grid[i].Batch = batch
		}
	}
	rep, err := bench.RunMetered(grid, seed, logf, meter)
	if err != nil {
		return err
	}
	// The startup axis: snapshot build-once vs load-many timings on a
	// large graph, recorded in the report but never gated (Compare
	// matches Results only — load time is I/O-bound and machine-noisy).
	rep.Startup, err = bench.RunStartup(bench.DefaultStartup(quick), seed, logf)
	if err != nil {
		return err
	}
	if metrics != "" {
		if err := telemetry.WriteSnapshotFile(metrics, meter); err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "bench: wrote %s\n", metrics)
		}
	}

	t := table.New(fmt.Sprintf("engine throughput (%s, %s/%s, seed %d)",
		rep.GoVersion, rep.GOOS, rep.GOARCH, rep.Seed),
		"graph", "sched", "protocol", "drop", "engine", "n", "m",
		"spec ns/step", "iface ns/step", "gen ns/step", "speedup", "table", "batch")
	for _, m := range rep.Results {
		batchCol := "—"
		if m.BatchSpeedup > 0 {
			batchCol = fmt.Sprintf("%.2fx@%d", m.BatchSpeedup, m.Batch)
		}
		t.AddRow(m.Graph, m.Scheduler, m.Protocol, m.Drop,
			m.Engine+"/"+m.ProtocolEngine, m.N, m.M,
			m.Specialized.NsPerStep, m.Interface.NsPerStep, m.Generic.NsPerStep,
			fmt.Sprintf("%.2fx", m.Speedup), fmt.Sprintf("%.2fx", m.TableSpeedup), batchCol)
	}
	t.WriteText(os.Stdout)
	fmt.Printf("max speedup: %.2fx  max table speedup: %.2fx  max batch speedup: %.2fx\n",
		rep.MaxSpeedup, rep.MaxTableSpeedup, rep.MaxBatchSpeedup)
	if len(rep.Startup) > 0 {
		st := table.New("snapshot startup (build once vs load)",
			"graph", "n", "m", "bytes", "build ms", "load ms", "mmap ms", "speedup")
		for _, s := range rep.Startup {
			st.AddRow(s.GraphSpec, s.N, s.M, s.SnapshotBytes,
				fmt.Sprintf("%.1f", float64(s.BuildNs)/1e6),
				fmt.Sprintf("%.2f", float64(s.LoadNs)/1e6),
				fmt.Sprintf("%.2f", float64(s.MmapLoadNs)/1e6),
				fmt.Sprintf("%.0fx", s.LoadSpeedup))
		}
		st.WriteText(os.Stdout)
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "bench: wrote %s\n", out)
		}
	}

	if compare != "" {
		// The full per-cell delta picture first — the gate's pass/fail
		// verdict alone hides how close each cell sits to the threshold.
		deltas := bench.DeltaTable(rep, base, tol)
		dt := table.New(fmt.Sprintf("per-cell delta vs %s (best-trial specialized ns/step, tolerance %.0f%%)",
			compare, 100*tol),
			"graph", "sched", "protocol", "drop", "engine",
			"base ns/step", "cur ns/step", "delta", "batch", "status")
		for _, d := range deltas {
			delta := "—"
			if d.Status == "ok" || d.Status == "regressed" {
				delta = fmt.Sprintf("%+.1f%%", 100*d.Delta)
			}
			batchCol := "—"
			if d.BatchSpeedup > 0 {
				batchCol = fmt.Sprintf("%.2fx", d.BatchSpeedup)
			}
			dt.AddRow(d.GraphSpec, d.Scheduler, d.Protocol, d.Drop,
				d.Engine+"/"+d.ProtocolEngine, d.BaseNs, d.CurNs, delta, batchCol, d.Status)
		}
		dt.WriteText(os.Stdout)
		if summary != "" {
			f, err := os.Create(summary)
			if err != nil {
				return err
			}
			if err := bench.WriteDeltaMarkdown(f, deltas, tol); err != nil {
				f.Close()
				return err
			}
			// Top-line flight-recorder counters ride along under the delta
			// table, so the step summary answers "what did this run
			// actually execute" next to "how fast".
			fmt.Fprintln(f)
			if err := bench.WriteTelemetryMarkdown(f, meter.Snapshot()); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			if !quiet {
				fmt.Fprintf(os.Stderr, "bench: wrote %s\n", summary)
			}
		}
		if msgs := bench.Compare(rep, base, tol); len(msgs) > 0 {
			for _, msg := range msgs {
				fmt.Fprintln(os.Stderr, "bench: REGRESSION:", msg)
			}
			return fmt.Errorf("%d of %d cells regressed beyond %.0f%% of %s",
				len(msgs), len(rep.Results), 100*tol, compare)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "bench: no cell regressed beyond %.0f%% of %s\n",
				100*tol, compare)
		}
	}
	return nil
}
