// Command bench times the simulation engine on a fixed graph × protocol
// grid and writes the machine-readable BENCH_sim.json tracked at the
// repo root, so scheduler-engine throughput is measured the same way
// PR-over-PR.
//
// Every cell is timed on both engines — the type-specialized
// block-sampling hot loops and the generic EdgeSampler reference loop —
// over the identical interaction sequence, and the report records
// ns/step, steps/sec and the specialized-over-generic speedup per cell.
//
// Usage:
//
//	bench                  # full grid, writes BENCH_sim.json
//	bench -quick           # smoke-sized grid (CI)
//	bench -out "" -q       # measure only, write nothing, table to stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"popgraph/internal/bench"
	"popgraph/internal/table"
)

func main() {
	var (
		out   = flag.String("out", "BENCH_sim.json", "JSON report path (empty = skip)")
		seed  = flag.Uint64("seed", 2022, "base random seed for the timed trials")
		quick = flag.Bool("quick", false, "shrink the grid for a smoke run")
		quiet = flag.Bool("q", false, "suppress per-cell progress output")
	)
	flag.Parse()
	if err := run(*out, *seed, *quick, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(out string, seed uint64, quick, quiet bool) error {
	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if quiet {
		logf = nil
	}
	rep, err := bench.Run(bench.DefaultGrid(quick), seed, logf)
	if err != nil {
		return err
	}

	t := table.New(fmt.Sprintf("engine throughput (%s, %s/%s, seed %d)",
		rep.GoVersion, rep.GOOS, rep.GOARCH, rep.Seed),
		"graph", "protocol", "n", "m", "spec ns/step", "spec steps/s",
		"gen ns/step", "gen steps/s", "speedup")
	for _, m := range rep.Results {
		t.AddRow(m.Graph, m.Protocol, m.N, m.M,
			m.Specialized.NsPerStep, m.Specialized.StepsPerSec,
			m.Generic.NsPerStep, m.Generic.StepsPerSec,
			fmt.Sprintf("%.2fx", m.Speedup))
	}
	t.WriteText(os.Stdout)
	fmt.Printf("max speedup: %.2fx\n", rep.MaxSpeedup)

	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "bench: wrote %s\n", out)
	}
	return nil
}
