// Popcheck is the repository's determinism lint: a multichecker running
// the five analyzers in internal/analyzers/suite over module packages.
//
// Usage:
//
//	popcheck [-list] [-disable name,name] [packages]
//
// Packages default to ./... and accept the loader's pattern forms
// ("./internal/sim/...", "popgraph/internal/results", ...). Findings
// print one per line as
//
//	file:line:col: analyzer: message
//
// and the exit status is 0 when clean, 1 when there are findings, and
// 2 when the module fails to load or type-check. Suppress individual
// findings with "//popcheck:ignore <analyzer> <reason>" on or above the
// offending line; see package popgraph/internal/analyzers for the full
// directive syntax.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"popgraph/internal/analyzers"
	"popgraph/internal/analyzers/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("popcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzers and exit")
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	active := suite.Analyzers()
	if *list {
		for _, a := range active {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *disable != "" {
		skip := make(map[string]bool)
		for _, name := range strings.Split(*disable, ",") {
			skip[strings.TrimSpace(name)] = true
		}
		kept := active[:0]
		for _, a := range active {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		active = kept
	}

	loader, err := analyzers.NewLoader("")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	broken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "popcheck: %s: %v\n", pkg.Path, terr)
			broken = true
		}
	}
	if broken {
		return 2
	}

	diags, err := analyzers.Check(pkgs, active)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n",
			relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relPath shortens an absolute file name to be relative to the working
// directory when that makes it shorter and does not escape upward.
func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	rel, err := filepath.Rel(wd, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return rel
}
