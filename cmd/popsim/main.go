// Command popsim runs a leader election protocol on a graph and reports
// stabilization statistics. Trials execute in parallel through the batch
// runner (internal/runner) with deterministic per-trial seeds, so the
// reported statistics are identical for any -workers value.
//
// Usage:
//
//	popsim -graph torus:16x16 -protocol fast -trials 10 -seed 42
//	popsim -graph ba:256:3 -scheduler churn:64:16 -protocol six-state
//
// Expensive graph statistics (the diameter is an O(n·m) BFS on large
// random graphs) are skipped by default and printed as "D=?"; pass
// -graph-stats (or -v) to compute them.
//
// Flight-recorder flags: -metrics PATH writes an aggregated telemetry
// snapshot (steps, RNG refills, kernel dispatch mix, latency
// histograms) as JSON after the runs; -pprof ADDR serves
// net/http/pprof plus the live snapshot at /metrics while they run.
// Telemetry never touches the random stream, so results are identical
// with or without it.
//
// Graphs: clique:N cycle:N path:N star:N hypercube:D torus:RxC grid:RxC
// lollipop:K:P barbell:K:P gnp:N:P regular:N:D ws:N:K:BETA ba:N:M, or a
// preprocessed binary snapshot: file:PATH.popg (read) / mmap:PATH.popg
// (memory-mapped; build one with cmd/preprocess or graphinfo -out).
// Protocols: six-state | identifier | identifier-regular | fast | star | majority:FRAC.
// Schedulers: uniform | weighted[:exp|:degprod|:snap[:NAME]] |
// node-clock | churn:UP:DOWN.
package main

import (
	"flag"
	"fmt"
	"os"

	"popgraph"
	"popgraph/internal/runner"
	"popgraph/internal/sim"
	"popgraph/internal/stats"
	"popgraph/internal/telemetry"
)

func main() {
	var (
		graphSpec = flag.String("graph", "clique:128", "graph spec, e.g. torus:16x16 or file:PATH.popg")
		schedSpec = flag.String("scheduler", "uniform", "interaction scheduler: uniform|weighted[:exp|:degprod]|node-clock|churn:UP:DOWN")
		protoSpec = flag.String("protocol", "six-state", "protocol: six-state|identifier|identifier-regular|fast|star|majority:FRAC")
		seed      = flag.Uint64("seed", 1, "base random seed")
		trialsN   = flag.Int("trials", 5, "number of independent runs")
		maxSteps  = flag.Int64("max-steps", 0, "step cap per run (0 = automatic 72·n⁴·log₂n, sized for the slowest protocol/graph pair — set explicitly for large n if runs may not stabilize)")
		dropRate  = flag.Float64("drop", 0, "interaction drop rate in [0,1)")
		workers   = flag.Int("workers", 0, "parallel runs (0 = all cores)")
		verbose   = flag.Bool("v", false, "print every run (implies -graph-stats)")
		stats     = flag.Bool("graph-stats", false, "compute expensive graph statistics (diameter: O(n·m) BFS on large random graphs) at startup")
		metrics   = flag.String("metrics", "", "write the aggregated telemetry snapshot as JSON to this path")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof and /metrics on this address (e.g. :6060)")
	)
	flag.Parse()
	if err := run(*graphSpec, *schedSpec, *protoSpec, *seed, *trialsN, *maxSteps, *dropRate, *workers, *verbose, *stats, *metrics, *pprofAddr); err != nil {
		fmt.Fprintln(os.Stderr, "popsim:", err)
		os.Exit(1)
	}
}

func run(graphSpec, schedSpec, protoSpec string, seed uint64, trials int, maxSteps int64,
	dropRate float64, workers int, verbose, graphStats bool, metrics, pprofAddr string) error {
	r := popgraph.NewRand(seed)
	g, err := popgraph.ParseGraph(graphSpec, r)
	if err != nil {
		return err
	}
	// The diameter is O(n·m) BFS for families without a closed form
	// (ws/ba/gnp), which dwarfs small sweeps on large graphs — only
	// compute it when asked.
	diam := "?"
	if verbose || graphStats {
		diam = fmt.Sprintf("%d", popgraph.Diameter(g))
	}
	fmt.Printf("graph %s: n=%d m=%d Δ=%d D=%s\n",
		g.Name(), g.N(), g.M(), popgraph.MaxDegree(g), diam)

	if dropRate < 0 || dropRate >= 1 {
		return fmt.Errorf("drop rate %v outside [0, 1)", dropRate)
	}
	sched, err := popgraph.ParseScheduler(schedSpec, g, r)
	if err != nil {
		return err
	}
	if sched.Name() != "uniform" {
		fmt.Printf("scheduler %s\n", sched.Name())
	}
	factory, err := popgraph.ProtocolFactory(protoSpec, g, r)
	if err != nil {
		return err
	}
	// Flight recorder: only allocated when something consumes it — an
	// unmetered run never pays even the chunk-granularity accounting.
	var meter *telemetry.Counters
	if metrics != "" || pprofAddr != "" {
		meter = new(telemetry.Counters)
	}
	if pprofAddr != "" {
		addr, stop, err := telemetry.StartDebugServer(pprofAddr, meter)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "popsim: pprof at http://%s/debug/pprof/, metrics at http://%s/metrics\n", addr, addr)
	}
	jobs := runner.TrialJobs(g, factory, seed, trials,
		sim.Options{MaxSteps: maxSteps, DropRate: dropRate, Scheduler: sched})
	outcomes := runner.Pool{Workers: workers, Meter: meter}.Run(jobs)
	if metrics != "" {
		if err := telemetry.WriteSnapshotFile(metrics, meter); err != nil {
			return err
		}
		s := meter.Snapshot()
		fmt.Fprintf(os.Stderr, "popsim: wrote %s (%d steps, %.3g steps/sec)\n",
			metrics, s.StepsExecuted, s.StepsPerSec())
	}

	steps := make([]float64, 0, trials)
	failed, crashed := 0, 0
	for i, o := range outcomes {
		if o.Failed() {
			crashed++
			fmt.Fprintf(os.Stderr, "popsim: run %d crashed: %s\n", i, o.Err)
			continue
		}
		if verbose {
			fmt.Printf("  run %2d: steps=%-12d stabilized=%-5v leader=%d\n",
				i, o.Result.Steps, o.Result.Stabilized, o.Result.Leader)
		}
		if !o.Result.Stabilized {
			failed++
			continue
		}
		steps = append(steps, float64(o.Result.Steps))
	}
	if len(steps) == 0 {
		if crashed > 0 {
			return fmt.Errorf("all %d runs failed (%d crashed)", trials, crashed)
		}
		return fmt.Errorf("no run stabilized within the step cap")
	}
	s := stats.Summarize(steps)
	p := factory()
	fmt.Printf("protocol %s: states=%.4g\n", p.Name(), p.StateCount(g.N()))
	fmt.Printf("stabilization steps: mean=%.0f ±%.0f (95%% CI)  median=%.0f  min=%.0f  max=%.0f  runs=%d",
		s.Mean, s.CI95(), s.Median, s.Min, s.Max, s.N)
	if failed > 0 {
		fmt.Printf("  (cap hit in %d runs)", failed)
	}
	if crashed > 0 {
		fmt.Printf("  (%d runs crashed)", crashed)
	}
	fmt.Println()
	return nil
}
