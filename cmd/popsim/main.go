// Command popsim runs a leader election protocol on a graph and reports
// stabilization statistics.
//
// Usage:
//
//	popsim -graph torus:16x16 -protocol fast -trials 10 -seed 42
//
// Graphs: clique:N cycle:N path:N star:N hypercube:D torus:RxC grid:RxC
// lollipop:K:P barbell:K:P gnp:N:P regular:N:D.
// Protocols: six-state | identifier | identifier-regular | fast | star.
package main

import (
	"flag"
	"fmt"
	"os"

	"popgraph"
	"popgraph/internal/stats"
)

func main() {
	var (
		graphSpec = flag.String("graph", "clique:128", "graph spec, e.g. torus:16x16")
		protoSpec = flag.String("protocol", "six-state", "protocol: six-state|identifier|identifier-regular|fast|star")
		seed      = flag.Uint64("seed", 1, "base random seed")
		trialsN   = flag.Int("trials", 5, "number of independent runs")
		maxSteps  = flag.Int64("max-steps", 0, "step cap per run (0 = automatic)")
		verbose   = flag.Bool("v", false, "print every run")
	)
	flag.Parse()
	if err := run(*graphSpec, *protoSpec, *seed, *trialsN, *maxSteps, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "popsim:", err)
		os.Exit(1)
	}
}

func run(graphSpec, protoSpec string, seed uint64, trials int, maxSteps int64, verbose bool) error {
	r := popgraph.NewRand(seed)
	g, err := popgraph.ParseGraph(graphSpec, r)
	if err != nil {
		return err
	}
	fmt.Printf("graph %s: n=%d m=%d Δ=%d D=%d\n",
		g.Name(), g.N(), g.M(), popgraph.MaxDegree(g), popgraph.Diameter(g))

	// A protocol instance is reusable across runs: sim.Run resets it.
	p, err := popgraph.ParseProtocol(protoSpec, g, r)
	if err != nil {
		return err
	}
	steps := make([]float64, 0, trials)
	failed := 0
	for i := 0; i < trials; i++ {
		tr := popgraph.NewRand(seed + uint64(i)*0x9e3779b97f4a7c15)
		res := popgraph.Run(g, p, tr, popgraph.Options{MaxSteps: maxSteps})
		if verbose {
			fmt.Printf("  run %2d: steps=%-12d stabilized=%-5v leader=%d\n",
				i, res.Steps, res.Stabilized, res.Leader)
		}
		if !res.Stabilized {
			failed++
			continue
		}
		steps = append(steps, float64(res.Steps))
	}
	if len(steps) == 0 {
		return fmt.Errorf("no run stabilized within the step cap")
	}
	s := stats.Summarize(steps)
	fmt.Printf("protocol %s: states=%.4g\n", p.Name(), p.StateCount(g.N()))
	fmt.Printf("stabilization steps: mean=%.0f ±%.0f (95%% CI)  median=%.0f  min=%.0f  max=%.0f  runs=%d",
		s.Mean, s.CI95(), s.Median, s.Min, s.Max, s.N)
	if failed > 0 {
		fmt.Printf("  (cap hit in %d runs)", failed)
	}
	fmt.Println()
	return nil
}
